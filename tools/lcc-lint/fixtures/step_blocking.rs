// lcc-lint: pretend-path crates/comm/src/actor.rs
//! Seeded violations for the `no-blocking-in-step` rule: the protocol
//! actor seam must stay a pure transition function, so clocks, sleeps,
//! locks, I/O and console printing are all convictions here.

use std::sync::Mutex; //~ ERROR no-blocking-in-step
use std::time::Instant;

pub fn step(state: &ActorState) -> Vec<Action> {
    let started = Instant::now(); //~ ERROR no-blocking-in-step
    std::thread::sleep(Duration::from_millis(5)); //~ ERROR no-blocking-in-step
    let guard = SHARED.lock(); //~ ERROR no-blocking-in-step
    println!("stepping {started:?} {guard:?}"); //~ ERROR no-blocking-in-step
    Vec::new()
}

pub fn checkpoint(state: &ActorState) {
    // Writing state to disk belongs in the harness, not the step.
    std::fs::write("/tmp/actor.ckpt", encode(state)).ok(); //~ ERROR no-blocking-in-step
}

pub fn dump(state: &ActorState) {
    // lcc-lint: allow(blocking) — debug helper compiled out of release
    // builds; justified exceptions are not convictions.
    eprintln!("{state:?}");
}

#[cfg(test)]
mod tests {
    // Test code may block freely.
    fn slow_test() {
        std::thread::sleep(Duration::from_millis(1));
    }
}
