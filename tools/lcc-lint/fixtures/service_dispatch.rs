// lcc-lint: pretend-path crates/service/src/batch_fixture.rs
// lcc-lint: hot-path — the dispatch path coalesces every tenant's
// requests; a stray per-request allocation here multiplies by the
// offered load.
//
// Fixture proving the service crate sits inside the ratcheted trees:
// the dispatch hot path is subject to `hot-path-alloc`, `Result`
// signatures must name `ServiceError` (or another typed error) rather
// than `Box<dyn Error>`, and non-test unwraps fall under the zero-budget
// ratchet. Never compiled — scanned by `lcc-lint --self-test`.

use std::error::Error;

pub fn dispatch_copies(items: &[Request]) -> Vec<Request> {
    items.to_vec() //~ ERROR hot-path-alloc
}

pub fn group_scratch(n: usize) -> Vec<u64> {
    let scratch = Vec::with_capacity(n); //~ ERROR hot-path-alloc
    scratch
}

// Per-response output buffers are a legitimate per-solve allocation; the
// escape hatch documents that and silences the rule.
pub fn response_buffer(n: usize) -> Vec<f64> {
    // lcc-lint: allow(alloc) — one output buffer per served response
    let out = Vec::with_capacity(n);
    out
}

pub fn submit_boxed(req: Request) -> Result<(), Box<dyn Error>> { //~ ERROR typed-error
    let _ = req;
    Ok(())
}

pub fn submit_typed(req: Request) -> Result<(), ServiceError> {
    let _ = req;
    Ok(())
}

pub fn pump_once(queue: &Queue) -> Response {
    queue.pop().unwrap() //~ ERROR unwrap-ratchet
}

#[cfg(test)]
mod tests {
    // Test code is exempt from all three rules.
    fn scratch() -> Vec<u8> {
        let v = vec![0u8; 16];
        v.to_vec()
    }
}
