// lcc-lint: pretend-path crates/fft/src/simd/kernels_fixture.rs
//
// Fixture pinning the lint rules to the SIMD kernel tree: the split-layout
// butterfly kernels are hot-path modules full of `unsafe` intrinsics, so
// both the `hot-path-alloc` ban and the `safety-comment` rule must keep
// covering files under `crates/fft/src/simd/`. Never compiled — scanned
// by `lcc-lint --self-test`.

// lcc-lint: hot-path — butterfly kernel fixture; allocation-free by construction.

/// A stage kernel must not lease per-call buffers from the allocator.
fn stage_with_alloc(re: &mut [f64]) {
    let _scratch = vec![0.0f64; re.len()]; //~ ERROR hot-path-alloc
    let _packed = Vec::with_capacity(re.len()); //~ ERROR hot-path-alloc
}

fn plan_time_twiddles_are_fine(m: usize) {
    // lcc-lint: allow(alloc) — plan-time packed twiddles, built once.
    let _twre = Vec::with_capacity(7 * m);
}

/// An intrinsics call site needs its justification attached.
fn dispatch_without_justification(re: &mut [f64], im: &mut [f64]) {
    unsafe { stage_r2_unsound(re, im) } //~ ERROR safety-comment
}

fn dispatch_with_justification(re: &mut [f64], im: &mut [f64]) {
    // SAFETY: variant detection confirmed the target features and the
    // slice geometry satisfies the kernel's length contract.
    unsafe { stage_r2_unsound(re, im) }
}

/// Kernel declared unsafe with the contract documented the rustdoc way.
///
/// # Safety
/// Caller must have confirmed the target features at runtime.
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn documented_kernel(_re: &mut [f64]) {}

#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn undocumented_kernel(_re: &mut [f64]) {} //~ ERROR safety-comment
