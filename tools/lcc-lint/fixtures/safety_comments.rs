// lcc-lint: pretend-path crates/fft/src/safety_fixture.rs
//
// Fixture for the `safety-comment` rule. Never compiled — scanned by
// `lcc-lint --self-test`, which checks that exactly the `//~ ERROR`
// marked lines are reported.

// SAFETY: a plain comment directly above the site satisfies the rule.
unsafe impl Send for Direct {}

// SAFETY: attributes between the comment and the site are looked through.
#[allow(dead_code)]
#[inline]
unsafe impl Send for ThroughAttrs {}

// SAFETY: a justification spread over
// several contiguous comment lines
// also satisfies the rule.
unsafe impl Send for MultiLine {}

unsafe impl Send for OneLiner {} // SAFETY: trailing same-line comment is fine.

/// Public contract documented the rustdoc way.
///
/// # Safety
///
/// The caller must uphold the documented invariant.
pub unsafe fn doc_safety_section() {}

fn statement_continuation() {
    // SAFETY: the walk sees through the multi-line statement head below.
    let _job: usize =
        unsafe { transmute_like() };
}

fn false_positives_do_not_fire() {
    let _s = "unsafe { in_a_string() }";
    let _r = r#"unsafe { in_a_raw_string() }"#;
    /* block comment: unsafe here is prose /* even nested */ still prose */
    let _ok = 1;
}

/// Doc comments mentioning unsafe code are prose, not sites.
fn doc_mention() {}

unsafe impl Send for Bare {} //~ ERROR safety-comment

// SAFETY: covers only the first impl of the pair.
unsafe impl Send for Pair {}
unsafe impl Sync for Pair {} //~ ERROR safety-comment

// SAFETY: stale — the blank line below breaks the association.

fn stale_comment() {
    let _x = unsafe { danger() }; //~ ERROR safety-comment
}

fn comment_in_string_does_not_satisfy() {
    let _s = "// SAFETY: fake, lives in a string";
    let _y = unsafe { danger() }; //~ ERROR safety-comment
}
