// lcc-lint: pretend-path crates/fft/src/hot_fixture.rs
//
// Fixture for the `hot-path-alloc` rule. Never compiled — scanned by
// `lcc-lint --self-test`.

// lcc-lint: hot-path — fixture module; warm-path allocations are banned.

fn hot() {
    let _v = vec![0u8; 4]; //~ ERROR hot-path-alloc
    let _b = Box::new(1); //~ ERROR hot-path-alloc
    let _w = Vec::with_capacity(3); //~ ERROR hot-path-alloc
    let _n: Vec<u8> = Vec::new(); //~ ERROR hot-path-alloc
    let _c = data.to_vec(); //~ ERROR hot-path-alloc
}

fn plan_time() {
    // lcc-lint: allow(alloc) — plan-time table, built once.
    let _t = vec![0.0f64; 16];
    let _u = Vec::with_capacity(8); // lcc-lint: allow(alloc) — trailing form
}

fn multi_line_statement_covered_by_directive() {
    // lcc-lint: allow(alloc) — per-solve buffers, directive above the
    // statement covers the token two lines down.
    let _kept: Vec<Vec<u8>> =
        (0..6).map(|_| vec![0u8; 4]).collect();
}

fn strings_and_comments_do_not_count() {
    let _s = "vec![looks like an alloc]";
    let _m = "Vec::new and Box::new in prose";
    // vec! in a comment is prose too.
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_allocate() {
        let _v = vec![1, 2, 3];
        let _b = Box::new(0);
    }
}
