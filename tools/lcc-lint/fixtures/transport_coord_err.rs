// lcc-lint: pretend-path crates/comm/src/transport/coord_err_fixture.rs
//
// Fixture for the coord-err leg of the `typed-error` rule (scoped to the
// comm transport tree via the pretend path): the stringly `coord_err(…)`
// constructor may not wrap timeout or child-exit conditions. Never
// compiled — scanned by `lcc-lint --self-test`.

fn deadline_wrapped_in_a_string(deadline: Instant) -> Result<(), CommError> {
    if Instant::now() >= deadline {
        return Err(coord_err("coordinator timed out".to_string())); //~ ERROR typed-error
    }
    Ok(())
}

fn exit_wrapped_in_a_string(sup: &mut ChildSupervisor) -> Result<(), CommError> {
    if let Some((rank, exit)) = sup.reap().into_iter().next() {
        return Err(coord_err(format!("rank {rank} died: {exit:?}"))); //~ ERROR typed-error
    }
    Ok(())
}

fn multi_line_call_sees_the_guard(elapsed: Duration, budget: Duration) -> Result<(), CommError> {
    if elapsed > budget {
        return Err(coord_err( //~ ERROR typed-error
            "patience exhausted".to_string(),
        ));
    }
    Ok(())
}

fn typed_timeout_is_the_fix(rank: usize, deadline: Instant) -> Result<(), CommError> {
    if Instant::now() >= deadline {
        return Err(CommError::Timeout {
            op: "coordinator_result",
            rank,
            waiting_on: usize::MAX,
        });
    }
    Ok(())
}

fn typed_exit_is_the_fix(sup: &mut ChildSupervisor) -> Result<(), CommError> {
    if let Some((rank, exit)) = sup.reap().into_iter().next() {
        return Err(exit.to_error(rank));
    }
    Ok(())
}

fn protocol_violations_stay_stringly(msg: &[u8]) -> Result<(), CommError> {
    if msg.first() != Some(&0x10) {
        return Err(coord_err("malformed HELLO frame".to_string()));
    }
    Ok(())
}

fn sibling_timeout_arm_does_not_contaminate(rx: &Receiver<Vec<u8>>) -> Result<(), CommError> {
    match rx.recv_timeout(PATIENCE) {
        Ok(_) => Ok(()),
        Err(RecvTimeoutError::Timeout) => Ok(()),
        Err(RecvTimeoutError::Disconnected) => Err(coord_err(
            "all control readers gone".to_string(),
        )),
    }
}

fn justified_site(deadline: Instant) -> Result<(), CommError> {
    if Instant::now() >= deadline {
        // lcc-lint: allow(coord-err) — fixture: aggregate condition with no
        // single implicated rank.
        return Err(coord_err("startup window closed".to_string()));
    }
    Ok(())
}
