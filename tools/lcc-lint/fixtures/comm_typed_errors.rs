// lcc-lint: pretend-path crates/comm/src/errors_fixture.rs
//
// Fixture for the `typed-error` and `unwrap-ratchet` rules (both scoped
// to the comm/core source trees via the pretend path). Never compiled —
// scanned by `lcc-lint --self-test` with an empty (zero-budget) ratchet.

use std::error::Error;

pub fn boxed_error(x: u8) -> Result<u8, Box<dyn Error>> { //~ ERROR typed-error
    Ok(x)
}

pub fn boxed_error_multi_line( //~ ERROR typed-error
    x: u8,
    _y: u8,
) -> Result<u8, Box<dyn std::error::Error + Send + Sync>> {
    Ok(x)
}

pub fn typed_is_fine(x: u8) -> Result<u8, CommError> {
    Ok(x)
}

pub fn non_result_box_is_fine(x: u8) -> Box<dyn Error> {
    unimplemented!("{x}")
}

fn bare_unwrap(v: Option<u8>) -> u8 {
    v.unwrap() //~ ERROR unwrap-ratchet
}

fn bare_expect(v: Option<u8>) -> u8 {
    v.expect("fixture message") //~ ERROR unwrap-ratchet
}

fn two_sites_one_line(a: Option<u8>, b: Option<u8>) -> u8 {
    a.unwrap() + b.unwrap() //~ ERROR unwrap-ratchet
}

fn justified(v: Option<u8>) -> u8 {
    v.unwrap() // lcc-lint: allow(unwrap) — infallible in the fixture
}

fn strings_do_not_count() -> &'static str {
    "call .unwrap() and .expect( here all you like"
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_unwraps_are_exempt() {
        Some(1u8).unwrap();
        Some(2u8).expect("fine in tests");
    }
}
