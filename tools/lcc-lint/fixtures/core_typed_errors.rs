// lcc-lint: pretend-path crates/core/src/config_fixture.rs
//
// Fixture proving the `typed-error` rule covers the core tree too: with
// `ConfigError` in the crate, `Result`-returning constructors and
// builders must name it rather than fall back to `Box<dyn Error>`.
// Never compiled — scanned by `lcc-lint --self-test`.

use std::error::Error;

pub fn boxed_build(n: usize) -> Result<Config, Box<dyn Error>> { //~ ERROR typed-error
    Ok(Config { n })
}

pub fn typed_build(n: usize) -> Result<Config, ConfigError> {
    if n == 0 {
        return Err(ConfigError::ZeroGrid);
    }
    Ok(Config { n })
}

pub fn validate_multi_line( //~ ERROR typed-error
    cfg: &Config,
) -> Result<(), Box<dyn std::error::Error + Send + Sync>> {
    let _ = cfg;
    Ok(())
}

pub fn infallible_box_is_fine() -> Box<dyn Error> {
    unimplemented!()
}
