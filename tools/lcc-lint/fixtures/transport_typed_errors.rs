// lcc-lint: pretend-path crates/comm/src/transport/fixture.rs
//
// Proof that the path-scoped rules reach the transport/ subtree: backend
// code (socket meshes, reader threads, fault decorators) must surface
// failures as typed `CommError`s with a zero unwrap budget, exactly like
// the rest of crates/comm/src. Never compiled — scanned by
// `lcc-lint --self-test` with an empty (zero-budget) ratchet.

use std::error::Error;

pub fn backend_boxed_error(frame: Vec<u8>) -> Result<usize, Box<dyn Error>> { //~ ERROR typed-error
    Ok(frame.len())
}

pub fn backend_typed_is_fine(frame: Vec<u8>) -> Result<usize, CommError> {
    Ok(frame.len())
}

fn reader_thread_unwrap(conn: Option<u8>) -> u8 {
    conn.unwrap() //~ ERROR unwrap-ratchet
}

fn handshake_expect(peer: Option<u8>) -> u8 {
    peer.expect("peer sent no handshake") //~ ERROR unwrap-ratchet
}

fn justified_in_transport(v: Option<u8>) -> u8 {
    v.unwrap() // lcc-lint: allow(unwrap) — infallible in the fixture
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_unwraps_stay_exempt_in_transport() {
        Some(1u8).unwrap();
        Some(2u8).expect("fine in tests");
    }
}
