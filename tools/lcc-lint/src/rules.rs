//! The invariant rules enforced by `lcc-lint`.
//!
//! Each rule has a stable kebab-case id (used by the fixture `//~ ERROR`
//! markers and CI output):
//!
//! * `safety-comment` — every `unsafe` site (block, fn, or impl) must be
//!   immediately preceded by a `// SAFETY:` comment (attributes and
//!   contiguous comment lines may sit between; a `/// # Safety` doc
//!   section also satisfies the rule). A trailing same-line `// SAFETY:`
//!   comment is accepted for one-liner impls.
//! * `unwrap-ratchet` — `.unwrap()` / `.expect(` in non-test code of
//!   `crates/comm/src`, `crates/core/src`, and `crates/service/src` is
//!   budgeted by the ratchet file (`tools/lcc-lint/unwrap-ratchet.txt`);
//!   counts can only shrink. Individually justified sites carry
//!   `// lcc-lint: allow(unwrap)`.
//! * `hot-path-alloc` — inside modules annotated `// lcc-lint: hot-path`,
//!   the allocating tokens `vec!`, `Vec::new`, `Vec::with_capacity`,
//!   `Box::new` and `.to_vec()` are banned outside test code. Plan-time
//!   or per-solve allocations are opted out per line with
//!   `// lcc-lint: allow(alloc)` (same line or the line above).
//! * `no-blocking-in-step` — the protocol-actor seam
//!   (`crates/comm/src/actor.rs`, `crates/check/src/model.rs`, plus any
//!   module annotated `// lcc-lint: no-blocking`) must stay a pure
//!   transition function: the model checker explores it in-process, so
//!   clocks (`Instant::now`, `SystemTime`), sleeping, locking (`Mutex`,
//!   `RwLock`, `.lock()`), I/O (`std::fs`, `std::net`, `std::io`,
//!   `std::process`) and console printing are banned outside test code.
//!   Deliberate exceptions carry `// lcc-lint: allow(blocking)`.
//! * `typed-error` — functions in `crates/comm/src`, `crates/core/src`,
//!   and `crates/service/src` that return `Result` must use the crates'
//!   typed errors (`CommError`, `CodecError`, `ConfigError`,
//!   `ServiceError`); returning `Box<dyn Error>` (or any other
//!   `Box<dyn …>`) is a violation. Additionally, in
//!   `crates/comm/src/transport/` the stringly `coord_err(…)` constructor
//!   may not wrap a timeout or child-exit condition: a `coord_err` call
//!   whose statement (or the block head right above it) references
//!   deadline/exit machinery (`deadline`, `elapsed`, `exit`, `try_wait`,
//!   `ChildExit`, …) must use `CommError::Timeout` /
//!   `CommError::ChildExited` instead, or carry a
//!   `// lcc-lint: allow(coord-err)` justification.

use std::collections::BTreeMap;

use crate::lexer::{find_word, SourceFile};

/// One rule violation, addressed `path:line` (1-based).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    pub path: String,
    pub line: usize,
    pub rule: &'static str,
    pub msg: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.msg
        )
    }
}

/// Ratchet budgets: repo-relative path → allowed `.unwrap()`/`.expect(`
/// count. Files under the ratcheted trees that are absent here have an
/// implicit budget of zero.
pub type Ratchet = BTreeMap<String, usize>;

/// Whether `path` (repo-relative, `/`-separated) is subject to the unwrap
/// ratchet and the typed-error rule.
fn in_ratcheted_tree(path: &str) -> bool {
    path.starts_with("crates/comm/src/")
        || path.starts_with("crates/core/src/")
        || path.starts_with("crates/service/src/")
}

/// Scans one sanitized file, returning direct violations plus the lines of
/// unratcheted unwrap sites (empty when the path is outside the ratcheted
/// trees). The caller folds the site lists into the ratchet comparison.
pub fn check_file(path: &str, file: &SourceFile) -> (Vec<Violation>, Vec<usize>) {
    let mut v = Vec::new();
    check_safety_comments(path, file, &mut v);
    // The annotation must open its comment (`// lcc-lint: hot-path ...`)
    // so prose that merely *mentions* the directive doesn't activate it.
    if file
        .lines
        .iter()
        .any(|l| l.comment.trim_start().starts_with("lcc-lint: hot-path"))
    {
        check_hot_path_allocs(path, file, &mut v);
    }
    // The actor seam is pure by construction; the annotation extends the
    // guarantee to any other module that opts in (same opening-comment
    // requirement as hot-path, so prose mentions don't activate it).
    if ACTOR_SEAM_PATHS.contains(&path)
        || file
            .lines
            .iter()
            .any(|l| l.comment.trim_start().starts_with("lcc-lint: no-blocking"))
    {
        check_no_blocking(path, file, &mut v);
    }
    let mut unwrap_sites = Vec::new();
    if in_ratcheted_tree(path) {
        unwrap_sites = collect_unwrap_sites(file);
    }
    if in_ratcheted_tree(path) {
        check_typed_errors(path, file, &mut v);
    }
    if path.starts_with("crates/comm/src/transport/") {
        check_coord_err(path, file, &mut v);
    }
    (v, unwrap_sites)
}

/// `safety-comment`: every line whose code contains the word `unsafe` must
/// carry a SAFETY justification. Walking up from the site, attribute lines
/// and contiguous comment lines are skipped; one of the skipped comments
/// (or the site's own trailing comment) must contain `SAFETY` or
/// `# Safety`. A blank line or any other code terminates the walk.
fn check_safety_comments(path: &str, file: &SourceFile, out: &mut Vec<Violation>) {
    for (idx, line) in file.lines.iter().enumerate() {
        if find_word(&line.code, "unsafe", 0).is_none() {
            continue;
        }
        if comment_satisfies_safety(&line.comment) {
            continue;
        }
        let mut ok = false;
        let mut j = idx;
        while j > 0 {
            j -= 1;
            let prev = &file.lines[j];
            let code = prev.code.trim();
            let is_attr = code.starts_with("#[") || code.starts_with("#![");
            let is_comment_only = code.is_empty() && !prev.comment.is_empty();
            // A code line that doesn't end a statement (`let x: T =` before
            // an `unsafe { … }` on the next line) is part of the same
            // statement: look through it rather than stopping the walk.
            let is_continuation_head =
                !code.is_empty() && !matches!(code.chars().last(), Some(';' | '{' | '}'));
            if comment_satisfies_safety(&prev.comment) {
                ok = true;
                break;
            }
            if !is_attr && !is_comment_only && !is_continuation_head {
                break;
            }
        }
        if !ok {
            out.push(Violation {
                path: path.to_string(),
                line: idx + 1,
                rule: "safety-comment",
                msg: "unsafe site without an immediately preceding `// SAFETY:` comment"
                    .to_string(),
            });
        }
    }
}

fn comment_satisfies_safety(comment: &str) -> bool {
    comment.contains("SAFETY") || comment.contains("# Safety")
}

/// The files that *are* the protocol-actor seam: the transition kernels
/// the model checker drives in-process. They must never gain a clock,
/// lock, sleep, or I/O — that would desynchronize the checked model from
/// the production behavior (and hang the checker).
const ACTOR_SEAM_PATHS: [&str; 2] = ["crates/comm/src/actor.rs", "crates/check/src/model.rs"];

/// Tokens that block, tell time, or touch the outside world. String and
/// comment contents are blanked by the lexer, so these match code only.
const BLOCKING_TOKENS: [&str; 12] = [
    "thread::sleep",
    "sleep(",
    "Mutex",
    "RwLock",
    ".lock()",
    "Instant::now",
    "SystemTime",
    "std::fs",
    "std::net",
    "std::io",
    "println!",
    "eprintln!",
];

/// `no-blocking-in-step`: flags blocking/impure tokens in actor-seam
/// modules outside test code, unless escaped with
/// `// lcc-lint: allow(blocking)`.
fn check_no_blocking(path: &str, file: &SourceFile, out: &mut Vec<Violation>) {
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test || allow_escape(file, idx, "lcc-lint: allow(blocking)") {
            continue;
        }
        for tok in BLOCKING_TOKENS {
            if find_word(&line.code, tok, 0).is_some() {
                out.push(Violation {
                    path: path.to_string(),
                    line: idx + 1,
                    rule: "no-blocking-in-step",
                    msg: format!(
                        "`{tok}` in a pure actor-step module; the protocol seam must \
                         stay clock-, lock-, and I/O-free so the model checker can \
                         drive it, or justify with `// lcc-lint: allow(blocking)`"
                    ),
                });
                break; // one violation per line is enough
            }
        }
    }
}

/// The allocating tokens banned in hot-path modules.
const ALLOC_TOKENS: [&str; 5] = [
    "vec!",
    "Vec::new",
    "Vec::with_capacity",
    "Box::new",
    ".to_vec()",
];

fn check_hot_path_allocs(path: &str, file: &SourceFile, out: &mut Vec<Violation>) {
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test || allow_escape(file, idx, "lcc-lint: allow(alloc)") {
            continue;
        }
        for tok in ALLOC_TOKENS {
            if find_word(&line.code, tok, 0).is_some() {
                out.push(Violation {
                    path: path.to_string(),
                    line: idx + 1,
                    rule: "hot-path-alloc",
                    msg: format!(
                        "`{tok}` in a `lcc-lint: hot-path` module; use the pooled \
                         workspace, or justify with `// lcc-lint: allow(alloc)`"
                    ),
                });
                break; // one violation per line is enough
            }
        }
    }
}

/// True when the line carries the given directive in a comment, or one of
/// the lines reachable by walking up through comment-only lines and
/// statement continuations does (so a directive above a multi-line
/// statement still covers the token lines inside it).
fn allow_escape(file: &SourceFile, idx: usize, directive: &str) -> bool {
    if file.lines[idx].comment.contains(directive) {
        return true;
    }
    let mut j = idx;
    while j > 0 {
        j -= 1;
        let prev = &file.lines[j];
        if prev.comment.contains(directive) {
            return true;
        }
        let code = prev.code.trim();
        let comment_only = code.is_empty() && !prev.comment.is_empty();
        let continuation =
            !code.is_empty() && !matches!(code.chars().last(), Some(';' | '{' | '}'));
        if !comment_only && !continuation {
            break;
        }
    }
    false
}

/// Lines (1-based) of ratcheted `.unwrap()` / `.expect(` sites: non-test,
/// not individually allowlisted. A line with several such calls counts
/// once per call.
fn collect_unwrap_sites(file: &SourceFile) -> Vec<usize> {
    let mut sites = Vec::new();
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test || allow_escape(file, idx, "lcc-lint: allow(unwrap)") {
            continue;
        }
        for tok in [".unwrap()", ".expect("] {
            let mut from = 0;
            while let Some(at) = find_word(&line.code, tok, from) {
                sites.push(idx + 1);
                from = at + tok.len();
            }
        }
    }
    sites
}

/// `typed-error`: capture each fn signature (from the `fn` keyword to the
/// first `{` or `;`) and flag `Result`-returning ones whose return type
/// drags in `Box<dyn …>` instead of a typed error.
fn check_typed_errors(path: &str, file: &SourceFile, out: &mut Vec<Violation>) {
    let mut idx = 0usize;
    while idx < file.lines.len() {
        let line = &file.lines[idx];
        if line.in_test {
            idx += 1;
            continue;
        }
        let Some(at) = find_word(&line.code, "fn", 0) else {
            idx += 1;
            continue;
        };
        // Accumulate the signature across lines.
        let mut sig = String::new();
        let mut j = idx;
        let mut col = at;
        let mut terminated = false;
        while j < file.lines.len() && !terminated {
            let code = &file.lines[j].code;
            for ch in code[col.min(code.len())..].chars() {
                if ch == '{' || ch == ';' {
                    terminated = true;
                    break;
                }
                sig.push(ch);
            }
            sig.push(' ');
            col = 0;
            if !terminated {
                j += 1;
            }
        }
        if sig.contains("->") && sig.contains("Result") && sig.contains("Box<dyn") {
            out.push(Violation {
                path: path.to_string(),
                line: idx + 1,
                rule: "typed-error",
                msg: "fn returns `Result` with a `Box<dyn …>` error; use the typed \
                      `CommError`, `CodecError`, `ConfigError`, or `ServiceError` \
                      instead"
                    .to_string(),
            });
        }
        idx = j.max(idx) + 1;
    }
}

/// Code identifiers that mark a `coord_err` call as wrapping a timeout or
/// child-exit condition. String contents are blanked by the lexer, so the
/// rule keys off the *code* of the surrounding statement, not the message
/// text — these are the identifiers deadline checks and reap paths cannot
/// avoid naming.
const COORD_ERR_CONTEXT_TOKENS: [&str; 7] = [
    "deadline",
    "elapsed",
    "exit",
    "exited",
    "try_wait",
    "wait_timeout",
    "ChildExit",
];

/// `typed-error` (coord-err leg): in the transport tree, a stringly
/// `coord_err(…)` may not stand in for a typed timeout/exit error. The
/// scanned window is the statement containing the call — walking up
/// through continuation lines and including the block head right above it
/// (`if now >= deadline {`), walking down to the statement terminator —
/// so the deadline comparison or the reaped exit binding is in view even
/// when the `return Err(coord_err(…))` sits on its own line.
fn check_coord_err(path: &str, file: &SourceFile, out: &mut Vec<Violation>) {
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test || find_word(&line.code, "coord_err", 0).is_none() {
            continue;
        }
        if allow_escape(file, idx, "lcc-lint: allow(coord-err)") {
            continue;
        }
        // Statement start: walk up through comment-only lines and
        // continuation heads. A trailing `,` terminates too, so one match
        // arm never bleeds into the arm above it.
        let mut lo = idx;
        while lo > 0 {
            let prev = &file.lines[lo - 1];
            let code = prev.code.trim_end();
            let comment_only = code.trim().is_empty() && !prev.comment.is_empty();
            let continuation = !code.trim().is_empty()
                && !matches!(code.chars().last(), Some(';' | '{' | '}' | ','));
            if comment_only || continuation {
                lo -= 1;
            } else {
                break;
            }
        }
        // The enclosing block head (the guard that decided to error).
        let head = (lo > 0 && file.lines[lo - 1].code.trim_end().ends_with('{')).then(|| lo - 1);
        // Statement end: the first terminated line at or below the call.
        let mut hi = idx;
        while hi + 1 < file.lines.len()
            && !matches!(
                file.lines[hi].code.trim_end().chars().last(),
                Some(';' | '{' | '}')
            )
        {
            hi += 1;
        }
        let token = head.into_iter().chain(lo..=hi).find_map(|j| {
            COORD_ERR_CONTEXT_TOKENS
                .iter()
                .find(|tok| find_word(&file.lines[j].code, tok, 0).is_some())
        });
        if let Some(tok) = token {
            out.push(Violation {
                path: path.to_string(),
                line: idx + 1,
                rule: "typed-error",
                msg: format!(
                    "`coord_err` string-wraps a timeout/exit condition (`{tok}` in the \
                     statement); use `CommError::Timeout` / `CommError::ChildExited`, \
                     or justify with `// lcc-lint: allow(coord-err)`"
                ),
            });
        }
    }
}

/// Folds per-file unwrap site lists into ratchet violations: a file over
/// budget reports every site (budget 0) or a summary (budget > 0); a file
/// under budget reports a stale ratchet so the budget can only shrink.
pub fn apply_ratchet(
    ratchet: &Ratchet,
    sites_by_file: &BTreeMap<String, Vec<usize>>,
    out: &mut Vec<Violation>,
) {
    let mut all_paths: Vec<&String> = sites_by_file.keys().collect();
    for p in ratchet.keys() {
        if !sites_by_file.contains_key(p) {
            all_paths.push(p);
        }
    }
    for path in all_paths {
        let sites = sites_by_file.get(path).cloned().unwrap_or_default();
        let allowed = ratchet.get(path).copied().unwrap_or(0);
        let actual = sites.len();
        if actual > allowed {
            if allowed == 0 {
                for line in sites {
                    out.push(Violation {
                        path: path.clone(),
                        line,
                        rule: "unwrap-ratchet",
                        msg: "`.unwrap()`/`.expect(` in non-test comm/core/service code; \
                              return a typed error, or justify with \
                              `// lcc-lint: allow(unwrap)`"
                            .to_string(),
                    });
                }
            } else {
                out.push(Violation {
                    path: path.clone(),
                    line: 1,
                    rule: "unwrap-ratchet",
                    msg: format!(
                        "{actual} unwrap/expect sites but the ratchet allows {allowed}; \
                         burn the new ones down (the ratchet only shrinks)"
                    ),
                });
            }
        } else if actual < allowed {
            out.push(Violation {
                path: path.clone(),
                line: 1,
                rule: "unwrap-ratchet",
                msg: format!(
                    "ratchet is stale: {allowed} allowed but only {actual} remain; \
                     lower the entry in tools/lcc-lint/unwrap-ratchet.txt to {actual}"
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(path: &str, src: &str) -> Vec<Violation> {
        let file = SourceFile::parse(src);
        let (mut v, sites) = check_file(path, &file);
        let mut by_file = BTreeMap::new();
        if !sites.is_empty() {
            by_file.insert(path.to_string(), sites);
        }
        apply_ratchet(&Ratchet::new(), &by_file, &mut v);
        v
    }

    #[test]
    fn unsafe_without_safety_comment_is_flagged() {
        let v = check("crates/x/src/lib.rs", "fn f() { unsafe { g() } }\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "safety-comment");
        assert_eq!(v[0].line, 1);
    }

    #[test]
    fn safety_comment_above_satisfies() {
        let src = "// SAFETY: g has no preconditions here.\nfn f() { unsafe { g() } }\n";
        assert!(check("crates/x/src/lib.rs", src).is_empty());
    }

    #[test]
    fn safety_comment_separated_by_attributes_satisfies() {
        let src = "\
// SAFETY: the impl is sound because T: Send.
#[allow(dead_code)]
#[inline]
unsafe impl<T> Send for Wrapper<T> {}
";
        assert!(check("crates/x/src/lib.rs", src).is_empty());
    }

    #[test]
    fn multi_line_safety_comment_satisfies() {
        let src = "\
// SAFETY: the pointer is valid for the whole
// region and nobody else writes to it.
let x = unsafe { *p };
";
        assert!(check("crates/x/src/lib.rs", src).is_empty());
    }

    #[test]
    fn safety_walk_sees_through_statement_continuations() {
        let src = "\
// SAFETY: the reference outlives every worker.
let job: &'static Body =
    unsafe { transmute(body) };
";
        assert!(check("crates/x/src/lib.rs", src).is_empty());
    }

    #[test]
    fn blank_line_breaks_the_safety_walk() {
        let src = "// SAFETY: stale comment.\n\nlet x = unsafe { *p };\n";
        let v = check("crates/x/src/lib.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "safety-comment");
    }

    #[test]
    fn unsafe_in_string_or_comment_is_ignored() {
        let src =
            "let s = \"unsafe { }\"; // an unsafe-looking string\n/// unsafe docs\nfn f() {}\n";
        assert!(check("crates/x/src/lib.rs", src).is_empty());
    }

    #[test]
    fn trailing_safety_comment_satisfies_oneliners() {
        let src = "unsafe impl Send for X {} // SAFETY: X is a plain address.\n";
        assert!(check("crates/x/src/lib.rs", src).is_empty());
    }

    #[test]
    fn hot_path_alloc_tokens_are_flagged_outside_tests() {
        let src = "\
// lcc-lint: hot-path
fn hot() { let v = vec![0u8; 4]; }
fn cold() { let b = Box::new(1); } // lcc-lint: allow(alloc) — plan time
#[cfg(test)]
mod tests {
    fn t() { let v = Vec::with_capacity(3); }
}
";
        let v = check("crates/x/src/lib.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "hot-path-alloc");
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn allow_alloc_covers_multi_line_statements() {
        let src = "\
// lcc-lint: hot-path
// lcc-lint: allow(alloc) — per-solve output buffers, explained over
// two comment lines.
let kept: Vec<Vec<u8>> =
    (0..6).map(|_| vec![0u8; 4]).collect();
";
        assert!(check("crates/x/src/lib.rs", src).is_empty());
    }

    #[test]
    fn unratcheted_unwraps_are_flagged_per_site() {
        let src = "fn f() { a.unwrap(); b.expect(\"x\"); }\n";
        let v = check("crates/comm/src/y.rs", src);
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().all(|x| x.rule == "unwrap-ratchet"));
        // Same file outside the ratcheted tree: silent.
        assert!(check("crates/fft/src/y.rs", src).is_empty());
    }

    #[test]
    fn allow_unwrap_escape_is_honoured() {
        let src =
            "// lcc-lint: allow(unwrap) — infallible by construction\nfn f() { a.unwrap(); }\n";
        assert!(check("crates/comm/src/y.rs", src).is_empty());
    }

    #[test]
    fn ratchet_budget_and_staleness() {
        let mut ratchet = Ratchet::new();
        ratchet.insert("crates/comm/src/y.rs".into(), 2);
        let file = SourceFile::parse("fn f() { a.unwrap(); }\n");
        let (_, sites) = check_file("crates/comm/src/y.rs", &file);
        let mut by_file = BTreeMap::new();
        by_file.insert("crates/comm/src/y.rs".to_string(), sites);
        let mut v = Vec::new();
        apply_ratchet(&ratchet, &by_file, &mut v);
        assert_eq!(v.len(), 1);
        assert!(v[0].msg.contains("stale"), "{v:?}");
    }

    #[test]
    fn boxed_dyn_error_in_comm_result_is_flagged() {
        let src = "\
pub fn bad(x: u8) -> Result<u8, Box<dyn std::error::Error>> { Ok(x) }
pub fn good(x: u8) -> Result<u8, CommError> { Ok(x) }
pub fn multi_line(
    x: u8,
) -> Result<u8, Box<dyn std::error::Error>> {
    Ok(x)
}
";
        let v = check("crates/comm/src/y.rs", src);
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().all(|x| x.rule == "typed-error"));
        assert_eq!(v[0].line, 1);
        assert_eq!(v[1].line, 3);
    }

    #[test]
    fn coord_err_wrapping_a_deadline_is_flagged() {
        let src = "\
fn serve() -> Result<(), CommError> {
    if Instant::now() >= deadline {
        return Err(coord_err(\"timed out\".to_string()));
    }
    Ok(())
}
";
        let v = check("crates/comm/src/transport/socket.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "typed-error");
        assert_eq!(v[0].line, 3);
        assert!(v[0].msg.contains("deadline"), "{v:?}");
        // Outside the transport tree the coord-err leg stays silent.
        assert!(check("crates/comm/src/cluster.rs", src).is_empty());
    }

    #[test]
    fn coord_err_wrapping_a_child_exit_is_flagged() {
        let src = "\
fn gather(sup: &mut Sup) -> Result<(), CommError> {
    if let Some((rank, exit)) = sup.reap().into_iter().next() {
        return Err(coord_err(format!(
            \"rank died\"
        )));
    }
    Ok(())
}
";
        let v = check("crates/comm/src/transport/socket.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "typed-error");
        assert_eq!(v[0].line, 3);
    }

    #[test]
    fn coord_err_for_protocol_violations_is_fine() {
        // Framing/protocol errors are what coord_err is *for* — and a
        // sibling match arm naming RecvTimeoutError::Timeout must not
        // contaminate the arm below it (`,` terminates the walk).
        let src = "\
fn pump() -> Result<(), CommError> {
    match rx.recv() {
        Err(RecvTimeoutError::Timeout) => Ok(()),
        Err(RecvTimeoutError::Disconnected) => Err(coord_err(
            \"all control readers gone\".to_string(),
        )),
    }
}
";
        assert!(check("crates/comm/src/transport/socket.rs", src).is_empty());
    }

    #[test]
    fn allow_coord_err_escape_is_honoured() {
        let src = "\
fn serve() -> Result<(), CommError> {
    if Instant::now() >= deadline {
        // lcc-lint: allow(coord-err) — aggregate condition, no single peer
        return Err(coord_err(\"startup deadline\".to_string()));
    }
    Ok(())
}
";
        assert!(check("crates/comm/src/transport/socket.rs", src).is_empty());
    }

    #[test]
    fn blocking_tokens_in_the_actor_seam_are_flagged() {
        let src = "\
fn step() {
    std::thread::sleep(d);
    let now = Instant::now();
    let g = state.lock();
}
#[cfg(test)]
mod tests {
    fn t() { std::thread::sleep(d); }
}
";
        let v = check("crates/comm/src/actor.rs", src);
        assert_eq!(v.len(), 3, "{v:?}");
        assert!(v.iter().all(|x| x.rule == "no-blocking-in-step"));
        assert_eq!(
            v.iter().map(|x| x.line).collect::<Vec<_>>(),
            vec![2, 3, 4],
            "test code is exempt"
        );
        // The same source outside the seam (and without the directive) is
        // not subject to the rule.
        assert!(check("crates/comm/src/cluster.rs", src).is_empty());
    }

    #[test]
    fn no_blocking_directive_activates_the_rule_anywhere() {
        let src = "\
// lcc-lint: no-blocking
fn pure() { let m = Mutex::new(0); }
";
        let v = check("crates/octree/src/y.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "no-blocking-in-step");
        assert_eq!(v[0].line, 2);
        // Prose that merely mentions the directive does not activate it.
        let prose = "// the lcc-lint: no-blocking rule is documented elsewhere\n\
                     fn pure() { let m = Mutex::new(0); }\n";
        assert!(check("crates/octree/src/y.rs", prose).is_empty());
    }

    #[test]
    fn allow_blocking_escape_is_honoured() {
        let src = "\
// lcc-lint: no-blocking
// lcc-lint: allow(blocking) — diagnostics helper, never on the step path
fn dump() { println!(\"{state:?}\"); }
";
        assert!(check("crates/octree/src/y.rs", src).is_empty());
    }

    #[test]
    fn the_committed_actor_seam_is_clean() {
        // The rule hardwires the real seam files; prove they pass so the
        // workspace scan stays green.
        let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .unwrap()
            .to_path_buf();
        for rel in ACTOR_SEAM_PATHS {
            let text = std::fs::read_to_string(root.join(rel)).expect(rel);
            let v = check(rel, &text);
            assert!(
                v.iter().all(|x| x.rule != "no-blocking-in-step"),
                "{rel}: {v:?}"
            );
        }
    }

    #[test]
    fn service_tree_is_ratcheted() {
        // PR 10 added crates/service to the ratcheted trees: zero-budget
        // unwraps and the typed-error rule both apply there.
        let unwraps = "fn f() { a.unwrap(); }\n";
        let v = check("crates/service/src/server.rs", unwraps);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "unwrap-ratchet");
        let boxed = "pub fn bad(x: u8) -> Result<u8, Box<dyn std::error::Error>> { Ok(x) }\n";
        let v = check("crates/service/src/wire.rs", boxed);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "typed-error");
        // Test trees of the service crate are not ratcheted.
        assert!(check("crates/service/tests/admission.rs", unwraps).is_empty());
    }

    #[test]
    fn typed_error_rule_covers_core_tree() {
        let src = "\
pub fn bad(x: u8) -> Result<u8, Box<dyn std::error::Error>> { Ok(x) }
pub fn good(x: u8) -> Result<u8, ConfigError> { Ok(x) }
";
        let v = check("crates/core/src/config.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "typed-error");
        assert_eq!(v[0].line, 1);
        // Outside both ratcheted trees the rule stays silent.
        assert!(check("crates/octree/src/y.rs", src).is_empty());
    }
}
