//! Line/token-level Rust source preprocessing for the invariant lints.
//!
//! Rustc's lexer is overkill for the invariants we enforce, but naive
//! substring search is not enough either: `unsafe` inside a string literal
//! or a doc comment must not count as an unsafe site, and a `// SAFETY:`
//! marker inside a string must not satisfy one. This module performs a
//! single character-level pass that splits every line into its *code* text
//! (with comment bodies and literal contents blanked out, structure
//! preserved) and its *comment* text (everything that lives inside `//`,
//! `///`, `//!` or `/* ... */`, including nested block comments), plus a
//! per-line `in_test` flag tracking `#[cfg(test)]` modules by brace depth.
//!
//! All downstream rules then operate on these sanitized views, so they are
//! immune to the classic false positives (tokens in strings, tokens in
//! comments, SAFETY markers in doc examples) by construction.

/// One source line after sanitization.
#[derive(Debug, Clone)]
pub struct Line {
    /// Code text: comments and the *contents* of string/char literals are
    /// replaced by spaces; quotes and everything else keep their columns.
    pub code: String,
    /// Comment text: the body of every comment overlapping this line
    /// (without the `//` / `/*` markers), concatenated.
    pub comment: String,
    /// True when this line is inside a `#[cfg(test)]` item's braces.
    pub in_test: bool,
}

/// A whole file, sanitized. Lines are 1-indexed via [`SourceFile::line`].
#[derive(Debug)]
pub struct SourceFile {
    pub lines: Vec<Line>,
}

#[derive(Copy, Clone, PartialEq)]
enum State {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u32),
    Char,
}

impl SourceFile {
    /// Sanitizes `text` (see module docs).
    pub fn parse(text: &str) -> SourceFile {
        let mut lines: Vec<Line> = Vec::new();
        let mut code = String::new();
        let mut comment = String::new();
        let mut state = State::Code;

        let chars: Vec<char> = text.chars().collect();
        let mut i = 0usize;
        // Look ahead `k` characters without consuming.
        let peek = |chars: &[char], i: usize, k: usize| chars.get(i + k).copied();

        while i < chars.len() {
            let c = chars[i];
            if c == '\n' {
                lines.push(Line {
                    code: std::mem::take(&mut code),
                    comment: std::mem::take(&mut comment),
                    in_test: false,
                });
                if state == State::LineComment {
                    state = State::Code;
                }
                i += 1;
                continue;
            }
            match state {
                State::Code => match c {
                    '/' if peek(&chars, i, 1) == Some('/') => {
                        state = State::LineComment;
                        code.push(' ');
                        code.push(' ');
                        i += 2;
                    }
                    '/' if peek(&chars, i, 1) == Some('*') => {
                        state = State::BlockComment(1);
                        code.push(' ');
                        code.push(' ');
                        i += 2;
                    }
                    '"' => {
                        state = State::Str;
                        code.push('"');
                        i += 1;
                    }
                    'r' if matches!(peek(&chars, i, 1), Some('"') | Some('#'))
                        && raw_str_hashes(&chars, i + 1).is_some() =>
                    {
                        // r"..." or r#"..."# (only when the hashes really
                        // lead to a quote — `r#foo` raw identifiers do not).
                        let hashes = raw_str_hashes(&chars, i + 1).unwrap_or(0);
                        state = State::RawStr(hashes);
                        code.push('r');
                        for _ in 0..hashes {
                            code.push('#');
                        }
                        code.push('"');
                        i += 2 + hashes as usize;
                    }
                    '\'' => {
                        // Char literal vs lifetime: a literal is '\...' or
                        // 'X' (single char then closing quote); a lifetime
                        // is 'ident with no closing quote.
                        if peek(&chars, i, 1) == Some('\\') {
                            state = State::Char;
                            code.push('\'');
                            i += 1;
                        } else if peek(&chars, i, 2) == Some('\'') {
                            // 'X' — blank the payload char.
                            code.push('\'');
                            code.push(' ');
                            code.push('\'');
                            i += 3;
                        } else {
                            // Lifetime (or the start of one): plain code.
                            code.push('\'');
                            i += 1;
                        }
                    }
                    _ => {
                        code.push(c);
                        i += 1;
                    }
                },
                State::LineComment => {
                    comment.push(c);
                    code.push(' ');
                    i += 1;
                }
                State::BlockComment(depth) => {
                    if c == '*' && peek(&chars, i, 1) == Some('/') {
                        state = if depth == 1 {
                            State::Code
                        } else {
                            State::BlockComment(depth - 1)
                        };
                        code.push(' ');
                        code.push(' ');
                        i += 2;
                    } else if c == '/' && peek(&chars, i, 1) == Some('*') {
                        state = State::BlockComment(depth + 1);
                        comment.push(' ');
                        comment.push(' ');
                        code.push(' ');
                        code.push(' ');
                        i += 2;
                    } else {
                        comment.push(c);
                        code.push(' ');
                        i += 1;
                    }
                }
                State::Str => {
                    if c == '\\' {
                        code.push(' ');
                        if peek(&chars, i, 1).is_some() && peek(&chars, i, 1) != Some('\n') {
                            code.push(' ');
                            i += 2;
                        } else {
                            i += 1;
                        }
                    } else if c == '"' {
                        state = State::Code;
                        code.push('"');
                        i += 1;
                    } else {
                        code.push(' ');
                        i += 1;
                    }
                }
                State::RawStr(hashes) => {
                    if c == '"' && closes_raw(&chars, i + 1, hashes) {
                        state = State::Code;
                        code.push('"');
                        for _ in 0..hashes {
                            code.push('#');
                        }
                        i += 1 + hashes as usize;
                    } else {
                        code.push(' ');
                        i += 1;
                    }
                }
                State::Char => {
                    if c == '\\' {
                        code.push(' ');
                        if peek(&chars, i, 1).is_some() {
                            code.push(' ');
                            i += 2;
                        } else {
                            i += 1;
                        }
                    } else if c == '\'' {
                        state = State::Code;
                        code.push('\'');
                        i += 1;
                    } else {
                        code.push(' ');
                        i += 1;
                    }
                }
            }
        }
        if !code.is_empty() || !comment.is_empty() {
            lines.push(Line {
                code,
                comment,
                in_test: false,
            });
        }

        let mut file = SourceFile { lines };
        file.mark_test_regions();
        file
    }

    /// Marks every line inside the braces of an item carrying
    /// `#[cfg(test)]` (or `#[cfg(all(test, ...))]` etc.) as test code.
    /// Detection is structural: after the attribute, the next `{` at the
    /// attribute's depth opens the region; the matching `}` closes it. An
    /// intervening `;` at that depth (attribute on a brace-less item)
    /// cancels the pending attribute.
    fn mark_test_regions(&mut self) {
        let mut depth: i64 = 0;
        // (depth at which the region's braces opened) for open test regions.
        let mut test_regions: Vec<i64> = Vec::new();
        let mut pending_attr: Option<i64> = None;

        for idx in 0..self.lines.len() {
            let code = self.lines[idx].code.clone();
            if code.contains("#[cfg(test)") || code.contains("#[cfg(all(test") {
                pending_attr = Some(depth);
            }
            self.lines[idx].in_test = !test_regions.is_empty();
            let mut line_opened_test = false;
            for ch in code.chars() {
                match ch {
                    '{' => {
                        if let Some(d) = pending_attr {
                            if depth == d {
                                test_regions.push(depth);
                                pending_attr = None;
                                line_opened_test = true;
                            }
                        }
                        depth += 1;
                    }
                    '}' => {
                        depth -= 1;
                        if let Some(&d) = test_regions.last() {
                            if depth == d {
                                test_regions.pop();
                            }
                        }
                    }
                    ';' if pending_attr == Some(depth) => {
                        pending_attr = None;
                    }
                    _ => {}
                }
            }
            if line_opened_test {
                self.lines[idx].in_test = true;
            }
        }
    }
}

/// If `chars[from..]` is `#*"` (zero or more hashes then a quote), returns
/// the hash count — i.e. `from` sits right after the `r` of a raw string.
fn raw_str_hashes(chars: &[char], from: usize) -> Option<u32> {
    let mut n = 0u32;
    let mut j = from;
    while chars.get(j) == Some(&'#') {
        n += 1;
        j += 1;
    }
    if chars.get(j) == Some(&'"') {
        Some(n)
    } else {
        None
    }
}

/// True if `chars[from..]` starts with `hashes` hash characters (a raw
/// string's closing quote was just consumed).
fn closes_raw(chars: &[char], from: usize, hashes: u32) -> bool {
    (0..hashes as usize).all(|k| chars.get(from + k) == Some(&'#'))
}

/// Byte position of token `needle` in `haystack` starting at `from`. An
/// identifier boundary is required only at the edges where the needle
/// itself begins/ends with an identifier character, so `unsafe` won't
/// match inside `unsafely` but `.unwrap()` still matches after `foo`.
pub fn find_word(haystack: &str, needle: &str, from: usize) -> Option<usize> {
    let bytes = haystack.as_bytes();
    let nb = needle.as_bytes();
    let edge_front = nb.first().copied().is_some_and(is_ident);
    let edge_back = nb.last().copied().is_some_and(is_ident);
    let mut start = from;
    while let Some(pos) = haystack[start..].find(needle) {
        let at = start + pos;
        let before_ok = !edge_front || at == 0 || !is_ident(bytes[at - 1]);
        let after = at + needle.len();
        let after_ok = !edge_back || after >= bytes.len() || !is_ident(bytes[after]);
        if before_ok && after_ok {
            return Some(at);
        }
        start = at + needle.len().max(1);
    }
    None
}

fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn code_of(text: &str) -> Vec<String> {
        SourceFile::parse(text)
            .lines
            .iter()
            .map(|l| l.code.clone())
            .collect()
    }

    #[test]
    fn strings_are_blanked_but_quotes_remain() {
        let code = code_of(r#"let s = "unsafe { vec![] }"; call();"#);
        assert!(!code[0].contains("unsafe"));
        assert!(!code[0].contains("vec!"));
        assert!(code[0].contains("let s = \""));
        assert!(code[0].contains("call();"));
    }

    #[test]
    fn escaped_quotes_do_not_end_strings() {
        let code = code_of(r#"let s = "a\"unsafe\""; let t = 1;"#);
        assert!(!code[0].contains("unsafe"));
        assert!(code[0].contains("let t = 1;"));
    }

    #[test]
    fn raw_strings_are_blanked() {
        let code = code_of(r##"let s = r#"unsafe"#; let u = 2;"##);
        assert!(!code[0].contains("unsafe"));
        assert!(code[0].contains("let u = 2;"));
    }

    #[test]
    fn raw_identifiers_are_not_raw_strings() {
        let code = code_of("let r#fn = 1; let x = unsafe { y };");
        assert!(code[0].contains("unsafe"), "code after r#ident survives");
    }

    #[test]
    fn line_comments_move_to_comment_text() {
        let f = SourceFile::parse("let x = 1; // SAFETY: unsafe in comment\nlet y = 2;");
        assert!(!f.lines[0].code.contains("SAFETY"));
        assert!(f.lines[0].comment.contains("SAFETY:"));
        assert!(f.lines[0].comment.contains("unsafe"));
        assert!(f.lines[1].code.contains("let y"));
    }

    #[test]
    fn nested_block_comments_end_at_matching_depth() {
        let f = SourceFile::parse("/* outer /* inner */ still comment */ let z = unsafe {};");
        assert!(f.lines[0].comment.contains("still comment"));
        assert!(f.lines[0].code.contains("unsafe"), "code resumes after */");
    }

    #[test]
    fn doc_comments_are_comments() {
        let f = SourceFile::parse("/// calls unsafe code\nfn f() {}");
        assert!(!f.lines[0].code.contains("unsafe"));
        assert!(f.lines[0].comment.contains("unsafe"));
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let code = code_of("let c = 'u'; fn f<'a>(x: &'a str) {} let q = '\\'';");
        assert!(code[0].contains("'a"), "lifetimes survive");
        assert!(!code[0].contains("'u'"), "char payload blanked");
        assert!(code[0].contains("fn f<"));
    }

    #[test]
    fn cfg_test_regions_are_marked_by_depth() {
        let src = "\
fn prod() { x.unwrap(); }
#[cfg(test)]
mod tests {
    fn t() { y.unwrap(); }
}
fn prod2() {}
";
        let f = SourceFile::parse(src);
        assert!(!f.lines[0].in_test);
        assert!(f.lines[2].in_test, "mod tests opening line");
        assert!(f.lines[3].in_test, "inside the mod");
        assert!(!f.lines[5].in_test, "after the closing brace");
    }

    #[test]
    fn cfg_test_on_braceless_item_is_cancelled_by_semicolon() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn f() { body(); }\n";
        let f = SourceFile::parse(src);
        assert!(!f.lines[2].in_test, "the fn after the use is not test code");
    }

    #[test]
    fn find_word_respects_boundaries() {
        assert_eq!(find_word("not_unsafe unsafe", "unsafe", 0), Some(11));
        assert_eq!(find_word("unsafely", "unsafe", 0), None);
        assert_eq!(find_word("an unsafe fn", "unsafe", 0), Some(3));
    }
}
