//! `lcc-lint` — the workspace's in-tree invariant checker.
//!
//! The hot path went unsafe for speed (raw-pointer pencil dispatch,
//! uninitialized workspace arenas, a hand-rolled thread pool); the
//! invariants that keep it sound used to live only in comments. This tool
//! machine-checks them on every CI run:
//!
//! ```text
//! lcc-lint --workspace     # scan the whole repo, exit 1 on any violation
//! lcc-lint --self-test     # prove the scanner catches the seeded
//!                          # violations in tools/lcc-lint/fixtures/
//! lcc-lint FILE...         # scan specific files (repo-relative)
//! ```
//!
//! Rules and their ids are documented in [`rules`]; the unwrap budget
//! lives in `tools/lcc-lint/unwrap-ratchet.txt`. The runtime counterpart
//! (the debug-mode aliasing detector) lives in `lcc_fft::detector`.

mod lexer;
mod rules;

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use lexer::SourceFile;
use rules::{Ratchet, Violation};

/// Directories scanned (repo-relative) in `--workspace` mode.
const SCAN_ROOTS: [&str; 5] = ["crates", "shims", "tools", "tests", "examples"];

/// Path components that end a recursive walk: build output and the lint's
/// own deliberately-violating fixtures.
const SKIP_DIRS: [&str; 3] = ["target", "fixtures", ".git"];

fn repo_root() -> PathBuf {
    // tools/lcc-lint/ -> repo root. Compile-time manifest dir keeps the
    // tool runnable from any working directory.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("manifest dir has a repo root two levels up")
        .to_path_buf()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--workspace") => run_workspace(),
        Some("--self-test") => run_self_test(),
        Some("--help") | None => {
            eprintln!("usage: lcc-lint --workspace | --self-test | FILE...");
            ExitCode::from(2)
        }
        Some(_) => run_files(&args),
    }
}

/// Scans the whole repository and applies the ratchet.
fn run_workspace() -> ExitCode {
    let root = repo_root();
    let mut files = Vec::new();
    for dir in SCAN_ROOTS {
        collect_rs_files(&root.join(dir), &mut files);
    }
    files.sort();
    let ratchet = match load_ratchet(&root.join("tools/lcc-lint/unwrap-ratchet.txt")) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("lcc-lint: cannot read ratchet file: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut violations = Vec::new();
    let mut sites_by_file: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    let mut scanned = 0usize;
    for path in &files {
        let rel = rel_path(&root, path);
        let Ok(text) = std::fs::read_to_string(path) else {
            eprintln!("lcc-lint: cannot read {rel}");
            return ExitCode::FAILURE;
        };
        let file = SourceFile::parse(&text);
        let (mut v, sites) = rules::check_file(&rel, &file);
        violations.append(&mut v);
        if !sites.is_empty() {
            sites_by_file.insert(rel, sites);
        }
        scanned += 1;
    }
    rules::apply_ratchet(&ratchet, &sites_by_file, &mut violations);
    report(&violations, scanned)
}

/// Scans explicitly named files (repo-relative or absolute) with an
/// implicit zero-budget ratchet.
fn run_files(args: &[String]) -> ExitCode {
    let root = repo_root();
    let mut violations = Vec::new();
    let mut sites_by_file: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    for arg in args {
        let path = if Path::new(arg).is_absolute() {
            PathBuf::from(arg)
        } else {
            root.join(arg)
        };
        let rel = rel_path(&root, &path);
        let Ok(text) = std::fs::read_to_string(&path) else {
            eprintln!("lcc-lint: cannot read {rel}");
            return ExitCode::FAILURE;
        };
        let file = SourceFile::parse(&text);
        let (mut v, sites) = rules::check_file(&rel, &file);
        violations.append(&mut v);
        if !sites.is_empty() {
            sites_by_file.insert(rel, sites);
        }
    }
    rules::apply_ratchet(&Ratchet::new(), &sites_by_file, &mut violations);
    report(&violations, args.len())
}

fn report(violations: &[Violation], scanned: usize) -> ExitCode {
    for v in violations {
        println!("{v}");
    }
    if violations.is_empty() {
        println!("lcc-lint: {scanned} files clean");
        ExitCode::SUCCESS
    } else {
        println!(
            "lcc-lint: {} violation(s) in {scanned} files",
            violations.len()
        );
        ExitCode::FAILURE
    }
}

/// Self-test over the committed violation fixtures: every `//~ ERROR rule`
/// marker must be matched by a reported violation on that line, and no
/// unexpected violations may appear. The fixtures are the proof that the
/// scanner still catches what it claims to catch.
fn run_self_test() -> ExitCode {
    let dir = repo_root().join("tools/lcc-lint/fixtures");
    let mut files = Vec::new();
    collect_rs_files_unfiltered(&dir, &mut files);
    files.sort();
    if files.is_empty() {
        eprintln!("lcc-lint: no fixtures found under {}", dir.display());
        return ExitCode::FAILURE;
    }

    let mut failures = 0usize;
    let mut checked = 0usize;
    let mut tallies: Vec<(String, usize)> = Vec::new();
    for path in &files {
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let Ok(text) = std::fs::read_to_string(path) else {
            eprintln!("lcc-lint: cannot read fixture {name}");
            return ExitCode::FAILURE;
        };
        let file = SourceFile::parse(&text);
        // Fixtures declare the path the scanner should pretend they have,
        // which is what activates path-scoped rules.
        let pretend = file
            .lines
            .iter()
            .find_map(|l| {
                l.comment
                    .split("lcc-lint: pretend-path ")
                    .nth(1)
                    .map(|rest| rest.split_whitespace().next().unwrap_or("").to_string())
            })
            .unwrap_or_else(|| format!("crates/core/src/{name}"));

        let (mut found, sites) = rules::check_file(&pretend, &file);
        let mut by_file = BTreeMap::new();
        if !sites.is_empty() {
            by_file.insert(pretend.clone(), sites);
        }
        rules::apply_ratchet(&Ratchet::new(), &by_file, &mut found);

        let mut expected: Vec<(usize, String)> = Vec::new();
        for (idx, line) in file.lines.iter().enumerate() {
            for part in line.comment.split("//~ ERROR ").skip(1) {
                // Marker comments are themselves comments, so they arrive
                // concatenated in the line's comment text.
                let rule = part.split_whitespace().next().unwrap_or("");
                expected.push((idx + 1, rule.to_string()));
            }
            // Also accept markers written as the whole comment.
            if let Some(rest) = line.comment.trim().strip_prefix("~ ERROR ") {
                let rule = rest.split_whitespace().next().unwrap_or("");
                expected.push((idx + 1, rule.to_string()));
            }
        }
        expected.sort();
        expected.dedup();
        // A fixture that drifted to zero markers proves nothing — the
        // rule it was written for could regress silently. Fail loudly so
        // the marker rot is fixed rather than masked.
        if expected.is_empty() {
            println!(
                "SELF-TEST FAIL {name}: fixture has no `//~ ERROR` markers \
                 (every fixture must seed at least one violation)"
            );
            failures += 1;
            continue;
        }
        let mut got: Vec<(usize, String)> =
            found.iter().map(|v| (v.line, v.rule.to_string())).collect();
        got.sort();
        got.dedup();

        for e in &expected {
            if !got.contains(e) {
                println!(
                    "SELF-TEST FAIL {name}:{}: seeded violation [{}] was NOT detected",
                    e.0, e.1
                );
                failures += 1;
            }
        }
        for g in &got {
            if !expected.contains(g) {
                println!(
                    "SELF-TEST FAIL {name}:{}: unexpected violation [{}] (no marker)",
                    g.0, g.1
                );
                failures += 1;
            }
        }
        checked += expected.len();
        tallies.push((name, expected.len()));
    }
    if failures == 0 {
        // The expectation counts are derived from the fixtures' own
        // markers, so print the per-fixture tally: a fixture silently
        // losing markers shows up as a shrinking number here (and zero
        // markers fails outright above).
        for (name, n) in &tallies {
            println!("lcc-lint self-test: {name}: {n} seeded violation(s) detected");
        }
        println!(
            "lcc-lint self-test: all {checked} seeded violations detected across {} fixtures",
            files.len()
        );
        ExitCode::SUCCESS
    } else {
        println!("lcc-lint self-test: {failures} mismatch(es)");
        ExitCode::FAILURE
    }
}

/// Recursive `.rs` collection honouring [`SKIP_DIRS`].
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_ref()) {
                collect_rs_files(&path, out);
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// Like [`collect_rs_files`] but without the skip list (the fixtures dir
/// is itself skipped by the main walk).
fn collect_rs_files_unfiltered(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files_unfiltered(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Ratchet file: `# comment` lines plus `path count` entries.
fn load_ratchet(path: &Path) -> Result<Ratchet, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let mut ratchet = Ratchet::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(p), Some(n)) = (parts.next(), parts.next()) else {
            return Err(format!("{}:{}: malformed entry", path.display(), i + 1));
        };
        let n: usize = n
            .parse()
            .map_err(|_| format!("{}:{}: bad count `{n}`", path.display(), i + 1))?;
        ratchet.insert(p.to_string(), n);
    }
    Ok(ratchet)
}
