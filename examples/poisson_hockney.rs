//! Poisson solver via Green's-function convolution.
//!
//! The paper cites Poisson's equation (Eq. 5, `G = 1/(4π|x−x₀|)`) as the
//! canonical member of the kernel family its method targets, and
//! Hockney-style solvers as an application that "exploit[s] zero-structure".
//! This example solves a discrete Poisson problem with charges confined to
//! a few sub-domains — exactly the sparse-input case where the
//! zero-domain-skipping of the low-communication pipeline shines — and
//! compares accuracy/compression across far-field sampling rates.
//!
//! ```sh
//! cargo run --release --example poisson_hockney
//! ```

use lcc_core::{LowCommConfig, LowCommConvolver, TraditionalConvolver};
use lcc_greens::PoissonSpectrum;
use lcc_grid::{relative_l2, Grid3};
use lcc_octree::{RateBand, RateSchedule};

fn main() {
    let n = 64;
    let k = 16;
    let spectrum = PoissonSpectrum::new(n);

    // A zero-mean charge distribution confined to two sub-domains: a dipole.
    let mut rho = Grid3::zeros((n, n, n));
    for d in 0..4 {
        rho[(8 + d, 8, 8)] = 1.0;
        rho[(40 + d, 40, 40)] = -1.0;
    }

    let exact = TraditionalConvolver::new(n).convolve(&rho, &spectrum);

    println!(
        "Poisson dipole on {n}³, charges in 2 of {} sub-domains",
        (n / k).pow(3)
    );
    println!(
        "{:<10} {:>14} {:>14} {:>12}",
        "far rate", "samples", "bytes", "rel. L2 err"
    );
    for far in [2u32, 4, 8, 16] {
        // 1/r decays slowly, so keep a dense halo and an r=2 transition;
        // the far band (periodic distance > k on this 64³ grid) carries the
        // swept rate. (Note 4k would exceed the largest periodic distance
        // here — the bands must fit the grid.)
        let schedule = RateSchedule {
            bands: vec![
                RateBand {
                    max_distance: k / 2,
                    rate: 1,
                },
                RateBand {
                    max_distance: k,
                    rate: 2,
                },
            ],
            far_rate: far,
            boundary_width: 0,
            boundary_rate: 1,
        };
        let conv = LowCommConvolver::new(LowCommConfig {
            n,
            k,
            batch: 1024,
            schedule,
        });
        let (approx, report) = conv.convolve(&rho, &spectrum);
        let err = relative_l2(exact.as_slice(), approx.as_slice());
        println!(
            "{:<10} {:>14} {:>14} {:>12.4}",
            far, report.total_samples, report.exchange_bytes, err
        );
        assert_eq!(
            report.domains_processed, 2,
            "only the charged domains compute"
        );
        assert_eq!(report.domains_skipped, (n / k).pow(3) - 2);
    }
    println!("(accuracy degrades gracefully as the far field is sampled more coarsely)");
}
