//! MASSIF stress-strain simulation on a composite microstructure.
//!
//! Runs the paper's use case end to end: a stiff spherical inclusion in a
//! soft matrix under uniaxial macroscopic strain, solved by the
//! Moulinec–Suquet fixed-point iteration with both inner loops —
//! Algorithm 1 (dense spectral Γ̂) and Algorithm 2 (domain-local compressed
//! convolutions).
//!
//! ```sh
//! cargo run --release --example massif_stress_strain
//! ```

use lcc_core::LowCommConfig;
use lcc_greens::MassifGamma;
use lcc_grid::{IsotropicStiffness, Sym3};
use lcc_massif::{solve, LowCommGamma, Microstructure, SolverConfig, SpectralGamma};
use lcc_octree::RateSchedule;

fn main() {
    let n = 32;
    let matrix = IsotropicStiffness::from_engineering(3.5, 0.35); // epoxy-like
    let inclusion = IsotropicStiffness::from_engineering(70.0, 0.22); // glass-like
    let micro = Microstructure::sphere(n, 0.5, matrix, inclusion);
    let vf = micro.volume_fractions();
    println!(
        "microstructure: {n}³ grid, sphere volume fraction {:.3}",
        vf[1]
    );

    let r = micro.reference_medium();
    let gamma = MassifGamma::new(n, r.lambda, r.mu);
    let e = Sym3::diagonal(0.01, 0.0, 0.0); // 1% uniaxial strain
                                            // Tolerance chosen above Algorithm 2's compression-error floor (§5.3).
    let cfg = SolverConfig {
        max_iters: 30,
        tol: 2.5e-3,
    };

    println!("\nAlgorithm 1 (dense spectral inner loop):");
    let t0 = std::time::Instant::now();
    let ref_result = solve(&micro, e, cfg, &SpectralGamma::new(gamma));
    println!(
        "  converged={} iterations={} residual={:.2e}  ({:.2?})",
        ref_result.converged,
        ref_result.iterations(),
        ref_result.residuals.last().unwrap(),
        t0.elapsed()
    );
    let s_ref = ref_result.effective_stress();
    println!("  effective stress sigma_xx = {:.4}", s_ref.c[0]);

    println!("\nAlgorithm 2 (low-communication inner loop, k=8):");
    let engine = LowCommGamma::new(
        gamma,
        LowCommConfig {
            n,
            k: 8,
            batch: 512,
            schedule: RateSchedule::for_kernel_spread(8, 1.5, 8),
        },
    );
    let t0 = std::time::Instant::now();
    let lc_result = solve(&micro, e, cfg, &engine);
    println!(
        "  converged={} iterations={} residual={:.2e}  ({:.2?})",
        lc_result.converged,
        lc_result.iterations(),
        lc_result.residuals.last().unwrap(),
        t0.elapsed()
    );
    let s_lc = lc_result.effective_stress();
    println!("  effective stress sigma_xx = {:.4}", s_lc.c[0]);

    let strain_err = lc_result.strain.relative_error_to(&ref_result.strain);
    println!(
        "\nstrain-field deviation (Alg. 2 vs Alg. 1): {:.3e}",
        strain_err
    );
    println!(
        "effective-stress deviation: {:.3e}",
        (s_lc.c[0] - s_ref.c[0]).abs() / s_ref.c[0]
    );
    assert!(strain_err < 0.05, "Algorithm 2 deviates too much");
    println!("OK");
}
