//! Quickstart: approximate a large 3D convolution with the low-communication
//! pipeline and compare it against the dense FFT baseline.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use lcc_grid::relative_l2;

use lcc_core::prelude::*;

fn main() {
    // Problem: a 64³ grid convolved with the paper's sharp Gaussian kernel,
    // decomposed into 16³ sub-domains.
    let n = 64;
    let k = 16;
    let sigma = 2.0;
    let kernel = GaussianKernel::new(n, sigma);

    let input = Grid3::from_fn((n, n, n), |x, y, z| {
        ((x as f64 * 0.3).sin() + (y as f64 * 0.17).cos()) * (1.0 + 0.02 * z as f64)
    });

    // The adaptive schedule: dense through a 3σ halo around each
    // sub-domain's response, r = 2 through the transition, r = 8 / 16 beyond.
    // The builder validates (k | n, power-of-two rates, …) instead of
    // panicking mid-pipeline.
    let cfg = LowCommConfig::builder()
        .n(n)
        .k(k)
        .batch(1024)
        .schedule(RateSchedule::for_kernel_spread(k, sigma, 16))
        .build()
        .expect("valid configuration");
    let conv = LowCommConvolver::try_new(cfg).expect("valid configuration");

    println!("low-communication convolution: N = {n}, k = {k}, sigma = {sigma}");
    let t0 = std::time::Instant::now();
    let (approx, report) = conv.session(ConvolveMode::Normal).convolve(&input, &kernel);
    let t_ours = t0.elapsed();

    let t0 = std::time::Instant::now();
    let exact = TraditionalConvolver::new(n).convolve(&input, &kernel);
    let t_dense = t0.elapsed();

    let err = relative_l2(exact.as_slice(), approx.as_slice());
    let per_domain = report.total_samples / report.domains_processed;
    println!("  sub-domains processed    : {}", report.domains_processed);
    println!(
        "  per-worker memory        : {} samples/domain vs {} dense points ({:.1}x less)",
        per_domain,
        n * n * n,
        (n * n * n) as f64 / per_domain as f64
    );
    println!("  all-to-all rounds        : 1 (traditional FFT convolution: 4)");
    println!(
        "  relative L2 error        : {:.3e}  (paper budget: 3e-2)",
        err
    );
    println!("  wall time ours/dense     : {t_ours:.2?} / {t_dense:.2?}");
    println!();
    println!(
        "Note: serially, processing {} domains repeats work the dense path does",
        report.domains_processed
    );
    println!("once — the method trades redundant *local* compute for per-worker memory");
    println!("and communication, which is what scales on a cluster (see DESIGN.md).");
    assert!(err < 0.03, "error above the paper's tolerance");
    println!("OK");
}
