//! Communication scaling study: traditional distributed FFT convolution vs
//! the single routed sparse exchange — measured on the functional cluster
//! simulator, plus the paper's Eq. 1 / Eq. 6 α-β model at paper scale.
//!
//! ```sh
//! cargo run --release --example comm_scaling_study
//! ```

use std::sync::Arc;

use lcc_comm::{
    convolve_distributed, encode_f64s, run_cluster, scatter_slabs, AlphaBeta, CommScenario,
};
use lcc_core::{LowCommConfig, LowCommConvolver};
use lcc_fft::{Complex64, FftPlanner};
use lcc_greens::{GaussianKernel, KernelSpectrum};
use lcc_grid::{decompose_uniform, BoxRegion, Grid3};
use lcc_octree::RateSchedule;

/// Runs both deployments at one size and prints measured wire traffic.
fn measured(n: usize, k: usize, p: usize) {
    let kernel = Arc::new(GaussianKernel::new(n, 1.0));
    let field: Vec<Complex64> = (0..n * n * n)
        .map(|i| Complex64::from_real((i as f64 * 0.23).sin()))
        .collect();

    // Traditional: slab-decomposed FFT convolution (two all-to-all
    // transposes on this path; a full 3-stage pipeline does four).
    let slabs = scatter_slabs(&field, n, p);
    let kern = {
        let kernel = kernel.clone();
        move |f: [usize; 3]| kernel.eval(f)
    };
    let (_, trad) = run_cluster(p, move |mut w| {
        let planner = FftPlanner::new();
        let mine = slabs[w.rank()].clone();
        convolve_distributed(&mut w, &planner, mine, n, &kern).expect("convolution failed");
    });

    // Proposed: local compressed convolutions, then ONE exchange where each
    // receiver gets only the octree cells intersecting its slab. Domains
    // are owned by the worker owning their *response* region, so the dense
    // cores never travel.
    let conv = Arc::new(LowCommConvolver::new(LowCommConfig {
        n,
        k,
        batch: 1024,
        schedule: RateSchedule::paper_default(k, 16),
    }));
    let input = Arc::new(Grid3::from_vec(
        (n, n, n),
        field.iter().map(|c| c.re).collect(),
    ));
    let domains = decompose_uniform(n, k);
    let assignment: Vec<Vec<usize>> = {
        let mut a = vec![Vec::new(); p];
        for (di, d) in domains.iter().enumerate() {
            let r = conv.response_region(d, kernel.as_ref());
            a[r.lo[0] / (n / p)].push(di);
        }
        a
    };
    let (_, ours) = run_cluster(p, {
        let conv = conv.clone();
        let domains = domains.clone();
        let assignment = assignment.clone();
        let kernel = kernel.clone();
        let input = input.clone();
        move |mut w| {
            let fields: Vec<_> = assignment[w.rank()]
                .iter()
                .map(|&di| {
                    let d = domains[di];
                    let sub = input.extract(&d);
                    let plan = conv.plan_for(conv.response_region(&d, kernel.as_ref()));
                    conv.local()
                        .convolve_compressed(&sub, d.lo, kernel.as_ref(), plan)
                })
                .collect();
            let outgoing: Vec<Vec<u8>> = (0..w.size())
                .map(|dest| {
                    let region = BoxRegion::new([dest * n / p, 0, 0], [(dest + 1) * n / p, n, n]);
                    let mut bytes = Vec::new();
                    for f in &fields {
                        bytes.extend(encode_f64s(&f.region_payload(&region).samples));
                    }
                    bytes
                })
                .collect();
            let _ = w.alltoall(outgoing).expect("exchange failed");
        }
    });

    println!(
        "{:<6} {:<4} {:<4} {:>16} {:>8} {:>16} {:>8} {:>9.1}x",
        n,
        k,
        p,
        trad.bytes(),
        trad.rounds(),
        ours.bytes(),
        ours.rounds(),
        trad.bytes() as f64 / ours.bytes() as f64
    );
}

fn main() {
    println!("== measured on the functional cluster simulator ==");
    println!(
        "{:<6} {:<4} {:<4} {:>16} {:>8} {:>16} {:>8} {:>10}",
        "N", "k", "P", "trad bytes", "rounds", "ours bytes", "rounds", "reduction"
    );
    for (n, k, p) in [(32usize, 8usize, 4usize), (64, 16, 4), (64, 16, 8)] {
        measured(n, k, p);
    }

    println!("\n== analytic α-β model at paper scale (Eq. 1 vs Eq. 6) ==");
    println!(
        "{:<6} {:<6} {:>14} {:>14} {:>10}",
        "N", "P", "T_fft (s)", "T_ours (s)", "ratio"
    );
    for (n, p) in [
        (1024usize, 64usize),
        (2048, 256),
        (4096, 1024),
        (8192, 4096),
    ] {
        let s = CommScenario {
            n,
            p,
            elem_bytes: 16,
            link: AlphaBeta::hpc_default(),
        };
        let t_fft = s.t_fft_bandwidth_only();
        let t_ours = s.t_ours(128, 8.0);
        println!(
            "{:<6} {:<6} {:>14.4e} {:>14.4e} {:>10.1}",
            n,
            p,
            t_fft,
            t_ours,
            t_fft / t_ours
        );
    }
}
