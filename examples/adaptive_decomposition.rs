//! Irregular (adaptive) domain decomposition — the paper's §3.1 extension
//! ("for now, we assume regular volumetric sub-domains but irregular
//! partitions can also be made") in action on a sparse, concentrated input.
//!
//! ```sh
//! cargo run --release --example adaptive_decomposition
//! ```

use lcc_core::{AdaptiveConvolver, LowCommConfig, LowCommConvolver, TraditionalConvolver};
use lcc_greens::GaussianKernel;
use lcc_grid::{decompose_adaptive, relative_l2, AdaptiveDecomposition, Grid3};
use lcc_octree::RateSchedule;

fn main() {
    let n = 64;
    let sigma = 1.5;
    let kernel = GaussianKernel::new(n, sigma);

    // A concentrated source: two small hot clusters in a big quiet grid —
    // the Hockney-style zero-structure case the paper calls out.
    let mut input = Grid3::zeros((n, n, n));
    for d in 0..3 {
        input[(5 + d, 6, 7)] = 3.0;
        input[(44, 45 + d, 46)] = -2.0;
    }

    let exact = TraditionalConvolver::new(n).convolve(&input, &kernel);

    // Regular decomposition baseline (fixed k = 8).
    let regular = LowCommConvolver::new(LowCommConfig {
        n,
        k: 8,
        batch: 1024,
        schedule: RateSchedule::for_kernel_spread(8, sigma, 16),
    });
    let t0 = std::time::Instant::now();
    let (reg_out, reg_report) = regular.convolve(&input, &kernel);
    let t_reg = t0.elapsed();
    let reg_err = relative_l2(exact.as_slice(), reg_out.as_slice());

    // Irregular: refine only where the energy is.
    let domains = decompose_adaptive(&input, AdaptiveDecomposition::new(8, 32));
    let adaptive = AdaptiveConvolver::new(n, 1024, sigma, 16);
    let t0 = std::time::Instant::now();
    let (ada_out, ada_report) = adaptive.convolve(&input, &kernel, &domains);
    let t_ada = t0.elapsed();
    let ada_err = relative_l2(exact.as_slice(), ada_out.as_slice());

    println!("sparse input on {n}³ (two hot clusters)");
    println!("\nregular k=8 decomposition:");
    println!(
        "  domains: {} processed / {} skipped, samples {}, err {:.2e}, {:?}",
        reg_report.domains_processed,
        reg_report.domains_skipped,
        reg_report.total_samples,
        reg_err,
        t_reg
    );
    println!("\nadaptive (irregular) decomposition, k in [8, 32]:");
    println!(
        "  domains: {} processed / {} skipped (of {} boxes), samples {}, err {:.2e}, {:?}",
        ada_report.domains_processed,
        ada_report.domains_skipped,
        domains.len(),
        ada_report.total_samples,
        ada_err,
        t_ada
    );
    let sizes: std::collections::BTreeMap<usize, usize> =
        domains.iter().fold(Default::default(), |mut m, d| {
            *m.entry(d.size().0).or_insert(0) += 1;
            m
        });
    println!("  box census (size -> count): {sizes:?}");
    assert!(ada_err < 0.03 && reg_err < 0.03);
    println!("\nOK — the irregular tiling spends its boxes where the field lives.");
}
