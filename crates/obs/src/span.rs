//! Hierarchical spans: RAII guards buffered per thread, drained into a
//! lock-free global collector.
//!
//! A [`span`] guard records wall time, the calling thread, the thread's
//! cluster rank/epoch context (see [`set_rank`] / [`set_epoch`]) and its
//! parent span (the innermost live span on the same thread). When no
//! [`ObsSession`](crate::ObsSession) is active the whole machinery is a
//! single relaxed atomic load per guard — no clock read, no thread-local
//! touch, and crucially **no allocation**, so the `exp_pipeline_perf`
//! zero-alloc assertions hold with observability compiled in.
//!
//! Collection path: each thread appends finished spans to its own buffer
//! (registered once in a global registry); buffers that grow past
//! [`FLUSH_THRESHOLD`] are spilled into a lock-free Treiber stack of
//! chunks. [`drain_all`] (called by `ObsSession::finish`) swaps the stack
//! empty and sweeps the registered buffers.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// One finished span. `id` is process-unique and nonzero; `parent` is `0`
/// for root spans. `rank` is `-1` when the recording thread had no cluster
/// rank context.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    pub id: u64,
    pub parent: u64,
    pub name: &'static str,
    /// Start time in nanoseconds since the process monotonic epoch.
    pub start_ns: u64,
    pub dur_ns: u64,
    /// Process-unique recording-thread id (registration order).
    pub thread: u32,
    /// Simulated cluster rank, `-1` if none.
    pub rank: i32,
    /// Cluster membership epoch the thread was in, `0` if none.
    pub epoch: u64,
}

/// Master switch, owned by the session layer. Spans and counters check it
/// with one relaxed load; everything else happens only when it is set.
pub(crate) static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether an `ObsSession` is currently collecting.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_THREAD_ID: AtomicU32 = AtomicU32::new(0);

fn clock() -> &'static Instant {
    static CLOCK: OnceLock<Instant> = OnceLock::new();
    CLOCK.get_or_init(Instant::now)
}

/// Nanoseconds since the process monotonic epoch.
pub(crate) fn now_ns() -> u64 {
    clock().elapsed().as_nanos() as u64
}

/// Per-thread span state. The record buffer is shared (`Arc`) with the
/// global registry so `drain_all` can sweep it from the session thread;
/// the parent stack and rank/epoch context are thread-private.
struct ThreadCtx {
    buf: Arc<Mutex<Vec<SpanRecord>>>,
    stack: Vec<u64>,
    thread: u32,
    rank: i32,
    epoch: u64,
}

/// Registered thread buffers. Entries are kept for the process lifetime
/// (a dead thread leaves one empty `Vec` behind — bounded by the number of
/// threads ever spawned, and it preserves records a thread buffered before
/// exiting).
static REGISTRY: Mutex<Vec<Arc<Mutex<Vec<SpanRecord>>>>> = Mutex::new(Vec::new());

impl ThreadCtx {
    fn register() -> Self {
        let buf = Arc::new(Mutex::new(Vec::new()));
        if let Ok(mut reg) = REGISTRY.lock() {
            reg.push(Arc::clone(&buf));
        }
        ThreadCtx {
            buf,
            stack: Vec::new(),
            thread: NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed),
            rank: -1,
            epoch: 0,
        }
    }
}

thread_local! {
    static CTX: RefCell<ThreadCtx> = RefCell::new(ThreadCtx::register());
}

/// Spill threshold for per-thread buffers: past this many buffered spans
/// the buffer is pushed to the global chunk stack so long runs don't pin
/// one huge `Vec` per thread.
const FLUSH_THRESHOLD: usize = 4096;

/// A lock-free stack of spilled span chunks (Treiber stack). Push is a
/// CAS loop; drain swaps the head with null and walks the detached list.
struct Chunk {
    records: Vec<SpanRecord>,
    next: *mut Chunk,
}

static CHUNKS: AtomicPtr<Chunk> = AtomicPtr::new(std::ptr::null_mut());

fn push_chunk(records: Vec<SpanRecord>) {
    if records.is_empty() {
        return;
    }
    let node = Box::into_raw(Box::new(Chunk {
        records,
        next: std::ptr::null_mut(),
    }));
    let mut head = CHUNKS.load(Ordering::Acquire);
    loop {
        // SAFETY: `node` came from `Box::into_raw` above and is not yet
        // published to any other thread, so writing its `next` field is
        // exclusive access.
        unsafe { (*node).next = head };
        match CHUNKS.compare_exchange_weak(head, node, Ordering::AcqRel, Ordering::Acquire) {
            Ok(_) => return,
            Err(h) => head = h,
        }
    }
}

fn drain_chunks(out: &mut Vec<SpanRecord>) {
    let mut p = CHUNKS.swap(std::ptr::null_mut(), Ordering::AcqRel);
    while !p.is_null() {
        // SAFETY: the swap detached the whole list from the shared head,
        // so no other thread can reach `p`; every node was created by
        // `Box::into_raw` in `push_chunk` and is consumed exactly once.
        let node = unsafe { Box::from_raw(p) };
        out.extend(node.records);
        p = node.next;
    }
}

/// Sets the simulated cluster rank recorded on this thread's spans
/// (`None` clears it). Cluster workers call this once at thread start.
pub fn set_rank(rank: Option<u32>) {
    let _ = CTX.try_with(|c| c.borrow_mut().rank = rank.map_or(-1, |r| r as i32));
}

/// Sets the cluster membership epoch recorded on this thread's spans.
pub fn set_epoch(epoch: u64) {
    let _ = CTX.try_with(|c| c.borrow_mut().epoch = epoch);
}

/// RAII span guard returned by [`span`]. Records itself on drop; inactive
/// guards (no session running at creation) do nothing at all.
pub struct Span {
    id: u64,
    start_ns: u64,
    name: &'static str,
    parent: u64,
    active: bool,
}

/// Opens a span named `name`. The name must be a string literal (static):
/// records reference it without copying. Returns an inert guard when no
/// session is active — one relaxed load, nothing else.
#[inline]
pub fn span(name: &'static str) -> Span {
    if !enabled() {
        return Span {
            id: 0,
            start_ns: 0,
            name,
            parent: 0,
            active: false,
        };
    }
    span_slow(name)
}

#[cold]
fn span_slow(name: &'static str) -> Span {
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    let parent = CTX
        .try_with(|c| {
            let mut c = c.borrow_mut();
            let parent = c.stack.last().copied().unwrap_or(0);
            c.stack.push(id);
            parent
        })
        .unwrap_or(0);
    Span {
        id,
        start_ns: now_ns(),
        name,
        parent,
        active: true,
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        let dur_ns = now_ns().saturating_sub(self.start_ns);
        let rec_id = self.id;
        let _ = CTX.try_with(|c| {
            let mut c = c.borrow_mut();
            // Guards drop LIFO within a thread; popping until our id also
            // recovers from a guard leaked with `mem::forget`.
            while let Some(top) = c.stack.pop() {
                if top == rec_id {
                    break;
                }
            }
            let rec = SpanRecord {
                id: rec_id,
                parent: self.parent,
                name: self.name,
                start_ns: self.start_ns,
                dur_ns,
                thread: c.thread,
                rank: c.rank,
                epoch: c.epoch,
            };
            let spill = {
                let mut buf = match c.buf.lock() {
                    Ok(b) => b,
                    Err(p) => p.into_inner(),
                };
                buf.push(rec);
                if buf.len() >= FLUSH_THRESHOLD {
                    Some(std::mem::take(&mut *buf))
                } else {
                    None
                }
            };
            if let Some(records) = spill {
                push_chunk(records);
            }
        });
    }
}

/// Discards every buffered span (registered thread buffers and spilled
/// chunks). Called by `ObsSession::start` so a new session begins clean.
pub(crate) fn clear_all() {
    let mut scratch = Vec::new();
    drain_chunks(&mut scratch);
    if let Ok(reg) = REGISTRY.lock() {
        for buf in reg.iter() {
            match buf.lock() {
                Ok(mut b) => b.clear(),
                Err(p) => p.into_inner().clear(),
            }
        }
    }
}

/// Moves every buffered span out (chunks first, then live thread buffers)
/// and returns them sorted by start time. Called by `ObsSession::finish`
/// after collection is disabled.
pub(crate) fn drain_all() -> Vec<SpanRecord> {
    let mut out = Vec::new();
    drain_chunks(&mut out);
    if let Ok(reg) = REGISTRY.lock() {
        for buf in reg.iter() {
            match buf.lock() {
                Ok(mut b) => out.append(&mut b),
                Err(p) => out.append(&mut p.into_inner()),
            }
        }
    }
    out.sort_by_key(|r| (r.start_ns, r.id));
    out
}

/// Interns a span name read back from a capture file, returning a
/// `&'static str` usable in [`SpanRecord`]. Distinct names are leaked
/// once; repeats return the existing allocation, so the leak is bounded by
/// the number of distinct span names ever replayed.
pub fn intern(name: &str) -> &'static str {
    static NAMES: Mutex<Vec<&'static str>> = Mutex::new(Vec::new());
    let mut names = match NAMES.lock() {
        Ok(n) => n,
        Err(p) => p.into_inner(),
    };
    if let Some(existing) = names.iter().find(|n| **n == name) {
        return existing;
    }
    let leaked: &'static str = Box::leak(name.to_string().into_boxed_str());
    names.push(leaked);
    leaked
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_span_is_inert() {
        let _gate = crate::test_gate();
        assert!(!enabled());
        let g = span("never_recorded");
        assert!(!g.active);
        drop(g);
    }

    #[test]
    fn intern_dedupes() {
        let a = intern("stage_x");
        let b = intern("stage_x");
        assert!(std::ptr::eq(a, b));
    }
}
