//! The `--trace-tree` exporter: a flamegraph-style text rendering of the
//! span hierarchy.
//!
//! Spans are grouped structurally — siblings with the same name merge into
//! one node accumulating call count and total time — so a convolve that
//! ran 64 `stage2_pencils` spans renders as one line with `64 calls`.
//! Percentages are of the session wall time.

use std::collections::HashMap;

use crate::span::SpanRecord;

struct Node {
    name: &'static str,
    calls: usize,
    total_ns: u64,
    first_start: u64,
    children: Vec<Node>,
}

/// Merges the given spans (children of one parent set) into name-grouped
/// nodes, recursing through `by_parent`.
fn build(ids: &[usize], spans: &[SpanRecord], by_parent: &HashMap<u64, Vec<usize>>) -> Vec<Node> {
    let mut nodes: Vec<Node> = Vec::new();
    for &i in ids {
        let s = &spans[i];
        let node = match nodes.iter_mut().find(|n| n.name == s.name) {
            Some(n) => n,
            None => {
                nodes.push(Node {
                    name: s.name,
                    calls: 0,
                    total_ns: 0,
                    first_start: s.start_ns,
                    children: Vec::new(),
                });
                nodes.last_mut().expect("just pushed")
            }
        };
        node.calls += 1;
        node.total_ns += s.dur_ns;
        node.first_start = node.first_start.min(s.start_ns);
        if let Some(kids) = by_parent.get(&s.id) {
            let merged = build(kids, spans, by_parent);
            merge_into(&mut node.children, merged);
        }
    }
    nodes.sort_by_key(|n| n.first_start);
    nodes
}

fn merge_into(dst: &mut Vec<Node>, src: Vec<Node>) {
    for s in src {
        match dst.iter_mut().find(|d| d.name == s.name) {
            Some(d) => {
                d.calls += s.calls;
                d.total_ns += s.total_ns;
                d.first_start = d.first_start.min(s.first_start);
                merge_into(&mut d.children, s.children);
            }
            None => dst.push(s),
        }
    }
    dst.sort_by_key(|n| n.first_start);
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

fn render_node(node: &Node, prefix: &str, last: bool, root: bool, wall_ns: u64, out: &mut String) {
    let (branch, child_prefix) = if root {
        (String::new(), String::new())
    } else if last {
        (format!("{prefix}└─ "), format!("{prefix}   "))
    } else {
        (format!("{prefix}├─ "), format!("{prefix}│  "))
    };
    let pct = if wall_ns > 0 {
        100.0 * node.total_ns as f64 / wall_ns as f64
    } else {
        0.0
    };
    let label = format!("{branch}{}", node.name);
    out.push_str(&format!(
        "{label:<44} {:>7} {:>12} {pct:>6.1}%\n",
        node.calls,
        fmt_ns(node.total_ns)
    ));
    for (i, child) in node.children.iter().enumerate() {
        render_node(
            child,
            &child_prefix,
            i + 1 == node.children.len(),
            false,
            wall_ns,
            out,
        );
    }
}

/// Renders the span forest as aligned text. `wall_ns` (session wall time)
/// is the 100% reference for the percentage column.
pub fn render(spans: &[SpanRecord], wall_ns: u64) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<44} {:>7} {:>12} {:>7}\n",
        "span", "calls", "total", "wall%"
    ));
    if spans.is_empty() {
        out.push_str("(no spans recorded)\n");
        return out;
    }
    let known: std::collections::HashSet<u64> = spans.iter().map(|s| s.id).collect();
    let mut by_parent: HashMap<u64, Vec<usize>> = HashMap::new();
    let mut roots: Vec<usize> = Vec::new();
    for (i, s) in spans.iter().enumerate() {
        // A parent that never finished (guard alive at session end) has no
        // record; treat its children as roots rather than dropping them.
        if s.parent != 0 && known.contains(&s.parent) {
            by_parent.entry(s.parent).or_default().push(i);
        } else {
            roots.push(i);
        }
    }
    let forest = build(&roots, spans, &by_parent);
    for (i, node) in forest.iter().enumerate() {
        render_node(node, "", i + 1 == forest.len(), true, wall_ns, &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::intern;

    fn rec(id: u64, parent: u64, name: &'static str, start: u64, dur: u64) -> SpanRecord {
        SpanRecord {
            id,
            parent,
            name,
            start_ns: start,
            dur_ns: dur,
            thread: 0,
            rank: -1,
            epoch: 0,
        }
    }

    #[test]
    fn merges_siblings_and_nests() {
        let spans = vec![
            rec(1, 0, intern("convolve"), 0, 1000),
            rec(2, 1, intern("stage"), 10, 200),
            rec(3, 1, intern("stage"), 220, 300),
            rec(4, 1, intern("accumulate"), 600, 100),
        ];
        let text = render(&spans, 1000);
        assert!(text.contains("convolve"), "{text}");
        // Two stage spans merged into one line with 2 calls.
        let stage_line = text
            .lines()
            .find(|l| l.contains("stage"))
            .expect("stage line");
        assert!(stage_line.contains('2'), "{stage_line}");
        assert!(text.contains("accumulate"));
        // Header + 3 distinct nodes.
        assert_eq!(text.lines().count(), 4, "{text}");
    }

    #[test]
    fn orphaned_children_become_roots() {
        let spans = vec![rec(5, 99, intern("lonely"), 0, 10)];
        let text = render(&spans, 10);
        assert!(text.contains("lonely"), "{text}");
    }
}
