//! Typed counters and gauges, registered once as statics and sampled per
//! session.
//!
//! Every instrument the pipeline emits lives here, in one place, so the
//! exporters (and the `BENCH_obs.json` schema) have a closed, known set.
//! Increments are gated on the session switch with a single relaxed load —
//! with no session active a counter add is branch-not-taken and no store
//! happens, preserving the hot path's performance envelope.
//!
//! The `comm.*` counters are incremented at the *same call sites* that
//! update [`CommStats`] in `lcc_comm::cluster`, which is what makes the
//! acceptance check "obs byte totals exactly match `CommStats`" hold by
//! construction rather than by reconciliation.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::span::enabled;

/// A monotonically increasing event counter.
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
}

impl Counter {
    pub const fn new(name: &'static str) -> Self {
        Counter {
            name,
            value: AtomicU64::new(0),
        }
    }

    /// Adds `v` when a session is collecting; no-op otherwise.
    #[inline]
    pub fn add(&self, v: u64) {
        if enabled() {
            self.value.fetch_add(v, Ordering::Relaxed);
        }
    }

    /// Adds 1 when a session is collecting.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    pub fn name(&self) -> &'static str {
        self.name
    }

    pub(crate) fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A last-value-wins gauge holding an `f64` (stored as bits).
pub struct Gauge {
    name: &'static str,
    bits: AtomicU64,
}

impl Gauge {
    pub const fn new(name: &'static str) -> Self {
        Gauge {
            name,
            bits: AtomicU64::new(0),
        }
    }

    /// Records `v` when a session is collecting; no-op otherwise.
    #[inline]
    pub fn set(&self, v: f64) {
        if enabled() {
            self.bits.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    pub fn name(&self) -> &'static str {
        self.name
    }

    pub(crate) fn reset(&self) {
        self.bits.store(0, Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------------
// The instrument registry. Names are `<subsystem>.<event>`; adding an
// instrument means adding it to the matching `all_*` list below.
// ---------------------------------------------------------------------------

/// Logical payload bytes entering `CommWorld::send` (mirrors
/// `CommStats::bytes`).
pub static COMM_BYTES_LOGICAL: Counter = Counter::new("comm.bytes_logical");
/// Logical messages (mirrors `CommStats::message_count`).
pub static COMM_MESSAGES_LOGICAL: Counter = Counter::new("comm.messages_logical");
/// Physical wire bytes including retransmits and acks (mirrors
/// `CommStats::bytes_physical`).
pub static COMM_BYTES_PHYSICAL: Counter = Counter::new("comm.bytes_physical");
/// Physical transmission attempts (mirrors `CommStats::messages_physical`).
pub static COMM_MESSAGES_PHYSICAL: Counter = Counter::new("comm.messages_physical");
/// Acknowledgement frames sent (mirrors `CommStats::ack_count`).
pub static COMM_ACKS: Counter = Counter::new("comm.acks");
/// Retransmitted frames (mirrors `CommStats::retransmit_count`).
pub static COMM_RETRANSMITS: Counter = Counter::new("comm.retransmits");
/// Send attempts that exhausted their retry deadline (mirrors
/// `CommStats::timeout_count`).
pub static COMM_TIMEOUTS: Counter = Counter::new("comm.timeouts");
/// Duplicate frames suppressed at the receiver (mirrors
/// `CommStats::duplicates_suppressed`).
pub static COMM_DUPLICATES: Counter = Counter::new("comm.duplicates_suppressed");
/// Collective rounds counted once per collective (mirrors
/// `CommStats::collective_rounds`).
pub static COMM_COLLECTIVE_ROUNDS: Counter = Counter::new("comm.collective_rounds");

/// Workspace arenas leased from the global free list.
pub static FFT_WORKSPACE_LEASES: Counter = Counter::new("fft.workspace_leases");

/// z-pencils pushed through the stage-2 batched transform.
pub static PIPELINE_PENCILS: Counter = Counter::new("pipeline.pencils_transformed");

/// Octree sampling plans built (cache misses; hits reuse a memoized plan).
pub static OCTREE_PLANS_BUILT: Counter = Counter::new("octree.plans_built");
/// Compressed samples captured out of retained planes.
pub static OCTREE_SAMPLES_CAPTURED: Counter = Counter::new("octree.samples_captured");

/// Sub-domains convolved at full fidelity.
pub static CONVOLVE_DOMAINS_PROCESSED: Counter = Counter::new("convolve.domains_processed");
/// Sub-domains skipped as identically zero.
pub static CONVOLVE_DOMAINS_SKIPPED: Counter = Counter::new("convolve.domains_skipped");
/// Orphaned sub-domains rebuilt at the coarsest (degraded) rate.
pub static CONVOLVE_DOMAINS_DEGRADED: Counter = Counter::new("convolve.domains_degraded");
/// Orphaned sub-domains recovered exactly by claimants.
pub static CONVOLVE_DOMAINS_RECOVERED: Counter = Counter::new("convolve.domains_recovered");
/// Bytes of the single sparse accumulation exchange (Eq. 6 numerator).
pub static CONVOLVE_EXCHANGE_BYTES: Counter = Counter::new("convolve.exchange_bytes");
/// Compressed samples across all processed domains.
pub static CONVOLVE_SAMPLES: Counter = Counter::new("convolve.samples");

/// MASSIF solver iterations executed.
pub static MASSIF_ITERATIONS: Counter = Counter::new("massif.iterations");

/// Heartbeat frames transmitted by the liveness layer.
pub static LIVENESS_HEARTBEATS_SENT: Counter = Counter::new("liveness.heartbeats_sent");
/// Heartbeat frames received by the liveness layer.
pub static LIVENESS_HEARTBEATS_RECEIVED: Counter = Counter::new("liveness.heartbeats_received");
/// Peers demoted on hard socket evidence (EPIPE/ECONNRESET/reader EOF).
pub static LIVENESS_HARD_EVIDENCE: Counter = Counter::new("liveness.hard_evidence");
/// Peers that crossed the adaptive silence threshold.
pub static LIVENESS_SUSPICIONS: Counter = Counter::new("liveness.suspicions");
/// Newly-dead ranks observed across membership sweeps (mirrors
/// `LivenessStats::deaths_detected`).
pub static LIVENESS_DEATHS_DETECTED: Counter = Counter::new("liveness.deaths_detected");
/// Restart-from-checkpoint rejoins performed (mirrors
/// `LivenessStats::rejoins`).
pub static LIVENESS_REJOINS: Counter = Counter::new("liveness.rejoins");

/// Requests offered to the service's admission controller.
pub static SERVICE_OFFERED: Counter = Counter::new("service.offered");
/// Requests admitted at full fidelity.
pub static SERVICE_ADMITTED: Counter = Counter::new("service.admitted");
/// Requests admitted degraded under load shedding.
pub static SERVICE_SHED: Counter = Counter::new("service.shed");
/// Requests rejected: tenant queue at capacity.
pub static SERVICE_REJECTED_QUEUE_FULL: Counter = Counter::new("service.rejected_queue_full");
/// Requests rejected: tenant quota exhausted.
pub static SERVICE_REJECTED_QUOTA: Counter = Counter::new("service.rejected_quota");
/// Requests rejected: exact service demanded while shedding.
pub static SERVICE_REJECTED_SHEDDING: Counter = Counter::new("service.rejected_shedding");
/// Coalesced batches dispatched onto the worker pool.
pub static SERVICE_BATCHES: Counter = Counter::new("service.batches");
/// Requests served (responses produced).
pub static SERVICE_REQUESTS_COMPLETED: Counter = Counter::new("service.requests_completed");
/// Plan-registry hits (a tenant reused a cached convolver).
pub static SERVICE_PLAN_HITS: Counter = Counter::new("service.plan_hits");
/// Plan-registry misses (a convolver was built).
pub static SERVICE_PLAN_MISSES: Counter = Counter::new("service.plan_misses");
/// Plan-registry evictions (an entry aged out of the bounded cache).
pub static SERVICE_PLAN_EVICTIONS: Counter = Counter::new("service.plan_evictions");
/// Shed-mode entries (backlog crossed the high watermark).
pub static SERVICE_SHED_ENTRIES: Counter = Counter::new("service.shed_entries");
/// Shed-mode exits (backlog drained past the hysteresis floor).
pub static SERVICE_SHED_EXITS: Counter = Counter::new("service.shed_exits");

/// Last relative residual the MASSIF solver reported.
pub static MASSIF_RESIDUAL: Gauge = Gauge::new("massif.residual");

/// Current total queued depth across all tenants of the service.
pub static SERVICE_QUEUE_DEPTH: Gauge = Gauge::new("service.queue_depth");

static COUNTERS: [&Counter; 39] = [
    &COMM_BYTES_LOGICAL,
    &COMM_MESSAGES_LOGICAL,
    &COMM_BYTES_PHYSICAL,
    &COMM_MESSAGES_PHYSICAL,
    &COMM_ACKS,
    &COMM_RETRANSMITS,
    &COMM_TIMEOUTS,
    &COMM_DUPLICATES,
    &COMM_COLLECTIVE_ROUNDS,
    &FFT_WORKSPACE_LEASES,
    &PIPELINE_PENCILS,
    &OCTREE_PLANS_BUILT,
    &OCTREE_SAMPLES_CAPTURED,
    &CONVOLVE_DOMAINS_PROCESSED,
    &CONVOLVE_DOMAINS_SKIPPED,
    &CONVOLVE_DOMAINS_DEGRADED,
    &CONVOLVE_DOMAINS_RECOVERED,
    &CONVOLVE_EXCHANGE_BYTES,
    &CONVOLVE_SAMPLES,
    &MASSIF_ITERATIONS,
    &LIVENESS_HEARTBEATS_SENT,
    &LIVENESS_HEARTBEATS_RECEIVED,
    &LIVENESS_HARD_EVIDENCE,
    &LIVENESS_SUSPICIONS,
    &LIVENESS_DEATHS_DETECTED,
    &LIVENESS_REJOINS,
    &SERVICE_OFFERED,
    &SERVICE_ADMITTED,
    &SERVICE_SHED,
    &SERVICE_REJECTED_QUEUE_FULL,
    &SERVICE_REJECTED_QUOTA,
    &SERVICE_REJECTED_SHEDDING,
    &SERVICE_BATCHES,
    &SERVICE_REQUESTS_COMPLETED,
    &SERVICE_PLAN_HITS,
    &SERVICE_PLAN_MISSES,
    &SERVICE_PLAN_EVICTIONS,
    &SERVICE_SHED_ENTRIES,
    &SERVICE_SHED_EXITS,
];

static GAUGES: [&Gauge; 2] = [&MASSIF_RESIDUAL, &SERVICE_QUEUE_DEPTH];

/// Every registered counter, in stable export order.
pub fn all_counters() -> &'static [&'static Counter] {
    &COUNTERS
}

/// Every registered gauge, in stable export order.
pub fn all_gauges() -> &'static [&'static Gauge] {
    &GAUGES
}

/// Zeroes every instrument (session start).
pub(crate) fn reset_all() {
    for c in all_counters() {
        c.reset();
    }
    for g in all_gauges() {
        g.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = all_counters().iter().map(|c| c.name()).collect();
        names.extend(all_gauges().iter().map(|g| g.name()));
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(names.len(), dedup.len(), "duplicate instrument name");
    }

    #[test]
    fn disabled_add_is_dropped() {
        let _gate = crate::test_gate();
        static T: Counter = Counter::new("test.disabled");
        assert!(!enabled());
        T.add(7);
        assert_eq!(T.get(), 0);
    }
}
