//! `lcc_obs` — zero-dependency structured tracing and metrics for the
//! low-communication convolution pipeline.
//!
//! The paper's argument is a communication/accuracy ledger (Eq. 1 dense
//! all-to-all bytes vs Eq. 6 compressed-exchange bytes at ≤3% error);
//! this crate is the instrument panel that makes every run produce that
//! ledger. Three layers:
//!
//! * **Spans** ([`span`] / [`span!`]) — hierarchical RAII wall-time guards
//!   buffered per thread and drained into a lock-free global collector,
//!   each recording parent, thread, cluster rank and membership epoch.
//! * **Counters / gauges** ([`metrics`]) — typed instruments registered
//!   once as statics (logical vs physical comm bytes, pencils transformed,
//!   workspace leases, retries, degraded/recovered domains, …) and sampled
//!   per session. The `comm.*` counters are incremented at the same call
//!   sites as `CommStats`, so totals match it exactly.
//! * **Capture / replay** ([`ObsReport::capture_into`] /
//!   [`ObsReport::replay_from`]) — a versioned binary log so a cluster-sim
//!   run can be dumped and re-rendered offline, plus a flamegraph-style
//!   [`ObsReport::trace_tree`] text view.
//!
//! Everything is inert until an [`ObsSession`] starts: with no session
//! live, a span guard or counter add costs one relaxed atomic load and no
//! allocation, which is what keeps the `exp_pipeline_perf` zero-alloc and
//! bit-identity assertions true with instrumentation compiled in.

pub mod capture;
pub mod metrics;
pub mod session;
pub mod span;
pub mod tree;

pub use capture::ObsError;
pub use metrics::{Counter, Gauge};
pub use session::{ObsReport, ObsSession};
pub use span::{enabled, set_epoch, set_rank, span, Span, SpanRecord};

/// Opens a named RAII span; expands to the guard expression, so bind it:
/// `let _s = span!("stage1_fft");`. The guard records on drop. A no-op
/// (single relaxed load) when no [`ObsSession`] is active.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span($name)
    };
}

/// Serializes tests that toggle the global session switch.
#[cfg(test)]
pub(crate) fn test_gate() -> std::sync::MutexGuard<'static, ()> {
    static GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());
    match GATE.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn macro_returns_guard() {
        let _gate = crate::test_gate();
        let s = crate::ObsSession::start().expect("no live session");
        {
            let _g = span!("macro_span");
        }
        let report = s.finish();
        assert_eq!(report.span_count("macro_span"), 1);
    }
}
