//! Session lifecycle: one [`ObsSession`] at a time turns collection on,
//! and finishing it yields an [`ObsReport`] snapshot.

use std::sync::atomic::{AtomicBool, Ordering};

use crate::metrics;
use crate::span::{self, SpanRecord, ENABLED};

/// Guards against two concurrent sessions: counters are process-global, so
/// overlapping sessions would double-book each other's events.
static SESSION_HELD: AtomicBool = AtomicBool::new(false);

/// An active observability session. While one is live, [`span`](crate::span)
/// guards record and counters accumulate; dropping or finishing it turns
/// collection back off.
///
/// ```
/// let session = lcc_obs::ObsSession::start().expect("no other session");
/// {
///     let _s = lcc_obs::span("work");
/// }
/// let report = session.finish();
/// assert_eq!(report.span_count("work"), 1);
/// ```
pub struct ObsSession {
    t0_ns: u64,
    finished: bool,
}

impl ObsSession {
    /// Starts collecting: resets every counter and gauge, discards stale
    /// span buffers and enables the global switch. Returns `None` if
    /// another session is already live.
    pub fn start() -> Option<ObsSession> {
        if SESSION_HELD.swap(true, Ordering::AcqRel) {
            return None;
        }
        metrics::reset_all();
        span::clear_all();
        ENABLED.store(true, Ordering::SeqCst);
        Some(ObsSession {
            t0_ns: crate::span::now_ns(),
            finished: false,
        })
    }

    /// Stops collecting and snapshots everything recorded since
    /// [`start`](ObsSession::start): all spans (sorted by start time),
    /// every counter and gauge, and the session wall time.
    pub fn finish(mut self) -> ObsReport {
        self.finished = true;
        ENABLED.store(false, Ordering::SeqCst);
        let wall_ns = crate::span::now_ns().saturating_sub(self.t0_ns);
        let spans = span::drain_all();
        let counters = metrics::all_counters()
            .iter()
            .map(|c| (c.name().to_string(), c.get()))
            .collect();
        let gauges = metrics::all_gauges()
            .iter()
            .map(|g| (g.name().to_string(), g.get()))
            .collect();
        SESSION_HELD.store(false, Ordering::Release);
        ObsReport {
            spans,
            counters,
            gauges,
            wall_ns,
        }
    }
}

impl Drop for ObsSession {
    fn drop(&mut self) {
        if !self.finished {
            // Abandoned without `finish`: turn collection off and free the
            // slot so a later session can start clean.
            ENABLED.store(false, Ordering::SeqCst);
            SESSION_HELD.store(false, Ordering::Release);
        }
    }
}

/// Everything one session observed. Produced by [`ObsSession::finish`] or
/// replayed from a capture file ([`ObsReport::replay_from`]).
#[derive(Clone, Debug, PartialEq)]
pub struct ObsReport {
    /// All finished spans, ascending by start time.
    pub spans: Vec<SpanRecord>,
    /// `(name, value)` for every registered counter, registry order.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every registered gauge, registry order.
    pub gauges: Vec<(String, f64)>,
    /// Session wall time in nanoseconds.
    pub wall_ns: u64,
}

impl ObsReport {
    /// The value of the named counter, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// The value of the named gauge, if registered.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Number of spans recorded under `name`.
    pub fn span_count(&self, name: &str) -> usize {
        self.spans.iter().filter(|s| s.name == name).count()
    }

    /// Total nanoseconds across all spans named `name` (self time is not
    /// subtracted — nested spans overlap their parents).
    pub fn span_total_ns(&self, name: &str) -> u64 {
        self.spans
            .iter()
            .filter(|s| s.name == name)
            .map(|s| s.dur_ns)
            .sum()
    }

    /// The flamegraph-style text rendering of the span tree (see
    /// [`crate::tree`]).
    pub fn trace_tree(&self) -> String {
        crate::tree::render(&self.spans, self.wall_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn session_collects_and_resets() {
        let _gate = crate::test_gate();
        let s = ObsSession::start().expect("no live session");
        metrics::PIPELINE_PENCILS.add(5);
        {
            let _outer = crate::span("outer");
            let _inner = crate::span("inner");
        }
        let report = s.finish();
        assert!(!crate::enabled());
        assert_eq!(report.counter("pipeline.pencils_transformed"), Some(5));
        assert_eq!(report.span_count("outer"), 1);
        assert_eq!(report.span_count("inner"), 1);
        let outer = report.spans.iter().find(|s| s.name == "outer").unwrap();
        let inner = report.spans.iter().find(|s| s.name == "inner").unwrap();
        assert_eq!(inner.parent, outer.id, "inner span must nest under outer");
        assert_eq!(outer.parent, 0);

        // A second session starts from zero.
        let s2 = ObsSession::start().expect("slot released");
        let report2 = s2.finish();
        assert_eq!(report2.counter("pipeline.pencils_transformed"), Some(0));
        assert_eq!(report2.spans.len(), 0);
    }

    #[test]
    fn only_one_session_at_a_time() {
        let _gate = crate::test_gate();
        let s = ObsSession::start().expect("no live session");
        assert!(ObsSession::start().is_none());
        drop(s); // abandoned, not finished
        assert!(!crate::enabled());
        let s2 = ObsSession::start().expect("drop released the slot");
        let _ = s2.finish();
    }

    #[test]
    fn rank_and_epoch_are_recorded() {
        let _gate = crate::test_gate();
        let s = ObsSession::start().expect("no live session");
        crate::set_rank(Some(3));
        crate::set_epoch(7);
        {
            let _sp = crate::span("ranked");
        }
        crate::set_rank(None);
        crate::set_epoch(0);
        let report = s.finish();
        let sp = report.spans.iter().find(|s| s.name == "ranked").unwrap();
        assert_eq!(sp.rank, 3);
        assert_eq!(sp.epoch, 7);
    }
}
