//! Capture and replay of observation streams (in the spirit of
//! timely-dataflow's `capture_into` / `replay_from`).
//!
//! A finished [`ObsReport`] serializes to a small versioned binary log so
//! a cluster-sim run can be dumped on one machine and re-rendered offline
//! (trace tree, JSON export) on another. The format is self-contained:
//!
//! ```text
//! magic    8  b"LCCOBS\0\0"
//! version  u32 (currently 1)
//! wall_ns  u64
//! names    u32 count, then per name: u32 len + utf8 bytes
//! counters u32 count, then per counter: u32 name-idx + u64 value
//! gauges   u32 count, then per gauge: u32 name-idx + f64 bits
//! spans    u64 count, then per span:
//!          u32 name-idx, u64 id, u64 parent, u64 start_ns, u64 dur_ns,
//!          u32 thread, i32 rank, u64 epoch
//! ```
//!
//! All integers little-endian. Span and instrument names are pooled in one
//! table so repeated spans cost 4 bytes of name reference, not a string.

use std::io::{Read, Write};
use std::path::Path;

use crate::session::ObsReport;
use crate::span::{intern, SpanRecord};

pub const MAGIC: [u8; 8] = *b"LCCOBS\0\0";
pub const VERSION: u32 = 1;

/// Typed errors of the capture/replay layer.
#[derive(Debug)]
pub enum ObsError {
    Io(std::io::Error),
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// The file's format version is newer than this reader understands.
    UnsupportedVersion(u32),
    /// The file ended inside a record.
    Truncated,
    /// Structurally invalid content (bad UTF-8, out-of-range name index…).
    Malformed(String),
}

impl std::fmt::Display for ObsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ObsError::Io(e) => write!(f, "obs capture I/O error: {e}"),
            ObsError::BadMagic => write!(f, "not an obs capture file (bad magic)"),
            ObsError::UnsupportedVersion(v) => {
                write!(f, "obs capture version {v} not supported (max {VERSION})")
            }
            ObsError::Truncated => write!(f, "obs capture truncated"),
            ObsError::Malformed(m) => write!(f, "malformed obs capture: {m}"),
        }
    }
}

impl std::error::Error for ObsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ObsError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ObsError {
    fn from(e: std::io::Error) -> Self {
        ObsError::Io(e)
    }
}

/// Cursor over a capture byte stream with typed underflow errors.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ObsError> {
        let end = self.pos.checked_add(n).ok_or(ObsError::Truncated)?;
        if end > self.buf.len() {
            return Err(ObsError::Truncated);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, ObsError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn i32(&mut self) -> Result<i32, ObsError> {
        Ok(self.u32()? as i32)
    }

    fn u64(&mut self) -> Result<u64, ObsError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Index of `name` in the pool, appending it on first sight.
fn name_idx(pool: &mut Vec<String>, name: &str) -> u32 {
    if let Some(i) = pool.iter().position(|n| n == name) {
        return i as u32;
    }
    pool.push(name.to_string());
    (pool.len() - 1) as u32
}

impl ObsReport {
    /// Serializes the report to the versioned binary capture format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut names: Vec<String> = Vec::new();
        let counter_idx: Vec<u32> = self
            .counters
            .iter()
            .map(|(n, _)| name_idx(&mut names, n))
            .collect();
        let gauge_idx: Vec<u32> = self
            .gauges
            .iter()
            .map(|(n, _)| name_idx(&mut names, n))
            .collect();
        let span_idx: Vec<u32> = self
            .spans
            .iter()
            .map(|s| name_idx(&mut names, s.name))
            .collect();

        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC);
        put_u32(&mut out, VERSION);
        put_u64(&mut out, self.wall_ns);
        put_u32(&mut out, names.len() as u32);
        for n in &names {
            put_u32(&mut out, n.len() as u32);
            out.extend_from_slice(n.as_bytes());
        }
        put_u32(&mut out, self.counters.len() as u32);
        for (i, (_, v)) in self.counters.iter().enumerate() {
            put_u32(&mut out, counter_idx[i]);
            put_u64(&mut out, *v);
        }
        put_u32(&mut out, self.gauges.len() as u32);
        for (i, (_, v)) in self.gauges.iter().enumerate() {
            put_u32(&mut out, gauge_idx[i]);
            put_u64(&mut out, v.to_bits());
        }
        put_u64(&mut out, self.spans.len() as u64);
        for (i, s) in self.spans.iter().enumerate() {
            put_u32(&mut out, span_idx[i]);
            put_u64(&mut out, s.id);
            put_u64(&mut out, s.parent);
            put_u64(&mut out, s.start_ns);
            put_u64(&mut out, s.dur_ns);
            put_u32(&mut out, s.thread);
            put_u32(&mut out, s.rank as u32);
            put_u64(&mut out, s.epoch);
        }
        out
    }

    /// Parses a capture produced by [`to_bytes`](ObsReport::to_bytes).
    pub fn from_bytes(bytes: &[u8]) -> Result<ObsReport, ObsError> {
        let mut r = Reader { buf: bytes, pos: 0 };
        if r.take(8)? != MAGIC {
            return Err(ObsError::BadMagic);
        }
        let version = r.u32()?;
        if version == 0 || version > VERSION {
            return Err(ObsError::UnsupportedVersion(version));
        }
        let wall_ns = r.u64()?;

        let n_names = r.u32()? as usize;
        let mut names: Vec<&'static str> = Vec::with_capacity(n_names);
        for _ in 0..n_names {
            let len = r.u32()? as usize;
            let raw = r.take(len)?;
            let s = std::str::from_utf8(raw)
                .map_err(|_| ObsError::Malformed("non-UTF-8 name".to_string()))?;
            names.push(intern(s));
        }
        let lookup = |idx: u32| -> Result<&'static str, ObsError> {
            names
                .get(idx as usize)
                .copied()
                .ok_or_else(|| ObsError::Malformed(format!("name index {idx} out of range")))
        };

        let n_counters = r.u32()? as usize;
        let mut counters = Vec::with_capacity(n_counters);
        for _ in 0..n_counters {
            let name = lookup(r.u32()?)?;
            counters.push((name.to_string(), r.u64()?));
        }
        let n_gauges = r.u32()? as usize;
        let mut gauges = Vec::with_capacity(n_gauges);
        for _ in 0..n_gauges {
            let name = lookup(r.u32()?)?;
            gauges.push((name.to_string(), f64::from_bits(r.u64()?)));
        }
        let n_spans = r.u64()? as usize;
        let mut spans = Vec::with_capacity(n_spans.min(1 << 20));
        for _ in 0..n_spans {
            let name = lookup(r.u32()?)?;
            spans.push(SpanRecord {
                name,
                id: r.u64()?,
                parent: r.u64()?,
                start_ns: r.u64()?,
                dur_ns: r.u64()?,
                thread: r.u32()?,
                rank: r.i32()?,
                epoch: r.u64()?,
            });
        }
        Ok(ObsReport {
            spans,
            counters,
            gauges,
            wall_ns,
        })
    }

    /// Dumps the capture to `path` (the `capture_into` half).
    pub fn capture_into(&self, path: &Path) -> Result<(), ObsError> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(&self.to_bytes())?;
        Ok(())
    }

    /// Loads a capture back from `path` (the `replay_from` half).
    pub fn replay_from(path: &Path) -> Result<ObsReport, ObsError> {
        let mut bytes = Vec::new();
        std::fs::File::open(path)?.read_to_end(&mut bytes)?;
        ObsReport::from_bytes(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> ObsReport {
        ObsReport {
            spans: vec![
                SpanRecord {
                    id: 1,
                    parent: 0,
                    name: intern("convolve"),
                    start_ns: 10,
                    dur_ns: 500,
                    thread: 0,
                    rank: -1,
                    epoch: 0,
                },
                SpanRecord {
                    id: 2,
                    parent: 1,
                    name: intern("stage2_pencils"),
                    start_ns: 20,
                    dur_ns: 300,
                    thread: 1,
                    rank: 3,
                    epoch: 2,
                },
            ],
            counters: vec![
                ("comm.bytes_logical".to_string(), 4096),
                ("comm.bytes_physical".to_string(), 5120),
            ],
            gauges: vec![("massif.residual".to_string(), 1.5e-7)],
            wall_ns: 12345,
        }
    }

    #[test]
    fn round_trips_exactly() {
        let report = sample_report();
        let bytes = report.to_bytes();
        let back = ObsReport::from_bytes(&bytes).expect("round trip");
        assert_eq!(back, report);
    }

    #[test]
    fn file_round_trip() {
        let report = sample_report();
        let path = std::env::temp_dir().join(format!("obs_capture_{}.bin", std::process::id()));
        report.capture_into(&path).expect("write");
        let back = ObsReport::replay_from(&path).expect("read");
        let _ = std::fs::remove_file(&path);
        assert_eq!(back, report);
    }

    #[test]
    fn rejects_bad_magic_and_version() {
        assert!(matches!(
            ObsReport::from_bytes(b"NOTANOBS stream"),
            Err(ObsError::BadMagic)
        ));
        let mut bytes = sample_report().to_bytes();
        bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(
            ObsReport::from_bytes(&bytes),
            Err(ObsError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn rejects_truncation_anywhere() {
        let bytes = sample_report().to_bytes();
        for cut in 0..bytes.len() {
            match ObsReport::from_bytes(&bytes[..cut]) {
                Err(_) => {}
                Ok(_) => panic!("prefix of {cut} bytes parsed as a full capture"),
            }
        }
    }
}
