//! Criterion companion of `exp_batch_sweep` (§5.4): the z-stage batch
//! parameter B at a fixed problem size.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lcc_core::LocalConvolver;
use lcc_greens::GaussianKernel;
use lcc_grid::{BoxRegion, Grid3};
use lcc_octree::{RateSchedule, SamplingPlan};

fn bench_batch(c: &mut Criterion) {
    let mut g = c.benchmark_group("batch_parameter");
    g.sample_size(10);
    let n = 64usize;
    let k = 16usize;
    let kernel = GaussianKernel::new(n, 1.0);
    let sub = Grid3::from_fn((k, k, k), |x, y, z| (x * y + z) as f64 * 0.01);
    let hotspot = BoxRegion::new([n / 2; 3], [n / 2 + k; 3]);
    let plan = Arc::new(SamplingPlan::build(
        n,
        hotspot,
        &RateSchedule::paper_default(k, 16),
    ));
    for b_param in [16usize, 128, 1024, 4096] {
        let conv = LocalConvolver::new(n, k, b_param);
        g.bench_with_input(BenchmarkId::new("B", b_param), &b_param, |b, _| {
            b.iter(|| conv.convolve_compressed(&sub, [0; 3], &kernel, plan.clone()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_batch);
criterion_main!(benches);
