//! Convolution benchmarks: the traditional dense path vs the low-comm
//! pipeline (full orchestration), plus the single-sub-domain streaming
//! pipeline in isolation.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lcc_bench::standard_input;
use lcc_core::{LocalConvolver, LowCommConfig, LowCommConvolver, TraditionalConvolver};
use lcc_greens::GaussianKernel;
use lcc_grid::{BoxRegion, Grid3};
use lcc_octree::{RateSchedule, SamplingPlan};

fn bench_end_to_end(c: &mut Criterion) {
    let mut g = c.benchmark_group("conv_end_to_end");
    g.sample_size(10);
    for n in [16usize, 32] {
        let k = n / 4;
        let kernel = GaussianKernel::new(n, 1.0);
        let input = standard_input(n);
        let dense = TraditionalConvolver::new(n);
        g.bench_with_input(BenchmarkId::new("traditional", n), &n, |b, _| {
            b.iter(|| dense.convolve(&input, &kernel))
        });
        let lc = LowCommConvolver::new(LowCommConfig {
            n,
            k,
            batch: 512,
            schedule: RateSchedule::paper_default(k, 16),
        });
        g.bench_with_input(BenchmarkId::new("lowcomm", n), &n, |b, _| {
            b.iter(|| lc.convolve(&input, &kernel))
        });
    }
    g.finish();
}

fn bench_single_domain(c: &mut Criterion) {
    let mut g = c.benchmark_group("conv_single_domain");
    g.sample_size(10);
    let k = 16usize;
    for n in [64usize, 128] {
        let kernel = GaussianKernel::new(n, 1.0);
        let sub = Grid3::from_fn((k, k, k), |x, y, z| (x + y + z) as f64);
        let hotspot = BoxRegion::new([n / 2; 3], [n / 2 + k; 3]);
        let plan = Arc::new(SamplingPlan::build(
            n,
            hotspot,
            &RateSchedule::paper_default(k, 16),
        ));
        let conv = LocalConvolver::new(n, k, 1024);
        g.bench_with_input(BenchmarkId::new("streaming_pipeline", n), &n, |b, _| {
            b.iter(|| conv.convolve_compressed(&sub, [0; 3], &kernel, plan.clone()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_end_to_end, bench_single_domain);
criterion_main!(benches);
