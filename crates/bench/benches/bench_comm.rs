//! Cluster-simulator benchmarks: collective primitives and the distributed
//! FFT transpose that dominates the traditional baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lcc_comm::{run_cluster, scatter_slabs, transpose_exchange};
use lcc_fft::{c64, Complex64};

fn bench_alltoall(c: &mut Criterion) {
    let mut g = c.benchmark_group("cluster_alltoall");
    g.sample_size(10);
    for bytes in [1024usize, 65536] {
        g.bench_with_input(
            BenchmarkId::new("p4_payload", bytes),
            &bytes,
            |b, &bytes| {
                b.iter(|| {
                    run_cluster(4, |mut w| {
                        let outgoing = vec![vec![0u8; bytes]; w.size()];
                        w.alltoall(outgoing).expect("exchange failed")
                    })
                })
            },
        );
    }
    g.finish();
}

fn bench_transpose(c: &mut Criterion) {
    let mut g = c.benchmark_group("dist_transpose");
    g.sample_size(10);
    for n in [16usize, 32] {
        let field: Vec<Complex64> = (0..n * n * n).map(|i| c64(i as f64, 0.0)).collect();
        let slabs = scatter_slabs(&field, n, 4);
        g.bench_with_input(BenchmarkId::new("n", n), &n, |b, &n| {
            b.iter(|| {
                let slabs = slabs.clone();
                run_cluster(4, move |mut w| {
                    let mine = slabs[w.rank()].clone();
                    transpose_exchange(&mut w, &mine, n).expect("exchange failed")
                })
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_alltoall, bench_transpose);
criterion_main!(benches);
