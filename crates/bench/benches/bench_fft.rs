//! FFT substrate microbenchmarks, including the pruned-transform ablation:
//! a k-supported zero-padded forward stage should cost ~log k / log N of
//! the full transform (DESIGN.md §5).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lcc_fft::{
    c64, fft_3d, Complex64, DecimatedOutputFft, FftDirection, FftPlanner, PrunedInputFft,
};

fn signal(n: usize) -> Vec<Complex64> {
    (0..n)
        .map(|i| c64((i as f64 * 0.7).sin(), (i as f64 * 0.3).cos()))
        .collect()
}

fn bench_1d(c: &mut Criterion) {
    let planner = FftPlanner::new();
    let mut g = c.benchmark_group("fft_1d");
    g.sample_size(30);
    for n in [256usize, 1024, 4096] {
        let plan = planner.plan(n, FftDirection::Forward);
        let base = signal(n);
        g.bench_with_input(BenchmarkId::new("pow2", n), &n, |b, _| {
            b.iter_batched(
                || base.clone(),
                |mut buf| plan.process(&mut buf),
                criterion::BatchSize::SmallInput,
            )
        });
    }
    for n in [251usize, 1021] {
        let plan = planner.plan(n, FftDirection::Forward);
        let base = signal(n);
        g.bench_with_input(BenchmarkId::new("bluestein_prime", n), &n, |b, _| {
            b.iter_batched(
                || base.clone(),
                |mut buf| plan.process(&mut buf),
                criterion::BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_pruned_ablation(c: &mut Criterion) {
    let planner = FftPlanner::new();
    let mut g = c.benchmark_group("pruned_vs_full");
    g.sample_size(30);
    let n = 4096usize;
    for k in [32usize, 256, 4096] {
        let pruned = PrunedInputFft::new(&planner, n, k, FftDirection::Forward);
        let head = signal(k);
        let mut out = vec![Complex64::ZERO; n];
        let mut scratch = vec![Complex64::ZERO; k];
        g.bench_with_input(BenchmarkId::new("pruned_k", k), &k, |b, _| {
            b.iter(|| pruned.process(&head, &mut out, &mut scratch))
        });
    }
    // Full padded transform for reference.
    let plan = planner.plan(n, FftDirection::Forward);
    let mut padded = signal(32);
    padded.resize(n, Complex64::ZERO);
    g.bench_function("full_padded", |b| {
        b.iter_batched(
            || padded.clone(),
            |mut buf| plan.process(&mut buf),
            criterion::BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_decimated(c: &mut Criterion) {
    let planner = FftPlanner::new();
    let mut g = c.benchmark_group("decimated_output");
    g.sample_size(30);
    let n = 4096usize;
    let base = signal(n);
    for r in [4usize, 32] {
        let dec = DecimatedOutputFft::new(&planner, n, r, 0, FftDirection::Inverse);
        let mut out = vec![Complex64::ZERO; n / r];
        g.bench_with_input(BenchmarkId::new("stride", r), &r, |b, _| {
            b.iter(|| dec.process(&base, &mut out))
        });
    }
    g.finish();
}

fn bench_3d(c: &mut Criterion) {
    let planner = FftPlanner::new();
    let mut g = c.benchmark_group("fft_3d");
    g.sample_size(10);
    for n in [16usize, 32, 64] {
        let base = signal(n * n * n);
        g.bench_with_input(BenchmarkId::new("cube", n), &n, |b, &n| {
            b.iter_batched(
                || base.clone(),
                |mut buf| fft_3d(&planner, &mut buf, (n, n, n), FftDirection::Forward),
                criterion::BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_1d,
    bench_pruned_ablation,
    bench_decimated,
    bench_3d
);
criterion_main!(benches);
