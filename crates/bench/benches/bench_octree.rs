//! Octree compression benchmarks: plan construction, dense compression,
//! streaming plane capture, and region reconstruction — with the uniform
//! schedule as the non-adaptive ablation.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lcc_grid::{BoxRegion, Grid3};
use lcc_octree::{CompressedField, RateSchedule, SamplingPlan};

fn domain(n: usize, k: usize) -> BoxRegion {
    let lo = (n - k) / 2;
    BoxRegion::new([lo; 3], [lo + k; 3])
}

fn bench_plan_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("octree_plan_build");
    g.sample_size(20);
    for n in [64usize, 128] {
        let k = n / 4;
        let adaptive = RateSchedule::paper_default(k, 16);
        g.bench_with_input(BenchmarkId::new("adaptive", n), &n, |b, &n| {
            b.iter(|| SamplingPlan::build(n, domain(n, n / 4), &adaptive))
        });
        let uniform = RateSchedule::uniform(8);
        g.bench_with_input(BenchmarkId::new("uniform8", n), &n, |b, &n| {
            b.iter(|| SamplingPlan::build(n, domain(n, n / 4), &uniform))
        });
    }
    g.finish();
}

fn bench_compress_reconstruct(c: &mut Criterion) {
    let mut g = c.benchmark_group("octree_compress");
    g.sample_size(10);
    let n = 64usize;
    let k = 16usize;
    let plan = Arc::new(SamplingPlan::build(
        n,
        domain(n, k),
        &RateSchedule::paper_default(k, 16),
    ));
    let dense = Grid3::from_fn((n, n, n), |x, y, z| {
        (x as f64 * 0.2).sin() + (y as f64 * 0.1).cos() + z as f64 * 0.01
    });
    g.bench_function("compress_dense", |b| {
        b.iter(|| CompressedField::compress(plan.clone(), &dense))
    });
    let field = CompressedField::compress(plan.clone(), &dense);
    g.bench_function("reconstruct_full", |b| b.iter(|| field.reconstruct()));
    let region = *plan.domain();
    g.bench_function("reconstruct_domain_region", |b| {
        b.iter(|| field.reconstruct_region(&region))
    });
    g.bench_function("region_payload", |b| {
        b.iter(|| field.region_payload(&region))
    });
    let plane: Vec<f64> = (0..n * n).map(|i| i as f64).collect();
    g.bench_function("capture_plane", |b| {
        b.iter_batched(
            || CompressedField::zeros(plan.clone()),
            |mut f| f.capture_plane(n / 2, &plane),
            criterion::BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench_plan_build, bench_compress_reconstruct);
criterion_main!(benches);
