//! MASSIF inner-loop benchmarks: the dense spectral Γ̂ application vs the
//! tensor-aware low-communication pipeline (Algorithm 1 vs Algorithm 2 cost
//! per iteration), plus the Eyre–Milton accelerated step.

use criterion::{criterion_group, criterion_main, Criterion};
use lcc_core::LowCommConfig;
use lcc_greens::MassifGamma;
use lcc_grid::{IsotropicStiffness, Sym3};
use lcc_massif::{GammaConvolution, LowCommGamma, Microstructure, SpectralGamma, TensorField};
use lcc_octree::RateSchedule;

fn bench_inner_loops(c: &mut Criterion) {
    let mut g = c.benchmark_group("massif_inner_loop");
    g.sample_size(10);
    let n = 16usize;
    let micro = Microstructure::sphere(
        n,
        0.5,
        IsotropicStiffness::new(1.0, 1.0),
        IsotropicStiffness::new(2.0, 4.0),
    );
    let r = micro.reference_medium();
    let gamma = MassifGamma::new(n, r.lambda, r.mu);
    let eps = TensorField::constant(n, Sym3::diagonal(0.01, 0.0, 0.0));
    let sigma = TensorField::stress_from_strain(&micro, &eps);

    let spectral = SpectralGamma::new(gamma);
    g.bench_function("spectral_apply_gamma", |b| {
        b.iter(|| spectral.apply_gamma(&sigma))
    });

    let lowcomm = LowCommGamma::new(
        gamma,
        LowCommConfig {
            n,
            k: 8,
            batch: 256,
            schedule: RateSchedule::for_kernel_spread(8, 1.5, 8),
        },
    );
    g.bench_function("lowcomm_apply_gamma", |b| {
        b.iter(|| lowcomm.apply_gamma(&sigma))
    });
    g.finish();
}

criterion_group!(benches, bench_inner_loops);
criterion_main!(benches);
