//! The kill-chaos survival workload shared by `exp_survival` and the
//! transport conformance suite.
//!
//! Phase A is a checkpointed MASSIF fixed-point solve cut into chunks,
//! with a liveness gate ([`CommWorld::protocol_point`]) after each chunk —
//! the seeded coordinates at which the kill machinery strikes. On the
//! socket backend a kill is a real `SIGKILL` delivered by the coordinator
//! while the victim parks at its gate; in-process the fault injector
//! replays the same death as [`CommError::Killed`]. Under a respawning
//! `RestartPolicy` the victim's replacement resumes from the latest
//! checkpoint (written under `LCC_SOCKET_DIR`, which survives the
//! restart), replays its gates, and finishes the run as if nothing
//! happened; without restart the survivors detect the death and complete
//! via the epoch-converged recovery exchange (phase B).
//!
//! Because the solver iterate is a pure function of the strain field and
//! the recovery fold is ascending-domain-id, every completed run — fault
//! free, redistributed, or restarted — produces bit-identical payloads.
//!
//! Wire format of one rank's payload (little-endian):
//!
//! ```text
//! u8 1 | u64 epoch | u64 recovered | u64 degraded |
//! u64 iters | f64 × iters residuals | f64 × n³ field
//! ```
//!
//! A rank killed for good returns the empty payload (in-process; its
//! socket counterpart's slot is `None` — the process no longer exists).

use std::path::PathBuf;
use std::sync::Arc;

use lcc_comm::transport::socket::{
    run_socket_cluster, RestartPolicy, SocketClusterConfig, SocketFamily, SocketRun,
};
use lcc_comm::{
    encode_f64s, run_cluster_with_faults, CommError, CommStats, CommWorld, FaultPlan, RetryPolicy,
};
use lcc_core::RecoveryPolicy;
use lcc_greens::MassifGamma;
use lcc_grid::{IsotropicStiffness, Sym3};
use lcc_massif::{
    solve_with_checkpoints, CheckpointConfig, Microstructure, SolveResult, SolverConfig,
    SpectralGamma,
};

use crate::recovery::{self, fast_retry, RecoveryCase};

/// One survival deployment: the checkpointed solve (phase A) plus the
/// recovery exchange it hands over to (phase B).
#[derive(Clone, Debug)]
pub struct SurvivalCase {
    /// MASSIF grid size for the checkpointed solve.
    pub massif_n: usize,
    /// Number of phase-A chunks, i.e. protocol points `0..chunks`.
    pub chunks: u64,
    /// Fixed-point iterations per chunk (also the checkpoint interval).
    pub iters_per_chunk: usize,
    /// Phase-B deployment (its `plan` / `p` / `retry` fields belong to the
    /// harness; the workload reads the shape fields only).
    pub recovery: RecoveryCase,
}

impl SurvivalCase {
    /// The standard survival deployment: an 8³ two-phase solve in four
    /// gated chunks, handing over to a 16³ / k=8 / p=4 Redistribute
    /// exchange.
    pub fn standard() -> Self {
        let mut recovery = RecoveryCase::standard(
            FaultPlan::none(),
            RecoveryPolicy::Redistribute {
                max_extra_domains: usize::MAX,
            },
        );
        recovery.n = 16;
        recovery.sigma = 1.0;
        recovery.retry = fast_retry(recovery.p);
        SurvivalCase {
            massif_n: 8,
            chunks: 4,
            iters_per_chunk: 2,
            recovery,
        }
    }
}

/// The deterministic two-phase microstructure every rank solves.
fn microstructure(n: usize) -> Microstructure {
    Microstructure::sphere(
        n,
        0.5,
        IsotropicStiffness::new(1.0, 1.0),
        IsotropicStiffness::new(2.0, 4.0),
    )
}

/// One rank of the survival workload on an already-connected world of any
/// backend. Returns the empty payload for a rank killed for good.
pub fn rank_workload(w: &mut CommWorld, case: &SurvivalCase) -> Vec<u8> {
    let rank = w.rank();

    // Phase A: the checkpointed solve, one gate per chunk. Each call
    // resumes from the checkpoint file (socket children; a respawned
    // process recovers its predecessor's progress this way) or from the
    // previous in-memory iterate (in-process ranks, whose thread state
    // *is* the checkpoint), so the trajectory is identical either way.
    let micro = microstructure(case.massif_n);
    let reference = micro.reference_medium();
    let engine = SpectralGamma::new(MassifGamma::new(
        case.massif_n,
        reference.lambda,
        reference.mu,
    ));
    let applied = Sym3::new(0.01, 0.0, 0.0, 0.0, 0.0, 0.005);
    let ckpt = std::env::var_os("LCC_SOCKET_DIR").map(|dir| {
        CheckpointConfig::new(
            PathBuf::from(dir).join(format!("survival-r{rank}.ckpt")),
            case.iters_per_chunk,
        )
    });
    let mut solved: Option<SolveResult> = None;
    for chunk in 0..case.chunks {
        let budget = (chunk as usize + 1) * case.iters_per_chunk;
        let cfg = SolverConfig {
            max_iters: budget,
            tol: 0.0, // run the full budget: the iteration count is part of the contract
        };
        solved = Some(
            solve_with_checkpoints(&micro, applied, cfg, &engine, ckpt.as_ref())
                .expect("survival checkpoint I/O failed"),
        );
        match w.protocol_point(chunk) {
            Ok(()) => {}
            // The in-process injector's kill: stop participating, like a
            // deserter. (A real SIGKILL never returns from the gate.)
            Err(CommError::Killed { .. }) => return Vec::new(),
            Err(e) => panic!("protocol point {chunk} failed: {e}"),
        }
    }
    let solved = solved.expect("at least one phase-A chunk");

    // Phase B: the self-healing recovery exchange. Survivors of a
    // no-restart kill converge on the shrunken membership here.
    let out = recovery::rank_workload(w, &case.recovery)
        .expect("survival ranks never desert mid-exchange");

    let mut buf = vec![1u8];
    buf.extend_from_slice(&out.epoch.to_le_bytes());
    buf.extend_from_slice(&(out.report.recovered_domains as u64).to_le_bytes());
    buf.extend_from_slice(&(out.report.degraded_domains as u64).to_le_bytes());
    buf.extend_from_slice(&(solved.residuals.len() as u64).to_le_bytes());
    buf.extend_from_slice(&encode_f64s(&solved.residuals));
    buf.extend_from_slice(&encode_f64s(out.result.as_slice()));
    buf
}

/// Runs the standard survival case under `plan` on the in-process cluster
/// simulator (the kill injector replays the same seeded deaths the socket
/// coordinator inflicts for real).
pub fn run_survival_inproc(
    plan: &FaultPlan,
    retry: &RetryPolicy,
) -> (Vec<Option<Vec<u8>>>, Arc<CommStats>) {
    let case = SurvivalCase::standard();
    let p = case.recovery.p;
    run_cluster_with_faults(p, plan.clone(), retry.clone(), move |mut w| {
        rank_workload(&mut w, &case)
    })
}

/// Runs the standard survival case under `plan` on the real-process socket
/// backend: `child_test` names the entry point in the calling binary and
/// `workload` its registry key (conventionally `"survival"`).
pub fn run_survival_socket(
    plan: &FaultPlan,
    retry: &RetryPolicy,
    child_test: &str,
    workload: &str,
) -> Result<SocketRun, CommError> {
    let case = SurvivalCase::standard();
    run_socket_cluster(&SocketClusterConfig {
        p: case.recovery.p,
        plan: plan.clone(),
        retry: retry.clone(),
        workload,
        family: SocketFamily::Uds,
        child_test,
        obs_in_children: false,
        restart: RestartPolicy::for_plan(plan),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_free_survival_is_deterministic_across_runs() {
        let plan = FaultPlan::none();
        let retry = fast_retry(4);
        let (a, _) = run_survival_inproc(&plan, &retry);
        let (b, _) = run_survival_inproc(&plan, &retry);
        assert_eq!(a, b, "same seed, same payloads");
        for slot in &a {
            let payload = slot.as_ref().expect("fault-free ranks all report");
            assert_eq!(payload[0], 1, "completion marker");
        }
    }

    #[test]
    fn inproc_kill_without_restart_redistributes_bit_identically() {
        let retry = fast_retry(4);
        let (clean, _) = run_survival_inproc(&FaultPlan::none(), &retry);
        let plan = FaultPlan::new(0x5EED).with_kill(2, 1);
        let (killed, stats) = run_survival_inproc(&plan, &retry);
        for (rank, slot) in killed.iter().enumerate() {
            let payload = slot.as_ref().expect("in-process ranks always return");
            if plan.killed_for_good(rank) {
                assert!(payload.is_empty(), "killed rank {rank} reports nothing");
            } else {
                // Bit-identical to fault-free *except* the epoch /
                // recovery header — compare the field tail.
                let clean_payload = clean[rank].as_ref().unwrap();
                assert_eq!(
                    payload[payload.len() - 8..],
                    clean_payload[clean_payload.len() - 8..],
                    "rank {rank}: recovered field tail diverged"
                );
                assert_eq!(payload[0], 1);
            }
        }
        assert_eq!(stats.deaths_detected_count(), 3, "each survivor counts 1");
        assert_eq!(stats.rejoin_count(), 0);
    }

    #[test]
    fn inproc_kill_with_restart_matches_fault_free_exactly() {
        let retry = fast_retry(4);
        let (clean, _) = run_survival_inproc(&FaultPlan::none(), &retry);
        let plan = FaultPlan::new(0x5EED).with_kill(1, 2).with_restart();
        let (restarted, stats) = run_survival_inproc(&plan, &retry);
        assert_eq!(
            clean, restarted,
            "a restarted run is indistinguishable from a fault-free one"
        );
        assert_eq!(stats.deaths_detected_count(), 0, "nobody stayed dead");
        assert_eq!(stats.rejoin_count(), 1, "the victim rejoined once");
    }
}
