//! Counting global allocator for steady-state allocation assertions.
//!
//! `exp_pipeline_perf` installs [`CountingAlloc`] as its `#[global_allocator]`
//! and measures the allocations of a warm `LocalConvolver::convolve_compressed`
//! call: with the workspace arenas and plan caches warmed up, the hot path
//! must allocate (amortized) nothing per pencil.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// A [`System`]-backed allocator that counts allocations and bytes.
///
/// Counters track `alloc`/`alloc_zeroed`/`realloc` calls (a `realloc` counts
/// as one allocation of the new size); `dealloc` is deliberately not
/// subtracted — the counters measure allocator *traffic*, not live bytes.
pub struct CountingAlloc {
    bytes: AtomicU64,
    count: AtomicU64,
}

/// A snapshot of the counters since the last [`CountingAlloc::reset`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AllocStats {
    /// Total bytes requested.
    pub bytes: u64,
    /// Number of allocation calls.
    pub count: u64,
}

impl CountingAlloc {
    /// A fresh allocator with zeroed counters.
    pub const fn new() -> Self {
        CountingAlloc {
            bytes: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    /// Zeroes the counters.
    pub fn reset(&self) {
        self.bytes.store(0, Ordering::Relaxed);
        self.count.store(0, Ordering::Relaxed);
    }

    /// Reads the counters.
    pub fn snapshot(&self) -> AllocStats {
        AllocStats {
            bytes: self.bytes.load(Ordering::Relaxed),
            count: self.count.load(Ordering::Relaxed),
        }
    }

    fn record(&self, size: usize) {
        self.bytes.fetch_add(size as u64, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }
}

impl Default for CountingAlloc {
    fn default() -> Self {
        Self::new()
    }
}

// SAFETY: pure pass-through to `System`; the counters are side effects only.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: contract inherited verbatim from `GlobalAlloc::alloc`.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        self.record(layout.size());
        // SAFETY: forwarding the caller's layout unchanged to `System`.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: contract inherited verbatim from `GlobalAlloc::alloc_zeroed`.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        self.record(layout.size());
        // SAFETY: forwarding the caller's layout unchanged to `System`.
        unsafe { System.alloc_zeroed(layout) }
    }

    // SAFETY: contract inherited verbatim from `GlobalAlloc::dealloc`.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr` came from this allocator, which is `System` underneath.
        unsafe { System.dealloc(ptr, layout) }
    }

    // SAFETY: contract inherited verbatim from `GlobalAlloc::realloc`.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        self.record(new_size);
        // SAFETY: `ptr` came from this allocator, which is `System` underneath.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_track_traffic() {
        let a = CountingAlloc::new();
        assert_eq!(a.snapshot(), AllocStats { bytes: 0, count: 0 });
        a.record(128);
        a.record(64);
        let s = a.snapshot();
        assert_eq!(s.bytes, 192);
        assert_eq!(s.count, 2);
        a.reset();
        assert_eq!(a.snapshot().count, 0);
    }
}
