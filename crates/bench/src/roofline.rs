//! Streaming-bandwidth measurement for roofline estimates.
//!
//! The FFT pipeline is bandwidth-bound at large sizes: each transform pass
//! streams every `Complex64` through the core once (read + write). To turn
//! an achieved GFLOP/s number into a *fraction of attainable*, the perf
//! regenerator needs the machine's sustained memory bandwidth — measured
//! the same way the kernels use it, not quoted from a spec sheet.
//!
//! [`stream_bandwidth_gbs`] runs a simple out-of-cache streaming copy
//! (`dst[i] = src[i]` over f64 buffers far larger than L2/L3) and reports
//! the best-of-N rate in GB/s, counting both the read and the write stream.
//! This is deliberately the *copy* kernel of the STREAM benchmark family —
//! the closest traffic shape to an FFT pass over a pencil batch — and it
//! runs single-threaded because the roofline denominator pairs with the
//! single-core GFLOP/s cell (`gflops_1core`).

use std::time::Instant;

/// Elements per buffer: 32 MiB of f64 per side, comfortably past any L3 on
/// hosts this workspace targets, so the copy streams from DRAM.
const STREAM_ELEMS: usize = 4 * 1024 * 1024;

/// Timed passes; the best (highest-bandwidth) pass is reported so that a
/// scheduler hiccup in one pass does not understate the roofline ceiling.
const STREAM_REPS: usize = 3;

/// Measures sustained single-thread streaming-copy bandwidth in GB/s
/// (bytes counted = read + write = 16 per element per pass).
///
/// Returns `0.0` if the clock resolves a pass as zero time — the caller
/// ([`crate::json::roofline_fraction`]) maps that to a `null` cell rather
/// than a fabricated fraction.
pub fn stream_bandwidth_gbs() -> f64 {
    let src: Vec<f64> = (0..STREAM_ELEMS).map(|i| i as f64 * 0.5).collect();
    let mut dst = vec![0.0f64; STREAM_ELEMS];

    // Warm-up pass: faults the pages in and fills the TLB so the timed
    // passes measure steady-state DRAM traffic, not first-touch cost.
    dst.copy_from_slice(&src);
    std::hint::black_box(&mut dst);

    let mut best_ns = u128::MAX;
    for _ in 0..STREAM_REPS {
        let t0 = Instant::now();
        dst.copy_from_slice(&src);
        std::hint::black_box(&mut dst);
        best_ns = best_ns.min(t0.elapsed().as_nanos());
    }
    if best_ns == 0 || best_ns == u128::MAX {
        return 0.0;
    }
    let bytes = (STREAM_ELEMS * 2 * std::mem::size_of::<f64>()) as f64;
    bytes / best_ns as f64 // bytes/ns == GB/s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_is_positive_and_sane() {
        let gbs = stream_bandwidth_gbs();
        // Any machine that can run the test suite streams well above
        // 0.1 GB/s and below 10 TB/s; the bounds only catch unit slips
        // (ns vs µs, counting one stream instead of two).
        assert!(gbs > 0.1, "implausibly low bandwidth: {gbs} GB/s");
        assert!(gbs < 10_000.0, "implausibly high bandwidth: {gbs} GB/s");
    }
}
