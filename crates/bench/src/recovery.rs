//! The self-healing distributed convolution workload shared by
//! `exp_recovery` and the recovery integration tests.
//!
//! Each rank computes its round-robin share of sub-domain contributions,
//! then joins a *converged* allgather: if a peer dies (crash at start,
//! or deserting mid-exchange), every survivor deterministically derives
//! the same [`RecoveryPlan`] from the same epoch-stamped membership view,
//! claimants recompute the orphaned domains — exactly, under
//! `RecoveryPolicy::Redistribute` — and the recomputed contributions ride
//! the same single sparse exchange. The fold order is ascending global
//! domain id on every rank, so a redistributed run is bit-identical to a
//! fault-free one.
//!
//! Wire format of one rank's payload (little-endian):
//!
//! ```text
//! u64 ndomains, then per domain: u64 id | u64 nsamples | f64 × nsamples
//! ```

use std::collections::BTreeMap;
use std::sync::Arc;

use lcc_comm::{run_cluster_with_faults, CommStats, CommWorld, FaultPlan, RetryPolicy};
use lcc_core::{
    ConvolveMode, ConvolveReport, LowCommConfig, LowCommConvolver, RecoveryPlanner, RecoveryPolicy,
};
use lcc_greens::GaussianKernel;
use lcc_grid::{decompose_uniform, BoxRegion, Grid3};
use lcc_octree::{CompressedField, RateSchedule};

/// One recovery scenario: a deployment shape plus a fault plan and policy.
#[derive(Clone, Debug)]
pub struct RecoveryCase {
    /// Grid size N.
    pub n: usize,
    /// Sub-domain size k.
    pub k: usize,
    /// Cluster size p.
    pub p: usize,
    /// Gaussian kernel spread.
    pub sigma: f64,
    /// Deterministic fault plan (crashes, deserters, message loss).
    pub plan: FaultPlan,
    /// How survivors compensate for orphaned domains.
    pub policy: RecoveryPolicy,
    /// Ack/retry deadlines for the simulated transport.
    pub retry: RetryPolicy,
}

impl RecoveryCase {
    /// The standard 32³ / k=8 / p=4 deployment used across chaos benches.
    pub fn standard(plan: FaultPlan, policy: RecoveryPolicy) -> Self {
        RecoveryCase {
            n: 32,
            k: 8,
            p: 4,
            sigma: 1.5,
            plan,
            policy,
            retry: RetryPolicy::scaled_for(4),
        }
    }

    /// The convolver configuration every rank builds.
    pub fn config(&self) -> LowCommConfig {
        LowCommConfig {
            n: self.n,
            k: self.k,
            batch: 512,
            schedule: RateSchedule::for_kernel_spread(self.k, self.sigma, 16),
        }
    }

    /// The smooth input field shared by all ranks.
    pub fn input(&self) -> Grid3<f64> {
        let n = self.n;
        Grid3::from_fn((n, n, n), |x, y, z| {
            ((x as f64 * 0.29).sin() + (y as f64 * 0.41).cos()) * (1.0 + 0.01 * z as f64)
        })
    }

    /// The kernel shared by all ranks.
    pub fn kernel(&self) -> GaussianKernel {
        GaussianKernel::new(self.n, self.sigma)
    }
}

/// Deadlines tight enough to make deserter detection quick in tests and
/// benches (a deserter is only noticed when receive timeouts fire; the
/// production-scaled 30 s deadline would dominate wall time).
///
/// Debug builds widen (not disable) the deadlines: unoptimized payload
/// compression on a loaded core can outlast a 400 ms receive window, and a
/// deadline that fires while a peer is still doing honest work reads as
/// silence — exhausting the convergence retries on a perfectly live mesh.
pub fn fast_retry(p: usize) -> RetryPolicy {
    let deadline_ms = if cfg!(debug_assertions) { 1600 } else { 400 };
    RetryPolicy {
        ack_timeout: std::time::Duration::from_millis(deadline_ms),
        recv_timeout: std::time::Duration::from_millis(deadline_ms),
        ..RetryPolicy::scaled_for(p)
    }
}

/// What one surviving rank produced.
#[derive(Clone, Debug)]
pub struct RankOutcome {
    /// The accumulated (recovered) convolution result.
    pub result: Grid3<f64>,
    /// Recovery-aware accounting for this rank's fold.
    pub report: ConvolveReport,
    /// The membership epoch the exchange converged under.
    pub epoch: u64,
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn get_u64(bytes: &[u8], at: &mut usize) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&bytes[*at..*at + 8]);
    *at += 8;
    u64::from_le_bytes(b)
}

fn encode_payload(entries: &BTreeMap<usize, CompressedField>) -> Vec<u8> {
    let mut buf = Vec::new();
    put_u64(&mut buf, entries.len() as u64);
    for (&id, f) in entries {
        put_u64(&mut buf, id as u64);
        put_u64(&mut buf, f.samples().len() as u64);
        for v in f.samples() {
            buf.extend_from_slice(&v.to_le_bytes());
        }
    }
    buf
}

fn decode_payload(bytes: &[u8]) -> Vec<(usize, Vec<f64>)> {
    let mut at = 0;
    let count = get_u64(bytes, &mut at) as usize;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let id = get_u64(bytes, &mut at) as usize;
        let ns = get_u64(bytes, &mut at) as usize;
        let mut samples = Vec::with_capacity(ns);
        for _ in 0..ns {
            let mut b = [0u8; 8];
            b.copy_from_slice(&bytes[at..at + 8]);
            at += 8;
            samples.push(f64::from_le_bytes(b));
        }
        out.push((id, samples));
    }
    out
}

/// One rank of the self-healing workload, on an already-connected world
/// of any backend. `None` for deserting ranks (they walk away
/// mid-exchange); the cluster size comes from the world, the deployment
/// shape and policy from `case` (whose `p`, `plan`, and `retry` fields
/// are the *harness's* concern and are ignored here).
pub fn rank_workload(w: &mut CommWorld, case: &RecoveryCase) -> Option<RankOutcome> {
    let p = w.size();
    let rank = w.rank();
    let policy = case.policy;
    let field = case.input();
    let kernel = case.kernel();
    let domains = decompose_uniform(case.n, case.k);
    let conv = LowCommConvolver::new(case.config());
    let session = conv.session(ConvolveMode::Recover(policy));
    let planner = RecoveryPlanner::new(policy);
    let owner = |id: usize| id % p;

    // Exact in Recover mode: the same memoized plan and pipeline the dead
    // owner would have used.
    let contribution = |id: usize| -> Option<CompressedField> {
        session.compress_domain(&field, &domains[id], &kernel)
    };
    let own_payload = |claims: &[usize]| -> Vec<u8> {
        let mut mine = BTreeMap::new();
        for id in (0..domains.len())
            .filter(|&id| owner(id) == rank)
            .chain(claims.iter().copied())
        {
            if let Some(f) = contribution(id) {
                mine.insert(id, f);
            }
        }
        encode_payload(&mine)
    };

    if w.fault_plan().deserts(rank) {
        // A deserter ships its epoch-0 share to lower ranks only, then
        // walks away mid-exchange without crashing.
        let payload = own_payload(&[]);
        for to in 0..rank {
            let _ = w.send_epoch(to, &payload);
        }
        return None;
    }

    let (slots, epoch) = w
        .allgather_converged(|view| {
            let dead: Vec<usize> = view.dead_ranks().collect();
            let plan = planner.plan(&domains, owner, &view.live_ranks(), &dead);
            let claims: Vec<usize> = plan.claims_for(rank).map(|c| c.domain_id).collect();
            own_payload(&claims)
        })
        .expect("converged allgather failed despite retries");

    // Reconstruct the recovery plan from the converged view — the same
    // pure function every payload was built from.
    let view = w.current_view().clone();
    let dead: Vec<usize> = view.dead_ranks().collect();
    let plan = planner.plan(&domains, owner, &view.live_ranks(), &dead);

    let mut contribs: BTreeMap<usize, CompressedField> = BTreeMap::new();
    for slot in slots.iter().flatten() {
        for (id, samples) in decode_payload(slot) {
            let splan = conv.plan_for(conv.response_region(&domains[id], &kernel));
            assert_eq!(
                samples.len(),
                splan.total_samples(),
                "domain {id} sample count does not match its plan"
            );
            let mut f = CompressedField::zeros(splan);
            f.samples_mut().copy_from_slice(&samples);
            contribs.insert(id, f);
        }
    }
    // Claimed domains present in the fold are charged as recovered;
    // unclaimed (or lost) orphans are rebuilt at the coarsest rate.
    let orphans: Vec<(usize, BoxRegion)> = plan
        .claims
        .iter()
        .map(|c| (c.domain_id, domains[c.domain_id]))
        .chain(plan.degraded.iter().copied())
        .collect();
    let (result, report) = session.accumulate(&contribs, &field, &kernel, &orphans);
    Some(RankOutcome {
        result,
        report,
        epoch,
    })
}

/// Runs `case` on the cluster simulator. The outer `Option` is `None` for
/// crashed *and* deserting ranks; survivors all hold bit-identical results.
pub fn run_recovery(case: &RecoveryCase) -> (Vec<Option<RankOutcome>>, Arc<CommStats>) {
    let shared = Arc::new(case.clone());
    let (results, stats) = run_cluster_with_faults(
        case.p,
        case.plan.clone(),
        case.retry.clone(),
        move |mut w| rank_workload(&mut w, &shared),
    );
    (results.into_iter().map(|r| r.flatten()).collect(), stats)
}

/// The fault-free reference result for `case`'s deployment (same fold
/// order as the recovery path, so comparisons can demand bit-identity).
pub fn fault_free_reference(case: &RecoveryCase) -> Grid3<f64> {
    let mut clean = case.clone();
    clean.plan = FaultPlan::none();
    let (results, _) = run_recovery(&clean);
    results
        .into_iter()
        .flatten()
        .next()
        .expect("fault-free run has survivors")
        .result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_codec_round_trips() {
        let case = RecoveryCase::standard(FaultPlan::none(), RecoveryPolicy::Degrade);
        let conv = LowCommConvolver::new(case.config());
        let session = conv.session(ConvolveMode::Normal);
        let field = case.input();
        let kernel = case.kernel();
        let domains = decompose_uniform(case.n, case.k);
        let mut entries = BTreeMap::new();
        for id in [0usize, 5, 63] {
            let f = session
                .compress_domain(&field, &domains[id], &kernel)
                .expect("smooth input has no zero domains");
            entries.insert(id, f);
        }
        let decoded = decode_payload(&encode_payload(&entries));
        assert_eq!(decoded.len(), 3);
        for ((id, samples), (want_id, want)) in decoded.iter().zip(entries.iter()) {
            assert_eq!(id, want_id);
            assert_eq!(samples, want.samples());
        }
    }
}
