//! §5.1-5.2 headline: "our method enables double-precision convolutions of
//! size up to 2048³ on a single GPU. This is 8× points more than
//! traditional cuFFT, which processes up to 1024³ grids without
//! compression."
//!
//! On the simulated devices: find the largest N the dense path fits, the
//! largest N the compressed pipeline fits, and report the point ratio.

use lcc_bench::gb;
use lcc_core::{traditional_fits, PipelineFootprint};
use lcc_device::SimDevice;

fn ours_fits(n: usize, capacity: u64) -> Option<(usize, u64)> {
    // Best (largest) k that fits; returns peak bytes.
    let mut best = None;
    let mut k = 8;
    while k <= n / 2 {
        let retained = (2 * k + n / 16).min(n);
        let compressed = 8 * ((k as u64).pow(3) + (n as u64).pow(3) / 4096);
        let fp = PipelineFootprint::model(n, k, retained, (4 * n).min(32768), compressed);
        if fp.actual_bytes() <= capacity {
            best = Some((k, fp.actual_bytes()));
        }
        k *= 2;
    }
    best
}

fn main() {
    for dev in [SimDevice::v100_16gb(), SimDevice::v100_32gb()] {
        let cap = dev.memory().capacity();
        println!("== {} ({} GB) ==", dev.name(), cap >> 30);
        let mut max_dense = 0;
        let mut max_ours = 0;
        let mut ours_detail = None;
        let mut n = 128;
        while n <= 16384 {
            if traditional_fits(n, cap) {
                max_dense = n;
            }
            if let Some((k, bytes)) = ours_fits(n, cap) {
                max_ours = n;
                ours_detail = Some((k, bytes));
            }
            n *= 2;
        }
        let ratio = (max_ours as f64 / max_dense as f64).powi(3);
        println!("  max N, dense (traditional cuFFT-style): {max_dense}");
        if let Some((k, bytes)) = ours_detail {
            println!(
                "  max N, ours (compressed pipeline)     : {max_ours} (k = {k}, {:.2} GB peak)",
                gb(bytes)
            );
        }
        println!("  point-count scalability gain          : {ratio:.0}x");
        println!();
    }
    println!("(paper, 32 GB V100: dense up to 1024³, ours up to 2048³ -> 8x points)");

    // §5.1's second advantage: "for smaller 3D grids, the method retains
    // its advantage by batch processing multiple 3D convolutions on a GPU".
    println!("\n== concurrent sub-domain pipelines per 16 GB device (batching) ==");
    println!("{:<8} {:<6} {:>18}", "N", "k", "domains at once");
    for (n, k) in [(128usize, 32usize), (256, 32), (512, 32), (1024, 64)] {
        let d = lcc_core::memory_model::domains_per_device(n, k, (4 * n).min(8192), 16 << 30);
        println!("{:<8} {:<6} {:>18}", n, k, d);
    }
}
