//! Table 1: back-of-envelope memory for traditional full-resolution FFT vs
//! the domain-local slab, at the paper's exact (N, k) combinations.

use lcc_bench::gb;
use lcc_core::table1_rows;

fn main() {
    println!("Table 1 — memory required, traditional vs domain-local FFT");
    println!(
        "{:<28} {:<16} {:>26} {:>26}",
        "Problem size", "Domain size", "Traditional FFT [GB]", "Local FFT ours [GB]"
    );
    // The paper prints binary-GiB-rounded values (8 for 1024³ etc.).
    let gib = |b: u64| (b as f64 / (1u64 << 30) as f64).round();
    for r in table1_rows() {
        println!(
            "{:<28} {:<16} {:>20} ({:>6.2}) {:>19} ({:>6.2})",
            format!("{0} x {0} x {0}", r.n),
            format!("{0} x {0} x {0}", r.k),
            gib(r.traditional),
            gb(r.traditional),
            gib(r.local),
            gb(r.local),
        );
    }
    println!("\n(paper column 3: 8, 8, 64, 64, 512, 512, 4096, 4096)");
    println!("(paper column 4: 1, 4, 4, 16, 16, 64, 32, 64)");
}
