//! Table 3 at paper scale, via the analytic device model.
//!
//! `exp_table3` measures both pipelines on this machine's CPU, isolating
//! the algorithmic advantage. This companion reconstructs the paper's
//! actual experiment — *our pipeline on a V100-class GPU vs a dense FFTW
//! convolution on a Xeon-class CPU* — with the first-order performance
//! model of `lcc-device` (sustained flop rates, PCIe transfers, kernel
//! launches) and the exact operation counts of each pipeline stage.

use lcc_core::PipelineFootprint;
use lcc_device::{fft_flops, PerfModel, SimDevice};

/// Flops of a dense 3D FFT convolution at size n (fwd + inv 3D FFT + mul).
fn dense_conv_flops(n: usize) -> f64 {
    // 3 axes × n² pencils per transform, two transforms, plus pointwise.
    2.0 * 3.0 * fft_flops(n, n * n) + 8.0 * (n as f64).powi(3)
}

/// Flops of the streaming pipeline at (n, k, r): pruned 2D stage, batched
/// z stage with on-the-fly multiply, inverse 2D over retained planes.
fn pipeline_flops(n: usize, k: usize, retained: usize) -> f64 {
    let pruned_pencil = 5.0 * n as f64 * (k as f64).log2().max(1.0);
    // Stage 1: per slice, k y-pencils + n x-pencils; k slices.
    let stage1 = k as f64 * (k as f64 + n as f64) * pruned_pencil;
    // Stage 2: n² pencils: pruned forward + pointwise + full inverse.
    let stage2 =
        (n * n) as f64 * (pruned_pencil + 8.0 * n as f64 + 5.0 * n as f64 * (n as f64).log2());
    // Stage 3: retained planes × 2D inverse (2n pencils of length n each).
    let stage3 = retained as f64 * 2.0 * fft_flops(n, n);
    stage1 + stage2 + stage3
}

fn main() {
    println!("Table 3 (modeled at paper scale) — ours on V100 vs dense FFTW on Xeon");
    println!(
        "{:<6} {:<4} {:<5} {:>14} {:>14} {:>9} {:>9}",
        "N", "k", "r", "ours GPU (ms)", "dense CPU (ms)", "speedup", "paper"
    );
    let rows = [
        (128usize, 32usize, 4usize, Some(4.17)),
        (256, 32, 4, Some(11.91)),
        (512, 32, 4, Some(19.24)),
        (512, 32, 8, Some(21.46)),
        (1024, 32, 32, Some(24.43)),
        (2048, 64, 64, None),
    ];
    for (n, k, r, paper) in rows {
        let retained = (2 * k + n / r).min(n);

        // GPU: transfers + staged kernels. The POC stages the N×N×k slab
        // through host memory ("data transfers into and out of the GPU are
        // needed repeatedly", §2.1): charge the slab once in each
        // direction, the compressed samples out, and one launch per batch.
        let gpu = SimDevice::new("V100", 32 << 30, PerfModel::v100());
        let fp = PipelineFootprint::model(n, k, retained, 4096, 8 * (k as u64).pow(3));
        gpu.transfer_h2d((k * k * k * 8) as u64);
        gpu.transfer_h2d(fp.slab_bytes);
        gpu.transfer_d2h(fp.slab_bytes);
        gpu.launch_kernel(pipeline_flops(n, k, retained));
        let batches = (n * n / 4096).max(1);
        let launch_overhead = batches as f64 * gpu.perf().launch_latency;
        let samples_out = (k * k * k) as u64 * 8 + ((n as u64).pow(3) / (r as u64).pow(3)) * 8;
        gpu.transfer_d2h(samples_out);
        let t_gpu = (gpu.elapsed() + launch_overhead) * 1e3;

        // CPU: dense convolution, no transfers.
        let cpu = SimDevice::new("Xeon", 192 << 30, PerfModel::xeon_cpu());
        cpu.launch_kernel(dense_conv_flops(n));
        let t_cpu = cpu.elapsed() * 1e3;

        let speedup = t_cpu / t_gpu;
        println!(
            "{:<6} {:<4} {:<5} {:>14.2} {:>14.2} {:>9.2} {:>9}",
            n,
            k,
            r,
            t_gpu,
            t_cpu,
            speedup,
            paper
                .map(|p| format!("{p:.2}"))
                .unwrap_or_else(|| "-".into())
        );
    }
    println!("\nShape to match: speedup grows with N into the tens — the GPU's flop");
    println!("advantage discounted by slab staging transfers and pruned-stage work,");
    println!("as in the paper's 4.2x -> 24.4x progression. (The N=1024 row over-");
    println!("predicts: the paper's heaviest run evidently hit costs this first-");
    println!("order model does not carry.)");
}
