//! Table 2: largest sub-domain size k whose streaming pipeline fits on the
//! paper's GPUs (V100 16 GB for N ≤ 512, V100 32 GB beyond), with buffers
//! and cuFFT-style plan workspaces charged to the simulated device's
//! tracking allocator.

use lcc_bench::gb;
use lcc_core::PipelineFootprint;
use lcc_device::SimDevice;

/// Charges the pipeline's live buffers against `dev` for the given
/// downsampling rate; true if all fit.
fn fits_at_r(dev: &SimDevice, n: usize, k: usize, batch: usize, r: usize) -> bool {
    let retained = (2 * k + n / r).min(n);
    let compressed = 8 * ((k as u64).pow(3) + (n as u64).pow(3) / (r as u64).pow(3));
    let fp = PipelineFootprint::model(n, k, retained, batch, compressed);
    let mut held = Vec::new();
    for (bytes, label) in [
        (fp.slab_bytes, "slab"),
        (fp.retained_bytes, "retained-planes"),
        (fp.batch_bytes, "pencil-batch"),
        (fp.compressed_bytes, "compressed-output"),
        (fp.plan_workspace_bytes, "cufft-workspace"),
    ] {
        match dev.alloc(bytes, label) {
            Ok(b) => held.push(b),
            Err(_) => return false,
        }
    }
    true
}

/// §5.1: "Our method works for combinations of N and k up to a certain k
/// for which GPU memory usage is optimized" — the downsampling rate is part
/// of that optimization, so fit is checked over the paper's r range.
fn fits(dev_name: &str, n: usize, k: usize, batch: usize) -> Option<u64> {
    for r in [8usize, 16, 32, 64, 128] {
        let dev = if dev_name.contains("16") {
            SimDevice::v100_16gb()
        } else {
            SimDevice::v100_32gb()
        };
        if fits_at_r(&dev, n, k, batch, r) {
            return Some(dev.memory().peak());
        }
    }
    None
}

fn main() {
    println!("Table 2 — allowable k per N within a single GPU's memory");
    println!(
        "{:<8} {:<14} {:<18} {:>14}",
        "N", "allowable k", "device", "peak GB @ k"
    );
    let rows = [
        (128usize, "V100 16GB"),
        (256, "V100 16GB"),
        (512, "V100 16GB"),
        (1024, "V100 32GB"),
        (2048, "V100 32GB"),
    ];
    for (n, dev_name) in rows {
        let mut best: Option<(usize, u64)> = None;
        let mut k = 2;
        while k <= n / 2 {
            let batch = (n * 2).min(8192);
            if let Some(peak) = fits(dev_name, n, k, batch) {
                best = Some((k, peak));
            }
            k *= 2;
        }
        match best {
            Some((k, peak)) => println!(
                "{:<8} {:<14} {:<18} {:>14.2}",
                n,
                format!("<= {k}"),
                dev_name,
                gb(peak)
            ),
            None => println!("{:<8} {:<14} {:<18} {:>14}", n, "none", dev_name, "-"),
        }
    }
    println!("\n(paper: 128 -> <=64 | 256 -> <=128 | 512 -> <=256 on 16GB;");
    println!("        1024 -> <=256 | 2048 -> <=64 on 32GB)");
    println!("Shape to match: k grows with N while memory allows, then collapses at N=2048.");
}
