//! Fig. 1 quantified: communication of the traditional distributed FFT
//! convolution vs the proposed single sparse exchange — analytic (Eqs. 1,
//! 2, 6) at paper scale, and *measured* on the functional cluster simulator
//! at laptop scale.

use std::sync::Arc;

use lcc_comm::{
    convolve_distributed, encode_f64s, run_cluster, scatter_slabs, AlphaBeta, CommScenario,
};
use lcc_core::{LowCommConfig, LowCommConvolver};
use lcc_fft::{Complex64, FftPlanner};
use lcc_greens::{GaussianKernel, KernelSpectrum};
use lcc_grid::{decompose_uniform, BoxRegion, Grid3};
use lcc_octree::RateSchedule;

fn measured(n: usize, k: usize, p: usize) {
    let sigma = 1.0;
    let kernel = Arc::new(GaussianKernel::new(n, sigma));
    let field: Vec<Complex64> = (0..n * n * n)
        .map(|i| Complex64::from_real((i as f64 * 0.23).sin()))
        .collect();

    // Traditional distributed convolution.
    let slabs = scatter_slabs(&field, n, p);
    let kern = {
        let kernel = kernel.clone();
        move |f: [usize; 3]| kernel.eval(f)
    };
    let (_, trad) = run_cluster(p, move |mut w| {
        let planner = FftPlanner::new();
        let mine = slabs[w.rank()].clone();
        convolve_distributed(&mut w, &planner, mine, n, &kern).expect("convolution failed");
    });

    // Proposed: local compressed convolutions + one routed exchange.
    let conv = Arc::new(LowCommConvolver::new(LowCommConfig {
        n,
        k,
        batch: 1024,
        schedule: RateSchedule::paper_default(k, 16),
    }));
    let input = Arc::new(Grid3::from_vec(
        (n, n, n),
        field.iter().map(|c| c.re).collect(),
    ));
    let domains = decompose_uniform(n, k);
    let slab_of = move |x: usize| x / (n / p);
    let assignment: Vec<Vec<usize>> = {
        let mut a = vec![Vec::new(); p];
        for (di, d) in domains.iter().enumerate() {
            a[slab_of(conv.response_region(d, kernel.as_ref()).lo[0])].push(di);
        }
        a
    };
    let (_, ours) = run_cluster(p, {
        let conv = conv.clone();
        let domains = domains.clone();
        let assignment = assignment.clone();
        let kernel = kernel.clone();
        let input = input.clone();
        move |mut w| {
            let fields: Vec<_> = assignment[w.rank()]
                .iter()
                .map(|&di| {
                    let d = domains[di];
                    let sub = input.extract(&d);
                    let plan = conv.plan_for(conv.response_region(&d, kernel.as_ref()));
                    conv.local()
                        .convolve_compressed(&sub, d.lo, kernel.as_ref(), plan)
                })
                .collect();
            let outgoing: Vec<Vec<u8>> = (0..w.size())
                .map(|dest| {
                    let region = BoxRegion::new([dest * n / p, 0, 0], [(dest + 1) * n / p, n, n]);
                    let mut bytes = Vec::new();
                    for f in &fields {
                        bytes.extend(encode_f64s(&f.region_payload(&region).samples));
                    }
                    bytes
                })
                .collect();
            let _ = w.alltoall(outgoing).expect("exchange failed");
        }
    });

    println!(
        "{:<6} {:<4} {:<4} {:>16} {:>8} {:>16} {:>8} {:>8.1}x",
        n,
        k,
        p,
        trad.bytes(),
        trad.rounds(),
        ours.bytes(),
        ours.rounds(),
        trad.bytes() as f64 / ours.bytes() as f64
    );
}

fn main() {
    println!("== measured on the functional cluster (bytes on the wire) ==");
    println!(
        "{:<6} {:<4} {:<4} {:>16} {:>8} {:>16} {:>8} {:>9}",
        "N", "k", "P", "trad bytes", "rounds", "ours bytes", "rounds", "reduction"
    );
    for (n, k, p) in [(32usize, 8usize, 4usize), (64, 16, 4), (64, 16, 8)] {
        measured(n, k, p);
    }

    println!("\n== analytic α-β model at paper scale ==");
    println!(
        "{:<6} {:<6} {:<6} {:<6} {:>13} {:>13} {:>13} {:>9}",
        "N", "P", "k", "r", "T_fft eq1(s)", "T_fft α-β(s)", "T_ours eq6(s)", "ratio"
    );
    for (n, p, k, r) in [
        (1024usize, 512usize, 128usize, 8.0f64),
        (2048, 512, 128, 16.0),
        (4096, 4096, 128, 16.0),
        (8192, 4096, 128, 32.0),
    ] {
        let s = CommScenario {
            n,
            p,
            elem_bytes: 16,
            link: AlphaBeta::hpc_default(),
        };
        let t1 = s.t_fft_bandwidth_only();
        let t1ab = s.t_fft_alltoall();
        let t6 = s.t_ours(k, r);
        println!(
            "{:<6} {:<6} {:<6} {:<6} {:>13.4e} {:>13.4e} {:>13.4e} {:>9.1}",
            n,
            p,
            k,
            r,
            t1,
            t1ab,
            t6,
            t1 / t6
        );
    }
    println!("\nShape to match Fig. 1: multiple all-to-all stages collapse to one");
    println!("sparse exchange; the gap widens with N and with the far-field rate r.");
}
