//! Table 4: estimated vs actual device memory for the streaming pipeline at
//! the paper's exact (N, k, r) rows, on the simulated device.
//!
//! "The difference between the values is due to the use of CUFFT, which
//! creates temporaries in the midst of calculations" — our tracking
//! allocator charges those plan workspaces explicitly, reproducing the
//! estimated < actual gap. (These rows are allocator accounting only; no
//! real 2048³ buffers exist, exactly as Table 2/4 are capacity statements.)

use lcc_bench::gb;
use lcc_core::PipelineFootprint;

fn main() {
    println!("Table 4 — estimated vs actual GPU memory for sub-domain convolution");
    println!(
        "{:<6} {:<5} {:<5} {:>16} {:>14} {:>8}",
        "N", "k", "r", "Estimated (GB)", "Actual (GB)", "ratio"
    );
    // The paper's rows: (N, k, r, paper_estimated, paper_actual).
    let rows: [(usize, usize, u32, f64, f64); 7] = [
        (512, 32, 16, 0.62, 1.29),
        (1024, 32, 32, 2.49, 4.33),
        (2048, 8, 128, 3.52, 5.67),
        (2048, 16, 128, 5.02, 8.16),
        (2048, 32, 128, 8.00, 13.16),
        (2048, 32, 64, 9.97, 16.20),
        (2048, 64, 64, 15.92, 26.20),
    ];
    for (n, k, r, p_est, p_act) in rows {
        // Retained planes: dense response (~2k) + exterior strided at r.
        let retained = (2 * k + n / r as usize).min(n);
        let compressed = 8 * ((k as u64).pow(3) + (n as u64).pow(3) / (r as u64).pow(3));
        let batch = (4 * n).min(32768);
        let fp = PipelineFootprint::model(n, k, retained, batch, compressed);
        let est = fp.estimated_bytes();
        let act = fp.actual_bytes();
        println!(
            "{:<6} {:<5} {:<5} {:>10.2} [{:>5.2}] {:>8.2} [{:>6.2}] {:>8.2}",
            n,
            k,
            r,
            gb(est),
            p_est,
            gb(act),
            p_act,
            act as f64 / est as f64
        );
    }
    println!("\n[bracketed values: paper's numbers]");
    println!("Shape to match: actual exceeds estimated by a ~1.6x-2.1x library-workspace");
    println!("factor, and footprints stay far below the 16·N³ dense requirement.");
}
