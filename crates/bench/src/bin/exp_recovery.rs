//! Self-healing sweep: crash-rank × crash-time × recovery policy on the
//! Fig. 1(b) deployment, under the deterministic cluster simulator.
//!
//! For every scenario the survivors detect the death (epoch-stamped
//! membership), deterministically re-partition the dead rank's sub-domains
//! ([`lcc_core::RecoveryPlanner`]), recompute them — exactly under
//! `Redistribute`, at the coarsest rate under `Degrade`, one exact domain
//! per claimant under `Hybrid` — and fold everything in ascending
//! domain-id order. The table (and `BENCH_recovery.json`) reports the
//! accuracy cost (relative L2 vs the fault-free run) and the recovery
//! overhead (extra exchanged bytes, extra modeled flops).
//!
//! The headline acceptance row: `Redistribute` keeps **vs clean = 0** —
//! bit-identical to the fault-free result — for any single crash.
//!
//! Run with `--smoke` for the fast CI configuration (crash/deserter × all
//! three policies on a 16³ grid).

use lcc_bench::json::{write_report, Json};
use lcc_bench::recovery::{fast_retry, fault_free_reference, run_recovery, RecoveryCase};
use lcc_comm::FaultPlan;
use lcc_core::{RecoveryPolicy, TraditionalConvolver};
use lcc_grid::relative_l2;

const SEED: u64 = 0x0D_EC_AF;

struct Scenario {
    name: String,
    case: RecoveryCase,
}

fn scenarios(smoke: bool) -> Vec<Scenario> {
    let policies = [
        RecoveryPolicy::Degrade,
        RecoveryPolicy::Redistribute {
            max_extra_domains: usize::MAX,
        },
        RecoveryPolicy::Hybrid,
    ];
    let mut out = Vec::new();
    let crash_ranks: &[usize] = if smoke { &[1] } else { &[0, 1, 2, 3] };
    for policy in policies {
        for &r in crash_ranks {
            let mut case = RecoveryCase::standard(FaultPlan::new(SEED).with_crashed(r), policy);
            if smoke {
                case.n = 16;
                case.sigma = 1.0;
            }
            out.push(Scenario {
                name: format!("crash rank {r} at start"),
                case,
            });
        }
        // Desertion = death *during* the sparse accumulation: the deserter
        // ships a partial epoch-0 exchange and walks away. Rank 0 cannot
        // desert (a deserter only sends to lower ranks).
        let desert_ranks: &[usize] = if smoke { &[2] } else { &[1, 2, 3] };
        for &r in desert_ranks {
            let mut case = RecoveryCase::standard(FaultPlan::new(SEED).with_deserter(r), policy);
            if smoke {
                case.n = 16;
                case.sigma = 1.0;
            }
            case.retry = fast_retry(case.p);
            out.push(Scenario {
                name: format!("desert rank {r} mid-exchange"),
                case,
            });
        }
    }
    out
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let sweeps = scenarios(smoke);

    let base_case = &sweeps[0].case;
    let clean = fault_free_reference(base_case);
    let oracle =
        TraditionalConvolver::new(base_case.n).convolve(&base_case.input(), &base_case.kernel());

    println!(
        "== recovery sweep: N={} k={} P={}, seed {SEED:#x}{} ==",
        base_case.n,
        base_case.k,
        base_case.p,
        if smoke { " (smoke)" } else { "" }
    );
    println!(
        "{:<28} {:<12} {:>5} {:>5} {:>5} {:>10} {:>10} {:>12} {:>12}",
        "scenario",
        "policy",
        "epoch",
        "exact",
        "degr",
        "xtra-B",
        "xtra-GF",
        "vs clean",
        "vs oracle"
    );

    let mut rows = Vec::new();
    for s in &sweeps {
        let (results, stats) = run_recovery(&s.case);
        let outcome = results
            .iter()
            .flatten()
            .next()
            .expect("at least one survivor");
        // Every survivor must hold the identical field.
        for other in results.iter().flatten().skip(1) {
            assert_eq!(
                outcome.result.as_slice(),
                other.result.as_slice(),
                "survivors disagree in `{}`",
                s.name
            );
        }
        let vs_clean = relative_l2(clean.as_slice(), outcome.result.as_slice());
        let vs_oracle = relative_l2(oracle.as_slice(), outcome.result.as_slice());
        let r = &outcome.report;
        println!(
            "{:<28} {:<12} {:>5} {:>5} {:>5} {:>10} {:>10.3} {:>12.2e} {:>12.2e}",
            s.name,
            s.case.policy.name(),
            outcome.epoch,
            r.recovered_domains,
            r.degraded_domains,
            r.recovery_extra_bytes,
            r.recovery_extra_flops / 1e9,
            vs_clean,
            vs_oracle
        );
        if s.case.policy.exact_budget() == usize::MAX {
            assert_eq!(
                vs_clean, 0.0,
                "`{}`: Redistribute must be bit-identical to the fault-free run",
                s.name
            );
        }
        rows.push(Json::obj(vec![
            ("scenario", Json::str(&s.name)),
            ("policy", Json::str(s.case.policy.name())),
            ("epoch", Json::int(outcome.epoch as i64)),
            ("recovered_domains", Json::int(r.recovered_domains as i64)),
            ("degraded_domains", Json::int(r.degraded_domains as i64)),
            (
                "recovery_extra_bytes",
                Json::int(r.recovery_extra_bytes as i64),
            ),
            ("recovery_extra_flops", Json::Num(r.recovery_extra_flops)),
            ("exchange_bytes", Json::int(r.exchange_bytes as i64)),
            ("physical_bytes", Json::int(stats.physical_bytes() as i64)),
            ("l2_vs_clean", Json::Num(vs_clean)),
            ("l2_vs_oracle", Json::Num(vs_oracle)),
        ]));
    }

    write_report(
        "BENCH_recovery.json",
        &Json::obj(vec![
            (
                "config",
                Json::obj(vec![
                    ("n", Json::int(base_case.n as i64)),
                    ("k", Json::int(base_case.k as i64)),
                    ("p", Json::int(base_case.p as i64)),
                    ("sigma", Json::Num(base_case.sigma)),
                    ("smoke", Json::Bool(smoke)),
                ]),
            ),
            ("seed", Json::int(SEED as i64)),
            ("rows", Json::Arr(rows)),
        ]),
    );

    println!();
    println!("Redistribute recomputes orphans with the owner's exact sampling plan and");
    println!("folds in ascending domain-id order, so its result is bit-identical to the");
    println!("fault-free run (vs clean = 0); Degrade trades accuracy for zero recompute;");
    println!("Hybrid bounds the per-claimant recompute at one domain.");
}
