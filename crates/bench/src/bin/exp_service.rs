//! Convolve-as-a-service regenerator: a closed-loop traffic generator
//! against the threaded [`ServiceServer`], swept over offered load
//! (concurrent closed-loop tenants), exported as `BENCH_service.json`.
//!
//! Each load point spawns a fresh server, warms the shared plan cache
//! (one request per plan key), then runs `clients` tenant threads in
//! closed loop — every thread submits its next request the moment the
//! previous reply lands, so the offered load is set by the concurrency,
//! not a timer. Every call crosses the versioned wire codec both ways.
//!
//! The run asserts the service acceptance invariants at every point:
//!
//! * exact accounting — `admitted + shed + rejected == offered`;
//! * bounded queues — the high-water queue depth never exceeds the
//!   closed-loop concurrency (nothing buffers beyond the tenants'
//!   outstanding requests), and shed mode engages at the overload point
//!   *before* that bound is reached;
//! * warm cache — after warm-up, no tenant ever observes a plan rebuild
//!   (`plan_builds == distinct keys` at shutdown).
//!
//! The JSON also folds in the paper's Eq. 1 / Eq. 6 α-β model for the
//! per-request problem size, so measured p50 latency sits next to the
//! modeled communication floor it is paying for (EXPERIMENTS.md maps the
//! two).

use std::sync::{Arc, Barrier};
use std::thread;
use std::time::Instant;

use lcc_bench::json::{write_report, Json};
use lcc_comm::{AlphaBeta, CommScenario};
use lcc_core::prelude::*;
use lcc_service::wire::{
    decode_message, encode_request, ConvolveRequest, RequestInput, ServedMode, TenantId,
    WireMessage,
};
use lcc_service::{AdmissionConfig, ServiceConfig, ServiceReport, ServiceServer};

const N: u32 = 16;
const K: u32 = 4;
const FAR_RATE: u32 = 8;
/// Distinct plan keys in the mix — tenants alternate sigmas, so every
/// key is shared across all tenants.
const SIGMAS: [f64; 2] = [1.0, 2.0];
/// Every 8th request demands exact service; under shed these come back
/// as typed `Shedding` rejects instead of silently degraded fields.
const EXACT_EVERY: u64 = 8;

fn admission() -> AdmissionConfig {
    AdmissionConfig {
        queue_capacity: 8,
        tenant_quota: 8,
        shed_on: 12,
        shed_off: 4,
    }
}

fn dense_input(tenant: u32) -> Vec<f64> {
    let n = N as usize;
    let phase = tenant as f64 * 0.37;
    let mut samples = Vec::with_capacity(n * n * n);
    for x in 0..n {
        for y in 0..n {
            for z in 0..n {
                samples.push(
                    ((x as f64 * 0.31 + phase).sin() + (y as f64 * 0.22).cos())
                        * (1.0 + 0.02 * z as f64),
                );
            }
        }
    }
    samples
}

fn request(tenant: u32, id: u64) -> ConvolveRequest {
    ConvolveRequest {
        tenant: TenantId(tenant),
        request_id: id,
        n: N,
        k: K,
        far_rate: FAR_RATE,
        sigma: SIGMAS[(id % 2) as usize],
        require_exact: id % EXACT_EVERY == EXACT_EVERY - 1,
        checksum_only: true,
        input: RequestInput::Dense(dense_input(tenant)),
    }
}

/// One client call outcome.
#[derive(Clone, Copy)]
enum Outcome {
    Normal,
    Degraded,
    Rejected,
}

struct Point {
    clients: usize,
    elapsed_s: f64,
    latencies_ms: Vec<f64>,
    normal: u64,
    degraded: u64,
    rejected: u64,
    report: ServiceReport,
}

fn percentile(sorted_ms: &[f64], q: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() - 1) as f64 * q).round() as usize;
    sorted_ms[idx]
}

fn run_point(clients: usize, reqs_per_client: u64) -> Point {
    let server = ServiceServer::spawn(ServiceConfig {
        admission: admission(),
        max_batch: 16,
    });

    // Warm-up: one request per plan key, sequentially, so the measured
    // phase starts with every key cached.
    let warm = server.client();
    for (i, _) in SIGMAS.iter().enumerate() {
        let reply = warm
            .call_bytes(encode_request(&request(0, i as u64)))
            .expect("warm-up call");
        assert!(
            matches!(decode_message(&reply), Ok(WireMessage::Response(_))),
            "warm-up request must be served"
        );
    }

    let barrier = Arc::new(Barrier::new(clients));
    let start = Instant::now();
    let mut handles = Vec::new();
    for c in 0..clients {
        let client = server.client();
        let barrier = Arc::clone(&barrier);
        handles.push(thread::spawn(move || {
            let tenant = c as u32 + 1;
            let mut calls: Vec<(f64, Outcome)> = Vec::with_capacity(reqs_per_client as usize);
            barrier.wait();
            for id in 0..reqs_per_client {
                let bytes = encode_request(&request(tenant, id));
                let t0 = Instant::now();
                let reply = client.call_bytes(bytes).expect("server alive");
                let ms = t0.elapsed().as_secs_f64() * 1e3;
                let outcome = match decode_message(&reply).expect("well-formed reply") {
                    WireMessage::Response(resp) => match resp.mode {
                        ServedMode::Normal => Outcome::Normal,
                        ServedMode::Degraded => Outcome::Degraded,
                    },
                    WireMessage::Reject(_) => Outcome::Rejected,
                    WireMessage::Request(_) => panic!("server echoed a request"),
                };
                calls.push((ms, outcome));
            }
            calls
        }));
    }

    let mut latencies_ms = Vec::new();
    let (mut normal, mut degraded, mut rejected) = (0u64, 0u64, 0u64);
    for h in handles {
        for (ms, outcome) in h.join().expect("client thread") {
            match outcome {
                Outcome::Normal => normal += 1,
                Outcome::Degraded => degraded += 1,
                Outcome::Rejected => rejected += 1,
            }
            // Latency percentiles cover *served* requests; rejects return
            // in microseconds and would only flatter the tail.
            if !matches!(outcome, Outcome::Rejected) {
                latencies_ms.push(ms);
            }
        }
    }
    let elapsed_s = start.elapsed().as_secs_f64();
    latencies_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let report = server.shutdown();

    Point {
        clients,
        elapsed_s,
        latencies_ms,
        normal,
        degraded,
        rejected,
        report,
    }
}

fn point_json(p: &Point, reqs_per_client: u64) -> Json {
    let served = p.normal + p.degraded;
    Json::obj(vec![
        ("clients", Json::int(p.clients as i64)),
        (
            "requests",
            Json::int((p.clients as u64 * reqs_per_client) as i64),
        ),
        ("elapsed_s", Json::Num(p.elapsed_s)),
        (
            "throughput_rps",
            Json::Num(served as f64 / p.elapsed_s.max(1e-9)),
        ),
        ("p50_ms", Json::Num(percentile(&p.latencies_ms, 0.50))),
        ("p95_ms", Json::Num(percentile(&p.latencies_ms, 0.95))),
        ("p99_ms", Json::Num(percentile(&p.latencies_ms, 0.99))),
        ("served_normal", Json::int(p.normal as i64)),
        ("served_degraded", Json::int(p.degraded as i64)),
        ("rejected", Json::int(p.rejected as i64)),
        ("offered", Json::int(p.report.admission.offered as i64)),
        ("shed", Json::int(p.report.admission.shed as i64)),
        (
            "shed_entries",
            Json::int(p.report.admission.shed_entries as i64),
        ),
        (
            "max_queue_depth",
            Json::int(p.report.admission.max_total_queued as i64),
        ),
        ("plan_builds", Json::int(p.report.plan_builds as i64)),
        ("plan_hits", Json::int(p.report.plan_hits as i64)),
        (
            "plan_evictions",
            Json::int(p.report.plan_evictions as i64),
        ),
        (
            "accounting_balanced",
            Json::Bool(p.report.admission.balanced()),
        ),
    ])
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let reqs_per_client: u64 = if smoke { 10 } else { 40 };
    // Closed-loop concurrency sweep: under / near / over the shed_on
    // threshold (12 queued). The overload point must trip shed mode.
    let load_points = [2usize, 8, 32];
    let cfg = admission();

    println!("== convolve-as-a-service sweep: n={N} k={K}, {reqs_per_client} reqs/client ==");
    let mut points = Vec::new();
    for &clients in &load_points {
        let p = run_point(clients, reqs_per_client);
        let stats = &p.report.admission;

        // Invariant 1: exact accounting at every load point.
        assert!(stats.balanced(), "accounting must balance exactly");
        assert_eq!(
            stats.offered,
            SIGMAS.len() as u64 + clients as u64 * reqs_per_client,
            "every offered request is accounted"
        );
        // Invariant 2: queues stay bounded — the backlog never exceeds the
        // closed-loop concurrency (+ warm-up), far below the per-tenant
        // capacity the config would tolerate.
        assert!(
            stats.max_total_queued <= clients as u64 + SIGMAS.len() as u64,
            "queue depth {} exceeded the closed-loop bound {}",
            stats.max_total_queued,
            clients
        );
        // Invariant 3: the shared plan cache is warm after warm-up — no
        // tenant ever observes a rebuild in the measured phase.
        assert_eq!(
            p.report.plan_builds,
            SIGMAS.len() as u64,
            "cache-warm tenants observed a plan rebuild"
        );

        let shed_expected = clients > cfg.shed_on;
        if shed_expected {
            // Invariant 4: overload sheds *before* queues grow unbounded.
            assert!(
                stats.shed_entries > 0 && stats.shed > 0,
                "overload point ({clients} clients) must engage shed mode"
            );
        } else if clients < cfg.shed_on {
            assert_eq!(
                stats.shed_entries, 0,
                "underload point must never shed (depth bounded by {clients})"
            );
        }

        println!(
            "  clients={:<3} throughput={:>7.1} rps  p50={:>7.2} ms  p95={:>7.2} ms  p99={:>7.2} ms  \
             shed={} rejected={} max_depth={}",
            p.clients,
            (p.normal + p.degraded) as f64 / p.elapsed_s.max(1e-9),
            percentile(&p.latencies_ms, 0.50),
            percentile(&p.latencies_ms, 0.95),
            percentile(&p.latencies_ms, 0.99),
            stats.shed,
            p.rejected,
            stats.max_total_queued,
        );
        points.push(p);
    }

    // Eq. 1 / Eq. 6 α-β model for the per-request problem: what one
    // request's convolution would cost in communication on a P-node
    // deployment, next to the measured single-box service latency.
    let conv_cfg = LowCommConfig::builder()
        .n(N as usize)
        .k(K as usize)
        .far_rate(FAR_RATE)
        .build()
        .expect("bench problem config");
    let r_avg = conv_cfg
        .schedule
        .effective_exterior_rate(N as usize, K as usize);
    // Two rows: the service's toy n (where Eq. 6's α term dominates and
    // the ratio honestly dips below 1) and the paper-scale n where the
    // single sparse exchange wins.
    let model_row = |n: usize, k: usize| {
        let scenario = CommScenario {
            n,
            p: 8,
            elem_bytes: 8,
            link: AlphaBeta::hpc_default(),
        };
        let t_fft = scenario.t_fft_bandwidth_only();
        let t_ours = scenario.t_ours(k, r_avg);
        println!(
            "  model (n={n}, P={}): Eq.1 t_fft={t_fft:.3e} s  Eq.6 t_ours={t_ours:.3e} s  ratio={:.1}x",
            scenario.p,
            t_fft / t_ours
        );
        Json::obj(vec![
            ("n", Json::int(n as i64)),
            ("p", Json::int(scenario.p as i64)),
            ("r_avg", Json::Num(r_avg)),
            ("eq1_t_fft_s", Json::Num(t_fft)),
            ("eq6_t_ours_s", Json::Num(t_ours)),
            ("modeled_reduction", Json::Num(t_fft / t_ours)),
        ])
    };
    let model_rows = vec![model_row(N as usize, K as usize), model_row(512, 128)];

    let overload = points.last().expect("at least one load point");
    write_report(
        "BENCH_service.json",
        &Json::obj(vec![
            (
                "config",
                Json::obj(vec![
                    ("n", Json::int(N as i64)),
                    ("k", Json::int(K as i64)),
                    ("far_rate", Json::int(FAR_RATE as i64)),
                    ("plan_keys", Json::int(SIGMAS.len() as i64)),
                    ("queue_capacity", Json::int(cfg.queue_capacity as i64)),
                    ("tenant_quota", Json::int(cfg.tenant_quota as i64)),
                    ("shed_on", Json::int(cfg.shed_on as i64)),
                    ("shed_off", Json::int(cfg.shed_off as i64)),
                    ("reqs_per_client", Json::int(reqs_per_client as i64)),
                    ("smoke", Json::Bool(smoke)),
                ]),
            ),
            (
                "points",
                Json::Arr(
                    points
                        .iter()
                        .map(|p| point_json(p, reqs_per_client))
                        .collect(),
                ),
            ),
            (
                "assertions",
                Json::obj(vec![
                    ("accounting_balanced_all_points", Json::Bool(true)),
                    (
                        "overload_sheds_before_unbounded_growth",
                        Json::Bool(overload.report.admission.shed_entries > 0),
                    ),
                    ("max_queue_depth_bounded_by_concurrency", Json::Bool(true)),
                    ("warm_cache_zero_rebuilds", Json::Bool(true)),
                ]),
            ),
            ("model", Json::Arr(model_rows)),
        ]),
    );
    println!("OK");
}
