//! §5.3's future work, carried out: analytic Taylor error bounds for the
//! octree reconstruction as a function of (N, k, schedule, kernel decay),
//! validated against measured errors.

use std::sync::Arc;

use lcc_grid::{relative_l2, BoxRegion, Grid3};
use lcc_octree::{
    schedule_error_bound, CompressedField, GaussianDecay, RateSchedule, SamplingPlan,
};

fn main() {
    let n = 64usize;
    let k = 16usize;
    let lo = (n - k) / 2;
    let domain = BoxRegion::new([lo; 3], [lo + k; 3]);

    println!("Analytic vs measured reconstruction error (N = {n}, k = {k})");
    println!(
        "{:<10} {:<26} {:>12} {:>12} {:>8}",
        "sigma", "schedule", "measured", "bound", "ratio"
    );
    for sigma in [1.0f64, 2.0, 3.0] {
        let decay = GaussianDecay {
            amplitude: 1.0,
            sigma,
        };
        let field = Grid3::from_fn((n, n, n), |x, y, z| {
            let d = domain.chebyshev_distance([x, y, z]) as f64;
            (-d * d / (2.0 * sigma * sigma)).exp()
        });
        let schedules = [
            ("paper heuristic f16", RateSchedule::paper_default(k, 16)),
            (
                "spread-aware",
                RateSchedule::for_kernel_spread(k, sigma, 16),
            ),
            ("uniform r=4", RateSchedule::uniform(4)),
        ];
        for (name, schedule) in schedules {
            let plan = Arc::new(SamplingPlan::build(n, domain, &schedule));
            let c = CompressedField::compress(plan, &field);
            let measured = relative_l2(field.as_slice(), c.reconstruct().as_slice());
            let (_, bound) = schedule_error_bound(n, k, &schedule, &decay);
            println!(
                "{:<10} {:<26} {:>12.3e} {:>12.3e} {:>8.1}",
                sigma,
                name,
                measured,
                bound,
                bound / measured.max(1e-16)
            );
        }
    }
    println!("\nEvery measured error sits below its bound; the bound tightens as the");
    println!("schedule resolves the kernel's decay edge (Taylor: err <= 3/8 r² max|f''|).");
}
