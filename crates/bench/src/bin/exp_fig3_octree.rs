//! Fig. 3: the octree-based sampling pattern for a 32³ sub-domain inside a
//! 128³ grid — the paper's exact geometry, including the densely re-sampled
//! boundary shell. Prints the per-rate census, a per-distance-shell density
//! profile, and an ASCII rendering of the central z-slice.

use lcc_grid::BoxRegion;
use lcc_octree::{RateSchedule, SamplingPlan};

fn main() {
    let n = 128usize;
    let k = 32usize;
    let lo = (n - k) / 2;
    let domain = BoxRegion::new([lo; 3], [lo + k; 3]);
    // Fig. 3's schedule: r=2 in a width-k/2 region around the sub-domain,
    // coarser farther out, dense again at the grid boundary.
    let schedule = RateSchedule::paper_default(k, 16).with_boundary_shell(2, 1);
    let plan = SamplingPlan::build(n, domain, &schedule);

    println!("Fig. 3 — adaptive sampling for a {k}³ sub-domain in a {n}³ grid");
    println!(
        "cells={} samples={} of {} points  (compression ratio {:.1}x)",
        plan.cells().len(),
        plan.total_samples(),
        n * n * n,
        plan.compression_ratio()
    );

    println!("\nper-rate census:");
    println!(
        "{:<8} {:>10} {:>14} {:>14} {:>12}",
        "rate", "cells", "points", "samples", "density"
    );
    for s in plan.rate_histogram() {
        println!(
            "{:<8} {:>10} {:>14} {:>14} {:>12.5}",
            s.rate,
            s.cells,
            s.points,
            s.samples,
            s.samples as f64 / s.points as f64
        );
    }

    println!("\nsample density by Chebyshev distance from the sub-domain:");
    println!(
        "{:<12} {:>12} {:>14} {:>10}",
        "distance", "samples", "points", "density"
    );
    let mut samples_by_shell = vec![0usize; n];
    let mut points_by_shell = vec![0usize; n];
    for cell in plan.cells() {
        for p in cell.sample_positions() {
            samples_by_shell[domain.periodic_chebyshev_distance(p, n)] += 1;
        }
    }
    for x in 0..n {
        for y in 0..n {
            for z in 0..n {
                points_by_shell[domain.periodic_chebyshev_distance([x, y, z], n)] += 1;
            }
        }
    }
    for (label, range) in [
        ("0 (domain)", 0..1usize),
        ("1..k/2", 1..k / 2 + 1),
        ("k/2..4k/2", k / 2 + 1..2 * k + 1),
        ("2k..48", 2 * k + 1..48),
    ] {
        let s: usize = range.clone().map(|d| samples_by_shell[d]).sum();
        let p: usize = range.map(|d| points_by_shell[d]).sum();
        if p > 0 {
            println!(
                "{:<12} {:>12} {:>14} {:>10.5}",
                label,
                s,
                p,
                s as f64 / p as f64
            );
        }
    }

    // ASCII rendering of the central z-slice: log2(rate) per cell.
    println!("\ncentral z-slice (one char per 2x2 block; 0=dense .. 4=r16, |edge shell|):");
    let z = n / 2;
    let mut glyphs = vec![b'?'; n * n];
    for cell in plan.cells() {
        let r = cell.region();
        if z < r.lo[2] || z >= r.hi[2] {
            continue;
        }
        let g = match cell.rate {
            1 => b'0',
            2 => b'1',
            4 => b'2',
            8 => b'3',
            _ => b'4',
        };
        for x in r.lo[0]..r.hi[0] {
            for y in r.lo[1]..r.hi[1] {
                glyphs[x * n + y] = g;
            }
        }
    }
    for x in (0..n).step_by(2) {
        let row: String = (0..n)
            .step_by(2)
            .map(|y| glyphs[x * n + y] as char)
            .collect();
        println!("{row}");
    }
    println!("\nShape to match Fig. 3: full resolution in the sub-domain, r=2 ring of");
    println!("width k/2, coarser rings outward, dense shell at the grid boundary.");
}
