//! §5.4 batch-parameter study: "changing the number of 1D 'pencils'
//! processed in a batch … has performance gains … For N = 256, changing B
//! from 512 to 1024 results in a speedup of 19.9%. These gains are smaller
//! for larger sizes."
//!
//! Sweeps B for the z-stage of the streaming pipeline at several N and
//! reports the relative speedup between consecutive batch sizes.

use std::sync::Arc;

use lcc_bench::time_ms;
use lcc_core::LocalConvolver;
use lcc_greens::GaussianKernel;
use lcc_grid::{BoxRegion, Grid3};
use lcc_octree::{RateSchedule, SamplingPlan};

fn main() {
    let k = 32usize;
    let reps = 3;
    for n in [64usize, 128, 256] {
        let kernel = GaussianKernel::new(n, 1.0);
        let sub = Grid3::from_fn((k.min(n / 2), k.min(n / 2), k.min(n / 2)), |x, y, z| {
            (x + y + z) as f64 * 0.1 + 1.0
        });
        let k_eff = k.min(n / 2);
        let hotspot = BoxRegion::new([n / 2; 3], [n / 2 + k_eff; 3]);
        let plan = Arc::new(SamplingPlan::build(
            n,
            hotspot,
            &RateSchedule::paper_default(k_eff, 16),
        ));

        println!("== N = {n}, k = {k_eff} ==");
        println!("{:<8} {:>12} {:>14}", "B", "time (ms)", "vs prev B");
        let mut prev: Option<f64> = None;
        for b in [64usize, 256, 512, 1024, 2048, 4096] {
            if b > n * n {
                continue;
            }
            let conv = LocalConvolver::new(n, k_eff, b);
            // Warm-up, then best-of-reps.
            conv.convolve_compressed(&sub, [0; 3], &kernel, plan.clone());
            let mut best = f64::INFINITY;
            for _ in 0..reps {
                let (_, ms) =
                    time_ms(|| conv.convolve_compressed(&sub, [0; 3], &kernel, plan.clone()));
                best = best.min(ms);
            }
            let delta = prev
                .map(|p| format!("{:+.1}%", (p - best) / p * 100.0))
                .unwrap_or_else(|| "-".into());
            println!("{:<8} {:>12.2} {:>14}", b, best, delta);
            prev = Some(best);
        }
        println!();
    }
    println!("(paper: +19.9% at N=256 for B 512->1024; +7.35% at N=1024 for");
    println!(" B 1024->2048; 5-7% at N=2048 — gains shrink as other stages dominate)");
}
