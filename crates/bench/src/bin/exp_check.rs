//! Model-checker throughput and coverage report (`BENCH_check.json`).
//!
//! Sweeps `lcc-check` over the protocol configurations the CI smoke job
//! and the overnight matrix care about, and records per configuration:
//! distinct states explored, dedup and sleep-set hit rates, deepest
//! frontier, terminal count, wall time, and the states/second rate. A
//! final mutation row re-introduces the PR-7 drain-skip bug and records
//! the conviction (invariant + counterexample length) — the report
//! documents not just that the checker is fast, but that it still bites.
//!
//! ```text
//! cargo run --release -p lcc-bench --bin exp_check            # full sweep
//! cargo run --release -p lcc-bench --bin exp_check -- --smoke # CI budget
//! ```

use std::time::Instant;

use lcc_bench::json::{write_report, Json};
use lcc_check::{bfs, dfs, Config, Limits, Model};

/// One swept configuration plus the state budget it runs under.
struct Row {
    cfg: Config,
    limits: Limits,
}

fn sweep(smoke: bool) -> Vec<Row> {
    let bounded = |max_states: u64| Limits {
        max_states,
        max_depth: 4_000,
    };
    let mut rows = vec![
        Row {
            cfg: Config::ranks(2),
            limits: bounded(100_000),
        },
        Row {
            cfg: Config::ranks(3),
            limits: bounded(100_000),
        },
        Row {
            cfg: Config::ranks(2).with_drops(1).with_dups(1).with_crashes(1),
            limits: bounded(500_000),
        },
        Row {
            cfg: Config::ranks(2)
                .with_drops(1)
                .with_crashes(1)
                .with_restarts(1),
            limits: bounded(500_000),
        },
        Row {
            cfg: Config::ranks(3).with_drops(1).with_crashes(1),
            limits: bounded(if smoke { 200_000 } else { 5_000_000 }),
        },
    ];
    if !smoke {
        // The deep spaces: minutes each, overnight-matrix territory.
        rows.push(Row {
            cfg: Config::ranks(3)
                .with_drops(1)
                .with_crashes(1)
                .with_restarts(1),
            limits: bounded(20_000_000),
        });
        rows.push(Row {
            cfg: Config::ranks(4).with_drops(1),
            limits: bounded(5_000_000),
        });
    }
    rows
}

fn ratio(hits: u64, states: u64) -> Json {
    let total = hits + states;
    if total == 0 {
        Json::Null
    } else {
        Json::Num(hits as f64 / total as f64)
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let mut rows = Vec::new();
    println!(
        "{:<34} {:>10} {:>8} {:>8} {:>6} {:>9} {:>10}",
        "config", "states", "dedup%", "sleep%", "depth", "wall(s)", "states/s"
    );
    for Row { cfg, limits } in sweep(smoke) {
        let model = Model::new(cfg);
        let start = Instant::now();
        let report = dfs(&model, limits);
        let wall = start.elapsed();
        assert!(
            report.clean(),
            "[{}] protocol violation during a benchmark sweep: {:?}",
            cfg.label(),
            report.counterexample.map(|c| c.violation)
        );
        let dedup_rate = ratio(report.dedup_hits, report.states);
        let sleep_rate = ratio(report.sleep_pruned, report.states);
        let rate = report.states as f64 / wall.as_secs_f64().max(1e-9);
        println!(
            "{:<34} {:>10} {:>8} {:>8} {:>6} {:>9.2} {:>10.0}{}",
            cfg.label(),
            report.states,
            fmt_pct(&dedup_rate),
            fmt_pct(&sleep_rate),
            report.max_depth,
            wall.as_secs_f64(),
            rate,
            if report.truncated {
                "  (truncated)"
            } else {
                ""
            },
        );
        rows.push(Json::obj(vec![
            ("config", Json::str(cfg.label())),
            ("states", Json::int(report.states as i64)),
            ("dedup_hits", Json::int(report.dedup_hits as i64)),
            ("dedup_hit_rate", dedup_rate),
            ("sleep_pruned", Json::int(report.sleep_pruned as i64)),
            ("sleep_prune_rate", sleep_rate),
            ("max_frontier_depth", Json::int(report.max_depth as i64)),
            ("terminals", Json::int(report.terminals as i64)),
            ("truncated", Json::Bool(report.truncated)),
            ("wall_ms", Json::Num(wall.as_secs_f64() * 1e3)),
            ("states_per_sec", Json::Num(rate)),
        ]));
    }

    // The mutation row: the checker must convict the re-introduced PR-7
    // drain-skip bug with a short counterexample, or it has lost the bug.
    let cfg = Config::ranks(2).with_drops(1).with_skip_done_drain();
    let model = Model::new(cfg);
    let start = Instant::now();
    let report = bfs(&model, Limits::default());
    let wall = start.elapsed();
    let cex = report
        .counterexample
        .expect("the drain-skip mutation must be convicted");
    println!(
        "mutation [{}]: convicted {} in {} events ({:.2}s)",
        cfg.label(),
        cex.violation.invariant,
        cex.trace.len(),
        wall.as_secs_f64()
    );
    let mutation = Json::obj(vec![
        ("config", Json::str(cfg.label())),
        ("invariant", Json::str(cex.violation.invariant)),
        ("trace_len", Json::int(cex.trace.len() as i64)),
        ("fault_events", Json::int(cex.fault_events.len() as i64)),
        ("wall_ms", Json::Num(wall.as_secs_f64() * 1e3)),
    ]);

    let out = Json::obj(vec![
        ("experiment", Json::str("protocol model check")),
        ("smoke", Json::Bool(smoke)),
        ("rows", Json::Arr(rows)),
        ("mutation", mutation),
    ]);
    write_report("BENCH_check.json", &out);
}

fn fmt_pct(j: &Json) -> String {
    match j {
        Json::Num(v) => format!("{:.1}%", v * 100.0),
        _ => "-".to_string(),
    }
}
