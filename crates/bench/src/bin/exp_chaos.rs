//! Chaos sweep on the Fig. 1(b) deployment: the low-communication
//! convolution's single sparse exchange, run on the cluster simulator under
//! increasing deterministic fault pressure. Each row replays exactly from
//! its seed (`FaultPlan` decisions are keyed hashes, not a shared RNG), so
//! any row can be reproduced in isolation.
//!
//! The table shows that the retry protocol absorbs message loss with ZERO
//! effect on the result (error vs the fault-free run stays 0) while the
//! logical traffic accounting — bytes, messages, one collective round —
//! never inflates. The final rows crash a rank: survivors degrade to the
//! schedule's coarsest rate for the dead rank's domains and report the
//! accuracy cost instead of hanging.

use std::sync::Arc;

use lcc_bench::chaos::{self, input, K, N, SIGMA};
use lcc_bench::json::{write_report, Json};
use lcc_comm::{CommStats, FaultPlan, RetryConfig};
use lcc_core::TraditionalConvolver;
use lcc_greens::GaussianKernel;
use lcc_grid::{relative_l2, Grid3};

const P: usize = 4;
const SEED: u64 = 0x51_EE_D5;

/// The distributed low-comm convolution under `plan`: local compressed
/// convolutions, one surviving allgather, reconstruction with degraded
/// recomputation of any crashed rank's domains. The per-rank body lives in
/// [`lcc_bench::chaos`], shared with the chaos and conformance suites.
fn run(plan: FaultPlan) -> (Vec<Option<Grid3<f64>>>, Arc<CommStats>) {
    chaos::run_workload(P, plan, RetryConfig::scaled_for(P))
}

fn main() {
    let oracle = TraditionalConvolver::new(N).convolve(&input(), &GaussianKernel::new(N, SIGMA));
    let (baseline, _) = run(FaultPlan::none());
    let baseline = baseline[0].as_ref().unwrap().clone();

    println!("== chaos sweep: N={N} k={K} P={P}, seed {SEED:#x}, one sparse exchange ==");
    println!(
        "{:<22} {:>8} {:>11} {:>8} {:>8} {:>10} {:>10} {:>12} {:>12}",
        "scenario",
        "retrans",
        "dups-suppr",
        "timeouts",
        "rounds",
        "logical-B",
        "wire-B",
        "vs clean",
        "vs oracle"
    );
    let sweeps: &[(&str, FaultPlan)] = &[
        ("fault-free", FaultPlan::none()),
        ("drop 1%", FaultPlan::new(SEED).with_drop(0.01)),
        ("drop 5%", FaultPlan::new(SEED).with_drop(0.05)),
        ("drop 10%", FaultPlan::new(SEED).with_drop(0.10)),
        (
            "drop 20% + dup 10%",
            FaultPlan::new(SEED).with_drop(0.20).with_duplicates(0.10),
        ),
        ("crash rank 3", FaultPlan::new(SEED).with_crashed(3)),
        (
            "crash 3 + drop 5%",
            FaultPlan::new(SEED).with_drop(0.05).with_crashed(3),
        ),
    ];
    let mut rows = Vec::new();
    for (name, plan) in sweeps {
        let (results, stats) = run(plan.clone());
        let survivor = results
            .iter()
            .flatten()
            .next()
            .expect("at least one survivor");
        let vs_clean = relative_l2(baseline.as_slice(), survivor.as_slice());
        let vs_oracle = relative_l2(oracle.as_slice(), survivor.as_slice());
        println!(
            "{:<22} {:>8} {:>11} {:>8} {:>8} {:>10} {:>10} {:>12.2e} {:>12.2e}",
            name,
            stats.retransmit_count(),
            stats.duplicate_count(),
            stats.timeout_count(),
            stats.rounds(),
            stats.bytes(),
            stats.physical_bytes(),
            vs_clean,
            vs_oracle
        );
        rows.push(Json::obj(vec![
            ("scenario", Json::str(*name)),
            ("retransmits", Json::int(stats.retransmit_count() as i64)),
            (
                "duplicates_suppressed",
                Json::int(stats.duplicate_count() as i64),
            ),
            ("timeouts", Json::int(stats.timeout_count() as i64)),
            ("rounds", Json::int(stats.rounds() as i64)),
            ("logical_bytes", Json::int(stats.bytes() as i64)),
            ("physical_bytes", Json::int(stats.physical_bytes() as i64)),
            ("acks", Json::int(stats.ack_count() as i64)),
            ("l2_vs_clean", Json::Num(vs_clean)),
            ("l2_vs_oracle", Json::Num(vs_oracle)),
        ]));
    }
    write_report(
        "BENCH_chaos.json",
        &Json::obj(vec![
            (
                "config",
                Json::obj(vec![
                    ("n", Json::int(N as i64)),
                    ("k", Json::int(K as i64)),
                    ("p", Json::int(P as i64)),
                    ("sigma", Json::Num(SIGMA)),
                ]),
            ),
            ("seed", Json::int(SEED as i64)),
            ("rows", Json::Arr(rows)),
        ]),
    );
    println!();
    println!("Message loss is fully absorbed by the ack/retry protocol (vs clean = 0)");
    println!("and never inflates the *logical* traffic — only wire bytes grow with");
    println!("retransmissions. A crashed rank degrades accuracy — survivors rebuild its");
    println!("domains at the schedule's coarsest rate — but the run completes in one round.");
}
