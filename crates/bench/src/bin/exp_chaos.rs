//! Chaos sweep on the Fig. 1(b) deployment: the low-communication
//! convolution's single sparse exchange, run on the cluster simulator under
//! increasing deterministic fault pressure. Each row replays exactly from
//! its seed (`FaultPlan` decisions are keyed hashes, not a shared RNG), so
//! any row can be reproduced in isolation.
//!
//! The table shows that the retry protocol absorbs message loss with ZERO
//! effect on the result (error vs the fault-free run stays 0) while the
//! logical traffic accounting — bytes, messages, one collective round —
//! never inflates. The final rows crash a rank: survivors degrade to the
//! schedule's coarsest rate for the dead rank's domains and report the
//! accuracy cost instead of hanging.

use std::collections::BTreeMap;
use std::sync::Arc;

use lcc_bench::json::{write_report, Json};
use lcc_comm::{
    decode_f64s, encode_f64s, run_cluster_with_faults, CommStats, FaultPlan, RetryConfig,
};
use lcc_core::{ConvolveMode, LowCommConfig, LowCommConvolver, TraditionalConvolver};
use lcc_greens::GaussianKernel;
use lcc_grid::{assign_round_robin, decompose_uniform, relative_l2, Grid3};
use lcc_octree::{CompressedField, RateSchedule};

const N: usize = 32;
const K: usize = 8;
const P: usize = 4;
const SIGMA: f64 = 1.5;
const SEED: u64 = 0x51_EE_D5;

fn input() -> Grid3<f64> {
    Grid3::from_fn((N, N, N), |x, y, z| {
        ((x as f64 * 0.29).sin() + (y as f64 * 0.41).cos()) * (1.0 + 0.01 * z as f64)
    })
}

fn config() -> LowCommConfig {
    LowCommConfig {
        n: N,
        k: K,
        batch: 512,
        schedule: RateSchedule::for_kernel_spread(K, SIGMA, 16),
    }
}

/// The distributed low-comm convolution under `plan`: local compressed
/// convolutions, one surviving allgather, reconstruction with degraded
/// recomputation of any crashed rank's domains.
fn run(plan: FaultPlan) -> (Vec<Option<Grid3<f64>>>, Arc<CommStats>) {
    let kernel = Arc::new(GaussianKernel::new(N, SIGMA));
    let field = Arc::new(input());
    let cfg = Arc::new(config());
    let domains = decompose_uniform(N, K);
    let assignment = assign_round_robin(domains.len(), P);
    run_cluster_with_faults(P, plan, RetryConfig::scaled_for(P), move |mut w| {
        let conv = LowCommConvolver::new((*cfg).clone());
        let my_fields: Vec<CompressedField> = assignment[w.rank()]
            .iter()
            .map(|&di| {
                let d = domains[di];
                let sub = field.extract(&d);
                let plan = conv.plan_for(conv.response_region(&d, kernel.as_ref()));
                conv.local()
                    .convolve_compressed(&sub, d.lo, kernel.as_ref(), plan)
            })
            .collect();
        let payload: Vec<f64> = my_fields
            .iter()
            .flat_map(|f| f.samples().iter().copied())
            .collect();
        let all = w
            .allgather_surviving(encode_f64s(&payload))
            .expect("surviving allgather failed");
        let mut contribs: BTreeMap<usize, CompressedField> = BTreeMap::new();
        let mut orphans = Vec::new();
        for (rank, bytes) in all.iter().enumerate() {
            match bytes {
                Some(bytes) => {
                    let samples = decode_f64s(bytes);
                    let mut off = 0;
                    for &di in &assignment[rank] {
                        let d = domains[di];
                        let plan = conv.plan_for(conv.response_region(&d, kernel.as_ref()));
                        let count = plan.total_samples();
                        let mut f = CompressedField::zeros(plan);
                        f.samples_mut().copy_from_slice(&samples[off..off + count]);
                        off += count;
                        contribs.insert(di, f);
                    }
                }
                None => orphans.extend(assignment[rank].iter().map(|&di| (di, domains[di]))),
            }
        }
        // Orphans absent from the fold are rebuilt at the coarsest rate.
        let session = conv.session(ConvolveMode::Degraded);
        let (result, _) = session.accumulate(&contribs, &field, kernel.as_ref(), &orphans);
        result
    })
}

fn main() {
    let oracle = TraditionalConvolver::new(N).convolve(&input(), &GaussianKernel::new(N, SIGMA));
    let (baseline, _) = run(FaultPlan::none());
    let baseline = baseline[0].as_ref().unwrap().clone();

    println!("== chaos sweep: N={N} k={K} P={P}, seed {SEED:#x}, one sparse exchange ==");
    println!(
        "{:<22} {:>8} {:>11} {:>8} {:>8} {:>10} {:>10} {:>12} {:>12}",
        "scenario",
        "retrans",
        "dups-suppr",
        "timeouts",
        "rounds",
        "logical-B",
        "wire-B",
        "vs clean",
        "vs oracle"
    );
    let sweeps: &[(&str, FaultPlan)] = &[
        ("fault-free", FaultPlan::none()),
        ("drop 1%", FaultPlan::new(SEED).with_drop(0.01)),
        ("drop 5%", FaultPlan::new(SEED).with_drop(0.05)),
        ("drop 10%", FaultPlan::new(SEED).with_drop(0.10)),
        (
            "drop 20% + dup 10%",
            FaultPlan::new(SEED).with_drop(0.20).with_duplicates(0.10),
        ),
        ("crash rank 3", FaultPlan::new(SEED).with_crashed(3)),
        (
            "crash 3 + drop 5%",
            FaultPlan::new(SEED).with_drop(0.05).with_crashed(3),
        ),
    ];
    let mut rows = Vec::new();
    for (name, plan) in sweeps {
        let (results, stats) = run(plan.clone());
        let survivor = results
            .iter()
            .flatten()
            .next()
            .expect("at least one survivor");
        let vs_clean = relative_l2(baseline.as_slice(), survivor.as_slice());
        let vs_oracle = relative_l2(oracle.as_slice(), survivor.as_slice());
        println!(
            "{:<22} {:>8} {:>11} {:>8} {:>8} {:>10} {:>10} {:>12.2e} {:>12.2e}",
            name,
            stats.retransmit_count(),
            stats.duplicate_count(),
            stats.timeout_count(),
            stats.rounds(),
            stats.bytes(),
            stats.physical_bytes(),
            vs_clean,
            vs_oracle
        );
        rows.push(Json::obj(vec![
            ("scenario", Json::str(*name)),
            ("retransmits", Json::int(stats.retransmit_count() as i64)),
            (
                "duplicates_suppressed",
                Json::int(stats.duplicate_count() as i64),
            ),
            ("timeouts", Json::int(stats.timeout_count() as i64)),
            ("rounds", Json::int(stats.rounds() as i64)),
            ("logical_bytes", Json::int(stats.bytes() as i64)),
            ("physical_bytes", Json::int(stats.physical_bytes() as i64)),
            ("acks", Json::int(stats.ack_count() as i64)),
            ("l2_vs_clean", Json::Num(vs_clean)),
            ("l2_vs_oracle", Json::Num(vs_oracle)),
        ]));
    }
    write_report(
        "BENCH_chaos.json",
        &Json::obj(vec![
            (
                "config",
                Json::obj(vec![
                    ("n", Json::int(N as i64)),
                    ("k", Json::int(K as i64)),
                    ("p", Json::int(P as i64)),
                    ("sigma", Json::Num(SIGMA)),
                ]),
            ),
            ("seed", Json::int(SEED as i64)),
            ("rows", Json::Arr(rows)),
        ]),
    );
    println!();
    println!("Message loss is fully absorbed by the ack/retry protocol (vs clean = 0)");
    println!("and never inflates the *logical* traffic — only wire bytes grow with");
    println!("retransmissions. A crashed rank degrades accuracy — survivors rebuild its");
    println!("domains at the schedule's coarsest rate — but the run completes in one round.");
}
