//! §5.3 approximation error: relative L2 error of the compressed
//! convolution vs downsampling aggressiveness, for the POC Gaussian at two
//! sharpness levels and the 1/r Poisson kernel. The paper's operating
//! point keeps error ≤ 3%; error rises as the far field is thinned —
//! "the downsampling rate r can be increased to reduce the memory
//! requirement further if needed, but at the cost of accuracy."

use lcc_bench::standard_input;
use lcc_core::{LowCommConfig, LowCommConvolver, TraditionalConvolver};
use lcc_greens::{GaussianKernel, KernelSpectrum, PoissonSpectrum};
use lcc_grid::relative_l2;
use lcc_octree::RateSchedule;

fn main() {
    let n = 64usize;
    let k = 16usize;
    let input = standard_input(n);

    println!("§5.3 — approximation error vs schedule (N = {n}, k = {k})");
    println!(
        "{:<22} {:<26} {:>12} {:>12} {:>10}",
        "kernel", "schedule", "samples/dom", "bytes ratio", "rel L2 err"
    );

    let gauss_sharp = GaussianKernel::new(n, 1.0);
    let gauss_wide = GaussianKernel::new(n, 3.0);
    let poisson = PoissonSpectrum::new(n);
    let kernels: [(&str, &dyn KernelSpectrum, f64); 3] = [
        ("gaussian sigma=1", &gauss_sharp, 1.0),
        ("gaussian sigma=3", &gauss_wide, 3.0),
        ("poisson 1/r", &poisson, 4.0),
    ];

    for (kname, kernel, spread) in kernels {
        let exact = TraditionalConvolver::new(n).convolve(&input, kernel);
        let schedules: Vec<(String, RateSchedule)> = vec![
            ("lossless r=1".into(), RateSchedule::uniform(1)),
            (
                format!("spread-aware({spread})"),
                RateSchedule::for_kernel_spread(k, spread, 16),
            ),
            (
                "paper heuristic f16".into(),
                RateSchedule::paper_default(k, 16),
            ),
            ("uniform r=2".into(), RateSchedule::uniform(2)),
            ("uniform r=4".into(), RateSchedule::uniform(4)),
            ("uniform r=8".into(), RateSchedule::uniform(8)),
        ];
        for (sname, schedule) in schedules {
            let conv = LowCommConvolver::new(LowCommConfig {
                n,
                k,
                batch: 1024,
                schedule,
            });
            let (approx, report) = conv.convolve(&input, kernel);
            let err = relative_l2(exact.as_slice(), approx.as_slice());
            println!(
                "{:<22} {:<26} {:>12} {:>12.3} {:>10.4}",
                kname,
                sname,
                report.total_samples / report.domains_processed.max(1),
                report.exchange_bytes as f64 / report.dense_stage_bytes as f64,
                err
            );
        }
        println!();
    }
    println!("Shape to match §5.3: error grows with downsampling; the tuned adaptive");
    println!("schedules hold <= 3% while uniform-coarse schedules blow past it.");
}
