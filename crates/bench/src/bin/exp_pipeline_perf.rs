//! Pipeline parallelism, allocation & FLOP-rate sweep.
//!
//! Two sweeps, one report (`BENCH_pipeline.json`):
//!
//! * **pipeline** — `LocalConvolver::convolve_compressed` wall-clock at
//!   1/2/4 threads × (n, k, B) × kernel variant, the speedup vs 1 thread,
//!   and the steady-state allocator traffic of a warm call;
//! * **fftrate** — raw single-core batched-FFT throughput for a contiguous
//!   and a cache-blocked strided pencil layout, per kernel variant.
//!
//! Because both the pool size and the SIMD variant are fixed per process
//! (the global pool spins up on first use; the variant is a `OnceLock`
//! honoring `LCC_SIMD`), each cell runs in a **child process** re-exec'd
//! with `LCC_THREADS`/`LCC_SIMD` set; the parent collects one `RESULT`
//! line per child. Cells are measured once with `LCC_SIMD=off` (forced
//! scalar) and once with auto detection; when auto also resolves to
//! scalar (non-SIMD host or build), the duplicate rows are dropped.
//!
//! Every row carries `gflops_1core` (model FLOPs over 1-thread wall time;
//! `lcc_device::fft_flops` for fftrate, `LocalConvolver::flops_estimate`
//! for the pipeline) and `roofline_frac` — achieved GFLOP/s over the
//! bandwidth ceiling `stream_gbs × arithmetic intensity`, with bandwidth
//! measured by [`lcc_bench::roofline::stream_bandwidth_gbs`]. These are
//! numbers even on single-core hosts, where `speedup_vs_1` stays `null`.
//!
//! Assertions:
//! * the output checksum is identical across thread counts *within a
//!   variant* (bit-identical parallel execution; variants differ by ≤2 ulp,
//!   so cross-variant checksums legitimately differ);
//! * steady-state allocation count is a small constant — *not* O(pencils);
//! * on hosts with ≥ 4 cores (full mode), ≥ 2× speedup at 4 threads for
//!   the (n=128, k=32) configuration;
//! * on AVX2+FMA hosts (full mode), the vector variant sustains ≥ 1.5×
//!   the scalar GFLOP/s on contiguous fftrate cells with ≥ 256 pencils.
//!
//! Run with `--smoke` for the CI-fast sweep.

use std::sync::Arc;
use std::time::Instant;

use lcc_bench::alloc_track::CountingAlloc;
use lcc_bench::json::{gflops, roofline_fraction, speedup_vs_baseline, write_report, Json};
use lcc_bench::roofline::stream_bandwidth_gbs;
use lcc_core::LocalConvolver;
use lcc_fft::complex::c64;
use lcc_fft::{fft_axis, Complex64, FftDirection, FftPlanner};
use lcc_greens::GaussianKernel;
use lcc_grid::{BoxRegion, Grid3};
use lcc_octree::{RateSchedule, SamplingPlan};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

const CHILD_ENV: &str = "LCC_PIPELINE_PERF_CHILD";

#[derive(Clone, Copy)]
struct Config {
    n: usize,
    k: usize,
    batch: usize,
    reps: usize,
}

fn configs(smoke: bool) -> Vec<Config> {
    if smoke {
        vec![Config {
            n: 32,
            k: 8,
            batch: 64,
            reps: 1,
        }]
    } else {
        vec![
            Config {
                n: 64,
                k: 16,
                batch: 64,
                reps: 3,
            },
            Config {
                n: 128,
                k: 32,
                batch: 128,
                reps: 3,
            },
        ]
    }
}

/// (len, pencils, reps) cells for the raw FFT-throughput sweep.
fn fftrate_configs(smoke: bool) -> Vec<(usize, usize, usize)> {
    if smoke {
        vec![(64, 64, 1)]
    } else {
        vec![(256, 512, 3), (1024, 256, 3)]
    }
}

fn thread_counts(smoke: bool) -> Vec<usize> {
    if smoke {
        vec![1, 2]
    } else {
        vec![1, 2, 4]
    }
}

/// FNV-1a over the sample bit patterns: equal iff the runs are
/// bit-identical.
fn checksum(samples: &[f64]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &v in samples {
        for b in v.to_bits().to_le_bytes() {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

fn env_usize(key: &str) -> usize {
    std::env::var(key)
        .unwrap_or_default()
        .parse()
        .unwrap_or_else(|_| panic!("missing/invalid {key}"))
}

/// One pipeline measurement cell, run in a dedicated process so
/// `LCC_THREADS` and `LCC_SIMD` can differ between cells.
fn child_main() {
    let (n, k) = (env_usize("LCC_PPERF_N"), env_usize("LCC_PPERF_K"));
    let batch = env_usize("LCC_PPERF_B");
    let reps = env_usize("LCC_PPERF_REPS").max(1);

    let conv = LocalConvolver::new(n, k, batch);
    let kernel = GaussianKernel::new(n, 1.2);
    let corner = [n / 4, n / 8, 0];
    let domain = BoxRegion::new(corner, [corner[0] + k, corner[1] + k, corner[2] + k]);
    let plan = Arc::new(SamplingPlan::build(n, domain, &RateSchedule::uniform(1)));
    let sub = Grid3::from_fn((k, k, k), |x, y, z| {
        1.0 + (x as f64 * 0.8).sin() + 0.5 * y as f64 - 0.1 * (z * z) as f64
    });
    let flops = conv.flops_estimate(&plan);
    let bytes = conv.bytes_estimate(&plan);

    // Warm-up: builds plans, phase tables, and grows the workspace arenas.
    let field = conv.convolve_compressed(&sub, corner, &kernel, plan.clone());
    let sum = checksum(field.samples());
    drop(field);

    // Steady-state allocator traffic of one warm call.
    ALLOC.reset();
    let field = conv.convolve_compressed(&sub, corner, &kernel, plan.clone());
    let stats = ALLOC.snapshot();
    assert_eq!(
        checksum(field.samples()),
        sum,
        "warm run changed the result"
    );
    drop(field);

    // Wall-clock: best of `reps`.
    let mut best_ns = u128::MAX;
    for _ in 0..reps {
        let t0 = Instant::now();
        let field = conv.convolve_compressed(&sub, corner, &kernel, plan.clone());
        best_ns = best_ns.min(t0.elapsed().as_nanos());
        assert_eq!(
            checksum(field.samples()),
            sum,
            "timed run changed the result"
        );
    }

    println!(
        "RESULT threads={} n={n} k={k} batch={batch} wall_ns={best_ns} \
         alloc_bytes={} alloc_count={} pencils={} variant={} flops={flops} \
         bytes={bytes} checksum={sum:016x}",
        rayon::current_num_threads(),
        stats.bytes,
        stats.count,
        n * n,
        lcc_fft::variant_name(),
    );
}

/// One raw FFT-throughput cell: `pencils` batched transforms of `len`,
/// single-threaded, in either a contiguous or a strided (cache-blocked
/// tiled dispatch) layout.
fn fftrate_child_main() {
    let len = env_usize("LCC_PPERF_LEN");
    let pencils = env_usize("LCC_PPERF_PENCILS");
    let reps = env_usize("LCC_PPERF_REPS").max(1);
    let layout = std::env::var("LCC_PPERF_LAYOUT").unwrap_or_default();
    // Axis 2 pencils are unit-stride; axis 1 pencils are strided by
    // `pencils` and dispatch through the cache-blocked tile path.
    let (dims, axis) = match layout.as_str() {
        "contig" => ((1, pencils, len), 2),
        "strided" => ((1, len, pencils), 1),
        other => panic!("bad LCC_PPERF_LAYOUT {other:?}"),
    };
    let planner = FftPlanner::new();
    let mut buf: Vec<Complex64> = (0..len * pencils)
        .map(|i| {
            let x = i as f64;
            c64((x * 0.613).sin(), (x * 0.287).cos())
        })
        .collect();

    // Warm-up: builds the plan and grows the workspace arenas.
    fft_axis(&planner, &mut buf, dims, axis, FftDirection::Forward);

    let mut best_ns = u128::MAX;
    for _ in 0..reps {
        let t0 = Instant::now();
        fft_axis(&planner, &mut buf, dims, axis, FftDirection::Forward);
        best_ns = best_ns.min(t0.elapsed().as_nanos());
    }
    // SAFETY: Complex64 is repr(C) { re: f64, im: f64 }; viewing the
    // buffer as 2× as many f64s reads the same initialized bytes.
    let sum =
        checksum(unsafe { std::slice::from_raw_parts(buf.as_ptr().cast::<f64>(), buf.len() * 2) });
    let flops = lcc_device::fft_flops(len, pencils);
    // Streaming model: one Complex64 read + write per element per pass —
    // the same 32 B/elem convention as `LocalConvolver::bytes_estimate`.
    let bytes = 32.0 * (len * pencils) as f64;
    println!(
        "RESULT threads={} len={len} pencils={pencils} layout={layout} \
         wall_ns={best_ns} alloc_bytes=0 alloc_count=0 variant={} \
         flops={flops} bytes={bytes} checksum={sum:016x}",
        rayon::current_num_threads(),
        lcc_fft::variant_name(),
    );
}

#[derive(Clone)]
struct Cell {
    threads: usize,
    wall_ns: u128,
    alloc_bytes: u64,
    alloc_count: u64,
    variant: String,
    flops: f64,
    bytes: f64,
    checksum: String,
}

fn parse_result(stdout: &str) -> Cell {
    let line = stdout
        .lines()
        .find(|l| l.starts_with("RESULT "))
        .unwrap_or_else(|| panic!("child produced no RESULT line:\n{stdout}"));
    let mut cell = Cell {
        threads: 0,
        wall_ns: 0,
        alloc_bytes: 0,
        alloc_count: 0,
        variant: String::new(),
        flops: 0.0,
        bytes: 0.0,
        checksum: String::new(),
    };
    for tok in line.split_whitespace().skip(1) {
        let (key, val) = tok.split_once('=').expect("key=value token");
        match key {
            "threads" => cell.threads = val.parse().expect("threads"),
            "wall_ns" => cell.wall_ns = val.parse().expect("wall_ns"),
            "alloc_bytes" => cell.alloc_bytes = val.parse().expect("alloc_bytes"),
            "alloc_count" => cell.alloc_count = val.parse().expect("alloc_count"),
            "variant" => cell.variant = val.to_string(),
            "flops" => cell.flops = val.parse().expect("flops"),
            "bytes" => cell.bytes = val.parse().expect("bytes"),
            "checksum" => cell.checksum = val.to_string(),
            _ => {}
        }
    }
    cell
}

/// Spawns a measurement child. `scalar` forces `LCC_SIMD=off`; otherwise
/// the child auto-detects, independent of this process's environment.
fn spawn_child(envs: &[(&str, String)], scalar: bool) -> Cell {
    let exe = std::env::current_exe().expect("current_exe");
    let mut cmd = std::process::Command::new(exe);
    cmd.env(CHILD_ENV, "1");
    if scalar {
        cmd.env("LCC_SIMD", "off");
    } else {
        cmd.env_remove("LCC_SIMD");
    }
    for (k, v) in envs {
        cmd.env(k, v);
    }
    let out = cmd.output().expect("spawn child");
    assert!(
        out.status.success(),
        "child {envs:?} (scalar={scalar}) failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    parse_result(&String::from_utf8_lossy(&out.stdout))
}

fn run_cell(threads: usize, cfg: Config, scalar: bool) -> Cell {
    spawn_child(
        &[
            ("LCC_THREADS", threads.to_string()),
            ("LCC_PPERF_N", cfg.n.to_string()),
            ("LCC_PPERF_K", cfg.k.to_string()),
            ("LCC_PPERF_B", cfg.batch.to_string()),
            ("LCC_PPERF_REPS", cfg.reps.to_string()),
        ],
        scalar,
    )
}

fn run_fftrate_cell(len: usize, pencils: usize, reps: usize, layout: &str, scalar: bool) -> Cell {
    spawn_child(
        &[
            // The GFLOP/s cell is defined single-core (`gflops_1core`).
            ("LCC_THREADS", "1".to_string()),
            ("LCC_PPERF_MODE", "fftrate".to_string()),
            ("LCC_PPERF_LEN", len.to_string()),
            ("LCC_PPERF_PENCILS", pencils.to_string()),
            ("LCC_PPERF_REPS", reps.to_string()),
            ("LCC_PPERF_LAYOUT", layout.to_string()),
        ],
        scalar,
    )
}

fn main() {
    if std::env::var(CHILD_ENV).is_ok() {
        if std::env::var("LCC_PPERF_MODE").as_deref() == Ok("fftrate") {
            fftrate_child_main();
        } else {
            child_main();
        }
        return;
    }
    let smoke = std::env::args().any(|a| a == "--smoke");
    let host_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let stream_gbs = stream_bandwidth_gbs();
    println!(
        "pipeline perf sweep ({}, host parallelism {host_threads}, \
         stream bandwidth {stream_gbs:.2} GB/s)",
        if smoke { "smoke" } else { "full" }
    );

    let mut rows = Vec::new();

    // ---- pipeline sweep: threads × config × variant -------------------
    println!(
        "{:>5} {:>4} {:>6} {:>8} {:>8} {:>12} {:>10} {:>9} {:>9} {:>12}  checksum",
        "n",
        "k",
        "batch",
        "variant",
        "threads",
        "wall ms",
        "speedup",
        "gflops",
        "roofline",
        "allocs"
    );
    for cfg in configs(smoke) {
        let mut scalar_variant = String::new();
        for scalar in [true, false] {
            let mut base_ns = 0u128;
            let mut cells: Vec<Cell> = Vec::new();
            for &t in &thread_counts(smoke) {
                let cell = run_cell(t, cfg, scalar);
                if t == 1 {
                    base_ns = cell.wall_ns;
                }
                cells.push(cell);
            }
            let variant = cells[0].variant.clone();
            if scalar {
                scalar_variant = variant.clone();
            } else if variant == scalar_variant {
                // Auto detection resolved to the scalar kernels (no SIMD
                // in this build or host): the sweep would duplicate the
                // forced-scalar rows verbatim, so emit only one set.
                continue;
            }

            // Bit-identity across thread counts within one variant.
            for c in &cells {
                assert_eq!(
                    c.checksum, cells[0].checksum,
                    "threads={} changed the result for n={} variant={variant}",
                    c.threads, cfg.n
                );
            }
            // Zero allocations per pencil: steady traffic must be a small
            // constant, not O(pencils).
            let pencils = (cfg.n * cfg.n) as u64;
            for c in &cells {
                assert!(
                    c.alloc_count < pencils / 8,
                    "steady-state alloc count {} is not ≪ pencil count {pencils} \
                     (threads={}, variant={variant})",
                    c.alloc_count,
                    c.threads
                );
            }
            // Speedup on real multicore hardware (the CI acceptance number).
            if !smoke && host_threads >= 4 && cfg.n == 128 {
                let c4 = cells
                    .iter()
                    .find(|c| c.threads == 4)
                    .expect("4-thread cell");
                let speedup = base_ns as f64 / c4.wall_ns as f64;
                assert!(
                    speedup >= 2.0,
                    "4-thread speedup {speedup:.2}× below the 2× acceptance bar \
                     (variant={variant})"
                );
            }

            // Single-core FLOP rate and roofline fraction: one number per
            // (config, variant), attached to every thread row.
            let g1 = gflops(cells[0].flops, base_ns);
            let intensity = if cells[0].bytes > 0.0 {
                cells[0].flops / cells[0].bytes
            } else {
                0.0
            };
            let rf = roofline_fraction(&g1, stream_gbs, intensity);

            for c in &cells {
                // `null` (printed n/a) on single-core hosts: a "speedup"
                // with no concurrency to measure is scheduler noise ≈ 1.0,
                // and the JSON must not present it as a measurement.
                let speedup = speedup_vs_baseline(host_threads, base_ns, c.wall_ns);
                let speedup_col = match speedup {
                    Json::Num(v) => format!("{v:>9.2}x"),
                    _ => format!("{:>10}", "n/a"),
                };
                let num_col = |j: &Json| match j {
                    Json::Num(v) => format!("{v:>9.3}"),
                    _ => format!("{:>9}", "n/a"),
                };
                println!(
                    "{:>5} {:>4} {:>6} {:>8} {:>8} {:>12.3} {} {} {} {:>12}  {}",
                    cfg.n,
                    cfg.k,
                    cfg.batch,
                    variant,
                    c.threads,
                    c.wall_ns as f64 / 1e6,
                    speedup_col,
                    num_col(&g1),
                    num_col(&rf),
                    c.alloc_count,
                    c.checksum
                );
                rows.push(Json::obj(vec![
                    ("kind", Json::str("pipeline")),
                    ("n", Json::int(cfg.n as i64)),
                    ("k", Json::int(cfg.k as i64)),
                    ("batch", Json::int(cfg.batch as i64)),
                    ("variant", Json::str(variant.clone())),
                    ("threads", Json::int(c.threads as i64)),
                    ("wall_ms", Json::Num(c.wall_ns as f64 / 1e6)),
                    ("speedup_vs_1", speedup),
                    ("gflops_1core", g1.clone()),
                    ("roofline_frac", rf.clone()),
                    ("steady_alloc_bytes", Json::int(c.alloc_bytes as i64)),
                    ("steady_alloc_count", Json::int(c.alloc_count as i64)),
                    (
                        "allocs_per_pencil",
                        Json::Num(c.alloc_count as f64 / pencils as f64),
                    ),
                    ("checksum", Json::str(c.checksum.clone())),
                ]));
            }
        }
    }

    // ---- fftrate sweep: raw single-core batched-FFT throughput --------
    println!(
        "\n{:>6} {:>8} {:>8} {:>8} {:>12} {:>9} {:>9}",
        "len", "pencils", "layout", "variant", "wall ms", "gflops", "roofline"
    );
    // (len, pencils) → scalar contiguous GFLOP/s, for the 1.5× acceptance.
    let mut scalar_contig: Vec<((usize, usize), f64)> = Vec::new();
    for (len, pencils, reps) in fftrate_configs(smoke) {
        let mut scalar_variant = String::new();
        for scalar in [true, false] {
            for layout in ["contig", "strided"] {
                let cell = run_fftrate_cell(len, pencils, reps, layout, scalar);
                let variant = cell.variant.clone();
                if scalar {
                    scalar_variant = variant.clone();
                } else if variant == scalar_variant {
                    continue; // same dedupe rule as the pipeline sweep
                }
                let g1 = gflops(cell.flops, cell.wall_ns);
                let intensity = cell.flops / cell.bytes;
                let rf = roofline_fraction(&g1, stream_gbs, intensity);
                let gval = match g1 {
                    Json::Num(v) => v,
                    _ => 0.0,
                };
                if layout == "contig" {
                    if scalar {
                        scalar_contig.push(((len, pencils), gval));
                    } else if !smoke && pencils >= 256 && lcc_fft::Variant::Avx2Fma.available() {
                        let base = scalar_contig
                            .iter()
                            .find(|(k, _)| *k == (len, pencils))
                            .map(|(_, g)| *g)
                            .expect("scalar contig cell measured first");
                        assert!(
                            gval >= 1.5 * base,
                            "vector variant {variant} at len={len} pencils={pencils}: \
                             {gval:.3} GFLOP/s < 1.5× scalar {base:.3}"
                        );
                    }
                }
                println!(
                    "{:>6} {:>8} {:>8} {:>8} {:>12.3} {:>9.3} {:>9.3}",
                    len,
                    pencils,
                    layout,
                    variant,
                    cell.wall_ns as f64 / 1e6,
                    gval,
                    match rf {
                        Json::Num(v) => v,
                        _ => f64::NAN,
                    },
                );
                rows.push(Json::obj(vec![
                    ("kind", Json::str("fftrate")),
                    ("len", Json::int(len as i64)),
                    ("pencils", Json::int(pencils as i64)),
                    ("layout", Json::str(layout)),
                    ("variant", Json::str(variant)),
                    ("threads", Json::int(1)),
                    ("wall_ms", Json::Num(cell.wall_ns as f64 / 1e6)),
                    // Defined-null: the fftrate sweep is single-core by
                    // construction, so there is no speedup to measure.
                    ("speedup_vs_1", Json::Null),
                    ("gflops_1core", g1),
                    ("roofline_frac", rf),
                ]));
            }
        }
    }

    let report = Json::obj(vec![
        ("experiment", Json::str("pipeline_perf")),
        ("smoke", Json::Bool(smoke)),
        ("host_parallelism", Json::int(host_threads as i64)),
        ("stream_gbs", Json::Num(stream_gbs)),
        ("rows", Json::Arr(rows)),
    ]);
    write_report("BENCH_pipeline.json", &report);
}
