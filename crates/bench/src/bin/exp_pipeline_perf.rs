//! Pipeline parallelism & allocation sweep: threads × (n, k, B).
//!
//! Measures `LocalConvolver::convolve_compressed` wall-clock at 1/2/4
//! threads, the speedup vs 1 thread, and the steady-state allocator traffic
//! of a warm call (counting global allocator). Because the pool size is
//! fixed per process (the global pool spins up on first use), each
//! (threads, config) cell runs in a **child process** re-exec'd with
//! `LCC_THREADS` set; the parent collects one `RESULT` line per child.
//!
//! Assertions:
//! * the output checksum is identical across thread counts (bit-identical
//!   parallel execution);
//! * steady-state allocation count is a small constant — *not* O(pencils) —
//!   i.e. zero allocations per pencil in the hot path;
//! * on hosts with ≥ 4 cores (full mode), ≥ 2× speedup at 4 threads for
//!   the (n=128, k=32) configuration.
//!
//! Emits `BENCH_pipeline.json`. Run with `--smoke` for the CI-fast sweep.

use std::sync::Arc;
use std::time::Instant;

use lcc_bench::alloc_track::CountingAlloc;
use lcc_bench::json::{speedup_vs_baseline, write_report, Json};
use lcc_core::LocalConvolver;
use lcc_greens::GaussianKernel;
use lcc_grid::{BoxRegion, Grid3};
use lcc_octree::{RateSchedule, SamplingPlan};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

const CHILD_ENV: &str = "LCC_PIPELINE_PERF_CHILD";

#[derive(Clone, Copy)]
struct Config {
    n: usize,
    k: usize,
    batch: usize,
    reps: usize,
}

fn configs(smoke: bool) -> Vec<Config> {
    if smoke {
        vec![Config {
            n: 32,
            k: 8,
            batch: 64,
            reps: 1,
        }]
    } else {
        vec![
            Config {
                n: 64,
                k: 16,
                batch: 64,
                reps: 3,
            },
            Config {
                n: 128,
                k: 32,
                batch: 128,
                reps: 3,
            },
        ]
    }
}

fn thread_counts(smoke: bool) -> Vec<usize> {
    if smoke {
        vec![1, 2]
    } else {
        vec![1, 2, 4]
    }
}

/// FNV-1a over the sample bit patterns: equal iff the runs are
/// bit-identical.
fn checksum(samples: &[f64]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &v in samples {
        for b in v.to_bits().to_le_bytes() {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

fn env_usize(key: &str) -> usize {
    std::env::var(key)
        .unwrap_or_default()
        .parse()
        .unwrap_or_else(|_| panic!("missing/invalid {key}"))
}

/// One measurement cell, run in a dedicated process so `LCC_THREADS` can
/// differ between cells.
fn child_main() {
    let (n, k) = (env_usize("LCC_PPERF_N"), env_usize("LCC_PPERF_K"));
    let batch = env_usize("LCC_PPERF_B");
    let reps = env_usize("LCC_PPERF_REPS").max(1);

    let conv = LocalConvolver::new(n, k, batch);
    let kernel = GaussianKernel::new(n, 1.2);
    let corner = [n / 4, n / 8, 0];
    let domain = BoxRegion::new(corner, [corner[0] + k, corner[1] + k, corner[2] + k]);
    let plan = Arc::new(SamplingPlan::build(n, domain, &RateSchedule::uniform(1)));
    let sub = Grid3::from_fn((k, k, k), |x, y, z| {
        1.0 + (x as f64 * 0.8).sin() + 0.5 * y as f64 - 0.1 * (z * z) as f64
    });

    // Warm-up: builds plans, phase tables, and grows the workspace arenas.
    let field = conv.convolve_compressed(&sub, corner, &kernel, plan.clone());
    let sum = checksum(field.samples());
    drop(field);

    // Steady-state allocator traffic of one warm call.
    ALLOC.reset();
    let field = conv.convolve_compressed(&sub, corner, &kernel, plan.clone());
    let stats = ALLOC.snapshot();
    assert_eq!(
        checksum(field.samples()),
        sum,
        "warm run changed the result"
    );
    drop(field);

    // Wall-clock: best of `reps`.
    let mut best_ns = u128::MAX;
    for _ in 0..reps {
        let t0 = Instant::now();
        let field = conv.convolve_compressed(&sub, corner, &kernel, plan.clone());
        best_ns = best_ns.min(t0.elapsed().as_nanos());
        assert_eq!(
            checksum(field.samples()),
            sum,
            "timed run changed the result"
        );
    }

    println!(
        "RESULT threads={} n={n} k={k} batch={batch} wall_ns={best_ns} \
         alloc_bytes={} alloc_count={} pencils={} checksum={sum:016x}",
        rayon::current_num_threads(),
        stats.bytes,
        stats.count,
        n * n,
    );
}

#[derive(Clone)]
struct Cell {
    threads: usize,
    wall_ns: u128,
    alloc_bytes: u64,
    alloc_count: u64,
    checksum: String,
}

fn parse_result(stdout: &str) -> (u128, u64, u64, String) {
    let line = stdout
        .lines()
        .find(|l| l.starts_with("RESULT "))
        .unwrap_or_else(|| panic!("child produced no RESULT line:\n{stdout}"));
    let mut wall = 0u128;
    let (mut bytes, mut count) = (0u64, 0u64);
    let mut sum = String::new();
    for tok in line.split_whitespace().skip(1) {
        let (key, val) = tok.split_once('=').expect("key=value token");
        match key {
            "wall_ns" => wall = val.parse().expect("wall_ns"),
            "alloc_bytes" => bytes = val.parse().expect("alloc_bytes"),
            "alloc_count" => count = val.parse().expect("alloc_count"),
            "checksum" => sum = val.to_string(),
            _ => {}
        }
    }
    (wall, bytes, count, sum)
}

fn run_cell(threads: usize, cfg: Config) -> Cell {
    let exe = std::env::current_exe().expect("current_exe");
    let out = std::process::Command::new(exe)
        .env(CHILD_ENV, "1")
        .env("LCC_THREADS", threads.to_string())
        .env("LCC_PPERF_N", cfg.n.to_string())
        .env("LCC_PPERF_K", cfg.k.to_string())
        .env("LCC_PPERF_B", cfg.batch.to_string())
        .env("LCC_PPERF_REPS", cfg.reps.to_string())
        .output()
        .expect("spawn child");
    assert!(
        out.status.success(),
        "child (threads={threads}, n={}) failed:\n{}",
        cfg.n,
        String::from_utf8_lossy(&out.stderr)
    );
    let (wall_ns, alloc_bytes, alloc_count, checksum) =
        parse_result(&String::from_utf8_lossy(&out.stdout));
    Cell {
        threads,
        wall_ns,
        alloc_bytes,
        alloc_count,
        checksum,
    }
}

fn main() {
    if std::env::var(CHILD_ENV).is_ok() {
        child_main();
        return;
    }
    let smoke = std::env::args().any(|a| a == "--smoke");
    let host_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "pipeline perf sweep ({}, host parallelism {host_threads})",
        if smoke { "smoke" } else { "full" }
    );
    println!(
        "{:>5} {:>4} {:>6} {:>8} {:>12} {:>10} {:>12} {:>12}  checksum",
        "n", "k", "batch", "threads", "wall ms", "speedup", "alloc bytes", "alloc count"
    );

    let mut rows = Vec::new();
    for cfg in configs(smoke) {
        let mut base_ns = 0u128;
        let mut cells: Vec<Cell> = Vec::new();
        for &t in &thread_counts(smoke) {
            let cell = run_cell(t, cfg);
            if t == 1 {
                base_ns = cell.wall_ns;
            }
            cells.push(cell);
        }

        // Bit-identity across thread counts.
        for c in &cells {
            assert_eq!(
                c.checksum, cells[0].checksum,
                "threads={} changed the result for n={}",
                c.threads, cfg.n
            );
        }
        // Zero allocations per pencil: steady traffic must be a small
        // constant, not O(pencils).
        let pencils = (cfg.n * cfg.n) as u64;
        for c in &cells {
            assert!(
                c.alloc_count < pencils / 8,
                "steady-state alloc count {} is not ≪ pencil count {pencils} \
                 (threads={})",
                c.alloc_count,
                c.threads
            );
        }
        // Speedup on real multicore hardware (the CI acceptance number).
        if !smoke && host_threads >= 4 && cfg.n == 128 {
            let c4 = cells
                .iter()
                .find(|c| c.threads == 4)
                .expect("4-thread cell");
            let speedup = base_ns as f64 / c4.wall_ns as f64;
            assert!(
                speedup >= 2.0,
                "4-thread speedup {speedup:.2}× below the 2× acceptance bar"
            );
        }

        for c in &cells {
            // `null` (printed n/a) on single-core hosts: a "speedup" with
            // no concurrency to measure is scheduler noise ≈ 1.0, and the
            // JSON must not present it as a measurement.
            let speedup = speedup_vs_baseline(host_threads, base_ns, c.wall_ns);
            let speedup_col = match speedup {
                Json::Num(v) => format!("{v:>9.2}x"),
                _ => format!("{:>10}", "n/a"),
            };
            println!(
                "{:>5} {:>4} {:>6} {:>8} {:>12.3} {} {:>12} {:>12}  {}",
                cfg.n,
                cfg.k,
                cfg.batch,
                c.threads,
                c.wall_ns as f64 / 1e6,
                speedup_col,
                c.alloc_bytes,
                c.alloc_count,
                c.checksum
            );
            rows.push(Json::obj(vec![
                ("n", Json::int(cfg.n as i64)),
                ("k", Json::int(cfg.k as i64)),
                ("batch", Json::int(cfg.batch as i64)),
                ("threads", Json::int(c.threads as i64)),
                ("wall_ms", Json::Num(c.wall_ns as f64 / 1e6)),
                ("speedup_vs_1", speedup),
                ("steady_alloc_bytes", Json::int(c.alloc_bytes as i64)),
                ("steady_alloc_count", Json::int(c.alloc_count as i64)),
                (
                    "allocs_per_pencil",
                    Json::Num(c.alloc_count as f64 / pencils as f64),
                ),
                ("checksum", Json::str(c.checksum.clone())),
            ]));
        }
    }

    let report = Json::obj(vec![
        ("experiment", Json::str("pipeline_perf")),
        ("smoke", Json::Bool(smoke)),
        ("host_parallelism", Json::int(host_threads as i64)),
        ("rows", Json::Arr(rows)),
    ]);
    write_report("BENCH_pipeline.json", &report);
}
