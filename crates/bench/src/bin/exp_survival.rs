//! Kill-chaos survival sweep: SIGKILL live **real-process** ranks at seeded
//! protocol points and measure the liveness layer end to end.
//!
//! Every scenario runs the checkpointed survival workload
//! ([`lcc_bench::survival`]) on the socket backend — each rank a real OS
//! process — while the coordinator delivers a genuine `SIGKILL` to the
//! victim parked at its seeded protocol gate. The sweep records, per
//! scenario:
//!
//! * **detection latency** — first survivor membership sweep that observed
//!   the death, minus the kill timestamp (the measured counterpart of the
//!   paper's Eq. 1 latency term α: suspicion deadlines are derived from
//!   `RetryPolicy`, so the latency is bounded by `suspicion_timeout`);
//! * **recovery path** — `restart` (supervisor respawned the victim from
//!   its latest checkpoint and it rejoined the mesh) or `redistribute`
//!   (survivors re-partitioned the dead rank's sub-domains);
//! * **correctness** — restarted runs must be bit-identical to the
//!   fault-free reference on *every* rank; redistributed runs on every
//!   survivor's recovered field.
//!
//! The binary doubles as its own rank process: when spawned by the
//! coordinator (`LCC_SOCKET_CHILD`) it serves one rank and exits.
//!
//! Run with `--smoke` for the fast CI configuration (one kill point per
//! recovery path). Emits `BENCH_survival.json`.

use lcc_bench::json::{write_report, Json};
use lcc_bench::recovery::fast_retry;
use lcc_bench::survival::{self, run_survival_socket, SurvivalCase};
use lcc_comm::transport::socket::{self, SocketRun, Workload};
use lcc_comm::{CommWorld, FaultPlan, RetryPolicy};

const SEED: u64 = 0x5EED;

/// Registry served to spawned rank processes.
const REGISTRY: &[(&str, Workload)] = &[("survival", child_workload)];

fn child_workload(mut w: CommWorld) -> Vec<u8> {
    survival::rank_workload(&mut w, &SurvivalCase::standard())
}

struct Scenario {
    name: String,
    plan: FaultPlan,
    kill: Option<(usize, u64)>,
}

fn scenarios(case: &SurvivalCase, smoke: bool) -> Vec<Scenario> {
    let mut out = vec![Scenario {
        name: "fault free".to_string(),
        plan: FaultPlan::none(),
        kill: None,
    }];
    let coords: &[(usize, u64)] = if smoke {
        &[(2, 1)]
    } else {
        &[(1, 0), (2, 1), (3, 2), (1, case.chunks - 1)]
    };
    for &(rank, point) in coords {
        for restart in [false, true] {
            let mut plan = FaultPlan::new(SEED).with_kill(rank, point);
            if restart {
                plan = plan.with_restart();
            }
            out.push(Scenario {
                name: format!(
                    "kill rank {rank} @ gate {point}{}",
                    if restart { " + restart" } else { "" }
                ),
                plan,
                kill: Some((rank, point)),
            });
        }
    }
    out
}

/// Byte length of the recovered-field tail of a survival payload.
fn field_len(case: &SurvivalCase) -> usize {
    case.recovery.n.pow(3) * 8
}

/// `Some(ms)` for a pair of UNIX-ns timestamps, `None` when either side is
/// missing (fault-free runs, never-respawned victims).
fn latency_ms(from_ns: u64, to_ns: Option<u64>) -> Option<f64> {
    to_ns.map(|t| t.saturating_sub(from_ns) as f64 / 1e6)
}

fn opt_num(v: Option<f64>) -> Json {
    v.map(Json::Num).unwrap_or(Json::Null)
}

fn run(plan: &FaultPlan, retry: &RetryPolicy) -> SocketRun {
    run_survival_socket(plan, retry, "child", "survival")
        .unwrap_or_else(|e| panic!("socket survival run failed: {e}"))
}

fn main() {
    if socket::is_child() {
        socket::child_serve(REGISTRY).expect("survival child failed");
        return;
    }

    let smoke = std::env::args().any(|a| a == "--smoke");
    let case = SurvivalCase::standard();
    let retry = fast_retry(case.recovery.p);
    let sweeps = scenarios(&case, smoke);

    println!(
        "== survival sweep: massif {n}³ × {chunks} gates → recovery {rn}³, P={p}, seed {SEED:#x}{s} ==",
        n = case.massif_n,
        chunks = case.chunks,
        rn = case.recovery.n,
        p = case.recovery.p,
        s = if smoke { " (smoke)" } else { "" }
    );
    println!(
        "{:<28} {:<12} {:>10} {:>10} {:>6} {:>7} {:>6} {:>9}",
        "scenario", "path", "detect-ms", "respawn-ms", "deaths", "rejoins", "hard", "identical"
    );

    // The fault-free socket run is the reference every kill is judged
    // against; its own internal determinism is covered by the in-process
    // tests in `lcc_bench::survival`.
    let clean = run(&sweeps[0].plan, &retry);
    let tail = field_len(&case);

    let mut rows = Vec::new();
    for s in &sweeps {
        let out = if s.kill.is_none() {
            &clean
        } else {
            &run(&s.plan, &retry)
        };
        let restarted = s.plan.kill_restart;
        let path = match s.kill {
            None => "none",
            Some(_) if restarted => "restart",
            Some(_) => "redistribute",
        };

        // Correctness vs the fault-free reference.
        let mut identical = true;
        for (rank, slot) in out.results.iter().enumerate() {
            let reference = clean.results[rank].as_ref().expect("fault-free rank");
            match slot {
                None => {
                    // Only the un-respawned victim may be absent.
                    assert!(
                        !restarted && s.plan.killed_for_good(rank),
                        "`{}`: rank {rank} missing unexpectedly",
                        s.name
                    );
                }
                Some(payload) if restarted || s.kill.is_none() => {
                    identical &= payload == reference;
                }
                Some(payload) => {
                    // Survivor of a redistribute: the recovered field must
                    // match bit-for-bit; the payload head differs (epoch,
                    // recovery counts).
                    identical &=
                        payload[payload.len() - tail..] == reference[reference.len() - tail..];
                }
            }
        }
        assert!(
            identical,
            "`{}`: result diverged from the fault-free reference",
            s.name
        );

        let kill_rec = s.kill.map(|(rank, _)| {
            out.kills
                .iter()
                .find(|k| k.rank == rank && k.planned)
                .unwrap_or_else(|| panic!("`{}`: seeded kill not logged", s.name))
        });
        let detect_ms = kill_rec.and_then(|k| latency_ms(k.killed_at_ns, out.first_detection_ns));
        let respawn_ms = kill_rec.and_then(|k| latency_ms(k.killed_at_ns, k.respawned_at_ns));

        println!(
            "{:<28} {:<12} {:>10} {:>10} {:>6} {:>7} {:>6} {:>9}",
            s.name,
            path,
            detect_ms.map_or("-".into(), |v| format!("{v:.1}")),
            respawn_ms.map_or("-".into(), |v| format!("{v:.1}")),
            out.liveness.deaths_detected,
            out.liveness.rejoins,
            out.liveness.hard_evidence,
            identical
        );

        rows.push(Json::obj(vec![
            ("scenario", Json::str(&s.name)),
            ("path", Json::str(path)),
            (
                "kill_rank",
                s.kill.map_or(Json::Null, |(r, _)| Json::int(r as i64)),
            ),
            (
                "kill_point",
                s.kill.map_or(Json::Null, |(_, g)| Json::int(g as i64)),
            ),
            ("restart", Json::Bool(restarted)),
            ("detection_latency_ms", opt_num(detect_ms)),
            ("respawn_latency_ms", opt_num(respawn_ms)),
            (
                "deaths_detected",
                Json::int(out.liveness.deaths_detected as i64),
            ),
            ("rejoins", Json::int(out.liveness.rejoins as i64)),
            (
                "hard_evidence",
                Json::int(out.liveness.hard_evidence as i64),
            ),
            ("suspicions", Json::int(out.liveness.suspicions as i64)),
            (
                "heartbeats_sent",
                Json::int(out.liveness.heartbeats_sent as i64),
            ),
            ("bit_identical", Json::Bool(identical)),
        ]));
    }

    write_report(
        "BENCH_survival.json",
        &Json::obj(vec![
            (
                "config",
                Json::obj(vec![
                    ("massif_n", Json::int(case.massif_n as i64)),
                    ("chunks", Json::int(case.chunks as i64)),
                    ("iters_per_chunk", Json::int(case.iters_per_chunk as i64)),
                    ("recovery_n", Json::int(case.recovery.n as i64)),
                    ("p", Json::int(case.recovery.p as i64)),
                    (
                        "suspicion_timeout_ms",
                        Json::Num(retry.suspicion_timeout().as_secs_f64() * 1e3),
                    ),
                    (
                        "heartbeat_period_ms",
                        Json::Num(retry.heartbeat_period().as_secs_f64() * 1e3),
                    ),
                    ("smoke", Json::Bool(smoke)),
                ]),
            ),
            ("seed", Json::int(SEED as i64)),
            ("rows", Json::Arr(rows)),
        ]),
    );

    println!();
    println!("A SIGKILLed rank is detected from hard socket evidence (reader EOF /");
    println!("EPIPE) long before the adaptive suspicion deadline; with a restart");
    println!("policy the supervisor respawns it from its latest checkpoint and the");
    println!("finished run is bit-identical to the fault-free one.");
}
