//! §6 / Fig. 5: the MASSIF pruned convolution expressed as composed
//! FFTX-style subplans — observe-mode plan dump, cost estimate, and an
//! executed correctness check against the dense oracle.

use std::sync::Arc;

use lcc_core::TraditionalConvolver;
use lcc_fft::Complex64;
use lcc_fftx::{massif_convolution_plan, FftxMode};
use lcc_greens::{GaussianKernel, KernelSpectrum};
use lcc_grid::{relative_l2, BoxRegion, Grid3};
use lcc_octree::RateSchedule;

fn main() {
    let n = 32usize;
    let k = 8usize;
    let corner = [0usize; 3];
    let sigma = 1.0;
    let kernel = Arc::new(GaussianKernel::new(n, sigma));
    let hotspot = BoxRegion::new([n / 2; 3], [n / 2 + k; 3]);
    let schedule = RateSchedule::for_kernel_spread(k, sigma, 16);

    let kc = kernel.clone();
    let plan = massif_convolution_plan(
        n,
        k,
        corner,
        Arc::new(move |f| kc.eval(f)),
        &schedule,
        hotspot,
        FftxMode::Observe,
    )
    .expect("plan composes");

    println!("== observe mode: massif_convolution_plan(N={n}, k={k}) ==");
    println!("{}", plan.describe());
    let est = plan.estimate();
    println!(
        "\n== estimate mode ==\n  flops ≈ {:.3e}\n  intermediate elements moved = {}",
        est.flops, est.elements_moved
    );

    // Execute and compare the sampled output against the dense oracle at
    // the sampled positions.
    let sub = Grid3::from_fn((k, k, k), |x, y, z| 1.0 + (x + 2 * y + 3 * z) as f64 * 0.05);
    let input: Vec<Complex64> = sub
        .as_slice()
        .iter()
        .map(|&v| Complex64::from_real(v))
        .collect();
    let out = plan.execute(&input);
    let dense = TraditionalConvolver::new(n).convolve_subdomain(&sub, corner, kernel.as_ref());

    // Error over the hotspot (densely sampled ⇒ must be exact).
    let mut hot_exact = Vec::new();
    let mut hot_got = Vec::new();
    for p in hotspot.points() {
        hot_exact.push(dense[(p[0], p[1], p[2])]);
        hot_got.push(out[(p[0] * n + p[1]) * n + p[2]].re);
    }
    let err = relative_l2(&hot_exact, &hot_got);
    println!("\n== execute ==\n  hotspot relative L2 vs dense oracle: {err:.3e}");
    assert!(err < 1e-9, "hotspot must be exact");
    println!("  OK — the Fig. 5 pipeline runs correctly from the composed plan");
}
