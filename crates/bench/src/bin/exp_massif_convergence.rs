//! Algorithms 1 & 2: MASSIF fixed-point convergence with the dense spectral
//! inner loop vs the low-communication compressed inner loop.
//!
//! §5.3: "For MASSIF, a fixed-point simulation, convolution error up to 3%
//! did not largely impact convergence or number of iterations." This
//! regenerator runs both on the same composite microstructure and prints
//! the residual histories side by side.

use lcc_bench::time_ms;
use lcc_core::LowCommConfig;
use lcc_greens::MassifGamma;
use lcc_grid::{IsotropicStiffness, Sym3};
use lcc_massif::{solve, LowCommGamma, Microstructure, SolverConfig, SpectralGamma};
use lcc_octree::RateSchedule;

fn main() {
    let n = 32usize;
    let matrix = IsotropicStiffness::from_engineering(3.5, 0.35);
    let inclusion = IsotropicStiffness::from_engineering(70.0, 0.22);
    let micro = Microstructure::random_spheres(n, 6, 5.0, matrix, inclusion, 20220829);
    let vf = micro.volume_fractions();
    let r = micro.reference_medium();
    let gamma = MassifGamma::new(n, r.lambda, r.mu);
    let e = Sym3::diagonal(0.01, 0.0, 0.0);
    // Tolerance sits above Algorithm 2's compression-error floor (~1e-3 at
    // this schedule): §5.3's claim is about convergence at the tolerances
    // the application actually uses, not below the approximation error.
    let cfg = SolverConfig {
        max_iters: 30,
        tol: 2.5e-3,
    };

    println!(
        "MASSIF convergence — {n}³ composite, inclusion fraction {:.3}",
        vf[1]
    );
    let (alg1, t1) = time_ms(|| solve(&micro, e, cfg, &SpectralGamma::new(gamma)));
    let engine = LowCommGamma::new(
        gamma,
        LowCommConfig {
            n,
            k: 8,
            batch: 512,
            schedule: RateSchedule::for_kernel_spread(8, 1.5, 8),
        },
    );
    let (alg2, t2) = time_ms(|| solve(&micro, e, cfg, &engine));

    println!(
        "\n{:<6} {:>18} {:>18}",
        "iter", "Alg1 residual", "Alg2 residual"
    );
    let rows = alg1.residuals.len().max(alg2.residuals.len());
    for i in 0..rows {
        let a = alg1
            .residuals
            .get(i)
            .map(|v| format!("{v:.4e}"))
            .unwrap_or_default();
        let b = alg2
            .residuals
            .get(i)
            .map(|v| format!("{v:.4e}"))
            .unwrap_or_default();
        println!("{:<6} {:>18} {:>18}", i + 1, a, b);
    }

    println!(
        "\nAlg1: converged={} iters={} time={:.1} ms  sigma_xx_eff={:.5}",
        alg1.converged,
        alg1.iterations(),
        t1,
        alg1.effective_stress().c[0]
    );
    println!(
        "Alg2: converged={} iters={} time={:.1} ms  sigma_xx_eff={:.5}",
        alg2.converged,
        alg2.iterations(),
        t2,
        alg2.effective_stress().c[0]
    );
    println!(
        "strain-field deviation Alg2 vs Alg1: {:.3e}",
        alg2.strain.relative_error_to(&alg1.strain)
    );
    println!("\nShape to match §5.3: iteration counts within a couple of steps of each");
    println!("other and matching effective response, despite the compressed inner loop.");
}
