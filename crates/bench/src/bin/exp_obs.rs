//! Observability regenerator: a 2-rank cluster-sim convolution wrapped in an
//! [`ObsSession`], exported three ways:
//!
//! 1. `BENCH_obs.json` — per-stage span timings, every counter, and the
//!    paper's Eq. 1 / Eq. 6 modeled times folded in, so the run records the
//!    headline communication ratio next to the bytes it actually moved;
//! 2. `BENCH_obs.capture` — the versioned binary capture
//!    ([`lcc_obs::ObsReport::capture_into`]), replayed immediately as a
//!    self-check (timely-dataflow's `capture_into`/`replay_from` spirit);
//! 3. `--trace-tree` — a flamegraph-style text view of the span hierarchy.
//!
//! The run also asserts the acceptance invariant end to end: the obs
//! `comm.*` counters must match the simulator's [`CommStats`] *exactly*.

use std::collections::BTreeMap;
use std::sync::Arc;

use lcc_bench::json::{write_report, Json};
use lcc_comm::{
    decode_f64s, encode_f64s, run_cluster_with_faults, AlphaBeta, CommScenario, CommStats,
    FaultPlan, RetryPolicy,
};
use lcc_grid::{assign_round_robin, relative_l2};
use lcc_obs::{ObsReport, ObsSession};

use lcc_core::prelude::*;

const N: usize = 32;
const K: usize = 8;
const P: usize = 2;
const SIGMA: f64 = 1.5;

fn input() -> Grid3<f64> {
    Grid3::from_fn((N, N, N), |x, y, z| {
        ((x as f64 * 0.29).sin() + (y as f64 * 0.41).cos()) * (1.0 + 0.01 * z as f64)
    })
}

fn config() -> LowCommConfig {
    LowCommConfig::builder()
        .n(N)
        .k(K)
        .batch(512)
        .schedule(RateSchedule::for_kernel_spread(K, SIGMA, 16))
        .build()
        .expect("valid configuration")
}

/// The Fig. 1(b) deployment: local compressed convolutions, one sparse
/// allgather, ascending-domain-id fold — all through the session API.
fn run() -> (Vec<Option<Grid3<f64>>>, Arc<CommStats>) {
    let kernel = Arc::new(GaussianKernel::new(N, SIGMA));
    let field = Arc::new(input());
    let cfg = Arc::new(config());
    let domains = Arc::new(decompose_uniform(N, K));
    let assignment = assign_round_robin(domains.len(), P);
    run_cluster_with_faults(
        P,
        FaultPlan::none(),
        RetryPolicy::default(),
        move |mut w| {
            let _worker = lcc_obs::span("worker");
            let conv = LowCommConvolver::new((*cfg).clone());
            let session = conv.session(ConvolveMode::Normal);
            let my_fields: Vec<CompressedField> = assignment[w.rank()]
                .iter()
                .filter_map(|&di| session.compress_domain(&field, &domains[di], kernel.as_ref()))
                .collect();
            let payload: Vec<f64> = my_fields
                .iter()
                .flat_map(|f| f.samples().iter().copied())
                .collect();
            let all = w
                .allgather_surviving(encode_f64s(&payload))
                .expect("allgather failed");
            let mut contribs: BTreeMap<usize, CompressedField> = BTreeMap::new();
            for (rank, bytes) in all.iter().enumerate() {
                let bytes = bytes.as_ref().expect("fault-free run has no dead ranks");
                let samples = decode_f64s(bytes);
                let mut off = 0;
                for &di in &assignment[rank] {
                    let plan = conv.plan_for(conv.response_region(&domains[di], kernel.as_ref()));
                    let count = plan.total_samples();
                    let mut f = CompressedField::zeros(plan);
                    f.samples_mut().copy_from_slice(&samples[off..off + count]);
                    off += count;
                    contribs.insert(di, f);
                }
            }
            let (result, _) = session.accumulate(&contribs, &field, kernel.as_ref(), &[]);
            result
        },
    )
}

/// Aggregates spans by name into (calls, total_ns) rows, ordered by
/// first appearance.
fn span_rows(report: &ObsReport) -> Vec<Json> {
    let mut order: Vec<&'static str> = Vec::new();
    let mut agg: BTreeMap<&'static str, (u64, u64)> = BTreeMap::new();
    for s in &report.spans {
        let e = agg.entry(s.name).or_insert_with(|| {
            order.push(s.name);
            (0, 0)
        });
        e.0 += 1;
        e.1 += s.dur_ns;
    }
    order
        .into_iter()
        .map(|name| {
            let (calls, total_ns) = agg[name];
            Json::obj(vec![
                ("name", Json::str(name)),
                ("calls", Json::int(calls as i64)),
                ("total_ns", Json::int(total_ns as i64)),
            ])
        })
        .collect()
}

fn main() {
    let trace_tree = std::env::args().any(|a| a == "--trace-tree");

    let session = ObsSession::start().expect("no other obs session active");
    let (results, stats) = run();
    let report = session.finish();

    // The acceptance invariant: obs counters mirror CommStats at the same
    // call sites, so the alltoall totals must match exactly.
    let counter = |name: &str| report.counter(name).unwrap_or(0);
    assert_eq!(counter("comm.bytes_logical"), stats.bytes());
    assert_eq!(counter("comm.messages_logical"), stats.message_count());
    assert_eq!(counter("comm.bytes_physical"), stats.physical_bytes());
    assert_eq!(counter("comm.collective_rounds"), stats.rounds());

    // All survivors hold the same field; report its accuracy for context.
    let survivor = results[0].as_ref().expect("rank 0 survived").clone();
    let oracle = TraditionalConvolver::new(N).convolve(&input(), &GaussianKernel::new(N, SIGMA));
    let err = relative_l2(oracle.as_slice(), survivor.as_slice());

    // Eq. 1 vs Eq. 6 modeled times under the default α-β link, using the
    // schedule's effective exterior rate as the paper's r_avg.
    let scenario = CommScenario {
        n: N,
        p: P,
        elem_bytes: 8,
        link: AlphaBeta::hpc_default(),
    };
    let r_avg = config().schedule.effective_exterior_rate(N, K);
    let t_fft = scenario.t_fft_bandwidth_only();
    let t_ours = scenario.t_ours(K, r_avg);

    println!("== obs run: N={N} k={K} P={P}, one sparse exchange ==");
    println!(
        "  logical bytes  : {} (== CommStats)",
        counter("comm.bytes_logical")
    );
    println!("  physical bytes : {}", counter("comm.bytes_physical"));
    println!("  spans recorded : {}", report.spans.len());
    println!("  rel. L2 error  : {err:.3e}");
    println!("  Eq.1 t_fft     : {t_fft:.3e} s");
    println!("  Eq.6 t_ours    : {t_ours:.3e} s  (r_avg = {r_avg:.2})");
    println!("  modeled ratio  : {:.1}x", t_fft / t_ours);

    if trace_tree {
        println!();
        println!("{}", report.trace_tree());
    }

    // Versioned binary capture + immediate replay self-check.
    let capture_path = std::path::Path::new("BENCH_obs.capture");
    report.capture_into(capture_path).expect("capture");
    let replayed = ObsReport::replay_from(capture_path).expect("replay");
    assert_eq!(replayed.spans.len(), report.spans.len());
    assert_eq!(replayed.counters, report.counters);

    write_report(
        "BENCH_obs.json",
        &Json::obj(vec![
            (
                "config",
                Json::obj(vec![
                    ("n", Json::int(N as i64)),
                    ("k", Json::int(K as i64)),
                    ("p", Json::int(P as i64)),
                    ("sigma", Json::Num(SIGMA)),
                ]),
            ),
            (
                "counters",
                Json::Obj(
                    report
                        .counters
                        .iter()
                        .map(|(name, v)| (name.clone(), Json::int(*v as i64)))
                        .collect(),
                ),
            ),
            ("spans", Json::Arr(span_rows(&report))),
            (
                "comm",
                Json::obj(vec![
                    ("logical_bytes", Json::int(stats.bytes() as i64)),
                    ("physical_bytes", Json::int(stats.physical_bytes() as i64)),
                    ("rounds", Json::int(stats.rounds() as i64)),
                    ("counters_match_stats", Json::Bool(true)),
                ]),
            ),
            (
                "model",
                Json::obj(vec![
                    ("r_avg", Json::Num(r_avg)),
                    ("eq1_t_fft_s", Json::Num(t_fft)),
                    ("eq6_t_ours_s", Json::Num(t_ours)),
                    ("modeled_reduction", Json::Num(t_fft / t_ours)),
                ]),
            ),
            ("relative_l2_vs_oracle", Json::Num(err)),
            ("wall_ns", Json::int(report.wall_ns as i64)),
        ]),
    );
    println!("OK");
}
