//! Table 3: runtime of the compressed local pipeline vs the dense FFT
//! baseline for one sub-domain convolution, with the relative L2 error.
//!
//! The paper fixes k = 32 and sweeps N ∈ {128, 256, 512, 1024} with
//! downsampling r ∈ {4, 8, 32} (GPU vs CPU FFTW; ~4-24× speedups, error
//! ≤ 3%). Our substrate is a CPU, so absolute times differ, but the shape —
//! the compressed pipeline beating the dense transform by a growing factor
//! as N grows, at ≤ 3% error — is what this regenerates. N = 512 runs only
//! with `--large` (the dense baseline alone needs ~2 GB).

use std::sync::Arc;

use lcc_bench::time_ms;
use lcc_core::{LocalConvolver, TraditionalConvolver};
use lcc_greens::GaussianKernel;
use lcc_grid::{relative_l2, BoxRegion, Grid3};
use lcc_octree::{RateBand, RateSchedule, SamplingPlan};

/// Paper-style schedule with a chosen dominant exterior rate r.
fn schedule_for_r(k: usize, r: u32) -> RateSchedule {
    RateSchedule {
        bands: vec![
            RateBand {
                max_distance: 3,
                rate: 1,
            },
            RateBand {
                max_distance: k / 2,
                rate: 2,
            },
            RateBand {
                max_distance: 4 * k,
                rate: r.clamp(2, 8),
            },
        ],
        far_rate: r,
        boundary_width: 0,
        boundary_rate: 1,
    }
}

fn main() {
    let large = std::env::args().any(|a| a == "--large");
    let k = 32usize;
    let sigma = 1.0;
    let mut cases = vec![(128usize, 4u32), (256, 4), (256, 8)];
    if large {
        cases.push((512, 8));
        cases.push((512, 32));
    }

    println!("Table 3 — single sub-domain convolution: ours vs dense baseline");
    println!(
        "{:<6} {:<4} {:<4} {:>16} {:>16} {:>9} {:>12}",
        "N", "k", "r", "ours (ms)", "dense (ms)", "speedup", "rel L2 err"
    );
    for (n, r) in cases {
        let kernel = GaussianKernel::new(n, sigma);
        let sub = Grid3::from_fn((k, k, k), |x, y, z| {
            1.0 + (x as f64 * 0.4).sin() + 0.3 * y as f64 - 0.05 * z as f64
        });
        let corner = [0usize; 3];
        let hotspot = BoxRegion::new([n / 2; 3], [n / 2 + k; 3]);
        let plan = Arc::new(SamplingPlan::build(n, hotspot, &schedule_for_r(k, r)));
        let conv = LocalConvolver::new(n, k, (4 * n).min(8192));

        // Warm plans, then measure.
        let (_, _) = time_ms(|| conv.convolve_compressed(&sub, corner, &kernel, plan.clone()));
        let (compressed, t_ours) =
            time_ms(|| conv.convolve_compressed(&sub, corner, &kernel, plan.clone()));

        let dense = TraditionalConvolver::new(n);
        let (exact, t_dense) = time_ms(|| dense.convolve_subdomain(&sub, corner, &kernel));

        let approx = compressed.reconstruct();
        let err = relative_l2(exact.as_slice(), approx.as_slice());
        println!(
            "{:<6} {:<4} {:<4} {:>16.2} {:>16.2} {:>9.2} {:>12.4}",
            n,
            k,
            r,
            t_ours,
            t_dense,
            t_dense / t_ours,
            err
        );
    }
    println!("\n(paper, GPU vs CPU FFTW: N=128 r=4 -> 4.17x; 256/4 -> 11.91x;");
    println!(" 512/4 -> 19.24x; 512/8 -> 21.46x; 1024/32 -> 24.43x; error <= 3%)");
}
