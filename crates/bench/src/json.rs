//! Minimal JSON emitter for machine-readable benchmark reports.
//!
//! The experiment binaries write `BENCH_*.json` files so CI and plotting
//! scripts can consume sweeps without scraping stdout tables. Hand-rolled
//! because the workspace is dependency-frozen — no serde.

use std::fmt::Write as _;
use std::path::Path;

/// A JSON value.
#[derive(Clone, Debug)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any finite number (non-finite values serialize as `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An integer value (exact for |v| < 2⁵³).
    pub fn int(v: impl TryInto<i64>) -> Json {
        Json::Num(v.try_into().map(|i: i64| i as f64).unwrap_or(f64::NAN))
    }

    /// A string value.
    pub fn str(v: impl Into<String>) -> Json {
        Json::Str(v.into())
    }

    /// An object from `(key, value)` pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => {
                if !v.is_finite() {
                    out.push_str("null");
                } else if *v == v.trunc() && v.abs() < 9.0e15 {
                    let _ = write!(out, "{}", *v as i64);
                } else {
                    let _ = write!(out, "{v}");
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Json::Str(k.clone()).write(out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl std::fmt::Display for Json {
    /// Serializes to a compact JSON string (via `to_string()`).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut s = String::new();
        self.write(&mut s);
        f.write_str(&s)
    }
}

/// The speedup-vs-baseline cell of a timing report: `baseline / contender`
/// on hosts that can actually run the contenders concurrently, and `null`
/// when they cannot (`host_parallelism < 2`). A "speedup" measured on one
/// core is scheduler noise hovering around 1.0, and emitting it as a number
/// lets plotting scripts chart noise as if it were a measurement; `null`
/// keys the cell as *not measured*. A zero-duration contender (clock
/// granularity) is likewise unmeasurable.
pub fn speedup_vs_baseline(host_parallelism: usize, baseline_ns: u128, contender_ns: u128) -> Json {
    if host_parallelism < 2 || contender_ns == 0 {
        Json::Null
    } else {
        Json::Num(baseline_ns as f64 / contender_ns as f64)
    }
}

/// The achieved-FLOP-rate cell of a timing report: `flops / wall_ns` is
/// numerically GFLOP/s (flops per nanosecond). `null` when the cell is
/// unmeasurable — zero wall time (clock granularity) or a non-positive
/// flop model.
pub fn gflops(flops: f64, wall_ns: u128) -> Json {
    if wall_ns != 0 && flops > 0.0 {
        Json::Num(flops / wall_ns as f64)
    } else {
        Json::Null
    }
}

/// The roofline-fraction cell: achieved GFLOP/s over the bandwidth-bound
/// ceiling `stream_gbs × intensity` (intensity in flops/byte). For a
/// streaming-bound FFT pass this equals the achieved fraction of measured
/// stream bandwidth. `null` when any input is unmeasurable.
pub fn roofline_fraction(gflops: &Json, stream_gbs: f64, intensity: f64) -> Json {
    match gflops {
        Json::Num(g) if stream_gbs > 0.0 && intensity > 0.0 => {
            Json::Num(g / (stream_gbs * intensity))
        }
        _ => Json::Null,
    }
}

/// Writes `value` to `path` with a trailing newline, reporting but not
/// failing on I/O errors (benchmarks should still print their tables).
pub fn write_report(path: impl AsRef<Path>, value: &Json) {
    let path = path.as_ref();
    let mut body = value.to_string();
    body.push('\n');
    match std::fs::write(path, body) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serializes_nested_values() {
        let v = Json::obj(vec![
            ("name", Json::str("drop 5%")),
            ("seed", Json::int(0x51_EE_D5u64 as i64)),
            ("error", Json::Num(1.5e-3)),
            ("exact", Json::Num(4.0)),
            ("flags", Json::Arr(vec![Json::Bool(true), Json::Null])),
            ("quote", Json::str("a\"b\\c\n")),
        ]);
        assert_eq!(
            v.to_string(),
            r#"{"name":"drop 5%","seed":5369557,"error":0.0015,"exact":4,"flags":[true,null],"quote":"a\"b\\c\n"}"#
        );
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn speedup_is_null_when_unmeasurable() {
        // Single-core host: any "speedup" is scheduler noise, not data.
        assert_eq!(speedup_vs_baseline(1, 100, 99).to_string(), "null");
        assert_eq!(speedup_vs_baseline(0, 100, 50).to_string(), "null");
        // Clock-granularity zero: division would fabricate infinity.
        assert_eq!(speedup_vs_baseline(8, 100, 0).to_string(), "null");
        // Real multicore measurement passes through.
        assert_eq!(speedup_vs_baseline(4, 100, 50).to_string(), "2");
    }

    /// Schema regression for the `BENCH_pipeline.json` rows: on a
    /// single-core host `speedup_vs_1` must serialize as JSON `null` —
    /// never as a number ≈ 1.0 — while every other field keeps its type.
    #[test]
    fn pipeline_row_schema_on_single_core_hosts() {
        let row = |host: usize| {
            Json::obj(vec![
                ("threads", Json::int(4)),
                ("wall_ms", Json::Num(12.5)),
                ("speedup_vs_1", speedup_vs_baseline(host, 1000, 250)),
            ])
            .to_string()
        };
        assert_eq!(
            row(1),
            r#"{"threads":4,"wall_ms":12.5,"speedup_vs_1":null}"#
        );
        assert_eq!(row(8), r#"{"threads":4,"wall_ms":12.5,"speedup_vs_1":4}"#);
    }

    #[test]
    fn gflops_is_flops_per_nanosecond_or_null() {
        // 5e9 flops in 1e9 ns (one second) = 5 GFLOP/s.
        assert_eq!(gflops(5e9, 1_000_000_000).to_string(), "5");
        assert_eq!(gflops(5e9, 0).to_string(), "null");
        assert_eq!(gflops(0.0, 100).to_string(), "null");
        assert_eq!(gflops(f64::NAN, 100).to_string(), "null");
    }

    #[test]
    fn roofline_fraction_null_propagates() {
        let g = Json::Num(4.0);
        // 4 GFLOP/s against a 10 GB/s × 0.8 flops/byte = 8 GFLOP/s ceiling.
        assert_eq!(roofline_fraction(&g, 10.0, 0.8).to_string(), "0.5");
        assert_eq!(
            roofline_fraction(&Json::Null, 10.0, 0.8).to_string(),
            "null"
        );
        assert_eq!(roofline_fraction(&g, 0.0, 0.8).to_string(), "null");
        assert_eq!(roofline_fraction(&g, 10.0, 0.0).to_string(), "null");
    }

    /// Schema regression for the FLOP-rate fields: every pipeline row —
    /// including on single-core hosts where `speedup_vs_1` is `null` —
    /// carries a numeric `gflops_1core` and `roofline_frac`, plus the
    /// kernel-variant label. Single-core hosts measure FLOP rate fine;
    /// only *speedup* is unmeasurable there.
    #[test]
    fn pipeline_row_schema_with_flop_rate_fields() {
        let g = gflops(2.0e9, 1_000_000_000);
        let row = Json::obj(vec![
            ("variant", Json::str("avx2fma")),
            ("speedup_vs_1", speedup_vs_baseline(1, 1000, 250)),
            ("gflops_1core", g.clone()),
            ("roofline_frac", roofline_fraction(&g, 8.0, 1.0)),
        ])
        .to_string();
        assert_eq!(
            row,
            r#"{"variant":"avx2fma","speedup_vs_1":null,"gflops_1core":2,"roofline_frac":0.25}"#
        );
    }
}
