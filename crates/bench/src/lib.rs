//! # lcc-bench — experiment regenerators and microbenchmarks
//!
//! One binary per paper artifact (see DESIGN.md §4):
//!
//! | binary | artifact |
//! |---|---|
//! | `exp_table1` | Table 1 — memory, traditional vs domain-local slab |
//! | `exp_table2` | Table 2 — allowable k per N on 16/32 GB simulated V100s |
//! | `exp_table3` | Table 3 — runtime & speedup, ours vs dense baseline, + error |
//! | `exp_table4` | Table 4 — estimated vs actual device memory |
//! | `exp_comm_model` | Fig. 1 / Eqs. 1-2-6 — analytic + measured communication |
//! | `exp_fig3_octree` | Fig. 3 — octree sampling pattern, 32³ domain in 128³ grid |
//! | `exp_scalability` | §5.1-5.2 — the 8× headline on equal memory |
//! | `exp_batch_sweep` | §5.4 — batch parameter B study |
//! | `exp_error_sweep` | §5.3 — approximation error vs downsampling |
//! | `exp_massif_convergence` | Algorithms 1 & 2 — convergence unaffected by compression |
//! | `exp_fftx_plan` | §6 / Fig. 5 — FFTX plan composition |
//! | `exp_chaos` | fault-injection sweep — retry protocol vs message loss |
//! | `exp_recovery` | self-healing sweep — crash × crash-time × recovery policy |
//! | `exp_pipeline_perf` | threads × (n, k, B) × kernel-variant sweep — wall-clock, speedup vs 1 thread, steady-state allocations, single-core GFLOP/s + roofline fraction |
//!
//! `exp_chaos` and `exp_recovery` also emit machine-readable
//! `BENCH_chaos.json` / `BENCH_recovery.json` (see [`json`]); the
//! distributed self-healing workload they share lives in [`recovery`].
//! Criterion benches live in `benches/`.

pub mod alloc_track;
pub mod chaos;
pub mod json;
pub mod recovery;
pub mod roofline;
pub mod survival;

use std::time::Instant;

/// Times a closure, returning (result, milliseconds).
pub fn time_ms<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed().as_secs_f64() * 1e3)
}

/// Formats bytes as decimal GB with 2 digits (paper-table convention).
pub fn gb(bytes: u64) -> f64 {
    bytes as f64 / 1e9
}

/// Standard smooth test input used across experiments.
pub fn standard_input(n: usize) -> lcc_grid::Grid3<f64> {
    lcc_grid::Grid3::from_fn((n, n, n), |x, y, z| {
        ((x as f64 * 0.31).sin() + (y as f64 * 0.17).cos()) * (1.0 + 0.01 * z as f64)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_behave() {
        let (v, ms) = time_ms(|| 42);
        assert_eq!(v, 42);
        assert!(ms >= 0.0);
        assert_eq!(gb(8_000_000_000), 8.0);
        assert_eq!(standard_input(8).shape(), (8, 8, 8));
    }
}
