//! The chaos-engineering workload shared by `exp_chaos`, the
//! `chaos_cluster` integration tests, and the backend-parameterized
//! transport conformance suite.
//!
//! One rank's slice of the Fig. 1(b) deployment: convolve the rank's
//! round-robin share of sub-domains locally, allgather the compressed
//! samples across the survivors, reconstruct everyone's contributions,
//! and recompute dead ranks' domains at the degraded (coarsest) rate.
//! The cluster size comes from the world, so the same function runs on
//! any backend and any rank count.

use std::collections::BTreeMap;
use std::sync::Arc;

use lcc_comm::{
    decode_f64s, encode_f64s, run_cluster_with_faults, CommStats, CommWorld, FaultPlan, RetryPolicy,
};
use lcc_core::{ConvolveMode, LowCommConfig, LowCommConvolver};
use lcc_greens::GaussianKernel;
use lcc_grid::{assign_round_robin, decompose_uniform, Grid3};
use lcc_octree::{CompressedField, RateSchedule};

/// Grid size of the standard chaos deployment.
pub const N: usize = 32;
/// Sub-domain size.
pub const K: usize = 8;
/// Gaussian kernel spread.
pub const SIGMA: f64 = 1.5;

/// The convolver configuration every rank builds.
pub fn config() -> LowCommConfig {
    LowCommConfig {
        n: N,
        k: K,
        batch: 512,
        schedule: RateSchedule::for_kernel_spread(K, SIGMA, 16),
    }
}

/// The smooth input field shared by all ranks.
pub fn input() -> Grid3<f64> {
    Grid3::from_fn((N, N, N), |x, y, z| {
        ((x as f64 * 0.29).sin() + (y as f64 * 0.41).cos()) * (1.0 + 0.01 * z as f64)
    })
}

/// One rank of the chaos workload, on an already-connected world of any
/// size. Returns the accumulated (possibly degraded) convolution result.
pub fn chaos_rank(w: &mut CommWorld) -> Grid3<f64> {
    let p = w.size();
    let kernel = GaussianKernel::new(N, SIGMA);
    let input = input();
    let domains = decompose_uniform(N, K);
    let assignment = assign_round_robin(domains.len(), p);
    let conv = LowCommConvolver::new(config());

    // Local phase: convolve my sub-domains; NO communication.
    let my_fields: Vec<CompressedField> = assignment[w.rank()]
        .iter()
        .map(|&di| {
            let d = domains[di];
            let sub = input.extract(&d);
            let plan = conv.plan_for(conv.response_region(&d, &kernel));
            conv.local().convolve_compressed(&sub, d.lo, &kernel, plan)
        })
        .collect();

    // Single exchange across the survivors.
    let payload: Vec<f64> = my_fields
        .iter()
        .flat_map(|f| f.samples().iter().copied())
        .collect();
    let all = w
        .allgather_surviving(encode_f64s(&payload))
        .expect("surviving allgather failed");

    // Reconstruct every live rank's contributions; collect the domains of
    // dead ranks for degraded recomputation.
    let mut contribs: BTreeMap<usize, CompressedField> = BTreeMap::new();
    let mut orphans = Vec::new();
    for (rank, bytes) in all.iter().enumerate() {
        match bytes {
            Some(bytes) => {
                let samples = decode_f64s(bytes);
                let mut off = 0;
                for &di in &assignment[rank] {
                    let d = domains[di];
                    let plan = conv.plan_for(conv.response_region(&d, &kernel));
                    let count = plan.total_samples();
                    let mut f = CompressedField::zeros(plan);
                    f.samples_mut().copy_from_slice(&samples[off..off + count]);
                    off += count;
                    contribs.insert(di, f);
                }
                assert_eq!(off, samples.len(), "payload fully consumed");
            }
            None => {
                orphans.extend(assignment[rank].iter().map(|&di| (di, domains[di])));
            }
        }
    }
    let session = conv.session(ConvolveMode::Degraded);
    let (result, report) = session.accumulate(&contribs, &input, &kernel, &orphans);
    assert_eq!(report.degraded_domains, orphans.len());
    if orphans.is_empty() {
        assert_eq!(report.degraded_rate, None);
    } else {
        assert_eq!(report.degraded_rate, Some(conv.coarsest_rate()));
    }
    result
}

/// Runs the chaos workload on the in-process cluster under `plan`,
/// returning each surviving rank's result (crashed slots are `None`).
pub fn run_workload(
    p: usize,
    plan: FaultPlan,
    retry: RetryPolicy,
) -> (Vec<Option<Grid3<f64>>>, Arc<CommStats>) {
    run_cluster_with_faults(p, plan, retry, |mut w| chaos_rank(&mut w))
}
