//! Validated construction of [`LowCommConfig`]: a builder plus a typed
//! [`ConfigError`], so bad `n`/`k` combinations surface as values instead of
//! panics deep inside the FFT planner.
//!
//! ```
//! use lcc_core::{ConfigError, LowCommConfig};
//!
//! let cfg = LowCommConfig::builder().n(256).k(4).far_rate(8).build().unwrap();
//! assert_eq!(cfg.n, 256);
//!
//! let err = LowCommConfig::builder().n(10).k(3).build().unwrap_err();
//! assert!(matches!(err, ConfigError::NotDivisible { n: 10, k: 3 }));
//! ```

use std::error::Error;
use std::fmt;

use lcc_octree::RateSchedule;

use crate::lowcomm::LowCommConfig;

/// Why a [`LowCommConfig`] is invalid.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConfigError {
    /// A required builder field was never set.
    Missing(&'static str),
    /// Grid size must be at least 1.
    ZeroGrid,
    /// `k` must satisfy `1 ≤ k ≤ n`.
    KOutOfRange {
        /// Grid size.
        n: usize,
        /// Offending sub-domain size.
        k: usize,
    },
    /// `k` must divide `n` so the decomposition tiles the grid.
    NotDivisible {
        /// Grid size.
        n: usize,
        /// Offending sub-domain size.
        k: usize,
    },
    /// The z-stage batch must be at least 1.
    ZeroBatch,
    /// A sampling rate must be a power of two.
    RateNotPowerOfTwo(u32),
    /// The sampling schedule violates its own invariants
    /// ([`RateSchedule::validate`]).
    Schedule(String),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::Missing(field) => write!(f, "required field `{field}` was not set"),
            ConfigError::ZeroGrid => write!(f, "grid size n must be at least 1"),
            ConfigError::KOutOfRange { n, k } => {
                write!(f, "sub-domain size k={k} must be in 1..={n}")
            }
            ConfigError::NotDivisible { n, k } => {
                write!(f, "sub-domain size k={k} must divide grid size n={n}")
            }
            ConfigError::ZeroBatch => write!(f, "z-stage batch size must be at least 1"),
            ConfigError::RateNotPowerOfTwo(r) => {
                write!(f, "sampling rate {r} is not a power of two")
            }
            ConfigError::Schedule(msg) => write!(f, "invalid sampling schedule: {msg}"),
        }
    }
}

impl Error for ConfigError {}

impl LowCommConfig {
    /// Starts a validated builder:
    /// `LowCommConfig::builder().n(256).k(4).far_rate(8).build()?`.
    pub fn builder() -> LowCommConfigBuilder {
        LowCommConfigBuilder::default()
    }

    /// Checks every invariant [`crate::LowCommConvolver::try_new`] relies
    /// on, returning the first violation as a typed error.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.n == 0 {
            return Err(ConfigError::ZeroGrid);
        }
        if self.k == 0 || self.k > self.n {
            return Err(ConfigError::KOutOfRange {
                n: self.n,
                k: self.k,
            });
        }
        if !self.n.is_multiple_of(self.k) {
            return Err(ConfigError::NotDivisible {
                n: self.n,
                k: self.k,
            });
        }
        if self.batch == 0 {
            return Err(ConfigError::ZeroBatch);
        }
        self.schedule.validate().map_err(ConfigError::Schedule)
    }
}

/// Builder for [`LowCommConfig`]. `n` and `k` are required; `batch`
/// defaults to `min(1024, n²)` and the schedule to the paper's §5.4
/// heuristic at the configured `far_rate` (default 8).
#[derive(Clone, Debug)]
pub struct LowCommConfigBuilder {
    n: Option<usize>,
    k: Option<usize>,
    batch: Option<usize>,
    far_rate: u32,
    schedule: Option<RateSchedule>,
}

impl Default for LowCommConfigBuilder {
    fn default() -> Self {
        LowCommConfigBuilder {
            n: None,
            k: None,
            batch: None,
            far_rate: 8,
            schedule: None,
        }
    }
}

impl LowCommConfigBuilder {
    /// Grid size N.
    pub fn n(mut self, n: usize) -> Self {
        self.n = Some(n);
        self
    }

    /// Sub-domain size k (must divide N).
    pub fn k(mut self, k: usize) -> Self {
        self.k = Some(k);
        self
    }

    /// z-stage batch size B (defaults to `min(1024, n²)`).
    pub fn batch(mut self, batch: usize) -> Self {
        self.batch = Some(batch);
        self
    }

    /// Far-field sampling rate of the default paper schedule. Ignored when
    /// an explicit [`Self::schedule`] is given.
    pub fn far_rate(mut self, far_rate: u32) -> Self {
        self.far_rate = far_rate;
        self
    }

    /// Replaces the default paper schedule with an explicit one.
    pub fn schedule(mut self, schedule: RateSchedule) -> Self {
        self.schedule = Some(schedule);
        self
    }

    /// Validates and produces the configuration.
    pub fn build(self) -> Result<LowCommConfig, ConfigError> {
        let n = self.n.ok_or(ConfigError::Missing("n"))?;
        let k = self.k.ok_or(ConfigError::Missing("k"))?;
        let schedule = match self.schedule {
            Some(s) => s,
            None => {
                if !self.far_rate.is_power_of_two() {
                    return Err(ConfigError::RateNotPowerOfTwo(self.far_rate));
                }
                RateSchedule::paper_default(k, self.far_rate)
            }
        };
        let cfg = LowCommConfig {
            n,
            k,
            batch: self.batch.unwrap_or_else(|| 1024.min(n * n)),
            schedule,
        };
        cfg.validate()?;
        Ok(cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_match_paper_default() {
        let built = LowCommConfig::builder()
            .n(32)
            .k(8)
            .far_rate(16)
            .build()
            .unwrap();
        let legacy = LowCommConfig::paper_default(32, 8, 16);
        assert_eq!(built.n, legacy.n);
        assert_eq!(built.k, legacy.k);
        assert_eq!(built.batch, legacy.batch);
        assert_eq!(built.schedule, legacy.schedule);
    }

    #[test]
    fn builder_rejects_bad_divisibility_without_panicking() {
        let err = LowCommConfig::builder().n(10).k(3).build().unwrap_err();
        assert_eq!(err, ConfigError::NotDivisible { n: 10, k: 3 });
        let err = LowCommConfig::builder().n(8).k(16).build().unwrap_err();
        assert_eq!(err, ConfigError::KOutOfRange { n: 8, k: 16 });
        let err = LowCommConfig::builder()
            .n(8)
            .k(4)
            .batch(0)
            .build()
            .unwrap_err();
        assert_eq!(err, ConfigError::ZeroBatch);
    }

    #[test]
    fn builder_requires_n_and_k() {
        assert_eq!(
            LowCommConfig::builder().k(4).build().unwrap_err(),
            ConfigError::Missing("n")
        );
        assert_eq!(
            LowCommConfig::builder().n(16).build().unwrap_err(),
            ConfigError::Missing("k")
        );
    }

    #[test]
    fn builder_rejects_bad_far_rate() {
        let err = LowCommConfig::builder()
            .n(16)
            .k(4)
            .far_rate(3)
            .build()
            .unwrap_err();
        assert_eq!(err, ConfigError::RateNotPowerOfTwo(3));
    }

    #[test]
    fn explicit_schedule_is_validated() {
        let mut schedule = RateSchedule::uniform(4);
        schedule.far_rate = 3; // not a power of two
        let err = LowCommConfig::builder()
            .n(16)
            .k(4)
            .schedule(schedule)
            .build()
            .unwrap_err();
        assert!(matches!(err, ConfigError::Schedule(_)));
        let display = err.to_string();
        assert!(display.contains("power of two"), "got: {display}");
    }
}
