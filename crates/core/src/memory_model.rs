//! Memory-footprint models (paper Table 1, Table 2, Table 4 "estimated").
//!
//! Table 1's back-of-envelope: a traditional FFT stores the full-resolution
//! N³ result (8 bytes/point double precision); the domain-local method holds
//! an N×N×k slab, `8·N·N·k` bytes. Table 2 then asks which `(N, k)` fit on a
//! real device once cuFFT workspace overheads are charged.

use lcc_device::{PlanSet, PlanShape};

/// Bytes for the traditional approach at grid size `n`: the full-resolution
/// double-precision result, `8·N³` (Table 1, column 3).
pub fn traditional_bytes(n: usize) -> u64 {
    8 * (n as u64).pow(3)
}

/// Bytes for the paper's domain-local slab at `(n, k)`: `8·N·N·k`
/// (Table 1, column 4).
pub fn local_slab_bytes(n: usize, k: usize) -> u64 {
    8 * (n as u64) * (n as u64) * (k as u64)
}

/// One row of Table 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Table1Row {
    /// Grid size N.
    pub n: usize,
    /// Sub-domain size k.
    pub k: usize,
    /// Traditional full-resolution bytes.
    pub traditional: u64,
    /// Domain-local slab bytes.
    pub local: u64,
}

/// The exact `(N, k)` combinations of the paper's Table 1.
pub const TABLE1_CASES: [(usize, usize); 8] = [
    (1024, 128),
    (1024, 512),
    (2048, 128),
    (2048, 512),
    (4096, 128),
    (4096, 512),
    (8192, 64),
    (8192, 128),
];

/// Regenerates Table 1.
pub fn table1_rows() -> Vec<Table1Row> {
    TABLE1_CASES
        .iter()
        .map(|&(n, k)| Table1Row {
            n,
            k,
            traditional: traditional_bytes(n),
            local: local_slab_bytes(n, k),
        })
        .collect()
}

/// Detailed device-footprint model of the streaming pipeline at `(n, k)`
/// with `retained_z` kept z-planes and a z-stage batch of `batch` pencils.
/// All working buffers are complex double (16 B/point).
#[derive(Clone, Copy, Debug)]
pub struct PipelineFootprint {
    /// N×N×k slab holding the 2D-transformed sub-domain.
    pub slab_bytes: u64,
    /// Retained z-planes buffer (`retained_z`·N² complex).
    pub retained_bytes: u64,
    /// z-stage batch working buffer (`batch`·N complex, in and out).
    pub batch_bytes: u64,
    /// Compressed output samples + octree metadata.
    pub compressed_bytes: u64,
    /// cuFFT-style plan workspaces alive for the run.
    pub plan_workspace_bytes: u64,
}

impl PipelineFootprint {
    /// Builds the footprint model.
    pub fn model(
        n: usize,
        k: usize,
        retained_z: usize,
        batch: usize,
        compressed_bytes: u64,
    ) -> Self {
        let mut plans = PlanSet::new();
        // 2D stage: the y-pass and x-pass are separate batched plans over
        // the k slices, each holding its own slab-sized work area (this is
        // the dominant share of the "cuFFT temporaries" gap of Table 4).
        plans.add(PlanShape::c2c(n, k * n));
        plans.add(PlanShape::c2c(n, k * n));
        // z stage: `batch` pencils of length n at a time (forward + inverse
        // plans both alive).
        plans.add(PlanShape::c2c(n, batch));
        plans.add(PlanShape::c2c(n, batch));
        // Final 2D inverse over retained planes (two passes).
        plans.add(PlanShape::c2c(n, n));
        plans.add(PlanShape::c2c(n, n));
        PipelineFootprint {
            slab_bytes: 16 * (n as u64) * (n as u64) * (k as u64),
            retained_bytes: 16 * (retained_z as u64) * (n as u64) * (n as u64),
            batch_bytes: 2 * 16 * (batch as u64) * (n as u64),
            compressed_bytes,
            plan_workspace_bytes: plans.total_workspace_bytes(),
        }
    }

    /// The algorithmic estimate (what the paper's "Estimated Memory" column
    /// counts): data buffers without library workspaces.
    pub fn estimated_bytes(&self) -> u64 {
        self.slab_bytes + self.retained_bytes + self.batch_bytes + self.compressed_bytes
    }

    /// The actual device requirement: estimate plus plan workspaces
    /// (Table 4's "Actual Memory").
    pub fn actual_bytes(&self) -> u64 {
        self.estimated_bytes() + self.plan_workspace_bytes
    }
}

/// Largest power-of-two sub-domain size `k ≤ n/2` whose pipeline footprint
/// (actual, with plan workspaces) fits in `capacity` bytes — the quantity
/// Table 2 reports per grid size and device.
///
/// `retained_fraction` approximates `retained_z/n` for the schedule in use
/// (the paper default retains ≈ `2k + n/8` planes).
pub fn allowable_k(n: usize, capacity: u64, batch: usize) -> Option<usize> {
    let mut best = None;
    let mut k = 2;
    while k <= n / 2 {
        let retained = (2 * k + n / 8).min(n);
        // Compressed output ≈ dense domain + exterior at average rate 8.
        let compressed = 8 * ((k as u64).pow(3) + (n as u64).pow(3) / 512) + (1 << 20);
        let fp = PipelineFootprint::model(n, k, retained, batch, compressed);
        if fp.actual_bytes() <= capacity {
            best = Some(k);
        }
        k *= 2;
    }
    best
}

/// How many independent sub-domain pipelines fit concurrently on one
/// device — §5.1: "for smaller 3D grids, the method retains its advantage
/// by batch processing multiple 3D convolutions on a GPU, optimizing
/// cluster usage with fewer resources." Plan workspaces are shared
/// (cuFFT-style plans are reusable across same-shape batches); data
/// buffers replicate per concurrent domain.
pub fn domains_per_device(n: usize, k: usize, batch: usize, capacity: u64) -> usize {
    let retained = (2 * k + n / 8).min(n);
    let compressed = 8 * ((k as u64).pow(3) + (n as u64).pow(3) / 512);
    let fp = PipelineFootprint::model(n, k, retained, batch, compressed);
    let per_domain = fp.estimated_bytes();
    let shared = fp.plan_workspace_bytes;
    if shared + per_domain > capacity {
        0
    } else {
        ((capacity - shared) / per_domain) as usize
    }
}

/// Whether an *uncompressed* traditional convolution fits on the device:
/// an in-place r2c transform holds the 8·N³-byte real field (padded to the
/// half-spectrum), the kernel spectrum, and a cuFFT workspace of the same
/// order — ≈ 3 × 8·N³ bytes. This is the "traditional cuFFT" column of
/// §5.1: the paper reports N = 1024 as the largest uncompressed size on a
/// 32 GB V100 (3·8·1024³ ≈ 26 GB), with 2048³ (206 GB) far out of reach.
pub fn traditional_fits(n: usize, capacity: u64) -> bool {
    let data = 8 * (n as u64).pow(3);
    3 * data <= capacity
}

#[cfg(test)]
mod tests {
    use super::*;

    const GB: u64 = 1_000_000_000;

    #[test]
    fn table1_matches_paper_values() {
        // Paper rows are in round GB (decimal): 1024³ → 8 GB traditional;
        // (1024, 128) → 1 GB local; (8192, 64) → 32 GB local.
        let rows = table1_rows();
        let find = |n, k| rows.iter().find(|r| r.n == n && r.k == k).unwrap();
        let gb = |b: u64| (b as f64 / 1e9 / 1.073741824).round(); // GiB → paper's GB
        assert_eq!(gb(find(1024, 128).traditional), 8.0);
        assert_eq!(gb(find(1024, 128).local), 1.0);
        assert_eq!(gb(find(2048, 512).traditional), 64.0);
        assert_eq!(gb(find(2048, 512).local), 16.0);
        assert_eq!(gb(find(4096, 128).traditional), 512.0);
        assert_eq!(gb(find(4096, 128).local), 16.0);
        assert_eq!(gb(find(8192, 64).traditional), 4096.0);
        assert_eq!(gb(find(8192, 64).local), 32.0);
    }

    #[test]
    fn local_always_below_traditional() {
        for r in table1_rows() {
            assert!(r.local < r.traditional, "row {r:?}");
            assert_eq!(r.traditional / r.local, (r.n / r.k) as u64);
        }
    }

    #[test]
    fn actual_exceeds_estimate_by_workspace() {
        let fp = PipelineFootprint::model(512, 32, 96, 1024, 50_000_000);
        assert!(fp.actual_bytes() > fp.estimated_bytes());
        let ratio = fp.actual_bytes() as f64 / fp.estimated_bytes() as f64;
        // Table 4's observed gap is ~1.6-2.1×.
        assert!(ratio > 1.2 && ratio < 3.0, "workspace ratio {ratio}");
    }

    #[test]
    fn allowable_k_monotone_in_capacity() {
        let k16 = allowable_k(1024, 16 * GB, 1024);
        let k32 = allowable_k(1024, 32 * GB, 1024);
        assert!(k16.unwrap_or(0) <= k32.unwrap_or(0));
        assert!(k32.is_some());
    }

    #[test]
    fn allowable_k_shrinks_for_larger_grids() {
        // Table 2's shape: at fixed capacity, the allowed k stops growing
        // and eventually shrinks as N grows.
        let caps = 32 * GB;
        let k1024 = allowable_k(1024, caps, 1024).unwrap();
        let k2048 = allowable_k(2048, caps, 4096).unwrap();
        assert!(
            k2048 < k1024,
            "k({k2048}) at 2048 must be below k({k1024}) at 1024"
        );
    }

    #[test]
    fn batch_processing_small_grids() {
        // §5.1: small grids batch many domains per device; the count grows
        // as the grid shrinks and hits 0 when even one domain won't fit.
        let cap = 16 * GB;
        let small = domains_per_device(256, 32, 1024, cap);
        let medium = domains_per_device(512, 32, 1024, cap);
        assert!(small > medium, "{small} vs {medium}");
        assert!(
            small >= 8,
            "a 256³ pipeline should batch many domains: {small}"
        );
        assert_eq!(domains_per_device(8192, 512, 8192, GB), 0);
    }

    #[test]
    fn traditional_capacity_cliff() {
        // The paper: traditional cuFFT handles up to 1024³ on a 32 GB GPU,
        // not 2048³ — an 8× point-count gap to ours.
        assert!(traditional_fits(1024, 32 * GB));
        assert!(!traditional_fits(2048, 32 * GB));
    }
}
