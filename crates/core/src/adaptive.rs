//! Low-communication convolution over *irregular* decompositions.
//!
//! The paper's Step 1 note — "for now, we assume regular volumetric
//! sub-domains but irregular partitions can also be made" — implemented:
//! the orchestrator accepts any power-of-two box tiling (e.g. from
//! [`lcc_grid::decompose_adaptive`]) and lazily plans one streaming
//! pipeline per distinct sub-domain size. Quiet regions ride in a few huge
//! boxes (skipped outright when zero), hot regions in small well-resolved
//! ones.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;
use rayon::prelude::*;

use lcc_greens::KernelSpectrum;
use lcc_grid::{BoxRegion, Grid3};
use lcc_octree::{RateSchedule, SamplingPlan};

use crate::lowcomm::RunReport;
use crate::pipeline::LocalConvolver;

/// Convolver over variable-size sub-domains.
pub struct AdaptiveConvolver {
    n: usize,
    batch: usize,
    /// Kernel spread driving the per-size schedules.
    spread: f64,
    far_rate: u32,
    locals: Mutex<HashMap<usize, Arc<LocalConvolver>>>,
}

impl AdaptiveConvolver {
    /// Creates the convolver; `spread` parameterizes each sub-domain size's
    /// schedule via [`RateSchedule::for_kernel_spread`].
    pub fn new(n: usize, batch: usize, spread: f64, far_rate: u32) -> Self {
        assert!(n.is_power_of_two(), "grid must be a power of two");
        AdaptiveConvolver {
            n,
            batch,
            spread,
            far_rate,
            locals: Mutex::new(HashMap::new()),
        }
    }

    /// Grid size.
    pub fn n(&self) -> usize {
        self.n
    }

    fn local_for(&self, k: usize) -> Arc<LocalConvolver> {
        if let Some(l) = self.locals.lock().get(&k) {
            return l.clone();
        }
        let l = Arc::new(LocalConvolver::new(self.n, k, self.batch));
        self.locals.lock().entry(k).or_insert(l).clone()
    }

    /// The schedule used for a sub-domain of size `k`.
    pub fn schedule_for(&self, k: usize) -> RateSchedule {
        RateSchedule::for_kernel_spread(k, self.spread, self.far_rate)
    }

    /// Response (hotspot) region of `domain` under `kernel` — the domain
    /// translated by the kernel center (must not wrap; see
    /// `LowCommConvolver::response_region`).
    pub fn response_region(&self, domain: &BoxRegion, kernel: &dyn KernelSpectrum) -> BoxRegion {
        let n = self.n;
        let c = kernel.center();
        let mut lo = [0usize; 3];
        let mut hi = [0usize; 3];
        for a in 0..3 {
            lo[a] = (domain.lo[a] + c[a]) % n;
            hi[a] = lo[a] + (domain.hi[a] - domain.lo[a]);
            assert!(hi[a] <= n, "response region wraps the periodic boundary");
        }
        BoxRegion::new(lo, hi)
    }

    /// Convolves `input` over the given tiling, accumulating all domain
    /// contributions into the dense approximate result.
    pub fn convolve(
        &self,
        input: &Grid3<f64>,
        kernel: &dyn KernelSpectrum,
        domains: &[BoxRegion],
    ) -> (Grid3<f64>, RunReport) {
        let n = self.n;
        assert_eq!(input.shape(), (n, n, n), "input shape mismatch");
        // Validate the tiling covers the grid exactly.
        let vol: usize = domains.iter().map(|b| b.volume()).sum();
        assert_eq!(vol, n * n * n, "domains must tile the grid");

        let fields: Vec<_> = domains
            .par_iter()
            .map(|d| {
                let (sx, sy, sz) = d.size();
                assert!(sx == sy && sy == sz, "sub-domains must be cubes");
                let sub = input.extract(d);
                if sub.as_slice().iter().all(|&v| v == 0.0) {
                    return None;
                }
                let k = sx;
                let plan = Arc::new(SamplingPlan::build(
                    n,
                    self.response_region(d, kernel),
                    &self.schedule_for(k),
                ));
                Some(
                    self.local_for(k)
                        .convolve_compressed(&sub, d.lo, kernel, plan),
                )
            })
            .collect();

        let mut out = Grid3::zeros((n, n, n));
        let cube = BoxRegion::cube(n);
        let mut report = RunReport {
            dense_stage_bytes: n * n * n * 16,
            ..Default::default()
        };
        for f in fields.into_iter() {
            match f {
                Some(f) => {
                    report.domains_processed += 1;
                    report.total_samples += f.plan().total_samples();
                    report.exchange_bytes += f.message_bytes();
                    f.add_region_into(&cube, &mut out, 1.0);
                }
                None => report.domains_skipped += 1,
            }
        }
        (out, report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traditional::TraditionalConvolver;
    use lcc_greens::GaussianKernel;
    use lcc_grid::{decompose_adaptive, relative_l2, AdaptiveDecomposition};

    #[test]
    fn irregular_tiling_matches_oracle() {
        let n = 32;
        let sigma = 1.0;
        let kernel = GaussianKernel::new(n, sigma);
        // Concentrated input: two hot spots, vast quiet space.
        let mut input = Grid3::zeros((n, n, n));
        input[(3, 3, 3)] = 5.0;
        input[(20, 24, 8)] = -2.0;
        let domains = decompose_adaptive(&input, AdaptiveDecomposition::new(4, 16));
        let conv = AdaptiveConvolver::new(n, 512, sigma, 16);
        let (approx, report) = conv.convolve(&input, &kernel, &domains);
        let exact = TraditionalConvolver::new(n).convolve(&input, &kernel);
        let err = relative_l2(exact.as_slice(), approx.as_slice());
        assert!(err < 0.03, "adaptive-tiling error {err}");
        assert!(report.domains_skipped > report.domains_processed);
        // Small domains around the energy: fewer samples than a regular
        // decomposition at the finest size would need.
        assert!(report.domains_processed <= 4);
    }

    #[test]
    fn mixed_sizes_are_cached() {
        let n = 16;
        let conv = AdaptiveConvolver::new(n, 64, 1.0, 8);
        let kernel = GaussianKernel::new(n, 1.0);
        let input = Grid3::from_fn((n, n, n), |x, _, _| if x < 8 { 1.0 } else { 0.0 });
        // Hand-built irregular tiling: one 8³ + 8 more 8³... use two sizes:
        let mut domains = vec![BoxRegion::new([0; 3], [8; 3])];
        // remaining seven 8³ octants
        for dx in 0..2 {
            for dy in 0..2 {
                for dz in 0..2 {
                    if (dx, dy, dz) != (0, 0, 0) {
                        domains.push(BoxRegion::new(
                            [dx * 8, dy * 8, dz * 8],
                            [dx * 8 + 8, dy * 8 + 8, dz * 8 + 8],
                        ));
                    }
                }
            }
        }
        // Split the first octant into 4³ cubes instead.
        let first = domains.remove(0);
        for dx in 0..2 {
            for dy in 0..2 {
                for dz in 0..2 {
                    domains.push(BoxRegion::new(
                        [
                            first.lo[0] + dx * 4,
                            first.lo[1] + dy * 4,
                            first.lo[2] + dz * 4,
                        ],
                        [
                            first.lo[0] + dx * 4 + 4,
                            first.lo[1] + dy * 4 + 4,
                            first.lo[2] + dz * 4 + 4,
                        ],
                    ));
                }
            }
        }
        let (out, _) = conv.convolve(&input, &kernel, &domains);
        let exact = TraditionalConvolver::new(n).convolve(&input, &kernel);
        let err = relative_l2(exact.as_slice(), out.as_slice());
        assert!(err < 0.03, "mixed-size error {err}");
        assert_eq!(conv.locals.lock().len(), 2, "two pipeline sizes planned");
    }

    #[test]
    #[should_panic(expected = "tile the grid")]
    fn incomplete_tiling_rejected() {
        let n = 16;
        let conv = AdaptiveConvolver::new(n, 64, 1.0, 8);
        let kernel = GaussianKernel::new(n, 1.0);
        let input = Grid3::zeros((n, n, n));
        conv.convolve(&input, &kernel, &[BoxRegion::new([0; 3], [8; 3])]);
    }
}
