//! Recovery planning: who recomputes a dead rank's sub-domains, and how.
//!
//! The paper's economics make exact recovery affordable: the one sparse
//! exchange is so much cheaper than a distributed FFT (Eq. 6 vs Eq. 1)
//! that when a rank dies, survivors can recompute the lost sub-domains
//! *exactly* — same pruned-FFT pipeline, same sampling plans — and fold the
//! recomputed contributions into the same single exchange, keeping the
//! result bit-identical to the fault-free run.
//!
//! A [`RecoveryPlanner`] turns (domains, ownership, membership) into a
//! [`RecoveryPlan`]: orphaned domains are claimed round-robin by the sorted
//! survivors, capped by the [`RecoveryPolicy`]'s per-claimant budget;
//! anything over budget falls back to the PR 1 degraded path (coarsest-rate
//! local reconstruction on every rank). The planner is a pure function of
//! its inputs, so every survivor computes the identical plan without any
//! extra communication — determinism is what makes the folded exchange
//! consistent.

use std::collections::{BTreeMap, BTreeSet};

use lcc_grid::BoxRegion;

/// How survivors make up for a dead rank's lost sub-domains.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecoveryPolicy {
    /// No exact recompute: every orphan is rebuilt locally at the
    /// schedule's coarsest rate (cheap, lossy — the PR 1 behavior).
    Degrade,
    /// Exact recompute of up to `max_extra_domains` orphans per claimant;
    /// any overflow degrades. `usize::MAX` means "recover everything".
    Redistribute { max_extra_domains: usize },
    /// One exact domain per claimant, the rest degraded: bounded extra
    /// latency with most of the accuracy back.
    Hybrid,
}

impl RecoveryPolicy {
    /// Exact-recompute budget per claimant.
    pub fn exact_budget(&self) -> usize {
        match self {
            RecoveryPolicy::Degrade => 0,
            RecoveryPolicy::Redistribute { max_extra_domains } => *max_extra_domains,
            RecoveryPolicy::Hybrid => 1,
        }
    }

    /// Short stable name for reports and JSON.
    pub fn name(&self) -> &'static str {
        match self {
            RecoveryPolicy::Degrade => "degrade",
            RecoveryPolicy::Redistribute { .. } => "redistribute",
            RecoveryPolicy::Hybrid => "hybrid",
        }
    }
}

/// One orphaned sub-domain assigned to a survivor for exact recompute.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DomainClaim {
    /// Global domain id (index into the decomposition).
    pub domain_id: usize,
    /// The sub-domain region.
    pub domain: BoxRegion,
    /// The surviving rank that recomputes it.
    pub claimant: usize,
}

/// The deterministic recovery assignment all survivors agree on.
#[derive(Clone, Debug, Default)]
pub struct RecoveryPlan {
    /// Dead ranks the plan compensates for, ascending.
    pub dead: Vec<usize>,
    /// Exact-recompute claims, ascending by domain id.
    pub claims: Vec<DomainClaim>,
    /// Orphans over every claimant's budget: rebuilt locally at the
    /// coarsest rate by each rank, ascending by domain id.
    pub degraded: Vec<(usize, BoxRegion)>,
}

impl RecoveryPlan {
    /// Whether there is anything to recover.
    pub fn is_empty(&self) -> bool {
        self.claims.is_empty() && self.degraded.is_empty()
    }

    /// Total orphaned domains the plan covers.
    pub fn orphan_count(&self) -> usize {
        self.claims.len() + self.degraded.len()
    }

    /// The claims assigned to `rank`, ascending by domain id.
    pub fn claims_for(&self, rank: usize) -> impl Iterator<Item = &DomainClaim> + '_ {
        self.claims.iter().filter(move |c| c.claimant == rank)
    }
}

/// Deterministic re-partitioner of orphaned sub-domains.
#[derive(Clone, Copy, Debug)]
pub struct RecoveryPlanner {
    policy: RecoveryPolicy,
}

impl RecoveryPlanner {
    /// A planner applying `policy`.
    pub fn new(policy: RecoveryPolicy) -> Self {
        RecoveryPlanner { policy }
    }

    /// The policy in force.
    pub fn policy(&self) -> RecoveryPolicy {
        self.policy
    }

    /// Plans recovery of every domain whose owner is dead.
    ///
    /// `owner(id)` is the original assignment (e.g. round-robin
    /// `id % p`); `survivors` and `dead` partition the ranks that matter.
    /// Orphans are enumerated in ascending domain-id order and dealt
    /// round-robin to the ascending survivor list, so any rank — given the
    /// same membership view — derives the identical plan with no
    /// coordination.
    pub fn plan(
        &self,
        domains: &[BoxRegion],
        owner: impl Fn(usize) -> usize,
        survivors: &[usize],
        dead: &[usize],
    ) -> RecoveryPlan {
        let dead: BTreeSet<usize> = dead.iter().copied().collect();
        let mut survivors: Vec<usize> = survivors
            .iter()
            .copied()
            .filter(|r| !dead.contains(r))
            .collect();
        survivors.sort_unstable();
        survivors.dedup();
        assert!(
            !survivors.is_empty(),
            "recovery needs at least one survivor"
        );

        let budget = self.policy.exact_budget();
        let mut load: BTreeMap<usize, usize> = BTreeMap::new();
        let mut plan = RecoveryPlan {
            dead: dead.iter().copied().collect(),
            ..Default::default()
        };
        let orphans = domains
            .iter()
            .enumerate()
            .filter(|(id, _)| dead.contains(&owner(*id)));
        for (j, (id, region)) in orphans.enumerate() {
            let claimant = survivors[j % survivors.len()];
            let used = load.entry(claimant).or_insert(0);
            if *used < budget {
                *used += 1;
                plan.claims.push(DomainClaim {
                    domain_id: id,
                    domain: *region,
                    claimant,
                });
            } else {
                plan.degraded.push((id, *region));
            }
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcc_grid::decompose_uniform;

    fn domains() -> Vec<BoxRegion> {
        decompose_uniform(32, 8) // 64 domains
    }

    #[test]
    fn degrade_claims_nothing() {
        let d = domains();
        let plan =
            RecoveryPlanner::new(RecoveryPolicy::Degrade).plan(&d, |id| id % 4, &[0, 2, 3], &[1]);
        assert!(plan.claims.is_empty());
        assert_eq!(plan.degraded.len(), 16, "a quarter of 64 domains orphaned");
        assert_eq!(plan.orphan_count(), 16);
        assert_eq!(plan.dead, vec![1]);
    }

    #[test]
    fn redistribute_covers_all_orphans_round_robin() {
        let d = domains();
        let plan = RecoveryPlanner::new(RecoveryPolicy::Redistribute {
            max_extra_domains: usize::MAX,
        })
        .plan(&d, |id| id % 4, &[0, 2, 3], &[1]);
        assert!(plan.degraded.is_empty());
        assert_eq!(plan.claims.len(), 16);
        // Orphans are ids ≡ 1 (mod 4), dealt to survivors 0,2,3 in turn.
        assert_eq!(plan.claims[0].domain_id, 1);
        assert_eq!(plan.claims[0].claimant, 0);
        assert_eq!(plan.claims[1].domain_id, 5);
        assert_eq!(plan.claims[1].claimant, 2);
        assert_eq!(plan.claims[2].domain_id, 9);
        assert_eq!(plan.claims[2].claimant, 3);
        assert_eq!(plan.claims[3].claimant, 0, "round-robin wraps");
        // Even split: 16 orphans over 3 claimants.
        let mine: Vec<_> = plan.claims_for(0).map(|c| c.domain_id).collect();
        assert_eq!(mine.len(), 6);
        assert!(mine.windows(2).all(|w| w[0] < w[1]), "ascending ids");
    }

    #[test]
    fn budget_overflow_degrades_the_rest() {
        let d = domains();
        let plan = RecoveryPlanner::new(RecoveryPolicy::Redistribute {
            max_extra_domains: 2,
        })
        .plan(&d, |id| id % 4, &[0, 2, 3], &[1]);
        assert_eq!(plan.claims.len(), 6, "3 claimants × budget 2");
        assert_eq!(plan.degraded.len(), 10);
        assert_eq!(plan.orphan_count(), 16);
        // Hybrid is the budget-1 special case.
        let hybrid =
            RecoveryPlanner::new(RecoveryPolicy::Hybrid).plan(&d, |id| id % 4, &[0, 2, 3], &[1]);
        assert_eq!(hybrid.claims.len(), 3);
        assert_eq!(hybrid.degraded.len(), 13);
    }

    #[test]
    fn plan_is_a_pure_function_of_membership() {
        let d = domains();
        let planner = RecoveryPlanner::new(RecoveryPolicy::Redistribute {
            max_extra_domains: usize::MAX,
        });
        // Unsorted, duplicated survivor lists still give the same plan.
        let a = planner.plan(&d, |id| id % 4, &[3, 0, 2], &[1]);
        let b = planner.plan(&d, |id| id % 4, &[0, 2, 3, 0], &[1]);
        assert_eq!(a.claims, b.claims);
        assert_eq!(a.degraded, b.degraded);
        // No deaths → nothing to do.
        let empty = planner.plan(&d, |id| id % 4, &[0, 1, 2, 3], &[]);
        assert!(empty.is_empty());
    }

    #[test]
    fn two_dead_ranks_orphan_both_shares() {
        let d = domains();
        let plan = RecoveryPlanner::new(RecoveryPolicy::Redistribute {
            max_extra_domains: usize::MAX,
        })
        .plan(&d, |id| id % 4, &[0, 2], &[1, 3]);
        assert_eq!(plan.orphan_count(), 32);
        assert_eq!(plan.dead, vec![1, 3]);
        assert!(plan
            .claims
            .iter()
            .all(|c| c.claimant == 0 || c.claimant == 2));
    }

    #[test]
    #[should_panic(expected = "at least one survivor")]
    fn no_survivors_is_rejected() {
        let d = domains();
        RecoveryPlanner::new(RecoveryPolicy::Hybrid).plan(&d, |id| id % 2, &[1], &[0, 1]);
    }
}
