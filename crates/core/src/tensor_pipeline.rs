//! Tensor-field streaming convolution — Algorithm 2's inner loop as the
//! paper actually runs it.
//!
//! MASSIF convolves a symmetric rank-2 field with the rank-4 Γ̂: per
//! frequency bin, `Δε̂ = Γ̂(ξ) : σ̂(ξ)` mixes all six Voigt components. The
//! scalar pipeline would need 36 separate convolutions; this variant runs
//! the forward stages **once per component** (six slabs), applies the full
//! tensor contraction on the fly in the z stage, and streams six compressed
//! outputs — the same transform count as the paper's "9 convolutions per
//! stress component" accounting collapsed into shared passes.

// lcc-lint: hot-path — tensor z stage; only per-solve setup may allocate.

use std::sync::Arc;

use rayon::prelude::*;

use lcc_fft::{fft_2d, workspace, Complex64, FftDirection};
use lcc_greens::Sym3C;
use lcc_grid::Grid3;
use lcc_octree::{CompressedField, SamplingPlan};

use crate::pipeline::LocalConvolver;

/// A transfer operator on symmetric 3×3 tensor spectra, applied per
/// frequency bin (`lcc_greens::MassifGamma` is the canonical instance).
pub trait TensorKernelSpectrum: Send + Sync {
    /// Grid size n.
    fn n(&self) -> usize;
    /// Applies the operator at bin `f` to a symmetric complex tensor.
    fn apply(&self, f: [usize; 3], sigma: &Sym3C) -> Sym3C;
}

impl TensorKernelSpectrum for lcc_greens::MassifGamma {
    fn n(&self) -> usize {
        lcc_greens::MassifGamma::n(self)
    }
    fn apply(&self, f: [usize; 3], sigma: &Sym3C) -> Sym3C {
        lcc_greens::MassifGamma::apply(self, f, sigma)
    }
}

impl LocalConvolver {
    /// Convolves all six Voigt components of a `k³` symmetric tensor
    /// sub-domain with a tensor kernel, compressing each component under
    /// (clones of) `plan`. The forward 2D stage runs once per component;
    /// the z stage applies the full `Γ̂ : σ̂` contraction pencil-by-pencil.
    pub fn convolve_tensor_compressed(
        &self,
        sub: &[Grid3<f64>; 6],
        corner: [usize; 3],
        kernel: &dyn TensorKernelSpectrum,
        plan: Arc<SamplingPlan>,
    ) -> [CompressedField; 6] {
        let n = self.n();
        let k = self.k();
        assert_eq!(kernel.n(), n, "kernel grid mismatch");
        assert_eq!(plan.n(), n, "plan grid mismatch");
        for s in sub {
            assert_eq!(s.shape(), (k, k, k), "sub-domain components must be k³");
        }

        // Stage 1 per component: pruned 2D transforms into six slabs.
        let slabs: Vec<Vec<Complex64>> = sub
            .iter()
            .map(|component| self.forward_2d_slab(component))
            .collect();

        // Stage 2: batched z pencils; all six components share a pencil's
        // frequency bin, so the tensor contraction happens in-register.
        let retained = plan.retained_z();
        let nzr = retained.len();
        // lcc-lint: allow(alloc) — six per-solve output buffers, kept until
        // compression; not per-pencil traffic.
        let mut kept: Vec<Vec<Complex64>> =
            (0..6).map(|_| vec![Complex64::ZERO; nzr * n * n]).collect();
        let inv_n = self.plan_inverse_n();
        let pruned = self.pruned_plan();
        // Position-phase tables, cached per corner coordinate in the
        // convolver (shared with the scalar pipeline).
        let phx = self.phase_table(corner[0]);
        let phy = self.phase_table(corner[1]);
        let phz = self.phase_table(corner[2]);

        let total = n * n;
        let batch = self.batch();
        // Per-pencil output: 6 components × nzr retained values.
        // lcc-lint: allow(alloc) — one batch buffer per solve, reused across
        // all batches.
        let mut batch_out = vec![Complex64::ZERO; batch * nzr * 6];
        let mut q0 = 0;
        while q0 < total {
            let b = batch.min(total - q0);
            batch_out[..b * nzr * 6]
                .par_chunks_mut(nzr * 6)
                .enumerate()
                .for_each_init(workspace, |ws, (i, out)| {
                    let q = q0 + i;
                    let (fx, fy) = (q / n, q % n);
                    // Per-pencil buffers from the pooled workspace; each is
                    // fully written before being read.
                    let [pencils, zin, scratch] = ws.complex_bufs([6 * n, k, k]);
                    for (c, slab) in slabs.iter().enumerate() {
                        for (zloc, zi) in zin.iter_mut().enumerate() {
                            *zi = slab[zloc * n * n + q];
                        }
                        pruned.process(zin, &mut pencils[c * n..(c + 1) * n], scratch);
                    }
                    // Tensor contraction + position phase per fz.
                    let pxy = phx[fx] * phy[fy];
                    for fz in 0..n {
                        let mut sig = Sym3C::ZERO;
                        for c in 0..6 {
                            sig.c[c] = pencils[c * n + fz];
                        }
                        let d = kernel.apply([fx, fy, fz], &sig);
                        let ph = pxy * phz[fz];
                        for c in 0..6 {
                            pencils[c * n + fz] = d.c[c] * ph;
                        }
                    }
                    let s = 1.0 / n as f64;
                    for c in 0..6 {
                        inv_n.process(&mut pencils[c * n..(c + 1) * n]);
                        for (zi, &z) in retained.iter().enumerate() {
                            out[c * nzr + zi] = pencils[c * n + z] * s;
                        }
                    }
                });
            for i in 0..b {
                let q = q0 + i;
                for c in 0..6 {
                    for zi in 0..nzr {
                        kept[c][zi * n * n + q] = batch_out[(i * 6 + c) * nzr + zi];
                    }
                }
            }
            q0 += b;
        }
        drop(slabs);

        // Stage 3 per component: inverse 2D per retained plane + sampling.
        let fields: Vec<CompressedField> = kept
            .into_iter()
            .map(|mut planes| {
                planes.par_chunks_mut(n * n).for_each(|plane| {
                    fft_2d(self.planner(), plane, (n, n), FftDirection::Inverse);
                    let s = 1.0 / (n * n) as f64;
                    for v in plane.iter_mut() {
                        *v *= s;
                    }
                });
                let mut field = CompressedField::zeros(plan.clone());
                let mut ws = workspace();
                let real_plane = ws.real_buf(n * n);
                for (zi, &z) in retained.iter().enumerate() {
                    for (r, v) in real_plane
                        .iter_mut()
                        .zip(&planes[zi * n * n..(zi + 1) * n * n])
                    {
                        *r = v.re;
                    }
                    field.capture_plane(z, real_plane);
                }
                field
            })
            .collect();
        match fields.try_into() {
            Ok(six) => six,
            Err(_) => unreachable!("exactly six components"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcc_greens::MassifGamma;
    use lcc_grid::{relative_l2, BoxRegion};
    use lcc_octree::RateSchedule;

    /// Scalar view of one Γ̂ component for the reference path.
    struct GammaComp {
        gamma: MassifGamma,
        ij: (usize, usize),
        kl: (usize, usize),
    }
    impl lcc_greens::KernelSpectrum for GammaComp {
        fn n(&self) -> usize {
            self.gamma.n()
        }
        fn eval(&self, f: [usize; 3]) -> Complex64 {
            Complex64::from_real(
                self.gamma
                    .component(f, self.ij.0, self.ij.1, self.kl.0, self.kl.1),
            )
        }
    }

    #[test]
    fn tensor_pipeline_matches_componentwise_scalar_sum() {
        let n = 16;
        let k = 8;
        let corner = [4usize, 0, 8];
        let gamma = MassifGamma::new(n, 1.3, 0.8);
        let domain = BoxRegion::new(corner, [corner[0] + k, corner[1] + k, corner[2] + k]);
        let plan = Arc::new(SamplingPlan::build(n, domain, &RateSchedule::uniform(1)));
        let conv = LocalConvolver::new(n, k, 64);

        let sub: [Grid3<f64>; 6] = std::array::from_fn(|c| {
            Grid3::from_fn((k, k, k), |x, y, z| {
                ((x + 2 * y + 3 * z + c) as f64 * 0.37).sin()
            })
        });
        let tensor_out = conv.convolve_tensor_compressed(&sub, corner, &gamma, plan.clone());

        // Reference: 36 scalar convolutions with Voigt shear weights.
        let pairs = [(0usize, 0usize), (1, 1), (2, 2), (1, 2), (0, 2), (0, 1)];
        for (ci, &ij) in pairs.iter().enumerate() {
            let mut acc = vec![0.0f64; plan.total_samples()];
            for (ck, &kl) in pairs.iter().enumerate() {
                let w = if ck < 3 { 1.0 } else { 2.0 };
                let kernel = GammaComp { gamma, ij, kl };
                let f = conv.convolve_compressed(&sub[ck], corner, &kernel, plan.clone());
                for (a, s) in acc.iter_mut().zip(f.samples()) {
                    *a += w * s;
                }
            }
            let err = relative_l2(&acc, tensor_out[ci].samples());
            assert!(
                err < 1e-9,
                "component {ci}: tensor vs scalar-sum error {err}"
            );
        }
    }

    #[test]
    fn tensor_pipeline_batch_invariance() {
        let n = 8;
        let k = 4;
        let gamma = MassifGamma::new(n, 1.0, 1.0);
        let domain = BoxRegion::new([0; 3], [k; 3]);
        let plan = Arc::new(SamplingPlan::build(n, domain, &RateSchedule::uniform(1)));
        let sub: [Grid3<f64>; 6] =
            std::array::from_fn(|c| Grid3::from_fn((k, k, k), |x, y, z| (x * y + z + c) as f64));
        let a = LocalConvolver::new(n, k, 1).convolve_tensor_compressed(
            &sub,
            [0; 3],
            &gamma,
            plan.clone(),
        );
        let b =
            LocalConvolver::new(n, k, 64).convolve_tensor_compressed(&sub, [0; 3], &gamma, plan);
        for c in 0..6 {
            for (x, y) in a[c].samples().iter().zip(b[c].samples()) {
                assert!((x - y).abs() < 1e-10);
            }
        }
    }
}
