//! The streaming local convolution pipeline (paper §4, Fig. 2, Fig. 4).
//!
//! Convolves one `k³` sub-domain against the full `N³` periodic grid
//! *without ever materializing the N³ result*:
//!
//! 1. **2D stage** — each of the `k` z-slices is zero-padded from `k×k` to
//!    `N×N` implicitly: pruned-input FFTs transform only the `k` nonzero
//!    rows/columns ("zero structure is implicit in the 1D calls"). Output:
//!    an `N×N×k` slab, the paper's `8·N·N·k`-byte working set.
//! 2. **z stage** — batches of `B` pencils (the paper's batch parameter) are
//!    zero-padded `k → N` by a pruned transform, multiplied by the kernel
//!    spectrum *and* the sub-domain's position phase on the fly, inverse
//!    transformed, and immediately **compressed**: only the z-planes the
//!    octree plan retains are kept.
//! 3. **2D inverse stage** — each retained z-plane is inverse transformed
//!    and sampled into the octree's compressed storage
//!    ([`CompressedField::capture_plane`]).
//!
//! The sub-domain is presented at the origin; its true position enters as a
//! frequency-domain phase `e^{-2πi f·c/N}` folded into the pointwise
//! multiply, so the pruned transforms never see shifted data.

// lcc-lint: hot-path — pipeline stages 1-3; only per-solve setup may allocate.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;
use rayon::prelude::*;

use lcc_fft::{fft_2d, workspace, Complex64, FftDirection, FftPlanner, PrunedInputFft};
use lcc_greens::KernelSpectrum;
use lcc_grid::Grid3;
use lcc_octree::{CompressedField, SamplingPlan};

use crate::memory_model::PipelineFootprint;

/// Planned streaming convolver for `(n, k)` sub-domain convolutions.
pub struct LocalConvolver {
    n: usize,
    k: usize,
    batch: usize,
    planner: Arc<FftPlanner>,
    /// Pruned k→N forward transform shared by all three axes.
    pruned: Arc<PrunedInputFft>,
    /// Position-phase tables `e^{-2πi f·c/N}` keyed by corner coordinate
    /// `c`. The table depends only on `(n, c)`, so repeated convolves of
    /// sub-domains at recurring corners (every rank in a fixed
    /// decomposition) reuse it instead of rebuilding three `Vec`s per call.
    phase_cache: Mutex<HashMap<usize, Arc<[Complex64]>>>,
}

impl LocalConvolver {
    /// Plans the pipeline. `k` must divide `n`; `batch ≥ 1` is the number of
    /// z-pencils processed at a time (the paper's `B`).
    pub fn new(n: usize, k: usize, batch: usize) -> Self {
        assert!(k >= 1 && k <= n, "k must be in 1..=n");
        assert_eq!(n % k, 0, "k must divide n");
        assert!(batch >= 1, "batch must be at least 1");
        let planner = Arc::new(FftPlanner::new());
        let pruned = Arc::new(PrunedInputFft::new(&planner, n, k, FftDirection::Forward));
        // Warm the plan cache so timed runs measure execution only.
        planner.plan(n, FftDirection::Inverse);
        planner.plan(n, FftDirection::Forward);
        LocalConvolver {
            n,
            k,
            batch,
            planner,
            pruned,
            phase_cache: Mutex::new(HashMap::new()),
        }
    }

    /// The cached position-phase table for corner coordinate `c`:
    /// `table[f] = e^{-2πi f·c/N}`.
    pub(crate) fn phase_table(&self, c: usize) -> Arc<[Complex64]> {
        if let Some(t) = self.phase_cache.lock().get(&c) {
            return t.clone();
        }
        let n = self.n;
        let t: Arc<[Complex64]> = (0..n)
            .map(|f| Complex64::cis(-2.0 * std::f64::consts::PI * ((f * c) % n) as f64 / n as f64))
            .collect();
        // Built outside the lock; a racing builder's identical table wins.
        self.phase_cache.lock().entry(c).or_insert(t).clone()
    }

    /// Grid size N.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Sub-domain size k.
    pub fn k(&self) -> usize {
        self.k
    }

    /// z-stage batch size B.
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// The shared dense planner (used by the tensor-field variant).
    pub(crate) fn planner(&self) -> &FftPlanner {
        &self.planner
    }

    /// The shared pruned k→N forward plan.
    pub(crate) fn pruned_plan(&self) -> &PrunedInputFft {
        &self.pruned
    }

    /// The cached full-length inverse plan.
    pub(crate) fn plan_inverse_n(&self) -> lcc_fft::FftPlan {
        self.planner.plan(self.n, FftDirection::Inverse)
    }

    /// Stage 1 of the pipeline: pruned 2D transforms of a k³ sub-domain
    /// into the `(zloc, fx, fy)` slab (k contiguous N² planes). `slab` must
    /// have length `k·n²`; every element is overwritten.
    pub(crate) fn forward_2d_slab_into(&self, sub: &Grid3<f64>, slab: &mut [Complex64]) {
        let (n, k) = (self.n, self.k);
        assert_eq!(sub.shape(), (k, k, k), "sub-domain must be k³");
        assert_eq!(slab.len(), k * n * n, "slab must be k·n² planes");
        slab.par_chunks_mut(n * n)
            .enumerate()
            .for_each_init(workspace, |ws, (zloc, plane)| {
                // All five buffers are fully written before being read:
                // row_in/col_in per inner loop, rows/col_out as pruned
                // transform outputs, scratch inside `process`.
                let [scratch, row_in, rows, col_in, col_out] = ws.complex_bufs([k, k, k * n, k, n]);
                // y transforms: k nonzero rows, each with k nonzero entries.
                for x in 0..k {
                    for y in 0..k {
                        row_in[y] = Complex64::from_real(sub[(x, y, zloc)]);
                    }
                    self.pruned
                        .process(row_in, &mut rows[x * n..(x + 1) * n], scratch);
                }
                // x transforms: every fy column has k nonzero entries (x<k).
                for fy in 0..n {
                    for x in 0..k {
                        col_in[x] = rows[x * n + fy];
                    }
                    self.pruned.process(col_in, col_out, scratch);
                    for fx in 0..n {
                        plane[fx * n + fy] = col_out[fx];
                    }
                }
            });
    }

    /// Allocating wrapper around [`Self::forward_2d_slab_into`] (used by the
    /// tensor-field variant, which owns its slabs).
    pub(crate) fn forward_2d_slab(&self, sub: &Grid3<f64>) -> Vec<Complex64> {
        // lcc-lint: allow(alloc) — one slab per solve, owned by the caller.
        let mut slab = vec![Complex64::ZERO; self.k * self.n * self.n];
        self.forward_2d_slab_into(sub, &mut slab);
        slab
    }

    /// Convolves sub-domain `sub` (shape `k³`, positioned with its low
    /// corner at `corner` in the periodic `N³` grid) with `kernel`,
    /// compressing the result under `plan`.
    pub fn convolve_compressed(
        &self,
        sub: &Grid3<f64>,
        corner: [usize; 3],
        kernel: &dyn KernelSpectrum,
        plan: Arc<SamplingPlan>,
    ) -> CompressedField {
        let (n, k) = (self.n, self.k);
        assert_eq!(sub.shape(), (k, k, k), "sub-domain must be k³");
        assert_eq!(kernel.n(), n, "kernel grid mismatch");
        assert_eq!(plan.n(), n, "plan grid mismatch");
        assert!(
            corner.iter().all(|&c| c < n),
            "corner must lie inside the grid"
        );

        let retained = plan.retained_z();
        let nzr = retained.len();

        // Call-level arena: the slab, the retained-plane buffer, the batch
        // staging buffer and the stage-3 real plane all come from one pooled
        // workspace, so a warm convolve allocates nothing for them. Each is
        // fully overwritten before it is read (slab by stage 1, kept by the
        // batch scatter over every (plane, pencil), batch_out by each batch,
        // real_plane per plane).
        let mut ws = workspace();
        let ([slab, kept, batch_out], real_plane) =
            ws.split([k * n * n, nzr * n * n, self.batch * nzr], n * n);

        // ---- Stage 1: 2D pruned transforms into the N×N×k slab. ----
        // Slab layout: (zloc, fx, fy), each z-slice a contiguous N² plane.
        let s1 = lcc_obs::span("stage1_2d_fft");
        self.forward_2d_slab_into(sub, slab);
        drop(s1);
        let slab: &[Complex64] = slab;

        // ---- Stage 2: batched z pencils with on-the-fly multiply and
        //      compression to retained z-planes. ----
        let inv_n = self.planner.plan(n, FftDirection::Inverse);
        // Phase of the sub-domain position: e^{-2πi f·c / N} per axis,
        // cached across calls (it depends only on the corner coordinate).
        let phx = self.phase_table(corner[0]);
        let phy = self.phase_table(corner[1]);
        let phz = self.phase_table(corner[2]);

        let total_pencils = n * n;
        let s2 = lcc_obs::span("stage2_z_pencils");
        lcc_obs::metrics::PIPELINE_PENCILS.add(total_pencils as u64);
        let mut q0 = 0;
        while q0 < total_pencils {
            let b = self.batch.min(total_pencils - q0);
            batch_out[..b * nzr]
                .par_chunks_mut(nzr)
                .enumerate()
                .for_each_init(workspace, |pws, (i, out)| {
                    let q = q0 + i;
                    let (fx, fy) = (q / n, q % n);
                    // Per-pencil buffers from the per-participant workspace:
                    // zin/kbuf are fully written below, pencil and scratch
                    // inside the pruned transform.
                    let [zin, pencil, scratch, kbuf] = pws.complex_bufs([k, n, k, n]);
                    for (zloc, zi) in zin.iter_mut().enumerate() {
                        *zi = slab[zloc * n * n + q];
                    }
                    self.pruned.process(zin, pencil, scratch);
                    // Pointwise: kernel × position phase, evaluated on the fly.
                    kernel.eval_pencil_axis2(fx, fy, kbuf);
                    let pxy = phx[fx] * phy[fy];
                    for fz in 0..n {
                        pencil[fz] *= kbuf[fz] * (pxy * phz[fz]);
                    }
                    inv_n.process(pencil);
                    let s = 1.0 / n as f64;
                    for (o, &z) in out.iter_mut().zip(retained.iter()) {
                        *o = pencil[z] * s;
                    }
                });
            // Scatter the batch into the retained-plane buffer.
            for i in 0..b {
                let q = q0 + i;
                for (zi, _) in retained.iter().enumerate() {
                    kept[zi * n * n + q] = batch_out[i * nzr + zi];
                }
            }
            q0 += b;
        }
        drop(s2);

        // ---- Stage 3: inverse 2D per retained plane + octree sampling. ----
        let s3 = lcc_obs::span("stage3_inverse_sample");
        kept.par_chunks_mut(n * n).for_each(|plane| {
            fft_2d(&self.planner, plane, (n, n), FftDirection::Inverse);
            let s = 1.0 / (n * n) as f64;
            for v in plane.iter_mut() {
                *v *= s;
            }
        });
        let mut field = CompressedField::zeros(plan);
        for (zi, &z) in retained.iter().enumerate() {
            let plane = &kept[zi * n * n..(zi + 1) * n * n];
            for (r, v) in real_plane.iter_mut().zip(plane.iter()) {
                *r = v.re;
            }
            field.capture_plane(z, real_plane);
        }
        drop(s3);
        field
    }

    /// Modeled flop count of one [`LocalConvolver::convolve_compressed`]
    /// call under `plan`, using the standard `5·N·log₂N` per-transform
    /// count ([`lcc_device::fft_flops`]):
    ///
    /// * stage 1 — per z-slice, `k` pruned row FFTs + `n` column FFTs,
    ///   each length `n`, over `k` slices;
    /// * stage 2 — `n²` pencils, each a pruned forward + a dense inverse
    ///   length-`n` FFT plus the 6-flop complex pointwise multiply per bin;
    /// * stage 3 — one inverse 2D FFT (`2n` length-`n` transforms) per
    ///   retained z-plane.
    ///
    /// This is the unit the recovery accounting uses to price an exact
    /// recompute of a dead rank's domain.
    pub fn flops_estimate(&self, plan: &SamplingPlan) -> f64 {
        let (n, k) = (self.n, self.k);
        let retained = plan.retained_z().len();
        let stage1 = lcc_device::fft_flops(n, k * (k + n));
        let stage2 = lcc_device::fft_flops(n, 2 * n * n) + 6.0 * (n * n * n) as f64;
        let stage3 = lcc_device::fft_flops(n, retained * 2 * n);
        stage1 + stage2 + stage3
    }

    /// Modeled main-memory traffic (bytes) of one
    /// [`LocalConvolver::convolve_compressed`] call under `plan`, the
    /// denominator of the roofline arithmetic-intensity estimate
    /// (`flops_estimate / bytes_estimate`).
    ///
    /// Streaming model, mirroring [`Self::flops_estimate`] pass for pass:
    /// each batched transform pass streams its working set through the
    /// core once — a 16-byte `Complex64` read plus write per element per
    /// pass (32 B) — and each transform itself runs from cache (pencils
    /// fit L2 by construction of the batch tiling). The stage-2 pointwise
    /// kernel multiply streams one extra read+write pass over the `n³`
    /// spectrum. Compulsory traffic only: extra write-allocate fills and
    /// conflict misses make the real number higher, which biases
    /// `roofline_frac` conservative (reported fraction ≤ true fraction).
    pub fn bytes_estimate(&self, plan: &SamplingPlan) -> f64 {
        /// Complex64 read + write per element per streaming pass.
        const PASS_BYTES: f64 = 32.0;
        let (n, k) = (self.n, self.k);
        let retained = plan.retained_z().len();
        let fft_bytes = |len: usize, batch: usize| PASS_BYTES * (len * batch) as f64;
        let stage1 = fft_bytes(n, k * (k + n));
        let stage2 = fft_bytes(n, 2 * n * n) + PASS_BYTES * (n * n * n) as f64;
        let stage3 = fft_bytes(n, retained * 2 * n);
        stage1 + stage2 + stage3
    }

    /// The device-footprint model for this pipeline under `plan`
    /// (Table 4's "estimated" vs "actual" columns).
    pub fn footprint(&self, plan: &SamplingPlan) -> PipelineFootprint {
        PipelineFootprint::model(
            self.n,
            self.k,
            plan.retained_z().len(),
            self.batch,
            plan.compressed_bytes() as u64,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traditional::TraditionalConvolver;
    use lcc_greens::GaussianKernel;
    use lcc_grid::{relative_l2, BoxRegion};
    use lcc_octree::RateSchedule;

    fn sub_field(k: usize) -> Grid3<f64> {
        Grid3::from_fn((k, k, k), |x, y, z| {
            1.0 + (x as f64 * 0.8).sin() + 0.5 * (y as f64) - 0.1 * (z * z) as f64
        })
    }

    fn dense_plan(n: usize, domain: BoxRegion) -> Arc<SamplingPlan> {
        // Rate-1 everywhere: compression is lossless, so the pipeline must
        // match the dense oracle to round-off.
        Arc::new(SamplingPlan::build(n, domain, &RateSchedule::uniform(1)))
    }

    #[test]
    fn lossless_plan_matches_traditional_oracle() {
        let n = 16;
        let k = 4;
        let corner = [4usize, 8, 0];
        let kernel = GaussianKernel::new(n, 1.2);
        let sub = sub_field(k);
        let domain = BoxRegion::new(corner, [corner[0] + k, corner[1] + k, corner[2] + k]);
        let conv = LocalConvolver::new(n, k, 7);
        let got = conv
            .convolve_compressed(&sub, corner, &kernel, dense_plan(n, domain))
            .reconstruct();
        let want = TraditionalConvolver::new(n).convolve_subdomain(&sub, corner, &kernel);
        let err = relative_l2(want.as_slice(), got.as_slice());
        assert!(err < 1e-10, "lossless pipeline error {err}");
    }

    #[test]
    fn corner_at_origin_and_wrapping() {
        // Sub-domain at the origin and one that makes the decay wrap around
        // the periodic boundary.
        let n = 16;
        let k = 4;
        let kernel = GaussianKernel::new(n, 1.0);
        let sub = sub_field(k);
        for corner in [[0usize, 0, 0], [12, 12, 12]] {
            let domain = BoxRegion::new(corner, [corner[0] + k, corner[1] + k, corner[2] + k]);
            let conv = LocalConvolver::new(n, k, 16);
            let got = conv
                .convolve_compressed(&sub, corner, &kernel, dense_plan(n, domain))
                .reconstruct();
            let want = TraditionalConvolver::new(n).convolve_subdomain(&sub, corner, &kernel);
            let err = relative_l2(want.as_slice(), got.as_slice());
            assert!(err < 1e-10, "corner {corner:?} error {err}");
        }
    }

    #[test]
    fn batch_size_does_not_change_result() {
        let n = 16;
        let k = 4;
        let corner = [4usize, 4, 4];
        let kernel = GaussianKernel::new(n, 1.0);
        let sub = sub_field(k);
        let domain = BoxRegion::new(corner, [8, 8, 8]);
        let plan = dense_plan(n, domain);
        let base =
            LocalConvolver::new(n, k, 1).convolve_compressed(&sub, corner, &kernel, plan.clone());
        for b in [3, 64, 256, 1024] {
            let other = LocalConvolver::new(n, k, b).convolve_compressed(
                &sub,
                corner,
                &kernel,
                plan.clone(),
            );
            let err = relative_l2(base.samples(), other.samples());
            assert!(err < 1e-12, "batch {b} changed the result: {err}");
        }
    }

    #[test]
    fn work_estimates_are_consistent() {
        let n = 16;
        let k = 4;
        let corner = [4usize, 8, 0];
        let domain = BoxRegion::new(corner, [corner[0] + k, corner[1] + k, corner[2] + k]);
        let plan = dense_plan(n, domain);
        let conv = LocalConvolver::new(n, k, 7);
        let flops = conv.flops_estimate(&plan);
        let bytes = conv.bytes_estimate(&plan);
        assert!(flops > 0.0 && bytes > 0.0);
        // Arithmetic intensity of an FFT pipeline is O(log n) flops/byte:
        // small but solidly above 1 for these sizes, and far below the
        // flop count itself.
        let intensity = flops / bytes;
        assert!(
            intensity > 0.1 && intensity < (n as f64).log2(),
            "implausible intensity {intensity}"
        );
        // Fewer retained planes → strictly less stage-3 work in both units.
        let sparse = Arc::new(SamplingPlan::build(
            n,
            BoxRegion::new(corner, [corner[0] + k, corner[1] + k, corner[2] + k]),
            &RateSchedule::uniform(4),
        ));
        assert!(conv.flops_estimate(&sparse) < flops);
        assert!(conv.bytes_estimate(&sparse) < bytes);
    }

    #[test]
    fn adaptive_plan_error_within_tolerance() {
        // The paper's end-to-end claim: adaptive compression keeps the
        // relative L2 error of the sub-domain convolution ≤ 3%.
        let n = 32;
        let k = 8;
        let corner = [0usize, 0, 0];
        let kernel = GaussianKernel::new(n, 1.0); // sharp: decays within k/2
        let sub = sub_field(k);
        // The kernel is centered at n/2, so the hotspot region — where the
        // octree must sample densely — is the sub-domain shifted by n/2.
        let domain = BoxRegion::new([n / 2; 3], [n / 2 + k; 3]);
        let schedule = RateSchedule::for_kernel_spread(k, 1.0, 16);
        let plan = Arc::new(SamplingPlan::build(n, domain, &schedule));
        let conv = LocalConvolver::new(n, k, 64);
        let got = conv
            .convolve_compressed(&sub, corner, &kernel, plan)
            .reconstruct();
        let want = TraditionalConvolver::new(n).convolve_subdomain(&sub, corner, &kernel);
        let err = relative_l2(want.as_slice(), got.as_slice());
        assert!(err < 0.03, "adaptive error {err} exceeds the paper's 3%");
    }

    #[test]
    fn k_equals_n_degenerates_to_full_grid() {
        let n = 8;
        let kernel = GaussianKernel::new(n, 1.0);
        let sub = sub_field(n);
        let domain = BoxRegion::cube(n);
        let conv = LocalConvolver::new(n, n, 16);
        let got = conv
            .convolve_compressed(&sub, [0, 0, 0], &kernel, dense_plan(n, domain))
            .reconstruct();
        let want = TraditionalConvolver::new(n).convolve(&sub, &kernel);
        let err = relative_l2(want.as_slice(), got.as_slice());
        assert!(err < 1e-10, "k=n error {err}");
    }

    #[test]
    fn footprint_reports_slab_model() {
        let n = 64;
        let k = 8;
        let conv = LocalConvolver::new(n, k, 128);
        let domain = BoxRegion::new([0; 3], [k; 3]);
        let plan = SamplingPlan::build(n, domain, &RateSchedule::paper_default(k, 16));
        let fp = conv.footprint(&plan);
        assert_eq!(fp.slab_bytes, 16 * (n as u64) * (n as u64) * (k as u64));
        assert!(
            fp.estimated_bytes() < 16 * (n as u64).pow(3),
            "must beat dense"
        );
        assert!(fp.actual_bytes() > fp.estimated_bytes());
    }

    #[test]
    #[should_panic(expected = "k must divide n")]
    fn invalid_k_rejected() {
        LocalConvolver::new(10, 3, 1);
    }
}
