//! # lcc-core — low-communication approximate 3D convolution
//!
//! Rust reproduction of the method of *"A framework for low communication
//! approaches for large scale 3D convolution"* (Kulkarni, Kovačević,
//! Franchetti; ICPP Workshops 2022):
//!
//! 1. **Domain decomposition** (`lcc-grid`): the N³ input splits into k³
//!    sub-domains.
//! 2. **Local pruned-FFT convolution with compression**
//!    ([`pipeline::LocalConvolver`]): each sub-domain is convolved against
//!    the full periodic grid through an N×N×k streaming slab; the kernel is
//!    evaluated on the fly and the inverse stages feed straight into
//!    octree-sampled storage, so the N³ result never materializes.
//! 3. **Octree multi-resolution sampling** (`lcc-octree`): dense where the
//!    decaying Green's-function response lives, sparse elsewhere.
//! 4. **Single accumulation + interpolation**
//!    ([`lowcomm::LowCommConvolver::accumulate`]): the only step where data
//!    crosses workers — compressed samples, once.
//!
//! [`traditional::TraditionalConvolver`] is the dense baseline the paper
//! compares against, and [`memory_model`] holds the Table 1/2/4 footprint
//! math.
//!
//! ## Quick example
//!
//! ```
//! use lcc_core::prelude::*;
//!
//! let n = 16;
//! let cfg = LowCommConfig::builder().n(n).k(4).far_rate(8).build().unwrap();
//! let conv = LowCommConvolver::try_new(cfg).unwrap();
//! let kernel = GaussianKernel::new(n, 1.0);
//! let input = Grid3::from_fn((n, n, n), |x, y, z| (x + y + z) as f64);
//! let (result, report) = conv.session(ConvolveMode::Normal).convolve(&input, &kernel);
//! assert_eq!(result.shape(), (n, n, n));
//! assert!(report.exchange_bytes > 0);
//! ```

pub mod adaptive;
pub mod config;
pub mod lowcomm;
pub mod memory_model;
pub mod pipeline;
pub mod prelude;
pub mod recovery;
pub mod session;
pub mod tensor_pipeline;
pub mod traditional;

pub use adaptive::AdaptiveConvolver;
pub use config::{ConfigError, LowCommConfigBuilder};
pub use lowcomm::{ConvolveReport, LowCommConfig, LowCommConvolver, RunReport};
pub use memory_model::{
    allowable_k, domains_per_device, local_slab_bytes, table1_rows, traditional_bytes,
    traditional_fits, PipelineFootprint, Table1Row, TABLE1_CASES,
};
pub use pipeline::LocalConvolver;
pub use recovery::{DomainClaim, RecoveryPlan, RecoveryPlanner, RecoveryPolicy};
pub use session::{ConvolveMode, ConvolveSession};
pub use tensor_pipeline::TensorKernelSpectrum;
pub use traditional::TraditionalConvolver;
