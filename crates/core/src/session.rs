//! The unified convolve entry point.
//!
//! Historically the convolver grew six near-duplicate methods
//! (`compress_domains` / `compress_domain_degraded` / `compress_domain_exact`,
//! `accumulate` / `accumulate_degraded` / `accumulate_with_recovery`) as the
//! fault-tolerance work landed. A [`ConvolveSession`] collapses them behind
//! one surface: the caller states *how the run should treat missing domains*
//! once — via [`ConvolveMode`] — and every compress/accumulate call
//! dispatches on it. The session also carries an optional
//! [`lcc_obs::ObsSession`], so wrapping a run in tracing is one extra call
//! rather than bench-specific plumbing.
//!
//! ```
//! use lcc_core::prelude::*;
//!
//! let n = 16;
//! let cfg = LowCommConfig::builder().n(n).k(4).far_rate(8).build().unwrap();
//! let conv = LowCommConvolver::try_new(cfg).unwrap();
//! let kernel = GaussianKernel::new(n, 1.0);
//! let input = Grid3::from_fn((n, n, n), |x, y, z| (x + y + z) as f64);
//! let session = conv.session(ConvolveMode::Normal);
//! let (result, report) = session.convolve(&input, &kernel);
//! assert_eq!(result.shape(), (n, n, n));
//! assert!(report.exchange_bytes > 0);
//! ```

use std::collections::BTreeMap;

use lcc_greens::KernelSpectrum;
use lcc_grid::{BoxRegion, Grid3};
use lcc_obs::metrics as obs;
use lcc_octree::CompressedField;

use crate::lowcomm::{ConvolveReport, LowCommConvolver};
use crate::recovery::RecoveryPolicy;

/// How a convolve run treats domains whose owning rank is gone.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ConvolveMode {
    /// Fault-free run: every domain compressed exactly; accumulation
    /// expects no orphans.
    Normal,
    /// Graceful degradation: orphaned domains are rebuilt locally at the
    /// schedule's *coarsest* uniform rate — availability over accuracy.
    /// [`ConvolveSession::compress_domain`] also compresses at the coarse
    /// rate in this mode (a survivor producing an emergency contribution).
    Degraded,
    /// Self-healing: claimants recompute orphans *exactly* under the given
    /// policy; orphans nobody claimed fall back to the degraded rebuild.
    /// The report charges the recomputation's modeled flops and bytes.
    Recover(RecoveryPolicy),
}

impl ConvolveMode {
    /// Short name for logs and bench tables.
    pub fn name(&self) -> &'static str {
        match self {
            ConvolveMode::Normal => "normal",
            ConvolveMode::Degraded => "degraded",
            ConvolveMode::Recover(_) => "recover",
        }
    }
}

/// One convolve run's entry point: mode-dispatched compression and
/// accumulation plus an optional observability session. Construct via
/// [`LowCommConvolver::session`].
pub struct ConvolveSession<'a> {
    conv: &'a LowCommConvolver,
    mode: ConvolveMode,
    obs: Option<lcc_obs::ObsSession>,
}

impl<'a> ConvolveSession<'a> {
    pub(crate) fn new(conv: &'a LowCommConvolver, mode: ConvolveMode) -> Self {
        ConvolveSession {
            conv,
            mode,
            obs: None,
        }
    }

    /// Attaches an [`lcc_obs::ObsSession`] so spans and counters are
    /// collected for the lifetime of this session. A no-op (with a visible
    /// `false` from [`Self::observing`]) when another session already holds
    /// the global collector.
    pub fn with_observability(mut self) -> Self {
        self.obs = lcc_obs::ObsSession::start();
        self
    }

    /// Whether this session holds the observability collector.
    pub fn observing(&self) -> bool {
        self.obs.is_some()
    }

    /// The mode this session dispatches on.
    pub fn mode(&self) -> ConvolveMode {
        self.mode
    }

    /// The underlying convolver.
    pub fn convolver(&self) -> &LowCommConvolver {
        self.conv
    }

    /// Compresses every (nonzero) sub-domain of `input` exactly — the
    /// local-computation phase that replaces the distributed FFT. Identical
    /// in every mode: degradation and recovery only concern *missing*
    /// contributions, never the ones a live rank computes for itself.
    pub fn compress_domains(
        &self,
        input: &Grid3<f64>,
        kernel: &dyn KernelSpectrum,
    ) -> (Vec<CompressedField>, ConvolveReport) {
        let _sp = lcc_obs::span("session_compress_domains");
        self.conv.compress_domains_impl(input, kernel)
    }

    /// Compresses one sub-domain's contribution, dispatching on the mode:
    /// exact (memoized schedule plan) in `Normal` and `Recover`, the
    /// coarsest uniform rate in `Degraded`. Returns `None` for
    /// identically-zero domains.
    pub fn compress_domain(
        &self,
        input: &Grid3<f64>,
        domain: &BoxRegion,
        kernel: &dyn KernelSpectrum,
    ) -> Option<CompressedField> {
        let _sp = lcc_obs::span("session_compress_domain");
        let degraded = matches!(self.mode, ConvolveMode::Degraded);
        let f = self
            .conv
            .compress_domain_impl(input, domain, kernel, degraded);
        match &f {
            Some(_) => {
                obs::CONVOLVE_DOMAINS_PROCESSED.incr();
                if degraded {
                    obs::CONVOLVE_DOMAINS_DEGRADED.incr();
                }
            }
            None => obs::CONVOLVE_DOMAINS_SKIPPED.incr(),
        }
        f
    }

    /// Plain accumulation: sums the given contributions in slice order into
    /// the dense result. No orphan handling — use [`Self::accumulate`] when
    /// ranks may be missing.
    pub fn accumulate_fields(&self, fields: &[CompressedField]) -> Grid3<f64> {
        let _sp = lcc_obs::span("session_accumulate");
        self.conv.accumulate_impl(fields)
    }

    /// Mode-aware accumulation + interpolation — the single exchange's fold.
    ///
    /// `contributions` maps global domain id → compressed field; the fold
    /// runs in **ascending domain-id order**, the one order every rank can
    /// reproduce regardless of who computed what. `orphans` lists the
    /// domains whose original owner is gone, with their regions:
    ///
    /// * an orphan **present** in `contributions` was recomputed exactly by
    ///   a claimant — in `Recover` mode its modeled flop/byte cost is
    ///   charged to the report as recovery overhead;
    /// * an orphan **absent** from `contributions` is rebuilt locally at
    ///   the coarsest rate and reported as degraded (`Normal` mode asserts
    ///   there are no orphans at all).
    pub fn accumulate(
        &self,
        contributions: &BTreeMap<usize, CompressedField>,
        input: &Grid3<f64>,
        kernel: &dyn KernelSpectrum,
        orphans: &[(usize, BoxRegion)],
    ) -> (Grid3<f64>, ConvolveReport) {
        let _sp = lcc_obs::span("session_accumulate");
        if matches!(self.mode, ConvolveMode::Normal) {
            assert!(
                orphans.is_empty(),
                "orphaned domains in Normal mode; use Degraded or Recover"
            );
        }
        let count_recovered = matches!(self.mode, ConvolveMode::Recover(_));
        let (recovered, degraded): (Vec<_>, Vec<_>) = orphans
            .iter()
            .partition(|(id, _)| contributions.contains_key(id));
        let recovered: Vec<usize> = if count_recovered {
            recovered.into_iter().map(|(id, _)| id).collect()
        } else {
            Vec::new()
        };
        self.conv
            .accumulate_map_impl(contributions, input, kernel, &recovered, &degraded)
    }

    /// Full fault-free pipeline: compress every sub-domain, then
    /// accumulate. Bit-identical to the legacy
    /// [`LowCommConvolver::convolve`] fold.
    pub fn convolve(
        &self,
        input: &Grid3<f64>,
        kernel: &dyn KernelSpectrum,
    ) -> (Grid3<f64>, ConvolveReport) {
        let _sp = lcc_obs::span("session_convolve");
        let (fields, report) = self.conv.compress_domains_impl(input, kernel);
        (self.conv.accumulate_impl(&fields), report)
    }

    /// Ends the session, returning the observability report when this
    /// session held the collector.
    pub fn finish(mut self) -> Option<lcc_obs::ObsReport> {
        self.obs.take().map(|s| s.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lowcomm::LowCommConfig;
    use lcc_greens::GaussianKernel;
    use lcc_octree::RateSchedule;

    fn smooth_input(n: usize) -> Grid3<f64> {
        Grid3::from_fn((n, n, n), |x, y, z| {
            ((x as f64 * 0.4).sin() + (y as f64 * 0.25).cos()) * (1.0 + z as f64 * 0.05)
        })
    }

    #[test]
    fn normal_session_matches_legacy_convolve_bitwise() {
        let n = 16;
        let conv = LowCommConvolver::new(LowCommConfig::paper_default(n, 4, 8));
        let kernel = GaussianKernel::new(n, 1.0);
        let input = smooth_input(n);
        let (legacy, legacy_report) = conv.convolve(&input, &kernel);
        let session = conv.session(ConvolveMode::Normal);
        let (got, report) = session.convolve(&input, &kernel);
        assert_eq!(
            legacy.as_slice(),
            got.as_slice(),
            "session must be bit-identical"
        );
        assert_eq!(legacy_report.domains_processed, report.domains_processed);
        assert_eq!(legacy_report.exchange_bytes, report.exchange_bytes);
    }

    #[test]
    fn degraded_session_rebuilds_absent_orphans() {
        let n = 16;
        let k = 4;
        let conv = LowCommConvolver::new(LowCommConfig {
            n,
            k,
            batch: 64,
            schedule: RateSchedule::for_kernel_spread(k, 1.0, 8),
        });
        let kernel = GaussianKernel::new(n, 1.0);
        let input = smooth_input(n);
        let session = conv.session(ConvolveMode::Degraded);
        let (fields, _) = session.compress_domains(&input, &kernel);
        let domains = lcc_grid::decompose_uniform(n, k);
        // Drop the first two domains' contributions, as if their rank died.
        let mut contribs: BTreeMap<usize, CompressedField> = BTreeMap::new();
        for (id, f) in fields.into_iter().enumerate().skip(2) {
            contribs.insert(id, f);
        }
        let orphans = [(0usize, domains[0]), (1usize, domains[1])];
        let (_, report) = session.accumulate(&contribs, &input, &kernel, &orphans);
        assert_eq!(report.degraded_domains, 2);
        assert_eq!(report.degraded_rate, Some(conv.coarsest_rate()));
        assert_eq!(report.recovered_domains, 0);
    }

    #[test]
    fn recover_session_charges_present_orphans() {
        let n = 16;
        let k = 8;
        let conv = LowCommConvolver::new(LowCommConfig::paper_default(n, k, 8));
        let kernel = GaussianKernel::new(n, 1.0);
        let input = smooth_input(n);
        let session = conv.session(ConvolveMode::Recover(RecoveryPolicy::Hybrid));
        let domains = lcc_grid::decompose_uniform(n, k);
        let mut contribs = BTreeMap::new();
        for (id, d) in domains.iter().enumerate() {
            if let Some(f) = session.compress_domain(&input, d, &kernel) {
                contribs.insert(id, f);
            }
        }
        // Domain 0's owner died; a claimant recomputed it (it is present).
        let orphans = [(0usize, domains[0])];
        let (got, report) = session.accumulate(&contribs, &input, &kernel, &orphans);
        assert_eq!(report.recovered_domains, 1);
        assert!(report.recovery_extra_flops > 0.0);
        assert!(report.recovery_extra_bytes > 0);
        assert_eq!(report.degraded_domains, 0);
        // Recovery accounting must not change the field itself.
        let clean_session = conv.session(ConvolveMode::Normal);
        let (clean, _) = clean_session.accumulate(&contribs, &input, &kernel, &[]);
        assert_eq!(clean.as_slice(), got.as_slice());
    }

    #[test]
    #[should_panic(expected = "orphaned domains in Normal mode")]
    fn normal_mode_rejects_orphans() {
        let n = 16;
        let conv = LowCommConvolver::new(LowCommConfig::paper_default(n, 8, 8));
        let kernel = GaussianKernel::new(n, 1.0);
        let input = smooth_input(n);
        let session = conv.session(ConvolveMode::Normal);
        let orphans = [(0usize, lcc_grid::BoxRegion::new([0; 3], [8; 3]))];
        let _ = session.accumulate(&BTreeMap::new(), &input, &kernel, &orphans);
    }

    #[test]
    fn session_with_observability_reports_spans() {
        let n = 16;
        let conv = LowCommConvolver::new(LowCommConfig::paper_default(n, 4, 8));
        let kernel = GaussianKernel::new(n, 1.0);
        let input = smooth_input(n);
        let session = conv.session(ConvolveMode::Normal).with_observability();
        let (with_obs, _) = session.convolve(&input, &kernel);
        if let Some(report) = session.finish() {
            // The stage spans of every processed domain were collected.
            assert!(report.span_count("session_convolve") >= 1);
            assert!(report.span_count("stage1_2d_fft") >= 1);
            assert!(report.counter("convolve.domains_processed").is_some());
        }
        // Observability must not perturb the numerics.
        let plain = conv.session(ConvolveMode::Normal);
        let (without, _) = plain.convolve(&input, &kernel);
        assert_eq!(with_obs.as_slice(), without.as_slice());
    }
}
