//! One-stop imports for the common workflow, so examples and downstream
//! code stop importing from five crates:
//!
//! ```
//! use lcc_core::prelude::*;
//!
//! let cfg = LowCommConfig::builder().n(16).k(4).far_rate(8).build().unwrap();
//! let conv = LowCommConvolver::try_new(cfg).unwrap();
//! let kernel = GaussianKernel::new(16, 1.0);
//! let input = Grid3::from_fn((16, 16, 16), |x, _, _| x as f64);
//! let (result, _report) = conv.session(ConvolveMode::Normal).convolve(&input, &kernel);
//! assert_eq!(result.shape(), (16, 16, 16));
//! ```

pub use crate::config::{ConfigError, LowCommConfigBuilder};
pub use crate::lowcomm::{ConvolveReport, LowCommConfig, LowCommConvolver, RunReport};
pub use crate::pipeline::LocalConvolver;
pub use crate::recovery::{RecoveryPlanner, RecoveryPolicy};
pub use crate::session::{ConvolveMode, ConvolveSession};
pub use crate::traditional::TraditionalConvolver;

pub use lcc_greens::{GaussianKernel, KernelSpectrum};
pub use lcc_grid::{decompose_uniform, relative_l2, BoxRegion, Grid3};
pub use lcc_octree::{CompressedField, PlanCache, RateSchedule, SamplingPlan};

pub use lcc_obs::{ObsReport, ObsSession};
