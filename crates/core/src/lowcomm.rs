//! The full low-communication convolution: decomposition → local compressed
//! convolutions → single accumulation-and-interpolation step (paper §3.1,
//! Algorithm 2's convolution core).
//!
//! "Unlike traditional methods, the FFT is not computed in parallel. Rather,
//! the entire convolution pipeline is parallelized using domain
//! decomposition and local computing." Each sub-domain's contribution is an
//! independent task; by linearity their reconstructions sum to the (cyclic)
//! convolution of the whole input. Only compressed samples would cross the
//! network — [`ConvolveReport`] records exactly how many bytes that is.
//!
//! When ranks die mid-deployment the pipeline degrades instead of failing:
//! survivors recompute the missing domains' contributions at the schedule's
//! *coarsest* rate (cheap, low-resolution) so availability is preserved and
//! only accuracy suffers — open a [`ConvolveSession`] in
//! [`ConvolveMode::Degraded`] and let [`ConvolveSession::accumulate`]
//! rebuild the orphans.

use std::collections::BTreeMap;
use std::sync::Arc;

use rayon::prelude::*;

use lcc_greens::KernelSpectrum;
use lcc_grid::{decompose_uniform, BoxRegion, Grid3};
use lcc_obs::metrics as obs;
use lcc_octree::{CompressedField, PlanCache, RateSchedule, SamplingPlan};

use crate::config::ConfigError;
use crate::pipeline::LocalConvolver;
use crate::session::{ConvolveMode, ConvolveSession};

/// Configuration of a low-communication convolution.
#[derive(Clone, Debug)]
pub struct LowCommConfig {
    /// Grid size N (power of two).
    pub n: usize,
    /// Sub-domain size k (divides N).
    pub k: usize,
    /// z-stage batch size B.
    pub batch: usize,
    /// The adaptive sampling schedule applied around each sub-domain.
    pub schedule: RateSchedule,
}

impl LowCommConfig {
    /// Paper-default configuration: the §5.4 heuristic schedule.
    pub fn paper_default(n: usize, k: usize, far_rate: u32) -> Self {
        LowCommConfig {
            n,
            k,
            batch: 1024.min(n * n),
            schedule: RateSchedule::paper_default(k, far_rate),
        }
    }
}

/// Per-run accounting: what a distributed deployment would communicate,
/// and how much of the result had to be reconstructed in degraded mode.
#[derive(Clone, Debug, Default)]
pub struct ConvolveReport {
    /// Number of sub-domains processed (zero-skipped ones excluded).
    pub domains_processed: usize,
    /// Sub-domains skipped because their input was identically zero —
    /// the "zero regions" property the paper lists as exploitable.
    pub domains_skipped: usize,
    /// Total compressed samples across all processed domains.
    pub total_samples: usize,
    /// Total bytes the single accumulation exchange would move.
    pub exchange_bytes: usize,
    /// Dense bytes the traditional approach would have exchanged per FFT
    /// stage (N³ points, 16 B), for comparison.
    pub dense_stage_bytes: usize,
    /// Sub-domains whose owning rank died and whose contribution was
    /// recomputed by survivors at the coarsest rate.
    pub degraded_domains: usize,
    /// The uniform sampling rate used for degraded reconstruction
    /// (`None` when nothing degraded).
    pub degraded_rate: Option<u32>,
    /// Sub-domains a dead rank owned that survivors recomputed *exactly*
    /// (same plan, same pipeline — bit-identical contributions).
    pub recovered_domains: usize,
    /// Modeled flops the exact recomputes cost on top of the fault-free
    /// run (see [`LocalConvolver::flops_estimate`]).
    pub recovery_extra_flops: f64,
    /// Extra bytes the recovered contributions add to the single sparse
    /// exchange.
    pub recovery_extra_bytes: usize,
}

/// Former name of [`ConvolveReport`], kept for downstream code.
pub type RunReport = ConvolveReport;

/// The end-to-end approximate convolver.
pub struct LowCommConvolver {
    cfg: LowCommConfig,
    local: LocalConvolver,
    /// Memoized plans under the configured schedule: owners, decoders and
    /// recovery claimants all share one plan per response region.
    plans: PlanCache,
    /// Memoized coarsest-rate plans for degraded reconstruction.
    degraded_plans: PlanCache,
}

impl LowCommConvolver {
    /// Builds the convolver, planning the local pipeline once.
    ///
    /// Panics on an invalid configuration; use [`Self::try_new`] to get a
    /// typed [`ConfigError`] instead.
    pub fn new(cfg: LowCommConfig) -> Self {
        match Self::try_new(cfg) {
            Ok(conv) => conv,
            Err(e) => panic!("invalid LowCommConfig: {e}"),
        }
    }

    /// Builds the convolver after validating `cfg`
    /// ([`LowCommConfig::validate`]), so bad `n`/`k` divisibility or a
    /// malformed schedule comes back as a value instead of a panic.
    pub fn try_new(cfg: LowCommConfig) -> Result<Self, ConfigError> {
        cfg.validate()?;
        let local = LocalConvolver::new(cfg.n, cfg.k, cfg.batch);
        let plans = PlanCache::new(cfg.n, cfg.schedule.clone());
        let coarsest = {
            let s = &cfg.schedule;
            s.bands
                .iter()
                .map(|b| b.rate)
                .chain([s.far_rate, s.boundary_rate.max(1)])
                .max()
                .unwrap_or(1)
        };
        let degraded_plans = PlanCache::new(cfg.n, RateSchedule::uniform(coarsest));
        Ok(LowCommConvolver {
            cfg,
            local,
            plans,
            degraded_plans,
        })
    }

    /// Opens a [`ConvolveSession`] — the unified entry point that replaced
    /// the legacy `compress_domain*` / `accumulate*` method families
    /// (deleted once every caller had migrated).
    /// The mode states once how the run treats missing domains; chain
    /// [`ConvolveSession::with_observability`] to collect spans and
    /// counters for the run.
    pub fn session(&self, mode: ConvolveMode) -> ConvolveSession<'_> {
        ConvolveSession::new(self, mode)
    }

    /// The configuration.
    pub fn config(&self) -> &LowCommConfig {
        &self.cfg
    }

    /// The planned local pipeline.
    pub fn local(&self) -> &LocalConvolver {
        &self.local
    }

    /// The hotspot (response) region of a sub-domain under `kernel`: the
    /// sub-domain translated by the kernel's spatial center. "The octree
    /// captures an estimate of where the hotspots … will occur once the
    /// convolution with the sub-domain is performed" (§4).
    ///
    /// With `k | N` and a kernel centered at a multiple of `k` (origin or
    /// `N/2`), the shifted box never wraps the periodic boundary.
    pub fn response_region(&self, domain: &BoxRegion, kernel: &dyn KernelSpectrum) -> BoxRegion {
        let n = self.cfg.n;
        let c = kernel.center();
        let mut lo = [0usize; 3];
        let mut hi = [0usize; 3];
        for a in 0..3 {
            lo[a] = (domain.lo[a] + c[a]) % n;
            hi[a] = lo[a] + (domain.hi[a] - domain.lo[a]);
            assert!(
                hi[a] <= n,
                "response region wraps the periodic boundary; kernel center \
                 must be a multiple of the sub-domain size"
            );
        }
        BoxRegion::new(lo, hi)
    }

    /// The sampling plan for one sub-domain's *response region*, memoized:
    /// repeated requests (decode paths, recovery claimants) share the plan
    /// the original computation used.
    pub fn plan_for(&self, domain: BoxRegion) -> Arc<SamplingPlan> {
        self.plans.plan_for(domain)
    }

    /// The memoized plan store (for cache-efficiency reporting).
    pub fn plan_cache(&self) -> &PlanCache {
        &self.plans
    }

    /// Shared implementation of the local-computation phase behind
    /// [`ConvolveSession::compress_domains`] — every (nonzero) sub-domain
    /// compressed independently in parallel, exact in every mode
    /// (degradation only concerns *missing* contributions).
    pub(crate) fn compress_domains_impl(
        &self,
        input: &Grid3<f64>,
        kernel: &dyn KernelSpectrum,
    ) -> (Vec<CompressedField>, ConvolveReport) {
        let n = self.cfg.n;
        assert_eq!(input.shape(), (n, n, n), "input shape mismatch");
        let domains = decompose_uniform(n, self.cfg.k);
        let fields: Vec<Option<CompressedField>> = domains
            .par_iter()
            .map(|d| {
                let sub = input.extract(d);
                if sub.as_slice().iter().all(|&v| v == 0.0) {
                    return None;
                }
                let plan = self.plan_for(self.response_region(d, kernel));
                Some(self.local.convolve_compressed(&sub, d.lo, kernel, plan))
            })
            .collect();

        let mut report = ConvolveReport {
            dense_stage_bytes: n * n * n * 16,
            ..Default::default()
        };
        let mut out = Vec::new();
        for f in fields.into_iter() {
            match f {
                Some(f) => {
                    report.domains_processed += 1;
                    report.total_samples += f.plan().total_samples();
                    report.exchange_bytes += f.message_bytes();
                    out.push(f);
                }
                None => report.domains_skipped += 1,
            }
        }
        obs::CONVOLVE_DOMAINS_PROCESSED.add(report.domains_processed as u64);
        obs::CONVOLVE_DOMAINS_SKIPPED.add(report.domains_skipped as u64);
        obs::CONVOLVE_EXCHANGE_BYTES.add(report.exchange_bytes as u64);
        obs::CONVOLVE_SAMPLES.add(report.total_samples as u64);
        (out, report)
    }

    /// Shared plain fold in slice order behind
    /// [`ConvolveSession::accumulate_fields`]: sums every domain's
    /// reconstruction into the dense approximate result (the one exchange
    /// of Fig. 1b).
    pub(crate) fn accumulate_impl(&self, fields: &[CompressedField]) -> Grid3<f64> {
        let n = self.cfg.n;
        let cube = BoxRegion::cube(n);
        let mut out = Grid3::zeros((n, n, n));
        for f in fields {
            f.add_region_into(&cube, &mut out, 1.0);
        }
        out
    }

    /// Full pipeline: compress every sub-domain, then accumulate.
    pub fn convolve(
        &self,
        input: &Grid3<f64>,
        kernel: &dyn KernelSpectrum,
    ) -> (Grid3<f64>, ConvolveReport) {
        let (fields, report) = self.compress_domains_impl(input, kernel);
        (self.accumulate_impl(&fields), report)
    }

    /// The coarsest sampling rate anywhere in the configured schedule —
    /// the cheapest resolution the deployment already tolerates far from a
    /// domain, and therefore the natural fidelity for emergency
    /// reconstruction of a dead rank's domains.
    pub fn coarsest_rate(&self) -> u32 {
        let s = &self.cfg.schedule;
        s.bands
            .iter()
            .map(|b| b.rate)
            .chain([s.far_rate, s.boundary_rate.max(1)])
            .max()
            .unwrap_or(1)
    }

    /// The uniform schedule used for degraded reconstruction.
    pub fn degraded_schedule(&self) -> RateSchedule {
        RateSchedule::uniform(self.coarsest_rate())
    }

    /// Shared single-domain compression behind
    /// [`ConvolveSession::compress_domain`]: `degraded` selects the
    /// coarsest uniform plan (a survivor's emergency rebuild), otherwise
    /// the memoized schedule plan — the same plan and pruned-FFT pipeline
    /// the original owner would run, so exact recomputes are bit-identical
    /// to the fault-free run's.
    pub(crate) fn compress_domain_impl(
        &self,
        input: &Grid3<f64>,
        domain: &BoxRegion,
        kernel: &dyn KernelSpectrum,
        degraded: bool,
    ) -> Option<CompressedField> {
        let sub = input.extract(domain);
        if sub.as_slice().iter().all(|&v| v == 0.0) {
            return None;
        }
        let region = self.response_region(domain, kernel);
        let plan = if degraded {
            self.degraded_plans.plan_for(region)
        } else {
            self.plan_for(region)
        };
        Some(
            self.local
                .convolve_compressed(&sub, domain.lo, kernel, plan),
        )
    }

    /// Shared ascending-domain-id fold with recovery/degradation
    /// accounting — the implementation behind
    /// [`ConvolveSession::accumulate`]. The ascending order is the one
    /// fold order every rank can reproduce regardless of who computed
    /// what, which is what makes a redistributed run bit-identical to a
    /// fault-free run of the same fold. `recovered` lists the domain ids
    /// in `contributions` that claimants recomputed (their modeled flop
    /// and byte cost is charged to the report); `degraded` orphans are
    /// rebuilt locally at the coarsest rate.
    pub(crate) fn accumulate_map_impl(
        &self,
        contributions: &BTreeMap<usize, CompressedField>,
        input: &Grid3<f64>,
        kernel: &dyn KernelSpectrum,
        recovered: &[usize],
        degraded: &[(usize, BoxRegion)],
    ) -> (Grid3<f64>, ConvolveReport) {
        let n = self.cfg.n;
        let cube = BoxRegion::cube(n);
        let mut out = Grid3::zeros((n, n, n));
        let mut report = ConvolveReport {
            dense_stage_bytes: n * n * n * 16,
            ..Default::default()
        };
        // BTreeMap iteration is ascending by domain id.
        for f in contributions.values() {
            f.add_region_into(&cube, &mut out, 1.0);
            report.domains_processed += 1;
            report.total_samples += f.plan().total_samples();
            report.exchange_bytes += f.message_bytes();
        }
        for &id in recovered {
            let f = match contributions.get(&id) {
                Some(f) => f,
                None => unreachable!("recovered id must have a contribution"),
            };
            report.recovered_domains += 1;
            report.recovery_extra_flops += self.local.flops_estimate(f.plan());
            report.recovery_extra_bytes += f.message_bytes();
        }
        for (_, d) in degraded {
            match self.compress_domain_impl(input, d, kernel, true) {
                Some(f) => {
                    f.add_region_into(&cube, &mut out, 1.0);
                    report.degraded_domains += 1;
                }
                None => report.domains_skipped += 1,
            }
        }
        if report.degraded_domains > 0 {
            report.degraded_rate = Some(self.coarsest_rate());
        }
        obs::CONVOLVE_DOMAINS_RECOVERED.add(report.recovered_domains as u64);
        obs::CONVOLVE_DOMAINS_DEGRADED.add(report.degraded_domains as u64);
        (out, report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traditional::TraditionalConvolver;
    use lcc_greens::GaussianKernel;
    use lcc_grid::relative_l2;

    fn smooth_input(n: usize) -> Grid3<f64> {
        Grid3::from_fn((n, n, n), |x, y, z| {
            ((x as f64 * 0.4).sin() + (y as f64 * 0.25).cos()) * (1.0 + z as f64 * 0.05)
        })
    }

    #[test]
    fn lossless_schedule_matches_oracle_exactly() {
        let n = 16;
        let k = 8;
        let cfg = LowCommConfig {
            n,
            k,
            batch: 64,
            schedule: RateSchedule::uniform(1),
        };
        let conv = LowCommConvolver::new(cfg);
        let kernel = GaussianKernel::new(n, 1.2);
        let input = smooth_input(n);
        let (got, report) = conv.convolve(&input, &kernel);
        let want = TraditionalConvolver::new(n).convolve(&input, &kernel);
        let err = relative_l2(want.as_slice(), got.as_slice());
        assert!(err < 1e-9, "lossless end-to-end error {err}");
        assert_eq!(report.domains_processed, 8);
        assert_eq!(report.domains_skipped, 0);
    }

    #[test]
    fn adaptive_schedule_meets_paper_error_budget() {
        let n = 32;
        let k = 8;
        let conv = LowCommConvolver::new(LowCommConfig {
            n,
            k,
            batch: 256,
            schedule: RateSchedule::for_kernel_spread(k, 1.0, 16),
        });
        let kernel = GaussianKernel::new(n, 1.0);
        let input = smooth_input(n);
        let (got, report) = conv.convolve(&input, &kernel);
        let want = TraditionalConvolver::new(n).convolve(&input, &kernel);
        let err = relative_l2(want.as_slice(), got.as_slice());
        assert!(err < 0.03, "adaptive end-to-end error {err} above 3%");
        assert!(report.exchange_bytes > 0);
    }

    #[test]
    fn exchange_beats_dense_at_scale() {
        // Compression pays off once N ≫ k: a single active sub-domain on a
        // 64³ grid exchanges far less than one dense all-to-all stage.
        let n = 64;
        let k = 8;
        let conv = LowCommConvolver::new(LowCommConfig {
            n,
            k,
            batch: 512,
            schedule: RateSchedule::for_kernel_spread(k, 1.0, 16),
        });
        let kernel = GaussianKernel::new(n, 1.0);
        let mut input = Grid3::zeros((n, n, n));
        input[(4, 4, 4)] = 1.0;
        let (fields, report) = conv
            .session(ConvolveMode::Normal)
            .compress_domains(&input, &kernel);
        assert_eq!(fields.len(), 1);
        assert!(
            report.exchange_bytes * 4 < report.dense_stage_bytes,
            "exchange {} vs dense stage {}",
            report.exchange_bytes,
            report.dense_stage_bytes
        );
    }

    #[test]
    fn zero_domains_are_skipped() {
        let n = 16;
        let k = 4;
        let conv = LowCommConvolver::new(LowCommConfig::paper_default(n, k, 8));
        let kernel = GaussianKernel::new(n, 1.0);
        // Only one sub-domain nonzero.
        let mut input = Grid3::zeros((n, n, n));
        input[(5, 5, 5)] = 1.0;
        let (_, report) = conv.convolve(&input, &kernel);
        assert_eq!(report.domains_processed, 1);
        assert_eq!(report.domains_skipped, 63);
    }

    #[test]
    fn delta_input_reproduces_kernel_approximately() {
        let n = 32;
        let k = 8;
        let conv = LowCommConvolver::new(LowCommConfig::paper_default(n, k, 16));
        let kernel = GaussianKernel::new(n, 1.0);
        let mut input = Grid3::zeros((n, n, n));
        // Delta at the center of a sub-domain.
        input[(12, 12, 12)] = 1.0;
        let (got, _) = conv.convolve(&input, &kernel);
        // The kernel peaks at n/2, so a delta at (12,12,12) produces a
        // response peaking at (12 + 16) mod 32 = 28 along each axis.
        assert!((got[(28, 28, 28)] - 1.0).abs() < 0.01);
        // Mass conservation: sums match (DC bin is exact in every plan
        // because the domain itself is dense... approximately).
        let total: f64 = got.as_slice().iter().sum();
        let want: f64 = kernel.spatial().as_slice().iter().sum();
        assert!((total - want).abs() / want < 0.05, "mass error");
    }

    #[test]
    fn report_accounts_bytes() {
        let n = 16;
        let k = 8;
        let conv = LowCommConvolver::new(LowCommConfig::paper_default(n, k, 8));
        let kernel = GaussianKernel::new(n, 1.0);
        let input = smooth_input(n);
        let (fields, report) = conv
            .session(ConvolveMode::Normal)
            .compress_domains(&input, &kernel);
        let bytes: usize = fields.iter().map(|f| f.message_bytes()).sum();
        assert_eq!(report.exchange_bytes, bytes);
        let samples: usize = fields.iter().map(|f| f.plan().total_samples()).sum();
        assert_eq!(report.total_samples, samples);
    }
}
