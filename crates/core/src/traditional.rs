//! The traditional dense FFT convolution — correctness oracle and baseline.
//!
//! Materializes the full N³ complex field, transforms it, multiplies by the
//! on-the-fly kernel spectrum, and inverse-transforms (Fig. 1a without the
//! distribution). Memory: 16·N³ bytes live at once — the footprint the
//! paper's method avoids.

use lcc_fft::{fft_3d, ifft_3d_normalized, Complex64, FftDirection, FftPlanner};
use lcc_greens::KernelSpectrum;
use lcc_grid::{BoxRegion, Grid3};

/// Dense FFT convolver at grid size n.
pub struct TraditionalConvolver {
    n: usize,
    planner: FftPlanner,
}

impl TraditionalConvolver {
    /// Creates a convolver for an `n³` grid.
    pub fn new(n: usize) -> Self {
        TraditionalConvolver {
            n,
            planner: FftPlanner::new(),
        }
    }

    /// Grid size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Cyclically convolves the dense real `input` with `kernel`
    /// (frequency-domain transfer function), returning the dense result.
    pub fn convolve(&self, input: &Grid3<f64>, kernel: &dyn KernelSpectrum) -> Grid3<f64> {
        let n = self.n;
        assert_eq!(input.shape(), (n, n, n), "input shape mismatch");
        assert_eq!(kernel.n(), n, "kernel grid mismatch");
        let mut buf: Vec<Complex64> = input
            .as_slice()
            .iter()
            .map(|&v| Complex64::from_real(v))
            .collect();
        fft_3d(&self.planner, &mut buf, (n, n, n), FftDirection::Forward);
        for fx in 0..n {
            for fy in 0..n {
                let base = (fx * n + fy) * n;
                for fz in 0..n {
                    buf[base + fz] *= kernel.eval([fx, fy, fz]);
                }
            }
        }
        ifft_3d_normalized(&self.planner, &mut buf, (n, n, n));
        Grid3::from_vec((n, n, n), buf.iter().map(|v| v.re).collect())
    }

    /// Convolves a `k³` sub-domain placed at `corner` inside an otherwise
    /// zero N³ grid — the per-domain reference the compressed pipeline is
    /// checked against.
    pub fn convolve_subdomain(
        &self,
        sub: &Grid3<f64>,
        corner: [usize; 3],
        kernel: &dyn KernelSpectrum,
    ) -> Grid3<f64> {
        let n = self.n;
        let (kx, ky, kz) = sub.shape();
        assert!(
            corner[0] + kx <= n && corner[1] + ky <= n && corner[2] + kz <= n,
            "sub-domain exceeds grid"
        );
        let mut dense = Grid3::zeros((n, n, n));
        dense.insert(corner, sub);
        self.convolve(&dense, kernel)
    }

    /// Peak working-set bytes of this baseline at grid size n
    /// (input copy + in-place spectrum, complex double).
    pub fn peak_bytes(&self) -> u64 {
        16 * (self.n as u64).pow(3)
    }
}

/// Extracts a sub-domain box from a dense grid (convenience for
/// decomposition loops).
pub fn extract_subdomain(input: &Grid3<f64>, region: &BoxRegion) -> Grid3<f64> {
    input.extract(region)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcc_greens::GaussianKernel;

    #[test]
    fn convolve_delta_reproduces_kernel_spatial() {
        let n = 16;
        let kernel = GaussianKernel::new(n, 1.5);
        let conv = TraditionalConvolver::new(n);
        let mut delta = Grid3::zeros((n, n, n));
        delta[(0, 0, 0)] = 1.0;
        let out = conv.convolve(&delta, &kernel);
        let want = kernel.spatial();
        for ((x, y, z), &v) in out.indexed_iter() {
            assert!((v - want[(x, y, z)]).abs() < 1e-10, "at ({x},{y},{z})");
        }
    }

    #[test]
    fn convolution_is_linear() {
        let n = 8;
        let kernel = GaussianKernel::new(n, 1.0);
        let conv = TraditionalConvolver::new(n);
        let a = Grid3::from_fn((n, n, n), |x, y, z| (x + 2 * y + 3 * z) as f64);
        let b = Grid3::from_fn((n, n, n), |x, y, z| ((x * y) as f64).sin() + z as f64);
        let sum = Grid3::from_fn((n, n, n), |x, y, z| a[(x, y, z)] + b[(x, y, z)]);
        let ca = conv.convolve(&a, &kernel);
        let cb = conv.convolve(&b, &kernel);
        let cs = conv.convolve(&sum, &kernel);
        for ((x, y, z), &v) in cs.indexed_iter() {
            assert!((v - ca[(x, y, z)] - cb[(x, y, z)]).abs() < 1e-8);
        }
    }

    #[test]
    fn subdomain_convolution_matches_manual_embedding() {
        let n = 16;
        let k = 4;
        let kernel = GaussianKernel::new(n, 1.0);
        let conv = TraditionalConvolver::new(n);
        let sub = Grid3::from_fn((k, k, k), |x, y, z| (x + y + z) as f64 + 1.0);
        let via_helper = conv.convolve_subdomain(&sub, [4, 8, 0], &kernel);
        let mut dense = Grid3::zeros((n, n, n));
        dense.insert([4, 8, 0], &sub);
        let direct = conv.convolve(&dense, &kernel);
        assert_eq!(via_helper, direct);
    }

    #[test]
    fn peak_bytes_formula() {
        assert_eq!(
            TraditionalConvolver::new(64).peak_bytes(),
            16 * 64u64.pow(3)
        );
    }
}
