//! Parallel-vs-sequential bit-identity of the pipeline and the batched
//! pencil transforms.
//!
//! The rayon shim's combinators are all *indexed* — item `i` is a pure
//! function of `i` and the input, written to a slot derived from `i` alone —
//! so results must be bit-identical no matter how many threads execute
//! them. These properties pin that down by comparing the ambient pool
//! (whatever `LCC_THREADS` configures; CI runs 1 and 4) against
//! `rayon::run_sequential`, which forces inline single-thread execution of
//! the very same code. Random `(n, k, B, corner)` come from proptest.

use std::sync::Arc;

use proptest::prelude::*;

use lcc_core::LocalConvolver;
use lcc_fft::{c64, fft_axis, Complex64, FftDirection, FftPlanner};
use lcc_greens::GaussianKernel;
use lcc_grid::{BoxRegion, Grid3};
use lcc_octree::{RateSchedule, SamplingPlan};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// `LocalConvolver::convolve_compressed` produces bit-identical samples
    /// under the thread pool and under forced sequential execution.
    #[test]
    fn convolve_parallel_bit_identical_to_sequential(
        k in prop_oneof![Just(2usize), Just(4)],
        mult in prop_oneof![Just(1usize), Just(2), Just(4)],
        batch in prop_oneof![Just(1usize), Just(7), Just(64)],
        cx in 0usize..64,
        cy in 0usize..64,
        cz in 0usize..64,
        seed in 0u64..1000,
    ) {
        let n = k * mult;
        let span = n - k + 1;
        let corner = [cx % span, cy % span, cz % span];
        let sub = Grid3::from_fn((k, k, k), |x, y, z| {
            ((x * 3 + y * 5 + z * 7) as f64 * 0.31 + seed as f64 * 0.013).sin()
        });
        let kernel = GaussianKernel::new(n, 1.1);
        let domain = BoxRegion::new(
            corner,
            [corner[0] + k, corner[1] + k, corner[2] + k],
        );
        let plan = Arc::new(SamplingPlan::build(n, domain, &RateSchedule::uniform(1)));
        let conv = LocalConvolver::new(n, k, batch);

        let par = conv.convolve_compressed(&sub, corner, &kernel, plan.clone());
        let seq = rayon::run_sequential(|| {
            conv.convolve_compressed(&sub, corner, &kernel, plan.clone())
        });

        prop_assert_eq!(par.samples().len(), seq.samples().len());
        for (a, b) in par.samples().iter().zip(seq.samples()) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// `fft::batch`'s axis sweeps (contiguous and strided pencil paths) are
    /// bit-identical under the pool and under sequential execution.
    #[test]
    fn fft_axes_parallel_bit_identical_to_sequential(
        n0 in 1usize..6,
        n1 in 1usize..6,
        n2 in 1usize..9,
        seed in 0u64..1000,
    ) {
        let dims = (n0, n1, n2);
        let data: Vec<Complex64> = (0..n0 * n1 * n2)
            .map(|i| {
                c64(
                    (i as f64 * 0.9 + seed as f64 * 0.07).sin(),
                    (i as f64 * 0.4).cos(),
                )
            })
            .collect();
        let planner = FftPlanner::new();

        let mut par = data.clone();
        for axis in 0..3 {
            fft_axis(&planner, &mut par, dims, axis, FftDirection::Forward);
        }
        let mut seq = data;
        rayon::run_sequential(|| {
            for axis in 0..3 {
                fft_axis(&planner, &mut seq, dims, axis, FftDirection::Forward);
            }
        });

        for (a, b) in par.iter().zip(&seq) {
            prop_assert_eq!(a.re.to_bits(), b.re.to_bits());
            prop_assert_eq!(a.im.to_bits(), b.im.to_bits());
        }
    }
}
