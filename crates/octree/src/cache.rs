//! Memoized sampling plans.
//!
//! Building a [`SamplingPlan`] walks the octree refinement for a region —
//! cheap next to the FFT work it gates, but wasteful to repeat: a
//! distributed deployment plans every domain's response region once on its
//! owner *and once more on every peer* when decoding the exchange, and
//! failure recovery re-plans a dead rank's domains on each claimant. A
//! [`PlanCache`] shares one plan per distinct region (for a fixed grid and
//! schedule), so recovered domains reuse exactly the plan the original
//! owner used — a prerequisite for bit-identical re-execution.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use lcc_grid::BoxRegion;

use crate::plan::SamplingPlan;
use crate::schedule::RateSchedule;

/// Memo key: a region's corners.
type RegionKey = ([usize; 3], [usize; 3]);

/// A concurrency-safe memo of [`SamplingPlan`]s for one `(n, schedule)`
/// configuration, keyed by region corners.
pub struct PlanCache {
    n: usize,
    schedule: RateSchedule,
    plans: Mutex<HashMap<RegionKey, Arc<SamplingPlan>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl PlanCache {
    /// An empty cache for grid size `n` under `schedule`.
    pub fn new(n: usize, schedule: RateSchedule) -> Self {
        PlanCache {
            n,
            schedule,
            plans: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Grid size the cached plans are built for.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The schedule the cached plans are built with.
    pub fn schedule(&self) -> &RateSchedule {
        &self.schedule
    }

    /// The plan for `region`, built on first request and shared afterwards.
    pub fn plan_for(&self, region: BoxRegion) -> Arc<SamplingPlan> {
        let key = (region.lo, region.hi);
        if let Some(plan) = self
            .plans
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(&key)
        {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(plan);
        }
        // Build outside the lock: plans for distinct regions can proceed
        // concurrently, and a racing duplicate build is harmless (last one
        // wins; both are identical by construction).
        self.misses.fetch_add(1, Ordering::Relaxed);
        lcc_obs::metrics::OCTREE_PLANS_BUILT.incr();
        let _sp = lcc_obs::span("octree_plan_build");
        let plan = Arc::new(SamplingPlan::build(self.n, region, &self.schedule));
        self.plans
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(key, Arc::clone(&plan));
        plan
    }

    /// Number of distinct regions planned so far.
    pub fn len(&self) -> usize {
        self.plans.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Whether any plan has been built yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Requests served from the memo.
    pub fn hit_count(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Requests that had to build a plan.
    pub fn miss_count(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caches_by_region_and_shares_plans() {
        let cache = PlanCache::new(32, RateSchedule::paper_default(8, 16));
        let a = BoxRegion::new([0; 3], [8; 3]);
        let b = BoxRegion::new([8, 0, 0], [16, 8, 8]);
        let p1 = cache.plan_for(a);
        let p2 = cache.plan_for(a);
        let p3 = cache.plan_for(b);
        assert!(Arc::ptr_eq(&p1, &p2), "same region must share one plan");
        assert!(!Arc::ptr_eq(&p1, &p3));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.miss_count(), 2);
        assert_eq!(cache.hit_count(), 1);
        assert!(!cache.is_empty());
    }

    #[test]
    fn cached_plan_matches_direct_build() {
        let schedule = RateSchedule::paper_default(8, 16);
        let cache = PlanCache::new(32, schedule.clone());
        let region = BoxRegion::new([8; 3], [16; 3]);
        let cached = cache.plan_for(region);
        let direct = SamplingPlan::build(32, region, &schedule);
        assert_eq!(cached.total_samples(), direct.total_samples());
        assert_eq!(cached.retained_z(), direct.retained_z());
    }
}
