//! Adaptive sampling-rate schedules.
//!
//! The paper parameterizes the sampling strategy "around the sub-domain with
//! the spread, decay rate of the Green's function and the size of the
//! sub-domain" (§4). Concretely (§5.4): the sub-domain itself is kept at full
//! resolution, `r = 2` within distance `k/2` of the sub-domain, `r = 8` from
//! `k/2` to `4k`, and `r = 16` or `32` beyond; the grid boundary (subject to
//! boundary conditions) is densely sampled again (Fig. 3).

/// One distance band: points with Chebyshev distance to the sub-domain
/// `≤ max_distance` (and not captured by a previous band) use `rate`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RateBand {
    /// Inclusive upper distance bound for this band.
    pub max_distance: usize,
    /// Downsampling rate (stride) within the band; must be a power of two.
    pub rate: u32,
}

/// A complete multi-resolution schedule.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RateSchedule {
    /// Distance bands, in increasing `max_distance` order.
    pub bands: Vec<RateBand>,
    /// Rate beyond the last band.
    pub far_rate: u32,
    /// Width of the densely re-sampled shell at the grid boundary.
    pub boundary_width: usize,
    /// Rate inside the boundary shell.
    pub boundary_rate: u32,
}

impl RateSchedule {
    /// Validates invariants: power-of-two rates, strictly increasing bands.
    pub fn validate(&self) -> Result<(), String> {
        let mut prev = 0usize;
        for (i, b) in self.bands.iter().enumerate() {
            if !b.rate.is_power_of_two() {
                return Err(format!("band {i} rate {} is not a power of two", b.rate));
            }
            if i > 0 && b.max_distance <= prev {
                return Err(format!("band {i} max_distance not increasing"));
            }
            prev = b.max_distance;
        }
        if !self.far_rate.is_power_of_two() {
            return Err(format!("far rate {} is not a power of two", self.far_rate));
        }
        if !self.boundary_rate.is_power_of_two() {
            return Err(format!(
                "boundary rate {} is not a power of two",
                self.boundary_rate
            ));
        }
        Ok(())
    }

    /// The paper's heuristic schedule for a `k³` sub-domain (§5.4):
    /// `r = 2` out to `k/2`, `r = 8` out to `4k`, `far_rate` beyond.
    ///
    /// The boundary shell of Fig. 3 ("the edges of the grid, subject to
    /// specific boundary conditions, are densely sampled again") is opt-in
    /// via [`Self::with_boundary_shell`]: a dense shell forces every z-plane
    /// to carry samples, which defeats the streaming pipeline's
    /// `8·N·N·k`-byte footprint, so it is reserved for applications whose
    /// boundary conditions need it.
    pub fn paper_default(k: usize, far_rate: u32) -> Self {
        assert!(
            far_rate.is_power_of_two(),
            "far rate must be a power of two"
        );
        RateSchedule {
            bands: vec![
                RateBand {
                    max_distance: (k / 2).max(1),
                    rate: 2,
                },
                RateBand {
                    max_distance: 4 * k,
                    rate: 8,
                },
            ],
            far_rate,
            boundary_width: 0,
            boundary_rate: 1,
        }
    }

    /// A spread-aware schedule: "the user parameterizes the sampling
    /// strategy around the sub-domain with the spread, decay rate of the
    /// Green's function and the size of the sub-domain" (§4).
    ///
    /// A kernel of spread σ needs its decay edge *resolved*, not just
    /// covered: this schedule keeps full resolution through a `3σ` halo
    /// around the sub-domain (where the response still carries significant
    /// energy and steep gradients), `r = 2` through the remaining
    /// transition, then the paper's `r = 8` band out to `4k` and `far_rate`
    /// beyond. With it, Gaussian-like kernels reconstruct well inside the
    /// paper's 3% budget.
    pub fn for_kernel_spread(k: usize, spread: f64, far_rate: u32) -> Self {
        assert!(spread > 0.0, "spread must be positive");
        assert!(
            far_rate.is_power_of_two(),
            "far rate must be a power of two"
        );
        let halo = (3.0 * spread).ceil() as usize;
        let r2_end = (halo + (2.0 * spread).ceil() as usize + 2)
            .max(k / 2)
            .max(halo + 1);
        let r8_end = (4 * k).max(r2_end + 1);
        RateSchedule {
            bands: vec![
                RateBand {
                    max_distance: halo.max(1),
                    rate: 1,
                },
                RateBand {
                    max_distance: r2_end,
                    rate: 2,
                },
                RateBand {
                    max_distance: r8_end,
                    rate: 8,
                },
            ],
            far_rate,
            boundary_width: 0,
            boundary_rate: 1,
        }
    }

    /// Adds a densely re-sampled shell of `width` points at `rate` along
    /// every grid face (Fig. 3's boundary treatment).
    pub fn with_boundary_shell(mut self, width: usize, rate: u32) -> Self {
        assert!(
            rate.is_power_of_two(),
            "boundary rate must be a power of two"
        );
        self.boundary_width = width;
        self.boundary_rate = rate;
        self
    }

    /// A uniform schedule with a single rate everywhere outside the
    /// sub-domain — the non-adaptive baseline used by the ablation benches.
    pub fn uniform(rate: u32) -> Self {
        assert!(rate.is_power_of_two(), "rate must be a power of two");
        RateSchedule {
            bands: Vec::new(),
            far_rate: rate,
            boundary_width: 0,
            boundary_rate: 1,
        }
    }

    /// Rate for a point at Chebyshev distance `dist_domain` from the
    /// sub-domain, and `dist_boundary` from the nearest grid face.
    ///
    /// Distance 0 (inside the sub-domain) is always full resolution.
    pub fn rate_for(&self, dist_domain: usize, dist_boundary: usize) -> u32 {
        if dist_domain == 0 {
            return 1;
        }
        if dist_boundary < self.boundary_width {
            return self.boundary_rate;
        }
        for b in &self.bands {
            if dist_domain <= b.max_distance {
                return b.rate;
            }
        }
        self.far_rate
    }

    /// Average downsampling rate `r` in the paper's Eq. 6 sense, estimated
    /// over a grid of size `n` around a domain of size `k`: total exterior
    /// points divided by exterior samples, cube-rooted.
    pub fn effective_exterior_rate(&self, n: usize, k: usize) -> f64 {
        // Count samples by integrating band volumes (approximate shells).
        let mut samples = 0.0;
        let mut covered = k as f64;
        let mut prev_side = k as f64;
        for b in &self.bands {
            let side = (k + 2 * b.max_distance) as f64;
            let side = side.min(n as f64);
            let vol = side.powi(3) - prev_side.powi(3);
            if vol > 0.0 {
                samples += vol / (b.rate as f64).powi(3);
                prev_side = side;
            }
            covered = side;
        }
        let remaining = (n as f64).powi(3) - covered.powi(3);
        if remaining > 0.0 {
            samples += remaining / (self.far_rate as f64).powi(3);
        }
        let exterior = (n as f64).powi(3) - (k as f64).powi(3);
        if samples <= 0.0 {
            1.0
        } else {
            (exterior / samples).cbrt()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_buckets() {
        let s = RateSchedule::paper_default(32, 16).with_boundary_shell(2, 1);
        assert!(s.validate().is_ok());
        // Inside domain
        assert_eq!(s.rate_for(0, 100), 1);
        // Within k/2 = 16
        assert_eq!(s.rate_for(1, 100), 2);
        assert_eq!(s.rate_for(16, 100), 2);
        // Within 4k = 128
        assert_eq!(s.rate_for(17, 100), 8);
        assert_eq!(s.rate_for(128, 100), 8);
        // Beyond
        assert_eq!(s.rate_for(129, 100), 16);
        // Boundary shell wins
        assert_eq!(s.rate_for(129, 1), 1);
        assert_eq!(s.rate_for(129, 2), 16, "outside the 2-wide shell");
    }

    #[test]
    fn uniform_schedule() {
        let s = RateSchedule::uniform(8);
        assert_eq!(s.rate_for(0, 50), 1, "domain still dense");
        assert_eq!(s.rate_for(5, 50), 8);
        assert_eq!(s.rate_for(500, 0), 8, "no boundary shell");
    }

    #[test]
    fn validation_catches_bad_rates() {
        let mut s = RateSchedule::paper_default(16, 16);
        s.bands[0].rate = 3;
        assert!(s.validate().is_err());
        let mut s = RateSchedule::paper_default(16, 16);
        s.bands[1].max_distance = 1;
        assert!(s.validate().is_err());
    }

    #[test]
    fn effective_rate_between_extremes() {
        let s = RateSchedule::paper_default(32, 16);
        let r = s.effective_exterior_rate(256, 32);
        assert!(r > 2.0 && r < 16.0, "effective rate {r} out of range");
    }

    #[test]
    fn effective_rate_uniform_matches_rate() {
        let s = RateSchedule::uniform(8);
        let r = s.effective_exterior_rate(128, 16);
        assert!((r - 8.0).abs() < 0.5, "uniform effective rate {r}");
    }
}
