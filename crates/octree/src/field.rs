//! Compressed fields: sample storage, streaming capture, reconstruction.
//!
//! A [`CompressedField`] is the unit that workers exchange in the paper's
//! single accumulation round: the octree metadata (shared as a
//! [`SamplingPlan`]) plus one f64 per retained sample. Reconstruction
//! interpolates trilinearly inside each cell from its sample lattice —
//! "exchange of samples between the workers in the last step followed by
//! interpolation gives us the approximate result of the full convolution"
//! (§3.1).

use std::sync::Arc;

use lcc_grid::{BoxRegion, Grid3};

use crate::plan::SamplingPlan;

/// A field compressed under a sampling plan.
#[derive(Clone, Debug)]
pub struct CompressedField {
    plan: Arc<SamplingPlan>,
    samples: Vec<f64>,
}

impl CompressedField {
    /// Creates an all-zero compressed field for `plan`.
    pub fn zeros(plan: Arc<SamplingPlan>) -> Self {
        let samples = vec![0.0; plan.total_samples()];
        CompressedField { plan, samples }
    }

    /// Compresses a dense grid by sampling it at the plan's lattice points.
    pub fn compress(plan: Arc<SamplingPlan>, dense: &Grid3<f64>) -> Self {
        let n = plan.n();
        assert_eq!(dense.shape(), (n, n, n), "grid shape must match plan");
        let mut field = CompressedField::zeros(plan);
        field.capture_fn(|x, y, z| dense[(x, y, z)]);
        field
    }

    /// Compresses a field given as a function of the grid point — used when
    /// the dense result never exists in memory.
    pub fn compress_with(plan: Arc<SamplingPlan>, f: impl Fn(usize, usize, usize) -> f64) -> Self {
        let mut field = CompressedField::zeros(plan);
        field.capture_fn(f);
        field
    }

    fn capture_fn(&mut self, f: impl Fn(usize, usize, usize) -> f64) {
        let plan = self.plan.clone();
        for (i, cell) in plan.cells().iter().enumerate() {
            let base = plan.cell_offset(i) as usize;
            for (j, p) in cell.sample_positions().enumerate() {
                self.samples[base + j] = f(p[0], p[1], p[2]);
            }
        }
    }

    /// Streaming capture of one z-plane: for every sample the plan retains
    /// at height `z`, reads `plane[x * n + y]` (row-major N×N plane).
    ///
    /// The low-communication pipeline calls this once per retained z-plane
    /// as it streams out of the inverse transform; the dense N³ volume never
    /// materializes.
    pub fn capture_plane(&mut self, z: usize, plane: &[f64]) {
        let n = self.plan.n();
        assert_eq!(plane.len(), n * n, "plane must be N×N row-major");
        let plan = self.plan.clone();
        let mut captured = 0u64;
        for (i, cell) in plan.cells().iter().enumerate() {
            let r = cell.rate as usize;
            let cz = cell.corner[2];
            if z < cz || z >= cz + cell.size || !(z - cz).is_multiple_of(r) {
                continue;
            }
            let tz = (z - cz) / r;
            let spa = cell.samples_per_axis();
            let base = plan.cell_offset(i) as usize;
            for tx in 0..spa {
                let x = cell.corner[0] + tx * r;
                for ty in 0..spa {
                    let y = cell.corner[1] + ty * r;
                    self.samples[base + cell.local_sample_index(tx, ty, tz)] = plane[x * n + y];
                }
            }
            captured += (spa * spa) as u64;
        }
        lcc_obs::metrics::OCTREE_SAMPLES_CAPTURED.add(captured);
    }

    /// The plan this field was sampled under.
    pub fn plan(&self) -> &Arc<SamplingPlan> {
        &self.plan
    }

    /// Raw sample values in plan order.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Mutable raw samples (for accumulation).
    pub fn samples_mut(&mut self) -> &mut [f64] {
        &mut self.samples
    }

    /// Wire size of this message: samples + metadata, in bytes.
    pub fn message_bytes(&self) -> usize {
        self.plan.compressed_bytes()
    }

    /// Adds another compressed field sampled under an *identical* plan.
    pub fn accumulate(&mut self, other: &CompressedField) {
        assert_eq!(
            self.samples.len(),
            other.samples.len(),
            "accumulate requires identical plans"
        );
        for (a, b) in self.samples.iter_mut().zip(&other.samples) {
            *a += *b;
        }
    }

    /// Extracts the payload a worker owning `region` needs: the samples of
    /// every cell intersecting the region, tagged by cell index. This is
    /// what actually crosses the network in a distributed accumulation —
    /// each worker receives only its share, not the full sample set.
    pub fn region_payload(&self, region: &BoxRegion) -> RegionPayload {
        let plan = &self.plan;
        let cells = plan.cells_intersecting(region);
        let mut samples = Vec::new();
        for &i in &cells {
            let base = plan.cell_offset(i) as usize;
            let count = plan.cells()[i].sample_count();
            samples.extend_from_slice(&self.samples[base..base + count]);
        }
        RegionPayload {
            cells: cells.iter().map(|&i| i as u32).collect(),
            samples,
        }
    }

    /// Rebuilds a (partial) compressed field from a region payload. Cells
    /// not present stay zero; reconstruction is only valid inside the
    /// region the payload was extracted for.
    pub fn from_region_payload(plan: Arc<SamplingPlan>, payload: &RegionPayload) -> Self {
        let mut field = CompressedField::zeros(plan.clone());
        let mut off = 0;
        for &ci in &payload.cells {
            let ci = ci as usize;
            let base = plan.cell_offset(ci) as usize;
            let count = plan.cells()[ci].sample_count();
            field.samples[base..base + count].copy_from_slice(&payload.samples[off..off + count]);
            off += count;
        }
        assert_eq!(off, payload.samples.len(), "payload length mismatch");
        field
    }

    /// Reconstructs the full dense grid by per-cell trilinear interpolation.
    pub fn reconstruct(&self) -> Grid3<f64> {
        let n = self.plan.n();
        self.reconstruct_region(&BoxRegion::cube(n))
    }

    /// Reconstructs only `region` (clipped to the grid), returning a dense
    /// grid of the region's shape. This is what a worker evaluates for its
    /// own sub-domain during accumulation.
    pub fn reconstruct_region(&self, region: &BoxRegion) -> Grid3<f64> {
        let (sx, sy, sz) = region.size();
        let mut out = Grid3::zeros((sx, sy, sz));
        self.add_region_into(region, &mut out, 1.0);
        out
    }

    /// Adds `scale ×` the reconstruction of `region` into `out` (shape must
    /// equal the region's). Used to accumulate many domains' contributions
    /// without intermediate allocations.
    pub fn add_region_into(&self, region: &BoxRegion, out: &mut Grid3<f64>, scale: f64) {
        assert_eq!(out.shape(), region.size(), "output shape must match region");
        let _sp = lcc_obs::span("octree_add_region");
        let plan = &self.plan;
        for (i, cell) in plan.cells().iter().enumerate() {
            let Some(overlap) = cell.region().intersect(region) else {
                continue;
            };
            let base = plan.cell_offset(i) as usize;
            let spa = cell.samples_per_axis();
            let r = cell.rate as usize;
            let sample = |tx: usize, ty: usize, tz: usize| -> f64 {
                self.samples[base + cell.local_sample_index(tx, ty, tz)]
            };
            for p in overlap.points() {
                // Local lattice coordinates with linear extrapolation at the
                // cell's high edge (keeps affine fields exact).
                let mut t = [0usize; 3];
                let mut frac = [0.0f64; 3];
                for a in 0..3 {
                    let l = p[a] - cell.corner[a];
                    let mut idx = l / r;
                    let mut fr = (l - idx * r) as f64 / r as f64;
                    if idx >= spa - 1 && spa >= 2 {
                        // Use the last lattice interval and extrapolate.
                        fr += (idx - (spa - 2)) as f64;
                        idx = spa - 2;
                    } else if spa == 1 {
                        idx = 0;
                        fr = 0.0;
                    }
                    t[a] = idx;
                    frac[a] = fr;
                }
                let v = if spa == 1 {
                    sample(0, 0, 0)
                } else {
                    trilinear(
                        [
                            sample(t[0], t[1], t[2]),
                            sample(t[0], t[1], t[2] + 1),
                            sample(t[0], t[1] + 1, t[2]),
                            sample(t[0], t[1] + 1, t[2] + 1),
                            sample(t[0] + 1, t[1], t[2]),
                            sample(t[0] + 1, t[1], t[2] + 1),
                            sample(t[0] + 1, t[1] + 1, t[2]),
                            sample(t[0] + 1, t[1] + 1, t[2] + 1),
                        ],
                        frac,
                    )
                };
                let o = [
                    p[0] - region.lo[0],
                    p[1] - region.lo[1],
                    p[2] - region.lo[2],
                ];
                out[(o[0], o[1], o[2])] += scale * v;
            }
        }
    }
}

/// The per-region slice of a compressed field: cell indices (into the
/// shared plan) plus their samples, in cell order.
#[derive(Clone, Debug, PartialEq)]
pub struct RegionPayload {
    /// Indices of the included cells within the plan.
    pub cells: Vec<u32>,
    /// Concatenated samples of the included cells.
    pub samples: Vec<f64>,
}

impl RegionPayload {
    /// Wire size: 4 bytes per cell id + 8 per sample.
    pub fn byte_len(&self) -> usize {
        self.cells.len() * 4 + self.samples.len() * 8
    }
}

/// Trilinear interpolation of the 8 cube corners `c[x][y][z]` flattened as
/// `c000, c001, c010, c011, c100, c101, c110, c111`, at fractions `f`.
#[inline]
fn trilinear(c: [f64; 8], f: [f64; 3]) -> f64 {
    let c00 = c[0] * (1.0 - f[2]) + c[1] * f[2];
    let c01 = c[2] * (1.0 - f[2]) + c[3] * f[2];
    let c10 = c[4] * (1.0 - f[2]) + c[5] * f[2];
    let c11 = c[6] * (1.0 - f[2]) + c[7] * f[2];
    let c0 = c00 * (1.0 - f[1]) + c01 * f[1];
    let c1 = c10 * (1.0 - f[1]) + c11 * f[1];
    c0 * (1.0 - f[0]) + c1 * f[0]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::RateSchedule;
    use lcc_grid::relative_l2;

    fn make_plan(n: usize, k: usize, far: u32) -> Arc<SamplingPlan> {
        let lo = (n - k) / 2;
        let domain = BoxRegion::new([lo; 3], [lo + k; 3]);
        Arc::new(SamplingPlan::build(
            n,
            domain,
            &RateSchedule::paper_default(k, far),
        ))
    }

    #[test]
    fn constant_field_reconstructs_exactly() {
        let plan = make_plan(32, 8, 8);
        let dense = Grid3::filled((32, 32, 32), 2.5);
        let c = CompressedField::compress(plan, &dense);
        let back = c.reconstruct();
        for (_, &v) in back.indexed_iter() {
            assert!((v - 2.5).abs() < 1e-12);
        }
    }

    #[test]
    fn affine_field_reconstructs_exactly() {
        // Trilinear interpolation (with linear extrapolation at cell edges)
        // is exact on affine functions.
        let plan = make_plan(32, 8, 8);
        let f =
            |x: usize, y: usize, z: usize| 1.0 + 0.5 * x as f64 - 0.25 * y as f64 + 2.0 * z as f64;
        let dense = Grid3::from_fn((32, 32, 32), f);
        let c = CompressedField::compress(plan, &dense);
        let back = c.reconstruct();
        for ((x, y, z), &v) in back.indexed_iter() {
            assert!(
                (v - f(x, y, z)).abs() < 1e-9,
                "mismatch at ({x},{y},{z}): {v} vs {}",
                f(x, y, z)
            );
        }
    }

    #[test]
    fn domain_region_is_lossless() {
        // Inside the dense sub-domain every point is a sample.
        let n = 32;
        let k = 8;
        let plan = make_plan(n, k, 8);
        let dense = Grid3::from_fn((n, n, n), |x, y, z| {
            ((x * 31 + y * 17 + z * 7) % 101) as f64
        });
        let c = CompressedField::compress(plan.clone(), &dense);
        let dom = *plan.domain();
        let rec = c.reconstruct_region(&dom);
        for p in dom.points() {
            let got = rec[(p[0] - dom.lo[0], p[1] - dom.lo[1], p[2] - dom.lo[2])];
            assert!(
                (got - dense[(p[0], p[1], p[2])]).abs() < 1e-12,
                "in-domain point {p:?} must be exact"
            );
        }
    }

    #[test]
    fn decaying_field_reconstruction_error_small() {
        // A sharply decaying field like the paper's Gaussian-convolved
        // sub-domain: most energy inside the dense domain and the r=2 band,
        // negligible tail in the coarse bands. Error must beat the paper's 3%.
        let n = 64;
        let k = 16;
        let plan = make_plan(n, k, 16);
        let c0 = n as f64 / 2.0;
        let sigma = k as f64 / 4.0;
        let f = move |x: usize, y: usize, z: usize| {
            let d2 = (x as f64 - c0).powi(2) + (y as f64 - c0).powi(2) + (z as f64 - c0).powi(2);
            (-d2 / (2.0 * sigma * sigma)).exp()
        };
        let dense = Grid3::from_fn((n, n, n), f);
        let c = CompressedField::compress(plan, &dense);
        let back = c.reconstruct();
        let err = relative_l2(dense.as_slice(), back.as_slice());
        assert!(err < 0.03, "relative L2 error {err} exceeds 3%");
    }

    #[test]
    fn plane_streaming_matches_dense_compress() {
        let n = 32;
        let plan = make_plan(n, 8, 8);
        let dense = Grid3::from_fn((n, n, n), |x, y, z| {
            (x as f64 * 0.3).sin() + (y as f64 * 0.7).cos() + z as f64 * 0.01
        });
        let direct = CompressedField::compress(plan.clone(), &dense);
        let mut streamed = CompressedField::zeros(plan.clone());
        for z in plan.retained_z() {
            let mut plane = vec![0.0; n * n];
            for x in 0..n {
                for y in 0..n {
                    plane[x * n + y] = dense[(x, y, z)];
                }
            }
            streamed.capture_plane(z, &plane);
        }
        assert_eq!(direct.samples(), streamed.samples());
    }

    #[test]
    fn accumulate_adds_samples() {
        let plan = make_plan(16, 4, 4);
        let a = CompressedField::compress(plan.clone(), &Grid3::filled((16, 16, 16), 1.0));
        let mut b = CompressedField::compress(plan.clone(), &Grid3::filled((16, 16, 16), 2.0));
        b.accumulate(&a);
        for &s in b.samples() {
            assert!((s - 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn add_region_into_scales() {
        let plan = make_plan(16, 4, 4);
        let c = CompressedField::compress(plan, &Grid3::filled((16, 16, 16), 1.0));
        let region = BoxRegion::new([2; 3], [6; 3]);
        let mut out = Grid3::zeros((4, 4, 4));
        c.add_region_into(&region, &mut out, 2.0);
        c.add_region_into(&region, &mut out, 0.5);
        for (_, &v) in out.indexed_iter() {
            assert!((v - 2.5).abs() < 1e-12);
        }
    }

    #[test]
    fn region_payload_roundtrips_inside_region() {
        let n = 32;
        let plan = make_plan(n, 8, 8);
        let dense = Grid3::from_fn((n, n, n), |x, y, z| {
            (x as f64 * 0.2).sin() + y as f64 * 0.01 - (z as f64 * 0.3).cos()
        });
        let full = CompressedField::compress(plan.clone(), &dense);
        let region = BoxRegion::new([8; 3], [16; 3]);
        let payload = full.region_payload(&region);
        assert!(
            payload.samples.len() < full.samples().len(),
            "payload is a strict subset"
        );
        assert!(payload.byte_len() > 0);
        let partial = CompressedField::from_region_payload(plan, &payload);
        let a = full.reconstruct_region(&region);
        let b = partial.reconstruct_region(&region);
        assert_eq!(a, b, "partial payload reconstructs the region identically");
    }

    #[test]
    fn region_payloads_cover_all_sample_mass_once_per_owner() {
        // Disjoint owner regions partition the grid; every cell appears in
        // at least one payload (cells straddling region borders appear in
        // several — that duplication is the price of cell-granular routing).
        let n = 16;
        let plan = make_plan(n, 4, 4);
        let field =
            CompressedField::compress(plan.clone(), &Grid3::from_fn((n, n, n), |x, _, _| x as f64));
        let mut seen = vec![false; plan.cells().len()];
        for corner in [
            [0usize; 3],
            [8, 0, 0],
            [0, 8, 0],
            [0, 0, 8],
            [8, 8, 0],
            [8, 0, 8],
            [0, 8, 8],
            [8, 8, 8],
        ] {
            let region = BoxRegion::new(corner, [corner[0] + 8, corner[1] + 8, corner[2] + 8]);
            for &c in &field.region_payload(&region).cells {
                seen[c as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "every cell must reach some owner");
    }

    #[test]
    fn message_bytes_counts_metadata_and_samples() {
        let plan = make_plan(32, 8, 8);
        let c = CompressedField::zeros(plan.clone());
        assert_eq!(
            c.message_bytes(),
            plan.total_samples() * 8 + plan.cells().len() * 40
        );
    }

    #[test]
    fn trilinear_corners_and_center() {
        let c = [0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0];
        assert_eq!(trilinear(c, [0.0, 0.0, 0.0]), 0.0);
        assert_eq!(trilinear(c, [1.0, 1.0, 1.0]), 7.0);
        assert_eq!(trilinear(c, [0.5, 0.5, 0.5]), 3.5);
    }
}
