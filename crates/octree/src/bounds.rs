//! Analytic approximation-error bounds.
//!
//! §5.3: "error bounds for popularly used interpolation methods derived
//! with Taylor's theorem are applicable. Future work will rigorously derive
//! error bounds as a function of our design choices N, k and r." This
//! module carries that program out for the trilinear reconstruction:
//!
//! For 1D linear interpolation on a stride-`r` lattice, Taylor's theorem
//! gives `|f − I_r f| ≤ r²/8 · max|f''|`. Trilinear interpolation is the
//! tensor product of three 1D interpolants, so the errors add per axis:
//! `|f − I f| ≤ 3/8 · r² · M₂`, with `M₂` a bound on the unmixed second
//! partials over the cell. Feeding in the kernel's decay model per distance
//! band yields a per-band and an aggregate relative-L2 bound as a function
//! of (N, k, schedule) — checkable against the measured error.

use lcc_grid::BoxRegion;

use crate::plan::SamplingPlan;
use crate::schedule::RateSchedule;

/// Pointwise trilinear interpolation error bound on a stride-`r` lattice
/// with second-derivative bound `m2`: `3/8 · r² · m2`.
pub fn trilinear_error_bound(rate: u32, m2: f64) -> f64 {
    0.375 * (rate as f64) * (rate as f64) * m2
}

/// Radial model of a decaying response: value and a bound on its second
/// derivative at Chebyshev distance `d` from the sub-domain.
pub trait DecayModel {
    /// Upper bound on the response magnitude at distance `d`.
    fn value(&self, d: f64) -> f64;
    /// Upper bound on the (unmixed) second partials at distance `d`.
    fn second_derivative(&self, d: f64) -> f64;
}

/// Gaussian response model: a sub-domain of peak amplitude `amplitude`
/// convolved with a Gaussian of width `sigma` decays as
/// `A·exp(−d²/2σ²)` beyond the domain edge.
#[derive(Clone, Copy, Debug)]
pub struct GaussianDecay {
    /// Peak response amplitude (≈ the convolution result's max).
    pub amplitude: f64,
    /// Kernel width σ.
    pub sigma: f64,
}

impl DecayModel for GaussianDecay {
    fn value(&self, d: f64) -> f64 {
        self.amplitude * (-d * d / (2.0 * self.sigma * self.sigma)).exp()
    }

    fn second_derivative(&self, d: f64) -> f64 {
        // |g''(d)| = g(d)·|d²/σ⁴ − 1/σ²|; bound by the max of the factor
        // over [d, d+1] (monotone in d beyond σ, so endpoint suffices).
        let s2 = self.sigma * self.sigma;
        let factor = ((d * d + 2.0 * d + 1.0) / (s2 * s2) + 1.0 / s2).abs();
        self.value(d) * factor
    }
}

/// Inverse-distance response model `A·min(1, r₀/d)` (Poisson-like kernels,
/// Eq. 5): second derivative `2A·r₀/d³`.
#[derive(Clone, Copy, Debug)]
pub struct InverseDistanceDecay {
    /// Amplitude scale.
    pub amplitude: f64,
    /// Distance at which the response equals the amplitude.
    pub r0: f64,
}

impl DecayModel for InverseDistanceDecay {
    fn value(&self, d: f64) -> f64 {
        if d <= self.r0 {
            self.amplitude
        } else {
            self.amplitude * self.r0 / d
        }
    }

    fn second_derivative(&self, d: f64) -> f64 {
        let d = d.max(self.r0);
        2.0 * self.amplitude * self.r0 / (d * d * d)
    }
}

/// Per-band error report.
#[derive(Clone, Copy, Debug)]
pub struct BandBound {
    /// Sampling rate in the band.
    pub rate: u32,
    /// Band's inner Chebyshev distance.
    pub from: usize,
    /// Band's outer Chebyshev distance (inclusive; `usize::MAX` = far).
    pub to: usize,
    /// Pointwise absolute error bound in the band.
    pub pointwise: f64,
    /// Points in the band (volume of the shell, clipped to the grid).
    pub points: usize,
}

/// Derives per-band pointwise bounds and an aggregate relative-L2 bound for
/// compressing a response (modeled by `decay`) of a `k³` sub-domain in an
/// `n³` grid under `schedule`.
///
/// Returns `(bands, relative_l2_bound)`. The L2 bound is
/// `sqrt(Σ_b points_b · e_b²) / ‖f‖₂` with `‖f‖₂` lower-bounded by the
/// in-domain response mass `amplitude·sqrt(k³)` — conservative on both
/// sides, so the measured error must come in below it.
pub fn schedule_error_bound(
    n: usize,
    k: usize,
    schedule: &RateSchedule,
    decay: &dyn DecayModel,
) -> (Vec<BandBound>, f64) {
    // Band edges from the schedule: distance 0 (dense), then each band,
    // then far.
    let mut edges: Vec<(usize, usize, u32)> = Vec::new(); // (from, to, rate)
    let mut prev = 0usize;
    for b in &schedule.bands {
        edges.push((prev + 1, b.max_distance, b.rate));
        prev = b.max_distance;
    }
    let max_d = n / 2; // periodic max distance
    if prev < max_d {
        edges.push((prev + 1, max_d, schedule.far_rate));
    }

    let shell_points = |from: usize, to: usize| -> usize {
        let side = |d: usize| (k + 2 * d).min(n);
        let outer = side(to.min(max_d));
        let inner = side(from.saturating_sub(1));
        outer.pow(3).saturating_sub(inner.pow(3))
    };

    let mut bands = Vec::new();
    let mut err_sq = 0.0;
    for (from, to, rate) in edges {
        if from > max_d {
            continue;
        }
        // Worst case in the band is at its inner edge (decay ⇒ monotone).
        let m2 = decay.second_derivative(from as f64);
        // Interpolation cannot be worse than the field magnitude itself.
        let pointwise = trilinear_error_bound(rate, m2).min(2.0 * decay.value(from as f64));
        let points = shell_points(from, to);
        err_sq += points as f64 * pointwise * pointwise;
        bands.push(BandBound {
            rate,
            from,
            to,
            pointwise,
            points,
        });
    }
    let f_norm = decay.value(0.0) * ((k * k * k) as f64).sqrt();
    let bound = if f_norm > 0.0 {
        err_sq.sqrt() / f_norm
    } else {
        0.0
    };
    (bands, bound)
}

/// Convenience: the bound for an existing plan (uses its grid and domain
/// geometry with the given schedule and decay model).
pub fn plan_error_bound(
    plan: &SamplingPlan,
    schedule: &RateSchedule,
    decay: &dyn DecayModel,
) -> f64 {
    let d: &BoxRegion = plan.domain();
    let k = d.size().0;
    schedule_error_bound(plan.n(), k, schedule, decay).1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::CompressedField;
    use lcc_grid::{relative_l2, Grid3};
    use std::sync::Arc;

    #[test]
    fn pointwise_bound_formula() {
        assert_eq!(trilinear_error_bound(2, 1.0), 1.5);
        assert_eq!(trilinear_error_bound(4, 0.5), 3.0);
    }

    #[test]
    fn gaussian_decay_model_shapes() {
        let g = GaussianDecay {
            amplitude: 1.0,
            sigma: 2.0,
        };
        assert_eq!(g.value(0.0), 1.0);
        assert!(g.value(4.0) < g.value(2.0));
        assert!(g.second_derivative(8.0) < g.second_derivative(3.0));
    }

    #[test]
    fn inverse_distance_model_shapes() {
        let p = InverseDistanceDecay {
            amplitude: 2.0,
            r0: 1.0,
        };
        assert_eq!(p.value(0.5), 2.0);
        assert!((p.value(4.0) - 0.5).abs() < 1e-12);
        assert!(p.second_derivative(8.0) < p.second_derivative(2.0));
    }

    #[test]
    fn bound_dominates_measured_error_for_gaussian_field() {
        // Build the exact setting the bound models: a Gaussian response
        // centered on the sub-domain, compressed and reconstructed.
        let n = 64;
        let k = 16;
        let sigma = 2.0;
        let lo = (n - k) / 2;
        let domain = BoxRegion::new([lo; 3], [lo + k; 3]);
        let schedule = RateSchedule::paper_default(k, 16);
        let plan = Arc::new(SamplingPlan::build(n, domain, &schedule));
        let c0 = n as f64 / 2.0;
        let field = Grid3::from_fn((n, n, n), |x, y, z| {
            // Max over distances to the domain: flat inside, Gaussian tail.
            let dd = domain.chebyshev_distance([x, y, z]) as f64;
            let _ = (x, y, z);
            let _ = c0;
            (-dd * dd / (2.0 * sigma * sigma)).exp()
        });
        let compressed = CompressedField::compress(plan.clone(), &field);
        let measured = relative_l2(field.as_slice(), compressed.reconstruct().as_slice());
        let decay = GaussianDecay {
            amplitude: 1.0,
            sigma,
        };
        let (_, bound) = schedule_error_bound(n, k, &schedule, &decay);
        assert!(
            measured <= bound,
            "measured {measured} exceeds analytic bound {bound}"
        );
        // And the bound should not be vacuous (within a couple orders).
        assert!(
            bound < measured.max(1e-6) * 1e3 + 1.0,
            "bound {bound} is vacuous"
        );
    }

    #[test]
    fn bound_decreases_with_denser_schedule() {
        let decay = GaussianDecay {
            amplitude: 1.0,
            sigma: 2.0,
        };
        let coarse = schedule_error_bound(128, 32, &RateSchedule::uniform(8), &decay).1;
        let fine = schedule_error_bound(128, 32, &RateSchedule::uniform(2), &decay).1;
        assert!(fine < coarse, "fine {fine} vs coarse {coarse}");
        let adaptive =
            schedule_error_bound(128, 32, &RateSchedule::paper_default(32, 16), &decay).1;
        assert!(adaptive < coarse);
    }

    #[test]
    fn band_reports_cover_grid() {
        let decay = GaussianDecay {
            amplitude: 1.0,
            sigma: 1.0,
        };
        let (bands, _) = schedule_error_bound(64, 16, &RateSchedule::paper_default(16, 16), &decay);
        assert!(!bands.is_empty());
        let covered: usize = bands.iter().map(|b| b.points).sum();
        assert!(covered <= 64usize.pow(3));
        // Inner band must carry a tighter rate than the far band.
        assert!(bands.first().unwrap().rate <= bands.last().unwrap().rate);
    }
}
