//! # lcc-octree — adaptive multi-resolution sampling compression
//!
//! The paper's Step 3: "Adaptive octree-based multi-resolution sampling as
//! the compression algorithm." A convolution of a `k³` sub-domain with a
//! rapidly decaying Green's function produces a response concentrated on and
//! around the sub-domain; this crate captures that response as
//!
//! * a [`schedule::RateSchedule`] — the paper's distance-banded rates
//!   (full resolution in the domain, r = 2 within k/2, r = 8 out to 4k,
//!   r = 16/32 beyond, dense at the grid boundary);
//! * a [`plan::SamplingPlan`] — the octree of uniform-rate leaf cells,
//!   serializable to the paper's 5-ints-per-cell metadata array;
//! * a [`field::CompressedField`] — sample values, streaming per-z-plane
//!   capture for the pipeline, and trilinear reconstruction for the final
//!   accumulation-and-interpolation step.

pub mod bounds;
pub mod cache;
pub mod field;
pub mod plan;
pub mod schedule;

pub use bounds::{
    plan_error_bound, schedule_error_bound, BandBound, DecayModel, GaussianDecay,
    InverseDistanceDecay,
};
pub use cache::PlanCache;
pub use field::{CompressedField, RegionPayload};
pub use plan::{OctCell, RateStats, SamplingPlan};
pub use schedule::{RateBand, RateSchedule};
