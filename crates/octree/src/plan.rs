//! Octree construction and the paper's 5-integer cell encoding.
//!
//! "The octree metadata is stored in an array, with five consecutive integers
//! capturing the details of one octree cell. The five numbers represent the
//! co-ordinates of the corner point (x, y, z), the downsampling rate of that
//! cell and a count of the total number of samples in the cells that come
//! before the current cell. The last entry helps to decode the octree." (§4)
//!
//! Construction subdivides the N³ cube until each cell has a *provably*
//! uniform sampling rate under the schedule. Uniformity is decided with exact
//! interval arithmetic on the two distances the schedule depends on — the
//! Chebyshev distance to the sub-domain and the distance to the nearest grid
//! face — so no probe-point heuristics are involved.

use lcc_grid::BoxRegion;

use crate::schedule::RateSchedule;

/// One octree leaf cell: a cube sampled at a uniform stride.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OctCell {
    /// Low corner of the cube.
    pub corner: [usize; 3],
    /// Cube side length (power of two).
    pub size: usize,
    /// Sampling stride within the cube. Always divides `size`, so a cell
    /// contributes exactly `(size/rate)³` samples.
    pub rate: u32,
}

impl OctCell {
    /// Samples per axis, `size / rate` (exact by construction).
    #[inline]
    pub fn samples_per_axis(&self) -> usize {
        self.size / self.rate as usize
    }

    /// Total samples in this cell.
    #[inline]
    pub fn sample_count(&self) -> usize {
        let spa = self.samples_per_axis();
        spa * spa * spa
    }

    /// The cell's box region.
    pub fn region(&self) -> BoxRegion {
        BoxRegion::new(
            self.corner,
            [
                self.corner[0] + self.size,
                self.corner[1] + self.size,
                self.corner[2] + self.size,
            ],
        )
    }

    /// Iterates global sample coordinates in `(tx, ty, tz)` row-major order.
    pub fn sample_positions(&self) -> impl Iterator<Item = [usize; 3]> + '_ {
        let spa = self.samples_per_axis();
        let r = self.rate as usize;
        let c = self.corner;
        (0..spa).flat_map(move |tx| {
            (0..spa).flat_map(move |ty| {
                (0..spa).map(move |tz| [c[0] + tx * r, c[1] + ty * r, c[2] + tz * r])
            })
        })
    }

    /// Flat sample index of local lattice coordinates within this cell.
    #[inline]
    pub fn local_sample_index(&self, tx: usize, ty: usize, tz: usize) -> usize {
        let spa = self.samples_per_axis();
        debug_assert!(tx < spa && ty < spa && tz < spa);
        (tx * spa + ty) * spa + tz
    }
}

/// Exact `[min, max]` of the per-axis *periodic* domain distance over the
/// half-open cell interval `[lo, lo+size)` against the domain interval
/// `[dlo, dhi)` on an `n`-periodic axis.
///
/// On a torus the distance is 0 inside the arc and unimodal across the gap
/// (rising to a peak at the arc's antipode), so the extrema lie at the cell
/// endpoints, at 0 if the cell meets the arc, or at the antipodal peak if
/// the cell contains it.
fn axis_domain_distance_range(
    lo: usize,
    size: usize,
    dlo: usize,
    dhi: usize,
    n: usize,
) -> (usize, usize) {
    let hi = lo + size; // exclusive; cells never wrap
    let last = hi - 1;
    let d = |p: usize| -> usize {
        if p >= dlo && p < dhi {
            0
        } else {
            let fwd = if p >= dhi {
                p - (dhi - 1)
            } else {
                p + n - (dhi - 1)
            };
            let bwd = if p < dlo { dlo - p } else { dlo + n - p };
            fwd.min(bwd)
        }
    };
    let min = if lo < dhi && hi > dlo {
        0
    } else {
        d(lo).min(d(last))
    };
    let mut max = d(lo).max(d(last));
    // Antipodal peak of the gap, where forward and backward distances meet.
    let peak = (dhi - 1 + dlo + n) / 2 % n;
    for cand in [peak, (peak + 1) % n] {
        if cand >= lo && cand <= last {
            max = max.max(d(cand));
        }
    }
    (min, max)
}

/// Exact `[min, max]` of `min(p, n-1-p)` (distance to the nearest face along
/// one axis) over `[lo, lo+size)`.
fn axis_boundary_distance_range(lo: usize, size: usize, n: usize) -> (usize, usize) {
    let last = lo + size - 1;
    let f = |p: usize| p.min(n - 1 - p);
    let min = f(lo).min(f(last));
    // f is unimodal with its peak at the midpoint; if the interval covers the
    // peak the max is floor((n-1)/2), otherwise it is at an endpoint.
    let peak = (n - 1) / 2;
    let max = if lo <= peak && peak <= last {
        peak.min(n - 1 - peak).max(f(lo)).max(f(last))
    } else {
        f(lo).max(f(last))
    };
    (min, max)
}

/// Classification of a cell under the schedule.
enum CellClass {
    /// Whole cell maps to one rate.
    Uniform(u32),
    /// Mixed rates; carries the finest rate occurring anywhere in the cell,
    /// so a leaf cut short can fall back to conservative oversampling.
    Mixed(u32),
}

fn classify(
    corner: [usize; 3],
    size: usize,
    n: usize,
    domain: &BoxRegion,
    schedule: &RateSchedule,
) -> CellClass {
    // Periodic domain distance interval (Chebyshev = max over axes).
    let mut dom_min = 0usize;
    let mut dom_max = 0usize;
    for (&c, (&dlo, &dhi)) in corner.iter().zip(domain.lo.iter().zip(domain.hi.iter())) {
        let (lo, hi) = axis_domain_distance_range(c, size, dlo, dhi, n);
        dom_min = dom_min.max(lo);
        dom_max = dom_max.max(hi);
    }
    // Boundary distance interval (min over axes; separable for both bounds).
    let mut bnd_min = usize::MAX;
    let mut bnd_max = usize::MAX;
    for &c in &corner {
        let (lo, hi) = axis_boundary_distance_range(c, size, n);
        bnd_min = bnd_min.min(lo);
        bnd_max = bnd_max.min(hi);
    }

    if dom_max == 0 {
        // Entirely inside the sub-domain: always full resolution.
        return CellClass::Uniform(1);
    }
    if dom_min == 0 {
        // Straddles the sub-domain border: the finest rate present is 1.
        return CellClass::Mixed(1);
    }
    let w = schedule.boundary_width;
    let in_shell_all = bnd_max < w;
    let out_shell_all = bnd_min >= w;
    if in_shell_all {
        return CellClass::Uniform(schedule.boundary_rate);
    }
    // Band rates are monotone in distance, so the rates at the two distance
    // extremes bound everything in between.
    let r_near = schedule.rate_for(dom_min, w);
    let r_far = schedule.rate_for(dom_max, w);
    if !out_shell_all {
        // Straddles the boundary shell.
        let finest = schedule.boundary_rate.min(r_near).min(r_far);
        return CellClass::Mixed(finest);
    }
    if r_near == r_far {
        CellClass::Uniform(r_near)
    } else {
        CellClass::Mixed(r_near.min(r_far))
    }
}

/// A complete adaptive sampling plan: the octree leaves covering `[0, n)³`
/// with uniform per-cell rates, plus prefix sample counts.
#[derive(Clone, Debug)]
pub struct SamplingPlan {
    n: usize,
    domain: BoxRegion,
    cells: Vec<OctCell>,
    /// `cum[i]` = number of samples in cells `0..i`; `cum[cells.len()]` = total.
    cum: Vec<u64>,
}

impl SamplingPlan {
    /// Builds the octree plan for an `n³` grid (n a power of two) around the
    /// sub-domain `domain` under `schedule`.
    pub fn build(n: usize, domain: BoxRegion, schedule: &RateSchedule) -> Self {
        assert!(
            n.is_power_of_two(),
            "octree requires power-of-two grid, got {n}"
        );
        assert!(
            BoxRegion::cube(n).contains_box(&domain),
            "domain {domain:?} must lie inside the n={n} grid"
        );
        assert!(!domain.is_empty(), "domain must be non-empty");
        schedule.validate().expect("invalid rate schedule");

        // Rates are capped at size/2 so every cell of size ≥ 2 carries at
        // least 2 samples per axis, keeping per-cell trilinear interpolation
        // well-posed (and exact on affine fields).
        let cap = |rate: u32, size: usize| -> u32 { (rate as usize).min((size / 2).max(1)) as u32 };
        let mut cells = Vec::new();
        let mut stack = vec![([0usize; 3], n)];
        while let Some((corner, size)) = stack.pop() {
            match classify(corner, size, n, &domain, schedule) {
                CellClass::Uniform(rate) => {
                    cells.push(OctCell {
                        corner,
                        size,
                        rate: cap(rate, size),
                    });
                }
                // A mixed cell larger than twice its finest applicable rate
                // is still worth splitting; below that, exact banding would
                // fragment into size-1 cells for no accuracy gain, so we cut
                // the recursion and oversample at the finest rate present.
                CellClass::Mixed(finest) if size <= 2 * finest as usize => {
                    cells.push(OctCell {
                        corner,
                        size,
                        rate: cap(finest, size),
                    });
                }
                CellClass::Mixed(_) => {
                    debug_assert!(size > 1, "size-1 cells are always uniform");
                    let h = size / 2;
                    for dx in 0..2 {
                        for dy in 0..2 {
                            for dz in 0..2 {
                                stack.push((
                                    [corner[0] + dx * h, corner[1] + dy * h, corner[2] + dz * h],
                                    h,
                                ));
                            }
                        }
                    }
                }
            }
        }
        // Deterministic order: sort by corner so encode/decode and streaming
        // passes agree regardless of stack traversal order.
        cells.sort_unstable_by_key(|c| c.corner);
        let mut cum = Vec::with_capacity(cells.len() + 1);
        let mut acc = 0u64;
        for c in &cells {
            cum.push(acc);
            acc += c.sample_count() as u64;
        }
        cum.push(acc);
        SamplingPlan {
            n,
            domain,
            cells,
            cum,
        }
    }

    /// Grid size n.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The sub-domain this plan is centered on.
    pub fn domain(&self) -> &BoxRegion {
        &self.domain
    }

    /// The octree leaves.
    pub fn cells(&self) -> &[OctCell] {
        &self.cells
    }

    /// Prefix sample count for cell `i`.
    pub fn cell_offset(&self, i: usize) -> u64 {
        self.cum[i]
    }

    /// Total number of retained samples.
    pub fn total_samples(&self) -> usize {
        *self.cum.last().unwrap() as usize
    }

    /// Compressed footprint in bytes: f64 samples + the 5-integer metadata
    /// per cell (stored as u64 here; the paper notes the integers can be
    /// narrowed further).
    pub fn compressed_bytes(&self) -> usize {
        self.total_samples() * 8 + self.cells.len() * 5 * 8
    }

    /// Dense footprint the plan replaces, in bytes (N³ doubles).
    pub fn dense_bytes(&self) -> usize {
        self.n * self.n * self.n * 8
    }

    /// `dense_bytes / compressed_bytes`.
    pub fn compression_ratio(&self) -> f64 {
        self.dense_bytes() as f64 / self.compressed_bytes() as f64
    }

    /// Serializes to the paper's 5-ints-per-cell metadata array:
    /// `(x, y, z, rate, samples_before)` for each cell.
    pub fn encode(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.cells.len() * 5);
        for (i, c) in self.cells.iter().enumerate() {
            out.push(c.corner[0] as u64);
            out.push(c.corner[1] as u64);
            out.push(c.corner[2] as u64);
            out.push(c.rate as u64);
            out.push(self.cum[i]);
        }
        out
    }

    /// Reconstructs a plan from the 5-int metadata, the grid size, the
    /// domain, and the total sample count (the length of the accompanying
    /// samples array — exactly what a receiving worker has in hand).
    ///
    /// Cell sizes are *not* stored: they are recovered from the sample counts
    /// (`count = (size/rate)³` and sizes/rates are powers of two), which is
    /// why the paper's compact encoding suffices.
    pub fn decode(
        n: usize,
        domain: BoxRegion,
        encoded: &[u64],
        total_samples: u64,
    ) -> Result<Self, String> {
        if !encoded.len().is_multiple_of(5) {
            return Err(format!(
                "metadata length {} not a multiple of 5",
                encoded.len()
            ));
        }
        let num = encoded.len() / 5;
        let mut cells = Vec::with_capacity(num);
        let mut cum = Vec::with_capacity(num + 1);
        for i in 0..num {
            let e = &encoded[i * 5..i * 5 + 5];
            let next_cum = if i + 1 < num {
                encoded[(i + 1) * 5 + 4]
            } else {
                total_samples
            };
            let count = next_cum
                .checked_sub(e[4])
                .ok_or_else(|| format!("cell {i}: non-monotone sample counts"))?;
            let spa = integer_cbrt(count)
                .ok_or_else(|| format!("cell {i}: sample count {count} is not a cube"))?;
            let rate = e[3] as u32;
            if !rate.is_power_of_two() {
                return Err(format!("cell {i}: rate {rate} not a power of two"));
            }
            let size = spa as usize * rate as usize;
            cells.push(OctCell {
                corner: [e[0] as usize, e[1] as usize, e[2] as usize],
                size,
                rate,
            });
            cum.push(e[4]);
        }
        cum.push(total_samples);
        Ok(SamplingPlan {
            n,
            domain,
            cells,
            cum,
        })
    }

    /// Packed low-precision metadata — the paper's note that the 5-integer
    /// encoding "can be compressed further using lower precision (since we
    /// store only integers)". Per cell: corner as 3×u16, log₂(rate) as u8,
    /// sample count as u32 — 11 bytes against the canonical 40.
    ///
    /// Valid for grids up to 65536³ and cells up to 2³² samples (any cell
    /// that large would defeat the compression anyway).
    pub fn encode_packed(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.cells.len() * 11);
        for c in &self.cells {
            for a in 0..3 {
                out.extend_from_slice(&(c.corner[a] as u16).to_le_bytes());
            }
            out.push(c.rate.trailing_zeros() as u8);
            out.extend_from_slice(&(c.sample_count() as u32).to_le_bytes());
        }
        out
    }

    /// Decodes [`Self::encode_packed`] output.
    pub fn decode_packed(n: usize, domain: BoxRegion, bytes: &[u8]) -> Result<Self, String> {
        if !bytes.len().is_multiple_of(11) {
            return Err(format!(
                "packed metadata length {} not a multiple of 11",
                bytes.len()
            ));
        }
        let mut cells = Vec::with_capacity(bytes.len() / 11);
        let mut cum = Vec::with_capacity(cells.capacity() + 1);
        let mut acc = 0u64;
        for rec in bytes.chunks_exact(11) {
            let corner = [
                u16::from_le_bytes([rec[0], rec[1]]) as usize,
                u16::from_le_bytes([rec[2], rec[3]]) as usize,
                u16::from_le_bytes([rec[4], rec[5]]) as usize,
            ];
            let rate = 1u32 << rec[6];
            let count = u32::from_le_bytes([rec[7], rec[8], rec[9], rec[10]]) as u64;
            let spa =
                integer_cbrt(count).ok_or_else(|| format!("sample count {count} is not a cube"))?;
            cells.push(OctCell {
                corner,
                size: spa as usize * rate as usize,
                rate,
            });
            cum.push(acc);
            acc += count;
        }
        cum.push(acc);
        Ok(SamplingPlan {
            n,
            domain,
            cells,
            cum,
        })
    }

    /// Sorted unique z-coordinates that carry at least one sample — the
    /// z-planes the streaming pipeline must materialize.
    pub fn retained_z(&self) -> Vec<usize> {
        let mut flags = vec![false; self.n];
        for c in &self.cells {
            let r = c.rate as usize;
            let mut z = c.corner[2];
            let end = c.corner[2] + c.size;
            while z < end {
                flags[z] = true;
                z += r;
            }
        }
        flags
            .iter()
            .enumerate()
            .filter_map(|(z, &f)| if f { Some(z) } else { None })
            .collect()
    }

    /// Indices of the cells whose region intersects `region` — the cells a
    /// worker owning `region` needs to reconstruct its share of this
    /// domain's contribution. ("The structure of the octree also makes it
    /// easier to accumulate results on a distributed system", §4.)
    pub fn cells_intersecting(&self, region: &BoxRegion) -> Vec<usize> {
        self.cells
            .iter()
            .enumerate()
            .filter(|(_, c)| c.region().intersect(region).is_some())
            .map(|(i, _)| i)
            .collect()
    }

    /// Histogram of (rate → cell count, covered points, samples), the data
    /// behind Fig. 3's density picture.
    pub fn rate_histogram(&self) -> Vec<RateStats> {
        let mut map: std::collections::BTreeMap<u32, RateStats> = Default::default();
        for c in &self.cells {
            let e = map.entry(c.rate).or_insert(RateStats {
                rate: c.rate,
                cells: 0,
                points: 0,
                samples: 0,
            });
            e.cells += 1;
            e.points += c.size * c.size * c.size;
            e.samples += c.sample_count();
        }
        map.into_values().collect()
    }

    /// Verifies the structural invariant: the leaves tile `[0, n)³` exactly
    /// (used by tests and debug assertions; O(cells log cells)).
    pub fn verify_tiling(&self) -> Result<(), String> {
        let total: usize = self.cells.iter().map(|c| c.size.pow(3)).sum();
        if total != self.n.pow(3) {
            return Err(format!(
                "cells cover {total} points, grid has {}",
                self.n.pow(3)
            ));
        }
        for (i, a) in self.cells.iter().enumerate() {
            for b in &self.cells[i + 1..] {
                if a.region().intersect(&b.region()).is_some() {
                    return Err(format!("overlapping cells {a:?} and {b:?}"));
                }
            }
        }
        Ok(())
    }
}

/// Per-rate aggregate statistics.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RateStats {
    /// Sampling stride.
    pub rate: u32,
    /// Number of leaf cells at this rate.
    pub cells: usize,
    /// Grid points covered by those cells.
    pub points: usize,
    /// Samples retained in those cells.
    pub samples: usize,
}

/// Exact integer cube root, if `v` is a perfect cube.
fn integer_cbrt(v: u64) -> Option<u64> {
    if v == 0 {
        return None;
    }
    let r = (v as f64).cbrt().round() as u64;
    (r.saturating_sub(1)..=r + 1).find(|&c| c * c * c == v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::RateSchedule;

    fn centered_domain(n: usize, k: usize) -> BoxRegion {
        let lo = (n - k) / 2;
        BoxRegion::new([lo; 3], [lo + k; 3])
    }

    #[test]
    fn plan_tiles_grid_exactly() {
        let n = 64;
        let domain = centered_domain(n, 16);
        let plan = SamplingPlan::build(n, domain, &RateSchedule::paper_default(16, 16));
        plan.verify_tiling().unwrap();
    }

    #[test]
    fn domain_is_fully_dense() {
        let n = 64;
        let k = 16;
        let domain = centered_domain(n, k);
        let plan = SamplingPlan::build(n, domain, &RateSchedule::paper_default(k, 16));
        // Every point of the domain must be a sample of some rate-1 cell.
        let mut covered = 0usize;
        for c in plan.cells() {
            if let Some(i) = c.region().intersect(&domain) {
                assert_eq!(c.rate, 1, "cell inside domain must be dense: {c:?}");
                covered += i.volume();
            }
        }
        assert_eq!(covered, domain.volume());
    }

    #[test]
    fn far_cells_use_far_rate() {
        let n = 256;
        let k = 16;
        let domain = centered_domain(n, k);
        let schedule = RateSchedule::paper_default(k, 32);
        let plan = SamplingPlan::build(n, domain, &schedule);
        // Far cells exist; their rate is the far rate capped at size/2
        // (the band boundary at distance 4k fragments the blocks to ≤ 32³,
        // so rate 32 appears as capped rate 16 here).
        let hist = plan.rate_histogram();
        assert!(
            hist.iter().any(|s| s.rate >= 16),
            "expected coarse far-rate cells, got {hist:?}"
        );
        // The far region dominates the grid volume but not the samples.
        let far: usize = hist.iter().filter(|s| s.rate >= 8).map(|s| s.points).sum();
        let far_samples: usize = hist.iter().filter(|s| s.rate >= 8).map(|s| s.samples).sum();
        assert!(far > n * n * n / 2);
        assert!(far_samples < far / 64, "far region must be sparse");
    }

    #[test]
    fn rates_never_undersample_schedule() {
        // The conservative construction may oversample (finer rate) near
        // band boundaries, but must never sample coarser than the schedule
        // demands at any point.
        let n = 64;
        let k = 16;
        let domain = centered_domain(n, k);
        let schedule = RateSchedule::paper_default(k, 16);
        let plan = SamplingPlan::build(n, domain, &schedule);
        for cell in plan.cells() {
            for p in [cell.corner, {
                let mut q = cell.corner;
                q.iter_mut().for_each(|v| *v += cell.size - 1);
                q
            }] {
                let want = schedule.rate_for(
                    domain.periodic_chebyshev_distance(p, n),
                    p.iter().map(|&v| v.min(n - 1 - v)).min().unwrap(),
                );
                assert!(
                    cell.rate <= want,
                    "cell {cell:?} undersamples point {p:?}: rate {} > schedule {want}",
                    cell.rate
                );
            }
        }
        // And the interior of the domain is exactly rate 1.
        let mid = [n / 2; 3];
        let cell = plan
            .cells()
            .iter()
            .find(|c| c.region().contains(mid))
            .unwrap();
        assert_eq!(cell.rate, 1);
    }

    #[test]
    fn total_samples_below_dense() {
        let n = 128;
        let k = 32;
        let plan = SamplingPlan::build(
            n,
            centered_domain(n, k),
            &RateSchedule::paper_default(k, 16),
        );
        let total = plan.total_samples();
        assert!(total < n * n * n / 4, "compression too weak: {total}");
        assert!(total > k * k * k, "must keep at least the dense domain");
        assert!(plan.compression_ratio() > 4.0);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let n = 64;
        let k = 16;
        let domain = centered_domain(n, k);
        let plan = SamplingPlan::build(n, domain, &RateSchedule::paper_default(k, 16));
        let encoded = plan.encode();
        assert_eq!(encoded.len(), plan.cells().len() * 5);
        let decoded =
            SamplingPlan::decode(n, domain, &encoded, plan.total_samples() as u64).unwrap();
        assert_eq!(decoded.cells(), plan.cells());
        assert_eq!(decoded.total_samples(), plan.total_samples());
    }

    #[test]
    fn packed_encoding_roundtrips_and_shrinks() {
        let n = 64;
        let k = 16;
        let domain = centered_domain(n, k);
        let plan = SamplingPlan::build(n, domain, &RateSchedule::paper_default(k, 16));
        let packed = plan.encode_packed();
        assert_eq!(packed.len(), plan.cells().len() * 11);
        assert!(
            packed.len() * 3 < plan.encode().len() * 8,
            "packed must be at least ~3x smaller than the u64 encoding"
        );
        let decoded = SamplingPlan::decode_packed(n, domain, &packed).unwrap();
        assert_eq!(decoded.cells(), plan.cells());
        assert_eq!(decoded.total_samples(), plan.total_samples());
        for i in 0..plan.cells().len() {
            assert_eq!(decoded.cell_offset(i), plan.cell_offset(i));
        }
    }

    #[test]
    fn packed_decode_rejects_garbage() {
        let domain = BoxRegion::new([0; 3], [4; 3]);
        assert!(SamplingPlan::decode_packed(8, domain, &[0u8; 7]).is_err());
        // count = 7 is not a cube
        let mut rec = vec![0u8; 11];
        rec[7] = 7;
        assert!(SamplingPlan::decode_packed(8, domain, &rec).is_err());
    }

    #[test]
    fn decode_rejects_garbage() {
        let domain = BoxRegion::new([0; 3], [4; 3]);
        assert!(SamplingPlan::decode(8, domain, &[1, 2, 3], 0).is_err());
        // Non-cube sample count.
        let bad = vec![0, 0, 0, 1, 0];
        assert!(SamplingPlan::decode(8, domain, &bad, 7).is_err());
    }

    #[test]
    fn retained_z_contains_domain_planes() {
        let n = 64;
        let k = 16;
        let domain = centered_domain(n, k);
        let plan = SamplingPlan::build(n, domain, &RateSchedule::paper_default(k, 16));
        let zs = plan.retained_z();
        for z in domain.lo[2]..domain.hi[2] {
            assert!(zs.contains(&z), "domain plane z={z} must be retained");
        }
        assert!(zs.len() < n, "some planes must be dropped");
        let mut sorted = zs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted, zs, "retained_z must be sorted unique");
    }

    #[test]
    fn sample_positions_in_cell_bounds() {
        let n = 32;
        let plan = SamplingPlan::build(
            n,
            BoxRegion::new([8; 3], [16; 3]),
            &RateSchedule::paper_default(8, 8),
        );
        for c in plan.cells() {
            let count = c.sample_positions().count();
            assert_eq!(count, c.sample_count());
            for p in c.sample_positions() {
                assert!(c.region().contains(p), "sample {p:?} outside {c:?}");
            }
        }
    }

    #[test]
    fn cum_is_prefix_sum() {
        let n = 32;
        let plan = SamplingPlan::build(
            n,
            BoxRegion::new([0; 3], [8; 3]),
            &RateSchedule::paper_default(8, 8),
        );
        let mut acc = 0u64;
        for (i, c) in plan.cells().iter().enumerate() {
            assert_eq!(plan.cell_offset(i), acc);
            acc += c.sample_count() as u64;
        }
        assert_eq!(plan.total_samples() as u64, acc);
    }

    #[test]
    fn off_center_domain_ok() {
        let n = 64;
        // Domain touching the grid corner.
        let domain = BoxRegion::new([0; 3], [16; 3]);
        let plan = SamplingPlan::build(n, domain, &RateSchedule::paper_default(16, 16));
        plan.verify_tiling().unwrap();
    }

    #[test]
    fn uniform_schedule_keeps_structure_small() {
        let n = 64;
        let domain = BoxRegion::new([16; 3], [32; 3]);
        let adaptive = SamplingPlan::build(n, domain, &RateSchedule::paper_default(16, 16));
        let uniform = SamplingPlan::build(n, domain, &RateSchedule::uniform(8));
        assert!(uniform.cells().len() <= adaptive.cells().len());
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn non_pow2_grid_rejected() {
        SamplingPlan::build(
            24,
            BoxRegion::new([0; 3], [8; 3]),
            &RateSchedule::uniform(2),
        );
    }

    #[test]
    fn integer_cbrt_cases() {
        assert_eq!(integer_cbrt(1), Some(1));
        assert_eq!(integer_cbrt(27), Some(3));
        assert_eq!(integer_cbrt(4096), Some(16));
        assert_eq!(integer_cbrt(26), None);
        assert_eq!(integer_cbrt(0), None);
    }
}
