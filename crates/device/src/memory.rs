//! Byte-accurate device memory tracking.
//!
//! The paper's Tables 2 and 4 are memory-capacity results: which `(N, k)`
//! combinations fit in a 16 GB or 32 GB GPU, and how far the *actual* cuFFT
//! footprint exceeds the algorithmic estimate. We reproduce them with a
//! tracking allocator: every simulated device buffer charges its size against
//! a capacity, RAII releases it, and the high-water mark is recorded.

use std::sync::Arc;

use parking_lot::Mutex;

/// Error returned when an allocation would exceed device capacity.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OutOfDeviceMemory {
    /// Bytes requested by the failing allocation.
    pub requested: u64,
    /// Bytes in use at the time of the request.
    pub in_use: u64,
    /// Device capacity.
    pub capacity: u64,
    /// Label of the failing allocation.
    pub label: String,
}

impl std::fmt::Display for OutOfDeviceMemory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "out of device memory: '{}' requested {} B with {} B in use of {} B",
            self.label, self.requested, self.in_use, self.capacity
        )
    }
}

impl std::error::Error for OutOfDeviceMemory {}

#[derive(Debug, Default)]
struct MemState {
    used: u64,
    peak: u64,
}

/// A tracked memory arena with a hard capacity.
#[derive(Clone)]
pub struct MemoryTracker {
    capacity: u64,
    state: Arc<Mutex<MemState>>,
}

impl MemoryTracker {
    /// Creates a tracker with `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        MemoryTracker {
            capacity,
            state: Arc::new(Mutex::new(MemState::default())),
        }
    }

    /// Device capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently allocated.
    pub fn used(&self) -> u64 {
        self.state.lock().used
    }

    /// High-water mark since creation (or the last [`Self::reset_peak`]).
    pub fn peak(&self) -> u64 {
        self.state.lock().peak
    }

    /// Resets the high-water mark to the current usage.
    pub fn reset_peak(&self) {
        let mut s = self.state.lock();
        s.peak = s.used;
    }

    /// Allocates `bytes`, failing if the capacity would be exceeded.
    pub fn alloc(&self, bytes: u64, label: &str) -> Result<DeviceBuffer, OutOfDeviceMemory> {
        let mut s = self.state.lock();
        if s.used + bytes > self.capacity {
            return Err(OutOfDeviceMemory {
                requested: bytes,
                in_use: s.used,
                capacity: self.capacity,
                label: label.to_string(),
            });
        }
        s.used += bytes;
        s.peak = s.peak.max(s.used);
        Ok(DeviceBuffer {
            bytes,
            tracker: self.state.clone(),
            label: label.to_string(),
        })
    }
}

/// RAII handle for a tracked allocation; releases its bytes on drop.
#[derive(Debug)]
pub struct DeviceBuffer {
    bytes: u64,
    tracker: Arc<Mutex<MemState>>,
    label: String,
}

impl DeviceBuffer {
    /// Size of this buffer in bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Debug label.
    pub fn label(&self) -> &str {
        &self.label
    }
}

impl Drop for DeviceBuffer {
    fn drop(&mut self) {
        let mut s = self.tracker.lock();
        debug_assert!(s.used >= self.bytes, "double free in memory tracker");
        s.used -= self.bytes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GB: u64 = 1 << 30;

    #[test]
    fn alloc_free_accounting() {
        let t = MemoryTracker::new(16 * GB);
        let a = t.alloc(4 * GB, "slab").unwrap();
        assert_eq!(t.used(), 4 * GB);
        let b = t.alloc(2 * GB, "pencils").unwrap();
        assert_eq!(t.used(), 6 * GB);
        assert_eq!(t.peak(), 6 * GB);
        drop(a);
        assert_eq!(t.used(), 2 * GB);
        assert_eq!(t.peak(), 6 * GB, "peak survives frees");
        drop(b);
        assert_eq!(t.used(), 0);
    }

    #[test]
    fn capacity_enforced() {
        let t = MemoryTracker::new(GB);
        let _a = t.alloc(GB / 2, "x").unwrap();
        let err = t.alloc(GB, "too-big").unwrap_err();
        assert_eq!(err.requested, GB);
        assert_eq!(err.in_use, GB / 2);
        assert!(err.to_string().contains("too-big"));
    }

    #[test]
    fn exact_fit_allowed() {
        let t = MemoryTracker::new(100);
        let _a = t.alloc(100, "all").unwrap();
        assert!(t.alloc(1, "over").is_err());
    }

    #[test]
    fn reset_peak() {
        let t = MemoryTracker::new(GB);
        {
            let _a = t.alloc(GB / 2, "x").unwrap();
        }
        assert_eq!(t.peak(), GB / 2);
        t.reset_peak();
        assert_eq!(t.peak(), 0);
    }

    #[test]
    fn buffer_metadata() {
        let t = MemoryTracker::new(GB);
        let a = t.alloc(123, "labelled").unwrap();
        assert_eq!(a.bytes(), 123);
        assert_eq!(a.label(), "labelled");
    }
}
