//! # lcc-device — the simulated accelerator
//!
//! Substitute for the paper's V100 GPUs (see DESIGN.md §2): a byte-accurate
//! tracking allocator with a hard capacity, cuFFT-style plan workspace
//! modeling, and an analytic transfer/kernel timing model. The paper's
//! memory-capacity results (Tables 2 and 4) are claims about which buffers
//! are live simultaneously — exactly what this crate measures.

pub mod cufft_model;
pub mod device;
pub mod memory;

pub use cufft_model::{PlanSet, PlanShape};
pub use device::{fft_flops, PerfModel, SimDevice};
pub use memory::{DeviceBuffer, MemoryTracker, OutOfDeviceMemory};

/// One gibibyte, for readable capacity math.
pub const GIB: u64 = 1 << 30;

/// Formats a byte count as GB with two decimals (paper-table style).
pub fn fmt_gb(bytes: u64) -> String {
    format!("{:.2}", bytes as f64 / 1e9)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_gb_matches_decimal_convention() {
        assert_eq!(fmt_gb(8_000_000_000), "8.00");
        assert_eq!(fmt_gb(620_000_000), "0.62");
    }
}
