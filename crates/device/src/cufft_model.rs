//! cuFFT-style plan workspace modeling.
//!
//! Table 4 of the paper shows actual GPU memory exceeding the algorithmic
//! estimate by ~60-110%, attributed to cuFFT: "the difference between the
//! values is due to the use of CUFFT, which creates temporaries in the midst
//! of calculations." cuFFT's documented behaviour is to allocate a workspace
//! area proportional to the transform size (typically one full copy of the
//! batch buffer, more for odd sizes). This module models that overhead so
//! the simulated-device experiments reproduce the estimated-vs-actual gap.

/// Describes one planned batched transform on the device.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PlanShape {
    /// Length of each 1D transform.
    pub len: usize,
    /// Number of transforms in the batch.
    pub batch: usize,
    /// Bytes per element (16 for complex double).
    pub elem_bytes: usize,
}

impl PlanShape {
    /// Complex-double batch of `batch` transforms of length `len`.
    pub fn c2c(len: usize, batch: usize) -> Self {
        PlanShape {
            len,
            batch,
            elem_bytes: 16,
        }
    }

    /// Size of the data buffer the plan operates on.
    pub fn data_bytes(&self) -> u64 {
        (self.len * self.batch * self.elem_bytes) as u64
    }

    /// Workspace bytes the planned transform reserves, following cuFFT's
    /// rule of thumb: one full copy of the batch buffer for power-of-two
    /// sizes, twice that for non-powers-of-two (Bluestein-style staging).
    pub fn workspace_bytes(&self) -> u64 {
        if self.len.is_power_of_two() {
            self.data_bytes()
        } else {
            2 * self.data_bytes()
        }
    }
}

/// Accumulates the worst-case concurrent workspace requirement of a set of
/// plans that are alive at the same time (cuFFT keeps per-plan work areas
/// allocated for the life of the plan).
#[derive(Default, Debug)]
pub struct PlanSet {
    plans: Vec<PlanShape>,
}

impl PlanSet {
    /// Creates an empty plan set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a plan.
    pub fn add(&mut self, shape: PlanShape) {
        self.plans.push(shape);
    }

    /// Total workspace held by all live plans.
    pub fn total_workspace_bytes(&self) -> u64 {
        self.plans.iter().map(|p| p.workspace_bytes()).sum()
    }

    /// The registered plans.
    pub fn plans(&self) -> &[PlanShape] {
        &self.plans
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pow2_workspace_is_one_copy() {
        let p = PlanShape::c2c(1024, 64);
        assert_eq!(p.data_bytes(), 1024 * 64 * 16);
        assert_eq!(p.workspace_bytes(), p.data_bytes());
    }

    #[test]
    fn non_pow2_workspace_doubles() {
        let p = PlanShape::c2c(1000, 8);
        assert_eq!(p.workspace_bytes(), 2 * p.data_bytes());
    }

    #[test]
    fn plan_set_accumulates() {
        let mut s = PlanSet::new();
        s.add(PlanShape::c2c(512, 512)); // 2D stage
        s.add(PlanShape::c2c(512, 1024)); // z-stage batch
        assert_eq!(
            s.total_workspace_bytes(),
            (512 * 512 * 16 + 512 * 1024 * 16) as u64
        );
        assert_eq!(s.plans().len(), 2);
    }
}
