//! The simulated accelerator.
//!
//! Substitutes for the paper's NVIDIA V100s (16 GB and 32 GB variants on PSC
//! Bridges). The device couples the byte-accurate [`MemoryTracker`] with an
//! analytic timing model (PCIe transfers, kernel throughput) so experiments
//! can report both "does it fit" (Tables 2, 4) and first-order time costs.

use parking_lot::Mutex;

use crate::memory::{DeviceBuffer, MemoryTracker, OutOfDeviceMemory};

/// Analytic performance model of the accelerator.
#[derive(Clone, Copy, Debug)]
pub struct PerfModel {
    /// Host→device bandwidth, bytes/s.
    pub h2d_bandwidth: f64,
    /// Device→host bandwidth, bytes/s.
    pub d2h_bandwidth: f64,
    /// Per-transfer setup latency, seconds.
    pub transfer_latency: f64,
    /// Sustained effective throughput for FFT-like kernels, flop/s.
    pub compute_flops: f64,
    /// Per-kernel launch overhead, seconds.
    pub launch_latency: f64,
}

impl PerfModel {
    /// V100-class numbers: 12 GB/s effective PCIe gen3, ~3 Tflop/s sustained
    /// double-precision FFT throughput, 10 µs launches.
    pub fn v100() -> Self {
        PerfModel {
            h2d_bandwidth: 12.0e9,
            d2h_bandwidth: 12.0e9,
            transfer_latency: 10e-6,
            compute_flops: 3.0e12,
            launch_latency: 10e-6,
        }
    }

    /// Xeon-class CPU numbers for the FFTW baseline comparison:
    /// ~60 Gflop/s sustained double-precision, no transfer stage.
    pub fn xeon_cpu() -> Self {
        PerfModel {
            h2d_bandwidth: f64::INFINITY,
            d2h_bandwidth: f64::INFINITY,
            transfer_latency: 0.0,
            compute_flops: 60.0e9,
            launch_latency: 0.0,
        }
    }
}

/// A simulated accelerator with tracked memory and an accumulating clock.
pub struct SimDevice {
    name: String,
    memory: MemoryTracker,
    perf: PerfModel,
    clock: Mutex<f64>,
}

impl SimDevice {
    /// Creates a device with the given memory capacity and model.
    pub fn new(name: impl Into<String>, capacity_bytes: u64, perf: PerfModel) -> Self {
        SimDevice {
            name: name.into(),
            memory: MemoryTracker::new(capacity_bytes),
            perf,
            clock: Mutex::new(0.0),
        }
    }

    /// The paper's 16 GB V100 (HPE Apollo 6500 node).
    pub fn v100_16gb() -> Self {
        SimDevice::new("V100 16GB", 16 * (1 << 30), PerfModel::v100())
    }

    /// The paper's 32 GB V100 (one GPU of the DGX-2 AI node).
    pub fn v100_32gb() -> Self {
        SimDevice::new("V100 32GB", 32 * (1 << 30), PerfModel::v100())
    }

    /// Device name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The memory tracker.
    pub fn memory(&self) -> &MemoryTracker {
        &self.memory
    }

    /// The performance model.
    pub fn perf(&self) -> &PerfModel {
        &self.perf
    }

    /// Allocates a tracked device buffer.
    pub fn alloc(&self, bytes: u64, label: &str) -> Result<DeviceBuffer, OutOfDeviceMemory> {
        self.memory.alloc(bytes, label)
    }

    /// Charges a host→device transfer to the clock; returns its duration.
    pub fn transfer_h2d(&self, bytes: u64) -> f64 {
        let t = self.perf.transfer_latency + bytes as f64 / self.perf.h2d_bandwidth;
        *self.clock.lock() += t;
        t
    }

    /// Charges a device→host transfer to the clock; returns its duration.
    pub fn transfer_d2h(&self, bytes: u64) -> f64 {
        let t = self.perf.transfer_latency + bytes as f64 / self.perf.d2h_bandwidth;
        *self.clock.lock() += t;
        t
    }

    /// Charges a kernel of `flops` floating-point operations; returns its
    /// duration.
    pub fn launch_kernel(&self, flops: f64) -> f64 {
        let t = self.perf.launch_latency + flops / self.perf.compute_flops;
        *self.clock.lock() += t;
        t
    }

    /// Total simulated seconds accumulated on this device.
    pub fn elapsed(&self) -> f64 {
        *self.clock.lock()
    }

    /// Resets the simulated clock.
    pub fn reset_clock(&self) {
        *self.clock.lock() = 0.0;
    }
}

/// Flop count of a batched complex 1D FFT: `5 · len · log₂(len)` per
/// transform (the standard radix-2 operation count).
pub fn fft_flops(len: usize, batch: usize) -> f64 {
    5.0 * len as f64 * (len as f64).log2().max(1.0) * batch as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_paper_capacities() {
        assert_eq!(SimDevice::v100_16gb().memory().capacity(), 16 << 30);
        assert_eq!(SimDevice::v100_32gb().memory().capacity(), 32 << 30);
    }

    #[test]
    fn clock_accumulates() {
        let d = SimDevice::new("test", 1 << 30, PerfModel::v100());
        let t1 = d.transfer_h2d(12_000_000_000); // ~1 s at 12 GB/s
        assert!((t1 - 1.0).abs() < 0.01);
        let t2 = d.launch_kernel(3.0e12); // ~1 s at 3 Tflop/s
        assert!((t2 - 1.0).abs() < 0.01);
        assert!((d.elapsed() - t1 - t2).abs() < 1e-12);
        d.reset_clock();
        assert_eq!(d.elapsed(), 0.0);
    }

    #[test]
    fn oom_on_oversubscription() {
        let d = SimDevice::v100_16gb();
        assert!(d.alloc(17 << 30, "huge").is_err());
        let _ok = d.alloc(15 << 30, "big").unwrap();
        assert!(d.alloc(2 << 30, "more").is_err());
    }

    #[test]
    fn fft_flops_scaling() {
        // Doubling the batch doubles the flops; doubling the length a bit
        // more than doubles (the log factor).
        let base = fft_flops(1024, 1);
        assert_eq!(fft_flops(1024, 2), 2.0 * base);
        assert!(fft_flops(2048, 1) > 2.0 * base);
        assert!((base - 5.0 * 1024.0 * 10.0).abs() < 1e-9);
    }

    #[test]
    fn cpu_model_has_no_transfer_cost() {
        let d = SimDevice::new("cpu", 128 << 30, PerfModel::xeon_cpu());
        assert_eq!(d.transfer_h2d(1 << 30), 0.0);
    }
}
