//! The Fig. 5 plan: MASSIF pruned convolution as composed FFTX subplans.
//!
//! Mirrors the paper's `massif_convolution_plan()` sketch — four subplans
//! (padded forward transform, pointwise Green's multiply via a user
//! callback, inverse transform with adaptive sampling, copy-out) composed
//! into one reusable plan. The point of §6 is expressiveness: the exact
//! pipeline the hand-tuned CUDA implementation needed callbacks for is a
//! few declarative lines here.

use std::sync::Arc;

use lcc_fft::{Complex64, FftDirection, FftPlanner};
use lcc_grid::BoxRegion;
use lcc_octree::{RateSchedule, SamplingPlan};

use crate::plan::{ComposeError, FftxMode, FftxPlan};
use crate::subplan::{CopyOffsetStage, Dft3dStage, PointwiseStage, SamplingStage, ZeroPadEmbed};

/// Builds the MASSIF convolution plan of Fig. 5.
///
/// * `n`, `k`, `corner` — grid, sub-domain size and placement.
/// * `greens_function` — the `complex_scaling` callback: transfer-function
///   value per frequency bin.
/// * `schedule` — the adaptive sampling strategy; `hotspot` is the response
///   region the octree densifies around.
///
/// Input: the `k³` sub-domain (complex); output: the `n³` grid holding the
/// sampled convolution result scattered to its true positions (zeros at
/// unsampled points).
pub fn massif_convolution_plan(
    n: usize,
    k: usize,
    corner: [usize; 3],
    greens_function: Arc<dyn Fn([usize; 3]) -> Complex64 + Send + Sync>,
    schedule: &RateSchedule,
    hotspot: BoxRegion,
    mode: FftxMode,
) -> Result<FftxPlan, ComposeError> {
    let planner = Arc::new(FftPlanner::new());
    let sampling = Arc::new(SamplingPlan::build(n, hotspot, schedule));
    let gf = greens_function;
    FftxPlan::compose(
        vec![
            // plans[0]: "RDFT converts small cube into slab" — here the
            // padded embed + forward transform pair.
            Box::new(ZeroPadEmbed { k, n, corner }),
            Box::new(Dft3dStage {
                n,
                direction: FftDirection::Forward,
                planner: planner.clone(),
            }),
            // plans[1]: pointwise c2c with the Green's-function callback.
            Box::new(PointwiseStage {
                n,
                callback: Box::new(move |f, v| v * gf(f)),
            }),
            // plans[2]: inverse transform with adaptive sampling attached.
            Box::new(Dft3dStage {
                n,
                direction: FftDirection::Inverse,
                planner,
            }),
            Box::new(SamplingStage {
                plan: sampling.clone(),
            }),
            // plans[3]: copy_offset places samples back in the output cube.
            Box::new(CopyOffsetStage { plan: sampling }),
        ],
        mode,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcc_core::TraditionalConvolver;
    use lcc_greens::{GaussianKernel, KernelSpectrum};
    use lcc_grid::Grid3;

    #[test]
    fn fig5_plan_matches_dense_convolution_on_samples() {
        let n = 16;
        let k = 4;
        let corner = [4usize, 4, 4];
        let kernel = Arc::new(GaussianKernel::new(n, 1.0));
        let hotspot = BoxRegion::new([12, 12, 12], [16, 16, 16]);
        let kc = kernel.clone();
        let plan = massif_convolution_plan(
            n,
            k,
            corner,
            Arc::new(move |f| kc.eval(f)),
            &RateSchedule::uniform(1),
            hotspot,
            FftxMode::HighPerformance,
        )
        .unwrap();

        let sub = Grid3::from_fn((k, k, k), |x, y, z| (x + y + z) as f64 + 1.0);
        let input: Vec<Complex64> = sub
            .as_slice()
            .iter()
            .map(|&v| Complex64::from_real(v))
            .collect();
        let out = plan.execute(&input);

        let want = TraditionalConvolver::new(n).convolve_subdomain(&sub, corner, kernel.as_ref());
        // Rate-1 schedule: every point is sampled, so the scattered output
        // equals the dense result everywhere.
        for (i, v) in out.iter().enumerate() {
            let w = want.as_slice()[i];
            assert!((v.re - w).abs() < 1e-9, "point {i}: {} vs {w}", v.re);
            assert!(v.im.abs() < 1e-9);
        }
    }

    #[test]
    fn fig5_plan_observe_mode_lists_four_logical_stages() {
        let n = 8;
        let plan = massif_convolution_plan(
            8,
            2,
            [0; 3],
            Arc::new(|_| Complex64::ONE),
            &RateSchedule::uniform(2),
            BoxRegion::new([0; 3], [2; 3]),
            FftxMode::Observe,
        )
        .unwrap();
        let desc = plan.describe();
        for stage in [
            "zero_pad_embed",
            "dft3d",
            "pointwise_c2c",
            "adaptive_sampling",
            "copy_offset",
        ] {
            assert!(desc.contains(stage), "missing {stage} in:\n{desc}");
        }
        let est = plan.estimate();
        assert!(est.flops > (n * n * n) as f64);
    }
}
