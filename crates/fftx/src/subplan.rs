//! Subplans — the FFTX "guru plan" building blocks.
//!
//! Fig. 5 of the paper composes the MASSIF convolution from four sub-plans:
//! an r2c transform of the small cube into a slab, a pointwise c2c with the
//! Green's function attached via a `complex_scaling` callback, a c2r inverse
//! with an `adaptive_sampling` callback, and a final `copy_offset` stage
//! that "is responsible for placing the samples in the right place in the
//! output array". Each [`Subplan`] here mirrors one of those calls: a typed
//! shape (input/output lengths), an executor, and a flop estimate the
//! optimizer modes can consume.

use std::sync::Arc;

use lcc_fft::{fft_3d, ifft_3d_normalized, Complex64, FftDirection, FftPlanner};
use lcc_octree::SamplingPlan;

/// A composable pipeline stage over complex buffers.
pub trait Subplan: Send + Sync {
    /// Stage label shown by observe mode.
    fn name(&self) -> String;
    /// Required input length.
    fn input_len(&self) -> usize;
    /// Produced output length.
    fn output_len(&self) -> usize;
    /// Executes the stage.
    fn execute(&self, input: &[Complex64]) -> Vec<Complex64>;
    /// First-order flop estimate for the cost model.
    fn estimated_flops(&self) -> f64;
}

/// Embeds a `k³` cube at `corner` of an otherwise-zero `n³` grid — the
/// padding the r2c guru plan performs implicitly via `padded_dims`.
pub struct ZeroPadEmbed {
    /// Sub-domain size.
    pub k: usize,
    /// Padded grid size.
    pub n: usize,
    /// Placement of the cube's low corner.
    pub corner: [usize; 3],
}

impl Subplan for ZeroPadEmbed {
    fn name(&self) -> String {
        format!(
            "zero_pad_embed(k={}, n={}, corner={:?})",
            self.k, self.n, self.corner
        )
    }

    fn input_len(&self) -> usize {
        self.k * self.k * self.k
    }

    fn output_len(&self) -> usize {
        self.n * self.n * self.n
    }

    fn execute(&self, input: &[Complex64]) -> Vec<Complex64> {
        assert_eq!(input.len(), self.input_len());
        let (n, k) = (self.n, self.k);
        let mut out = vec![Complex64::ZERO; n * n * n];
        for x in 0..k {
            for y in 0..k {
                for z in 0..k {
                    let dst = ((self.corner[0] + x) % n * n + (self.corner[1] + y) % n) * n
                        + (self.corner[2] + z) % n;
                    out[dst] = input[(x * k + y) * k + z];
                }
            }
        }
        out
    }

    fn estimated_flops(&self) -> f64 {
        0.0
    }
}

/// A full 3D transform stage (forward or normalized inverse).
pub struct Dft3dStage {
    /// Grid size.
    pub n: usize,
    /// Transform direction; the inverse is normalized.
    pub direction: FftDirection,
    /// Shared planner.
    pub planner: Arc<FftPlanner>,
}

impl Subplan for Dft3dStage {
    fn name(&self) -> String {
        format!("dft3d(n={}, {:?})", self.n, self.direction)
    }

    fn input_len(&self) -> usize {
        self.n * self.n * self.n
    }

    fn output_len(&self) -> usize {
        self.input_len()
    }

    fn execute(&self, input: &[Complex64]) -> Vec<Complex64> {
        let mut buf = input.to_vec();
        let dims = (self.n, self.n, self.n);
        match self.direction {
            FftDirection::Forward => fft_3d(&self.planner, &mut buf, dims, self.direction),
            FftDirection::Inverse => ifft_3d_normalized(&self.planner, &mut buf, dims),
        }
        buf
    }

    fn estimated_flops(&self) -> f64 {
        let n3 = (self.n as f64).powi(3);
        5.0 * n3 * (n3.log2())
    }
}

/// Per-bin callback type for pointwise stages: receives the frequency bin
/// and the value, returns the scaled value (the paper's `complex_scaling`
/// user callback).
pub type PointwiseFn = dyn Fn([usize; 3], Complex64) -> Complex64 + Send + Sync;

/// Pointwise multiply with a user callback (`fftx_plan_guru_pointwise_c2c`).
pub struct PointwiseStage {
    /// Grid size.
    pub n: usize,
    /// The user callback.
    pub callback: Box<PointwiseFn>,
}

impl Subplan for PointwiseStage {
    fn name(&self) -> String {
        format!("pointwise_c2c(n={})", self.n)
    }

    fn input_len(&self) -> usize {
        self.n * self.n * self.n
    }

    fn output_len(&self) -> usize {
        self.input_len()
    }

    fn execute(&self, input: &[Complex64]) -> Vec<Complex64> {
        let n = self.n;
        let mut out = Vec::with_capacity(input.len());
        for fx in 0..n {
            for fy in 0..n {
                for fz in 0..n {
                    let v = input[(fx * n + fy) * n + fz];
                    out.push((self.callback)([fx, fy, fz], v));
                }
            }
        }
        out
    }

    fn estimated_flops(&self) -> f64 {
        6.0 * (self.n as f64).powi(3)
    }
}

/// Octree adaptive sampling (the `adaptive_sampling` callback of the c2r
/// stage): dense field → compressed sample vector.
pub struct SamplingStage {
    /// The sampling plan.
    pub plan: Arc<SamplingPlan>,
}

impl Subplan for SamplingStage {
    fn name(&self) -> String {
        format!(
            "adaptive_sampling(n={}, samples={})",
            self.plan.n(),
            self.plan.total_samples()
        )
    }

    fn input_len(&self) -> usize {
        self.plan.n().pow(3)
    }

    fn output_len(&self) -> usize {
        self.plan.total_samples()
    }

    fn execute(&self, input: &[Complex64]) -> Vec<Complex64> {
        assert_eq!(input.len(), self.input_len());
        let n = self.plan.n();
        let mut out = Vec::with_capacity(self.plan.total_samples());
        for cell in self.plan.cells() {
            for p in cell.sample_positions() {
                out.push(input[(p[0] * n + p[1]) * n + p[2]]);
            }
        }
        out
    }

    fn estimated_flops(&self) -> f64 {
        self.plan.total_samples() as f64
    }
}

/// The `copy_offset` stage: scatters compressed samples back to their dense
/// positions (unsampled points are zero; interpolation is the accumulation
/// step's job, outside this plan).
pub struct CopyOffsetStage {
    /// The sampling plan describing where each sample lands.
    pub plan: Arc<SamplingPlan>,
}

impl Subplan for CopyOffsetStage {
    fn name(&self) -> String {
        format!("copy_offset(n={})", self.plan.n())
    }

    fn input_len(&self) -> usize {
        self.plan.total_samples()
    }

    fn output_len(&self) -> usize {
        self.plan.n().pow(3)
    }

    fn execute(&self, input: &[Complex64]) -> Vec<Complex64> {
        assert_eq!(input.len(), self.input_len());
        let n = self.plan.n();
        let mut out = vec![Complex64::ZERO; n * n * n];
        let mut i = 0;
        for cell in self.plan.cells() {
            for p in cell.sample_positions() {
                out[(p[0] * n + p[1]) * n + p[2]] = input[i];
                i += 1;
            }
        }
        out
    }

    fn estimated_flops(&self) -> f64 {
        self.plan.total_samples() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcc_fft::c64;
    use lcc_grid::BoxRegion;
    use lcc_octree::RateSchedule;

    #[test]
    fn embed_places_cube() {
        let s = ZeroPadEmbed {
            k: 2,
            n: 4,
            corner: [1, 1, 1],
        };
        let input: Vec<Complex64> = (0..8).map(|i| c64(i as f64, 0.0)).collect();
        let out = s.execute(&input);
        assert_eq!(out[(4 + 1) * 4 + 1], c64(0.0, 0.0));
        assert_eq!(out[(2 * 4 + 2) * 4 + 2], c64(7.0, 0.0));
        assert_eq!(out[0], Complex64::ZERO);
    }

    #[test]
    fn dft_roundtrip_through_stages() {
        let planner = Arc::new(FftPlanner::new());
        let fwd = Dft3dStage {
            n: 4,
            direction: FftDirection::Forward,
            planner: planner.clone(),
        };
        let inv = Dft3dStage {
            n: 4,
            direction: FftDirection::Inverse,
            planner,
        };
        let input: Vec<Complex64> = (0..64).map(|i| c64(i as f64, -(i as f64))).collect();
        let back = inv.execute(&fwd.execute(&input));
        for (a, b) in input.iter().zip(&back) {
            assert!((*a - *b).norm() < 1e-9);
        }
    }

    #[test]
    fn pointwise_callback_sees_bins() {
        let s = PointwiseStage {
            n: 2,
            callback: Box::new(|f, v| v * (f[0] + 2 * f[1] + 4 * f[2]) as f64),
        };
        let input = vec![Complex64::ONE; 8];
        let out = s.execute(&input);
        // Bin (1,1,1) has weight 1+2+4 = 7 and row-major index 7.
        assert_eq!(out[7], c64(7.0, 0.0));
        assert_eq!(out[0], Complex64::ZERO);
    }

    #[test]
    fn sampling_then_copy_is_partial_identity() {
        let n = 8;
        let plan = Arc::new(SamplingPlan::build(
            n,
            BoxRegion::new([0; 3], [4; 3]),
            &RateSchedule::uniform(2),
        ));
        let sample = SamplingStage { plan: plan.clone() };
        let copy = CopyOffsetStage { plan: plan.clone() };
        let input: Vec<Complex64> = (0..n * n * n).map(|i| c64(i as f64, 0.0)).collect();
        let out = copy.execute(&sample.execute(&input));
        // Every sampled position must round-trip; others are zero.
        let mut sampled = vec![false; n * n * n];
        for cell in plan.cells() {
            for p in cell.sample_positions() {
                sampled[(p[0] * n + p[1]) * n + p[2]] = true;
            }
        }
        for (i, &flag) in sampled.iter().enumerate() {
            if flag {
                assert_eq!(out[i], input[i], "sample {i} lost");
            } else {
                assert_eq!(out[i], Complex64::ZERO);
            }
        }
    }
}
