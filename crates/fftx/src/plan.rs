//! Plan composition and execution modes.
//!
//! "The overall FFTX plan is composed of a sequence of sub-plans. Each
//! sub-plan handles a separate task… The optimization and code-generation
//! are applied to the overall plan, and hence, across all the sub-plans.
//! The plan can be executed more than once." (§6)
//!
//! Modes mirror the paper's flags: `FFTX_MODE_OBSERVE` renders the plan
//! tree, `FFTX_ESTIMATE` produces a first-order cost estimate, and
//! `FFTX_HIGH_PERFORMANCE` stands in for the SPIRAL backend (here: the
//! plans execute directly against `lcc-fft`).

use crate::subplan::Subplan;
use lcc_fft::Complex64;

/// Plan construction/execution mode flags (paper Fig. 5's `MY_FFTX_MODE`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FftxMode {
    /// Print/record the plan structure without optimizing.
    Observe,
    /// Attach a cost estimate (the `FFTX_ESTIMATE` flag).
    Estimate,
    /// Full optimization (SPIRAL codegen in real FFTX; direct execution
    /// against the native kernels here).
    HighPerformance,
}

/// Error from composing mismatched subplans.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComposeError {
    /// Index of the stage whose input did not match.
    pub stage: usize,
    /// Expected input length.
    pub expected: usize,
    /// Actual previous output length.
    pub got: usize,
}

impl std::fmt::Display for ComposeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "subplan {} expects input of length {}, previous stage produces {}",
            self.stage, self.expected, self.got
        )
    }
}

impl std::error::Error for ComposeError {}

/// First-order cost estimate of a composed plan.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CostEstimate {
    /// Total estimated floating-point operations.
    pub flops: f64,
    /// Total intermediate buffer traffic in complex elements.
    pub elements_moved: usize,
}

/// A composed, executable FFTX-style plan.
pub struct FftxPlan {
    subplans: Vec<Box<dyn Subplan>>,
    mode: FftxMode,
}

impl std::fmt::Debug for FftxPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.describe())
    }
}

impl FftxPlan {
    /// Composes subplans, validating that shapes chain
    /// (`fftx_plan_compose`).
    pub fn compose(subplans: Vec<Box<dyn Subplan>>, mode: FftxMode) -> Result<Self, ComposeError> {
        assert!(!subplans.is_empty(), "a plan needs at least one subplan");
        for (i, w) in subplans.windows(2).enumerate() {
            if w[0].output_len() != w[1].input_len() {
                return Err(ComposeError {
                    stage: i + 1,
                    expected: w[1].input_len(),
                    got: w[0].output_len(),
                });
            }
        }
        Ok(FftxPlan { subplans, mode })
    }

    /// The plan's mode.
    pub fn mode(&self) -> FftxMode {
        self.mode
    }

    /// Number of composed subplans.
    pub fn len(&self) -> usize {
        self.subplans.len()
    }

    /// True if the plan has no subplans (impossible for composed plans).
    pub fn is_empty(&self) -> bool {
        self.subplans.is_empty()
    }

    /// Executes the full pipeline (`fftx_execute`). Reusable: the plan is
    /// immutable and can run any number of inputs.
    pub fn execute(&self, input: &[Complex64]) -> Vec<Complex64> {
        assert_eq!(
            input.len(),
            self.subplans[0].input_len(),
            "input length does not match the first subplan"
        );
        let mut buf = input.to_vec();
        for sp in &self.subplans {
            buf = sp.execute(&buf);
        }
        buf
    }

    /// Observe mode: a rendering of the plan tree.
    pub fn describe(&self) -> String {
        let mut s = String::from("fftx_plan {\n");
        for (i, sp) in self.subplans.iter().enumerate() {
            s.push_str(&format!(
                "  [{}] {} : {} -> {}\n",
                i,
                sp.name(),
                sp.input_len(),
                sp.output_len()
            ));
        }
        s.push('}');
        s
    }

    /// Estimate mode: aggregate cost across all subplans.
    pub fn estimate(&self) -> CostEstimate {
        let mut est = CostEstimate::default();
        for sp in &self.subplans {
            est.flops += sp.estimated_flops();
            est.elements_moved += sp.output_len();
        }
        est
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::subplan::{Dft3dStage, PointwiseStage, ZeroPadEmbed};
    use lcc_fft::{FftDirection, FftPlanner};
    use std::sync::Arc;

    fn planner() -> Arc<FftPlanner> {
        Arc::new(FftPlanner::new())
    }

    #[test]
    fn compose_validates_shapes() {
        let err = FftxPlan::compose(
            vec![
                Box::new(ZeroPadEmbed {
                    k: 2,
                    n: 4,
                    corner: [0; 3],
                }),
                Box::new(Dft3dStage {
                    n: 8,
                    direction: FftDirection::Forward,
                    planner: planner(),
                }),
            ],
            FftxMode::Observe,
        )
        .unwrap_err();
        assert_eq!(err.stage, 1);
        assert_eq!(err.expected, 512);
        assert_eq!(err.got, 64);
        assert!(err.to_string().contains("expects input"));
    }

    #[test]
    fn executes_composed_pipeline() {
        let p = planner();
        let plan = FftxPlan::compose(
            vec![
                Box::new(Dft3dStage {
                    n: 4,
                    direction: FftDirection::Forward,
                    planner: p.clone(),
                }),
                Box::new(PointwiseStage {
                    n: 4,
                    callback: Box::new(|_f, v| v * 2.0),
                }),
                Box::new(Dft3dStage {
                    n: 4,
                    direction: FftDirection::Inverse,
                    planner: p,
                }),
            ],
            FftxMode::HighPerformance,
        )
        .unwrap();
        let input: Vec<Complex64> = (0..64).map(|i| Complex64::from_real(i as f64)).collect();
        let out = plan.execute(&input);
        for (a, b) in input.iter().zip(&out) {
            assert!(
                (*a * 2.0 - *b).norm() < 1e-9,
                "pipeline must double the field"
            );
        }
        // Plans are reusable.
        let out2 = plan.execute(&input);
        assert_eq!(out, out2);
    }

    #[test]
    fn observe_mode_describes_stages() {
        let plan = FftxPlan::compose(
            vec![Box::new(ZeroPadEmbed {
                k: 2,
                n: 4,
                corner: [1, 0, 0],
            })],
            FftxMode::Observe,
        )
        .unwrap();
        let desc = plan.describe();
        assert!(desc.contains("zero_pad_embed"));
        assert!(desc.contains("8 -> 64"));
        assert_eq!(plan.len(), 1);
        assert_eq!(plan.mode(), FftxMode::Observe);
    }

    #[test]
    fn estimate_accumulates() {
        let p = planner();
        let plan = FftxPlan::compose(
            vec![
                Box::new(Dft3dStage {
                    n: 8,
                    direction: FftDirection::Forward,
                    planner: p.clone(),
                }),
                Box::new(Dft3dStage {
                    n: 8,
                    direction: FftDirection::Inverse,
                    planner: p,
                }),
            ],
            FftxMode::Estimate,
        )
        .unwrap();
        let est = plan.estimate();
        assert!(est.flops > 0.0);
        assert_eq!(est.elements_moved, 2 * 512);
    }
}
