//! # lcc-fftx — FFTX-flavoured algorithm specification
//!
//! Reproduction of the paper's §6: "the FFTX platform provides two key
//! components: a library interface and a code generation backend… Instead of
//! users writing their own callback functions, FFTX API calls can be used in
//! the code, just like calling a library."
//!
//! This crate is the *library interface* half: guru-style [`subplan`]s with
//! user callbacks (pointwise Green's scaling, adaptive sampling, copy-out),
//! composed by [`plan::FftxPlan::compose`] with shape validation, observe /
//! estimate / high-performance modes, and reusable execution. The SPIRAL
//! code-generation backend is out of scope (see DESIGN.md §2); plans execute
//! directly against the native `lcc-fft` kernels, which preserves the
//! claim the section makes — the Fig. 5 pipeline is expressible without
//! hand-written accelerator code — while remaining runnable.

pub mod massif_plan;
pub mod plan;
pub mod subplan;

pub use massif_plan::massif_convolution_plan;
pub use plan::{ComposeError, CostEstimate, FftxMode, FftxPlan};
pub use subplan::{
    CopyOffsetStage, Dft3dStage, PointwiseStage, SamplingStage, Subplan, ZeroPadEmbed,
};
