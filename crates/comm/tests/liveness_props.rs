//! Property tests for the failure detector's suspicion math and the
//! incarnation-versioned evidence seam.
//!
//! The pure pair [`ewma_observe`] / [`adaptive_threshold`] is the whole
//! phi-accrual-style brain of [`LivenessBoard`]: these properties pin the
//! monotonicity that makes silence-based demotion safe (a peer that goes
//! quiet can only become *more* suspect over time, never less, and no
//! estimate can push the give-up point past the configured cap). The
//! board-level properties pin the incarnation gate: hard evidence
//! gathered against a dead predecessor must never condemn the restarted
//! successor, no matter how late it lands.

use std::time::Duration;

use lcc_comm::{
    adaptive_threshold, ewma_observe, LivenessBoard, RetryPolicy, EWMA_ALPHA, MIN_SAMPLES,
};
use proptest::prelude::*;

/// A plausible inter-arrival gap in seconds (µs granularity up to ~100 s).
fn gap_s() -> impl Strategy<Value = f64> {
    (1u64..100_000_000).prop_map(|us| us as f64 / 1e6)
}

/// A plausible rhythm estimate: mean, variance, and enough samples for
/// the adaptive threshold to be trusted.
fn estimate() -> impl Strategy<Value = (f64, f64, u64)> {
    (gap_s(), 0.0f64..100.0, MIN_SAMPLES..1_000)
}

proptest! {
    /// The first beat seeds the mean directly; every later beat blends.
    #[test]
    fn first_observation_seeds_the_mean(gap in gap_s()) {
        let (mean, _, samples) = ewma_observe(0.0, 0.0, 0, gap);
        prop_assert_eq!(mean, gap);
        prop_assert_eq!(samples, 1);
    }

    /// Samples count up by exactly one per observation, variance stays
    /// nonnegative, and the mean stays within the hull of its inputs —
    /// the estimate cannot overshoot either the old mean or the new gap.
    #[test]
    fn ewma_update_is_bounded_and_counts(est in estimate(), gap in gap_s()) {
        let (mean, var, samples) = est;
        let (mean2, var2, samples2) = ewma_observe(mean, var, samples, gap);
        prop_assert_eq!(samples2, samples + 1);
        prop_assert!(var2 >= 0.0, "variance went negative: {}", var2);
        let (lo, hi) = if gap < mean { (gap, mean) } else { (mean, gap) };
        prop_assert!((lo..=hi).contains(&mean2), "{} not in [{lo}, {hi}]", mean2);
    }

    /// A *longer* observed gap can only raise the mean estimate: the
    /// update is strictly monotone in the observation, so a slowing peer
    /// ratchets its own allowance up, never down.
    #[test]
    fn ewma_mean_is_monotone_in_the_gap(
        est in estimate(),
        gap in gap_s(),
        extra in 0.001f64..10.0,
    ) {
        let (mean, var, samples) = est;
        let (m1, _, _) = ewma_observe(mean, var, samples, gap);
        let (m2, _, _) = ewma_observe(mean, var, samples, gap + extra);
        prop_assert!(m2 > m1, "mean fell from {} to {} on a longer gap", m1, m2);
        // And the step is exactly the blended difference.
        prop_assert!((m2 - m1 - EWMA_ALPHA * extra).abs() < 1e-9);
    }

    /// The threshold is always inside `[floor, cap]` once trusted, and
    /// exactly `cap` before [`MIN_SAMPLES`] beats: startup jitter can
    /// never demote faster than the configured worst case, and no rhythm
    /// estimate — however wild — can postpone the give-up point past the
    /// cap. A peer silent longer than `cap` is therefore *always*
    /// suspect: its suspicion can never be lowered by estimate drift.
    #[test]
    fn threshold_is_clamped_and_cap_wins_early(
        est in estimate(),
        floor_ms in 1u64..2_000,
        cap_ms in 2_000u64..60_000,
    ) {
        let (mean, var, samples) = est;
        let floor = Duration::from_millis(floor_ms);
        let cap = Duration::from_millis(cap_ms);
        let t = adaptive_threshold(mean, var, samples, floor, cap);
        prop_assert!(t >= floor && t <= cap, "{:?} outside [{:?}, {:?}]", t, floor, cap);
        let early = adaptive_threshold(mean, var, samples % MIN_SAMPLES, floor, cap);
        prop_assert_eq!(early, cap);
    }

    /// Monotone in the estimate: a peer whose observed rhythm slows (or
    /// jitters harder) gets a threshold at least as long — the detector
    /// adapts *toward* tolerance, and silence alone (which freezes the
    /// estimate) can never shrink an allowance already granted.
    #[test]
    fn threshold_is_monotone_in_the_estimate(
        est in estimate(),
        dmean in 0.0f64..10.0,
        dvar in 0.0f64..50.0,
    ) {
        let (mean, var, samples) = est;
        let floor = Duration::from_millis(100);
        let cap = Duration::from_secs(600);
        let t1 = adaptive_threshold(mean, var, samples, floor, cap);
        let t2 = adaptive_threshold(mean + dmean, var + dvar, samples, floor, cap);
        prop_assert!(t2 >= t1, "threshold shrank: {:?} -> {:?}", t1, t2);
    }
}

/// A board for `size` ranks observed from rank 0.
fn board(size: usize) -> std::sync::Arc<LivenessBoard> {
    LivenessBoard::new(0, size, &RetryPolicy::scaled_for(size))
}

proptest! {
    /// The incarnation gate, end to end: hard evidence observed against
    /// incarnation `i` is discarded if the peer has rejoined (any number
    /// of times) since — a reader thread's late EOF on the SIGKILLed
    /// predecessor's socket must not bury the restarted successor.
    #[test]
    fn stale_eof_never_buries_a_rejoined_peer(
        size in 2usize..8,
        peer_sel in 1usize..8,
        rejoins in 1usize..4,
    ) {
        let peer = peer_sel % size;
        if peer == 0 {
            return Ok(());
        }
        let b = board(size);
        let observed = b.incarnation(peer);
        for _ in 0..rejoins {
            b.mark_rejoined(peer);
        }
        prop_assert_eq!(b.incarnation(peer), observed + rejoins as u64);
        prop_assert!(
            !b.mark_hard_dead_as_of(peer, observed),
            "stale EOF (incarnation {}) was accepted after {} rejoin(s)",
            observed,
            rejoins
        );
        prop_assert!(
            !b.confirmed_dead().contains(&peer),
            "rejoined peer {} ended up buried",
            peer
        );
    }

    /// Evidence at the *current* incarnation convicts exactly once, and
    /// the conviction sticks across sweeps until a rejoin clears it.
    #[test]
    fn current_incarnation_evidence_buries_until_rejoin(size in 2usize..8) {
        let peer = size - 1;
        let b = board(size);
        prop_assert!(b.mark_hard_dead_as_of(peer, b.incarnation(peer)));
        // Repeated sightings of the same corpse are not fresh news.
        prop_assert!(!b.mark_hard_dead_as_of(peer, b.incarnation(peer)));
        prop_assert!(b.confirmed_dead().contains(&peer));
        prop_assert!(b.confirmed_dead().contains(&peer), "burial must be stable");
        b.mark_rejoined(peer);
        prop_assert!(!b.confirmed_dead().contains(&peer));
    }
}
