//! Property tests for the transport wire-frame codec
//! (`lcc_comm::transport::frame`) and the cross-process env codecs that
//! carry [`FaultPlan`] / [`RetryPolicy`] into socket-backend children.
//!
//! The contracts under test:
//!
//! 1. Every encoder/decoder pair round-trips every input (data frames with
//!    arbitrary seq/attempt/payload, acks with arbitrary seq/k, epoch
//!    headers nested inside data payloads).
//! 2. Truncated or corrupt input is a *typed* [`FrameDecodeError`] (and a
//!    typed [`CommError::Decode`] through `decode_for`) — never a panic.
//! 3. The decoders are total: arbitrary byte soup decodes or errors, and
//!    anything that decodes re-encodes to the exact original bytes (the
//!    wire layout is canonical).

use std::time::Duration;

use proptest::prelude::*;

use lcc_comm::transport::frame::{
    decode_epoch, decode_for, decode_owned, decode_view, encode_ack, encode_data, encode_epoch,
    encode_heartbeat, FrameDecodeError, WireFrame, WireFrameView, ACK_FRAME_LEN, DATA_HEADER,
    EPOCH_HEADER, KIND_ACK, KIND_DATA, KIND_HEARTBEAT,
};
use lcc_comm::{CommError, FaultPlan, RetryPolicy};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Data frames round-trip through both the borrowing and the owning
    /// decoder, for any header values and payload (including empty).
    #[test]
    fn data_frame_round_trips(
        seq in 0u64..u64::MAX,
        attempt in 0u32..u32::MAX,
        payload in proptest::collection::vec(0u8..=255, 0..=128),
    ) {
        let bytes = encode_data(seq, attempt, &payload);
        prop_assert_eq!(bytes.len(), DATA_HEADER + payload.len());
        match decode_view(&bytes) {
            Ok(WireFrameView::Data { seq: s, attempt: a, payload: p }) => {
                prop_assert_eq!((s, a), (seq, attempt));
                prop_assert_eq!(p, &payload[..]);
            }
            other => prop_assert!(false, "decoded {:?}", other),
        }
        prop_assert_eq!(
            decode_owned(bytes),
            Ok(WireFrame::Data { seq, attempt, payload })
        );
    }

    /// Ack frames round-trip for any (seq, k).
    #[test]
    fn ack_frame_round_trips(seq in 0u64..u64::MAX, k in 0u64..u64::MAX) {
        let bytes = encode_ack(seq, k);
        prop_assert_eq!(bytes.len(), ACK_FRAME_LEN);
        prop_assert_eq!(decode_view(&bytes), Ok(WireFrameView::Ack { seq, k }));
        prop_assert_eq!(decode_owned(bytes), Ok(WireFrame::Ack { seq, k }));
    }

    /// The full nesting the cluster actually sends — an epoch header inside
    /// a data payload — reassembles to the original pieces.
    #[test]
    fn epoch_in_data_round_trips(
        seq in 0u64..u64::MAX,
        attempt in 0u32..u32::MAX,
        epoch in 0u64..u64::MAX,
        payload in proptest::collection::vec(0u8..=255, 0..=64),
    ) {
        let framed = encode_data(seq, attempt, &encode_epoch(epoch, &payload));
        let inner = match decode_owned(framed) {
            Ok(WireFrame::Data { payload: inner, .. }) => inner,
            other => {
                return Err(TestCaseError::fail(format!(
                    "data frame decoded as {other:?}"
                )))
            }
        };
        let (e, p) = decode_epoch(&inner)
            .map_err(|e| TestCaseError::fail(format!("epoch decode failed: {e}")))?;
        prop_assert_eq!(e, epoch);
        prop_assert_eq!(p, &payload[..]);
    }

    /// Any truncation of a valid data frame's header is a typed error
    /// reporting the truncated length and the header size it needed.
    #[test]
    fn truncated_data_header_is_typed(
        seq in 0u64..u64::MAX,
        attempt in 0u32..u32::MAX,
        keep in 1usize..DATA_HEADER,
    ) {
        let mut bytes = encode_data(seq, attempt, &[0xAB; 4]);
        bytes.truncate(keep);
        prop_assert_eq!(
            decode_view(&bytes),
            Err(FrameDecodeError { len: keep, expected: DATA_HEADER })
        );
    }

    /// Acks are fixed-length: any other length with the ack kind byte is
    /// corruption, reported with the exact expected length.
    #[test]
    fn wrong_length_ack_is_typed(
        seq in 0u64..u64::MAX,
        k in 0u64..u64::MAX,
        delta in prop_oneof![1usize..=8, 100usize..=200],
        grow in 0u8..2,
    ) {
        let mut bytes = encode_ack(seq, k);
        if grow == 1 {
            bytes.extend(std::iter::repeat_n(0xEE, delta));
        } else {
            bytes.truncate(ACK_FRAME_LEN - delta.min(ACK_FRAME_LEN - 1));
        }
        let err = match decode_view(&bytes) {
            Err(e) => e,
            Ok(frame) => {
                return Err(TestCaseError::fail(format!(
                    "corrupt ack decoded as {frame:?}"
                )))
            }
        };
        prop_assert_eq!(err.len, bytes.len());
        prop_assert_eq!(err.expected, ACK_FRAME_LEN);
    }

    /// Decoding is total over arbitrary byte soup: it never panics, and
    /// whenever it succeeds the frame re-encodes to the exact input — the
    /// wire layout has one canonical encoding per frame.
    #[test]
    fn arbitrary_bytes_never_panic_and_decodes_are_canonical(
        bytes in proptest::collection::vec(0u8..=255, 0..=96),
    ) {
        match decode_view(&bytes) {
            Ok(WireFrameView::Data { seq, attempt, payload }) => {
                prop_assert_eq!(bytes[0], KIND_DATA);
                prop_assert_eq!(encode_data(seq, attempt, payload), bytes.clone());
            }
            Ok(WireFrameView::Ack { seq, k }) => {
                prop_assert_eq!(bytes[0], KIND_ACK);
                prop_assert_eq!(encode_ack(seq, k), bytes.clone());
            }
            Ok(WireFrameView::Heartbeat { beat }) => {
                prop_assert_eq!(bytes[0], KIND_HEARTBEAT);
                prop_assert_eq!(encode_heartbeat(beat).to_vec(), bytes.clone());
            }
            Err(e) => prop_assert_eq!(e.len, bytes.len()),
        }
        // The owning decoder agrees with the view decoder on every input.
        let view_ok = decode_view(&bytes).is_ok();
        prop_assert_eq!(decode_owned(bytes).is_ok(), view_ok);
    }

    /// `decode_for` maps every frame-level failure into the protocol's
    /// typed error with the right attribution, preserving the sizes.
    #[test]
    fn decode_for_attributes_failures(
        rank in 0usize..16,
        peer in 0usize..16,
        keep in 0usize..DATA_HEADER,
        seq in 0u64..u64::MAX,
    ) {
        // Every strict prefix of a data frame's header is undecodable.
        let mut bytes = encode_data(seq, 1, &[]);
        bytes.truncate(keep);
        match decode_for(rank, peer, bytes.clone()) {
            Err(CommError::Decode { rank: r, peer: p, len, .. }) => {
                prop_assert_eq!((r, p), (rank, peer));
                prop_assert_eq!(len, bytes.len());
            }
            other => prop_assert!(false, "expected Decode error, got {:?}", other),
        }
    }

    /// The env-string codec reconstructs a bit-identical [`FaultPlan`] —
    /// the property the socket backend's cross-process fault replay rests
    /// on (a single flipped mantissa bit would desynchronize every keyed
    /// fault roll between coordinator and children).
    #[test]
    fn fault_plan_env_codec_is_bit_exact(
        seed in 0u64..u64::MAX,
        drop in 0.0f64..1.0,
        dup in 0.0f64..1.0,
        delay_steps in 0u32..8,
        delay_unit_us in 1u64..500,
        crashed in proptest::collection::vec(0usize..8, 0..3),
        desert in proptest::collection::vec(0usize..8, 0..3),
    ) {
        let mut plan = FaultPlan::new(seed)
            .with_drop(drop)
            .with_duplicates(dup)
            .with_delay(delay_steps);
        plan.delay_unit = Duration::from_micros(delay_unit_us);
        plan.crashed_ranks = crashed.into_iter().collect();
        plan.desert_ranks = desert.into_iter().collect();
        let round_tripped = match FaultPlan::from_env_string(&plan.to_env_string()) {
            Ok(p) => p,
            Err(e) => {
                return Err(TestCaseError::fail(format!(
                    "own encoding failed to parse: {e}"
                )))
            }
        };
        prop_assert_eq!(round_tripped.clone(), plan.clone());
        // Bit-exact, not just PartialEq-equal:
        prop_assert_eq!(round_tripped.drop_prob.to_bits(), plan.drop_prob.to_bits());
        prop_assert_eq!(round_tripped.ack_drop_prob.to_bits(), plan.ack_drop_prob.to_bits());
        prop_assert_eq!(round_tripped.duplicate_prob.to_bits(), plan.duplicate_prob.to_bits());
    }

    /// Same for [`RetryPolicy`]: every deadline survives the env round trip.
    #[test]
    fn retry_policy_env_codec_round_trips(
        max_attempts in 1u32..64,
        us in (1u64..100_000, 1u64..10_000, 1u64..100_000),
        more_us in (1u64..100_000, 1u64..100_000, 1u64..100_000),
    ) {
        let (ack_us, base_us, cap_us) = us;
        let (recv_us, barrier_us, drain_us) = more_us;
        let policy = RetryPolicy {
            max_attempts,
            ack_timeout: Duration::from_micros(ack_us),
            backoff_base: Duration::from_micros(base_us),
            backoff_cap: Duration::from_micros(cap_us),
            recv_timeout: Duration::from_micros(recv_us),
            barrier_timeout: Duration::from_micros(barrier_us),
            drain_timeout: Duration::from_micros(drain_us),
        };
        let round_tripped = match RetryPolicy::from_env_string(&policy.to_env_string()) {
            Ok(p) => p,
            Err(e) => {
                return Err(TestCaseError::fail(format!(
                    "own encoding failed to parse: {e}"
                )))
            }
        };
        prop_assert_eq!(round_tripped, policy);
    }
}

/// Malformed env strings are typed [`CommError::Transport`] errors naming
/// the offending entry — a child must die with a message, not a panic.
#[test]
fn malformed_env_strings_are_typed_errors() {
    for bad in [
        "seed",              // no `=`
        "seed=not_a_number", // undecodable value
        "drop=zz",           // non-hex probability bits
        "unknown_key=3",     // key the codec doesn't know
        "crashed=1,x,3",     // ragged rank list
    ] {
        let err = FaultPlan::from_env_string(bad).unwrap_err();
        assert!(
            matches!(err, CommError::Transport { .. }),
            "`{bad}` gave {err:?}"
        );
        let shown = err.to_string();
        assert!(
            shown.contains("env"),
            "error for `{bad}` should name the env entry: {shown}"
        );
    }
    assert!(RetryPolicy::from_env_string("max_attempts=").is_err());
    assert!(RetryPolicy::from_env_string("bogus=1").is_err());
}

/// Empty rank lists serialize and parse as empty (not as a phantom rank).
#[test]
fn empty_rank_lists_round_trip() {
    let plan = FaultPlan::new(7).with_drop(0.5);
    let s = plan.to_env_string();
    assert!(s.contains("crashed=;"), "env string: {s}");
    let back = FaultPlan::from_env_string(&s).unwrap();
    assert!(back.crashed_ranks.is_empty());
    assert!(back.desert_ranks.is_empty());
}

/// The epoch header is the documented eight bytes — the constant the
/// membership layer and the codec must agree on.
#[test]
fn epoch_header_size_is_stable() {
    assert_eq!(EPOCH_HEADER, 8);
    assert_eq!(encode_epoch(0, &[]).len(), EPOCH_HEADER);
}
