//! Decorator equivalence: proves the extraction of fault injection into
//! the [`FaultTransport`] decorator changed *nothing* observable.
//!
//! Three angles:
//!
//! 1. **Golden counters.** The exact `CommStats` the pre-refactor
//!    simulator recorded for fixed seeds (captured before the transport
//!    seam existed) must still come out of the decorated runs, counter for
//!    counter. Every fault fate is a pure keyed hash of
//!    `(seed, src, dst, seq, attempt)`, so these are deterministic.
//! 2. **Event-log determinism.** With a [`FaultEventLog`] attached, the
//!    same seed yields the same canonical event sequence on every run,
//!    under any thread interleaving.
//! 3. **Pure-plan oracle.** Every logged event must satisfy the plan's own
//!    predicate for its coordinates — the decorator can only inject faults
//!    the protocol layer independently predicts.

use std::sync::{Arc, Mutex};

use lcc_comm::transport::inproc;
use lcc_comm::{
    run_cluster_with_faults, CommStats, CommWorld, FaultEvent, FaultEventLog, FaultPlan,
    FaultTransport, RetryPolicy, Transport,
};

/// Serializes the multi-threaded cluster runs in this binary, mirroring
/// the gate inside `run_cluster_with_faults`.
static GATE: Mutex<()> = Mutex::new(());

/// Like `run_cluster_with_faults`, but wires every endpoint through
/// [`FaultTransport::with_log`] so the injected faults are recorded.
/// Supports fully-live plans only (no crashed ranks).
fn run_logged<R, F>(
    p: usize,
    plan: FaultPlan,
    retry: RetryPolicy,
    log: Arc<FaultEventLog>,
    f: F,
) -> (Vec<R>, Arc<CommStats>)
where
    R: Send,
    F: Fn(CommWorld) -> R + Send + Sync,
{
    assert!(
        plan.crashed_ranks.is_empty(),
        "the logged harness runs fully-live plans only"
    );
    let _gate = GATE.lock().unwrap_or_else(|e| e.into_inner());
    let plan = Arc::new(plan);
    let stats = Arc::new(CommStats::default());
    let worlds: Vec<CommWorld> = inproc::fabric(p, p)
        .into_iter()
        .map(|endpoint| {
            let decorated: Box<dyn Transport> = Box::new(FaultTransport::with_log(
                endpoint,
                Arc::clone(&plan),
                Arc::clone(&log),
            ));
            CommWorld::over(decorated, Arc::clone(&plan), retry.clone(), stats.clone())
        })
        .collect();
    let f = &f;
    let results = std::thread::scope(|scope| {
        let handles: Vec<_> = worlds
            .into_iter()
            .map(|world| scope.spawn(move || f(world)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
            .collect()
    });
    (results, stats)
}

/// The workload the golden counters were captured with: one allgather of a
/// 64-byte rank-derived payload.
fn gather64(w: &mut CommWorld) -> Vec<Vec<u8>> {
    let payload: Vec<u8> = (0..64).map(|i| (w.rank() * 7 + i) as u8).collect();
    w.allgather(payload).expect("allgather under faults")
}

/// All nine counters, in the order of the golden tuples below.
fn counters(stats: &CommStats) -> [u64; 9] {
    let s = stats.snapshot();
    [
        s.bytes_sent,
        s.messages,
        s.collective_rounds,
        s.retransmits,
        s.duplicates_suppressed,
        s.timeouts,
        s.bytes_physical,
        s.messages_physical,
        s.acks,
    ]
}

/// Counters recorded by the *pre-refactor* simulator (fault injection
/// inline in the protocol, no transport seam) for these exact seeds and
/// workloads. The decorated runs must reproduce them to the digit.
#[test]
fn golden_counters_survive_the_decorator_refactor() {
    let golden: [(u64, f64, [u64; 9]); 3] = [
        (11, 0.30, [768, 12, 1, 18, 9, 9, 1920, 30, 21]),
        (99, 0.25, [768, 12, 1, 7, 2, 2, 1216, 19, 14]),
        (1234, 0.10, [768, 12, 1, 2, 2, 2, 896, 14, 14]),
    ];
    for (seed, drop, want) in golden {
        let mut plan = FaultPlan::new(seed).with_drop(drop);
        if seed == 1234 {
            plan = plan.with_duplicates(0.05);
        }
        let (_, stats) =
            run_cluster_with_faults(4, plan, RetryPolicy::default(), |mut w| gather64(&mut w));
        assert_eq!(
            counters(&stats),
            want,
            "seed {seed} drop {drop}: counters diverged from the pre-refactor run"
        );
    }
}

/// Golden counters for a duplication-heavy plan: 8 allgather rounds of
/// 2-byte payloads on 3 ranks under 50% duplication (pre-refactor values).
#[test]
fn golden_duplication_counters_survive() {
    let plan = FaultPlan::new(5).with_duplicates(0.5);
    let (_, stats) = run_cluster_with_faults(3, plan, RetryPolicy::default(), |mut w| {
        for _ in 0..8 {
            w.allgather(vec![w.rank() as u8; 2]).expect("allgather");
        }
    });
    assert_eq!(counters(&stats), [96, 48, 8, 0, 21, 0, 138, 69, 69]);
}

/// Same seed ⇒ the decorator injects the *same event sequence* (canonical
/// order) and the same counters, run after run.
#[test]
fn event_log_replays_bit_identically() {
    let plan = FaultPlan::new(77).with_drop(0.2).with_duplicates(0.1);
    let run = || {
        let log = FaultEventLog::new();
        let (results, stats) = run_logged(
            4,
            plan.clone(),
            RetryPolicy::default(),
            Arc::clone(&log),
            |mut w| gather64(&mut w),
        );
        (results, counters(&stats), log.sorted())
    };
    let (ra, ca, la) = run();
    let (rb, cb, lb) = run();
    assert!(!la.is_empty(), "a 20% drop plan must inject something");
    assert_eq!(la, lb, "event sequences diverged between identical runs");
    assert_eq!(ca, cb, "counters diverged between identical runs");
    assert_eq!(ra, rb, "results diverged between identical runs");
}

/// A logged run and an unlogged `run_cluster_with_faults` run of the same
/// seed record identical counters — attaching the log is free, and the
/// public entry point and the hand-built harness drive the same machinery.
#[test]
fn logged_and_unlogged_runs_agree_on_stats() {
    let plan = FaultPlan::new(4242).with_drop(0.15).with_duplicates(0.1);
    let log = FaultEventLog::new();
    let (logged_results, logged_stats) = run_logged(
        4,
        plan.clone(),
        RetryPolicy::default(),
        Arc::clone(&log),
        |mut w| gather64(&mut w),
    );
    let (plain_results, plain_stats) =
        run_cluster_with_faults(4, plan, RetryPolicy::default(), |mut w| gather64(&mut w));
    assert_eq!(counters(&logged_stats), counters(&plain_stats));
    let plain_results: Vec<Vec<Vec<u8>>> = plain_results.into_iter().flatten().collect();
    assert_eq!(logged_results, plain_results);
}

/// Every event the decorator logged satisfies the plan's own pure
/// predicate for those coordinates: the decorator invents nothing the
/// protocol layer cannot independently re-derive.
#[test]
fn logged_events_match_the_pure_plan_oracle() {
    let plan = FaultPlan::new(2026).with_drop(0.25).with_duplicates(0.15);
    let log = FaultEventLog::new();
    let (_, stats) = run_logged(
        4,
        plan.clone(),
        RetryPolicy::default(),
        Arc::clone(&log),
        |mut w| gather64(&mut w),
    );
    let events = log.sorted();
    assert!(!events.is_empty());
    let mut dup_events = 0u64;
    for event in &events {
        match *event {
            FaultEvent::DropData {
                src,
                dst,
                seq,
                attempt,
            } => assert!(
                plan.drops_data(src, dst, seq, attempt),
                "logged drop the plan denies: {event:?}"
            ),
            FaultEvent::DuplicateData {
                src,
                dst,
                seq,
                attempt,
            } => {
                assert!(
                    plan.duplicates_data(src, dst, seq, attempt),
                    "logged duplicate the plan denies: {event:?}"
                );
                dup_events += 1;
            }
            FaultEvent::DropAck { src, dst, seq, k } => assert!(
                plan.drops_ack(src, dst, seq, k),
                "logged ack drop the plan denies: {event:?}"
            ),
            FaultEvent::Delay {
                src,
                dst,
                seq,
                units,
            } => assert_eq!(
                plan.delay_units(src, dst, seq),
                units,
                "logged delay the plan denies: {event:?}"
            ),
        }
    }
    // Each duplicated attempt delivers one extra physical copy, which the
    // receiver suppresses. Dropped acks cause further suppressed
    // re-deliveries (the retransmission of already-delivered data), so
    // wire duplications are a lower bound here; the exact tie-out lives in
    // `dup_only_physical_accounting_ties_to_the_log`.
    assert!(stats.snapshot().duplicates_suppressed >= dup_events);
}

/// Under a dup-only plan the physical message count decomposes exactly:
/// every logical message is sent once, plus one copy per logged duplicate
/// event, and every physical delivery is acked.
#[test]
fn dup_only_physical_accounting_ties_to_the_log() {
    let plan = FaultPlan::new(5).with_duplicates(0.5);
    let log = FaultEventLog::new();
    let (_, stats) = run_logged(
        3,
        plan,
        RetryPolicy::default(),
        Arc::clone(&log),
        |mut w| {
            for _ in 0..8 {
                w.allgather(vec![w.rank() as u8; 2]).expect("allgather");
            }
        },
    );
    let s = stats.snapshot();
    let dups = log.len() as u64;
    assert_eq!(s.messages_physical, s.messages + dups);
    assert_eq!(s.acks, s.messages_physical);
    assert_eq!(s.duplicates_suppressed, dups);
    assert_eq!(s.retransmits, 0, "nothing is dropped under a dup-only plan");
}
