//! Property tests for epoch-stamped membership driven through the full
//! cluster stack: every survivor of a given fault seed must converge on
//! the *same* epoch-stamped view — same members, same epoch — regardless
//! of thread interleaving, and restart-from-checkpoint kills must leave
//! membership untouched (the victim rejoins; nobody is buried).
//!
//! The in-module proptests on [`lcc_comm::ClusterView`] pin the pure
//! transition function (epoch = number of strict growths, duplicates
//! free); these pin the wiring: `FaultPlan` ground truth → transport
//! evidence → `detect_failures` sweeps → converged views.

use std::collections::{BTreeMap, BTreeSet};

use lcc_comm::{run_cluster_with_faults, CommError, CommWorld, FaultPlan, RetryPolicy};
use proptest::prelude::*;

/// What one surviving rank reports after the probe: its converged
/// (epoch, dead set). `None` = this rank was killed by the injector.
type Probe = Option<(u64, Vec<usize>)>;

/// Crosses gates `0..gates`, sweeping for failures after each, and
/// reports the final view. Victims of the kill injector report `None`.
fn probe(w: &mut CommWorld, gates: u64) -> Probe {
    let mut last_epoch = 0;
    for gate in 0..gates {
        match w.protocol_point(gate) {
            Ok(()) => {}
            Err(CommError::Killed { .. }) => return None,
            Err(e) => panic!("gate {gate} failed: {e}"),
        }
        w.detect_failures();
        let epoch = w.current_view().epoch();
        assert!(epoch >= last_epoch, "epochs never regress");
        last_epoch = epoch;
    }
    let view = w.current_view();
    Some((view.epoch(), view.dead_ranks().collect()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any mix of start-time crashes and a mid-run kill: every survivor
    /// converges on the identical view, whose dead set is exactly the
    /// plan's doomed set and whose epoch counts the sweeps that found
    /// something new (here 0 or 1 — the ground-truth probe and the
    /// transport evidence agree from the first sweep after the death).
    #[test]
    fn survivors_converge_on_the_same_view(
        seed in 1u64..0x7FFF_FFFF_FFFF_FFFF,
        p in 2usize..5,
        crashed_raw in proptest::collection::vec(0usize..4, 0..3),
        kill_sel in 0usize..5, // 4 = no kill
        kill_gate in 0u64..3,
    ) {
        let crashed: BTreeSet<usize> =
            crashed_raw.into_iter().filter(|&r| r < p).collect();
        let mut plan = FaultPlan::new(seed);
        for &r in &crashed {
            plan = plan.with_crashed(r);
        }
        let kill = (kill_sel < p && !crashed.contains(&kill_sel))
            .then_some((kill_sel, kill_gate));
        if let Some((victim, gate)) = kill {
            plan = plan.with_kill(victim, gate);
        }
        let doomed = plan.doomed_ranks(p);
        if doomed.len() >= p {
            return Ok(()); // nobody left to report: vacuous deployment
        }

        let (results, stats) =
            run_cluster_with_faults(p, plan.clone(), RetryPolicy::scaled_for(p), {
                move |mut w| probe(&mut w, 3)
            });

        let expect_epoch = u64::from(!doomed.is_empty());
        let expect_dead: Vec<usize> = doomed.iter().copied().collect();
        let mut survivors = 0u64;
        for (rank, slot) in results.iter().enumerate() {
            if plan.is_crashed(rank) {
                prop_assert!(slot.is_none(), "crashed rank {} never ran", rank);
            } else if plan.killed_for_good(rank) {
                prop_assert_eq!(slot, &Some(None), "victim {} reports nothing", rank);
            } else {
                let (epoch, dead) = slot
                    .as_ref()
                    .and_then(|s| s.as_ref())
                    .expect("survivor reports its view");
                prop_assert_eq!(*epoch, expect_epoch, "rank {} epoch", rank);
                prop_assert_eq!(dead, &expect_dead, "rank {} dead set", rank);
                survivors += 1;
            }
        }
        // Every rank that ran at least one sweep buried each doomed rank
        // exactly once: the survivors, plus a kill victim that crossed
        // gate 0 before dying (a victim struck at gate 0 never sweeps).
        let sweepers = survivors + u64::from(kill.is_some_and(|(_, g)| g >= 1));
        prop_assert_eq!(
            stats.deaths_detected_count(),
            sweepers * doomed.len() as u64
        );
    }

    /// Kills under a restart policy never touch membership: the victims
    /// rejoin at their gates, every rank reports the optimistic epoch-0
    /// all-alive view, and the rejoins are counted exactly once each.
    #[test]
    fn restarted_kills_leave_membership_untouched(
        seed in 1u64..0x7FFF_FFFF_FFFF_FFFF,
        victims_raw in proptest::collection::vec((0usize..4, 0u64..3), 1..3),
    ) {
        let p = 4;
        let victims: BTreeMap<usize, u64> = victims_raw.into_iter().collect();
        let mut plan = FaultPlan::new(seed).with_restart();
        for (&rank, &gate) in &victims {
            plan = plan.with_kill(rank, gate);
        }
        prop_assert!(plan.doomed_ranks(p).is_empty());

        let (results, stats) =
            run_cluster_with_faults(p, plan, RetryPolicy::scaled_for(p), {
                move |mut w| probe(&mut w, 3)
            });

        for (rank, slot) in results.iter().enumerate() {
            let (epoch, dead) = slot
                .as_ref()
                .and_then(|s| s.as_ref())
                .expect("every rank survives a restarted kill");
            prop_assert_eq!(*epoch, 0, "rank {}: no membership change", rank);
            prop_assert!(dead.is_empty(), "rank {}: nobody stays buried", rank);
        }
        prop_assert_eq!(stats.deaths_detected_count(), 0);
        prop_assert_eq!(stats.rejoin_count(), victims.len() as u64);
    }
}

/// The monotone-growth anchor outside proptest: two staged deaths across
/// a run are observed by every survivor as the same non-regressing epoch
/// sequence ending at the full doomed set.
#[test]
fn staged_deaths_converge_for_all_survivors() {
    let plan = FaultPlan::new(0xEB0C).with_kill(1, 0).with_kill(3, 2);
    let doomed: BTreeSet<usize> = plan.doomed_ranks(4);
    assert_eq!(doomed, BTreeSet::from([1, 3]));
    let (results, _) = run_cluster_with_faults(4, plan, RetryPolicy::scaled_for(4), |mut w| {
        probe(&mut w, 4)
    });
    for rank in [0usize, 2] {
        let (epoch, dead) = results[rank]
            .as_ref()
            .and_then(|s| s.as_ref())
            .expect("survivor reports");
        assert_eq!(*epoch, 1, "ground truth surfaces in one sweep");
        assert_eq!(dead, &vec![1, 3]);
    }
    for rank in [1usize, 3] {
        assert_eq!(results[rank], Some(None), "victims report nothing");
    }
}
