//! Property tests for the fault-injection layer, plus exact accounting
//! tests for the collectives' [`CommStats`].
//!
//! The properties pin down the three contracts the chaos machinery rests
//! on: (1) a fault plan is a pure function of its seed, so any run replays
//! bit-for-bit; (2) an inert plan is indistinguishable from the fault-free
//! simulator; (3) the wire codecs round-trip every payload size.

use std::sync::Arc;

use proptest::prelude::*;

use lcc_comm::{
    decode_complex, decode_f64s, encode_complex, encode_f64s, run_cluster, run_cluster_with_faults,
    try_decode_complex, try_decode_f64s, AlphaBeta, CommStats, FaultPlan, RetryPolicy,
};
use lcc_fft::c64;

/// A small but fault-sensitive workload: one allgather, one alltoall, and a
/// ring pass, returning every byte each rank observed. Any lost, reordered,
/// or double-applied frame shows up in the return value.
fn noisy_workload(p: usize, plan: FaultPlan) -> (Vec<Option<Vec<u8>>>, Arc<CommStats>) {
    run_cluster_with_faults(p, plan, RetryPolicy::default(), move |mut w| {
        let me = w.rank();
        let mut seen = Vec::new();
        let gathered = w
            .allgather(vec![me as u8; 24 + me])
            .expect("allgather under faults");
        seen.extend(gathered.into_iter().flatten());
        let outgoing: Vec<Vec<u8>> = (0..p).map(|dst| vec![(me * p + dst) as u8; 16]).collect();
        let exchanged = w.alltoall(outgoing).expect("alltoall under faults");
        seen.extend(exchanged.into_iter().flatten());
        let next = (me + 1) % p;
        let prev = (me + p - 1) % p;
        w.send(next, vec![me as u8; 8]).expect("ring send");
        seen.extend(w.recv_from(prev).expect("ring recv"));
        seen
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Same seed, same plan ⇒ identical results AND identical fault
    /// counters, regardless of how the OS interleaves the rank threads.
    #[test]
    fn same_seed_replays_results_and_stats(
        seed in 0u64..u64::MAX,
        drop in 0.0f64..0.25,
        dup in 0.0f64..0.25,
        p in 2usize..=4,
    ) {
        let plan = FaultPlan::new(seed).with_drop(drop).with_duplicates(dup);
        let (ra, sa) = noisy_workload(p, plan.clone());
        let (rb, sb) = noisy_workload(p, plan);
        prop_assert_eq!(ra, rb);
        prop_assert_eq!(sa.bytes(), sb.bytes());
        prop_assert_eq!(sa.message_count(), sb.message_count());
        prop_assert_eq!(sa.rounds(), sb.rounds());
        prop_assert_eq!(sa.retransmit_count(), sb.retransmit_count());
        prop_assert_eq!(sa.duplicate_count(), sb.duplicate_count());
        prop_assert_eq!(sa.timeout_count(), sb.timeout_count());
    }

    /// A plan with every probability at zero is inert: whatever its seed,
    /// the run is bit-identical to the fault-free simulator and no retry
    /// machinery fires.
    #[test]
    fn zero_probability_plan_matches_fault_free(
        seed in 0u64..u64::MAX,
        p in 2usize..=4,
    ) {
        let (faulted, fs) = noisy_workload(p, FaultPlan::new(seed));
        let (clean, cs) = run_cluster(p, move |mut w| {
            let me = w.rank();
            let mut seen = Vec::new();
            let gathered = w.allgather(vec![me as u8; 24 + me]).unwrap();
            seen.extend(gathered.into_iter().flatten());
            let outgoing: Vec<Vec<u8>> =
                (0..p).map(|dst| vec![(me * p + dst) as u8; 16]).collect();
            seen.extend(w.alltoall(outgoing).unwrap().into_iter().flatten());
            let next = (me + 1) % p;
            let prev = (me + p - 1) % p;
            w.send(next, vec![me as u8; 8]).unwrap();
            seen.extend(w.recv_from(prev).unwrap());
            seen
        });
        let faulted: Vec<Vec<u8>> = faulted.into_iter().map(Option::unwrap).collect();
        prop_assert_eq!(faulted, clean);
        prop_assert_eq!(fs.bytes(), cs.bytes());
        prop_assert_eq!(fs.message_count(), cs.message_count());
        prop_assert_eq!(fs.retransmit_count(), 0);
        prop_assert_eq!(fs.duplicate_count(), 0);
        prop_assert_eq!(fs.timeout_count(), 0);
    }

    /// The f64 wire codec round-trips any payload, and every non-multiple
    /// length is a typed error carrying the offending length.
    #[test]
    fn f64_codec_roundtrips_any_size(
        data in proptest::collection::vec(-1e12f64..1e12, 0..=96),
        cut in 1usize..8,
    ) {
        let bytes = encode_f64s(&data);
        prop_assert_eq!(bytes.len(), data.len() * 8);
        prop_assert_eq!(decode_f64s(&bytes), data.clone());
        prop_assert_eq!(try_decode_f64s(&bytes).unwrap(), data);
        // `cut` extra bytes (1..8) always leave a ragged tail.
        let mut ragged = bytes;
        ragged.extend(vec![0u8; cut]);
        let err = try_decode_f64s(&ragged).unwrap_err();
        prop_assert_eq!(err.len, ragged.len());
        prop_assert_eq!(err.elem_size, 8);
    }

    /// Same for the complex codec (16-byte elements).
    #[test]
    fn complex_codec_roundtrips_any_size(
        data in proptest::collection::vec((-1e6f64..1e6, -1e6f64..1e6), 0..=64),
        cut in 1usize..16,
    ) {
        let field: Vec<_> = data.iter().map(|&(re, im)| c64(re, im)).collect();
        let bytes = encode_complex(&field);
        prop_assert_eq!(bytes.len(), field.len() * 16);
        prop_assert_eq!(decode_complex(&bytes), field.clone());
        prop_assert_eq!(try_decode_complex(&bytes).unwrap(), field);
        // `cut` extra bytes (1..16) always leave a ragged tail.
        let mut ragged = bytes;
        ragged.extend(vec![0u8; cut]);
        let err = try_decode_complex(&ragged).unwrap_err();
        prop_assert_eq!(err.len, ragged.len());
        prop_assert_eq!(err.elem_size, 16);
    }
}

/// Exact α-β accounting of `alltoall` at p ∈ {1, 2, 4}: self-copies are
/// free, so `p·(p−1)` messages of the per-peer length cross the network in
/// exactly one collective round.
#[test]
fn alltoall_accounting_is_exact() {
    for p in [1usize, 2, 4] {
        let len = 13usize;
        let (_, stats) = run_cluster(p, move |mut w| {
            let out = vec![vec![7u8; len]; w.size()];
            w.alltoall(out).unwrap();
        });
        let expect_msgs = (p * (p - 1)) as u64;
        assert_eq!(stats.message_count(), expect_msgs, "p={p}");
        assert_eq!(stats.bytes(), expect_msgs * len as u64, "p={p}");
        assert_eq!(stats.rounds(), 1, "p={p}");
    }
}

/// Exact accounting of `allgather`: identical traffic shape to alltoall
/// with a uniform payload — each rank sends its payload to p−1 peers.
#[test]
fn allgather_accounting_is_exact() {
    for p in [1usize, 2, 4] {
        let len = 29usize;
        let (_, stats) = run_cluster(p, move |mut w| {
            w.allgather(vec![w.rank() as u8; len]).unwrap();
        });
        let expect_msgs = (p * (p - 1)) as u64;
        assert_eq!(stats.message_count(), expect_msgs, "p={p}");
        assert_eq!(stats.bytes(), expect_msgs * len as u64, "p={p}");
        assert_eq!(stats.rounds(), 1, "p={p}");
    }
}

/// `modeled_time` against a hand-computed α-β figure: p = 2 ranks each
/// send one 100-byte message, so per-rank time is 1·α + 100·β.
#[test]
fn modeled_time_matches_hand_computed_alpha_beta() {
    let (_, stats) = run_cluster(2, |mut w| {
        let out = vec![vec![0u8; 100]; w.size()];
        w.alltoall(out).unwrap();
    });
    assert_eq!(stats.bytes(), 200);
    assert_eq!(stats.message_count(), 2);
    let ab = AlphaBeta::from_latency_bandwidth(5e-6, 2e9);
    let expect = 5e-6 + 100.0 * (1.0 / 2e9);
    let got = stats.modeled_time(&ab, 2);
    assert!((got - expect).abs() < 1e-15, "got {got}, expect {expect}");
}

/// Faults never inflate the *logical* traffic accounting: bytes, messages,
/// and rounds describe the algorithm, not the retransmissions.
#[test]
fn faults_do_not_inflate_logical_accounting() {
    let (_, clean) = noisy_workload(3, FaultPlan::none());
    let (_, faulty) = noisy_workload(3, FaultPlan::new(42).with_drop(0.3));
    assert!(faulty.retransmit_count() > 0, "30% drop must retransmit");
    assert_eq!(clean.bytes(), faulty.bytes());
    assert_eq!(clean.message_count(), faulty.message_count());
    assert_eq!(clean.rounds(), faulty.rounds());
}
