//! Deterministic, seed-driven fault injection for the cluster simulator.
//!
//! A [`FaultPlan`] perturbs every wire crossing in [`crate::cluster`]: data
//! frames can be dropped or duplicated, acks can be dropped, senders can be
//! delayed, and whole ranks can be crashed before the run starts. Every
//! decision is a pure function of `(seed, src, dst, seq, attempt)` through a
//! SplitMix64-style keyed hash — *not* a draw from a sequentially consumed
//! RNG — so the injected fault pattern is identical on every replay of the
//! same seed regardless of how the OS interleaves the rank threads. That is
//! what makes a failing chaos run reproducible from its seed alone.
//!
//! [`RetryPolicy`] bounds the recovery machinery layered on top (retransmit
//! attempts, backoff pacing, and the timeouts that turn would-be deadlocks
//! into typed [`CommError`]s).

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::time::Duration;

/// Typed failure surfaced by communication calls instead of a hang or panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommError {
    /// A blocking wait (recv, ack wait, or barrier) exceeded its timeout.
    Timeout {
        /// The operation that timed out (`"recv_from"`, `"ack"`, `"barrier"`).
        op: &'static str,
        /// The rank that was waiting.
        rank: usize,
        /// The peer it was waiting on (`usize::MAX` for barriers).
        waiting_on: usize,
    },
    /// The peer was crashed by the fault plan before the run started.
    PeerCrashed { rank: usize, peer: usize },
    /// A send exhausted [`RetryPolicy::max_attempts`] without an ack.
    RetriesExhausted {
        rank: usize,
        peer: usize,
        seq: u64,
        attempts: u32,
    },
    /// The peer's endpoint no longer exists (its thread exited or panicked).
    Disbanded { rank: usize, peer: usize },
    /// A received payload could not be decoded (truncated or ragged frame).
    Decode {
        rank: usize,
        peer: usize,
        /// Payload length in bytes.
        len: usize,
        /// Element size the decoder expected (0 when the frame was too
        /// short to carry its fixed-size header).
        elem_size: usize,
    },
    /// A transport backend failed to move bytes: a socket read/write
    /// error, a failed connection or handshake, or a coordinator-protocol
    /// violation. `peer` is `usize::MAX` when the failure does not
    /// implicate a specific rank (e.g. coordinator I/O).
    Transport {
        rank: usize,
        peer: usize,
        /// Human-readable description of the underlying I/O failure.
        detail: String,
    },
    /// This rank was killed by the fault plan at a protocol point (the
    /// in-process replay of a real SIGKILL on the socket backend). The
    /// workload should stop participating exactly as a deserter would;
    /// on the socket backend the process is dead before this value could
    /// ever be observed.
    Killed {
        /// The rank that died.
        rank: usize,
        /// The protocol point (see
        /// [`crate::cluster::CommWorld::protocol_point`]) at which it died.
        point: u64,
    },
    /// A spawned rank process died before reporting a result (socket
    /// backend): the coordinator reaped it without ever seeing its RESULT
    /// frame. Exactly one of `code` / `signal` is populated — a clean
    /// `exit(0)` without a result still lands here as `code: Some(0)`.
    ChildExited {
        /// The dead child's rank.
        rank: usize,
        /// Exit code, when the child exited on its own.
        code: Option<i32>,
        /// Signal number, when the child was killed by a signal.
        signal: Option<i32>,
    },
    /// An epoch-tagged frame arrived from a *newer* membership epoch than
    /// this rank's [`crate::membership::ClusterView`]: the peer has observed
    /// a failure this rank has not yet detected. The caller should run
    /// [`crate::cluster::CommWorld::detect_failures`] and retry the
    /// collective. (Frames from *older* epochs are silently discarded.)
    EpochMismatch {
        rank: usize,
        peer: usize,
        local_epoch: u64,
        remote_epoch: u64,
    },
}

impl fmt::Display for CommError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommError::Timeout {
                op,
                rank,
                waiting_on,
            } => {
                if *waiting_on == usize::MAX {
                    write!(f, "rank {rank}: {op} timed out")
                } else {
                    write!(
                        f,
                        "rank {rank}: {op} timed out waiting on rank {waiting_on}"
                    )
                }
            }
            CommError::PeerCrashed { rank, peer } => {
                write!(f, "rank {rank}: peer rank {peer} is crashed")
            }
            CommError::RetriesExhausted {
                rank,
                peer,
                seq,
                attempts,
            } => write!(
                f,
                "rank {rank}: send seq {seq} to rank {peer} unacked after {attempts} attempts"
            ),
            CommError::Disbanded { rank, peer } => {
                write!(f, "rank {rank}: rank {peer} hung up (cluster disbanded)")
            }
            CommError::Decode {
                rank,
                peer,
                len,
                elem_size,
            } => write!(
                f,
                "rank {rank}: undecodable {len}-byte frame from rank {peer} \
                 (expected whole {elem_size}-byte elements)"
            ),
            CommError::Transport { rank, peer, detail } => {
                if *peer == usize::MAX {
                    write!(f, "rank {rank}: transport failure: {detail}")
                } else {
                    write!(
                        f,
                        "rank {rank}: transport failure with rank {peer}: {detail}"
                    )
                }
            }
            CommError::Killed { rank, point } => {
                write!(f, "rank {rank}: killed at protocol point {point}")
            }
            CommError::ChildExited { rank, code, signal } => match (code, signal) {
                (_, Some(sig)) => {
                    write!(
                        f,
                        "rank {rank}: child killed by signal {sig} before reporting"
                    )
                }
                (Some(c), None) => {
                    write!(
                        f,
                        "rank {rank}: child exited with code {c} before reporting"
                    )
                }
                (None, None) => write!(f, "rank {rank}: child died before reporting"),
            },
            CommError::EpochMismatch {
                rank,
                peer,
                local_epoch,
                remote_epoch,
            } => write!(
                f,
                "rank {rank}: frame from rank {peer} carries epoch \
                 {remote_epoch} but local view is at epoch {local_epoch}"
            ),
        }
    }
}

impl CommError {
    /// The peer this error implicates, if it names one — the input to
    /// failure suspicion (see
    /// [`crate::cluster::CommWorld::record_failure`]). Barrier timeouts
    /// implicate nobody in particular.
    pub fn implicated_peer(&self) -> Option<usize> {
        match self {
            CommError::Timeout { waiting_on, .. } => {
                (*waiting_on != usize::MAX).then_some(*waiting_on)
            }
            CommError::Transport { peer, .. } => (*peer != usize::MAX).then_some(*peer),
            // A rank's own death implicates nobody else.
            CommError::Killed { .. } => None,
            // The dead child *is* the implicated party.
            CommError::ChildExited { rank, .. } => Some(*rank),
            CommError::PeerCrashed { peer, .. }
            | CommError::RetriesExhausted { peer, .. }
            | CommError::Disbanded { peer, .. }
            | CommError::Decode { peer, .. }
            | CommError::EpochMismatch { peer, .. } => Some(*peer),
        }
    }
}

impl std::error::Error for CommError {}

/// SplitMix64 finalizer: a high-quality 64-bit mixing function.
#[inline]
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;
const SALT_DROP: u64 = 0x4452_4F50; // "DROP"
const SALT_DUP: u64 = 0x4455_5045; // "DUPE"
const SALT_ACK: u64 = 0x41_434B; // "ACK"
const SALT_DELAY: u64 = 0x444C_4159; // "DLAY"

/// A deterministic fault schedule for one cluster run.
///
/// All probabilities are in `[0, 1]`. The plan is inert
/// (`!self.is_active()`) when every probability is zero, no rank is crashed,
/// and no delay is configured; the inert path is bit-identical to the
/// original fault-free simulator.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed keying every fault decision. Same seed ⇒ same fault pattern.
    pub seed: u64,
    /// Probability that a data-frame transmission attempt is lost.
    pub drop_prob: f64,
    /// Probability that a delivered data frame arrives twice.
    pub duplicate_prob: f64,
    /// Probability that an ack transmission is lost.
    pub ack_drop_prob: f64,
    /// Maximum sender-side delay, in units of [`FaultPlan::delay_unit`],
    /// rolled uniformly per logical send. Perturbs thread interleaving
    /// (exercising the reorder buffers) without changing any outcome.
    pub delay_steps: u32,
    /// Wall-clock length of one delay step.
    pub delay_unit: Duration,
    /// Ranks that never start. Sends/recvs touching them fail fast with
    /// [`CommError::PeerCrashed`].
    pub crashed_ranks: BTreeSet<usize>,
    /// Ranks that start, finish their local compute, then die *during* the
    /// sparse accumulation exchange (they transmit to only part of the
    /// cluster before exiting). Unlike [`FaultPlan::crashed_ranks`], peers
    /// get no fail-fast signal: traffic with a deserter surfaces as
    /// [`CommError::Timeout`] / [`CommError::Disbanded`], and survivors must
    /// *detect* the death and re-converge
    /// (see [`crate::cluster::CommWorld::detect_failures`]).
    pub desert_ranks: BTreeSet<usize>,
    /// Ranks killed *mid-run* at a numbered protocol point (rank →
    /// point). On the socket backend the coordinator SIGKILLs the victim's
    /// real process exactly when it reaches
    /// [`crate::cluster::CommWorld::protocol_point`] with that index; the
    /// in-process backend replays the same death deterministically through
    /// the kill injector in [`crate::transport::fault::FaultTransport`].
    pub kill_points: BTreeMap<usize, u64>,
    /// When `true`, killed ranks come back: the socket coordinator
    /// respawns the victim from its latest `lcc_massif` checkpoint under a
    /// REJOIN handshake, and the in-process injector replays the restart as
    /// a no-op death (the thread's state *is* the checkpoint). When
    /// `false`, victims stay dead and survivors must detect and recover.
    pub kill_restart: bool,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

impl FaultPlan {
    /// The inert plan: no faults, bit-identical to the fault-free simulator.
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            drop_prob: 0.0,
            duplicate_prob: 0.0,
            ack_drop_prob: 0.0,
            delay_steps: 0,
            delay_unit: Duration::from_micros(100),
            crashed_ranks: BTreeSet::new(),
            desert_ranks: BTreeSet::new(),
            kill_points: BTreeMap::new(),
            kill_restart: false,
        }
    }

    /// An inert plan keyed by `seed`; combine with the `with_*` builders.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..FaultPlan::none()
        }
    }

    /// Sets the data-frame drop probability (acks drop at the same rate).
    pub fn with_drop(mut self, prob: f64) -> Self {
        assert!((0.0..=1.0).contains(&prob), "drop_prob must be in [0, 1]");
        self.drop_prob = prob;
        self.ack_drop_prob = prob;
        self
    }

    /// Sets the duplicate-delivery probability.
    pub fn with_duplicates(mut self, prob: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&prob),
            "duplicate_prob must be in [0, 1]"
        );
        self.duplicate_prob = prob;
        self
    }

    /// Sets the maximum sender-side delay in steps.
    pub fn with_delay(mut self, steps: u32) -> Self {
        self.delay_steps = steps;
        self
    }

    /// Crashes `rank` before the run starts.
    pub fn with_crashed(mut self, rank: usize) -> Self {
        self.crashed_ranks.insert(rank);
        self
    }

    /// Makes `rank` a deserter: it runs its local phase, then dies mid-way
    /// through the accumulation exchange without any fail-fast signal to
    /// its peers.
    pub fn with_deserter(mut self, rank: usize) -> Self {
        self.desert_ranks.insert(rank);
        self
    }

    /// Kills `rank` when it reaches protocol point `point`. Pair with
    /// [`FaultPlan::with_restart`] to have the supervisor respawn it.
    pub fn with_kill(mut self, rank: usize, point: u64) -> Self {
        self.kill_points.insert(rank, point);
        self
    }

    /// Makes killed ranks restart from their latest checkpoint instead of
    /// staying dead.
    pub fn with_restart(mut self) -> Self {
        self.kill_restart = true;
        self
    }

    /// Whether any perturbation is configured. Inert plans skip the
    /// reliability protocol entirely.
    pub fn is_active(&self) -> bool {
        self.drop_prob > 0.0
            || self.duplicate_prob > 0.0
            || self.ack_drop_prob > 0.0
            || self.delay_steps > 0
            || !self.crashed_ranks.is_empty()
            || !self.desert_ranks.is_empty()
            || !self.kill_points.is_empty()
    }

    /// The protocol point at which `rank` is killed, if any.
    pub fn kill_point(&self, rank: usize) -> Option<u64> {
        self.kill_points.get(&rank).copied()
    }

    /// Whether `rank` is killed mid-run *and never comes back* — the kills
    /// that a health probe must eventually report as dead. Restarted
    /// victims rejoin before any exchange completes, so they are not
    /// doomed.
    pub fn killed_for_good(&self, rank: usize) -> bool {
        !self.kill_restart && self.kill_points.contains_key(&rank)
    }

    /// Whether `rank` is crashed in this plan.
    pub fn is_crashed(&self, rank: usize) -> bool {
        self.crashed_ranks.contains(&rank)
    }

    /// Whether `rank` dies mid-exchange in this plan. Workloads consult
    /// this for their *own* rank (to act out the death); peers must not —
    /// the whole point is that a desertion is only observable through
    /// failed communication.
    pub fn deserts(&self, rank: usize) -> bool {
        self.desert_ranks.contains(&rank)
    }

    /// Ranks that are dead or doomed under this plan — the ground truth a
    /// health probe converges on (see
    /// [`crate::cluster::CommWorld::detect_failures`]).
    pub fn doomed_ranks(&self, p: usize) -> BTreeSet<usize> {
        self.crashed_ranks
            .iter()
            .chain(self.desert_ranks.iter())
            .chain(
                self.kill_points
                    .keys()
                    .filter(|&&r| self.killed_for_good(r)),
            )
            .copied()
            .filter(|&r| r < p)
            .collect()
    }

    /// Number of ranks (out of `p`) that actually run.
    pub fn live_count(&self, p: usize) -> usize {
        p - self.crashed_ranks.iter().filter(|&&r| r < p).count()
    }

    /// The keyed hash behind every decision: a pure function of the plan
    /// seed and the event coordinates, independent of thread scheduling.
    #[inline]
    fn key(&self, salt: u64, src: usize, dst: usize, seq: u64, attempt: u64) -> u64 {
        let mut x = self.seed ^ mix64(salt.wrapping_mul(GOLDEN));
        x = mix64(x ^ (src as u64).wrapping_mul(GOLDEN));
        x = mix64(x ^ (dst as u64).wrapping_mul(GOLDEN));
        x = mix64(x ^ seq.wrapping_mul(GOLDEN));
        mix64(x ^ attempt.wrapping_mul(GOLDEN))
    }

    /// Converts a hash to a uniform draw in `[0, 1)` and compares it to `p`.
    #[inline]
    fn chance(&self, p: f64, hash: u64) -> bool {
        p > 0.0 && ((hash >> 11) as f64 * (1.0 / (1u64 << 53) as f64)) < p
    }

    /// Whether transmission `attempt` of data frame `(src → dst, seq)` is
    /// lost in flight.
    pub fn drops_data(&self, src: usize, dst: usize, seq: u64, attempt: u32) -> bool {
        self.chance(
            self.drop_prob,
            self.key(SALT_DROP, src, dst, seq, attempt as u64),
        )
    }

    /// Whether a delivered `attempt` of `(src → dst, seq)` arrives twice.
    pub fn duplicates_data(&self, src: usize, dst: usize, seq: u64, attempt: u32) -> bool {
        self.chance(
            self.duplicate_prob,
            self.key(SALT_DUP, src, dst, seq, attempt as u64),
        )
    }

    /// Whether the `k`-th ack for data `(src → dst, seq)` is lost on its way
    /// back to `src`. Both endpoints can evaluate this identically, which is
    /// what lets the sender know a lost ack will never arrive instead of
    /// burning a real timeout.
    pub fn drops_ack(&self, src: usize, dst: usize, seq: u64, k: u64) -> bool {
        self.chance(self.ack_drop_prob, self.key(SALT_ACK, src, dst, seq, k))
    }

    /// Sender-side delay (in steps ≤ `delay_steps`) before transmitting
    /// logical send `(src → dst, seq)`.
    pub fn delay_units(&self, src: usize, dst: usize, seq: u64) -> u32 {
        if self.delay_steps == 0 {
            return 0;
        }
        (self.key(SALT_DELAY, src, dst, seq, 0) % (self.delay_steps as u64 + 1)) as u32
    }

    /// Serializes the plan into a single environment-variable-safe string.
    /// Probabilities are encoded as the hex of their IEEE-754 bits, so a
    /// child process reconstructs *bit-identical* plan rolls — anything
    /// lossier would desynchronize the keyed-hash fates across the process
    /// boundary of the socket backend.
    pub fn to_env_string(&self) -> String {
        let ranks = |set: &BTreeSet<usize>| {
            set.iter()
                .map(|r| r.to_string())
                .collect::<Vec<_>>()
                .join(",")
        };
        let kills = self
            .kill_points
            .iter()
            .map(|(r, pt)| format!("{r}:{pt}"))
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "seed={};drop={:016x};dup={:016x};ackdrop={:016x};delay_steps={};delay_unit_ns={};crashed={};desert={};kills={};kill_restart={}",
            self.seed,
            self.drop_prob.to_bits(),
            self.duplicate_prob.to_bits(),
            self.ack_drop_prob.to_bits(),
            self.delay_steps,
            self.delay_unit.as_nanos(),
            ranks(&self.crashed_ranks),
            ranks(&self.desert_ranks),
            kills,
            self.kill_restart as u8,
        )
    }

    /// Inverse of [`FaultPlan::to_env_string`].
    pub fn from_env_string(s: &str) -> Result<FaultPlan, CommError> {
        let mut plan = FaultPlan::none();
        for part in s.split(';').filter(|p| !p.is_empty()) {
            let (key, value) = part.split_once('=').ok_or_else(|| env_err("plan", part))?;
            match key {
                "seed" => plan.seed = parse_dec(value).ok_or_else(|| env_err("plan", part))?,
                "drop" => {
                    plan.drop_prob = parse_f64_bits(value).ok_or_else(|| env_err("plan", part))?
                }
                "dup" => {
                    plan.duplicate_prob =
                        parse_f64_bits(value).ok_or_else(|| env_err("plan", part))?
                }
                "ackdrop" => {
                    plan.ack_drop_prob =
                        parse_f64_bits(value).ok_or_else(|| env_err("plan", part))?
                }
                "delay_steps" => {
                    plan.delay_steps =
                        parse_dec::<u32>(value).ok_or_else(|| env_err("plan", part))?
                }
                "delay_unit_ns" => {
                    let ns: u64 = parse_dec(value).ok_or_else(|| env_err("plan", part))?;
                    plan.delay_unit = Duration::from_nanos(ns);
                }
                "crashed" => {
                    plan.crashed_ranks = parse_ranks(value).ok_or_else(|| env_err("plan", part))?
                }
                "desert" => {
                    plan.desert_ranks = parse_ranks(value).ok_or_else(|| env_err("plan", part))?
                }
                "kills" => {
                    plan.kill_points =
                        parse_kill_points(value).ok_or_else(|| env_err("plan", part))?
                }
                "kill_restart" => {
                    plan.kill_restart = match value {
                        "0" => false,
                        "1" => true,
                        _ => return Err(env_err("plan", part)),
                    }
                }
                _ => return Err(env_err("plan", part)),
            }
        }
        Ok(plan)
    }
}

fn env_err(what: &str, part: &str) -> CommError {
    CommError::Transport {
        rank: usize::MAX,
        peer: usize::MAX,
        detail: format!("malformed {what} env entry `{part}`"),
    }
}

fn parse_dec<T: std::str::FromStr>(s: &str) -> Option<T> {
    s.parse().ok()
}

fn parse_f64_bits(s: &str) -> Option<f64> {
    u64::from_str_radix(s, 16).ok().map(f64::from_bits)
}

fn parse_ranks(s: &str) -> Option<BTreeSet<usize>> {
    if s.is_empty() {
        return Some(BTreeSet::new());
    }
    s.split(',').map(|r| r.parse().ok()).collect()
}

fn parse_kill_points(s: &str) -> Option<BTreeMap<usize, u64>> {
    if s.is_empty() {
        return Some(BTreeMap::new());
    }
    s.split(',')
        .map(|entry| {
            let (rank, point) = entry.split_once(':')?;
            Some((rank.parse().ok()?, point.parse().ok()?))
        })
        .collect()
}

/// Bounds on the reliability machinery: how hard to retry and how long to
/// wait before declaring a typed failure instead of deadlocking.
///
/// All protocol deadlines (ack, recv, barrier, end-of-run drain) live here
/// rather than as constants in the protocol code; use
/// [`RetryPolicy::scaled_for`] to derive deadlines appropriate for a
/// cluster of `p` ranks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum transmissions per logical send before
    /// [`CommError::RetriesExhausted`].
    pub max_attempts: u32,
    /// Safety-net wait for an ack the protocol says must arrive. Only
    /// exceeded if the peer misbehaves (e.g., exited without receiving).
    pub ack_timeout: Duration,
    /// Base pause before a retransmission; doubles each retry.
    pub backoff_base: Duration,
    /// Upper bound on the retransmission pause.
    pub backoff_cap: Duration,
    /// Maximum blocking wait inside `recv_from`.
    pub recv_timeout: Duration,
    /// Maximum wait at a barrier.
    pub barrier_timeout: Duration,
    /// Maximum wait in the end-of-run drain that services straggler
    /// retransmissions after a rank's closure returns.
    pub drain_timeout: Duration,
}

/// The configured protocol deadlines and retry bounds — the name the
/// recovery layer uses for [`RetryPolicy`].
pub type RetryConfig = RetryPolicy;

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 16,
            ack_timeout: Duration::from_secs(10),
            backoff_base: Duration::from_micros(50),
            backoff_cap: Duration::from_millis(2),
            recv_timeout: Duration::from_secs(30),
            barrier_timeout: Duration::from_secs(30),
            drain_timeout: Duration::from_secs(10),
        }
    }
}

impl RetryPolicy {
    /// Deadlines scaled for a `p`-rank cluster: every blocking wait covers
    /// `base · (1 + log₂ p)`, since collectives serialize across more peers
    /// (and more concurrent rank threads share the host) as `p` grows.
    /// Each deadline is the default divided by 4 times that factor, so
    /// `scaled_for(8)` exactly reproduces [`RetryPolicy::default`], smaller
    /// clusters fail faster, and larger ones wait proportionally longer.
    pub fn scaled_for(p: usize) -> Self {
        let d = RetryPolicy::default();
        let f = 1 + p.max(1).next_power_of_two().trailing_zeros();
        let scale = |base: Duration| base / 4 * f;
        RetryPolicy {
            ack_timeout: scale(d.ack_timeout),
            recv_timeout: scale(d.recv_timeout),
            barrier_timeout: scale(d.barrier_timeout),
            drain_timeout: scale(d.drain_timeout),
            ..d
        }
    }
    /// The socket coordinator's patience for one control-protocol phase
    /// (HELLO gather, barrier round, result gather): every child-side
    /// blocking wait is bounded by `recv/barrier/drain` timeouts, so a
    /// phase that outlives three times their sum means a child is dead or
    /// wedged, not slow. Replaces the old hard-coded 180 s constant;
    /// equals 210 s at the default policy and scales with
    /// [`RetryPolicy::scaled_for`].
    pub fn coordinator_deadline(&self) -> Duration {
        (self.recv_timeout + self.barrier_timeout + self.drain_timeout) * 3
    }

    /// How long a peer may stay silent (no data, ack, *or* heartbeat)
    /// before the liveness layer suspects it: comfortably above the
    /// heartbeat period but below `recv_timeout`, so a genuinely dead peer
    /// is demoted before any protocol wait fires.
    pub fn suspicion_timeout(&self) -> Duration {
        self.recv_timeout / 2
    }

    /// Heartbeat transmit period for backends with real silence (an eighth
    /// of the suspicion window, so ~8 beats must vanish before suspicion).
    pub fn heartbeat_period(&self) -> Duration {
        self.suspicion_timeout() / 8
    }

    /// Backoff pause before transmission `attempt` (attempt 0 pays none).
    pub fn backoff(&self, attempt: u32) -> Duration {
        if attempt == 0 {
            return Duration::ZERO;
        }
        let scaled = self
            .backoff_base
            .saturating_mul(1u32 << (attempt - 1).min(16));
        scaled.min(self.backoff_cap)
    }

    /// Serializes the policy into an environment-variable-safe string, so
    /// the socket backend's child processes run under exactly the deadlines
    /// the parent configured.
    pub fn to_env_string(&self) -> String {
        format!(
            "max_attempts={};ack_ns={};base_ns={};cap_ns={};recv_ns={};barrier_ns={};drain_ns={}",
            self.max_attempts,
            self.ack_timeout.as_nanos(),
            self.backoff_base.as_nanos(),
            self.backoff_cap.as_nanos(),
            self.recv_timeout.as_nanos(),
            self.barrier_timeout.as_nanos(),
            self.drain_timeout.as_nanos(),
        )
    }

    /// Inverse of [`RetryPolicy::to_env_string`].
    pub fn from_env_string(s: &str) -> Result<RetryPolicy, CommError> {
        let mut policy = RetryPolicy::default();
        for part in s.split(';').filter(|p| !p.is_empty()) {
            let (key, value) = part.split_once('=').ok_or_else(|| env_err("retry", part))?;
            let ns = || -> Result<Duration, CommError> {
                let n: u64 = value.parse().map_err(|_| env_err("retry", part))?;
                Ok(Duration::from_nanos(n))
            };
            match key {
                "max_attempts" => {
                    policy.max_attempts = value.parse().map_err(|_| env_err("retry", part))?
                }
                "ack_ns" => policy.ack_timeout = ns()?,
                "base_ns" => policy.backoff_base = ns()?,
                "cap_ns" => policy.backoff_cap = ns()?,
                "recv_ns" => policy.recv_timeout = ns()?,
                "barrier_ns" => policy.barrier_timeout = ns()?,
                "drain_ns" => policy.drain_timeout = ns()?,
                _ => return Err(env_err("retry", part)),
            }
        }
        Ok(policy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rolls_are_deterministic_and_keyed() {
        let a = FaultPlan::new(42).with_drop(0.5);
        let b = FaultPlan::new(42).with_drop(0.5);
        for seq in 0..64u64 {
            assert_eq!(a.drops_data(0, 1, seq, 0), b.drops_data(0, 1, seq, 0));
            assert_eq!(a.drops_ack(0, 1, seq, 0), b.drops_ack(0, 1, seq, 0));
        }
        // A different seed must produce a different pattern somewhere.
        let c = FaultPlan::new(43).with_drop(0.5);
        assert!((0..64u64).any(|s| a.drops_data(0, 1, s, 0) != c.drops_data(0, 1, s, 0)));
        // Coordinates matter: direction is part of the key.
        assert!((0..64u64).any(|s| a.drops_data(0, 1, s, 0) != a.drops_data(1, 0, s, 0)));
    }

    #[test]
    fn drop_rate_tracks_probability() {
        let plan = FaultPlan::new(7).with_drop(0.25);
        let n = 10_000u64;
        let dropped = (0..n).filter(|&s| plan.drops_data(2, 5, s, 0)).count();
        let rate = dropped as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.02, "observed drop rate {rate}");
    }

    #[test]
    fn inert_plan_never_fires() {
        let plan = FaultPlan::none();
        assert!(!plan.is_active());
        for seq in 0..256u64 {
            assert!(!plan.drops_data(0, 1, seq, 0));
            assert!(!plan.duplicates_data(0, 1, seq, 0));
            assert!(!plan.drops_ack(0, 1, seq, 0));
            assert_eq!(plan.delay_units(0, 1, seq), 0);
        }
    }

    #[test]
    fn crash_bookkeeping() {
        let plan = FaultPlan::new(1).with_crashed(2).with_crashed(5);
        assert!(plan.is_active());
        assert!(plan.is_crashed(2) && plan.is_crashed(5) && !plan.is_crashed(0));
        assert_eq!(plan.live_count(4), 3); // rank 5 is outside p=4
        assert_eq!(plan.live_count(8), 6);
    }

    #[test]
    fn backoff_grows_and_caps() {
        let policy = RetryPolicy::default();
        assert_eq!(policy.backoff(0), Duration::ZERO);
        assert!(policy.backoff(1) <= policy.backoff(2));
        assert!(policy.backoff(12) <= policy.backoff_cap);
    }

    #[test]
    fn deserters_are_active_and_doomed_but_not_crashed() {
        let plan = FaultPlan::new(4).with_deserter(1).with_crashed(3);
        assert!(plan.is_active());
        assert!(plan.deserts(1) && !plan.deserts(3));
        assert!(plan.is_crashed(3) && !plan.is_crashed(1));
        // Deserters still start, so they count as live…
        assert_eq!(plan.live_count(4), 3);
        // …but a health probe reports both as doomed.
        let doomed: Vec<usize> = plan.doomed_ranks(4).into_iter().collect();
        assert_eq!(doomed, vec![1, 3]);
        // Out-of-range ranks are excluded from the probe.
        assert_eq!(plan.doomed_ranks(1).len(), 0);
    }

    #[test]
    fn kill_plan_bookkeeping_and_codec() {
        let plan = FaultPlan::new(9).with_kill(2, 3).with_kill(0, 1);
        assert!(plan.is_active());
        assert_eq!(plan.kill_point(2), Some(3));
        assert_eq!(plan.kill_point(1), None);
        assert!(plan.killed_for_good(2));
        // Without restart, kill victims are doomed; deserters still are.
        let doomed: Vec<usize> = plan.doomed_ranks(4).into_iter().collect();
        assert_eq!(doomed, vec![0, 2]);
        // With restart, victims rejoin before the exchange: not doomed.
        let plan = plan.with_restart();
        assert!(!plan.killed_for_good(2));
        assert!(plan.doomed_ranks(4).is_empty());
        // The env codec must round-trip the kill schedule bit-exactly.
        let back = FaultPlan::from_env_string(&plan.to_env_string()).unwrap();
        assert_eq!(back, plan);
        let inert = FaultPlan::from_env_string(&FaultPlan::none().to_env_string()).unwrap();
        assert_eq!(inert, FaultPlan::none());
        assert!(FaultPlan::from_env_string("kills=1:").is_err());
        assert!(FaultPlan::from_env_string("kill_restart=2").is_err());
    }

    #[test]
    fn coordinator_deadline_and_liveness_windows() {
        let d = RetryPolicy::default();
        // No lower than the 180 s constant it replaces.
        assert!(d.coordinator_deadline() >= Duration::from_secs(180));
        assert!(d.suspicion_timeout() < d.recv_timeout);
        assert!(d.heartbeat_period() * 4 < d.suspicion_timeout());
        // Windows scale with the cluster like every other deadline.
        assert!(
            RetryPolicy::scaled_for(64).suspicion_timeout()
                > RetryPolicy::scaled_for(2).suspicion_timeout()
        );
        let e = CommError::Killed { rank: 3, point: 2 };
        assert_eq!(e.implicated_peer(), None);
        assert!(e.to_string().contains("point 2"));
    }

    #[test]
    fn scaled_deadlines_grow_with_cluster_size() {
        let small = RetryConfig::scaled_for(2);
        let med = RetryConfig::scaled_for(8);
        let big = RetryConfig::scaled_for(64);
        assert!(small.recv_timeout < med.recv_timeout);
        assert!(med.recv_timeout < big.recv_timeout);
        assert!(small.barrier_timeout < big.barrier_timeout);
        // p = 8 reproduces the defaults exactly.
        assert_eq!(med, RetryPolicy::default());
        assert_eq!(big.ack_timeout, RetryPolicy::default().ack_timeout / 4 * 7);
    }

    #[test]
    fn implicated_peer_extraction() {
        let e = CommError::Timeout {
            op: "recv_from",
            rank: 0,
            waiting_on: 3,
        };
        assert_eq!(e.implicated_peer(), Some(3));
        let e = CommError::Timeout {
            op: "barrier",
            rank: 0,
            waiting_on: usize::MAX,
        };
        assert_eq!(e.implicated_peer(), None);
        let e = CommError::EpochMismatch {
            rank: 1,
            peer: 2,
            local_epoch: 0,
            remote_epoch: 1,
        };
        assert_eq!(e.implicated_peer(), Some(2));
        assert!(e.to_string().contains("epoch 1"));
        let e = CommError::Decode {
            rank: 1,
            peer: 0,
            len: 9,
            elem_size: 8,
        };
        assert_eq!(e.implicated_peer(), Some(0));
        assert!(e.to_string().contains("9-byte"));
    }

    #[test]
    fn errors_display_meaningfully() {
        let e = CommError::Timeout {
            op: "recv_from",
            rank: 1,
            waiting_on: 3,
        };
        assert!(e.to_string().contains("recv_from"));
        let e = CommError::RetriesExhausted {
            rank: 0,
            peer: 2,
            seq: 9,
            attempts: 16,
        };
        assert!(e.to_string().contains("16 attempts"));
    }
}
