//! Distributed slab-decomposed 3D FFT — the *traditional* baseline.
//!
//! This is the algorithm whose communication pattern the paper attacks
//! (Fig. 1a): the N×N×N transform is decomposed into batches of 1D FFTs
//! distributed over P ranks; between stages the decomposed axis must be
//! rotated through an all-to-all transpose. One 3D FFT costs two all-to-all
//! stages (Eq. 1), a full FFT convolution costs four.
//!
//! The implementation runs on the functional cluster of [`crate::cluster`],
//! so the byte/round counters measure exactly what the analytic model
//! estimates.

use lcc_fft::{fft_axis, scale_in_place, Complex64, FftDirection, FftPlanner};

use crate::cluster::{CodecError, CommWorld};
use crate::fault::CommError;

/// Serializes a complex slice as little-endian f64 pairs.
pub fn encode_complex(values: &[Complex64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 16);
    for v in values {
        out.extend_from_slice(&v.re.to_le_bytes());
        out.extend_from_slice(&v.im.to_le_bytes());
    }
    out
}

/// Deserializes little-endian f64 pairs into complex values, rejecting
/// ragged payloads with a typed error.
pub fn try_decode_complex(bytes: &[u8]) -> Result<Vec<Complex64>, CodecError> {
    if !bytes.len().is_multiple_of(16) {
        return Err(CodecError {
            len: bytes.len(),
            elem_size: 16,
        });
    }
    let mut halves = bytes.chunks_exact(8).map(|c| {
        let mut b = [0u8; 8];
        b.copy_from_slice(c);
        f64::from_le_bytes(b)
    });
    let mut out = Vec::with_capacity(bytes.len() / 16);
    while let (Some(re), Some(im)) = (halves.next(), halves.next()) {
        out.push(Complex64 { re, im });
    }
    Ok(out)
}

/// Deserializes little-endian f64 pairs into complex values. Panics on
/// ragged input; use [`try_decode_complex`] to handle that case as data.
pub fn decode_complex(bytes: &[u8]) -> Vec<Complex64> {
    try_decode_complex(bytes)
        .unwrap_or_else(|e| panic!("payload is not a whole number of c64s: {e}"))
}

/// All-to-all transpose of the decomposed axis with axis 1.
///
/// Input: `data` has dims `(c, n, n)` indexed `(a_loc, b, z)` where the `a`
/// axis is decomposed (`c = n/p` planes per rank) and `b` is full.
/// Output: dims `(c, n, n)` indexed `(b_loc, a, z)` — the `b` axis is now
/// decomposed and `a` is full. Involutive: applying it twice restores the
/// original distribution.
pub fn transpose_exchange(
    world: &mut CommWorld,
    data: &[Complex64],
    n: usize,
) -> Result<Vec<Complex64>, CommError> {
    let p = world.size();
    let c = n / p;
    assert_eq!(data.len(), c * n * n, "slab shape mismatch");
    // Build per-destination blocks: destination d gets b ∈ [d·c, (d+1)·c).
    let outgoing: Vec<Vec<u8>> = (0..p)
        .map(|d| {
            let mut block = Vec::with_capacity(c * c * n);
            for a_loc in 0..c {
                for b_loc in 0..c {
                    let b = d * c + b_loc;
                    let base = (a_loc * n + b) * n;
                    block.extend_from_slice(&data[base..base + n]);
                }
            }
            encode_complex(&block)
        })
        .collect();
    let incoming = world.alltoall(outgoing)?;
    // Assemble: from source s we got (a_loc in s's range, b_loc in ours, z).
    let my_rank = world.rank();
    let mut out = vec![Complex64::ZERO; c * n * n];
    for (s, payload) in incoming.iter().enumerate() {
        // A truncated, ragged or wrong-shape block is a typed error, not a
        // panic: the frame crossed a (simulated) wire.
        let block = try_decode_complex(payload).map_err(|e| CommError::Decode {
            rank: my_rank,
            peer: s,
            len: e.len,
            elem_size: e.elem_size,
        })?;
        if block.len() != c * c * n {
            return Err(CommError::Decode {
                rank: my_rank,
                peer: s,
                len: payload.len(),
                elem_size: 16,
            });
        }
        for a_loc in 0..c {
            let a = s * c + a_loc;
            for b_loc in 0..c {
                let src = (a_loc * c + b_loc) * n;
                let dst = (b_loc * n + a) * n;
                out[dst..dst + n].copy_from_slice(&block[src..src + n]);
            }
        }
    }
    Ok(out)
}

/// Distributed forward 3D FFT of an axis-0-decomposed slab.
///
/// On entry `slab` holds planes `x ∈ [rank·n/p, (rank+1)·n/p)` of the
/// spatial field, dims `(n/p, n, n)` indexed `(x_loc, y, z)`. On return the
/// *transposed spectrum*: dims `(n/p, n, n)` indexed `(fy_loc, fx, fz)` with
/// the `fy` axis decomposed. Costs exactly one all-to-all.
pub fn forward_3d(
    world: &mut CommWorld,
    planner: &FftPlanner,
    slab: Vec<Complex64>,
    n: usize,
) -> Result<Vec<Complex64>, CommError> {
    let c = n / world.size();
    let dims = (c, n, n);
    let mut slab = slab;
    // Local: transform the two full axes (y, z).
    fft_axis(planner, &mut slab, dims, 2, FftDirection::Forward);
    fft_axis(planner, &mut slab, dims, 1, FftDirection::Forward);
    // Rotate x into locality (one all-to-all), then transform it.
    let mut t = transpose_exchange(world, &slab, n)?;
    fft_axis(planner, &mut t, dims, 1, FftDirection::Forward);
    Ok(t)
}

/// Distributed inverse 3D FFT (normalized), undoing [`forward_3d`]:
/// takes the transposed spectrum, returns the spatial axis-0 slab.
/// Costs exactly one all-to-all.
pub fn inverse_3d(
    world: &mut CommWorld,
    planner: &FftPlanner,
    spectrum: Vec<Complex64>,
    n: usize,
) -> Result<Vec<Complex64>, CommError> {
    let c = n / world.size();
    let dims = (c, n, n);
    let mut spec = spectrum;
    fft_axis(planner, &mut spec, dims, 1, FftDirection::Inverse);
    let mut slab = transpose_exchange(world, &spec, n)?;
    fft_axis(planner, &mut slab, dims, 1, FftDirection::Inverse);
    fft_axis(planner, &mut slab, dims, 2, FftDirection::Inverse);
    let scale = 1.0 / (n as f64).powi(3);
    scale_in_place(&mut slab, scale);
    Ok(slab)
}

/// Distributed FFT convolution — the full traditional pipeline of Fig. 1a:
/// forward 3D FFT (1 all-to-all inside, after 2 local stages), pointwise
/// multiply with the on-the-fly kernel, inverse 3D FFT (1 more all-to-all).
///
/// `kernel(fx, fy, fz)` is the transfer function at global frequency bins.
pub fn convolve_distributed(
    world: &mut CommWorld,
    planner: &FftPlanner,
    slab: Vec<Complex64>,
    n: usize,
    kernel: &(dyn Fn([usize; 3]) -> Complex64 + Sync),
) -> Result<Vec<Complex64>, CommError> {
    let c = n / world.size();
    let mut spec = forward_3d(world, planner, slab, n)?;
    let y0 = world.rank() * c;
    // Transposed layout: local (fy_loc, fx, fz).
    for fy_loc in 0..c {
        for fx in 0..n {
            let base = (fy_loc * n + fx) * n;
            for fz in 0..n {
                spec[base + fz] *= kernel([fx, y0 + fy_loc, fz]);
            }
        }
    }
    inverse_3d(world, planner, spec, n)
}

/// Splits a dense row-major n³ field into axis-0 slabs for `p` ranks.
pub fn scatter_slabs(field: &[Complex64], n: usize, p: usize) -> Vec<Vec<Complex64>> {
    assert_eq!(field.len(), n * n * n);
    assert_eq!(n % p, 0, "p must divide n");
    let c = n / p;
    (0..p)
        .map(|r| field[r * c * n * n..(r + 1) * c * n * n].to_vec())
        .collect()
}

/// Reassembles axis-0 slabs into the dense field.
pub fn gather_slabs(slabs: Vec<Vec<Complex64>>, n: usize) -> Vec<Complex64> {
    let mut out = Vec::with_capacity(n * n * n);
    for s in slabs {
        out.extend(s);
    }
    assert_eq!(out.len(), n * n * n);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::run_cluster;
    use lcc_fft::{c64, cyclic_convolve_3d, fft_3d};

    fn field(n: usize) -> Vec<Complex64> {
        (0..n * n * n)
            .map(|i| c64((i as f64 * 0.13).sin(), (i as f64 * 0.29).cos()))
            .collect()
    }

    #[test]
    fn transpose_is_involutive() {
        let n = 8;
        for p in [1, 2, 4] {
            let f = field(n);
            let slabs = scatter_slabs(&f, n, p);
            let (outs, _) = run_cluster(p, |mut w| {
                let mine = slabs[w.rank()].clone();
                let once = transpose_exchange(&mut w, &mine, n).unwrap();
                transpose_exchange(&mut w, &once, n).unwrap()
            });
            let back = gather_slabs(outs, n);
            assert_eq!(back, f, "p={p}");
        }
    }

    #[test]
    fn distributed_forward_matches_serial() {
        let n = 8;
        let f = field(n);
        let planner = FftPlanner::new();
        let mut serial = f.clone();
        fft_3d(&planner, &mut serial, (n, n, n), FftDirection::Forward);
        for p in [1, 2, 4] {
            let slabs = scatter_slabs(&f, n, p);
            let (outs, stats) = run_cluster(p, |mut w| {
                let planner = FftPlanner::new();
                let mine = slabs[w.rank()].clone();
                forward_3d(&mut w, &planner, mine, n).unwrap()
            });
            assert_eq!(stats.rounds(), 1, "forward costs one all-to-all");
            // Transposed layout: local (fy_loc, fx, fz) on owner of fy.
            let c = n / p;
            for (rank, out) in outs.iter().enumerate() {
                for fy_loc in 0..c {
                    let fy = rank * c + fy_loc;
                    for fx in 0..n {
                        for fz in 0..n {
                            let got = out[(fy_loc * n + fx) * n + fz];
                            let want = serial[(fx * n + fy) * n + fz];
                            assert!((got - want).norm() < 1e-8, "p={p} bin ({fx},{fy},{fz})");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn forward_inverse_roundtrip() {
        let n = 8;
        let p = 4;
        let f = field(n);
        let slabs = scatter_slabs(&f, n, p);
        let (outs, stats) = run_cluster(p, |mut w| {
            let planner = FftPlanner::new();
            let mine = slabs[w.rank()].clone();
            let spec = forward_3d(&mut w, &planner, mine, n).unwrap();
            inverse_3d(&mut w, &planner, spec, n).unwrap()
        });
        assert_eq!(
            stats.rounds(),
            2,
            "3D FFT + inverse = two all-to-alls (Eq. 1)"
        );
        let back = gather_slabs(outs, n);
        for (a, b) in f.iter().zip(&back) {
            assert!((*a - *b).norm() < 1e-9);
        }
    }

    #[test]
    fn distributed_convolution_matches_serial() {
        let n = 8;
        let p = 2;
        let f = field(n);
        // A smooth real separable kernel in frequency space.
        let kern = |f: [usize; 3]| {
            let g = |q: usize| (-((q.min(n - q)) as f64).powi(2) / 8.0).exp();
            Complex64::from_real(g(f[0]) * g(f[1]) * g(f[2]))
        };
        // Serial reference: multiply spectrum directly.
        let planner = FftPlanner::new();
        let mut kb = vec![Complex64::ZERO; n * n * n];
        for fx in 0..n {
            for fy in 0..n {
                for fz in 0..n {
                    kb[(fx * n + fy) * n + fz] = kern([fx, fy, fz]);
                }
            }
        }
        // Build the spatial kernel via inverse FFT so we can reuse the
        // serial cyclic convolution oracle.
        let mut kspace = kb.clone();
        lcc_fft::ifft_3d_normalized(&planner, &mut kspace, (n, n, n));
        let want = cyclic_convolve_3d(&planner, &f, &kspace, (n, n, n));

        let slabs = scatter_slabs(&f, n, p);
        let (outs, stats) = run_cluster(p, |mut w| {
            let planner = FftPlanner::new();
            let mine = slabs[w.rank()].clone();
            convolve_distributed(&mut w, &planner, mine, n, &kern).unwrap()
        });
        assert_eq!(stats.rounds(), 2, "convolution costs two transposes here");
        let got = gather_slabs(outs, n);
        for (a, b) in want.iter().zip(&got) {
            assert!((*a - *b).norm() < 1e-8);
        }
    }

    #[test]
    fn measured_bytes_match_formula() {
        // Each transpose: every rank sends c·c·n complex (16 B) to each of
        // the p−1 remote peers.
        let n = 16;
        let p = 4;
        let c = n / p;
        let f = field(n);
        let slabs = scatter_slabs(&f, n, p);
        let (_, stats) = run_cluster(p, |mut w| {
            let mine = slabs[w.rank()].clone();
            transpose_exchange(&mut w, &mine, n).unwrap();
        });
        let expect = (p * (p - 1)) as u64 * (c * c * n * 16) as u64;
        assert_eq!(stats.bytes(), expect);
    }

    #[test]
    fn codec_roundtrip() {
        let v = vec![c64(1.0, -2.0), c64(0.5, 3.5)];
        assert_eq!(decode_complex(&encode_complex(&v)), v);
    }

    #[test]
    #[should_panic(expected = "whole number")]
    fn ragged_complex_decode_panics() {
        decode_complex(&[0u8; 17]);
    }

    #[test]
    fn ragged_complex_decode_is_a_typed_error() {
        let err = try_decode_complex(&[0u8; 17]).unwrap_err();
        assert_eq!(
            err,
            CodecError {
                len: 17,
                elem_size: 16
            }
        );
        let v = vec![c64(1.0, -2.0)];
        assert_eq!(try_decode_complex(&encode_complex(&v)).unwrap(), v);
    }
}
