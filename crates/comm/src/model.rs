//! Analytic communication cost models (paper Eqs. 1, 2, 6).
//!
//! * Eq. 2 (α-β model): `t = α + β·m` for one message of length `m`.
//! * Eq. 1: traditional parallel 3D FFT moves each node's `N³/P` points
//!   through **two** all-to-all stages: `T_FFT = 2·N³/(P·β_link)`.
//! * Eq. 6: the proposed method exchanges only the dense sub-domain plus
//!   sparse exterior samples, **once**:
//!   `T_ours = (k³ + (N³−k³)/r³)/(P·β_link)`.

/// The α-β point-to-point model of Eq. 2.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AlphaBeta {
    /// Link setup latency α, seconds per message.
    pub alpha: f64,
    /// Inverse bandwidth β, seconds per byte.
    pub beta: f64,
}

impl AlphaBeta {
    /// Creates the model from latency (s) and bandwidth (bytes/s).
    pub fn from_latency_bandwidth(alpha: f64, bandwidth: f64) -> Self {
        assert!(bandwidth > 0.0);
        AlphaBeta {
            alpha,
            beta: 1.0 / bandwidth,
        }
    }

    /// Typical HPC interconnect: 1 µs latency, 10 GB/s per link.
    pub fn hpc_default() -> Self {
        Self::from_latency_bandwidth(1e-6, 10e9)
    }

    /// Time for one message of `bytes` (Eq. 2).
    pub fn message_time(&self, bytes: u64) -> f64 {
        self.alpha + self.beta * bytes as f64
    }

    /// Time for `messages` messages moving `bytes` total across `p`
    /// concurrently-injecting ranks on dedicated links: each rank's share
    /// of the messages pays α and its share of the volume pays β serially.
    /// This is the shared kernel behind both the logical
    /// (`CommStats::modeled_time`) and physical
    /// (`CommStats::modeled_time_physical`) wall-time estimates, so the
    /// two are directly comparable.
    pub fn cluster_time(&self, messages: u64, bytes: u64, p: usize) -> f64 {
        let p = p.max(1) as f64;
        (messages as f64 / p) * self.alpha + (bytes as f64 / p) * self.beta
    }

    /// Time for a full-exchange all-to-all where every rank sends
    /// `per_peer_bytes` to each of the other `p−1` ranks (direct algorithm:
    /// p−1 rounds over one port).
    pub fn alltoall_time(&self, p: usize, per_peer_bytes: u64) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        (p as f64 - 1.0) * self.message_time(per_peer_bytes)
    }
}

/// Problem/cluster parameters shared by both estimates.
#[derive(Clone, Copy, Debug)]
pub struct CommScenario {
    /// Grid size N (the transform is N×N×N).
    pub n: usize,
    /// Number of parallel workers P.
    pub p: usize,
    /// Bytes per grid point (16 for complex double, 8 for real double).
    pub elem_bytes: u64,
    /// The link model.
    pub link: AlphaBeta,
}

impl CommScenario {
    /// Eq. 1 with the α-β refinement: two all-to-all stages, each moving the
    /// node's `N³/P` points split across `P−1` peers.
    pub fn t_fft_alltoall(&self) -> f64 {
        let per_node = self.n.pow(3) as u64 / self.p as u64 * self.elem_bytes;
        let per_peer = per_node / (self.p.max(2) as u64 - 1);
        2.0 * self.link.alltoall_time(self.p, per_peer)
    }

    /// Eq. 1 in the paper's bandwidth-only form `2·N³/(P·β_link)`, in
    /// seconds (β_link taken from the α-β model's bandwidth).
    pub fn t_fft_bandwidth_only(&self) -> f64 {
        2.0 * self.n.pow(3) as f64 * self.elem_bytes as f64 * self.link.beta / self.p as f64
    }

    /// Number of exterior sparse samples in Eq. 6: `(N³ − k³)/r³`.
    pub fn sparse_samples(&self, k: usize, r_avg: f64) -> f64 {
        ((self.n.pow(3) - k.pow(3)) as f64) / r_avg.powi(3)
    }

    /// Eq. 6: one exchange of `k³ + (N³−k³)/r³` points per sub-domain,
    /// amortized over P workers, plus one α per peer (single round).
    pub fn t_ours(&self, k: usize, r_avg: f64) -> f64 {
        let points = k.pow(3) as f64 + self.sparse_samples(k, r_avg);
        let bytes = points * self.elem_bytes as f64;
        let bandwidth_term = bytes * self.link.beta / self.p as f64;
        let latency_term = (self.p as f64 - 1.0).max(0.0) * self.link.alpha;
        bandwidth_term + latency_term
    }

    /// Ratio `T_FFT / T_ours` — the communication-reduction factor.
    pub fn reduction_factor(&self, k: usize, r_avg: f64) -> f64 {
        self.t_fft_bandwidth_only() / self.t_ours(k, r_avg)
    }
}

/// Communication volume (bytes moved per node) of the traditional FFT
/// convolution: forward + inverse 3D FFT = 4 all-to-all stages total, each
/// moving N³/P points.
pub fn traditional_conv_volume(n: usize, p: usize, elem_bytes: u64) -> u64 {
    4 * (n.pow(3) as u64 / p as u64) * elem_bytes
}

/// Communication volume (bytes) of the proposed method's single sparse
/// exchange, per sub-domain result.
pub fn lowcomm_volume(n: usize, k: usize, r_avg: f64, elem_bytes: u64) -> u64 {
    let points = k.pow(3) as f64 + ((n.pow(3) - k.pow(3)) as f64) / r_avg.powi(3);
    (points * elem_bytes as f64) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scenario(n: usize, p: usize) -> CommScenario {
        CommScenario {
            n,
            p,
            elem_bytes: 16,
            link: AlphaBeta::hpc_default(),
        }
    }

    #[test]
    fn eq2_linear_in_message_size() {
        let ab = AlphaBeta::from_latency_bandwidth(1e-6, 1e9);
        let t1 = ab.message_time(1000);
        let t2 = ab.message_time(2000);
        assert!((t2 - t1 - 1000.0 * 1e-9).abs() < 1e-15);
        assert!((ab.message_time(0) - 1e-6).abs() < 1e-18);
    }

    #[test]
    fn eq1_scales_inversely_with_p() {
        let a = scenario(512, 8).t_fft_bandwidth_only();
        let b = scenario(512, 16).t_fft_bandwidth_only();
        assert!((a / b - 2.0).abs() < 1e-9);
    }

    #[test]
    fn eq6_beats_eq1_for_paper_parameters() {
        // N=1024, k=32, r=32 (a Table 3 row): ours must be orders of
        // magnitude cheaper.
        let s = scenario(1024, 64);
        let ratio = s.reduction_factor(32, 32.0);
        assert!(ratio > 100.0, "expected large reduction, got {ratio}");
    }

    #[test]
    fn eq6_degrades_gracefully_to_dense() {
        // r = 1 keeps every exterior point: a single exchange of the full
        // grid — still 2× less than the two FFT stages (and 4× less than a
        // full convolution's four stages).
        let s = scenario(256, 4);
        let ours = s.t_ours(32, 1.0);
        let fft = s.t_fft_bandwidth_only();
        assert!(ours < fft, "single full exchange still beats two stages");
        assert!(fft / ours < 2.5);
    }

    #[test]
    fn alltoall_alpha_term_grows_with_p() {
        let ab = AlphaBeta::from_latency_bandwidth(1e-3, 1e12);
        // Latency-dominated: time ≈ (p−1)·α per stage.
        let t = ab.alltoall_time(101, 8);
        assert!((t - 100.0 * ab.message_time(8)).abs() < 1e-12);
        assert_eq!(ab.alltoall_time(1, 1 << 20), 0.0);
    }

    #[test]
    fn volumes_match_hand_count() {
        assert_eq!(
            traditional_conv_volume(64, 4, 16),
            4 * (64u64.pow(3) / 4) * 16
        );
        // r=2 exterior downsampling: (N³−k³)/8 points + dense k³.
        let v = lowcomm_volume(64, 16, 2.0, 8);
        let points = 16u64.pow(3) as f64 + ((64u64.pow(3) - 16u64.pow(3)) as f64) / 8.0;
        assert_eq!(v, (points * 8.0) as u64);
    }

    #[test]
    fn sparse_samples_formula() {
        let s = scenario(128, 2);
        let got = s.sparse_samples(32, 4.0);
        let want = (128f64.powi(3) - 32f64.powi(3)) / 64.0;
        assert!((got - want).abs() < 1e-6);
    }
}
