//! A functional message-passing cluster simulator.
//!
//! P workers run as OS threads connected by crossbeam channels, exposing the
//! MPI-flavoured collectives the paper's pipelines need (all-to-all,
//! allgather, barrier). Every byte that crosses a channel is counted, so
//! experiments can report *measured* communication volumes and round counts
//! next to the analytic Eq. 1 / Eq. 6 estimates.
//!
//! # Fault injection and reliability
//!
//! Runs started with [`run_cluster_with_faults`] thread a [`FaultPlan`]
//! through every wire crossing. When the plan is active, point-to-point
//! sends switch to a sequenced, acknowledged protocol: each logical message
//! carries a per-(src, dst) sequence number, the receiver acks every
//! delivered frame and suppresses retransmitted duplicates, and the sender
//! retries dropped frames up to [`RetryPolicy::max_attempts`] times with
//! exponential backoff. Because every drop/duplicate decision is a pure
//! keyed hash of `(seed, src, dst, seq, attempt)` — see [`crate::fault`] —
//! both endpoints can *compute* the fate of each transmission instead of
//! discovering it by waiting. The sender therefore never burns a real
//! timeout on a frame it knows was lost; blocking waits remain only for
//! events guaranteed to happen, with generous safety timeouts surfacing
//! [`CommError`] instead of deadlocking. The upshot: retransmit, duplicate
//! and timeout counters are exact functions of the fault seed, so any chaos
//! run can be replayed bit-for-bit.
//!
//! When the plan is inert ([`FaultPlan::is_active`] is false — the
//! [`run_cluster`] path) none of the protocol engages and the simulator
//! behaves exactly like the original fire-and-forget implementation.
//!
//! Counter semantics: `bytes_sent` / `messages` count each *logical* send
//! once, never its retransmissions or acks, so communication-volume
//! experiments read the same with faults on or off. The parallel
//! `bytes_physical` / `messages_physical` / `acks` counters record every
//! frame that actually hits the wire — retransmissions, duplicates, frames
//! lost in flight, and acknowledgements — so chaos runs can report the real
//! wire cost next to the logical volume (see
//! [`CommStats::modeled_time_physical`]).
//!
//! # Membership
//!
//! Each endpoint carries an epoch-stamped [`ClusterView`] of which ranks it
//! believes alive. Typed failures feed suspicion via
//! [`CommWorld::record_failure`]; a [`CommWorld::detect_failures`] sweep
//! confirms suspicions against the fault plan (the simulator's stand-in for
//! an out-of-band health probe), so every survivor of a given seed converges
//! on the same sequence of views. The epoch-tagged collectives
//! ([`CommWorld::alltoall_epoch`] and the self-healing
//! [`CommWorld::alltoall_converged`]) stamp every frame with the sender's
//! epoch, discard stale frames from aborted pre-failure attempts, and re-run
//! the exchange until all survivors complete it under a common view.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use lcc_obs::metrics as obs;

use crate::actor::{
    self, ActorState, ConvergedState, Convergence, DataDisposition, EpochDisposition,
};
use crate::fault::{CommError, FaultPlan, RetryPolicy};
use crate::membership::ClusterView;
use crate::transport::fault::FaultTransport;
use crate::transport::frame::{self, WireFrame};
use crate::transport::liveness::LivenessStats;
use crate::transport::{inproc, PointOutcome, RecvOutcome, Transport};

/// Shared instrumentation counters for one cluster run.
#[derive(Debug, Default)]
pub struct CommStats {
    /// Total payload bytes sent across all ranks (self-copies excluded,
    /// retransmissions and acks excluded: logical traffic only).
    pub bytes_sent: AtomicU64,
    /// Total logical point-to-point messages (self-copies excluded).
    pub messages: AtomicU64,
    /// Number of collective rounds entered (counted once per collective,
    /// not per rank).
    pub collective_rounds: AtomicU64,
    /// Data-frame retransmissions forced by the fault plan.
    pub retransmits: AtomicU64,
    /// Redundant deliveries discarded by receivers (retransmits that raced
    /// a successful delivery, plus injected duplicates).
    pub duplicates_suppressed: AtomicU64,
    /// Ack waits that expired because the fault plan dropped the ack.
    pub timeouts: AtomicU64,
    /// Payload bytes of every data frame actually transmitted: first
    /// attempts, retransmissions, injected duplicates, and frames lost in
    /// flight all count (the sender paid for them either way).
    pub bytes_physical: AtomicU64,
    /// Data frames actually transmitted (same counting rule as
    /// `bytes_physical`).
    pub messages_physical: AtomicU64,
    /// Ack frames transmitted, including acks the fault plan then dropped.
    pub acks: AtomicU64,
    /// Newly-dead ranks observed by [`CommWorld::detect_failures`] sweeps.
    /// Lives here (not on the world) so the socket backend can ship the
    /// count home after the workload has consumed its `CommWorld`.
    /// Deliberately *not* part of [`CommStatsSnapshot`]: the nine-counter
    /// wire codec and its exact-equality contracts are unchanged.
    pub deaths_detected: AtomicU64,
    /// Restart-from-checkpoint rejoins acknowledged at a protocol point.
    pub rejoins: AtomicU64,
    /// Wall-clock nanoseconds (UNIX epoch) of the first detection sweep
    /// that demoted a rank; zero if no rank was ever demoted. First writer
    /// wins, so on a shared in-process handle this is the cluster's
    /// earliest detection.
    pub first_detection_ns: AtomicU64,
}

impl CommStats {
    /// Snapshot of total bytes sent.
    pub fn bytes(&self) -> u64 {
        self.bytes_sent.load(Ordering::Relaxed)
    }

    /// Snapshot of total messages.
    pub fn message_count(&self) -> u64 {
        self.messages.load(Ordering::Relaxed)
    }

    /// Snapshot of collective rounds.
    pub fn rounds(&self) -> u64 {
        self.collective_rounds.load(Ordering::Relaxed)
    }

    /// Snapshot of forced retransmissions.
    pub fn retransmit_count(&self) -> u64 {
        self.retransmits.load(Ordering::Relaxed)
    }

    /// Snapshot of suppressed duplicate deliveries.
    pub fn duplicate_count(&self) -> u64 {
        self.duplicates_suppressed.load(Ordering::Relaxed)
    }

    /// Snapshot of expired ack waits.
    pub fn timeout_count(&self) -> u64 {
        self.timeouts.load(Ordering::Relaxed)
    }

    /// Snapshot of physically transmitted payload bytes (retransmissions,
    /// duplicates and in-flight losses included).
    pub fn physical_bytes(&self) -> u64 {
        self.bytes_physical.load(Ordering::Relaxed)
    }

    /// Snapshot of physically transmitted data frames.
    pub fn physical_message_count(&self) -> u64 {
        self.messages_physical.load(Ordering::Relaxed)
    }

    /// Snapshot of transmitted ack frames.
    pub fn ack_count(&self) -> u64 {
        self.acks.load(Ordering::Relaxed)
    }

    /// Snapshot of newly-dead ranks observed across detection sweeps.
    pub fn deaths_detected_count(&self) -> u64 {
        self.deaths_detected.load(Ordering::Relaxed)
    }

    /// Snapshot of checkpoint-restart rejoins.
    pub fn rejoin_count(&self) -> u64 {
        self.rejoins.load(Ordering::Relaxed)
    }

    /// Wall-clock UNIX nanoseconds of the earliest failure detection, if
    /// any rank was ever demoted.
    pub fn first_detection_ns(&self) -> Option<u64> {
        match self.first_detection_ns.load(Ordering::Relaxed) {
            0 => None,
            ns => Some(ns),
        }
    }

    /// Records the wall-clock instant of a detection sweep that demoted a
    /// rank; only the first report sticks.
    pub fn note_first_detection(&self) {
        let ns = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(1);
        let _ = self.first_detection_ns.compare_exchange(
            0,
            ns.max(1),
            Ordering::Relaxed,
            Ordering::Relaxed,
        );
    }

    /// α-β modeled wall time of the recorded *logical* traffic on `p`
    /// ranks, assuming all ranks inject concurrently on dedicated links
    /// (the fully-connected assumption behind the paper's Eq. 1): every
    /// message pays α, and each rank's share of the volume pays β serially.
    pub fn modeled_time(&self, model: &crate::model::AlphaBeta, p: usize) -> f64 {
        model.cluster_time(self.message_count(), self.bytes(), p)
    }

    /// α-β modeled wall time of the *physical* traffic: every transmitted
    /// data frame and ack pays α, and the retransmitted/duplicated/lost
    /// bytes pay β like any others (acks are modeled as
    /// [`ACK_WIRE_BYTES`]-byte frames). Under an inert plan this equals
    /// [`CommStats::modeled_time`] plus the ack cost of zero acks — i.e.
    /// exactly the logical time.
    pub fn modeled_time_physical(&self, model: &crate::model::AlphaBeta, p: usize) -> f64 {
        let msgs = self.physical_message_count() + self.ack_count();
        let bytes = self.physical_bytes() + ACK_WIRE_BYTES * self.ack_count();
        model.cluster_time(msgs, bytes, p)
    }

    /// A plain-value copy of all nine counters, for cross-process
    /// aggregation (socket-backend ranks each accumulate a local
    /// `CommStats` and ship the snapshot home) and for exact equality
    /// assertions in the conformance suite.
    pub fn snapshot(&self) -> CommStatsSnapshot {
        CommStatsSnapshot {
            bytes_sent: self.bytes(),
            messages: self.message_count(),
            collective_rounds: self.rounds(),
            retransmits: self.retransmit_count(),
            duplicates_suppressed: self.duplicate_count(),
            timeouts: self.timeout_count(),
            bytes_physical: self.physical_bytes(),
            messages_physical: self.physical_message_count(),
            acks: self.ack_count(),
        }
    }

    /// Folds a snapshot into these counters. Because every counter is an
    /// exact function of the fault seed, summing per-process snapshots
    /// reproduces the totals a shared-atomics run would have recorded.
    pub fn add_snapshot(&self, s: &CommStatsSnapshot) {
        self.bytes_sent.fetch_add(s.bytes_sent, Ordering::Relaxed);
        self.messages.fetch_add(s.messages, Ordering::Relaxed);
        self.collective_rounds
            .fetch_add(s.collective_rounds, Ordering::Relaxed);
        self.retransmits.fetch_add(s.retransmits, Ordering::Relaxed);
        self.duplicates_suppressed
            .fetch_add(s.duplicates_suppressed, Ordering::Relaxed);
        self.timeouts.fetch_add(s.timeouts, Ordering::Relaxed);
        self.bytes_physical
            .fetch_add(s.bytes_physical, Ordering::Relaxed);
        self.messages_physical
            .fetch_add(s.messages_physical, Ordering::Relaxed);
        self.acks.fetch_add(s.acks, Ordering::Relaxed);
    }
}

/// A plain-value snapshot of [`CommStats`]; see [`CommStats::snapshot`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommStatsSnapshot {
    pub bytes_sent: u64,
    pub messages: u64,
    pub collective_rounds: u64,
    pub retransmits: u64,
    pub duplicates_suppressed: u64,
    pub timeouts: u64,
    pub bytes_physical: u64,
    pub messages_physical: u64,
    pub acks: u64,
}

impl CommStatsSnapshot {
    /// Serialized size: nine little-endian `u64`s.
    pub const WIRE_BYTES: usize = 72;

    /// Field-wise sum, used by the socket coordinator to fold per-process
    /// snapshots into cluster totals.
    pub fn add_snapshot(&mut self, other: &CommStatsSnapshot) {
        self.bytes_sent += other.bytes_sent;
        self.messages += other.messages;
        self.collective_rounds += other.collective_rounds;
        self.retransmits += other.retransmits;
        self.duplicates_suppressed += other.duplicates_suppressed;
        self.timeouts += other.timeouts;
        self.bytes_physical += other.bytes_physical;
        self.messages_physical += other.messages_physical;
        self.acks += other.acks;
    }

    fn fields(&self) -> [u64; 9] {
        [
            self.bytes_sent,
            self.messages,
            self.collective_rounds,
            self.retransmits,
            self.duplicates_suppressed,
            self.timeouts,
            self.bytes_physical,
            self.messages_physical,
            self.acks,
        ]
    }

    /// Fixed-layout little-endian serialization (the socket backend's
    /// RESULT frames carry this).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(Self::WIRE_BYTES);
        for f in self.fields() {
            out.extend_from_slice(&f.to_le_bytes());
        }
        out
    }

    /// Inverse of [`CommStatsSnapshot::to_bytes`], rejecting wrong-sized
    /// payloads with a typed error.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CodecError> {
        if bytes.len() != Self::WIRE_BYTES {
            return Err(CodecError {
                len: bytes.len(),
                elem_size: Self::WIRE_BYTES,
            });
        }
        let mut f = [0u64; 9];
        for (i, chunk) in bytes.chunks_exact(8).enumerate() {
            let mut b = [0u8; 8];
            b.copy_from_slice(chunk);
            f[i] = u64::from_le_bytes(b);
        }
        Ok(CommStatsSnapshot {
            bytes_sent: f[0],
            messages: f[1],
            collective_rounds: f[2],
            retransmits: f[3],
            duplicates_suppressed: f[4],
            timeouts: f[5],
            bytes_physical: f[6],
            messages_physical: f[7],
            acks: f[8],
        })
    }
}

/// Wire size charged per ack frame in the physical α-β model: one `u64`
/// sequence number.
pub const ACK_WIRE_BYTES: u64 = 8;

/// One rank's endpoint into the cluster.
///
/// The protocol, membership, and accounting layers live here; the bytes
/// themselves move through a pluggable [`Transport`] (in-process channels,
/// real sockets, or either wrapped in a fault-injecting decorator — see
/// [`crate::transport`]).
pub struct CommWorld {
    rank: usize,
    size: usize,
    transport: Box<dyn Transport>,
    /// Per-peer reorder buffers: messages that arrived ahead of the peer we
    /// are currently waiting on.
    inbox: Vec<VecDeque<Vec<u8>>>,
    stats: Arc<CommStats>,
    plan: Arc<FaultPlan>,
    retry: RetryPolicy,
    /// The pure protocol kernel: sequence spaces, receiver-side dedup,
    /// the epoch-stamped membership view, suspicion, and the killed flag
    /// all live in [`crate::actor`], shared verbatim with the `lcc-check`
    /// model checker. `CommWorld` owns only the wire work around it.
    actor: ActorState,
}

impl CommWorld {
    /// Builds an endpoint over an arbitrary transport. This is how the
    /// backend-parameterized conformance harness (and the socket backend's
    /// child processes) assemble a rank; [`run_cluster`] /
    /// [`run_cluster_with_faults`] do the same over an in-process fabric.
    ///
    /// When `plan` is active, `transport` must already be wrapped in a
    /// [`FaultTransport`] carrying the same plan: the protocol *computes*
    /// each frame's fate from the plan and counts accordingly, and the
    /// decorator is what makes the wire agree with the computation.
    pub fn over(
        transport: Box<dyn Transport>,
        plan: Arc<FaultPlan>,
        retry: RetryPolicy,
        stats: Arc<CommStats>,
    ) -> CommWorld {
        let rank = transport.rank();
        let size = transport.size();
        CommWorld {
            rank,
            size,
            transport,
            inbox: (0..size).map(|_| VecDeque::new()).collect(),
            stats,
            plan,
            retry,
            actor: ActorState::new(rank, size),
        }
    }

    /// This rank's id.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.size
    }

    /// The shared statistics handle.
    pub fn stats(&self) -> &Arc<CommStats> {
        &self.stats
    }

    /// The fault plan governing this run (inert under [`run_cluster`]).
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Sends `payload` to `to` (point-to-point, FIFO per sender-receiver
    /// pair). Under an active fault plan this blocks until the message is
    /// acknowledged, retrying dropped frames per the [`RetryPolicy`].
    pub fn send(&mut self, to: usize, payload: Vec<u8>) -> Result<(), CommError> {
        assert!(to < self.size, "invalid destination rank {to}");
        if to == self.rank {
            // Local delivery never touches the wire (or the fault plan).
            self.inbox[to].push_back(payload);
            return Ok(());
        }
        if self.plan.is_crashed(to) {
            return Err(CommError::PeerCrashed {
                rank: self.rank,
                peer: to,
            });
        }
        self.stats
            .bytes_sent
            .fetch_add(payload.len() as u64, Ordering::Relaxed);
        self.stats.messages.fetch_add(1, Ordering::Relaxed);
        // The obs counters mirror `CommStats` at the same call site so a
        // session's totals match the stats accounting exactly.
        obs::COMM_BYTES_LOGICAL.add(payload.len() as u64);
        obs::COMM_MESSAGES_LOGICAL.incr();
        let seq = self.actor.alloc_seq(to);
        if !self.plan.is_active() {
            self.count_physical(payload.len());
            let framed = frame::encode_data(seq, 0, &payload);
            return self.transport.send_frame(to, framed);
        }
        self.send_reliable(to, seq, payload)
    }

    /// Records one data frame hitting the wire.
    fn count_physical(&self, bytes: usize) {
        self.stats
            .bytes_physical
            .fetch_add(bytes as u64, Ordering::Relaxed);
        self.stats.messages_physical.fetch_add(1, Ordering::Relaxed);
        obs::COMM_BYTES_PHYSICAL.add(bytes as u64);
        obs::COMM_MESSAGES_PHYSICAL.incr();
    }

    /// The sequenced/acked path. The fate of every transmission is a keyed
    /// hash both endpoints can evaluate, so the protocol outcome (attempt
    /// count, timeouts, which ack finally survives) is decided up front;
    /// the frames are then transmitted and the one blocking wait is for an
    /// ack that is guaranteed to arrive.
    fn send_reliable(&mut self, to: usize, seq: u64, payload: Vec<u8>) -> Result<(), CommError> {
        let plan = Arc::clone(&self.plan);
        let sp = actor::plan_send(&plan, &self.retry, self.rank, to, seq);

        // Each attempt is handed to the transport exactly once, carrying
        // its attempt index in the frame header; the fault decorator
        // re-evaluates the same keyed rolls to drop or duplicate it (and
        // applies the sender-side delay before attempt 0). The physical
        // accounting here mirrors those decisions: a dropped frame still
        // left the sender's NIC (one copy), a duplicated one cost two.
        for a in 0..sp.attempts {
            if a > 0 {
                std::thread::sleep(self.retry.backoff(a));
            }
            let copies = actor::attempt_copies(&plan, self.rank, to, seq, a);
            for _ in 0..copies {
                self.count_physical(payload.len());
            }
            self.transport
                .send_frame(to, frame::encode_data(seq, a, &payload))?;
        }
        self.stats
            .retransmits
            .fetch_add(sp.retransmits, Ordering::Relaxed);
        self.stats
            .timeouts
            .fetch_add(sp.timeouts, Ordering::Relaxed);
        obs::COMM_RETRANSMITS.add(sp.retransmits);
        obs::COMM_TIMEOUTS.add(sp.timeouts);
        if !sp.acked {
            return Err(CommError::RetriesExhausted {
                rank: self.rank,
                peer: to,
                seq,
                attempts: sp.attempts,
            });
        }
        self.wait_for_ack(to, seq)
    }

    /// Blocks until the ack for `(to, seq)` arrives, servicing any data
    /// frames encountered meanwhile so two mutually-sending ranks cannot
    /// deadlock on each other's acks.
    fn wait_for_ack(&mut self, to: usize, seq: u64) -> Result<(), CommError> {
        let deadline = Instant::now() + self.retry.ack_timeout;
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                self.stats.timeouts.fetch_add(1, Ordering::Relaxed);
                obs::COMM_TIMEOUTS.incr();
                return Err(CommError::Timeout {
                    op: "ack",
                    rank: self.rank,
                    waiting_on: to,
                });
            }
            match self.transport.recv_frame(remaining)? {
                RecvOutcome::Frame(src, bytes) => {
                    match frame::decode_for(self.rank, src, bytes)? {
                        WireFrame::Ack { seq: s, .. } => {
                            if src == to && s == seq {
                                return Ok(());
                            }
                            // Stale ack from an already-completed exchange.
                        }
                        WireFrame::Data {
                            seq: s, payload, ..
                        } => self.handle_data(src, s, payload),
                        // Heartbeats are consumed inside socket reader
                        // threads; one reaching the protocol layer (the
                        // in-process backend has no such filter) is simply
                        // fresh evidence of life, which membership already
                        // gets from the frame itself.
                        WireFrame::Heartbeat { .. } => {}
                    }
                }
                RecvOutcome::Idle => continue,
                RecvOutcome::Closed => {
                    return Err(CommError::Disbanded {
                        rank: self.rank,
                        peer: to,
                    })
                }
            }
        }
    }

    /// Receiver-side protocol: accept new frames in order, ack every
    /// delivered frame (subject to ack drops), and suppress duplicates.
    fn handle_data(&mut self, src: usize, seq: u64, payload: Vec<u8>) {
        if !self.plan.is_active() {
            self.inbox[src].push_back(payload);
            return;
        }
        match self.actor.on_data(src, seq) {
            DataDisposition::Duplicate { ack_k } => {
                // A retransmission of something already delivered.
                self.stats
                    .duplicates_suppressed
                    .fetch_add(1, Ordering::Relaxed);
                obs::COMM_DUPLICATES.incr();
                self.send_ack(src, seq, ack_k);
            }
            DataDisposition::Deliver { ack_k } => {
                self.send_ack(src, seq, ack_k);
                self.inbox[src].push_back(payload);
            }
        }
    }

    /// Acks delivered frame number `k` of `(src → self, seq)`, as decided
    /// by [`ActorState::on_data`]. The frame carries its ack index, so the
    /// fault decorator can evaluate the same keyed ack-drop roll the
    /// sender evaluated — the sender already knows which ack (if any)
    /// will survive.
    fn send_ack(&mut self, src: usize, seq: u64, k: u64) {
        // The ack is transmitted before the decorator may lose it:
        // physical cost either way.
        self.stats.acks.fetch_add(1, Ordering::Relaxed);
        obs::COMM_ACKS.incr();
        // Best effort: the peer may already have finished its run.
        let _ = self.transport.send_frame(src, frame::encode_ack(seq, k));
    }

    fn handle_frame(&mut self, src: usize, frame: WireFrame) {
        match frame {
            WireFrame::Data { seq, payload, .. } => self.handle_data(src, seq, payload),
            WireFrame::Ack { .. } => {} // stale: nobody is waiting on it anymore
            WireFrame::Heartbeat { .. } => {} // liveness noise, not protocol
        }
    }

    /// Receives the next in-order message from `from`, buffering messages
    /// from other peers encountered while waiting. Fails with a typed error
    /// after [`RetryPolicy::recv_timeout`] instead of hanging.
    pub fn recv_from(&mut self, from: usize) -> Result<Vec<u8>, CommError> {
        assert!(from < self.size, "invalid source rank {from}");
        if self.plan.is_crashed(from) {
            return Err(CommError::PeerCrashed {
                rank: self.rank,
                peer: from,
            });
        }
        let deadline = Instant::now() + self.retry.recv_timeout;
        loop {
            if let Some(m) = self.inbox[from].pop_front() {
                return Ok(m);
            }
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(CommError::Timeout {
                    op: "recv_from",
                    rank: self.rank,
                    waiting_on: from,
                });
            }
            match self.transport.recv_frame(remaining)? {
                RecvOutcome::Frame(src, bytes) => {
                    let frame = frame::decode_for(self.rank, src, bytes)?;
                    self.handle_frame(src, frame);
                }
                RecvOutcome::Idle => continue,
                RecvOutcome::Closed => {
                    return Err(CommError::Disbanded {
                        rank: self.rank,
                        peer: from,
                    })
                }
            }
        }
    }

    /// Synchronizes all live ranks, failing with a typed error after
    /// [`RetryPolicy::barrier_timeout`].
    pub fn barrier(&mut self) -> Result<(), CommError> {
        if self.transport.barrier(self.retry.barrier_timeout)? {
            Ok(())
        } else {
            Err(CommError::Timeout {
                op: "barrier",
                rank: self.rank,
                waiting_on: usize::MAX,
            })
        }
    }

    /// Bumps the collective-round counter exactly once per collective: on
    /// the lowest rank the fault plan lets finish the run (deserters leave
    /// mid-run, so they cannot be the counting rank).
    fn count_round(&self) {
        let lowest_live = (0..self.size)
            .find(|&r| {
                !self.plan.is_crashed(r) && !self.plan.deserts(r) && !self.plan.killed_for_good(r)
            })
            .unwrap_or(0);
        if self.rank == lowest_live {
            self.stats.collective_rounds.fetch_add(1, Ordering::Relaxed);
            obs::COMM_COLLECTIVE_ROUNDS.incr();
        }
    }

    /// All-to-all personalized exchange: `outgoing[i]` goes to rank `i`;
    /// returns `incoming[i]` from each rank `i` (including this rank's own
    /// self-message, delivered without touching the network counters).
    /// Fails with [`CommError::PeerCrashed`] if any peer is crashed — use
    /// [`CommWorld::alltoall_surviving`] to degrade instead.
    pub fn alltoall(&mut self, outgoing: Vec<Vec<u8>>) -> Result<Vec<Vec<u8>>, CommError> {
        assert_eq!(outgoing.len(), self.size, "need one payload per rank");
        self.count_round();
        for (to, payload) in outgoing.into_iter().enumerate() {
            self.send(to, payload)?;
        }
        (0..self.size).map(|from| self.recv_from(from)).collect()
    }

    /// Allgather: every rank contributes `payload`, every rank receives all
    /// contributions indexed by rank.
    pub fn allgather(&mut self, payload: Vec<u8>) -> Result<Vec<Vec<u8>>, CommError> {
        let outgoing = vec![payload; self.size];
        self.alltoall(outgoing)
    }

    /// All-to-all across the surviving ranks: payloads addressed to crashed
    /// peers are discarded and their slots come back as `None`, letting the
    /// caller degrade gracefully instead of failing.
    pub fn alltoall_surviving(
        &mut self,
        outgoing: Vec<Vec<u8>>,
    ) -> Result<Vec<Option<Vec<u8>>>, CommError> {
        assert_eq!(outgoing.len(), self.size, "need one payload per rank");
        self.count_round();
        for (to, payload) in outgoing.into_iter().enumerate() {
            if !self.plan.is_crashed(to) {
                self.send(to, payload)?;
            }
        }
        (0..self.size)
            .map(|from| {
                if self.plan.is_crashed(from) {
                    Ok(None)
                } else {
                    self.recv_from(from).map(Some)
                }
            })
            .collect()
    }

    /// Allgather across the surviving ranks; crashed ranks' slots are
    /// `None`.
    pub fn allgather_surviving(
        &mut self,
        payload: Vec<u8>,
    ) -> Result<Vec<Option<Vec<u8>>>, CommError> {
        let outgoing = vec![payload; self.size];
        self.alltoall_surviving(outgoing)
    }

    // ---- membership & epoch-tagged collectives ----

    /// This rank's current membership belief.
    pub fn current_view(&self) -> &ClusterView {
        self.actor.view()
    }

    /// Feeds a typed failure into the suspicion set. Suspicion only
    /// accelerates [`CommWorld::detect_failures`]; it never changes the
    /// view by itself, so a transient drop cannot evict a healthy peer.
    pub fn record_failure(&mut self, err: &CommError) {
        if let Some(peer) = err.implicated_peer() {
            self.actor.record_suspect(peer);
        }
    }

    /// Peers currently under suspicion (ascending), for diagnostics.
    pub fn suspected_ranks(&self) -> impl Iterator<Item = usize> + '_ {
        self.actor.suspected_ranks()
    }

    /// Detection sweep: unions the fault plan's ground truth (the
    /// simulator's stand-in for an out-of-band health probe) with the
    /// transport's *observed* evidence — hard socket failures and overdue
    /// heartbeats from the [`crate::transport::liveness::LivenessBoard`] —
    /// and bumps the view epoch iff membership changed. Returns whether it
    /// did.
    ///
    /// Planned deaths appear in both sources, so every survivor of a given
    /// seed converges on the same sequence of views and epochs on every
    /// backend regardless of thread interleaving; *unplanned* deaths (a
    /// child that aborts with no plan entry) are covered by the evidence
    /// term alone. The union is re-anchored on the current view's dead set
    /// so a rescinded pure-silence suspicion can never resurrect a rank.
    /// Suspicions are cleared: each was either confirmed or exonerated as
    /// transient loss.
    pub fn detect_failures(&mut self) -> bool {
        let planned = self.plan.doomed_ranks(self.size);
        let observed = self.transport.confirmed_dead();
        let out = self.actor.sweep(planned, observed);
        if out.changed {
            self.stats
                .deaths_detected
                .fetch_add(out.newly_dead, Ordering::Relaxed);
            self.stats.note_first_detection();
            obs::LIVENESS_DEATHS_DETECTED.add(out.newly_dead);
            // Spans this rank records from here on carry the new epoch.
            lcc_obs::set_epoch(out.epoch);
        }
        out.changed
    }

    /// Crosses seeded protocol point `idx` — the coordinates at which the
    /// kill-chaos machinery strikes. Workloads place these between
    /// checkpointed phases; on a backend with real kills the call is a
    /// coordinator rendezvous that may never return (SIGKILL), while the
    /// in-process injector replays the same death as
    /// [`CommError::Killed`]. A workload receiving `Killed` must stop
    /// participating, exactly like a deserter (return no result; peers
    /// detect and recover).
    pub fn protocol_point(&mut self, idx: u64) -> Result<(), CommError> {
        match self.transport.protocol_point(idx) {
            Ok(PointOutcome::Proceed) => Ok(()),
            Ok(PointOutcome::Rejoined) => {
                self.stats.rejoins.fetch_add(1, Ordering::Relaxed);
                obs::LIVENESS_REJOINS.incr();
                Ok(())
            }
            Err(e) => {
                if matches!(e, CommError::Killed { .. }) {
                    self.actor.on_killed();
                    self.transport.depart();
                }
                Err(e)
            }
        }
    }

    /// This rank's liveness counters: the protocol-level pair accounted on
    /// the shared [`CommStats`] handle (`deaths_detected`, `rejoins` —
    /// cluster totals on an in-process run, per-process on the socket
    /// backend) merged with the transport detector's own (heartbeats,
    /// evidence, suspicions).
    pub fn liveness_stats(&self) -> LivenessStats {
        let mut out = self.transport.liveness_stats();
        out.deaths_detected += self.stats.deaths_detected_count();
        out.rejoins += self.stats.rejoin_count();
        out
    }

    /// Sends `payload` framed with this rank's current view epoch. Used by
    /// the epoch collectives and by chaos workloads that emit partial
    /// exchanges before deserting.
    pub fn send_epoch(&mut self, to: usize, payload: &[u8]) -> Result<(), CommError> {
        let framed = frame::encode_epoch(self.actor.view().epoch(), payload);
        self.send(to, framed)
    }

    /// Receives the next frame from `from` that carries the current view
    /// epoch, silently discarding stale frames left over from exchange
    /// attempts aborted by a failure. A frame from a *newer* epoch is a
    /// protocol error ([`CommError::EpochMismatch`]): this rank missed a
    /// detection sweep.
    fn recv_epoch_from(&mut self, from: usize) -> Result<Vec<u8>, CommError> {
        loop {
            let frame = self.recv_from(from)?;
            let (remote, payload) =
                frame::decode_epoch(&frame).map_err(|e| e.into_comm_error(self.rank, from))?;
            match self.actor.classify_epoch(remote) {
                // Stale: from an attempt aborted pre-detection.
                EpochDisposition::Stale => continue,
                EpochDisposition::Ahead => {
                    let err = CommError::EpochMismatch {
                        rank: self.rank,
                        peer: from,
                        local_epoch: self.actor.view().epoch(),
                        remote_epoch: remote,
                    };
                    // Not ours to consume yet: once this rank's own
                    // detection sweep catches up, the retried exchange
                    // will claim it.
                    self.inbox[from].push_front(frame);
                    return Err(err);
                }
                EpochDisposition::Current => return Ok(payload.to_vec()),
            }
        }
    }

    /// One epoch-tagged all-to-all attempt under the current view: frames
    /// carry the sender's epoch, peers believed dead are skipped (`None`
    /// slots), sends are best-effort (a failed send marks the peer suspect
    /// and moves on), and any receive failure aborts the attempt so the
    /// caller can run [`CommWorld::detect_failures`] and retry. Most
    /// callers want [`CommWorld::alltoall_converged`], which does exactly
    /// that loop.
    pub fn alltoall_epoch(
        &mut self,
        outgoing: Vec<Vec<u8>>,
    ) -> Result<Vec<Option<Vec<u8>>>, CommError> {
        assert_eq!(outgoing.len(), self.size, "need one payload per rank");
        self.count_round();
        for (to, payload) in outgoing.into_iter().enumerate() {
            if !self.actor.view().is_alive(to) {
                continue;
            }
            if let Err(e) = self.send_epoch(to, &payload) {
                self.record_failure(&e);
            }
        }
        let mut incoming = Vec::with_capacity(self.size);
        for from in 0..self.size {
            if !self.actor.view().is_alive(from) {
                incoming.push(None);
                continue;
            }
            match self.recv_epoch_from(from) {
                Ok(p) => incoming.push(Some(p)),
                Err(e) => {
                    self.record_failure(&e);
                    return Err(e);
                }
            }
        }
        Ok(incoming)
    }

    /// Epoch-tagged allgather attempt; see [`CommWorld::alltoall_epoch`].
    pub fn allgather_epoch(&mut self, payload: Vec<u8>) -> Result<Vec<Option<Vec<u8>>>, CommError> {
        let outgoing = vec![payload; self.size];
        self.alltoall_epoch(outgoing)
    }

    /// Self-healing all-to-all: attempts the exchange, runs a detection
    /// sweep, and re-runs under the new view until an attempt completes
    /// with no membership change — at which point *every* survivor has
    /// completed the exchange under the same epoch, even survivors whose
    /// own first attempt happened to succeed before the failure surfaced.
    ///
    /// `make_outgoing` is called once per *epoch* with the view the attempt
    /// will run under, letting the caller fold recovered work for newly
    /// dead ranks into the re-sent payloads. Slots of dead ranks are `None`
    /// in the result, which is tagged with the epoch it completed under.
    ///
    /// Within one epoch the exchange is resumable: a transient failure
    /// (e.g. a marginal timeout) retries only the sends that were never
    /// acknowledged and the slots never received, so no peer ever sees a
    /// duplicate frame for the same epoch and later exchanges at that
    /// epoch cannot mispair. Errors only if retries at a stable view stay
    /// fruitless `size` times in a row — genuine protocol failure, not a
    /// death.
    pub fn alltoall_converged(
        &mut self,
        mut make_outgoing: impl FnMut(&ClusterView) -> Vec<Vec<u8>>,
    ) -> Result<ConvergedExchange, CommError> {
        'epoch: loop {
            let outgoing = make_outgoing(self.actor.view());
            assert_eq!(outgoing.len(), self.size, "need one payload per rank");
            // A view change starts a fresh state (resetting the fruitless
            // counter with it); within the epoch the exchange is resumable.
            let mut ex = ConvergedState::begin(self.actor.view());
            let mut slots: Vec<Option<Vec<u8>>> = vec![None; self.size];
            loop {
                self.count_round();
                for (to, payload) in outgoing.iter().enumerate() {
                    if ex.sent[to] || !self.actor.view().is_alive(to) {
                        continue;
                    }
                    // Best-effort: an acked send is delivered exactly once
                    // (receiver-side dedup), so it is never repeated; a
                    // failed send marks the peer suspect and is retried
                    // only if the view holds steady.
                    match self.send_epoch(to, payload) {
                        Ok(()) => ex.mark_sent(to),
                        Err(e) => self.record_failure(&e),
                    }
                }
                let mut failure = None;
                for (from, slot) in slots.iter_mut().enumerate() {
                    if ex.received[from] || !self.actor.view().is_alive(from) {
                        continue;
                    }
                    match self.recv_epoch_from(from) {
                        Ok(p) => {
                            *slot = Some(p);
                            ex.mark_received(from);
                        }
                        Err(e) => {
                            self.record_failure(&e);
                            failure = Some(e);
                            break;
                        }
                    }
                }
                if self.detect_failures() {
                    // The view advanced: this epoch's exchange (complete or
                    // not) ran under stale membership. Redo it from scratch
                    // at the new epoch so all survivors complete under a
                    // common view; peers discard the stale frames.
                    continue 'epoch;
                }
                match failure {
                    None => {
                        // All receives landed, but a peer can be live yet
                        // unsent: its send failed transiently and nothing
                        // since forced a retry. Returning now would starve
                        // that peer (it still waits on our frame), so the
                        // exchange only converges once every live slot was
                        // both sent and received.
                        match ex.convergence(self.actor.view()) {
                            Convergence::Converged => return Ok((slots, ex.epoch)),
                            Convergence::Starved(starved) => {
                                if ex.note_fruitless() >= self.size {
                                    return Err(CommError::Timeout {
                                        op: "converged_send",
                                        rank: self.rank,
                                        waiting_on: starved,
                                    });
                                }
                            }
                        }
                    }
                    Some(e) => {
                        if ex.note_fruitless() >= self.size {
                            return Err(e);
                        }
                    }
                }
            }
        }
    }

    /// Self-healing allgather; see [`CommWorld::alltoall_converged`].
    pub fn allgather_converged(
        &mut self,
        mut make_payload: impl FnMut(&ClusterView) -> Vec<u8>,
    ) -> Result<ConvergedExchange, CommError> {
        let size = self.size;
        self.alltoall_converged(|view| vec![make_payload(view); size])
    }
}

/// What a converged collective returns: one payload slot per rank (`None`
/// for dead ranks) plus the membership epoch the exchange completed under.
pub type ConvergedExchange = (Vec<Option<Vec<u8>>>, u64);

impl Drop for CommWorld {
    /// End-of-run drain. Retransmitted duplicates can still be in flight
    /// when a rank's closure returns; servicing them here (a) releases any
    /// peer still blocked on an ack and (b) makes `duplicates_suppressed`
    /// count *every* delivered redundant frame, keeping the counter an
    /// exact function of the fault seed rather than of thread timing.
    ///
    /// The drain runs even with an inactive fault plan: on the socket
    /// backend, dropping the world closes real sockets, and an early EOF
    /// is indistinguishable from death to a peer still mid-exchange —
    /// every rank must hold its mesh open until `ALL_DONE` so normal
    /// completion never masquerades as failure.
    fn drop(&mut self) {
        if !self.actor.drain_gate(self.plan.is_crashed(self.rank)) {
            // A crashed or killed rank already departed the rendezvous and
            // must act dead: announcing done or acking stragglers here
            // would be traffic from beyond the grave.
            return;
        }
        self.transport.announce_done();
        let deadline = Instant::now() + self.retry.drain_timeout;
        loop {
            let all_done = self.transport.all_done();
            match self.transport.try_recv_frame() {
                Ok(RecvOutcome::Frame(src, bytes)) => {
                    // An undecodable straggler is dropped, not serviced:
                    // nobody is waiting on it and the run is over.
                    if let Ok(frame) = frame::decode_owned(bytes) {
                        self.handle_frame(src, frame);
                    }
                }
                Ok(RecvOutcome::Idle) => {
                    if all_done || Instant::now() >= deadline {
                        break;
                    }
                    std::thread::sleep(Duration::from_micros(200));
                }
                Ok(RecvOutcome::Closed) | Err(_) => break,
            }
        }
    }
}

/// Gate ensuring one simulated cluster runs at a time per process.
///
/// Rank closures routinely mix blocking channel receives with rayon
/// data-parallel regions; two clusters interleaving on a small shared
/// rayon pool can starve each other (observed as a deadlock on single-core
/// hosts when the test harness runs cluster tests concurrently).
/// Serializing whole cluster runs removes the interaction without
/// constraining anything the simulator is for.
static CLUSTER_GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Runs `f` on `p` ranks, each on its own thread, returning the per-rank
/// results (in rank order) and the aggregated statistics.
///
/// Process-wide, cluster runs are serialized (see `CLUSTER_GATE`).
pub fn run_cluster<R, F>(p: usize, f: F) -> (Vec<R>, Arc<CommStats>)
where
    R: Send,
    F: Fn(CommWorld) -> R + Send + Sync,
{
    let (results, stats) = run_cluster_with_faults(p, FaultPlan::none(), RetryPolicy::default(), f);
    let results = results
        .into_iter()
        .map(|r| match r {
            Some(r) => r,
            None => unreachable!("no rank is crashed in a fault-free run"),
        })
        .collect();
    (results, stats)
}

/// Runs `f` on the live ranks of a `p`-rank cluster under `plan`, returning
/// `None` in the slots of crashed ranks. Identical seeds replay identical
/// fault patterns and statistics (see [`crate::fault`]).
pub fn run_cluster_with_faults<R, F>(
    p: usize,
    plan: FaultPlan,
    retry: RetryPolicy,
    f: F,
) -> (Vec<Option<R>>, Arc<CommStats>)
where
    R: Send,
    F: Fn(CommWorld) -> R + Send + Sync,
{
    assert!(p >= 1, "need at least one rank");
    let live = plan.live_count(p);
    assert!(live >= 1, "at least one rank must survive the fault plan");
    let _gate = CLUSTER_GATE.lock().unwrap_or_else(|e| e.into_inner());
    let plan = Arc::new(plan);
    let stats = Arc::new(CommStats::default());
    let mut worlds: Vec<CommWorld> = inproc::fabric(p, live)
        .into_iter()
        .map(|endpoint| {
            // Active plans go through the fault decorator so the wire
            // agrees with the fates the protocol computes; inert plans run
            // on the bare backend.
            let transport: Box<dyn Transport> = if plan.is_active() {
                Box::new(FaultTransport::new(endpoint, Arc::clone(&plan)))
            } else {
                Box::new(endpoint)
            };
            CommWorld::over(transport, Arc::clone(&plan), retry.clone(), stats.clone())
        })
        .collect();

    let f = &f;
    let results: Vec<Option<R>> = std::thread::scope(|scope| {
        let handles: Vec<_> = worlds
            .drain(..)
            .map(|world| {
                if plan.is_crashed(world.rank) {
                    None // the rank never starts; dropping the world here
                         // closes its endpoint
                } else {
                    Some(scope.spawn(move || {
                        // Tag this worker's spans with its simulated rank
                        // (and untag before the thread returns to any pool).
                        lcc_obs::set_rank(Some(world.rank as u32));
                        lcc_obs::set_epoch(world.actor.view().epoch());
                        let r = f(world);
                        lcc_obs::set_rank(None);
                        lcc_obs::set_epoch(0);
                        r
                    }))
                }
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e))))
            .collect()
    });
    (results, stats)
}

/// Codec failure: a payload whose length is not a whole number of elements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError {
    /// Payload length in bytes.
    pub len: usize,
    /// Size of the element the decoder expected.
    pub elem_size: usize,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "payload of {} bytes is not a whole number of {}-byte elements",
            self.len, self.elem_size
        )
    }
}

impl std::error::Error for CodecError {}

/// Serializes f64 values little-endian.
pub fn encode_f64s(values: &[f64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 8);
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Deserializes f64 values little-endian, rejecting ragged payloads with a
/// typed error.
pub fn try_decode_f64s(bytes: &[u8]) -> Result<Vec<f64>, CodecError> {
    if !bytes.len().is_multiple_of(8) {
        return Err(CodecError {
            len: bytes.len(),
            elem_size: 8,
        });
    }
    Ok(bytes
        .chunks_exact(8)
        .map(|c| {
            let mut b = [0u8; 8];
            b.copy_from_slice(c);
            f64::from_le_bytes(b)
        })
        .collect())
}

/// Deserializes f64 values little-endian. Panics on ragged input; use
/// [`try_decode_f64s`] to handle that case as data.
pub fn decode_f64s(bytes: &[u8]) -> Vec<f64> {
    try_decode_f64s(bytes).unwrap_or_else(|e| panic!("payload is not a whole number of f64s: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn ring_pass() {
        let (results, stats) = run_cluster(4, |mut w| {
            let next = (w.rank() + 1) % w.size();
            let prev = (w.rank() + w.size() - 1) % w.size();
            w.send(next, vec![w.rank() as u8]).unwrap();
            let got = w.recv_from(prev).unwrap();
            got[0] as usize
        });
        assert_eq!(results, vec![3, 0, 1, 2]);
        assert_eq!(stats.message_count(), 4);
        assert_eq!(stats.bytes(), 4);
    }

    #[test]
    fn alltoall_delivers_by_source() {
        let (results, stats) = run_cluster(3, |mut w| {
            let outgoing: Vec<Vec<u8>> = (0..w.size())
                .map(|to| vec![(w.rank() * 10 + to) as u8])
                .collect();
            let incoming = w.alltoall(outgoing).unwrap();
            incoming.iter().map(|m| m[0] as usize).collect::<Vec<_>>()
        });
        // Rank r receives from each source s the byte s*10 + r.
        for (r, row) in results.iter().enumerate() {
            for (s, &v) in row.iter().enumerate() {
                assert_eq!(v, s * 10 + r);
            }
        }
        assert_eq!(stats.rounds(), 1);
        // 3 ranks × 2 remote peers × 1 byte
        assert_eq!(stats.bytes(), 6);
    }

    #[test]
    fn allgather_matches_manual() {
        let (results, _) = run_cluster(4, |mut w| {
            let all = w.allgather(vec![w.rank() as u8; 2]).unwrap();
            all.iter().map(|m| m[0]).collect::<Vec<_>>()
        });
        for row in results {
            assert_eq!(row, vec![0, 1, 2, 3]);
        }
    }

    #[test]
    fn out_of_order_sources_are_buffered() {
        let (results, _) = run_cluster(3, |mut w| {
            if w.rank() == 0 {
                // Receive in the order 2 then 1, regardless of arrival.
                w.barrier().unwrap();
                let a = w.recv_from(2).unwrap();
                let b = w.recv_from(1).unwrap();
                (a[0], b[0])
            } else {
                w.send(0, vec![w.rank() as u8]).unwrap();
                w.barrier().unwrap();
                (0, 0)
            }
        });
        assert_eq!(results[0], (2, 1));
    }

    #[test]
    fn self_messages_do_not_count() {
        let (_, stats) = run_cluster(1, |mut w| {
            let out = w.alltoall(vec![vec![1, 2, 3]]).unwrap();
            assert_eq!(out[0], vec![1, 2, 3]);
        });
        assert_eq!(stats.bytes(), 0);
        assert_eq!(stats.message_count(), 0);
    }

    #[test]
    fn f64_codec_roundtrip() {
        let v = vec![1.5, -2.25, std::f64::consts::PI, 0.0, f64::MIN_POSITIVE];
        assert_eq!(decode_f64s(&encode_f64s(&v)), v);
    }

    #[test]
    #[should_panic(expected = "whole number")]
    fn ragged_decode_panics() {
        decode_f64s(&[1, 2, 3]);
    }

    #[test]
    fn ragged_decode_is_a_typed_error() {
        let err = try_decode_f64s(&[0u8; 9]).unwrap_err();
        assert_eq!(
            err,
            CodecError {
                len: 9,
                elem_size: 8
            }
        );
        assert!(err.to_string().contains("9 bytes"));
        assert_eq!(
            try_decode_f64s(&encode_f64s(&[2.5, -1.0])).unwrap(),
            vec![2.5, -1.0]
        );
    }

    #[test]
    fn modeled_time_tracks_traffic() {
        use crate::model::AlphaBeta;
        let (_, stats) = run_cluster(4, |mut w| {
            let out = vec![vec![0u8; 1 << 20]; w.size()];
            w.alltoall(out).unwrap();
        });
        let ab = AlphaBeta::from_latency_bandwidth(1e-6, 1e9);
        let t = stats.modeled_time(&ab, 4);
        // Each rank sends 3 MiB remotely: ≈ 3·2^20 / 1e9 s plus latencies.
        let expect = 3.0 * (1 << 20) as f64 / 1e9 + 3.0 * 1e-6;
        assert!((t - expect).abs() / expect < 0.01, "t={t} expect={expect}");
    }

    #[test]
    fn invalid_rank_usage_is_loud() {
        // Misuse fails fast instead of corrupting the exchange.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_cluster(2, |mut w| {
                if w.rank() == 0 {
                    w.send(5, vec![1]).unwrap(); // destination out of range
                }
            });
        }));
        assert!(
            result.is_err(),
            "expected a panic from the invalid destination"
        );
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_cluster(2, |mut w| {
                // Wrong payload count for the collective.
                let _ = w.alltoall(vec![vec![0u8; 1]; 3]);
            });
        }));
        assert!(
            result.is_err(),
            "expected a panic from the ragged all-to-all"
        );
    }

    #[test]
    fn barrier_synchronizes() {
        let counter = Arc::new(AtomicUsize::new(0));
        let c = counter.clone();
        run_cluster(8, move |mut w| {
            c.fetch_add(1, Ordering::SeqCst);
            w.barrier().unwrap();
            // After the barrier every rank must see all increments.
            assert_eq!(c.load(Ordering::SeqCst), 8);
        });
    }

    // ---- fault-injection protocol tests ----

    type GatherRun = (Vec<Option<Vec<Vec<u8>>>>, Arc<CommStats>);

    /// The `distributed_lowcomm` exchange shape in miniature: every rank
    /// allgathers a payload derived from its rank.
    fn allgather_workload(drop: f64, seed: u64) -> GatherRun {
        let plan = FaultPlan::new(seed).with_drop(drop);
        run_cluster_with_faults(4, plan, RetryPolicy::default(), |mut w| {
            let payload: Vec<u8> = (0..64).map(|i| (w.rank() * 7 + i) as u8).collect();
            w.allgather(payload).unwrap()
        })
    }

    #[test]
    fn drops_are_recovered_bit_identically() {
        let (clean, clean_stats) = allgather_workload(0.0, 11);
        let (faulty, faulty_stats) = allgather_workload(0.3, 11);
        assert_eq!(clean, faulty, "retries must reconstruct the exact exchange");
        // Heavy drops must actually have exercised the retry machinery…
        assert!(
            faulty_stats.retransmit_count() > 0,
            "30% drop produced no retransmits"
        );
        // …without inflating the logical-traffic counters.
        assert_eq!(clean_stats.bytes(), faulty_stats.bytes());
        assert_eq!(clean_stats.message_count(), faulty_stats.message_count());
    }

    #[test]
    fn fault_counters_replay_exactly_from_the_seed() {
        let (r1, s1) = allgather_workload(0.25, 99);
        let (r2, s2) = allgather_workload(0.25, 99);
        assert_eq!(r1, r2);
        assert_eq!(s1.retransmit_count(), s2.retransmit_count());
        assert_eq!(s1.duplicate_count(), s2.duplicate_count());
        assert_eq!(s1.timeout_count(), s2.timeout_count());
    }

    #[test]
    fn duplicates_are_suppressed() {
        let plan = FaultPlan::new(5).with_duplicates(0.5);
        let (results, stats) = run_cluster_with_faults(3, plan, RetryPolicy::default(), |mut w| {
            let mut got = Vec::new();
            for round in 0..8u8 {
                let all = w.allgather(vec![w.rank() as u8, round]).unwrap();
                got.push(all);
            }
            got
        });
        // Every rank saw exactly one copy of every message, in order.
        let expect = results[0].clone().unwrap();
        for r in &results {
            assert_eq!(r.as_ref().unwrap(), &expect);
        }
        assert!(
            stats.duplicate_count() > 0,
            "50% duplication produced no duplicates"
        );
    }

    #[test]
    fn crashed_peers_fail_fast_and_survivors_degrade() {
        let plan = FaultPlan::new(3).with_crashed(2);
        let (results, _) = run_cluster_with_faults(4, plan, RetryPolicy::default(), |mut w| {
            // Direct traffic with the crashed rank is a typed error…
            assert!(matches!(
                w.send(2, vec![1]),
                Err(CommError::PeerCrashed { peer: 2, .. })
            ));
            assert!(matches!(
                w.recv_from(2),
                Err(CommError::PeerCrashed { peer: 2, .. })
            ));
            // …while the surviving collective completes around the hole.

            w.allgather_surviving(vec![w.rank() as u8]).unwrap()
        });
        assert!(
            results[2].is_none(),
            "crashed rank must not produce a result"
        );
        for (rank, r) in results.iter().enumerate() {
            if rank == 2 {
                continue;
            }
            let all = r.as_ref().unwrap();
            assert!(all[2].is_none());
            for live in [0, 1, 3] {
                assert_eq!(all[live].as_ref().unwrap(), &vec![live as u8]);
            }
        }
    }

    #[test]
    fn delay_perturbs_timing_but_not_results() {
        let plan = FaultPlan::new(17).with_delay(3);
        let (delayed, stats) = run_cluster_with_faults(4, plan, RetryPolicy::default(), |mut w| {
            w.allgather(vec![w.rank() as u8; 8]).unwrap()
        });
        let (clean, _) = run_cluster(4, |mut w| w.allgather(vec![w.rank() as u8; 8]).unwrap());
        for (d, c) in delayed.iter().zip(&clean) {
            assert_eq!(d.as_ref().unwrap(), c);
        }
        assert_eq!(stats.retransmit_count(), 0);
        assert_eq!(stats.duplicate_count(), 0);
    }

    #[test]
    fn recv_timeout_surfaces_instead_of_hanging() {
        let plan = FaultPlan::new(0).with_delay(1); // active plan, no drops
        let retry = RetryPolicy {
            recv_timeout: Duration::from_millis(50),
            ..RetryPolicy::default()
        };
        let (results, _) = run_cluster_with_faults(2, plan, retry, |mut w| {
            if w.rank() == 0 {
                // Nobody ever sends to rank 0: must time out, not hang.
                w.recv_from(1)
            } else {
                Ok(vec![])
            }
        });
        assert_eq!(
            results[0].clone().unwrap(),
            Err(CommError::Timeout {
                op: "recv_from",
                rank: 0,
                waiting_on: 1
            })
        );
    }

    #[test]
    fn retries_exhausted_is_reported() {
        // Certain loss: every attempt drops, so the send must give up.
        let plan = FaultPlan::new(1).with_drop(1.0);
        let retry = RetryPolicy {
            max_attempts: 4,
            ..RetryPolicy::default()
        };
        let (results, stats) = run_cluster_with_faults(2, plan, retry, |mut w| {
            if w.rank() == 0 {
                w.send(1, vec![9; 16])
            } else {
                Ok(())
            }
        });
        assert_eq!(
            results[0].clone().unwrap(),
            Err(CommError::RetriesExhausted {
                rank: 0,
                peer: 1,
                seq: 0,
                attempts: 4
            })
        );
        assert_eq!(stats.retransmit_count(), 4);
    }

    // ---- physical accounting & membership tests ----

    #[test]
    fn physical_counters_match_logical_without_faults() {
        let (_, stats) = run_cluster(4, |mut w| {
            w.allgather(vec![w.rank() as u8; 32]).unwrap();
        });
        assert_eq!(stats.physical_bytes(), stats.bytes());
        assert_eq!(stats.physical_message_count(), stats.message_count());
        assert_eq!(stats.ack_count(), 0, "no acks without an active plan");
        let ab = crate::model::AlphaBeta::hpc_default();
        assert_eq!(
            stats.modeled_time(&ab, 4),
            stats.modeled_time_physical(&ab, 4)
        );
    }

    #[test]
    fn drops_inflate_physical_but_not_logical_traffic() {
        let (_, faulty) = allgather_workload(0.3, 21);
        let (_, clean) = allgather_workload(0.0, 21);
        assert_eq!(clean.bytes(), faulty.bytes(), "logical volume is invariant");
        assert!(
            faulty.physical_bytes() > faulty.bytes(),
            "retransmitted frames must show up as wire cost"
        );
        assert!(faulty.ack_count() > 0, "delivered frames are acked");
        let ab = crate::model::AlphaBeta::hpc_default();
        assert!(faulty.modeled_time_physical(&ab, 4) > faulty.modeled_time(&ab, 4));
        // Physical traffic is as replayable as everything else.
        let (_, again) = allgather_workload(0.3, 21);
        assert_eq!(faulty.physical_bytes(), again.physical_bytes());
        assert_eq!(faulty.ack_count(), again.ack_count());
    }

    #[test]
    fn converged_allgather_survives_a_crash_under_a_common_epoch() {
        let plan = FaultPlan::new(7).with_crashed(1);
        let (results, _) = run_cluster_with_faults(4, plan, RetryPolicy::default(), |mut w| {
            let rank = w.rank();
            w.allgather_converged(|_| vec![rank as u8; 4]).unwrap()
        });
        assert!(results[1].is_none());
        for (rank, r) in results.iter().enumerate() {
            if rank == 1 {
                continue;
            }
            let (slots, epoch) = r.as_ref().unwrap();
            assert_eq!(*epoch, 1, "one detection sweep found the crash");
            assert!(slots[1].is_none(), "dead rank contributes nothing");
            for live in [0, 2, 3] {
                assert_eq!(slots[live].as_ref().unwrap(), &vec![live as u8; 4]);
            }
        }
    }

    #[test]
    fn converged_allgather_survives_a_mid_exchange_deserter() {
        // Rank 2 sends a *partial* epoch-0 exchange (lower ranks only) and
        // walks away without crashing: lower ranks see a seemingly complete
        // first exchange, higher ranks time out — the converged collective
        // must still land everyone on the same epoch-1 result.
        let plan = FaultPlan::new(13).with_deserter(2);
        let retry = RetryPolicy {
            ack_timeout: Duration::from_millis(400),
            recv_timeout: Duration::from_millis(400),
            ..RetryPolicy::default()
        };
        let (results, _) = run_cluster_with_faults(4, plan, retry, |mut w| {
            let rank = w.rank();
            if w.fault_plan().deserts(rank) {
                for to in 0..rank {
                    let _ = w.send_epoch(to, &[rank as u8; 4]);
                }
                return None;
            }
            Some(w.allgather_converged(|_| vec![rank as u8; 4]).unwrap())
        });
        for (rank, r) in results.iter().enumerate() {
            let r = r.as_ref().expect("deserters still return");
            if rank == 2 {
                assert!(r.is_none());
                continue;
            }
            let (slots, epoch) = r.as_ref().unwrap();
            assert_eq!(*epoch, 1, "rank {rank} converged on the wrong epoch");
            assert!(slots[2].is_none(), "deserter contributes nothing");
            for live in [0, 1, 3] {
                assert_eq!(slots[live].as_ref().unwrap(), &vec![live as u8; 4]);
            }
        }
    }

    #[test]
    fn converged_exchanges_chain_without_cross_talk() {
        // Two back-to-back converged exchanges with a crash: stale frames
        // from the aborted first attempt must never leak into the second
        // exchange's slots.
        let plan = FaultPlan::new(29).with_crashed(0);
        let (results, _) = run_cluster_with_faults(3, plan, RetryPolicy::default(), |mut w| {
            let rank = w.rank();
            let (first, e1) = w
                .allgather_converged(|_| vec![0xA0 | rank as u8; 3])
                .unwrap();
            let (second, e2) = w
                .allgather_converged(|_| vec![0xB0 | rank as u8; 3])
                .unwrap();
            assert_eq!(e1, e2, "no further deaths between the exchanges");
            (first, second)
        });
        for r in results.iter().skip(1) {
            let (first, second) = r.as_ref().unwrap();
            for live in [1, 2] {
                assert_eq!(first[live].as_ref().unwrap(), &vec![0xA0 | live as u8; 3]);
                assert_eq!(second[live].as_ref().unwrap(), &vec![0xB0 | live as u8; 3]);
            }
        }
    }
}
