//! A functional message-passing cluster simulator.
//!
//! P workers run as OS threads connected by crossbeam channels, exposing the
//! MPI-flavoured collectives the paper's pipelines need (all-to-all,
//! allgather, barrier). Every byte that crosses a channel is counted, so
//! experiments can report *measured* communication volumes and round counts
//! next to the analytic Eq. 1 / Eq. 6 estimates.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};

use crossbeam::channel::{unbounded, Receiver, Sender};

/// Shared instrumentation counters for one cluster run.
#[derive(Debug, Default)]
pub struct CommStats {
    /// Total payload bytes sent across all ranks (self-copies excluded).
    pub bytes_sent: AtomicU64,
    /// Total point-to-point messages (self-copies excluded).
    pub messages: AtomicU64,
    /// Number of collective rounds entered (counted once per collective,
    /// not per rank).
    pub collective_rounds: AtomicU64,
}

impl CommStats {
    /// Snapshot of total bytes sent.
    pub fn bytes(&self) -> u64 {
        self.bytes_sent.load(Ordering::Relaxed)
    }

    /// Snapshot of total messages.
    pub fn message_count(&self) -> u64 {
        self.messages.load(Ordering::Relaxed)
    }

    /// Snapshot of collective rounds.
    pub fn rounds(&self) -> u64 {
        self.collective_rounds.load(Ordering::Relaxed)
    }

    /// α-β modeled wall time of the recorded traffic on `p` ranks,
    /// assuming all ranks inject concurrently on dedicated links (the
    /// fully-connected assumption behind the paper's Eq. 1): every message
    /// pays α, and each rank's share of the volume pays β serially.
    pub fn modeled_time(&self, model: &crate::model::AlphaBeta, p: usize) -> f64 {
        let p = p.max(1) as f64;
        (self.message_count() as f64 / p) * model.alpha
            + (self.bytes() as f64 / p) * model.beta
    }
}

type Packet = (usize, Vec<u8>);

/// One rank's endpoint into the cluster.
pub struct CommWorld {
    rank: usize,
    size: usize,
    senders: Vec<Sender<Packet>>,
    receiver: Receiver<Packet>,
    /// Per-peer reorder buffers: messages that arrived ahead of the peer we
    /// are currently waiting on.
    inbox: Vec<VecDeque<Vec<u8>>>,
    barrier: Arc<Barrier>,
    stats: Arc<CommStats>,
}

impl CommWorld {
    /// This rank's id.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.size
    }

    /// The shared statistics handle.
    pub fn stats(&self) -> &Arc<CommStats> {
        &self.stats
    }

    /// Sends `payload` to `to` (point-to-point, FIFO per sender-receiver
    /// pair).
    pub fn send(&self, to: usize, payload: Vec<u8>) {
        assert!(to < self.size, "invalid destination rank {to}");
        if to != self.rank {
            self.stats.bytes_sent.fetch_add(payload.len() as u64, Ordering::Relaxed);
            self.stats.messages.fetch_add(1, Ordering::Relaxed);
        }
        self.senders[to].send((self.rank, payload)).expect("peer hung up");
    }

    /// Receives the next in-order message from `from`, buffering messages
    /// from other peers encountered while waiting.
    pub fn recv_from(&mut self, from: usize) -> Vec<u8> {
        assert!(from < self.size, "invalid source rank {from}");
        if let Some(m) = self.inbox[from].pop_front() {
            return m;
        }
        loop {
            let (src, payload) = self.receiver.recv().expect("cluster disbanded");
            if src == from {
                return payload;
            }
            self.inbox[src].push_back(payload);
        }
    }

    /// Synchronizes all ranks.
    pub fn barrier(&self) {
        self.barrier.wait();
    }

    /// All-to-all personalized exchange: `outgoing[i]` goes to rank `i`;
    /// returns `incoming[i]` from each rank `i` (including this rank's own
    /// self-message, delivered without touching the network counters).
    pub fn alltoall(&mut self, outgoing: Vec<Vec<u8>>) -> Vec<Vec<u8>> {
        assert_eq!(outgoing.len(), self.size, "need one payload per rank");
        if self.rank == 0 {
            self.stats.collective_rounds.fetch_add(1, Ordering::Relaxed);
        }
        for (to, payload) in outgoing.into_iter().enumerate() {
            self.send(to, payload);
        }
        (0..self.size).map(|from| self.recv_from(from)).collect()
    }

    /// Allgather: every rank contributes `payload`, every rank receives all
    /// contributions indexed by rank.
    pub fn allgather(&mut self, payload: Vec<u8>) -> Vec<Vec<u8>> {
        let outgoing = vec![payload; self.size];
        self.alltoall(outgoing)
    }
}

/// Gate ensuring one simulated cluster runs at a time per process.
///
/// Rank closures routinely mix blocking channel receives with rayon
/// data-parallel regions; two clusters interleaving on a small shared
/// rayon pool can starve each other (observed as a deadlock on single-core
/// hosts when the test harness runs cluster tests concurrently).
/// Serializing whole cluster runs removes the interaction without
/// constraining anything the simulator is for.
static CLUSTER_GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Runs `f` on `p` ranks, each on its own thread, returning the per-rank
/// results (in rank order) and the aggregated statistics.
///
/// Process-wide, cluster runs are serialized (see `CLUSTER_GATE`).
pub fn run_cluster<R, F>(p: usize, f: F) -> (Vec<R>, Arc<CommStats>)
where
    R: Send,
    F: Fn(CommWorld) -> R + Send + Sync,
{
    assert!(p >= 1, "need at least one rank");
    let _gate = CLUSTER_GATE.lock().unwrap_or_else(|e| e.into_inner());
    let stats = Arc::new(CommStats::default());
    let barrier = Arc::new(Barrier::new(p));
    let mut senders = Vec::with_capacity(p);
    let mut receivers = Vec::with_capacity(p);
    for _ in 0..p {
        let (s, r) = unbounded::<Packet>();
        senders.push(s);
        receivers.push(r);
    }
    let mut worlds: Vec<CommWorld> = receivers
        .into_iter()
        .enumerate()
        .map(|(rank, receiver)| CommWorld {
            rank,
            size: p,
            senders: senders.clone(),
            receiver,
            inbox: (0..p).map(|_| VecDeque::new()).collect(),
            barrier: barrier.clone(),
            stats: stats.clone(),
        })
        .collect();
    drop(senders);

    let f = &f;
    let results: Vec<R> = std::thread::scope(|scope| {
        let handles: Vec<_> = worlds
            .drain(..)
            .map(|world| scope.spawn(move || f(world)))
            .collect();
        handles.into_iter().map(|h| h.join().expect("rank panicked")).collect()
    });
    (results, stats)
}

/// Serializes f64 values little-endian.
pub fn encode_f64s(values: &[f64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 8);
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Deserializes f64 values little-endian. Panics on ragged input.
pub fn decode_f64s(bytes: &[u8]) -> Vec<f64> {
    assert_eq!(bytes.len() % 8, 0, "payload is not a whole number of f64s");
    bytes
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_pass() {
        let (results, stats) = run_cluster(4, |mut w| {
            let next = (w.rank() + 1) % w.size();
            let prev = (w.rank() + w.size() - 1) % w.size();
            w.send(next, vec![w.rank() as u8]);
            let got = w.recv_from(prev);
            got[0] as usize
        });
        assert_eq!(results, vec![3, 0, 1, 2]);
        assert_eq!(stats.message_count(), 4);
        assert_eq!(stats.bytes(), 4);
    }

    #[test]
    fn alltoall_delivers_by_source() {
        let (results, stats) = run_cluster(3, |mut w| {
            let outgoing: Vec<Vec<u8>> = (0..w.size())
                .map(|to| vec![(w.rank() * 10 + to) as u8])
                .collect();
            let incoming = w.alltoall(outgoing);
            incoming.iter().map(|m| m[0] as usize).collect::<Vec<_>>()
        });
        // Rank r receives from each source s the byte s*10 + r.
        for (r, row) in results.iter().enumerate() {
            for (s, &v) in row.iter().enumerate() {
                assert_eq!(v, s * 10 + r);
            }
        }
        assert_eq!(stats.rounds(), 1);
        // 3 ranks × 2 remote peers × 1 byte
        assert_eq!(stats.bytes(), 6);
    }

    #[test]
    fn allgather_matches_manual() {
        let (results, _) = run_cluster(4, |mut w| {
            let all = w.allgather(vec![w.rank() as u8; 2]);
            all.iter().map(|m| m[0]).collect::<Vec<_>>()
        });
        for row in results {
            assert_eq!(row, vec![0, 1, 2, 3]);
        }
    }

    #[test]
    fn out_of_order_sources_are_buffered() {
        let (results, _) = run_cluster(3, |mut w| {
            if w.rank() == 0 {
                // Receive in the order 2 then 1, regardless of arrival.
                w.barrier();
                let a = w.recv_from(2);
                let b = w.recv_from(1);
                (a[0], b[0])
            } else {
                w.send(0, vec![w.rank() as u8]);
                w.barrier();
                (0, 0)
            }
        });
        assert_eq!(results[0], (2, 1));
    }

    #[test]
    fn self_messages_do_not_count() {
        let (_, stats) = run_cluster(1, |mut w| {
            let out = w.alltoall(vec![vec![1, 2, 3]]);
            assert_eq!(out[0], vec![1, 2, 3]);
        });
        assert_eq!(stats.bytes(), 0);
        assert_eq!(stats.message_count(), 0);
    }

    #[test]
    fn f64_codec_roundtrip() {
        let v = vec![1.5, -2.25, std::f64::consts::PI, 0.0, f64::MIN_POSITIVE];
        assert_eq!(decode_f64s(&encode_f64s(&v)), v);
    }

    #[test]
    #[should_panic(expected = "whole number")]
    fn ragged_decode_panics() {
        decode_f64s(&[1, 2, 3]);
    }

    #[test]
    fn modeled_time_tracks_traffic() {
        use crate::model::AlphaBeta;
        let (_, stats) = run_cluster(4, |mut w| {
            let out = vec![vec![0u8; 1 << 20]; w.size()];
            w.alltoall(out);
        });
        let ab = AlphaBeta::from_latency_bandwidth(1e-6, 1e9);
        let t = stats.modeled_time(&ab, 4);
        // Each rank sends 3 MiB remotely: ≈ 3·2^20 / 1e9 s plus latencies.
        let expect = 3.0 * (1 << 20) as f64 / 1e9 + 3.0 * 1e-6;
        assert!((t - expect).abs() / expect < 0.01, "t={t} expect={expect}");
    }

    #[test]
    fn invalid_rank_usage_is_loud() {
        // Misuse fails fast instead of corrupting the exchange.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_cluster(2, |w| {
                if w.rank() == 0 {
                    w.send(5, vec![1]); // destination out of range
                }
            });
        }));
        assert!(result.is_err(), "expected a panic from the invalid destination");
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_cluster(2, |mut w| {
                // Wrong payload count for the collective.
                let _ = w.alltoall(vec![vec![0u8; 1]; 3]);
            });
        }));
        assert!(result.is_err(), "expected a panic from the ragged all-to-all");
    }

    #[test]
    fn barrier_synchronizes() {
        use std::sync::atomic::AtomicUsize;
        let counter = Arc::new(AtomicUsize::new(0));
        let c = counter.clone();
        run_cluster(8, move |w| {
            c.fetch_add(1, Ordering::SeqCst);
            w.barrier();
            // After the barrier every rank must see all increments.
            assert_eq!(c.load(Ordering::SeqCst), 8);
        });
    }
}
