//! Pencil-decomposed distributed 3D FFT — the three-all-to-all baseline.
//!
//! The paper: 3D FFTs "require all parallel workers to exchange data two or
//! three times". Slab decomposition (P ≤ N) costs two transposes; the
//! *pencil* decomposition scales to P = pr·pc ≤ N² ranks by giving each
//! rank a 1D pencil bundle and transposing along rows/columns of a 2D
//! process grid — three transposes per 3D FFT. This is the decomposition
//! P3DFFT-style libraries use, and it is the high-P regime where Eq. 1's
//! communication wall actually bites.
//!
//! Layout convention (row-major, axis 2 contiguous):
//! * phase 0: rank (r, c) owns `x ∈ Xr, y ∈ Yc`, all z  → transform z
//! * phase 1: after a **row** exchange, owns `x ∈ Xr, z ∈ Zc`, all y
//!   (layout `(cx, cz, n)` indexed (x_loc, z_loc, y)) → transform y
//! * phase 2: after a **column** exchange, owns `y ∈ Yr', z ∈ Zc`, all x
//!   (layout `(cy, cz, n)` indexed (y_loc, z_loc, x)) → transform x
//!
//! The inverse walks back through the same exchanges, for a total of three
//! all-to-alls forward (two sub-communicator exchanges here; the canonical
//! count of "three" includes the final redistribution to the original
//! layout, which [`pencil_inverse_3d`] performs).
//!
//! Everything here is written against [`CommWorld`] collectives, i.e.
//! *above* the [`crate::transport::Transport`] seam — the pencil pipeline
//! runs unchanged whether the ranks are simulator threads or real
//! processes on the socket backend, and its traffic lands in the same
//! nine `CommStats` counters either way.

use lcc_fft::{fft_axis, scale_in_place, Complex64, FftDirection, FftPlanner};

use crate::cluster::CommWorld;
use crate::dist_fft::{encode_complex, try_decode_complex};
use crate::fault::CommError;

/// 2D process-grid coordinates of `rank` in a `pr × pc` grid
/// (row-major: `rank = r·pc + c`).
pub fn grid_coords(rank: usize, pc: usize) -> (usize, usize) {
    (rank / pc, rank % pc)
}

/// Exchange within a subset of ranks (a row or column of the process
/// grid): `peers` lists the global ranks of the sub-communicator in order;
/// `outgoing[i]` goes to `peers[i]`. Returns payloads indexed like `peers`.
///
/// Implemented over the global all-to-all primitive with empty payloads for
/// non-peers, so it still counts as one collective round.
pub fn sub_alltoall(
    world: &mut CommWorld,
    peers: &[usize],
    outgoing: Vec<Vec<u8>>,
) -> Result<Vec<Vec<u8>>, CommError> {
    assert_eq!(peers.len(), outgoing.len());
    let mut global = vec![Vec::new(); world.size()];
    for (p, payload) in peers.iter().zip(outgoing) {
        global[*p] = payload;
    }
    let incoming = world.alltoall(global)?;
    Ok(peers.iter().map(|&p| incoming[p].clone()).collect())
}

/// One pencil-transpose: the caller owns blocks `(a_loc ∈ [0, ca), b, z…)`
/// where axis `b` (full length n) is to be distributed among `peers`
/// (each taking `n / peers.len()`), receiving the peers' `a` blocks in
/// exchange so axis `a` becomes full. Works on dims `(ca, n, w)` indexed
/// `(a_loc, b, t)` with `w` the untouched trailing extent; returns dims
/// `(cb, n, w)` indexed `(b_loc, a, t)`.
fn pencil_exchange(
    world: &mut CommWorld,
    peers: &[usize],
    my_index: usize,
    data: &[Complex64],
    ca: usize,
    n: usize,
    w: usize,
) -> Result<Vec<Complex64>, CommError> {
    let q = peers.len();
    let cb = n / q;
    assert_eq!(data.len(), ca * n * w, "pencil block shape mismatch");
    let outgoing: Vec<Vec<u8>> = (0..q)
        .map(|d| {
            let mut block = Vec::with_capacity(ca * cb * w);
            for a_loc in 0..ca {
                for b_loc in 0..cb {
                    let b = d * cb + b_loc;
                    let base = (a_loc * n + b) * w;
                    block.extend_from_slice(&data[base..base + w]);
                }
            }
            encode_complex(&block)
        })
        .collect();
    let incoming = sub_alltoall(world, peers, outgoing)?;
    let ca_total = ca * q; // = full length of axis a
    let mut out = vec![Complex64::ZERO; cb * ca_total * w];
    for (s, payload) in incoming.iter().enumerate() {
        // A malformed block crossed a (simulated) wire: typed error, not a
        // panic, so the caller can trigger recovery.
        let block = try_decode_complex(payload).map_err(|e| CommError::Decode {
            rank: world.rank(),
            peer: peers[s],
            len: e.len,
            elem_size: e.elem_size,
        })?;
        if block.len() != ca * cb * w {
            return Err(CommError::Decode {
                rank: world.rank(),
                peer: peers[s],
                len: payload.len(),
                elem_size: 16,
            });
        }
        for a_loc in 0..ca {
            let a = s * ca + a_loc;
            for b_loc in 0..cb {
                let src = (a_loc * cb + b_loc) * w;
                let dst = (b_loc * ca_total + a) * w;
                out[dst..dst + w].copy_from_slice(&block[src..src + w]);
            }
        }
    }
    let _ = my_index;
    Ok(out)
}

/// Ranks of this rank's process-grid row (sharing `r`, varying `c`).
fn row_peers(r: usize, pc: usize) -> Vec<usize> {
    (0..pc).map(|c| r * pc + c).collect()
}

/// Ranks of this rank's process-grid column (sharing `c`, varying `r`).
fn col_peers(c: usize, pr: usize, pc: usize) -> Vec<usize> {
    (0..pr).map(|r| r * pc + c).collect()
}

/// Distributed forward 3D FFT under pencil decomposition.
///
/// Input: rank (r, c) of the `pr × pc` grid holds the block
/// `x ∈ [r·n/pr, …), y ∈ [c·n/pc, …), all z` — dims `(n/pr, n/pc, n)`
/// indexed `(x_loc, y_loc, z)`. Output: the transposed spectrum — rank
/// (r, c) holds `fy ∈ [r·n/pr, …), fz ∈ [c·n/pc, …), all fx`, dims
/// `(n/pr, n/pc, n)` indexed `(fy_loc, fz_loc, fx)`. Costs two all-to-alls.
pub fn pencil_forward_3d(
    world: &mut CommWorld,
    planner: &FftPlanner,
    block: Vec<Complex64>,
    n: usize,
    pr: usize,
    pc: usize,
) -> Result<Vec<Complex64>, CommError> {
    assert_eq!(world.size(), pr * pc, "process grid must cover the cluster");
    assert_eq!(n % pr, 0, "pr must divide n");
    assert_eq!(n % pc, 0, "pc must divide n");
    let (r, c) = grid_coords(world.rank(), pc);
    let (cx, cy) = (n / pr, n / pc);
    let _fwd = lcc_obs::span("pencil_forward_3d");

    // Phase 0: transform z (contiguous), dims (cx, cy, n).
    let mut data = block;
    let ph = lcc_obs::span("pencil_fwd_z");
    fft_axis(planner, &mut data, (cx, cy, n), 2, FftDirection::Forward);
    drop(ph);

    // Row exchange: distribute z among the row, gather full y.
    // Current layout (x_loc, y_loc, z): reinterpret as (a=y_loc, b=z, w=1)
    // bundles per x_loc. We flatten x into the trailing dimension by
    // first permuting to (y_loc, z, cx)… simpler: handle each x_loc slab
    // separately is wasteful; instead reshape: treat (a_loc = y_loc,
    // b = z, w = 1) with an outer x loop folded into w by transposing the
    // local block to (y_loc, z, x_loc).
    let mut perm = vec![Complex64::ZERO; cx * cy * n];
    for x in 0..cx {
        for y in 0..cy {
            for z in 0..n {
                perm[(y * n + z) * cx + x] = data[(x * cy + y) * n + z];
            }
        }
    }
    // perm dims: (cy, n, cx) indexed (y_loc, z, x_loc).
    let peers = row_peers(r, pc);
    let ph = lcc_obs::span("pencil_row_exchange");
    let exchanged = pencil_exchange(world, &peers, c, &perm, cy, n, cx)?;
    drop(ph);
    // exchanged dims: (cz = n/pc, n, cx) indexed (z_loc, y, x_loc).
    let cz = n / pc;
    let mut data = exchanged;
    // Transform y: dims (cz, n, cx), axis 1.
    let ph = lcc_obs::span("pencil_fwd_y");
    fft_axis(planner, &mut data, (cz, n, cx), 1, FftDirection::Forward);
    drop(ph);

    // Column exchange: distribute y among the column, gather full x.
    // Current (z_loc, fy, x_loc) → need (a_loc = fy-chunk…): reshape to
    // (fy, x_loc-major?) — permute to (fy_loc-candidate…) We expose
    // (a = fy, w = cx) per z_loc by permuting to (fy, z_loc·cx) trailing.
    let mut perm = vec![Complex64::ZERO; cz * n * cx];
    for z in 0..cz {
        for y in 0..n {
            for x in 0..cx {
                perm[(y * cz + z) * cx + x] = data[(z * n + y) * cx + x];
            }
        }
    }
    // perm dims: (n, cz, cx) — a (=fy) is axis 0 of length n, but
    // pencil_exchange wants the *local* a extent first. Here the full fy
    // axis is local (length n) and we distribute it among the column peers
    // while gathering x. Reinterpret as (a_loc extent = n) with q peers
    // each taking n/pr of b = x? No — b must be the axis we currently hold
    // fully *distributed*… x is distributed (cx per rank) and we hold fy
    // fully. The exchange sends fy chunks and receives x chunks:
    // treat a = fy (ca = n/pr per peer after split), b = x.
    let peers = col_peers(c, pr, pc);
    let ph = lcc_obs::span("pencil_col_exchange");
    let q = peers.len();
    let cyr = n / pr; // fy chunk per column peer
    let outgoing: Vec<Vec<u8>> = (0..q)
        .map(|d| {
            // Peer d gets fy ∈ [d·cyr, (d+1)·cyr), all our (z_loc, x_loc).
            let mut blockb = Vec::with_capacity(cyr * cz * cx);
            for yl in 0..cyr {
                let y = d * cyr + yl;
                let base = y * cz * cx;
                blockb.extend_from_slice(&perm[base..base + cz * cx]);
            }
            encode_complex(&blockb)
        })
        .collect();
    let incoming = sub_alltoall(world, &peers, outgoing)?;
    // Assemble: from column peer s we get fy ∈ our chunk, x ∈ s's chunk,
    // z ∈ our cz. Output dims (cyr, cz, n) indexed (fy_loc, z_loc, fx).
    let mut out = vec![Complex64::ZERO; cyr * cz * n];
    for (s, payload) in incoming.iter().enumerate() {
        let blockb = try_decode_complex(payload).map_err(|e| CommError::Decode {
            rank: world.rank(),
            peer: peers[s],
            len: e.len,
            elem_size: e.elem_size,
        })?;
        if blockb.len() != cyr * cz * cx {
            return Err(CommError::Decode {
                rank: world.rank(),
                peer: peers[s],
                len: payload.len(),
                elem_size: 16,
            });
        }
        for yl in 0..cyr {
            for z in 0..cz {
                for xl in 0..cx {
                    let fx = s * cx + xl;
                    out[(yl * cz + z) * n + fx] = blockb[(yl * cz + z) * cx + xl];
                }
            }
        }
    }
    drop(ph);
    // Transform x: dims (cyr, cz, n), axis 2 (contiguous).
    let ph = lcc_obs::span("pencil_fwd_x");
    fft_axis(planner, &mut out, (cyr, cz, n), 2, FftDirection::Forward);
    drop(ph);
    Ok(out)
}

/// Inverse of [`pencil_forward_3d`] (normalized), returning data in the
/// original `(x_loc, y_loc, z)` block layout. Costs two all-to-alls, plus
/// this pair's layout restoration is exact — a full convolution round trip
/// is 4 exchanges, vs 2 with slabs, matching the "two or three" per FFT.
pub fn pencil_inverse_3d(
    world: &mut CommWorld,
    planner: &FftPlanner,
    spectrum: Vec<Complex64>,
    n: usize,
    pr: usize,
    pc: usize,
) -> Result<Vec<Complex64>, CommError> {
    let (r, c) = grid_coords(world.rank(), pc);
    let (cx, cy) = (n / pr, n / pc);
    let (cyr, cz) = (n / pr, n / pc);
    let _inv = lcc_obs::span("pencil_inverse_3d");

    // Undo phase 2: inverse x transform, then column exchange back.
    let mut data = spectrum;
    let ph = lcc_obs::span("pencil_inv_x");
    fft_axis(planner, &mut data, (cyr, cz, n), 2, FftDirection::Inverse);
    drop(ph);
    let ph = lcc_obs::span("pencil_col_exchange");
    let peers = col_peers(c, pr, pc);
    let outgoing: Vec<Vec<u8>> = (0..peers.len())
        .map(|d| {
            // Peer d gets fx ∈ its x chunk, all our (fy_loc, z_loc).
            let mut blockb = Vec::with_capacity(cyr * cz * cx);
            for yl in 0..cyr {
                for z in 0..cz {
                    let base = (yl * cz + z) * n + d * cx;
                    blockb.extend_from_slice(&data[base..base + cx]);
                }
            }
            encode_complex(&blockb)
        })
        .collect();
    let incoming = sub_alltoall(world, &peers, outgoing)?;
    // Rebuild (fy full, z_loc, x_loc): from peer s, fy ∈ s's chunk.
    let mut perm = vec![Complex64::ZERO; n * cz * cx];
    for (s, payload) in incoming.iter().enumerate() {
        let blockb = try_decode_complex(payload).map_err(|e| CommError::Decode {
            rank: world.rank(),
            peer: peers[s],
            len: e.len,
            elem_size: e.elem_size,
        })?;
        if blockb.len() != cyr * cz * cx {
            return Err(CommError::Decode {
                rank: world.rank(),
                peer: peers[s],
                len: payload.len(),
                elem_size: 16,
            });
        }
        for yl in 0..cyr {
            let y = s * cyr + yl;
            for z in 0..cz {
                for x in 0..cx {
                    perm[(y * cz + z) * cx + x] = blockb[(yl * cz + z) * cx + x];
                }
            }
        }
    }
    drop(ph);
    // Back to (z_loc, fy, x_loc), inverse y transform.
    let mut data = vec![Complex64::ZERO; cz * n * cx];
    for z in 0..cz {
        for y in 0..n {
            for x in 0..cx {
                data[(z * n + y) * cx + x] = perm[(y * cz + z) * cx + x];
            }
        }
    }
    let ph = lcc_obs::span("pencil_inv_y");
    fft_axis(planner, &mut data, (cz, n, cx), 1, FftDirection::Inverse);
    drop(ph);

    // Undo phase 1: row exchange back (z ↔ y), to (y_loc, z full, x_loc).
    let peers = row_peers(r, pc);
    let ph = lcc_obs::span("pencil_row_exchange");
    let back = pencil_exchange(world, &peers, c, &data, cz, n, cx)?;
    drop(ph);
    // back dims: (cy, n, cx) indexed (y_loc, z, x_loc).
    // Restore (x_loc, y_loc, z) and inverse z transform.
    let mut out = vec![Complex64::ZERO; cx * cy * n];
    for y in 0..cy {
        for z in 0..n {
            for x in 0..cx {
                out[(x * cy + y) * n + z] = back[(y * n + z) * cx + x];
            }
        }
    }
    let ph = lcc_obs::span("pencil_inv_z");
    fft_axis(planner, &mut out, (cx, cy, n), 2, FftDirection::Inverse);
    scale_in_place(&mut out, 1.0 / (n as f64).powi(3));
    drop(ph);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::run_cluster;
    use lcc_fft::{c64, fft_3d};

    fn field(n: usize) -> Vec<Complex64> {
        (0..n * n * n)
            .map(|i| c64((i as f64 * 0.17).sin(), (i as f64 * 0.11).cos()))
            .collect()
    }

    fn scatter_blocks(f: &[Complex64], n: usize, pr: usize, pc: usize) -> Vec<Vec<Complex64>> {
        let (cx, cy) = (n / pr, n / pc);
        (0..pr * pc)
            .map(|rank| {
                let (r, c) = grid_coords(rank, pc);
                let mut block = Vec::with_capacity(cx * cy * n);
                for x in r * cx..(r + 1) * cx {
                    for y in c * cy..(c + 1) * cy {
                        let base = (x * n + y) * n;
                        block.extend_from_slice(&f[base..base + n]);
                    }
                }
                block
            })
            .collect()
    }

    #[test]
    fn pencil_forward_matches_serial() {
        let n = 8;
        for (pr, pc) in [(2usize, 2usize), (2, 4), (4, 2)] {
            let f = field(n);
            let planner = FftPlanner::new();
            let mut serial = f.clone();
            fft_3d(&planner, &mut serial, (n, n, n), FftDirection::Forward);
            let blocks = scatter_blocks(&f, n, pr, pc);
            let (outs, stats) = run_cluster(pr * pc, |mut w| {
                let planner = FftPlanner::new();
                let mine = blocks[w.rank()].clone();
                pencil_forward_3d(&mut w, &planner, mine, n, pr, pc).unwrap()
            });
            assert_eq!(stats.rounds(), 2, "pencil forward = two exchanges");
            let (cyr, cz) = (n / pr, n / pc);
            for (rank, out) in outs.iter().enumerate() {
                let (r, c) = grid_coords(rank, pc);
                for yl in 0..cyr {
                    let fy = r * cyr + yl;
                    for zl in 0..cz {
                        let fz = c * cz + zl;
                        for fx in 0..n {
                            let got = out[(yl * cz + zl) * n + fx];
                            let want = serial[(fx * n + fy) * n + fz];
                            assert!(
                                (got - want).norm() < 1e-8,
                                "pr={pr} pc={pc} bin ({fx},{fy},{fz})"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn pencil_roundtrip() {
        let n = 8;
        let (pr, pc) = (2usize, 2usize);
        let f = field(n);
        let blocks = scatter_blocks(&f, n, pr, pc);
        let (outs, stats) = run_cluster(pr * pc, |mut w| {
            let planner = FftPlanner::new();
            let mine = blocks[w.rank()].clone();
            let spec = pencil_forward_3d(&mut w, &planner, mine, n, pr, pc).unwrap();
            pencil_inverse_3d(&mut w, &planner, spec, n, pr, pc).unwrap()
        });
        assert_eq!(stats.rounds(), 4, "round trip = four exchanges");
        for (rank, out) in outs.iter().enumerate() {
            for (a, b) in out.iter().zip(&blocks[rank]) {
                assert!((*a - *b).norm() < 1e-9, "rank {rank}");
            }
        }
    }

    #[test]
    fn pencil_moves_more_rounds_than_slab() {
        // The communication-wall comparison the paper leans on: pencil
        // decomposition admits more ranks but costs more exchange rounds
        // per FFT than slabs (2 vs 1 here per direction).
        let n = 8;
        let f = field(n);
        let blocks = scatter_blocks(&f, n, 2, 2);
        let (_, pencil_stats) = run_cluster(4, |mut w| {
            let planner = FftPlanner::new();
            let mine = blocks[w.rank()].clone();
            pencil_forward_3d(&mut w, &planner, mine, n, 2, 2).unwrap()
        });
        let slabs = crate::dist_fft::scatter_slabs(&f, n, 4);
        let (_, slab_stats) = run_cluster(4, |mut w| {
            let planner = FftPlanner::new();
            let mine = slabs[w.rank()].clone();
            crate::dist_fft::forward_3d(&mut w, &planner, mine, n).unwrap()
        });
        assert!(pencil_stats.rounds() > slab_stats.rounds());
    }
}
