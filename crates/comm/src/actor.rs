//! The pure protocol kernel (`ProtocolActor`) behind
//! [`crate::cluster::CommWorld`].
//!
//! Every *decision* the epoch/ack/retry/membership protocol makes lives
//! here as a clock-free, thread-free, I/O-free transition function:
//! send-fate planning, receiver-side dedup and ack indexing, epoch-frame
//! disposition, suspicion bookkeeping, membership sweeps, the resumable
//! converged-exchange state machine, and the end-of-run drain gate.
//! [`CommWorld`](crate::cluster::CommWorld) calls these kernels and owns
//! only the wire work around them (transmitting frames, blocking waits,
//! counter updates); the model checker in `crates/check` drives the same
//! kernels through [`ProtocolActor::step`] and explores every interleaving
//! the real runtime never samples. Because both consumers share this one
//! module, there is no forked protocol logic to drift.
//!
//! The purity requirement is machine-enforced: lcc-lint's
//! `no-blocking-in-step` rule bans sleeping, locking, and I/O tokens from
//! this module, so the seam cannot silently rot back into wall-clock code.

use std::collections::BTreeSet;

use crate::fault::{FaultPlan, RetryPolicy};
use crate::membership::ClusterView;

/// The precomputed outcome of one reliable send: how many attempts the
/// sender will transmit, how many retransmissions and real protocol
/// timeouts that implies, and whether any ack finally survives. A pure
/// function of the fault plan's keyed hashes — both endpoints can evaluate
/// it, which is why the sender never burns a wall-clock timeout on a frame
/// it knows was lost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SendPlan {
    /// Data-frame attempts the sender transmits (at least 1).
    pub attempts: u32,
    /// Retransmissions forced by the plan (`attempts - 1` when the send
    /// eventually succeeds, `attempts` when it gives up... see the loop).
    pub retransmits: u64,
    /// Attempts whose data arrived but whose every ack was dropped: these
    /// end in a genuine protocol timeout before the retry.
    pub timeouts: u64,
    /// Whether any attempt's ack survives; `false` means the send exhausts
    /// its retries.
    pub acked: bool,
}

/// Plans the reliable send of `(src → dst, seq)` under `plan`: the exact
/// fate loop both the real sender and the checker agree on. Mirrors the
/// receiver's delivered-frame enumeration (`k`) so ack-drop rolls line up
/// with the acks the receiver will actually emit.
pub fn plan_send(
    plan: &FaultPlan,
    retry: &RetryPolicy,
    src: usize,
    dst: usize,
    seq: u64,
) -> SendPlan {
    let mut k = 0u64; // delivered-frame index, shared with the receiver
    let mut acked = false;
    let mut attempts = 0u32;
    let (mut retransmits, mut timeouts) = (0u64, 0u64);
    while attempts < retry.max_attempts {
        let a = attempts;
        attempts += 1;
        let delivered = !plan.drops_data(src, dst, seq, a);
        let mut ack_survives = false;
        if delivered {
            let copies = if plan.duplicates_data(src, dst, seq, a) {
                2
            } else {
                1
            };
            for _ in 0..copies {
                ack_survives |= !plan.drops_ack(src, dst, seq, k);
                k += 1;
            }
        }
        if ack_survives {
            acked = true;
            break;
        }
        if delivered {
            // Data arrived but no ack will: this attempt ends in a real
            // protocol timeout before the retry.
            timeouts += 1;
        }
        retransmits += 1;
    }
    SendPlan {
        attempts,
        retransmits,
        timeouts,
        acked,
    }
}

/// Physical copies of attempt `a` of `(src → dst, seq)` that hit the wire:
/// a dropped frame still left the sender's NIC (one copy), a duplicated
/// one cost two.
pub fn attempt_copies(plan: &FaultPlan, src: usize, dst: usize, seq: u64, attempt: u32) -> u32 {
    if plan.drops_data(src, dst, seq, attempt) {
        1 // transmitted, then lost in flight
    } else if plan.duplicates_data(src, dst, seq, attempt) {
        2
    } else {
        1
    }
}

/// What the receiver does with an arriving data frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataDisposition {
    /// A retransmission of something already delivered: suppress it, but
    /// still ack with index `ack_k` (the sender may be waiting on exactly
    /// this ack).
    Duplicate { ack_k: u64 },
    /// A new in-order message: deliver it and ack with index `ack_k`.
    Deliver { ack_k: u64 },
}

impl DataDisposition {
    /// The ack index this disposition emits.
    pub fn ack_k(&self) -> u64 {
        match *self {
            DataDisposition::Duplicate { ack_k } | DataDisposition::Deliver { ack_k } => ack_k,
        }
    }
}

/// Where an epoch-stamped frame stands relative to the local view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EpochDisposition {
    /// Leftover from an exchange attempt aborted pre-detection: discard.
    Stale,
    /// From a newer epoch: this rank missed a detection sweep. The frame
    /// is not ours to consume yet; surface `EpochMismatch` and let the
    /// caller sweep.
    Ahead,
    /// Matches the local epoch: consume it.
    Current,
}

/// What one membership sweep concluded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SweepOutcome {
    /// Whether the view (and therefore the epoch) advanced.
    pub changed: bool,
    /// Ranks newly demoted by this sweep.
    pub newly_dead: u64,
    /// The epoch after the sweep.
    pub epoch: u64,
}

/// One rank's protocol-visible state: everything the decision kernels read
/// or write, and nothing the wire needs. [`CommWorld`](crate::cluster::CommWorld)
/// embeds exactly one of these; the checker holds one per modeled rank.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ActorState {
    rank: usize,
    size: usize,
    /// Next sequence number per destination.
    next_seq: Vec<u64>,
    /// Next expected sequence number per source (receiver-side dedup).
    next_expected: Vec<u64>,
    /// Ack index per source for the in-flight sequence, mirroring the
    /// sender's enumeration of delivered frames.
    ack_idx: Vec<u64>,
    /// This rank's epoch-stamped membership belief.
    view: ClusterView,
    /// Peers implicated by typed failures since the last sweep. Suspicion
    /// accelerates detection but is never trusted directly.
    suspected: BTreeSet<usize>,
    /// Set when this rank's own death was simulated at a protocol point.
    killed: bool,
}

impl ActorState {
    /// A fresh actor for `rank` in a `size`-rank cluster: optimistic view,
    /// all sequence spaces at zero.
    pub fn new(rank: usize, size: usize) -> ActorState {
        ActorState {
            rank,
            size,
            next_seq: vec![0; size],
            next_expected: vec![0; size],
            ack_idx: vec![0; size],
            view: ClusterView::all_alive(size),
            suspected: BTreeSet::new(),
            killed: false,
        }
    }

    /// This actor's rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Total rank count.
    pub fn size(&self) -> usize {
        self.size
    }

    /// This rank's current membership belief.
    pub fn view(&self) -> &ClusterView {
        &self.view
    }

    /// Whether this rank's own death was simulated at a protocol point.
    pub fn is_killed(&self) -> bool {
        self.killed
    }

    /// Next sequence number this actor would allocate toward `to`.
    pub fn next_seq(&self, to: usize) -> u64 {
        self.next_seq[to]
    }

    /// Allocates the sequence number for a new logical send to `to`.
    pub fn alloc_seq(&mut self, to: usize) -> u64 {
        let seq = self.next_seq[to];
        self.next_seq[to] += 1;
        seq
    }

    /// Receiver-side protocol decision for a data frame `(src, seq)`:
    /// deliver in-order frames, suppress retransmitted duplicates, and in
    /// both cases hand back the ack index `k` the sender's fate plan
    /// expects (sequence gaps only arise from aborted sends).
    pub fn on_data(&mut self, src: usize, seq: u64) -> DataDisposition {
        if seq < self.next_expected[src] {
            let ack_k = self.ack_idx[src];
            self.ack_idx[src] += 1;
            return DataDisposition::Duplicate { ack_k };
        }
        self.next_expected[src] = seq + 1;
        // A fresh sequence restarts the delivered-frame enumeration; the
        // ack for delivery 0 is this one.
        self.ack_idx[src] = 1;
        DataDisposition::Deliver { ack_k: 0 }
    }

    /// Classifies a frame stamped with `remote` against the local epoch.
    pub fn classify_epoch(&self, remote: u64) -> EpochDisposition {
        let local = self.view.epoch();
        if remote < local {
            EpochDisposition::Stale
        } else if remote > local {
            EpochDisposition::Ahead
        } else {
            EpochDisposition::Current
        }
    }

    /// Feeds a typed failure's implicated peer into the suspicion set.
    /// Returns whether the suspicion was recorded (self-blame and
    /// out-of-range peers are ignored).
    pub fn record_suspect(&mut self, peer: usize) -> bool {
        if peer < self.size && peer != self.rank {
            self.suspected.insert(peer)
        } else {
            false
        }
    }

    /// Peers currently under suspicion (ascending).
    pub fn suspected_ranks(&self) -> impl Iterator<Item = usize> + '_ {
        self.suspected.iter().copied()
    }

    /// Drops all pending suspicion without a sweep. Suspicion only feeds
    /// the next sweep, so once this rank can no longer sweep (it
    /// converged, degraded, or departed) the set is dead state; the model
    /// checker clears it when canonicalizing states for dedup.
    pub fn clear_suspicions(&mut self) {
        self.suspected.clear();
    }

    /// Membership sweep: unions the planned ground truth with observed
    /// hard evidence (self-reports and out-of-range evidence filtered),
    /// re-anchors on the current dead set so a rescinded pure-silence
    /// suspicion can never resurrect a rank, clears suspicions (each was
    /// either confirmed or exonerated as transient loss), and bumps the
    /// view epoch iff membership changed.
    pub fn sweep<I>(&mut self, planned: BTreeSet<usize>, observed: I) -> SweepOutcome
    where
        I: IntoIterator<Item = usize>,
    {
        let mut dead = planned;
        let (rank, size) = (self.rank, self.size);
        dead.extend(observed.into_iter().filter(|&r| r < size && r != rank));
        dead.extend(self.view.dead_ranks());
        self.suspected.clear();
        let before = self.size - self.view.live_count();
        let changed = self.view.observe_dead(dead);
        let newly_dead = if changed {
            (self.size - self.view.live_count() - before) as u64
        } else {
            0
        };
        SweepOutcome {
            changed,
            newly_dead,
            epoch: self.view.epoch(),
        }
    }

    /// Marks this rank killed at a protocol point: from here on it must
    /// act dead (no done announcement, no drain, no straggler acks).
    pub fn on_killed(&mut self) {
        self.killed = true;
    }

    /// Whether the end-of-run ALL_DONE drain runs. A crashed or killed
    /// rank already departed and must act dead — announcing done or acking
    /// stragglers would be traffic from beyond the grave. *Everyone else
    /// must drain*, even under an inert fault plan: on a real-socket
    /// backend an early EOF is indistinguishable from death to a peer
    /// still mid-exchange (the PR-7 teardown race the model checker's
    /// mutation test re-introduces).
    pub fn drain_gate(&self, crashed: bool) -> bool {
        !(crashed || self.killed)
    }
}

/// The resumable converged-exchange bookkeeping for one epoch attempt:
/// which peers were sent and received, and how many rounds at a stable
/// view stayed fruitless. Within one epoch only the sends never
/// acknowledged and the slots never received are retried, so no peer ever
/// sees a duplicate frame for the same epoch.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ConvergedState {
    /// The epoch this attempt runs under.
    pub epoch: u64,
    /// Peers whose send was acknowledged this epoch.
    pub sent: Vec<bool>,
    /// Peers whose frame was received this epoch.
    pub received: Vec<bool>,
    /// Retry rounds at a stable view that made no progress; bounded by the
    /// rank count before the exchange gives up.
    pub fruitless: usize,
}

/// How one round of a converged exchange ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Convergence {
    /// Every live slot was both sent and received: every survivor has
    /// completed the exchange under this epoch.
    Converged,
    /// A peer is live yet unsent: its send failed transiently and nothing
    /// since forced a retry. Returning now would starve it.
    Starved(usize),
}

impl ConvergedState {
    /// Fresh bookkeeping for an attempt under `view` (all slots pending,
    /// fruitless counter preserved by the caller only across *rounds*, not
    /// epochs — a view change resets it by starting a new state).
    pub fn begin(view: &ClusterView) -> ConvergedState {
        ConvergedState {
            epoch: view.epoch(),
            sent: vec![false; view.size()],
            received: vec![false; view.size()],
            fruitless: 0,
        }
    }

    /// Records an acknowledged send to `to`.
    pub fn mark_sent(&mut self, to: usize) {
        self.sent[to] = true;
    }

    /// Records a received slot from `from`.
    pub fn mark_received(&mut self, from: usize) {
        self.received[from] = true;
    }

    /// The lowest peer that still needs a send under `view`.
    pub fn next_unsent(&self, view: &ClusterView) -> Option<usize> {
        (0..self.sent.len()).find(|&t| !self.sent[t] && view.is_alive(t))
    }

    /// Whether every live slot has been received.
    pub fn all_received(&self, view: &ClusterView) -> bool {
        (0..self.received.len()).all(|f| self.received[f] || !view.is_alive(f))
    }

    /// End-of-round convergence check: converged only once every live slot
    /// was both sent and received.
    pub fn convergence(&self, view: &ClusterView) -> Convergence {
        match self.next_unsent(view) {
            None => Convergence::Converged,
            Some(starved) => Convergence::Starved(starved),
        }
    }

    /// Counts a fruitless round (failure, or starvation at a stable view)
    /// and returns the running tally for the caller's give-up bound.
    pub fn note_fruitless(&mut self) -> usize {
        self.fruitless += 1;
        self.fruitless
    }
}

/// Lifecycle phase of a modeled rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Created, collective not yet started.
    Idle,
    /// Mid converged exchange.
    Exchanging,
    /// Exchange converged; servicing stragglers until ALL_DONE.
    Done,
    /// Gave up after `size` fruitless rounds at a stable view — the
    /// planned degraded terminal.
    Degraded,
    /// Killed at a protocol point (or crashed, when the model drives it).
    Dead,
}

/// An input to [`ProtocolActor::step`]: one thing the outside world (wire,
/// detector, scheduler) can do to a rank. The checker enumerates these;
/// `CommWorld` experiences the same inputs as blocking I/O outcomes.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Event {
    /// Begin the one-shot converged exchange this actor models.
    Start,
    /// An epoch-stamped data frame arrived.
    Data { src: usize, seq: u64, epoch: u64 },
    /// An ack arrived.
    Ack { src: usize, seq: u64 },
    /// The reliable layer gave up on the in-flight send (peer crashed,
    /// closed, or retries exhausted).
    SendFailed { dst: usize },
    /// The receive deadline for `from`'s slot fired: the peer is silent
    /// (degraded, partitioned, or just slow) but produced no hard
    /// evidence. Mirrors `alltoall_converged`'s recv-error branch.
    RecvTimeout { from: usize },
    /// Hard evidence that `peer` is dead (EOF, EPIPE, overdue silence).
    Evidence { peer: usize },
    /// `peer` restarted from checkpoint and was re-admitted at the kill
    /// gate before any sweep could demote it.
    PeerRejoined { peer: usize },
    /// Run a detection sweep over the accumulated evidence.
    Sweep,
    /// This rank's own death strikes at a protocol point.
    Kill,
}

/// An output of [`ProtocolActor::step`]: one thing the rank asks the
/// outside world to do.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Action {
    /// Put an epoch-stamped data frame on the wire.
    Send { dst: usize, seq: u64, epoch: u64 },
    /// Put an ack on the wire.
    SendAck { dst: usize, seq: u64, k: u64 },
    /// Accumulate a received payload into the application slot.
    Deliver { src: usize, epoch: u64 },
    /// Every live slot sent and received under `epoch`.
    Converged { epoch: u64 },
    /// Gave up after `size` fruitless rounds while `waiting_on` starved.
    Degraded { waiting_on: usize },
    /// Announce completion to the mesh (the ALL_DONE handshake).
    AnnounceDone,
    /// Leave the mesh without announcing: act dead.
    Depart,
}

/// The event-driven facade over the decision kernels: one modeled rank
/// running one converged exchange. This is what `crates/check` explores;
/// it contains no logic of its own beyond sequencing — every protocol
/// decision is delegated to the same [`ActorState`] / [`ConvergedState`]
/// kernels `CommWorld` calls, so the checked machine and the production
/// machine cannot diverge.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ProtocolActor {
    /// The shared decision kernels' state.
    pub state: ActorState,
    /// Converged-exchange bookkeeping (present once started).
    pub exchange: Option<ConvergedState>,
    /// Lifecycle phase.
    pub phase: Phase,
    /// Hard evidence accumulated since the last sweep.
    pub evidence: BTreeSet<usize>,
    /// The in-flight reliable send this rank is blocked on, if any: the
    /// real sender transmits sequentially, waiting for each ack.
    pub awaiting: Option<(usize, u64)>,
    /// Peers already attempted this round: a failed send is retried only
    /// on the *next* round (the real round loop moves on best-effort).
    pub attempted: BTreeSet<usize>,
    /// Whether a receive failed since the last sweep (feeds the fruitless
    /// accounting exactly like `alltoall_converged`'s failure branch).
    pub recv_failed: bool,
}

impl ProtocolActor {
    /// A fresh idle actor.
    pub fn new(rank: usize, size: usize) -> ProtocolActor {
        ProtocolActor {
            state: ActorState::new(rank, size),
            exchange: None,
            phase: Phase::Idle,
            evidence: BTreeSet::new(),
            awaiting: None,
            attempted: BTreeSet::new(),
            recv_failed: false,
        }
    }

    /// Whether this rank still participates in the protocol.
    pub fn is_live(&self) -> bool {
        !matches!(self.phase, Phase::Dead)
    }

    /// Applies `event`, returning the actions the wire should carry out.
    /// Pure state transition: no clocks, no threads, no I/O.
    pub fn step(&mut self, event: Event) -> Vec<Action> {
        if matches!(self.phase, Phase::Dead) {
            return Vec::new();
        }
        match event {
            Event::Start => self.on_start(),
            Event::Data { src, seq, epoch } => self.on_data_frame(src, seq, epoch),
            Event::Ack { src, seq } => self.on_ack(src, seq),
            Event::SendFailed { dst } => self.on_send_failed(dst),
            Event::RecvTimeout { from } => {
                // The converged loop treats a failed receive as a fruitless
                // signal plus suspicion, never as proof of death: the next
                // sweep decides (and suspicion alone demotes nobody).
                self.state.record_suspect(from);
                self.recv_failed = true;
                Vec::new()
            }
            Event::Evidence { peer } => {
                if peer != self.state.rank() && peer < self.state.size() {
                    self.evidence.insert(peer);
                }
                Vec::new()
            }
            Event::PeerRejoined { peer } => {
                // Survivors clear evidence against the dead predecessor at
                // the kill gate, before any sweep can demote the restarted
                // successor (mirrors `LivenessBoard::mark_rejoined`).
                self.evidence.remove(&peer);
                Vec::new()
            }
            Event::Sweep => self.on_sweep(),
            Event::Kill => {
                self.state.on_killed();
                self.phase = Phase::Dead;
                vec![Action::Depart]
            }
        }
    }

    fn on_start(&mut self) -> Vec<Action> {
        if !matches!(self.phase, Phase::Idle) {
            return Vec::new();
        }
        self.phase = Phase::Exchanging;
        let mut ex = ConvergedState::begin(self.state.view());
        // The self-slot never touches the wire: the real exchange delivers
        // it through the local inbox.
        let rank = self.state.rank();
        ex.mark_sent(rank);
        ex.mark_received(rank);
        self.exchange = Some(ex);
        self.pump_sends()
    }

    /// Issues the next pending send if the rank is not already blocked on
    /// an ack (the real sender transmits sequentially).
    fn pump_sends(&mut self) -> Vec<Action> {
        if self.awaiting.is_some() || !matches!(self.phase, Phase::Exchanging) {
            return Vec::new();
        }
        let Some(ex) = self.exchange.as_ref() else {
            return Vec::new();
        };
        let view = self.state.view();
        let dst = (0..self.state.size())
            .find(|&t| !ex.sent[t] && view.is_alive(t) && !self.attempted.contains(&t));
        let Some(dst) = dst else {
            return self.check_converged();
        };
        self.attempted.insert(dst);
        let seq = self.state.alloc_seq(dst);
        let epoch = self.state.view().epoch();
        self.awaiting = Some((dst, seq));
        vec![Action::Send { dst, seq, epoch }]
    }

    fn on_data_frame(&mut self, src: usize, seq: u64, epoch: u64) -> Vec<Action> {
        let mut actions = Vec::new();
        let dispo = self.state.on_data(src, seq);
        actions.push(Action::SendAck {
            dst: src,
            seq,
            k: dispo.ack_k(),
        });
        if let DataDisposition::Deliver { .. } = dispo {
            match self.state.classify_epoch(epoch) {
                EpochDisposition::Stale => {}
                // Not consumable until this rank's own sweep catches up;
                // the next Sweep event advances the view and the peer's
                // resend (same epoch, new seq) lands as Current. The
                // payload itself is from a stale attempt by then.
                EpochDisposition::Ahead => self.recv_failed = true,
                EpochDisposition::Current => {
                    if matches!(self.phase, Phase::Exchanging) {
                        if let Some(ex) = self.exchange.as_mut() {
                            if !ex.received[src] {
                                ex.mark_received(src);
                                actions.push(Action::Deliver { src, epoch });
                            }
                        }
                    }
                }
            }
        }
        actions.extend(self.check_converged());
        actions
    }

    fn on_ack(&mut self, src: usize, seq: u64) -> Vec<Action> {
        if self.awaiting != Some((src, seq)) {
            return Vec::new(); // stale ack from a completed exchange
        }
        self.awaiting = None;
        if let Some(ex) = self.exchange.as_mut() {
            ex.mark_sent(src);
        }
        let mut actions = self.pump_sends();
        actions.extend(self.check_converged());
        actions
    }

    fn on_send_failed(&mut self, dst: usize) -> Vec<Action> {
        if self.awaiting.map(|(d, _)| d) == Some(dst) {
            self.awaiting = None;
        }
        self.state.record_suspect(dst);
        // Best-effort, like the round's send loop: move on to the next
        // peer; the failed one is retried only if the view holds steady.
        self.pump_sends()
    }

    fn on_sweep(&mut self) -> Vec<Action> {
        let evidence: Vec<usize> = self.evidence.iter().copied().collect();
        let outcome = self.state.sweep(BTreeSet::new(), evidence);
        if !matches!(self.phase, Phase::Exchanging) {
            return Vec::new();
        }
        if outcome.changed {
            // The view advanced: redo the exchange from scratch at the new
            // epoch so all survivors complete under a common view.
            self.recv_failed = false;
            self.awaiting = None;
            self.attempted.clear();
            let mut ex = ConvergedState::begin(self.state.view());
            let rank = self.state.rank();
            ex.mark_sent(rank);
            ex.mark_received(rank);
            self.exchange = Some(ex);
            return self.pump_sends();
        }
        // Stable view: a round that saw a failure or left a live peer
        // unsent counts toward the give-up bound; a round merely waiting
        // on in-flight frames does not.
        let size = self.state.size();
        let (starved, fruitless) = {
            let Some(ex) = self.exchange.as_mut() else {
                return Vec::new();
            };
            let starved = match ex.convergence(self.state.view()) {
                Convergence::Starved(s) if self.awaiting.is_none() => Some(s),
                _ => None,
            };
            if starved.is_some() || self.recv_failed {
                (starved, ex.note_fruitless())
            } else {
                (None, ex.fruitless)
            }
        };
        self.recv_failed = false;
        if fruitless >= size {
            self.phase = Phase::Degraded;
            return vec![Action::Degraded {
                waiting_on: starved.unwrap_or(self.state.rank()),
            }];
        }
        // A new retry round begins only once nothing is in flight: while
        // a send still awaits its ack the round is mid-progress, and
        // re-opening the attempted set now would let a failed peer be
        // re-sent within the same round (the real loop retries it only
        // next round, so the fruitless bound would never be reached).
        if self.awaiting.is_none() {
            // Retry round: re-issue the sends never acknowledged.
            self.attempted.clear();
            return self.pump_sends();
        }
        Vec::new()
    }

    fn check_converged(&mut self) -> Vec<Action> {
        if !matches!(self.phase, Phase::Exchanging) || self.awaiting.is_some() {
            return Vec::new();
        }
        let Some(ex) = self.exchange.as_ref() else {
            return Vec::new();
        };
        let view = self.state.view();
        if matches!(ex.convergence(view), Convergence::Converged) && ex.all_received(view) {
            let epoch = ex.epoch;
            self.phase = Phase::Done;
            return vec![Action::Converged { epoch }, Action::AnnounceDone];
        }
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_send_under_an_inert_plan_is_one_acked_attempt() {
        let plan = FaultPlan::none();
        let retry = RetryPolicy::default();
        let sp = plan_send(&plan, &retry, 0, 1, 0);
        assert_eq!(
            sp,
            SendPlan {
                attempts: 1,
                retransmits: 0,
                timeouts: 0,
                acked: true
            }
        );
        assert_eq!(attempt_copies(&plan, 0, 1, 0, 0), 1);
    }

    #[test]
    fn plan_send_exhausts_retries_when_every_frame_drops() {
        let plan = FaultPlan::new(7).with_drop(1.0);
        let retry = RetryPolicy::default();
        let sp = plan_send(&plan, &retry, 0, 1, 3);
        assert!(!sp.acked);
        assert_eq!(sp.attempts, retry.max_attempts);
        assert_eq!(sp.retransmits, retry.max_attempts as u64);
        assert_eq!(sp.timeouts, 0, "dropped data never times out an ack wait");
    }

    #[test]
    fn plan_send_counts_a_timeout_when_only_the_ack_drops() {
        // Find a (seed, seq) whose first ack drops but whose second
        // delivery acks, then check the plan's arithmetic against it.
        let retry = RetryPolicy::default();
        let mut hit = false;
        for seed in 0..64u64 {
            let plan = FaultPlan {
                ack_drop_prob: 0.5,
                ..FaultPlan::new(seed)
            };
            for seq in 0..16u64 {
                let sp = plan_send(&plan, &retry, 0, 1, seq);
                if sp.acked && sp.attempts == 2 {
                    assert_eq!(sp.timeouts, 1);
                    assert_eq!(sp.retransmits, 1);
                    hit = true;
                }
            }
        }
        assert!(hit, "no ack-drop-then-recover case in the sampled space");
    }

    #[test]
    fn on_data_delivers_in_order_and_suppresses_duplicates() {
        let mut a = ActorState::new(0, 2);
        assert_eq!(a.on_data(1, 0), DataDisposition::Deliver { ack_k: 0 });
        // The same frame again: a retransmission racing the ack.
        assert_eq!(a.on_data(1, 0), DataDisposition::Duplicate { ack_k: 1 });
        assert_eq!(a.on_data(1, 0), DataDisposition::Duplicate { ack_k: 2 });
        // The next sequence restarts the ack enumeration.
        assert_eq!(a.on_data(1, 1), DataDisposition::Deliver { ack_k: 0 });
    }

    #[test]
    fn sweep_filters_self_reports_and_counts_newly_dead() {
        let mut a = ActorState::new(0, 4);
        a.record_suspect(2);
        let out = a.sweep(BTreeSet::from([3]), [0, 2, 9]);
        assert!(out.changed);
        assert_eq!(out.newly_dead, 2, "self and out-of-range filtered");
        assert_eq!(out.epoch, 1);
        assert_eq!(a.suspected_ranks().count(), 0, "sweep clears suspicion");
        // Re-anchored: the same evidence again changes nothing.
        let out = a.sweep(BTreeSet::new(), [2]);
        assert!(!out.changed);
        assert_eq!(out.epoch, 1);
    }

    #[test]
    fn epoch_classification_matches_the_view() {
        let mut a = ActorState::new(0, 3);
        a.sweep(BTreeSet::from([2]), []);
        assert_eq!(a.classify_epoch(0), EpochDisposition::Stale);
        assert_eq!(a.classify_epoch(1), EpochDisposition::Current);
        assert_eq!(a.classify_epoch(2), EpochDisposition::Ahead);
    }

    #[test]
    fn drain_gate_blocks_crashed_and_killed_ranks_only() {
        let mut a = ActorState::new(1, 2);
        assert!(a.drain_gate(false), "healthy ranks must drain");
        assert!(!a.drain_gate(true), "crashed ranks must act dead");
        a.on_killed();
        assert!(!a.drain_gate(false), "killed ranks must act dead");
    }

    #[test]
    fn two_fault_free_actors_converge_by_exchanging_steps() {
        let mut a = ProtocolActor::new(0, 2);
        let mut b = ProtocolActor::new(1, 2);
        let send_a = a.step(Event::Start);
        let send_b = b.step(Event::Start);
        assert_eq!(
            send_a,
            vec![Action::Send {
                dst: 1,
                seq: 0,
                epoch: 0
            }]
        );
        // Deliver a's frame to b: b acks and delivers.
        let rb = b.step(Event::Data {
            src: 0,
            seq: 0,
            epoch: 0,
        });
        assert!(rb.contains(&Action::SendAck {
            dst: 0,
            seq: 0,
            k: 0
        }));
        assert!(rb.contains(&Action::Deliver { src: 0, epoch: 0 }));
        // Deliver b's frame to a, then cross the acks.
        assert_eq!(
            send_b,
            vec![Action::Send {
                dst: 0,
                seq: 0,
                epoch: 0
            }]
        );
        let ra = a.step(Event::Data {
            src: 1,
            seq: 0,
            epoch: 0,
        });
        assert!(ra.contains(&Action::Deliver { src: 1, epoch: 0 }));
        let fa = a.step(Event::Ack { src: 1, seq: 0 });
        let fb = b.step(Event::Ack { src: 0, seq: 0 });
        assert!(fa.contains(&Action::Converged { epoch: 0 }));
        assert!(fb.contains(&Action::Converged { epoch: 0 }));
        assert_eq!(a.phase, Phase::Done);
        assert_eq!(b.phase, Phase::Done);
    }

    #[test]
    fn evidence_then_sweep_restarts_the_exchange_at_a_new_epoch() {
        let mut a = ProtocolActor::new(0, 3);
        a.step(Event::Start);
        // Rank 1 dies before acking; the reliable layer reports it.
        a.step(Event::Evidence { peer: 1 });
        let acts = a.step(Event::SendFailed { dst: 1 });
        // Moved on to rank 2 best-effort.
        assert!(matches!(acts.first(), Some(Action::Send { dst: 2, .. })));
        let acts = a.step(Event::Ack { src: 2, seq: 0 });
        assert!(acts.is_empty(), "still waiting on rank 1's slot");
        let acts = a.step(Event::Sweep);
        assert_eq!(a.state.view().epoch(), 1);
        // The restarted epoch resends to rank 2 with a fresh seq.
        assert!(
            acts.contains(&Action::Send {
                dst: 2,
                seq: 1,
                epoch: 1
            }),
            "{acts:?}"
        );
        let acts = a.step(Event::Data {
            src: 2,
            seq: 1,
            epoch: 1,
        });
        assert!(acts.contains(&Action::Deliver { src: 2, epoch: 1 }));
        let acts = a.step(Event::Ack { src: 2, seq: 1 });
        assert!(acts.contains(&Action::Converged { epoch: 1 }));
    }

    #[test]
    fn fruitless_rounds_at_a_stable_view_degrade() {
        let mut a = ProtocolActor::new(0, 2);
        a.step(Event::Start);
        let mut degraded = false;
        for _ in 0..2 {
            a.step(Event::SendFailed { dst: 1 });
            let acts = a.step(Event::Sweep);
            if acts
                .iter()
                .any(|x| matches!(x, Action::Degraded { waiting_on: 1 }))
            {
                degraded = true;
            }
        }
        assert!(degraded, "size fruitless rounds must give up");
        assert_eq!(a.phase, Phase::Degraded);
    }

    #[test]
    fn recv_timeouts_at_a_stable_view_degrade_without_burying_anyone() {
        // A silent-but-live peer (degraded, partitioned) never produces
        // hard evidence, so the waiting rank gives up without demoting it.
        let mut a = ProtocolActor::new(0, 2);
        a.step(Event::Start);
        a.step(Event::Data {
            src: 1,
            seq: 0,
            epoch: 0,
        });
        a.step(Event::Ack { src: 1, seq: 0 });
        let mut degraded = false;
        for _ in 0..2 {
            a.step(Event::RecvTimeout { from: 1 });
            let acts = a.step(Event::Sweep);
            degraded |= acts.iter().any(|x| matches!(x, Action::Degraded { .. }));
        }
        // Rank 1's frame already arrived here, so this run converges
        // before the timeouts matter; rebuild the starved side instead.
        let mut b = ProtocolActor::new(0, 2);
        b.step(Event::Start);
        b.step(Event::Ack { src: 1, seq: 0 });
        for _ in 0..2 {
            b.step(Event::RecvTimeout { from: 1 });
            let acts = b.step(Event::Sweep);
            degraded |= acts.iter().any(|x| matches!(x, Action::Degraded { .. }));
        }
        assert!(degraded, "persistent silence must reach the give-up bound");
        assert_eq!(b.state.view().epoch(), 0, "suspicion alone buries nobody");
        assert!(b.state.view().is_alive(1));
    }

    #[test]
    fn a_killed_actor_departs_and_ignores_everything_after() {
        let mut a = ProtocolActor::new(0, 2);
        a.step(Event::Start);
        assert_eq!(a.step(Event::Kill), vec![Action::Depart]);
        assert!(a.state.is_killed());
        assert!(a
            .step(Event::Data {
                src: 1,
                seq: 0,
                epoch: 0
            })
            .is_empty());
    }

    #[test]
    fn rejoin_clears_evidence_before_a_sweep_can_demote() {
        let mut a = ProtocolActor::new(0, 3);
        a.step(Event::Start);
        a.step(Event::Evidence { peer: 2 });
        a.step(Event::PeerRejoined { peer: 2 });
        a.step(Event::Sweep);
        assert_eq!(a.state.view().epoch(), 0, "no demotion after rejoin");
        assert!(a.state.view().is_alive(2));
    }
}
