//! The in-process backend: one thread per rank, crossbeam channels.
//!
//! This is the original cluster simulator's plumbing, extracted beneath the
//! [`Transport`] seam. Frames are `Vec<u8>`s moved (not copied) through
//! unbounded channels; the run-global rendezvous state — the timed
//! generation barrier and the done-counter the end-of-run drain polls — is
//! shared through `Arc`s across the fabric's endpoints.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender, TryRecvError};

use super::{RecvOutcome, Transport};
use crate::fault::CommError;

/// A `(source rank, frame bytes)` pair in flight.
type Packet = (usize, Vec<u8>);

/// A reusable generation barrier over the run's *live* ranks, with a
/// timeout so a rank missing the rendezvous surfaces an error instead of
/// hanging the cluster. (`std::sync::Barrier` has no timed wait.)
struct SimBarrier {
    /// `(arrived, generation, attendance)` — attendance shrinks when a
    /// mid-run kill removes a rank from the rendezvous for good.
    state: Mutex<(usize, u64, usize)>,
    cv: Condvar,
}

impl SimBarrier {
    fn new(n: usize) -> Self {
        SimBarrier {
            state: Mutex::new((0, 0, n)),
            cv: Condvar::new(),
        }
    }

    /// Permanently removes one rank from the expected attendance. If the
    /// departure completes a generation already in progress, waiters are
    /// released.
    fn leave(&self) {
        let mut guard = self.state.lock().unwrap_or_else(|e| e.into_inner());
        guard.2 = guard.2.saturating_sub(1);
        if guard.2 > 0 && guard.0 >= guard.2 {
            guard.0 = 0;
            guard.1 += 1;
            self.cv.notify_all();
        }
    }

    /// Returns true if the full attendance arrived within `timeout`. On
    /// timeout this rank withdraws its arrival so the barrier stays usable.
    fn wait(&self, timeout: Duration) -> bool {
        let mut guard = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let generation = guard.1;
        guard.0 += 1;
        if guard.0 == guard.2 {
            guard.0 = 0;
            guard.1 += 1;
            self.cv.notify_all();
            return true;
        }
        let deadline = Instant::now() + timeout;
        while guard.1 == generation {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                guard.0 -= 1;
                return false;
            }
            guard = self
                .cv
                .wait_timeout(guard, remaining)
                .unwrap_or_else(|e| e.into_inner())
                .0;
        }
        true
    }
}

/// One rank's endpoint of an in-process fabric.
pub struct InProcTransport {
    rank: usize,
    size: usize,
    senders: Vec<Sender<Packet>>,
    receiver: Receiver<Packet>,
    barrier: Arc<SimBarrier>,
    /// Ranks (out of the live ones) whose run closure has returned.
    done: Arc<AtomicUsize>,
    /// How many done announcements complete the run. Starts at the live
    /// count and shrinks when a rank departs (a mid-run kill): a dead rank
    /// will never announce, and survivors' drains must not wait for it.
    done_target: Arc<AtomicUsize>,
}

/// Builds a fully-connected `p`-rank in-process fabric whose barrier and
/// done-set span `live` ranks (crashed ranks get an endpoint too — dropping
/// it unstarted is what closes their channels).
pub fn fabric(p: usize, live: usize) -> Vec<InProcTransport> {
    assert!(p >= 1, "need at least one rank");
    assert!(live >= 1 && live <= p, "live must be in 1..=p");
    let barrier = Arc::new(SimBarrier::new(live));
    let done = Arc::new(AtomicUsize::new(0));
    let done_target = Arc::new(AtomicUsize::new(live));
    let mut senders = Vec::with_capacity(p);
    let mut receivers = Vec::with_capacity(p);
    for _ in 0..p {
        let (s, r) = unbounded::<Packet>();
        senders.push(s);
        receivers.push(r);
    }
    receivers
        .into_iter()
        .enumerate()
        .map(|(rank, receiver)| InProcTransport {
            rank,
            size: p,
            senders: senders.clone(),
            receiver,
            barrier: barrier.clone(),
            done: done.clone(),
            done_target: done_target.clone(),
        })
        .collect()
}

impl Transport for InProcTransport {
    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.size
    }

    fn send_frame(&mut self, to: usize, frame: Vec<u8>) -> Result<(), CommError> {
        self.senders[to]
            .send((self.rank, frame))
            .map_err(|_| CommError::Disbanded {
                rank: self.rank,
                peer: to,
            })
    }

    fn recv_frame(&mut self, timeout: Duration) -> Result<RecvOutcome, CommError> {
        match self.receiver.recv_timeout(timeout) {
            Ok((src, frame)) => Ok(RecvOutcome::Frame(src, frame)),
            Err(RecvTimeoutError::Timeout) => Ok(RecvOutcome::Idle),
            Err(RecvTimeoutError::Disconnected) => Ok(RecvOutcome::Closed),
        }
    }

    fn try_recv_frame(&mut self) -> Result<RecvOutcome, CommError> {
        match self.receiver.try_recv() {
            Ok((src, frame)) => Ok(RecvOutcome::Frame(src, frame)),
            Err(TryRecvError::Empty) => Ok(RecvOutcome::Idle),
            Err(TryRecvError::Disconnected) => Ok(RecvOutcome::Closed),
        }
    }

    fn barrier(&mut self, timeout: Duration) -> Result<bool, CommError> {
        Ok(self.barrier.wait(timeout))
    }

    fn announce_done(&mut self) {
        self.done.fetch_add(1, Ordering::SeqCst);
    }

    fn all_done(&self) -> bool {
        self.done.load(Ordering::SeqCst) >= self.done_target.load(Ordering::SeqCst)
    }

    fn depart(&mut self) {
        self.done_target.fetch_sub(1, Ordering::SeqCst);
        self.barrier.leave();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_flow_between_endpoints() {
        let mut eps = fabric(2, 2);
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        assert_eq!((a.rank(), a.size()), (0, 2));
        a.send_frame(1, vec![1, 2, 3]).unwrap();
        match b.recv_frame(Duration::from_secs(1)).unwrap() {
            RecvOutcome::Frame(src, frame) => {
                assert_eq!(src, 0);
                assert_eq!(frame, vec![1, 2, 3]);
            }
            other => panic!("unexpected outcome {other:?}"),
        }
        assert_eq!(b.try_recv_frame().unwrap(), RecvOutcome::Idle);
    }

    #[test]
    fn recv_reports_idle_then_closed() {
        let mut eps = fabric(2, 2);
        let mut b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        assert_eq!(
            b.recv_frame(Duration::from_millis(10)).unwrap(),
            RecvOutcome::Idle
        );
        drop(a);
        // All senders to rank 1 are gone once every other endpoint drops
        // (each endpoint holds a full sender set, including to itself).
        drop(b.senders.drain(..).collect::<Vec<_>>());
        assert_eq!(b.try_recv_frame().unwrap(), RecvOutcome::Closed);
    }

    #[test]
    fn done_counter_tracks_live_ranks() {
        let mut eps = fabric(3, 2);
        assert!(!eps[0].all_done());
        eps[0].announce_done();
        assert!(!eps[0].all_done());
        eps[1].announce_done();
        assert!(eps[0].all_done(), "done-set spans the live count, not p");
    }

    #[test]
    fn barrier_times_out_without_full_attendance() {
        let mut eps = fabric(2, 2);
        let ok = eps[0].barrier(Duration::from_millis(20)).unwrap();
        assert!(!ok, "lone arrival must time out");
    }

    #[test]
    fn departed_ranks_leave_the_rendezvous() {
        let mut eps = fabric(3, 3);
        let mut dead = eps.pop().unwrap();
        dead.depart();
        // Done-target shrank: the two survivors complete the drain alone.
        eps[0].announce_done();
        eps[1].announce_done();
        assert!(eps[0].all_done());
        // Barrier attendance shrank: survivors rendezvous without the
        // departed rank.
        let other = std::thread::spawn({
            let mut t = eps.pop().unwrap();
            move || t.barrier(Duration::from_secs(5)).unwrap()
        });
        assert!(eps[0].barrier(Duration::from_secs(5)).unwrap());
        assert!(other.join().unwrap());
    }

    #[test]
    fn departure_mid_generation_releases_waiters() {
        let eps = fabric(2, 2);
        let mut it = eps.into_iter();
        let mut a = it.next().unwrap();
        let mut b = it.next().unwrap();
        let waiter = std::thread::spawn(move || a.barrier(Duration::from_secs(5)).unwrap());
        // Give the waiter time to arrive, then depart: it must be released.
        std::thread::sleep(Duration::from_millis(50));
        b.depart();
        assert!(waiter.join().unwrap());
    }
}
