//! Heartbeat-driven failure detection for backends with real silence.
//!
//! The in-process backend cannot lose a peer without knowing it — a dead
//! thread drops its channels and every survivor sees `Disbanded`
//! immediately. A real process mesh has no such luxury: a SIGKILLed rank
//! simply goes quiet, and the only signals are *hard evidence* (EPIPE /
//! ECONNRESET on a write, EOF in a reader thread) and *absence* (no frames,
//! no heartbeats). The [`LivenessBoard`] fuses both:
//!
//! * Every peer's reader thread reports arrivals (heartbeats and protocol
//!   frames alike) with [`LivenessBoard::note_beat`] /
//!   [`LivenessBoard::note_traffic`]; a per-process heartbeat thread emits
//!   [`super::frame::KIND_HEARTBEAT`] frames on
//!   [`crate::fault::RetryPolicy::heartbeat_period`].
//! * A sweep ([`LivenessBoard::confirmed_dead`]) declares a peer dead when
//!   there is hard evidence, or when its silence exceeds a phi-accrual-style
//!   adaptive threshold: mean observed inter-arrival plus four standard
//!   deviations (EWMA-tracked), clamped between a floor of a few heartbeat
//!   periods and the [`crate::fault::RetryPolicy::suspicion_timeout`] cap
//!   seeded from [`crate::fault::RetryPolicy::scaled_for`]. Until a peer
//!   has produced enough beats to estimate its rhythm, only the cap
//!   applies — startup jitter must never demote a live rank.
//!
//! The board is deliberately *below* membership: it only ever answers
//! "which peers do I have evidence are dead". The epoch/recovery protocol
//! above the seam consumes that answer through
//! [`crate::cluster::CommWorld::detect_failures`], unioned with the fault
//! plan's deterministic ground truth, so planned deaths demote identically
//! on every backend while unplanned deaths are caught from evidence alone.
//!
//! Wall-clock-driven counters (beats sent/received, suspicions, hard
//! evidence) are scheduling noise and are excluded from the conformance
//! suite's exact-equality clause; the deterministic pair
//! (`deaths_detected`, `rejoins`) is counted above the seam in
//! [`crate::cluster::CommWorld`] and *is* asserted equal across backends.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use lcc_obs::metrics as obs;

use crate::fault::RetryPolicy;

/// Number of EWMA standard deviations of silence that arouse suspicion.
pub const PHI_SIGMAS: f64 = 4.0;
/// EWMA smoothing factor for the inter-arrival estimate.
pub const EWMA_ALPHA: f64 = 0.2;
/// Beats required before the adaptive threshold is trusted at all.
pub const MIN_SAMPLES: u64 = 4;
/// The adaptive floor, in heartbeat periods: even a metronome-steady peer
/// gets this many missed beats of grace.
pub const FLOOR_PERIODS: u32 = 4;

/// Pure EWMA update of one peer's rhythm estimate for an observed
/// inter-arrival `gap_s` (seconds): returns the new
/// `(mean_s, var_s2, samples)` triple. The first observation seeds the
/// mean directly; later ones blend with [`EWMA_ALPHA`]. Exposed at
/// function level so the suspicion math is property-testable without a
/// clock or a board.
pub fn ewma_observe(mean_s: f64, var_s2: f64, samples: u64, gap_s: f64) -> (f64, f64, u64) {
    if samples > 0 {
        let dev = gap_s - mean_s;
        (
            mean_s + EWMA_ALPHA * dev,
            var_s2 + EWMA_ALPHA * (dev * dev - var_s2),
            samples + 1,
        )
    } else {
        (gap_s, var_s2, 1)
    }
}

/// Pure adaptive silence threshold for a rhythm estimate: the
/// [`PHI_SIGMAS`]-sigma phi-accrual bound `mean + 4σ`, clamped to
/// `[floor, cap]`; until [`MIN_SAMPLES`] beats have been observed only
/// the cap applies (startup jitter must never demote a live rank).
pub fn adaptive_threshold(
    mean_s: f64,
    var_s2: f64,
    samples: u64,
    floor: Duration,
    cap: Duration,
) -> Duration {
    if samples < MIN_SAMPLES {
        return cap;
    }
    let adaptive = Duration::from_secs_f64(mean_s + PHI_SIGMAS * var_s2.sqrt());
    adaptive.clamp(floor, cap)
}

/// Liveness-layer counters, reported per rank and summed cluster-wide.
///
/// `heartbeats_*`, `hard_evidence`, and `suspicions` are wall-clock
/// dependent; `deaths_detected` and `rejoins` are pure functions of the
/// fault seed and are the pair the conformance suite asserts equal across
/// backends.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct LivenessStats {
    /// Heartbeat frames this rank transmitted.
    pub heartbeats_sent: u64,
    /// Heartbeat frames this rank received.
    pub heartbeats_received: u64,
    /// Peers demoted on hard socket evidence (EPIPE/ECONNRESET/reader EOF).
    pub hard_evidence: u64,
    /// Peers that crossed the adaptive silence threshold.
    pub suspicions: u64,
    /// Newly-dead ranks observed across this rank's membership sweeps.
    pub deaths_detected: u64,
    /// Restart-from-checkpoint rejoins this rank performed.
    pub rejoins: u64,
}

/// Byte length of the fixed [`LivenessStats`] wire encoding.
pub const LIVENESS_STATS_LEN: usize = 6 * 8;

impl LivenessStats {
    /// Accumulates `other` into `self` (cluster-wide totals).
    pub fn add(&mut self, other: &LivenessStats) {
        self.heartbeats_sent += other.heartbeats_sent;
        self.heartbeats_received += other.heartbeats_received;
        self.hard_evidence += other.hard_evidence;
        self.suspicions += other.suspicions;
        self.deaths_detected += other.deaths_detected;
        self.rejoins += other.rejoins;
    }

    /// Fixed-size wire encoding (six little-endian `u64`s) for the socket
    /// backend's RESULT frame.
    pub fn to_bytes(&self) -> [u8; LIVENESS_STATS_LEN] {
        let mut out = [0u8; LIVENESS_STATS_LEN];
        for (i, v) in [
            self.heartbeats_sent,
            self.heartbeats_received,
            self.hard_evidence,
            self.suspicions,
            self.deaths_detected,
            self.rejoins,
        ]
        .iter()
        .enumerate()
        {
            out[i * 8..i * 8 + 8].copy_from_slice(&v.to_le_bytes());
        }
        out
    }

    /// Inverse of [`LivenessStats::to_bytes`]; `None` on a short buffer.
    pub fn from_bytes(bytes: &[u8]) -> Option<LivenessStats> {
        if bytes.len() < LIVENESS_STATS_LEN {
            return None;
        }
        let word = |i: usize| {
            let mut b = [0u8; 8];
            b.copy_from_slice(&bytes[i * 8..i * 8 + 8]);
            u64::from_le_bytes(b)
        };
        Some(LivenessStats {
            heartbeats_sent: word(0),
            heartbeats_received: word(1),
            hard_evidence: word(2),
            suspicions: word(3),
            deaths_detected: word(4),
            rejoins: word(5),
        })
    }
}

/// One peer's observed arrival rhythm.
#[derive(Debug, Clone, Copy)]
struct PeerHealth {
    last_seen: Instant,
    /// EWMA of the inter-arrival gap, in seconds.
    mean_s: f64,
    /// EWMA of the squared deviation, in seconds².
    var_s2: f64,
    samples: u64,
    suspected: bool,
}

struct BoardInner {
    peers: Vec<PeerHealth>,
    hard_dead: BTreeSet<usize>,
    /// Bumped by [`LivenessBoard::mark_rejoined`]: evidence gathered
    /// against a peer's dead predecessor (e.g. a reader thread's late EOF)
    /// carries the old incarnation and is discarded on arrival.
    incarnations: Vec<u64>,
    /// When the previous [`LivenessBoard::sweep_at`] ran. A sweep arriving
    /// after a gap longer than the suspicion cap means *this* process
    /// stalled (descheduled under load, or deep in a compute phase) — its
    /// reader threads may not have drained queued arrivals yet, so silence
    /// observed across the stall is not evidence.
    last_sweep: Instant,
}

/// Shared per-process failure-detector state for one transport endpoint.
///
/// Reader threads and the heartbeat thread hold clones of the `Arc`; the
/// transport itself polls [`LivenessBoard::confirmed_dead`] from
/// `detect_failures` sweeps.
pub struct LivenessBoard {
    rank: usize,
    floor: Duration,
    cap: Duration,
    inner: Mutex<BoardInner>,
    beats_sent: AtomicU64,
    beats_received: AtomicU64,
    hard_evidence: AtomicU64,
    suspicions: AtomicU64,
}

impl LivenessBoard {
    /// A fresh board for `rank` in a `size`-rank cluster, with thresholds
    /// seeded from `policy` (floor = [`FLOOR_PERIODS`] heartbeat periods,
    /// cap = [`RetryPolicy::suspicion_timeout`]).
    pub fn new(rank: usize, size: usize, policy: &RetryPolicy) -> Arc<LivenessBoard> {
        let now = Instant::now();
        Arc::new(LivenessBoard {
            rank,
            floor: policy.heartbeat_period() * FLOOR_PERIODS,
            cap: policy.suspicion_timeout(),
            inner: Mutex::new(BoardInner {
                peers: vec![
                    PeerHealth {
                        last_seen: now,
                        mean_s: 0.0,
                        var_s2: 0.0,
                        samples: 0,
                        suspected: false,
                    };
                    size
                ],
                hard_dead: BTreeSet::new(),
                incarnations: vec![0; size],
                last_sweep: now,
            }),
            beats_sent: AtomicU64::new(0),
            beats_received: AtomicU64::new(0),
            hard_evidence: AtomicU64::new(0),
            suspicions: AtomicU64::new(0),
        })
    }

    /// The rank this board belongs to.
    pub fn rank(&self) -> usize {
        self.rank
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BoardInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn note_alive_at(&self, peer: usize, now: Instant) {
        let mut inner = self.lock();
        let Some(h) = inner.peers.get_mut(peer) else {
            return;
        };
        let gap = now.saturating_duration_since(h.last_seen).as_secs_f64();
        (h.mean_s, h.var_s2, h.samples) = ewma_observe(h.mean_s, h.var_s2, h.samples, gap);
        h.last_seen = now;
        h.suspected = false;
    }

    /// Records a heartbeat arrival from `peer`.
    pub fn note_beat(&self, peer: usize) {
        self.beats_received.fetch_add(1, Ordering::Relaxed);
        obs::LIVENESS_HEARTBEATS_RECEIVED.incr();
        self.note_alive_at(peer, Instant::now());
    }

    /// Records any protocol frame from `peer` — data is at least as good
    /// evidence of life as a heartbeat.
    pub fn note_traffic(&self, peer: usize) {
        self.note_alive_at(peer, Instant::now());
    }

    /// Records that this rank transmitted one round of heartbeats covering
    /// `fanout` peers.
    pub fn note_beats_sent(&self, fanout: u64) {
        self.beats_sent.fetch_add(fanout, Ordering::Relaxed);
        obs::LIVENESS_HEARTBEATS_SENT.add(fanout);
    }

    /// Registers hard evidence that `peer` is dead. Returns `true` the
    /// first time (so callers can log once).
    pub fn mark_hard_dead(&self, peer: usize) -> bool {
        let fresh = self.lock().hard_dead.insert(peer);
        if fresh {
            self.hard_evidence.fetch_add(1, Ordering::Relaxed);
            obs::LIVENESS_HARD_EVIDENCE.incr();
        }
        fresh
    }

    /// The number of times `peer` has rejoined, used to version evidence.
    /// A reader thread records it at spawn and submits its eventual EOF
    /// via [`LivenessBoard::mark_hard_dead_as_of`].
    pub fn incarnation(&self, peer: usize) -> u64 {
        self.lock().incarnations.get(peer).copied().unwrap_or(0)
    }

    /// Like [`LivenessBoard::mark_hard_dead`], but the evidence is dropped
    /// if `peer` has rejoined since `incarnation` was observed — a reader
    /// thread's late EOF on a SIGKILLed predecessor's socket must not
    /// condemn the restarted successor.
    pub fn mark_hard_dead_as_of(&self, peer: usize, incarnation: u64) -> bool {
        let fresh = {
            let mut inner = self.lock();
            if inner.incarnations.get(peer).copied() != Some(incarnation) {
                return false;
            }
            inner.hard_dead.insert(peer)
        };
        if fresh {
            self.hard_evidence.fetch_add(1, Ordering::Relaxed);
            obs::LIVENESS_HARD_EVIDENCE.incr();
        }
        fresh
    }

    /// Reinstates a peer that restarted from checkpoint: hard evidence
    /// against its dead predecessor is cleared and its rhythm estimate
    /// starts over. Called by survivors while parked at the kill gate, so
    /// no detection sweep can race the rejoin.
    pub fn mark_rejoined(&self, peer: usize) {
        let mut inner = self.lock();
        inner.hard_dead.remove(&peer);
        if let Some(inc) = inner.incarnations.get_mut(peer) {
            *inc += 1;
        }
        if let Some(h) = inner.peers.get_mut(peer) {
            h.last_seen = Instant::now();
            h.mean_s = 0.0;
            h.var_s2 = 0.0;
            h.samples = 0;
            h.suspected = false;
        }
    }

    /// This peer's current adaptive silence threshold.
    fn threshold(&self, h: &PeerHealth) -> Duration {
        adaptive_threshold(h.mean_s, h.var_s2, h.samples, self.floor, self.cap)
    }

    /// Sweep at time `now`: peers with hard evidence, plus peers whose
    /// silence exceeds their adaptive threshold. Exposed with an explicit
    /// clock for unit tests; production callers use
    /// [`LivenessBoard::confirmed_dead`].
    ///
    /// Silence-based suspicion carries a local-pause guard (the classic
    /// phi-accrual false positive): if this sweep arrives more than the
    /// suspicion cap after the previous one, the *sweeper* stalled, and
    /// every silence clock is granted amnesty instead of burying — queued
    /// frames from perfectly live peers may still be sitting behind the
    /// descheduled reader threads. Hard evidence is unaffected, and a
    /// truly dead peer falls to the next sweep, one interval later.
    pub fn sweep_at(&self, now: Instant) -> BTreeSet<usize> {
        let mut inner = self.lock();
        let stalled = now.saturating_duration_since(inner.last_sweep) > self.cap;
        inner.last_sweep = now;
        let BoardInner {
            peers, hard_dead, ..
        } = &mut *inner;
        let mut dead = hard_dead.clone();
        for (peer, h) in peers.iter_mut().enumerate() {
            if peer == self.rank || dead.contains(&peer) {
                continue;
            }
            let silence = now.saturating_duration_since(h.last_seen);
            if silence > self.threshold(h) {
                if stalled {
                    h.last_seen = now;
                    continue;
                }
                if !h.suspected {
                    h.suspected = true;
                    self.suspicions.fetch_add(1, Ordering::Relaxed);
                    obs::LIVENESS_SUSPICIONS.incr();
                }
                dead.insert(peer);
            }
        }
        dead
    }

    /// Peers this board currently has evidence are dead.
    pub fn confirmed_dead(&self) -> BTreeSet<usize> {
        self.sweep_at(Instant::now())
    }

    /// Snapshot of the board's counters (detector-side fields only;
    /// `deaths_detected` / `rejoins` are counted above the seam).
    pub fn stats(&self) -> LivenessStats {
        LivenessStats {
            heartbeats_sent: self.beats_sent.load(Ordering::Relaxed),
            heartbeats_received: self.beats_received.load(Ordering::Relaxed),
            hard_evidence: self.hard_evidence.load(Ordering::Relaxed),
            suspicions: self.suspicions.load(Ordering::Relaxed),
            deaths_detected: 0,
            rejoins: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_policy() -> RetryPolicy {
        RetryPolicy {
            recv_timeout: Duration::from_millis(800),
            ..RetryPolicy::default()
        }
    }

    #[test]
    fn stats_codec_round_trips() {
        let stats = LivenessStats {
            heartbeats_sent: 1,
            heartbeats_received: 2,
            hard_evidence: 3,
            suspicions: 4,
            deaths_detected: 5,
            rejoins: 6,
        };
        let bytes = stats.to_bytes();
        assert_eq!(LivenessStats::from_bytes(&bytes), Some(stats));
        assert_eq!(LivenessStats::from_bytes(&bytes[..7]), None);
        let mut total = LivenessStats::default();
        total.add(&stats);
        total.add(&stats);
        assert_eq!(total.rejoins, 12);
    }

    #[test]
    fn hard_evidence_is_immediate_and_counted_once() {
        let board = LivenessBoard::new(0, 3, &quick_policy());
        assert!(board.confirmed_dead().is_empty());
        assert!(board.mark_hard_dead(2));
        assert!(!board.mark_hard_dead(2), "second report is not fresh");
        assert_eq!(board.confirmed_dead(), BTreeSet::from([2]));
        assert_eq!(board.stats().hard_evidence, 1);
        // A checkpoint-restart rejoin wipes the slate for that peer.
        board.mark_rejoined(2);
        assert!(board.confirmed_dead().is_empty());
    }

    #[test]
    fn stale_evidence_from_a_previous_incarnation_is_dropped() {
        let board = LivenessBoard::new(0, 3, &quick_policy());
        // A reader thread records the incarnation when it starts…
        let observed = board.incarnation(2);
        // …the peer dies, restarts, and is re-admitted before the reader
        // notices the EOF…
        board.mark_rejoined(2);
        // …so its late verdict must not condemn the successor.
        assert!(!board.mark_hard_dead_as_of(2, observed));
        assert!(board.confirmed_dead().is_empty());
        assert_eq!(board.stats().hard_evidence, 0);
        // Evidence carrying the current incarnation still lands.
        assert!(board.mark_hard_dead_as_of(2, board.incarnation(2)));
        assert_eq!(board.confirmed_dead(), BTreeSet::from([2]));
    }

    #[test]
    fn silence_beyond_cap_is_suspected_even_without_history() {
        let board = LivenessBoard::new(0, 2, &quick_policy());
        let cap = quick_policy().suspicion_timeout();
        let start = Instant::now();
        // Sweeps on a live cadence (each gap within the cap, so the
        // local-pause guard stays out of the way). Under the cap: still
        // innocent (no rhythm estimate yet).
        assert!(board.sweep_at(start + cap * 3 / 4).is_empty());
        let dead = board.sweep_at(start + cap * 3 / 2);
        assert_eq!(dead, BTreeSet::from([1]));
        assert_eq!(board.stats().suspicions, 1);
        // Suspicion is sticky across sweeps but counted once.
        board.sweep_at(start + cap * 2);
        assert_eq!(board.stats().suspicions, 1);
    }

    #[test]
    fn a_stalled_sweeper_grants_amnesty_instead_of_burying() {
        let policy = quick_policy();
        let board = LivenessBoard::new(0, 3, &policy);
        let cap = policy.suspicion_timeout();
        let start = Instant::now();
        board.mark_hard_dead(2);
        // A sweep arriving 4 caps after the previous one means *this*
        // process stalled: the observed silence is worthless (queued
        // frames may sit behind the descheduled reader threads), so the
        // silence clock restarts — but hard evidence still buries.
        assert_eq!(board.sweep_at(start + cap * 4), BTreeSet::from([2]));
        assert_eq!(board.stats().suspicions, 0);
        // On-time follow-up: the forgiven peer's clock was reset.
        assert_eq!(
            board.sweep_at(start + cap * 4 + cap / 2),
            BTreeSet::from([2])
        );
        // A further full window of real silence is judged normally.
        assert_eq!(board.sweep_at(start + cap * 11 / 2), BTreeSet::from([1, 2]));
        assert_eq!(board.stats().suspicions, 1);
    }

    #[test]
    fn steady_rhythm_tightens_the_threshold_and_traffic_resets_it() {
        let policy = quick_policy();
        let board = LivenessBoard::new(0, 2, &policy);
        let start = Instant::now();
        let period = policy.heartbeat_period();
        // A metronome peer: after enough samples the adaptive threshold is
        // far below the cap, so a few missed beats suffice.
        let mut t = start;
        for _ in 0..16 {
            t += period;
            board.note_alive_at(1, t);
        }
        let floor = period * FLOOR_PERIODS;
        assert!(board.sweep_at(t + floor / 2).is_empty());
        assert_eq!(board.sweep_at(t + floor * 2), BTreeSet::from([1]));
        // Fresh traffic rescinds pure-silence suspicion (unlike hard
        // evidence, which is terminal).
        board.note_alive_at(1, t + floor * 2);
        assert!(board.sweep_at(t + floor * 2 + period).is_empty());
        assert!(board.stats().heartbeats_sent == 0);
        board.note_beats_sent(3);
        board.note_beat(1);
        assert_eq!(board.stats().heartbeats_sent, 3);
        assert_eq!(board.stats().heartbeats_received, 1);
    }

    #[test]
    fn own_rank_is_never_suspected() {
        let policy = quick_policy();
        let board = LivenessBoard::new(1, 2, &policy);
        let cap = policy.suspicion_timeout();
        let start = Instant::now();
        // On-cadence sweeps (no stall amnesty) until the peer's silence
        // crosses the cap: the peer is buried, self never is.
        assert!(board.sweep_at(start + cap * 3 / 4).is_empty());
        let dead = board.sweep_at(start + cap * 3 / 2);
        assert_eq!(dead, BTreeSet::from([0]), "only the peer, never self");
    }
}
