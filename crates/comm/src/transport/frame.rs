//! Wire frame codec: the byte layout that crosses a [`super::Transport`].
//!
//! Everything below the reliability protocol is an *opaque, length-prefixed
//! byte frame*. This module owns the three layers of framing:
//!
//! 1. **Protocol frames** — what [`crate::cluster::CommWorld`] hands the
//!    transport: a `Data` frame (`kind | seq | attempt | payload`) or an
//!    `Ack` frame (`kind | seq | k`). The `attempt` / `k` indices exist so
//!    a [`super::fault::FaultTransport`] decorator can evaluate the
//!    fault plan's keyed hashes *statelessly* from the frame alone — the
//!    decision it reaches is bit-identical to the one the protocol layer
//!    computed when it scheduled the transmission.
//! 2. **Length prefix** — stream transports (Unix / TCP sockets) delimit
//!    frames with a little-endian `u32` byte count; message transports
//!    (in-process channels) are naturally delimited and skip it.
//! 3. **Epoch header** — *inside* a data payload, the membership layer
//!    prepends the sender's view epoch ([`encode_epoch`] /
//!    [`decode_epoch`]). This sits above the reliability protocol and
//!    below the application payload.
//!
//! Every decoder in this module returns a typed [`FrameDecodeError`]
//! (convertible to [`CommError::Decode`]) — truncated, corrupt, or
//! unknown-kind input must never panic. The property tests in
//! `crates/comm/tests/transport_frame_props.rs` pin that contract.

use crate::fault::CommError;

/// Frame kind tag for sequenced data.
pub const KIND_DATA: u8 = 0x01;
/// Frame kind tag for acknowledgements.
pub const KIND_ACK: u8 = 0x02;
/// Frame kind tag for liveness heartbeats. Heartbeats live *below* the
/// reliability protocol: backends with real silence (sockets) emit them on
/// a timer and consume them in their reader threads — they are never
/// sequenced, acked, fault-decorated, or surfaced to [`super::Transport`]
/// consumers.
pub const KIND_HEARTBEAT: u8 = 0x03;

/// Bytes of a data frame header: kind, `u64` seq, `u32` attempt.
pub const DATA_HEADER: usize = 1 + 8 + 4;
/// Exact byte length of an ack frame: kind, `u64` seq, `u64` ack index.
pub const ACK_FRAME_LEN: usize = 1 + 8 + 8;
/// Exact byte length of a heartbeat frame: kind, `u64` beat counter.
pub const HEARTBEAT_FRAME_LEN: usize = 1 + 8;
/// Byte length of the epoch header prepended to collective payloads.
pub const EPOCH_HEADER: usize = 8;

/// Upper bound a stream transport accepts for one length-prefixed frame.
/// A corrupt length prefix must surface as a decode error, not an
/// attempted multi-gigabyte allocation.
pub const MAX_FRAME_LEN: usize = 1 << 30;

/// A decoded protocol frame with an owned payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireFrame {
    /// Sequenced application bytes. `attempt` is the retransmission index
    /// of this physical copy (0 for the first transmission).
    Data {
        seq: u64,
        attempt: u32,
        payload: Vec<u8>,
    },
    /// Acknowledgement of a delivered data frame; `k` is the receiver's
    /// delivered-frame index for the in-flight sequence (the coordinate
    /// the fault plan keys ack drops on).
    Ack { seq: u64, k: u64 },
    /// A liveness beat; `beat` is the sender's monotone beat counter.
    Heartbeat { beat: u64 },
}

/// A decoded protocol frame borrowing its payload — used on the send path
/// (fault decoration) where the frame bytes stay owned by the caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireFrameView<'a> {
    Data {
        seq: u64,
        attempt: u32,
        payload: &'a [u8],
    },
    Ack {
        seq: u64,
        k: u64,
    },
    Heartbeat {
        beat: u64,
    },
}

/// Typed decode failure: the frame was `len` bytes where the layout
/// required at least (or exactly) `expected`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameDecodeError {
    /// Length of the undecodable input in bytes.
    pub len: usize,
    /// The size the decoder needed to make progress (header length for
    /// truncation, exact frame length for malformed acks, 1 for an
    /// unknown kind byte).
    pub expected: usize,
}

impl FrameDecodeError {
    /// Converts into the protocol-level [`CommError::Decode`], attributing
    /// the bad frame to `(rank, peer)`.
    pub fn into_comm_error(self, rank: usize, peer: usize) -> CommError {
        CommError::Decode {
            rank,
            peer,
            len: self.len,
            elem_size: self.expected,
        }
    }
}

impl std::fmt::Display for FrameDecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "undecodable {}-byte wire frame (layout requires {})",
            self.len, self.expected
        )
    }
}

impl std::error::Error for FrameDecodeError {}

#[inline]
fn read_u64(bytes: &[u8], at: usize) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&bytes[at..at + 8]);
    u64::from_le_bytes(b)
}

#[inline]
fn read_u32(bytes: &[u8], at: usize) -> u32 {
    let mut b = [0u8; 4];
    b.copy_from_slice(&bytes[at..at + 4]);
    u32::from_le_bytes(b)
}

/// Encodes a data frame into `buf` (cleared first). Reusing one buffer per
/// peer keeps the steady-state send path allocation-free.
pub fn encode_data_into(buf: &mut Vec<u8>, seq: u64, attempt: u32, payload: &[u8]) {
    buf.clear();
    buf.reserve(DATA_HEADER + payload.len());
    buf.push(KIND_DATA);
    buf.extend_from_slice(&seq.to_le_bytes());
    buf.extend_from_slice(&attempt.to_le_bytes());
    buf.extend_from_slice(payload);
}

/// Encodes a data frame into a fresh buffer.
pub fn encode_data(seq: u64, attempt: u32, payload: &[u8]) -> Vec<u8> {
    let mut buf = Vec::new();
    encode_data_into(&mut buf, seq, attempt, payload);
    buf
}

/// Encodes an ack frame.
pub fn encode_ack(seq: u64, k: u64) -> Vec<u8> {
    let mut buf = Vec::with_capacity(ACK_FRAME_LEN);
    buf.push(KIND_ACK);
    buf.extend_from_slice(&seq.to_le_bytes());
    buf.extend_from_slice(&k.to_le_bytes());
    buf
}

/// Encodes a heartbeat frame.
pub fn encode_heartbeat(beat: u64) -> Vec<u8> {
    let mut buf = Vec::with_capacity(HEARTBEAT_FRAME_LEN);
    buf.push(KIND_HEARTBEAT);
    buf.extend_from_slice(&beat.to_le_bytes());
    buf
}

/// Decodes a frame without copying the payload.
pub fn decode_view(frame: &[u8]) -> Result<WireFrameView<'_>, FrameDecodeError> {
    let Some(&kind) = frame.first() else {
        return Err(FrameDecodeError {
            len: 0,
            expected: 1,
        });
    };
    match kind {
        KIND_DATA => {
            if frame.len() < DATA_HEADER {
                return Err(FrameDecodeError {
                    len: frame.len(),
                    expected: DATA_HEADER,
                });
            }
            Ok(WireFrameView::Data {
                seq: read_u64(frame, 1),
                attempt: read_u32(frame, 9),
                payload: &frame[DATA_HEADER..],
            })
        }
        KIND_ACK => {
            if frame.len() != ACK_FRAME_LEN {
                return Err(FrameDecodeError {
                    len: frame.len(),
                    expected: ACK_FRAME_LEN,
                });
            }
            Ok(WireFrameView::Ack {
                seq: read_u64(frame, 1),
                k: read_u64(frame, 9),
            })
        }
        KIND_HEARTBEAT => {
            if frame.len() != HEARTBEAT_FRAME_LEN {
                return Err(FrameDecodeError {
                    len: frame.len(),
                    expected: HEARTBEAT_FRAME_LEN,
                });
            }
            Ok(WireFrameView::Heartbeat {
                beat: read_u64(frame, 1),
            })
        }
        _ => Err(FrameDecodeError {
            len: frame.len(),
            expected: 1,
        }),
    }
}

/// Decodes a frame, converting the buffer into the owned payload in place
/// (one `memmove`, no allocation).
pub fn decode_owned(mut frame: Vec<u8>) -> Result<WireFrame, FrameDecodeError> {
    match decode_view(&frame)? {
        WireFrameView::Data { seq, attempt, .. } => {
            frame.drain(..DATA_HEADER);
            Ok(WireFrame::Data {
                seq,
                attempt,
                payload: frame,
            })
        }
        WireFrameView::Ack { seq, k } => Ok(WireFrame::Ack { seq, k }),
        WireFrameView::Heartbeat { beat } => Ok(WireFrame::Heartbeat { beat }),
    }
}

/// Decodes a frame received from `peer`, mapping failures to the typed
/// protocol error.
pub fn decode_for(rank: usize, peer: usize, frame: Vec<u8>) -> Result<WireFrame, CommError> {
    decode_owned(frame).map_err(|e| e.into_comm_error(rank, peer))
}

/// Prepends the membership epoch to a collective payload.
pub fn encode_epoch(epoch: u64, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(EPOCH_HEADER + payload.len());
    out.extend_from_slice(&epoch.to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Splits an epoch-framed payload into `(epoch, payload)`.
pub fn decode_epoch(frame: &[u8]) -> Result<(u64, &[u8]), FrameDecodeError> {
    if frame.len() < EPOCH_HEADER {
        return Err(FrameDecodeError {
            len: frame.len(),
            expected: EPOCH_HEADER,
        });
    }
    Ok((read_u64(frame, 0), &frame[EPOCH_HEADER..]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_round_trip() {
        let payload = vec![7u8, 8, 9, 10];
        let bytes = encode_data(42, 3, &payload);
        assert_eq!(bytes.len(), DATA_HEADER + payload.len());
        match decode_owned(bytes).unwrap() {
            WireFrame::Data {
                seq,
                attempt,
                payload: p,
            } => {
                assert_eq!((seq, attempt), (42, 3));
                assert_eq!(p, payload);
            }
            other => panic!("decoded {other:?}"),
        }
    }

    #[test]
    fn ack_round_trip() {
        let bytes = encode_ack(7, 2);
        assert_eq!(bytes.len(), ACK_FRAME_LEN);
        assert_eq!(
            decode_owned(bytes).unwrap(),
            WireFrame::Ack { seq: 7, k: 2 }
        );
    }

    #[test]
    fn heartbeat_round_trip() {
        let bytes = encode_heartbeat(11);
        assert_eq!(bytes.len(), HEARTBEAT_FRAME_LEN);
        assert_eq!(
            decode_owned(bytes).unwrap(),
            WireFrame::Heartbeat { beat: 11 }
        );
        // Heartbeats are fixed-length: trailing garbage is corruption.
        let mut beat = encode_heartbeat(0);
        beat.push(0);
        assert_eq!(
            decode_view(&beat).unwrap_err(),
            FrameDecodeError {
                len: HEARTBEAT_FRAME_LEN + 1,
                expected: HEARTBEAT_FRAME_LEN
            }
        );
    }

    #[test]
    fn truncated_and_unknown_frames_are_typed_errors() {
        assert_eq!(
            decode_view(&[]).unwrap_err(),
            FrameDecodeError {
                len: 0,
                expected: 1
            }
        );
        assert_eq!(
            decode_view(&[KIND_DATA, 1, 2]).unwrap_err(),
            FrameDecodeError {
                len: 3,
                expected: DATA_HEADER
            }
        );
        // Acks are fixed-length: trailing garbage is corruption.
        let mut ack = encode_ack(1, 0);
        ack.push(0xFF);
        assert_eq!(
            decode_view(&ack).unwrap_err(),
            FrameDecodeError {
                len: ACK_FRAME_LEN + 1,
                expected: ACK_FRAME_LEN
            }
        );
        assert!(decode_view(&[0x77, 0, 0]).is_err(), "unknown kind byte");
    }

    #[test]
    fn decode_errors_map_to_comm_error() {
        let err = decode_for(1, 2, vec![KIND_DATA]).unwrap_err();
        assert_eq!(
            err,
            CommError::Decode {
                rank: 1,
                peer: 2,
                len: 1,
                elem_size: DATA_HEADER
            }
        );
    }

    #[test]
    fn epoch_header_round_trip() {
        let framed = encode_epoch(9, &[1, 2, 3]);
        let (epoch, payload) = decode_epoch(&framed).unwrap();
        assert_eq!(epoch, 9);
        assert_eq!(payload, &[1, 2, 3]);
        assert!(decode_epoch(&framed[..EPOCH_HEADER - 1]).is_err());
    }
}
