//! Reusable per-peer byte buffers for the stream-socket write path.
//!
//! Modeled on the `communication` / `bytes` split in timely-dataflow: the
//! transport assembles each outgoing frame (length prefix + frame bytes)
//! into a buffer checked out of a small freelist, hands it to the OS in one
//! `write_all`, and recycles it. Steady-state sends on a warm connection
//! therefore allocate nothing, whatever the frame rate — the same property
//! the in-process backend gets for free from ownership transfer.

/// A freelist of reusable byte buffers.
///
/// Buffers are recycled with their capacity intact, so the pool converges
/// on the workload's natural frame size after a handful of sends. The pool
/// is deliberately unbounded in buffer *size* but bounded in buffer
/// *count*: a transient burst can grow it to [`BufferPool::max_buffers`],
/// after which excess returns are simply dropped.
#[derive(Debug)]
pub struct BufferPool {
    free: Vec<Vec<u8>>,
    max_buffers: usize,
}

impl Default for BufferPool {
    fn default() -> Self {
        BufferPool::new(8)
    }
}

impl BufferPool {
    /// A pool retaining at most `max_buffers` idle buffers.
    pub fn new(max_buffers: usize) -> Self {
        BufferPool {
            free: Vec::new(),
            max_buffers,
        }
    }

    /// Checks out an empty buffer with at least `capacity` bytes reserved.
    /// Prefers the pooled buffer whose capacity fits best before growing
    /// anything.
    pub fn checkout(&mut self, capacity: usize) -> Vec<u8> {
        let best = self
            .free
            .iter()
            .enumerate()
            .filter(|(_, b)| b.capacity() >= capacity)
            .min_by_key(|(_, b)| b.capacity())
            .map(|(i, _)| i);
        let mut buf = match best {
            Some(i) => self.free.swap_remove(i),
            None => self.free.pop().unwrap_or_default(),
        };
        buf.clear();
        if buf.capacity() < capacity {
            buf.reserve(capacity - buf.capacity());
        }
        buf
    }

    /// Returns a buffer to the freelist (contents discarded).
    pub fn recycle(&mut self, mut buf: Vec<u8>) {
        if self.free.len() < self.max_buffers && buf.capacity() > 0 {
            buf.clear();
            self.free.push(buf);
        }
    }

    /// Number of idle buffers currently pooled.
    pub fn idle(&self) -> usize {
        self.free.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkout_reuses_recycled_capacity() {
        let mut pool = BufferPool::default();
        let mut a = pool.checkout(1024);
        a.extend_from_slice(&[1; 1024]);
        let cap = a.capacity();
        pool.recycle(a);
        assert_eq!(pool.idle(), 1);
        let b = pool.checkout(512);
        assert!(b.is_empty(), "recycled buffers come back cleared");
        assert_eq!(b.capacity(), cap, "the pooled buffer was reused");
        assert_eq!(pool.idle(), 0);
    }

    #[test]
    fn prefers_best_fitting_buffer() {
        let mut pool = BufferPool::default();
        let small = pool.checkout(64);
        let big = pool.checkout(4096);
        let (small_cap, big_cap) = (small.capacity(), big.capacity());
        pool.recycle(big);
        pool.recycle(small);
        let got = pool.checkout(32);
        assert_eq!(got.capacity(), small_cap, "smallest sufficient buffer");
        let got = pool.checkout(2048);
        assert_eq!(got.capacity(), big_cap);
    }

    #[test]
    fn pool_size_is_bounded() {
        let mut pool = BufferPool::new(2);
        for _ in 0..5 {
            pool.recycle(Vec::with_capacity(16));
        }
        assert_eq!(pool.idle(), 2, "excess returns are dropped");
        // Empty-capacity buffers are not worth pooling.
        pool.recycle(Vec::new());
        assert_eq!(pool.idle(), 2);
    }
}
