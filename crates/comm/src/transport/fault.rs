//! Fault injection as a transport decorator.
//!
//! [`FaultTransport`] wraps any [`Transport`] and perturbs the frames that
//! cross it according to a seed-keyed [`FaultPlan`]: data frames can be
//! dropped or duplicated, acks can be dropped, and first transmissions can
//! be delayed. The decorator is **stateless**: every decision is recomputed
//! from the frame's own wire coordinates (`seq` and `attempt` ride in every
//! data frame, the ack index `k` in every ack — see [`super::frame`]) via
//! the same pure keyed hashes the reliability protocol evaluates when it
//! schedules transmissions. Protocol and decorator therefore always agree
//! on each frame's fate, on any backend, under any thread interleaving —
//! the invariant that keeps retransmit/duplicate/timeout counters exact
//! functions of the seed.
//!
//! The decorator only ever *suppresses or repeats* forwarding; all
//! accounting (`CommStats`, obs counters) stays above the seam in
//! `CommWorld`, which computes the identical fates itself. An optional
//! [`FaultEventLog`] records each injected fault for the decorator
//! equivalence tests (`crates/comm/tests/decorator_equivalence.rs`).

use std::sync::{Arc, Mutex};
use std::time::Duration;

use std::collections::BTreeSet;

use super::frame::{decode_view, WireFrameView};
use super::liveness::LivenessStats;
use super::{PointOutcome, RecvOutcome, Transport};
use crate::fault::{CommError, FaultPlan};

/// One injected fault, identified by its wire coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultEvent {
    /// Data frame `(src → dst, seq)` attempt `attempt` was lost in flight.
    DropData {
        src: usize,
        dst: usize,
        seq: u64,
        attempt: u32,
    },
    /// Data frame `(src → dst, seq)` attempt `attempt` was delivered twice.
    DuplicateData {
        src: usize,
        dst: usize,
        seq: u64,
        attempt: u32,
    },
    /// The `k`-th ack for data `(src → dst, seq)` was lost on its way back.
    DropAck {
        src: usize,
        dst: usize,
        seq: u64,
        k: u64,
    },
    /// Logical send `(src → dst, seq)` was held back by `units` delay steps
    /// before its first transmission.
    Delay {
        src: usize,
        dst: usize,
        seq: u64,
        units: u32,
    },
}

/// A shared, thread-safe record of the faults a run injected.
///
/// Rank threads append concurrently, so the in-memory order is scheduling
/// noise; [`FaultEventLog::sorted`] returns the canonical order (by wire
/// coordinates), which *is* deterministic for a given seed.
#[derive(Debug, Default)]
pub struct FaultEventLog {
    events: Mutex<Vec<FaultEvent>>,
}

impl FaultEventLog {
    /// An empty shared log.
    pub fn new() -> Arc<Self> {
        Arc::new(FaultEventLog::default())
    }

    fn record(&self, event: FaultEvent) {
        self.events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(event);
    }

    /// All recorded events in canonical (coordinate) order.
    pub fn sorted(&self) -> Vec<FaultEvent> {
        let mut events = self
            .events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone();
        events.sort();
        events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Whether no fault fired.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A [`Transport`] decorator injecting the faults a [`FaultPlan`] dictates.
pub struct FaultTransport<T: Transport> {
    inner: T,
    plan: Arc<FaultPlan>,
    log: Option<Arc<FaultEventLog>>,
}

impl<T: Transport> FaultTransport<T> {
    /// Wraps `inner` under `plan`.
    pub fn new(inner: T, plan: Arc<FaultPlan>) -> Self {
        FaultTransport {
            inner,
            plan,
            log: None,
        }
    }

    /// Wraps `inner` under `plan`, recording every injected fault in `log`.
    pub fn with_log(inner: T, plan: Arc<FaultPlan>, log: Arc<FaultEventLog>) -> Self {
        FaultTransport {
            inner,
            plan,
            log: Some(log),
        }
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &T {
        &self.inner
    }

    fn note(&self, event: FaultEvent) {
        if let Some(log) = &self.log {
            log.record(event);
        }
    }
}

impl<T: Transport> Transport for FaultTransport<T> {
    fn rank(&self) -> usize {
        self.inner.rank()
    }

    fn size(&self) -> usize {
        self.inner.size()
    }

    fn send_frame(&mut self, to: usize, frame: Vec<u8>) -> Result<(), CommError> {
        let src = self.inner.rank();
        match decode_view(&frame) {
            Ok(WireFrameView::Data { seq, attempt, .. }) => {
                if attempt == 0 {
                    // The sender-side delay is keyed per logical send, so it
                    // applies once, before the first transmission.
                    let units = self.plan.delay_units(src, to, seq);
                    if units > 0 {
                        self.note(FaultEvent::Delay {
                            src,
                            dst: to,
                            seq,
                            units,
                        });
                        std::thread::sleep(self.plan.delay_unit * units);
                    }
                }
                if self.plan.drops_data(src, to, seq, attempt) {
                    self.note(FaultEvent::DropData {
                        src,
                        dst: to,
                        seq,
                        attempt,
                    });
                    return Ok(()); // lost in flight
                }
                if self.plan.duplicates_data(src, to, seq, attempt) {
                    self.note(FaultEvent::DuplicateData {
                        src,
                        dst: to,
                        seq,
                        attempt,
                    });
                    self.inner.send_frame(to, frame.clone())?;
                }
                self.inner.send_frame(to, frame)
            }
            Ok(WireFrameView::Ack { seq, k }) => {
                // An ack for data that travelled `to → src`; the plan keys
                // ack drops on the *data* direction.
                if self.plan.drops_ack(to, src, seq, k) {
                    self.note(FaultEvent::DropAck {
                        src: to,
                        dst: src,
                        seq,
                        k,
                    });
                    return Ok(());
                }
                self.inner.send_frame(to, frame)
            }
            // Heartbeats sit below the reliability protocol; perturbing
            // them would inject *detector* noise, not protocol faults.
            Ok(WireFrameView::Heartbeat { .. }) => self.inner.send_frame(to, frame),
            // Not a protocol frame this decorator understands: pass it
            // through untouched rather than guess at fault coordinates.
            Err(_) => self.inner.send_frame(to, frame),
        }
    }

    fn recv_frame(&mut self, timeout: Duration) -> Result<RecvOutcome, CommError> {
        self.inner.recv_frame(timeout)
    }

    fn try_recv_frame(&mut self) -> Result<RecvOutcome, CommError> {
        self.inner.try_recv_frame()
    }

    fn barrier(&mut self, timeout: Duration) -> Result<bool, CommError> {
        self.inner.barrier(timeout)
    }

    fn announce_done(&mut self) {
        self.inner.announce_done()
    }

    fn all_done(&self) -> bool {
        self.inner.all_done()
    }

    /// The kill injector. When the backend carries out plan deaths itself
    /// (socket: the coordinator SIGKILLs at the gate), the decorator stays
    /// out of the way; otherwise it replays the identical schedule
    /// in-process — a restarting victim crosses the point as
    /// [`PointOutcome::Rejoined`] (its thread state *is* the checkpoint it
    /// would reload), a permanent victim dies here with
    /// [`CommError::Killed`].
    fn protocol_point(&mut self, idx: u64) -> Result<PointOutcome, CommError> {
        if self.inner.kills_are_real() {
            return self.inner.protocol_point(idx);
        }
        let rank = self.inner.rank();
        match self.plan.kill_point(rank) {
            Some(point) if point == idx => {
                if self.plan.kill_restart {
                    Ok(PointOutcome::Rejoined)
                } else {
                    Err(CommError::Killed { rank, point })
                }
            }
            _ => self.inner.protocol_point(idx),
        }
    }

    fn kills_are_real(&self) -> bool {
        self.inner.kills_are_real()
    }

    fn confirmed_dead(&self) -> BTreeSet<usize> {
        self.inner.confirmed_dead()
    }

    fn depart(&mut self) {
        self.inner.depart()
    }

    fn liveness_stats(&self) -> LivenessStats {
        self.inner.liveness_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::super::frame::{encode_ack, encode_data};
    use super::super::inproc;
    use super::*;

    fn pair(
        plan: FaultPlan,
        log: Arc<FaultEventLog>,
    ) -> (
        FaultTransport<inproc::InProcTransport>,
        inproc::InProcTransport,
    ) {
        let mut eps = inproc::fabric(2, 2);
        let receiver = eps.pop().expect("rank 1 endpoint");
        let sender = eps.pop().expect("rank 0 endpoint");
        (
            FaultTransport::with_log(sender, Arc::new(plan), log),
            receiver,
        )
    }

    #[test]
    fn certain_drop_suppresses_the_frame_and_logs_it() {
        let log = FaultEventLog::new();
        let (mut tx, mut rx) = pair(FaultPlan::new(1).with_drop(1.0), log.clone());
        tx.send_frame(1, encode_data(0, 0, &[5, 6])).unwrap();
        assert_eq!(rx.try_recv_frame().unwrap(), RecvOutcome::Idle);
        assert_eq!(
            log.sorted(),
            vec![FaultEvent::DropData {
                src: 0,
                dst: 1,
                seq: 0,
                attempt: 0
            }]
        );
    }

    #[test]
    fn duplication_forwards_two_copies() {
        // Find an attempt the seed duplicates so the test is deterministic.
        let plan = FaultPlan::new(2).with_duplicates(1.0);
        let log = FaultEventLog::new();
        let (mut tx, mut rx) = pair(plan, log.clone());
        tx.send_frame(1, encode_data(3, 1, &[9])).unwrap();
        let frame = encode_data(3, 1, &[9]);
        for _ in 0..2 {
            assert_eq!(
                rx.recv_frame(Duration::from_secs(1)).unwrap(),
                RecvOutcome::Frame(0, frame.clone())
            );
        }
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn ack_drops_key_on_the_data_direction() {
        let plan = FaultPlan::new(3).with_drop(0.0);
        let mut plan = plan;
        plan.ack_drop_prob = 1.0;
        let log = FaultEventLog::new();
        // rank 0 sends the *ack* (it received data from rank 1).
        let (mut tx, mut rx) = pair(plan, log.clone());
        tx.send_frame(1, encode_ack(7, 0)).unwrap();
        assert_eq!(rx.try_recv_frame().unwrap(), RecvOutcome::Idle);
        assert_eq!(
            log.sorted(),
            vec![FaultEvent::DropAck {
                src: 1, // the data sender, not the ack sender
                dst: 0,
                seq: 7,
                k: 0
            }]
        );
    }

    #[test]
    fn kill_injector_replays_the_schedule() {
        let plan = FaultPlan::new(5).with_kill(0, 2);
        let (mut tx, _rx) = pair(plan.clone(), FaultEventLog::new());
        assert_eq!(tx.protocol_point(0).unwrap(), PointOutcome::Proceed);
        assert_eq!(tx.protocol_point(1).unwrap(), PointOutcome::Proceed);
        assert_eq!(
            tx.protocol_point(2).unwrap_err(),
            CommError::Killed { rank: 0, point: 2 }
        );
        // With restart, the same point is a rejoin instead of a death.
        let (mut tx, _rx) = pair(plan.with_restart(), FaultEventLog::new());
        assert_eq!(tx.protocol_point(2).unwrap(), PointOutcome::Rejoined);
        // Heartbeats pass through undecorated even under certain drop.
        let log = FaultEventLog::new();
        let (mut tx, mut rx) = pair(FaultPlan::new(1).with_drop(1.0), log.clone());
        tx.send_frame(1, super::super::frame::encode_heartbeat(4))
            .unwrap();
        assert!(matches!(
            rx.recv_frame(Duration::from_secs(1)).unwrap(),
            RecvOutcome::Frame(0, _)
        ));
        assert!(log.is_empty());
    }

    #[test]
    fn inert_plan_passes_everything_through() {
        let log = FaultEventLog::new();
        let (mut tx, mut rx) = pair(FaultPlan::none(), log.clone());
        for seq in 0..16 {
            tx.send_frame(1, encode_data(seq, 0, &[seq as u8])).unwrap();
        }
        for seq in 0..16 {
            assert_eq!(
                rx.recv_frame(Duration::from_secs(1)).unwrap(),
                RecvOutcome::Frame(0, encode_data(seq, 0, &[seq as u8]))
            );
        }
        assert!(log.is_empty());
    }
}
