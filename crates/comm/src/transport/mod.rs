//! The pluggable transport seam beneath [`crate::cluster::CommWorld`].
//!
//! Everything above this seam — the epoch/ack/retry reliability protocol,
//! membership, and `CommStats` accounting — is backend-agnostic: it speaks
//! in opaque byte frames (see [`frame`]) and asks the [`Transport`] only to
//! move them. Two backends ship:
//!
//! * [`inproc::InProcTransport`] — the original thread-per-rank simulator:
//!   crossbeam channels, a shared generation barrier, and an atomic
//!   done-counter for the end-of-run drain.
//! * [`socket::SocketTransport`] — ranks as real OS processes over a full
//!   mesh of Unix-domain (or, behind the `tcp` feature, TCP-loopback)
//!   stream sockets, with a parent coordinator process standing in for the
//!   shared barrier/done state.
//!
//! Fault injection is a *decorator* ([`fault::FaultTransport`]) rather than
//! backend logic: the same seed-keyed [`crate::fault::FaultPlan`] drops,
//! duplicates, and delays frames identically over either backend, which is
//! what makes the backend-parameterized conformance suite
//! (`tests/transport_conformance.rs`) able to demand bit-identical results
//! and exactly equal counters from both.
//!
//! # What deliberately stays above the seam
//!
//! Collectives (alltoall / allgather and their converged variants) are
//! *composed* from point-to-point frames by `CommWorld`, not delegated to
//! the backend. A backend-native alltoall would bypass the per-frame fault
//! decorator and the physical-traffic accounting, breaking the "counters
//! are a pure function of the seed" invariant the chaos suites replay on.
//! The trait therefore stays minimal on purpose: frames in, frames out,
//! plus the two pieces of run-global state (barrier, done-set) that need a
//! backend-specific rendezvous.

pub mod fault;
pub mod frame;
pub mod inproc;
pub mod pool;
pub mod socket;

use std::time::Duration;

use crate::fault::CommError;

/// What a receive attempt produced.
#[derive(Debug, PartialEq, Eq)]
pub enum RecvOutcome {
    /// A frame from the given source rank.
    Frame(usize, Vec<u8>),
    /// Nothing arrived within the wait budget; the caller's deadline
    /// logic decides whether to keep waiting.
    Idle,
    /// Every peer endpoint is gone; nothing will ever arrive again.
    Closed,
}

/// A byte-frame mover connecting one rank to its peers.
///
/// Implementations must preserve per-(src, dst) FIFO order for the frames
/// they deliver — the reliability protocol's receiver-side dedup counts on
/// it — but may drop or duplicate frames (that is exactly what
/// [`fault::FaultTransport`] does). Frames are opaque: a transport never
/// inspects payload bytes, only the decorator does.
pub trait Transport: Send {
    /// This endpoint's rank.
    fn rank(&self) -> usize;

    /// Total number of ranks in the cluster (including crashed ones).
    fn size(&self) -> usize;

    /// Queues `frame` for delivery to `to`. Must not block on the
    /// receiver making progress (buffered channels / OS socket buffers).
    fn send_frame(&mut self, to: usize, frame: Vec<u8>) -> Result<(), CommError>;

    /// Waits up to `timeout` for the next frame from any peer.
    fn recv_frame(&mut self, timeout: Duration) -> Result<RecvOutcome, CommError>;

    /// Non-blocking receive: returns [`RecvOutcome::Idle`] immediately if
    /// nothing is queued.
    fn try_recv_frame(&mut self) -> Result<RecvOutcome, CommError>;

    /// Rendezvous of all live ranks. Returns `Ok(false)` if the barrier
    /// did not complete within `timeout` (this rank's arrival must then be
    /// withdrawn so the barrier stays usable).
    fn barrier(&mut self, timeout: Duration) -> Result<bool, CommError>;

    /// Marks this rank's run closure as returned; the end-of-run drain
    /// uses [`Transport::all_done`] to know when straggler retransmissions
    /// can no longer appear.
    fn announce_done(&mut self);

    /// Whether every live rank has announced done.
    fn all_done(&self) -> bool;
}
