//! The pluggable transport seam beneath [`crate::cluster::CommWorld`].
//!
//! Everything above this seam — the epoch/ack/retry reliability protocol,
//! membership, and `CommStats` accounting — is backend-agnostic: it speaks
//! in opaque byte frames (see [`frame`]) and asks the [`Transport`] only to
//! move them. Two backends ship:
//!
//! * [`inproc::InProcTransport`] — the original thread-per-rank simulator:
//!   crossbeam channels, a shared generation barrier, and an atomic
//!   done-counter for the end-of-run drain.
//! * [`socket::SocketTransport`] — ranks as real OS processes over a full
//!   mesh of Unix-domain (or, behind the `tcp` feature, TCP-loopback)
//!   stream sockets, with a parent coordinator process standing in for the
//!   shared barrier/done state.
//!
//! Fault injection is a *decorator* ([`fault::FaultTransport`]) rather than
//! backend logic: the same seed-keyed [`crate::fault::FaultPlan`] drops,
//! duplicates, and delays frames identically over either backend, which is
//! what makes the backend-parameterized conformance suite
//! (`tests/transport_conformance.rs`) able to demand bit-identical results
//! and exactly equal counters from both.
//!
//! # What deliberately stays above the seam
//!
//! Collectives (alltoall / allgather and their converged variants) are
//! *composed* from point-to-point frames by `CommWorld`, not delegated to
//! the backend. A backend-native alltoall would bypass the per-frame fault
//! decorator and the physical-traffic accounting, breaking the "counters
//! are a pure function of the seed" invariant the chaos suites replay on.
//! The trait therefore stays minimal on purpose: frames in, frames out,
//! plus the two pieces of run-global state (barrier, done-set) that need a
//! backend-specific rendezvous.

pub mod fault;
pub mod frame;
pub mod inproc;
pub mod liveness;
pub mod pool;
pub mod socket;

use std::collections::BTreeSet;
use std::time::Duration;

use crate::fault::CommError;
use liveness::LivenessStats;

/// What a receive attempt produced.
#[derive(Debug, PartialEq, Eq)]
pub enum RecvOutcome {
    /// A frame from the given source rank.
    Frame(usize, Vec<u8>),
    /// Nothing arrived within the wait budget; the caller's deadline
    /// logic decides whether to keep waiting.
    Idle,
    /// Every peer endpoint is gone; nothing will ever arrive again.
    Closed,
}

/// What crossing a [`Transport::protocol_point`] produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PointOutcome {
    /// Carry on; nothing noteworthy happened at this point.
    Proceed,
    /// This rank is a kill victim that just restarted from its checkpoint
    /// (the socket rejoiner's first gate; the in-process injector's
    /// simulated restart, whose thread state *is* the checkpoint).
    Rejoined,
}

/// A byte-frame mover connecting one rank to its peers.
///
/// Implementations must preserve per-(src, dst) FIFO order for the frames
/// they deliver — the reliability protocol's receiver-side dedup counts on
/// it — but may drop or duplicate frames (that is exactly what
/// [`fault::FaultTransport`] does). Frames are opaque: a transport never
/// inspects payload bytes, only the decorator does.
pub trait Transport: Send {
    /// This endpoint's rank.
    fn rank(&self) -> usize;

    /// Total number of ranks in the cluster (including crashed ones).
    fn size(&self) -> usize;

    /// Queues `frame` for delivery to `to`. Must not block on the
    /// receiver making progress (buffered channels / OS socket buffers).
    fn send_frame(&mut self, to: usize, frame: Vec<u8>) -> Result<(), CommError>;

    /// Waits up to `timeout` for the next frame from any peer.
    fn recv_frame(&mut self, timeout: Duration) -> Result<RecvOutcome, CommError>;

    /// Non-blocking receive: returns [`RecvOutcome::Idle`] immediately if
    /// nothing is queued.
    fn try_recv_frame(&mut self) -> Result<RecvOutcome, CommError>;

    /// Rendezvous of all live ranks. Returns `Ok(false)` if the barrier
    /// did not complete within `timeout` (this rank's arrival must then be
    /// withdrawn so the barrier stays usable).
    fn barrier(&mut self, timeout: Duration) -> Result<bool, CommError>;

    /// Marks this rank's run closure as returned; the end-of-run drain
    /// uses [`Transport::all_done`] to know when straggler retransmissions
    /// can no longer appear.
    fn announce_done(&mut self);

    /// Whether every live rank has announced done.
    fn all_done(&self) -> bool;

    /// Crosses numbered protocol point `idx` — the seeded coordinates at
    /// which the kill-chaos machinery strikes. On the socket backend this
    /// is a real rendezvous with the coordinator (which may SIGKILL this
    /// very process instead of releasing it); on the in-process backend
    /// the [`fault::FaultTransport`] decorator replays the same death as
    /// [`CommError::Killed`]. The default is a free pass for backends (and
    /// workloads) that don't play kill chaos.
    fn protocol_point(&mut self, _idx: u64) -> Result<PointOutcome, CommError> {
        Ok(PointOutcome::Proceed)
    }

    /// Whether deaths scheduled by a fault plan are carried out by the
    /// backend itself (real SIGKILL of a real process) rather than
    /// simulated by the fault decorator.
    fn kills_are_real(&self) -> bool {
        false
    }

    /// Peers this backend has *observed* to be dead — hard socket evidence
    /// (EPIPE / ECONNRESET / reader EOF) or an overdue heartbeat, per the
    /// [`liveness::LivenessBoard`]. Monotone. The membership sweep
    /// ([`crate::cluster::CommWorld::detect_failures`]) unions this with
    /// the fault plan's ground truth, so unplanned deaths are detected
    /// from evidence alone.
    fn confirmed_dead(&self) -> BTreeSet<usize> {
        BTreeSet::new()
    }

    /// Withdraws this rank from the run's rendezvous state (barrier
    /// attendance, done-target) because it died mid-run. Called once, by
    /// the protocol layer, when this rank's own death is simulated; real
    /// processes need no bookkeeping — their exit is the withdrawal.
    fn depart(&mut self) {}

    /// This backend's liveness-detector counters (all zero for backends
    /// without real silence).
    fn liveness_stats(&self) -> LivenessStats {
        LivenessStats::default()
    }
}
