//! The socket backend: ranks as real OS processes over stream sockets.
//!
//! A run consists of one **coordinator** (the parent process, inside
//! [`run_socket_cluster`]) and one **child process per live rank**. The
//! coordinator re-executes the current test binary filtered down to a
//! child-entry test, which calls [`child_serve`] with a registry of named
//! workloads; everything a child needs — rank, cluster size, control-socket
//! address, workload name, and bit-exact [`FaultPlan`] / [`RetryPolicy`]
//! encodings — travels through `LCC_SOCKET_*` environment variables.
//!
//! Wiring:
//!
//! * **Data mesh** — a full mesh of Unix-domain stream sockets (TCP
//!   loopback behind the `tcp` feature): rank `r` listens, connects to
//!   every live rank `s < r`, and accepts from every live rank `s > r`.
//!   Each connection opens with a handshake (`magic, version, rank`) so
//!   the acceptor knows who it is talking to. Frames are length-prefixed
//!   ([`frame::MAX_FRAME_LEN`] guards corrupt prefixes); a reader thread
//!   per peer funnels them into one queue, which keeps OS socket buffers
//!   drained independently of protocol state (no flow-control deadlock).
//!   Outgoing frames are assembled in per-peer [`BufferPool`] buffers, so
//!   warm connections send without allocating.
//! * **Control channel** — each child keeps one connection to the
//!   coordinator, which stands in for the shared state the in-process
//!   backend gets from `Arc`s: barrier rendezvous (`BARRIER_ENTER` /
//!   `BARRIER_RELEASE`), the end-of-run done-set (`DONE` / `ALL_DONE`),
//!   address exchange (`HELLO` / `START`), and result delivery (`RESULT`
//!   carries the workload's bytes plus the rank's [`CommStatsSnapshot`]).
//!
//! Because every `CommStats` counter is an exact function of the fault
//! seed, summing the per-process snapshots reproduces the totals a
//! shared-atomics in-process run records — the property the conformance
//! suite (`tests/transport_conformance.rs`) asserts as exact equality.

use std::collections::BTreeMap;
use std::io::{self, Read, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError, TryRecvError};
use std::sync::Arc;
use std::time::{Duration, Instant};

use super::fault::FaultTransport;
use super::frame::MAX_FRAME_LEN;
use super::pool::BufferPool;
use super::{RecvOutcome, Transport};
use crate::cluster::{CommStats, CommStatsSnapshot, CommWorld};
use crate::fault::{CommError, FaultPlan, RetryPolicy};

/// Handshake magic opening every data-mesh connection: "LCCT".
const HANDSHAKE_MAGIC: u32 = 0x4C43_4354;
/// Wire-protocol version carried in the handshake.
const WIRE_VERSION: u8 = 1;

// Control-channel message kinds.
const CTL_HELLO: u8 = 0x10;
const CTL_START: u8 = 0x11;
const CTL_BARRIER_ENTER: u8 = 0x12;
const CTL_BARRIER_RELEASE: u8 = 0x13;
const CTL_DONE: u8 = 0x14;
const CTL_ALL_DONE: u8 = 0x15;
const CTL_RESULT: u8 = 0x16;

/// Hard ceiling on how long the coordinator waits for children to report.
const COORDINATOR_DEADLINE: Duration = Duration::from_secs(180);

/// Environment variable marking a process as a socket-cluster child.
pub const CHILD_ENV: &str = "LCC_SOCKET_CHILD";

/// Address family for the data mesh.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SocketFamily {
    /// Unix-domain stream sockets (the default).
    Uds,
    /// TCP over 127.0.0.1 (feature-gated: the loopback mesh is slower and
    /// only exists to prove the framing works over a real network stack).
    #[cfg(feature = "tcp")]
    Tcp,
}

impl SocketFamily {
    fn as_env(&self) -> &'static str {
        match self {
            SocketFamily::Uds => "uds",
            #[cfg(feature = "tcp")]
            SocketFamily::Tcp => "tcp",
        }
    }

    fn from_env(s: &str) -> Result<SocketFamily, CommError> {
        match s {
            "uds" => Ok(SocketFamily::Uds),
            #[cfg(feature = "tcp")]
            "tcp" => Ok(SocketFamily::Tcp),
            other => Err(coord_err(format!("unknown socket family `{other}`"))),
        }
    }
}

/// A stream connection of either family.
enum Conn {
    Unix(UnixStream),
    #[cfg(feature = "tcp")]
    Tcp(std::net::TcpStream),
}

impl Conn {
    fn try_clone(&self) -> io::Result<Conn> {
        match self {
            Conn::Unix(s) => s.try_clone().map(Conn::Unix),
            #[cfg(feature = "tcp")]
            Conn::Tcp(s) => s.try_clone().map(Conn::Tcp),
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Unix(s) => s.read(buf),
            #[cfg(feature = "tcp")]
            Conn::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Unix(s) => s.write(buf),
            #[cfg(feature = "tcp")]
            Conn::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Unix(s) => s.flush(),
            #[cfg(feature = "tcp")]
            Conn::Tcp(s) => s.flush(),
        }
    }
}

/// A listener of either family.
enum MeshListener {
    Unix(UnixListener),
    #[cfg(feature = "tcp")]
    Tcp(std::net::TcpListener),
}

impl MeshListener {
    fn bind(
        family: SocketFamily,
        dir: &std::path::Path,
        rank: usize,
    ) -> io::Result<(MeshListener, String)> {
        match family {
            SocketFamily::Uds => {
                let path = dir.join(format!("data-{rank}.sock"));
                let listener = UnixListener::bind(&path)?;
                Ok((
                    MeshListener::Unix(listener),
                    path.to_string_lossy().into_owned(),
                ))
            }
            #[cfg(feature = "tcp")]
            SocketFamily::Tcp => {
                let listener = std::net::TcpListener::bind("127.0.0.1:0")?;
                let addr = listener.local_addr()?.to_string();
                Ok((MeshListener::Tcp(listener), addr))
            }
        }
    }

    fn accept(&self) -> io::Result<Conn> {
        match self {
            MeshListener::Unix(l) => l.accept().map(|(s, _)| Conn::Unix(s)),
            #[cfg(feature = "tcp")]
            MeshListener::Tcp(l) => l.accept().map(|(s, _)| {
                let _ = s.set_nodelay(true);
                Conn::Tcp(s)
            }),
        }
    }
}

fn connect(family: SocketFamily, addr: &str) -> io::Result<Conn> {
    match family {
        SocketFamily::Uds => UnixStream::connect(addr).map(Conn::Unix),
        #[cfg(feature = "tcp")]
        SocketFamily::Tcp => std::net::TcpStream::connect(addr).map(|s| {
            let _ = s.set_nodelay(true);
            Conn::Tcp(s)
        }),
    }
}

fn io_err(rank: usize, peer: usize, what: &str, e: io::Error) -> CommError {
    CommError::Transport {
        rank,
        peer,
        detail: format!("{what}: {e}"),
    }
}

fn coord_err(detail: String) -> CommError {
    CommError::Transport {
        rank: usize::MAX,
        peer: usize::MAX,
        detail,
    }
}

/// Writes one `[len u32 LE][payload]` frame, assembled in `buf` so the OS
/// sees a single contiguous write.
fn write_frame(conn: &mut Conn, buf: &mut Vec<u8>, payload: &[u8]) -> io::Result<()> {
    buf.clear();
    buf.reserve(4 + payload.len());
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(payload);
    conn.write_all(buf)
}

/// Reads one length-prefixed frame. `Ok(None)` is clean EOF at a frame
/// boundary; a corrupt or oversized length prefix is an error, never an
/// attempted giant allocation.
fn read_frame(conn: &mut Conn) -> io::Result<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    let mut filled = 0usize;
    while filled < 4 {
        match conn.read(&mut len[filled..]) {
            Ok(0) => {
                if filled == 0 {
                    return Ok(None);
                }
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "EOF inside a frame length prefix",
                ));
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_le_bytes(len) as usize;
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds MAX_FRAME_LEN"),
        ));
    }
    let mut payload = vec![0u8; len];
    conn.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// One rank's endpoint over the socket mesh.
pub struct SocketTransport {
    rank: usize,
    size: usize,
    /// Outgoing data connections, indexed by peer (None for self, crashed
    /// peers, and — on the acceptor side before the mesh is up — unmet
    /// peers).
    writers: Vec<Option<Conn>>,
    /// Per-peer write-assembly buffers.
    pools: Vec<BufferPool>,
    /// Incoming frames from every peer's reader thread.
    incoming: mpsc::Receiver<(usize, Vec<u8>)>,
    /// Control connection to the coordinator (writer half).
    ctl: Conn,
    ctl_buf: Vec<u8>,
    /// Barrier releases forwarded by the control reader thread.
    barrier_rx: mpsc::Receiver<()>,
    /// Set once the coordinator broadcasts `ALL_DONE`.
    all_done: Arc<AtomicBool>,
}

impl SocketTransport {
    fn ctl_send(&mut self, payload: &[u8]) -> Result<(), CommError> {
        let mut buf = std::mem::take(&mut self.ctl_buf);
        let res = write_frame(&mut self.ctl, &mut buf, payload);
        self.ctl_buf = buf;
        res.map_err(|e| io_err(self.rank, usize::MAX, "control write", e))
    }
}

impl Transport for SocketTransport {
    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.size
    }

    fn send_frame(&mut self, to: usize, frame: Vec<u8>) -> Result<(), CommError> {
        let rank = self.rank;
        let conn = match self.writers.get_mut(to) {
            Some(Some(conn)) => conn,
            _ => {
                return Err(CommError::Transport {
                    rank,
                    peer: to,
                    detail: "no data connection to peer".to_string(),
                })
            }
        };
        let mut buf = self.pools[to].checkout(4 + frame.len());
        let res = write_frame(conn, &mut buf, &frame);
        self.pools[to].recycle(buf);
        res.map_err(|e| io_err(rank, to, "data write", e))
    }

    fn recv_frame(&mut self, timeout: Duration) -> Result<RecvOutcome, CommError> {
        match self.incoming.recv_timeout(timeout) {
            Ok((src, frame)) => Ok(RecvOutcome::Frame(src, frame)),
            Err(RecvTimeoutError::Timeout) => Ok(RecvOutcome::Idle),
            Err(RecvTimeoutError::Disconnected) => Ok(RecvOutcome::Closed),
        }
    }

    fn try_recv_frame(&mut self) -> Result<RecvOutcome, CommError> {
        match self.incoming.try_recv() {
            Ok((src, frame)) => Ok(RecvOutcome::Frame(src, frame)),
            Err(TryRecvError::Empty) => Ok(RecvOutcome::Idle),
            Err(TryRecvError::Disconnected) => Ok(RecvOutcome::Closed),
        }
    }

    fn barrier(&mut self, timeout: Duration) -> Result<bool, CommError> {
        self.ctl_send(&[CTL_BARRIER_ENTER])?;
        match self.barrier_rx.recv_timeout(timeout) {
            Ok(()) => Ok(true),
            Err(RecvTimeoutError::Timeout) => Ok(false),
            Err(RecvTimeoutError::Disconnected) => Err(coord_err(
                "coordinator hung up during a barrier".to_string(),
            )),
        }
    }

    fn announce_done(&mut self) {
        // Best effort, like the in-process done counter: if the
        // coordinator is gone the drain falls back to its deadline.
        let _ = self.ctl_send(&[CTL_DONE]);
    }

    fn all_done(&self) -> bool {
        self.all_done.load(Ordering::SeqCst)
    }
}

// ---------------------------------------------------------------------------
// Child side
// ---------------------------------------------------------------------------

/// A named workload a child process can run: consumes the rank's
/// [`CommWorld`] (dropping it runs the end-of-run drain) and returns the
/// bytes to ship back to the coordinator.
pub type Workload = fn(CommWorld) -> Vec<u8>;

/// Whether this process is a socket-cluster child (spawned by
/// [`run_socket_cluster`]). The child-entry test uses this to be a no-op
/// in normal test runs.
pub fn is_child() -> bool {
    std::env::var_os(CHILD_ENV).is_some()
}

fn env_var(name: &str) -> Result<String, CommError> {
    std::env::var(name).map_err(|_| coord_err(format!("missing child env var {name}")))
}

/// Child-process entry point: wires this rank into the mesh, runs the
/// workload named by the environment, and reports the result and counter
/// snapshot to the coordinator. Call from a `#[test]` guarded by
/// [`is_child`]; see `tests/transport_conformance.rs`.
pub fn child_serve(registry: &[(&str, Workload)]) -> Result<(), CommError> {
    let rank: usize = env_var("LCC_SOCKET_RANK")?
        .parse()
        .map_err(|_| coord_err("bad LCC_SOCKET_RANK".to_string()))?;
    let size: usize = env_var("LCC_SOCKET_SIZE")?
        .parse()
        .map_err(|_| coord_err("bad LCC_SOCKET_SIZE".to_string()))?;
    let ctl_path = env_var("LCC_SOCKET_CTL")?;
    let family = SocketFamily::from_env(&env_var("LCC_SOCKET_FAMILY")?)?;
    let plan = Arc::new(FaultPlan::from_env_string(&env_var("LCC_SOCKET_PLAN")?)?);
    let retry = RetryPolicy::from_env_string(&env_var("LCC_SOCKET_RETRY")?)?;
    let workload_name = env_var("LCC_SOCKET_WORKLOAD")?;
    let workload = registry
        .iter()
        .find(|(name, _)| *name == workload_name)
        .map(|(_, f)| *f)
        .ok_or_else(|| coord_err(format!("workload `{workload_name}` not in child registry")))?;
    let obs_session = if std::env::var_os("LCC_SOCKET_OBS").is_some() {
        lcc_obs::ObsSession::start()
    } else {
        None
    };

    let dir = PathBuf::from(env_var("LCC_SOCKET_DIR")?);
    let (listener, my_addr) = MeshListener::bind(family, &dir, rank)
        .map_err(|e| io_err(rank, usize::MAX, "bind data listener", e))?;

    // Control channel up, introduce ourselves, learn everyone's address.
    let mut ctl = connect(SocketFamily::Uds, &ctl_path)
        .map_err(|e| io_err(rank, usize::MAX, "connect control socket", e))?;
    let mut hello = vec![CTL_HELLO];
    hello.extend_from_slice(&(rank as u32).to_le_bytes());
    hello.extend_from_slice(my_addr.as_bytes());
    let mut scratch = Vec::new();
    write_frame(&mut ctl, &mut scratch, &hello)
        .map_err(|e| io_err(rank, usize::MAX, "send HELLO", e))?;
    let start = read_frame(&mut ctl)
        .map_err(|e| io_err(rank, usize::MAX, "read START", e))?
        .ok_or_else(|| coord_err("coordinator closed before START".to_string()))?;
    let addrs = decode_start(&start)?;
    if addrs.len() != size {
        return Err(coord_err(format!(
            "START carried {} addresses for a {size}-rank cluster",
            addrs.len()
        )));
    }

    // Data mesh: connect down, accept up. Peers with no address (crashed
    // ranks) are skipped on both sides.
    let (frame_tx, frame_rx) = mpsc::channel::<(usize, Vec<u8>)>();
    let mut writers: Vec<Option<Conn>> = (0..size).map(|_| None).collect();
    for (peer, addr) in addrs.iter().enumerate().take(rank) {
        let Some(addr) = addr else { continue };
        let mut conn =
            connect(family, addr).map_err(|e| io_err(rank, peer, "connect to peer", e))?;
        let mut shake = Vec::with_capacity(9);
        shake.extend_from_slice(&HANDSHAKE_MAGIC.to_le_bytes());
        shake.push(WIRE_VERSION);
        shake.extend_from_slice(&(rank as u32).to_le_bytes());
        conn.write_all(&shake)
            .map_err(|e| io_err(rank, peer, "send handshake", e))?;
        spawn_reader(
            peer,
            conn.try_clone()
                .map_err(|e| io_err(rank, peer, "clone peer stream", e))?,
            frame_tx.clone(),
        );
        writers[peer] = Some(conn);
    }
    let accepts = addrs
        .iter()
        .enumerate()
        .skip(rank + 1)
        .filter(|(_, a)| a.is_some())
        .count();
    for _ in 0..accepts {
        let mut conn = listener
            .accept()
            .map_err(|e| io_err(rank, usize::MAX, "accept peer", e))?;
        let peer = read_handshake(rank, &mut conn)?;
        if peer <= rank || peer >= size {
            return Err(coord_err(format!(
                "rank {rank} accepted a handshake claiming rank {peer}"
            )));
        }
        spawn_reader(
            peer,
            conn.try_clone()
                .map_err(|e| io_err(rank, peer, "clone peer stream", e))?,
            frame_tx.clone(),
        );
        writers[peer] = Some(conn);
    }
    drop(frame_tx); // reader threads hold the remaining senders

    // Control reader: forwards barrier releases, latches ALL_DONE.
    let all_done = Arc::new(AtomicBool::new(false));
    let (barrier_tx, barrier_rx) = mpsc::channel::<()>();
    {
        let mut ctl_read = ctl
            .try_clone()
            .map_err(|e| io_err(rank, usize::MAX, "clone control stream", e))?;
        let all_done = Arc::clone(&all_done);
        std::thread::spawn(move || {
            while let Ok(Some(msg)) = read_frame(&mut ctl_read) {
                match msg.first() {
                    Some(&CTL_BARRIER_RELEASE) => {
                        if barrier_tx.send(()).is_err() {
                            break;
                        }
                    }
                    Some(&CTL_ALL_DONE) => all_done.store(true, Ordering::SeqCst),
                    _ => break,
                }
            }
        });
    }

    let transport = SocketTransport {
        rank,
        size,
        writers,
        pools: (0..size).map(|_| BufferPool::default()).collect(),
        incoming: frame_rx,
        ctl,
        ctl_buf: Vec::new(),
        barrier_rx,
        all_done,
    };
    let boxed: Box<dyn Transport> = if plan.is_active() {
        Box::new(FaultTransport::new(transport, Arc::clone(&plan)))
    } else {
        Box::new(transport)
    };

    lcc_obs::set_rank(Some(rank as u32));
    let stats = Arc::new(CommStats::default());
    let world = CommWorld::over(boxed, Arc::clone(&plan), retry, Arc::clone(&stats));
    let result = workload(world); // dropping the world runs the drain
    lcc_obs::set_rank(None);
    lcc_obs::set_epoch(0);
    let snapshot = stats.snapshot();

    if let Some(session) = obs_session {
        // The obs counters are incremented at the same call sites as
        // CommStats, and in this process the only rank is ours — the
        // totals must agree to the byte, exactly as in the in-process
        // obs_cluster suite.
        let report = session.finish();
        let counter = |name: &str| report.counter(name).unwrap_or(0);
        let pairs = [
            ("comm.bytes_logical", snapshot.bytes_sent),
            ("comm.messages_logical", snapshot.messages),
            ("comm.collective_rounds", snapshot.collective_rounds),
            ("comm.retransmits", snapshot.retransmits),
            ("comm.duplicates_suppressed", snapshot.duplicates_suppressed),
            ("comm.timeouts", snapshot.timeouts),
            ("comm.bytes_physical", snapshot.bytes_physical),
            ("comm.messages_physical", snapshot.messages_physical),
            ("comm.acks", snapshot.acks),
        ];
        for (name, want) in pairs {
            let got = counter(name);
            if got != want {
                return Err(coord_err(format!(
                    "rank {rank}: obs counter {name} = {got} but CommStats recorded {want}"
                )));
            }
        }
    }

    // RESULT: rank, stats snapshot, then the workload's bytes. Re-borrow
    // the control writer from the transport we boxed away? No — the world
    // consumed it. A fresh control connection keeps ownership simple.
    let mut ctl = connect(SocketFamily::Uds, &ctl_path)
        .map_err(|e| io_err(rank, usize::MAX, "reconnect control socket", e))?;
    let mut msg = Vec::with_capacity(1 + 4 + CommStatsSnapshot::WIRE_BYTES + result.len());
    msg.push(CTL_RESULT);
    msg.extend_from_slice(&(rank as u32).to_le_bytes());
    msg.extend_from_slice(&snapshot.to_bytes());
    msg.extend_from_slice(&result);
    write_frame(&mut ctl, &mut scratch, &msg)
        .map_err(|e| io_err(rank, usize::MAX, "send RESULT", e))?;
    Ok(())
}

fn spawn_reader(peer: usize, mut conn: Conn, tx: mpsc::Sender<(usize, Vec<u8>)>) {
    std::thread::spawn(move || {
        // EOF or any read error ends the stream; the protocol layer above
        // turns silence into typed timeouts.
        while let Ok(Some(frame)) = read_frame(&mut conn) {
            if tx.send((peer, frame)).is_err() {
                break;
            }
        }
    });
}

fn read_handshake(rank: usize, conn: &mut Conn) -> Result<usize, CommError> {
    let mut shake = [0u8; 9];
    conn.read_exact(&mut shake)
        .map_err(|e| io_err(rank, usize::MAX, "read handshake", e))?;
    let magic = u32::from_le_bytes([shake[0], shake[1], shake[2], shake[3]]);
    if magic != HANDSHAKE_MAGIC || shake[4] != WIRE_VERSION {
        return Err(coord_err(format!(
            "bad handshake on rank {rank}'s listener (magic {magic:#x}, version {})",
            shake[4]
        )));
    }
    Ok(u32::from_le_bytes([shake[5], shake[6], shake[7], shake[8]]) as usize)
}

fn decode_start(msg: &[u8]) -> Result<Vec<Option<String>>, CommError> {
    let err = || coord_err("malformed START frame".to_string());
    if msg.first() != Some(&CTL_START) {
        return Err(err());
    }
    let mut at = 1usize;
    let take = |at: &mut usize, n: usize| -> Result<Vec<u8>, CommError> {
        let end = at.checked_add(n).ok_or_else(err)?;
        if end > msg.len() {
            return Err(err());
        }
        let bytes = msg[*at..end].to_vec();
        *at = end;
        Ok(bytes)
    };
    let count_bytes = take(&mut at, 4)?;
    let count = u32::from_le_bytes([
        count_bytes[0],
        count_bytes[1],
        count_bytes[2],
        count_bytes[3],
    ]) as usize;
    let mut addrs = Vec::with_capacity(count);
    for _ in 0..count {
        let len_bytes = take(&mut at, 4)?;
        let len =
            u32::from_le_bytes([len_bytes[0], len_bytes[1], len_bytes[2], len_bytes[3]]) as usize;
        if len == 0 {
            addrs.push(None);
            continue;
        }
        let addr = take(&mut at, len)?;
        addrs.push(Some(String::from_utf8(addr).map_err(|_| err())?));
    }
    Ok(addrs)
}

fn encode_start(addrs: &[Option<String>]) -> Vec<u8> {
    let mut msg = vec![CTL_START];
    msg.extend_from_slice(&(addrs.len() as u32).to_le_bytes());
    for addr in addrs {
        match addr {
            Some(a) => {
                msg.extend_from_slice(&(a.len() as u32).to_le_bytes());
                msg.extend_from_slice(a.as_bytes());
            }
            None => msg.extend_from_slice(&0u32.to_le_bytes()),
        }
    }
    msg
}

// ---------------------------------------------------------------------------
// Coordinator side
// ---------------------------------------------------------------------------

/// Configuration for one socket-cluster run.
pub struct SocketClusterConfig<'a> {
    /// Total rank count (crashed ranks included).
    pub p: usize,
    /// Fault plan, replayed bit-identically inside every child.
    pub plan: FaultPlan,
    /// Protocol deadlines for the children.
    pub retry: RetryPolicy,
    /// Registry key of the workload every child runs.
    pub workload: &'a str,
    /// Data-mesh address family.
    pub family: SocketFamily,
    /// Name of the `#[test]` in the current binary that calls
    /// [`child_serve`] (the coordinator re-executes the binary filtered to
    /// exactly this test).
    pub child_test: &'a str,
    /// Start an [`lcc_obs::ObsSession`] inside each child and fail the
    /// child if its `comm.*` counters diverge from its `CommStats`.
    pub obs_in_children: bool,
}

/// What a socket-cluster run produced: one result slot per rank (`None`
/// for crashed ranks) and the sum of every child's counter snapshot.
#[derive(Debug)]
pub struct SocketRun {
    pub results: Vec<Option<Vec<u8>>>,
    pub stats: CommStatsSnapshot,
}

/// Monotonic run id so concurrent/consecutive runs in one process never
/// collide on a socket directory.
static RUN_SEQ: AtomicU64 = AtomicU64::new(0);

/// Runs `cfg.workload` on `cfg.p` ranks, **each rank a real OS process**,
/// communicating over a socket mesh. The calling process acts as the
/// coordinator; children re-execute the current binary (see
/// [`SocketClusterConfig::child_test`]).
pub fn run_socket_cluster(cfg: &SocketClusterConfig) -> Result<SocketRun, CommError> {
    assert!(cfg.p >= 1, "need at least one rank");
    let live = cfg.plan.live_count(cfg.p);
    assert!(live >= 1, "at least one rank must survive the fault plan");

    let seq = RUN_SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("lcc-sock-{}-{seq}", std::process::id()));
    std::fs::create_dir_all(&dir).map_err(|e| coord_err(format!("create socket dir: {e}")))?;
    let run = coordinate(cfg, live, &dir);
    let _ = std::fs::remove_dir_all(&dir);
    run
}

fn coordinate(
    cfg: &SocketClusterConfig,
    live: usize,
    dir: &std::path::Path,
) -> Result<SocketRun, CommError> {
    let ctl_path = dir.join("ctl.sock");
    let ctl_listener = UnixListener::bind(&ctl_path)
        .map_err(|e| coord_err(format!("bind control socket: {e}")))?;

    let exe = std::env::current_exe().map_err(|e| coord_err(format!("current_exe: {e}")))?;
    let mut children: Vec<(usize, Child)> = Vec::with_capacity(live);
    for rank in 0..cfg.p {
        if cfg.plan.is_crashed(rank) {
            continue; // crashed ranks never start
        }
        let mut cmd = Command::new(&exe);
        cmd.arg(cfg.child_test)
            .arg("--exact")
            .arg("--nocapture")
            .arg("--test-threads=1")
            .env(CHILD_ENV, "1")
            .env("LCC_SOCKET_RANK", rank.to_string())
            .env("LCC_SOCKET_SIZE", cfg.p.to_string())
            .env("LCC_SOCKET_CTL", &ctl_path)
            .env("LCC_SOCKET_DIR", dir)
            .env("LCC_SOCKET_FAMILY", cfg.family.as_env())
            .env("LCC_SOCKET_WORKLOAD", cfg.workload)
            .env("LCC_SOCKET_PLAN", cfg.plan.to_env_string())
            .env("LCC_SOCKET_RETRY", cfg.retry.to_env_string())
            .stdout(Stdio::null())
            .stderr(Stdio::inherit());
        if cfg.obs_in_children {
            cmd.env("LCC_SOCKET_OBS", "1");
        }
        let child = cmd
            .spawn()
            .map_err(|e| coord_err(format!("spawn rank {rank}: {e}")))?;
        children.push((rank, child));
    }

    let outcome = serve_control(cfg, live, &ctl_listener);
    // Whatever happened, never leave child processes behind.
    for (_, child) in &mut children {
        if outcome.is_err() {
            let _ = child.kill();
        }
        let _ = child.wait();
    }
    outcome
}

/// The coordinator's control loop: address exchange, then barrier/done
/// bookkeeping until every live rank has reported its RESULT.
fn serve_control(
    cfg: &SocketClusterConfig,
    live: usize,
    listener: &UnixListener,
) -> Result<SocketRun, CommError> {
    let deadline = Instant::now() + COORDINATOR_DEADLINE;
    let (msg_tx, msg_rx) = mpsc::channel::<(usize, Vec<u8>)>();

    // Phase 1: every live rank connects and says HELLO with its address.
    let mut conns: BTreeMap<usize, Conn> = BTreeMap::new();
    let mut addrs: Vec<Option<String>> = vec![None; cfg.p];
    listener
        .set_nonblocking(false)
        .map_err(|e| coord_err(format!("configure control listener: {e}")))?;
    while conns.len() < live {
        let (stream, _) = listener
            .accept()
            .map_err(|e| coord_err(format!("accept control connection: {e}")))?;
        let mut conn = Conn::Unix(stream);
        let hello = read_frame(&mut conn)
            .map_err(|e| coord_err(format!("read HELLO: {e}")))?
            .ok_or_else(|| coord_err("child closed before HELLO".to_string()))?;
        if hello.len() < 5 || hello[0] != CTL_HELLO {
            return Err(coord_err("malformed HELLO frame".to_string()));
        }
        let rank = u32::from_le_bytes([hello[1], hello[2], hello[3], hello[4]]) as usize;
        let addr = String::from_utf8(hello[5..].to_vec())
            .map_err(|_| coord_err("non-UTF-8 mesh address in HELLO".to_string()))?;
        if rank >= cfg.p || cfg.plan.is_crashed(rank) || conns.contains_key(&rank) {
            return Err(coord_err(format!("unexpected HELLO from rank {rank}")));
        }
        addrs[rank] = Some(addr);
        conns.insert(rank, conn);
        if Instant::now() > deadline {
            return Err(coord_err("timed out gathering HELLOs".to_string()));
        }
    }

    // Phase 2: broadcast the address table; children build the mesh.
    let start = encode_start(&addrs);
    let mut scratch = Vec::new();
    for (rank, conn) in conns.iter_mut() {
        write_frame(conn, &mut scratch, &start)
            .map_err(|e| coord_err(format!("send START to rank {rank}: {e}")))?;
    }

    // Phase 3: per-connection reader threads feed one message queue.
    let mut writers: BTreeMap<usize, Conn> = BTreeMap::new();
    for (rank, conn) in conns {
        let reader = conn
            .try_clone()
            .map_err(|e| coord_err(format!("clone control stream: {e}")))?;
        writers.insert(rank, conn);
        let tx = msg_tx.clone();
        std::thread::spawn(move || {
            let mut reader = reader;
            while let Ok(Some(msg)) = read_frame(&mut reader) {
                if tx.send((rank, msg)).is_err() {
                    break;
                }
            }
        });
    }
    // RESULT arrives on a fresh connection (the original's writer half is
    // owned by the transport inside the child); accept those lazily.
    listener
        .set_nonblocking(true)
        .map_err(|e| coord_err(format!("configure control listener: {e}")))?;

    let mut barrier_entered = 0usize;
    let mut done = 0usize;
    let mut all_done_sent = false;
    let mut results: Vec<Option<Vec<u8>>> = vec![None; cfg.p];
    let mut stats_sum = CommStatsSnapshot::default();
    let mut reported = 0usize;
    while reported < live {
        if Instant::now() > deadline {
            return Err(coord_err(format!(
                "timed out waiting for RESULTs ({reported}/{live} reported)"
            )));
        }
        // Late connections carry RESULT frames.
        match listener.accept() {
            Ok((stream, _)) => {
                let tx = msg_tx.clone();
                std::thread::spawn(move || {
                    let mut conn = Conn::Unix(stream);
                    while let Ok(Some(msg)) = read_frame(&mut conn) {
                        if tx.send((usize::MAX, msg)).is_err() {
                            break;
                        }
                    }
                });
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {}
            Err(e) => return Err(coord_err(format!("accept result connection: {e}"))),
        }
        let (from, msg) = match msg_rx.recv_timeout(Duration::from_millis(20)) {
            Ok(m) => m,
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => {
                return Err(coord_err("all control readers exited".to_string()))
            }
        };
        match msg.first() {
            Some(&CTL_BARRIER_ENTER) => {
                barrier_entered += 1;
                if barrier_entered == live {
                    barrier_entered = 0;
                    for (rank, conn) in writers.iter_mut() {
                        write_frame(conn, &mut scratch, &[CTL_BARRIER_RELEASE]).map_err(|e| {
                            coord_err(format!("release barrier to rank {rank}: {e}"))
                        })?;
                    }
                }
            }
            Some(&CTL_DONE) => {
                done += 1;
                if done >= live && !all_done_sent {
                    all_done_sent = true;
                    for (rank, conn) in writers.iter_mut() {
                        write_frame(conn, &mut scratch, &[CTL_ALL_DONE]).map_err(|e| {
                            coord_err(format!("broadcast ALL_DONE to rank {rank}: {e}"))
                        })?;
                    }
                }
            }
            Some(&CTL_RESULT) => {
                let min = 1 + 4 + CommStatsSnapshot::WIRE_BYTES;
                if msg.len() < min {
                    return Err(coord_err("short RESULT frame".to_string()));
                }
                let rank = u32::from_le_bytes([msg[1], msg[2], msg[3], msg[4]]) as usize;
                if rank >= cfg.p || results[rank].is_some() {
                    return Err(coord_err(format!("unexpected RESULT from rank {rank}")));
                }
                let snap = CommStatsSnapshot::from_bytes(&msg[5..min]).map_err(|e| {
                    coord_err(format!("undecodable stats snapshot from rank {rank}: {e}"))
                })?;
                stats_sum.add_snapshot(&snap);
                results[rank] = Some(msg[min..].to_vec());
                reported += 1;
            }
            _ => {
                let _ = from;
                return Err(coord_err("unknown control message".to_string()));
            }
        }
    }
    Ok(SocketRun {
        results,
        stats: stats_sum,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn start_frame_round_trips() {
        let addrs = vec![
            Some("/tmp/a.sock".to_string()),
            None,
            Some("127.0.0.1:4000".to_string()),
        ];
        assert_eq!(decode_start(&encode_start(&addrs)).unwrap(), addrs);
    }

    #[test]
    fn truncated_start_is_a_typed_error() {
        let addrs = vec![Some("/tmp/a.sock".to_string())];
        let mut bytes = encode_start(&addrs);
        bytes.truncate(bytes.len() - 3);
        assert!(matches!(
            decode_start(&bytes),
            Err(CommError::Transport { .. })
        ));
        assert!(matches!(
            decode_start(&[0x42]),
            Err(CommError::Transport { .. })
        ));
    }

    #[test]
    fn frame_io_round_trips_over_a_socketpair() {
        let (a, b) = UnixStream::pair().expect("socketpair");
        let mut tx = Conn::Unix(a);
        let mut rx = Conn::Unix(b);
        let mut buf = Vec::new();
        write_frame(&mut tx, &mut buf, &[1, 2, 3]).unwrap();
        write_frame(&mut tx, &mut buf, &[]).unwrap();
        assert_eq!(read_frame(&mut rx).unwrap(), Some(vec![1, 2, 3]));
        assert_eq!(read_frame(&mut rx).unwrap(), Some(vec![]));
        drop(tx);
        assert_eq!(read_frame(&mut rx).unwrap(), None, "clean EOF");
    }

    #[test]
    fn oversized_length_prefix_is_rejected() {
        let (a, b) = UnixStream::pair().expect("socketpair");
        let mut tx = Conn::Unix(a);
        let mut rx = Conn::Unix(b);
        tx.write_all(&(u32::MAX).to_le_bytes()).unwrap();
        let err = read_frame(&mut rx).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
