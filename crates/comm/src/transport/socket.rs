//! The socket backend: ranks as real OS processes over stream sockets.
//!
//! A run consists of one **coordinator** (the parent process, inside
//! [`run_socket_cluster`]) and one **child process per live rank**. The
//! coordinator re-executes the current test binary filtered down to a
//! child-entry test, which calls [`child_serve`] with a registry of named
//! workloads; everything a child needs — rank, cluster size, control-socket
//! address, workload name, and bit-exact [`FaultPlan`] / [`RetryPolicy`]
//! encodings — travels through `LCC_SOCKET_*` environment variables.
//!
//! Wiring:
//!
//! * **Data mesh** — a full mesh of Unix-domain stream sockets (TCP
//!   loopback behind the `tcp` feature): rank `r` listens, connects to
//!   every live rank `s < r`, and accepts from every live rank `s > r`.
//!   Each connection opens with a handshake (`magic, version, rank`) so
//!   the acceptor knows who it is talking to. Frames are length-prefixed
//!   ([`frame::MAX_FRAME_LEN`] guards corrupt prefixes); a reader thread
//!   per peer funnels them into one queue, which keeps OS socket buffers
//!   drained independently of protocol state (no flow-control deadlock).
//!   Outgoing frames are assembled in per-peer [`BufferPool`] buffers, so
//!   warm connections send without allocating.
//! * **Control channel** — each child keeps one connection to the
//!   coordinator, which stands in for the shared state the in-process
//!   backend gets from `Arc`s: barrier rendezvous (`BARRIER_ENTER` /
//!   `BARRIER_RELEASE`), the end-of-run done-set (`DONE` / `ALL_DONE`),
//!   address exchange (`HELLO` / `START`), and result delivery (`RESULT`
//!   carries the workload's bytes plus the rank's [`CommStatsSnapshot`]).
//!
//! Because every `CommStats` counter is an exact function of the fault
//! seed, summing the per-process snapshots reproduces the totals a
//! shared-atomics in-process run records — the property the conformance
//! suite (`tests/transport_conformance.rs`) asserts as exact equality.

use std::collections::{BTreeMap, BTreeSet};
use std::io::{self, Read, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError, TryRecvError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use super::fault::FaultTransport;
use super::frame::{self, MAX_FRAME_LEN};
use super::liveness::{LivenessBoard, LivenessStats, LIVENESS_STATS_LEN};
use super::pool::BufferPool;
use super::{PointOutcome, RecvOutcome, Transport};
use crate::cluster::{CommStats, CommStatsSnapshot, CommWorld};
use crate::fault::{CommError, FaultPlan, RetryPolicy};

/// Handshake magic opening every data-mesh connection: "LCCT".
const HANDSHAKE_MAGIC: u32 = 0x4C43_4354;
/// Wire-protocol version carried in the handshake.
const WIRE_VERSION: u8 = 1;

// Control-channel message kinds.
const CTL_HELLO: u8 = 0x10;
const CTL_START: u8 = 0x11;
const CTL_BARRIER_ENTER: u8 = 0x12;
const CTL_BARRIER_RELEASE: u8 = 0x13;
const CTL_DONE: u8 = 0x14;
const CTL_ALL_DONE: u8 = 0x15;
const CTL_RESULT: u8 = 0x16;
/// Child → coordinator: "I reached protocol point `idx`" (gate entry).
const CTL_POINT: u8 = 0x17;
/// Coordinator → child: released from the gate it is parked at.
const CTL_PROCEED: u8 = 0x18;
/// Coordinator → survivors: "rank `r` restarted at `addr`; reconnect".
const CTL_REJOIN: u8 = 0x19;

/// Environment variable marking a process as a socket-cluster child.
pub const CHILD_ENV: &str = "LCC_SOCKET_CHILD";
/// Environment variable marking a child as a checkpoint-restarted rank.
pub const REJOIN_ENV: &str = "LCC_SOCKET_REJOIN";

/// Address family for the data mesh.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SocketFamily {
    /// Unix-domain stream sockets (the default).
    Uds,
    /// TCP over 127.0.0.1 (feature-gated: the loopback mesh is slower and
    /// only exists to prove the framing works over a real network stack).
    #[cfg(feature = "tcp")]
    Tcp,
}

impl SocketFamily {
    fn as_env(&self) -> &'static str {
        match self {
            SocketFamily::Uds => "uds",
            #[cfg(feature = "tcp")]
            SocketFamily::Tcp => "tcp",
        }
    }

    fn from_env(s: &str) -> Result<SocketFamily, CommError> {
        match s {
            "uds" => Ok(SocketFamily::Uds),
            #[cfg(feature = "tcp")]
            "tcp" => Ok(SocketFamily::Tcp),
            other => Err(coord_err(format!("unknown socket family `{other}`"))),
        }
    }
}

/// A stream connection of either family.
enum Conn {
    Unix(UnixStream),
    #[cfg(feature = "tcp")]
    Tcp(std::net::TcpStream),
}

impl Conn {
    fn try_clone(&self) -> io::Result<Conn> {
        match self {
            Conn::Unix(s) => s.try_clone().map(Conn::Unix),
            #[cfg(feature = "tcp")]
            Conn::Tcp(s) => s.try_clone().map(Conn::Tcp),
        }
    }

    fn set_read_timeout(&self, t: Option<Duration>) -> io::Result<()> {
        match self {
            Conn::Unix(s) => s.set_read_timeout(t),
            #[cfg(feature = "tcp")]
            Conn::Tcp(s) => s.set_read_timeout(t),
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Unix(s) => s.read(buf),
            #[cfg(feature = "tcp")]
            Conn::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Unix(s) => s.write(buf),
            #[cfg(feature = "tcp")]
            Conn::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Unix(s) => s.flush(),
            #[cfg(feature = "tcp")]
            Conn::Tcp(s) => s.flush(),
        }
    }
}

/// A listener of either family.
enum MeshListener {
    Unix(UnixListener),
    #[cfg(feature = "tcp")]
    Tcp(std::net::TcpListener),
}

impl MeshListener {
    fn bind(
        family: SocketFamily,
        dir: &std::path::Path,
        rank: usize,
    ) -> io::Result<(MeshListener, String)> {
        match family {
            SocketFamily::Uds => {
                let path = dir.join(format!("data-{rank}.sock"));
                // A checkpoint-restarted rank rebinds the same path its dead
                // predecessor left behind; unlinking is a no-op otherwise.
                let _ = std::fs::remove_file(&path);
                let listener = UnixListener::bind(&path)?;
                Ok((
                    MeshListener::Unix(listener),
                    path.to_string_lossy().into_owned(),
                ))
            }
            #[cfg(feature = "tcp")]
            SocketFamily::Tcp => {
                let listener = std::net::TcpListener::bind("127.0.0.1:0")?;
                let addr = listener.local_addr()?.to_string();
                Ok((MeshListener::Tcp(listener), addr))
            }
        }
    }

    fn accept(&self) -> io::Result<Conn> {
        match self {
            MeshListener::Unix(l) => l.accept().map(|(s, _)| Conn::Unix(s)),
            #[cfg(feature = "tcp")]
            MeshListener::Tcp(l) => l.accept().map(|(s, _)| {
                let _ = s.set_nodelay(true);
                Conn::Tcp(s)
            }),
        }
    }
}

fn connect(family: SocketFamily, addr: &str) -> io::Result<Conn> {
    match family {
        SocketFamily::Uds => UnixStream::connect(addr).map(Conn::Unix),
        #[cfg(feature = "tcp")]
        SocketFamily::Tcp => std::net::TcpStream::connect(addr).map(|s| {
            let _ = s.set_nodelay(true);
            Conn::Tcp(s)
        }),
    }
}

fn io_err(rank: usize, peer: usize, what: &str, e: io::Error) -> CommError {
    CommError::Transport {
        rank,
        peer,
        detail: format!("{what}: {e}"),
    }
}

fn coord_err(detail: String) -> CommError {
    CommError::Transport {
        rank: usize::MAX,
        peer: usize::MAX,
        detail,
    }
}

/// Writes one `[len u32 LE][payload]` frame, assembled in `buf` so the OS
/// sees a single contiguous write.
fn write_frame(conn: &mut Conn, buf: &mut Vec<u8>, payload: &[u8]) -> io::Result<()> {
    buf.clear();
    buf.reserve(4 + payload.len());
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(payload);
    conn.write_all(buf)
}

/// Reads one length-prefixed frame. `Ok(None)` is clean EOF at a frame
/// boundary; a corrupt or oversized length prefix is an error, never an
/// attempted giant allocation.
fn read_frame(conn: &mut Conn) -> io::Result<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    let mut filled = 0usize;
    while filled < 4 {
        match conn.read(&mut len[filled..]) {
            Ok(0) => {
                if filled == 0 {
                    return Ok(None);
                }
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "EOF inside a frame length prefix",
                ));
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_le_bytes(len) as usize;
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds MAX_FRAME_LEN"),
        ));
    }
    let mut payload = vec![0u8; len];
    conn.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// A gate event forwarded to a rank parked at a protocol point.
enum PointMsg {
    /// Released from the gate.
    Proceed,
    /// A restarted rank is rejoining; reconnect before proceeding.
    Rejoin { rank: usize, addr: String },
}

/// One rank's endpoint over the socket mesh.
pub struct SocketTransport {
    rank: usize,
    size: usize,
    /// Outgoing data connections, indexed by peer (None for self, crashed
    /// peers, and — on the acceptor side before the mesh is up — unmet
    /// peers). Shared with the heartbeat thread, which is why the vector
    /// sits behind a mutex: a heartbeat must never interleave with a data
    /// frame's bytes.
    writers: Arc<Mutex<Vec<Option<Conn>>>>,
    /// Per-peer write-assembly buffers.
    pools: Vec<BufferPool>,
    /// Incoming frames from every peer's reader thread.
    incoming: mpsc::Receiver<(usize, Vec<u8>)>,
    /// Our own sender half, kept so rejoin-time reader threads can be
    /// spawned after the mesh is up.
    frame_tx: mpsc::Sender<(usize, Vec<u8>)>,
    /// The data listener, kept alive so a lower-ranked survivor can accept
    /// a restarted peer's fresh connection mid-run.
    listener: MeshListener,
    family: SocketFamily,
    /// Control connection to the coordinator (writer half).
    ctl: Conn,
    ctl_buf: Vec<u8>,
    /// Barrier releases forwarded by the control reader thread.
    barrier_rx: mpsc::Receiver<()>,
    /// Gate releases and rejoin notices forwarded by the control reader.
    point_rx: mpsc::Receiver<PointMsg>,
    /// How long to park at a gate before declaring the coordinator lost.
    point_timeout: Duration,
    /// Set once the coordinator broadcasts `ALL_DONE`.
    all_done: Arc<AtomicBool>,
    /// Failure-detector state shared with reader/heartbeat threads.
    board: Arc<LivenessBoard>,
    /// Tells the heartbeat thread to stand down at drop.
    hb_stop: Arc<AtomicBool>,
    /// True when this process is a checkpoint-restarted rank.
    rejoiner: bool,
    /// Latched after the first gate reports [`PointOutcome::Rejoined`].
    rejoin_announced: bool,
}

impl SocketTransport {
    fn ctl_send(&mut self, payload: &[u8]) -> Result<(), CommError> {
        let mut buf = std::mem::take(&mut self.ctl_buf);
        let res = write_frame(&mut self.ctl, &mut buf, payload);
        self.ctl_buf = buf;
        res.map_err(|e| io_err(self.rank, usize::MAX, "control write", e))
    }

    /// Reconnects with a restarted peer while parked at a gate. Direction
    /// mirrors the initial mesh build: the rejoiner dials every lower rank
    /// (our listener's backlog holds its connection until we accept here)
    /// and listens for every higher rank.
    fn admit_rejoiner(&mut self, peer: usize, addr: &str) -> Result<(), CommError> {
        let rank = self.rank;
        if peer == rank || peer >= self.size {
            return Ok(());
        }
        let conn = if rank < peer {
            let mut conn = self
                .listener
                .accept()
                .map_err(|e| io_err(rank, peer, "accept rejoining peer", e))?;
            let got = read_handshake(rank, &mut conn)?;
            if got != peer {
                return Err(coord_err(format!(
                    "expected rejoin handshake from rank {peer}, got rank {got}"
                )));
            }
            conn
        } else {
            let mut conn = connect(self.family, addr)
                .map_err(|e| io_err(rank, peer, "dial rejoining peer", e))?;
            let mut shake = Vec::with_capacity(9);
            shake.extend_from_slice(&HANDSHAKE_MAGIC.to_le_bytes());
            shake.push(WIRE_VERSION);
            shake.extend_from_slice(&(rank as u32).to_le_bytes());
            conn.write_all(&shake)
                .map_err(|e| io_err(rank, peer, "handshake rejoining peer", e))?;
            conn
        };
        let reader = conn
            .try_clone()
            .map_err(|e| io_err(rank, peer, "clone rejoined stream", e))?;
        // Install the new conn and clear the dead predecessor's hard
        // evidence under ONE writers lock: the heartbeat thread also marks
        // hard evidence under that lock, so a broken-pipe verdict against
        // the predecessor cannot land after the successor is admitted.
        {
            let mut writers = lock_writers(&self.writers);
            self.board.mark_rejoined(peer);
            writers[peer] = Some(conn);
        }
        // Spawned after `mark_rejoined` so its evidence carries the
        // successor's incarnation.
        spawn_reader(peer, reader, self.frame_tx.clone(), Arc::clone(&self.board));
        Ok(())
    }
}

fn lock_writers(w: &Arc<Mutex<Vec<Option<Conn>>>>) -> std::sync::MutexGuard<'_, Vec<Option<Conn>>> {
    w.lock().unwrap_or_else(|e| e.into_inner())
}

impl Drop for SocketTransport {
    fn drop(&mut self) {
        self.hb_stop.store(true, Ordering::SeqCst);
    }
}

impl Transport for SocketTransport {
    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.size
    }

    fn send_frame(&mut self, to: usize, frame: Vec<u8>) -> Result<(), CommError> {
        let rank = self.rank;
        let mut buf = self.pools[to].checkout(4 + frame.len());
        let res = {
            let mut writers = lock_writers(&self.writers);
            match writers.get_mut(to) {
                Some(Some(conn)) => write_frame(conn, &mut buf, &frame),
                _ => {
                    self.pools[to].recycle(buf);
                    return Err(CommError::Transport {
                        rank,
                        peer: to,
                        detail: "no data connection to peer".to_string(),
                    });
                }
            }
        };
        self.pools[to].recycle(buf);
        res.map_err(|e| {
            // EPIPE / ECONNRESET on a data write is hard evidence the peer
            // is gone; feed the detector before surfacing the typed error.
            self.board.mark_hard_dead(to);
            io_err(rank, to, "data write", e)
        })
    }

    fn recv_frame(&mut self, timeout: Duration) -> Result<RecvOutcome, CommError> {
        match self.incoming.recv_timeout(timeout) {
            Ok((src, frame)) => Ok(RecvOutcome::Frame(src, frame)),
            Err(RecvTimeoutError::Timeout) => Ok(RecvOutcome::Idle),
            Err(RecvTimeoutError::Disconnected) => Ok(RecvOutcome::Closed),
        }
    }

    fn try_recv_frame(&mut self) -> Result<RecvOutcome, CommError> {
        match self.incoming.try_recv() {
            Ok((src, frame)) => Ok(RecvOutcome::Frame(src, frame)),
            Err(TryRecvError::Empty) => Ok(RecvOutcome::Idle),
            Err(TryRecvError::Disconnected) => Ok(RecvOutcome::Closed),
        }
    }

    fn barrier(&mut self, timeout: Duration) -> Result<bool, CommError> {
        self.ctl_send(&[CTL_BARRIER_ENTER])?;
        match self.barrier_rx.recv_timeout(timeout) {
            Ok(()) => Ok(true),
            Err(RecvTimeoutError::Timeout) => Ok(false),
            Err(RecvTimeoutError::Disconnected) => Err(coord_err(
                "coordinator hung up during a barrier".to_string(),
            )),
        }
    }

    fn announce_done(&mut self) {
        // Best effort, like the in-process done counter: if the
        // coordinator is gone the drain falls back to its deadline.
        let _ = self.ctl_send(&[CTL_DONE]);
    }

    fn all_done(&self) -> bool {
        self.all_done.load(Ordering::SeqCst)
    }

    fn protocol_point(&mut self, idx: u64) -> Result<PointOutcome, CommError> {
        let mut msg = Vec::with_capacity(9);
        msg.push(CTL_POINT);
        msg.extend_from_slice(&idx.to_le_bytes());
        self.ctl_send(&msg)?;
        loop {
            match self.point_rx.recv_timeout(self.point_timeout) {
                Ok(PointMsg::Proceed) => break,
                Ok(PointMsg::Rejoin { rank, addr }) => self.admit_rejoiner(rank, &addr)?,
                Err(RecvTimeoutError::Timeout) => {
                    return Err(CommError::Timeout {
                        op: "protocol_point",
                        rank: self.rank,
                        waiting_on: usize::MAX,
                    })
                }
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(coord_err(
                        "coordinator hung up at a protocol point".to_string(),
                    ))
                }
            }
        }
        if self.rejoiner && !self.rejoin_announced {
            self.rejoin_announced = true;
            return Ok(PointOutcome::Rejoined);
        }
        Ok(PointOutcome::Proceed)
    }

    fn kills_are_real(&self) -> bool {
        true
    }

    fn confirmed_dead(&self) -> BTreeSet<usize> {
        self.board.confirmed_dead()
    }

    fn liveness_stats(&self) -> LivenessStats {
        self.board.stats()
    }
}

// ---------------------------------------------------------------------------
// Child side
// ---------------------------------------------------------------------------

/// A named workload a child process can run: consumes the rank's
/// [`CommWorld`] (dropping it runs the end-of-run drain) and returns the
/// bytes to ship back to the coordinator.
pub type Workload = fn(CommWorld) -> Vec<u8>;

/// Whether this process is a socket-cluster child (spawned by
/// [`run_socket_cluster`]). The child-entry test uses this to be a no-op
/// in normal test runs.
pub fn is_child() -> bool {
    std::env::var_os(CHILD_ENV).is_some()
}

fn env_var(name: &str) -> Result<String, CommError> {
    std::env::var(name).map_err(|_| coord_err(format!("missing child env var {name}")))
}

/// Child-process entry point: wires this rank into the mesh, runs the
/// workload named by the environment, and reports the result and counter
/// snapshot to the coordinator. Call from a `#[test]` guarded by
/// [`is_child`]; see `tests/transport_conformance.rs`.
pub fn child_serve(registry: &[(&str, Workload)]) -> Result<(), CommError> {
    let rank: usize = env_var("LCC_SOCKET_RANK")?
        .parse()
        .map_err(|_| coord_err("bad LCC_SOCKET_RANK".to_string()))?;
    let size: usize = env_var("LCC_SOCKET_SIZE")?
        .parse()
        .map_err(|_| coord_err("bad LCC_SOCKET_SIZE".to_string()))?;
    let ctl_path = env_var("LCC_SOCKET_CTL")?;
    let family = SocketFamily::from_env(&env_var("LCC_SOCKET_FAMILY")?)?;
    let plan = Arc::new(FaultPlan::from_env_string(&env_var("LCC_SOCKET_PLAN")?)?);
    let retry = RetryPolicy::from_env_string(&env_var("LCC_SOCKET_RETRY")?)?;
    let rejoiner = std::env::var_os(REJOIN_ENV).is_some();
    let workload_name = env_var("LCC_SOCKET_WORKLOAD")?;
    let workload = registry
        .iter()
        .find(|(name, _)| *name == workload_name)
        .map(|(_, f)| *f)
        .ok_or_else(|| coord_err(format!("workload `{workload_name}` not in child registry")))?;
    let obs_session = if std::env::var_os("LCC_SOCKET_OBS").is_some() {
        lcc_obs::ObsSession::start()
    } else {
        None
    };

    let dir = PathBuf::from(env_var("LCC_SOCKET_DIR")?);
    let (listener, my_addr) = MeshListener::bind(family, &dir, rank)
        .map_err(|e| io_err(rank, usize::MAX, "bind data listener", e))?;

    // Control channel up, introduce ourselves, learn everyone's address.
    let mut ctl = connect(SocketFamily::Uds, &ctl_path)
        .map_err(|e| io_err(rank, usize::MAX, "connect control socket", e))?;
    let mut hello = vec![CTL_HELLO];
    hello.extend_from_slice(&(rank as u32).to_le_bytes());
    hello.extend_from_slice(my_addr.as_bytes());
    let mut scratch = Vec::new();
    write_frame(&mut ctl, &mut scratch, &hello)
        .map_err(|e| io_err(rank, usize::MAX, "send HELLO", e))?;
    let start = read_frame(&mut ctl)
        .map_err(|e| io_err(rank, usize::MAX, "read START", e))?
        .ok_or_else(|| coord_err("coordinator closed before START".to_string()))?;
    let addrs = decode_start(&start)?;
    if addrs.len() != size {
        return Err(coord_err(format!(
            "START carried {} addresses for a {size}-rank cluster",
            addrs.len()
        )));
    }

    // Data mesh: connect down, accept up. Peers with no address (crashed
    // ranks) are skipped on both sides. Every reader thread shares the
    // liveness board: it reports arrivals and turns EOF into hard evidence.
    let board = LivenessBoard::new(rank, size, &retry);
    let (frame_tx, frame_rx) = mpsc::channel::<(usize, Vec<u8>)>();
    let mut writers: Vec<Option<Conn>> = (0..size).map(|_| None).collect();
    for (peer, addr) in addrs.iter().enumerate().take(rank) {
        let Some(addr) = addr else { continue };
        let mut conn =
            connect(family, addr).map_err(|e| io_err(rank, peer, "connect to peer", e))?;
        let mut shake = Vec::with_capacity(9);
        shake.extend_from_slice(&HANDSHAKE_MAGIC.to_le_bytes());
        shake.push(WIRE_VERSION);
        shake.extend_from_slice(&(rank as u32).to_le_bytes());
        conn.write_all(&shake)
            .map_err(|e| io_err(rank, peer, "send handshake", e))?;
        spawn_reader(
            peer,
            conn.try_clone()
                .map_err(|e| io_err(rank, peer, "clone peer stream", e))?,
            frame_tx.clone(),
            Arc::clone(&board),
        );
        writers[peer] = Some(conn);
    }
    let accepts = addrs
        .iter()
        .enumerate()
        .skip(rank + 1)
        .filter(|(_, a)| a.is_some())
        .count();
    for _ in 0..accepts {
        let mut conn = listener
            .accept()
            .map_err(|e| io_err(rank, usize::MAX, "accept peer", e))?;
        let peer = read_handshake(rank, &mut conn)?;
        if peer <= rank || peer >= size {
            return Err(coord_err(format!(
                "rank {rank} accepted a handshake claiming rank {peer}"
            )));
        }
        spawn_reader(
            peer,
            conn.try_clone()
                .map_err(|e| io_err(rank, peer, "clone peer stream", e))?,
            frame_tx.clone(),
            Arc::clone(&board),
        );
        writers[peer] = Some(conn);
    }
    // The transport keeps a sender half so rejoin-time readers can be
    // spawned later; `recv_frame` therefore never reports `Closed`, which
    // is fine — the protocol layer is timeout-driven.
    let writers = Arc::new(Mutex::new(writers));

    // Control reader: forwards barrier releases and gate events, latches
    // ALL_DONE.
    let all_done = Arc::new(AtomicBool::new(false));
    let (barrier_tx, barrier_rx) = mpsc::channel::<()>();
    let (point_tx, point_rx) = mpsc::channel::<PointMsg>();
    {
        let mut ctl_read = ctl
            .try_clone()
            .map_err(|e| io_err(rank, usize::MAX, "clone control stream", e))?;
        let all_done = Arc::clone(&all_done);
        std::thread::spawn(move || {
            while let Ok(Some(msg)) = read_frame(&mut ctl_read) {
                match msg.first() {
                    Some(&CTL_BARRIER_RELEASE) => {
                        if barrier_tx.send(()).is_err() {
                            break;
                        }
                    }
                    Some(&CTL_ALL_DONE) => all_done.store(true, Ordering::SeqCst),
                    Some(&CTL_PROCEED) => {
                        if point_tx.send(PointMsg::Proceed).is_err() {
                            break;
                        }
                    }
                    Some(&CTL_REJOIN) => match decode_rejoin(&msg) {
                        Some((peer, addr)) => {
                            if point_tx
                                .send(PointMsg::Rejoin { rank: peer, addr })
                                .is_err()
                            {
                                break;
                            }
                        }
                        None => break,
                    },
                    _ => break,
                }
            }
        });
    }

    // Heartbeat thread: a periodic beat to every connected peer, so a
    // silent-but-alive rank (deep in a compute phase) is never suspected.
    let hb_stop = Arc::new(AtomicBool::new(false));
    {
        let writers = Arc::clone(&writers);
        let board = Arc::clone(&board);
        let stop = Arc::clone(&hb_stop);
        let period = retry.heartbeat_period();
        std::thread::spawn(move || {
            let mut beat = 0u64;
            let mut buf = Vec::new();
            while !stop.load(Ordering::SeqCst) {
                std::thread::sleep(period);
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                beat += 1;
                let hb = frame::encode_heartbeat(beat);
                let mut sent = 0u64;
                let mut guard = lock_writers(&writers);
                for (peer, slot) in guard.iter_mut().enumerate() {
                    if let Some(conn) = slot {
                        if write_frame(conn, &mut buf, &hb).is_ok() {
                            sent += 1;
                        } else {
                            // A broken pipe mid-beat is the same hard
                            // evidence a data write would have produced.
                            *slot = None;
                            board.mark_hard_dead(peer);
                        }
                    }
                }
                drop(guard);
                if sent > 0 {
                    board.note_beats_sent(sent);
                }
            }
        });
    }

    let transport = SocketTransport {
        rank,
        size,
        writers,
        pools: (0..size).map(|_| BufferPool::default()).collect(),
        incoming: frame_rx,
        frame_tx,
        listener,
        family,
        ctl,
        ctl_buf: Vec::new(),
        barrier_rx,
        point_rx,
        point_timeout: retry.coordinator_deadline(),
        all_done,
        board: Arc::clone(&board),
        hb_stop,
        rejoiner,
        rejoin_announced: false,
    };
    let boxed: Box<dyn Transport> = if plan.is_active() {
        Box::new(FaultTransport::new(transport, Arc::clone(&plan)))
    } else {
        Box::new(transport)
    };

    lcc_obs::set_rank(Some(rank as u32));
    let stats = Arc::new(CommStats::default());
    let world = CommWorld::over(boxed, Arc::clone(&plan), retry, Arc::clone(&stats));
    let result = workload(world); // dropping the world runs the drain
    lcc_obs::set_rank(None);
    lcc_obs::set_epoch(0);
    let snapshot = stats.snapshot();

    if let Some(session) = obs_session {
        // The obs counters are incremented at the same call sites as
        // CommStats, and in this process the only rank is ours — the
        // totals must agree to the byte, exactly as in the in-process
        // obs_cluster suite.
        let report = session.finish();
        let counter = |name: &str| report.counter(name).unwrap_or(0);
        let pairs = [
            ("comm.bytes_logical", snapshot.bytes_sent),
            ("comm.messages_logical", snapshot.messages),
            ("comm.collective_rounds", snapshot.collective_rounds),
            ("comm.retransmits", snapshot.retransmits),
            ("comm.duplicates_suppressed", snapshot.duplicates_suppressed),
            ("comm.timeouts", snapshot.timeouts),
            ("comm.bytes_physical", snapshot.bytes_physical),
            ("comm.messages_physical", snapshot.messages_physical),
            ("comm.acks", snapshot.acks),
        ];
        for (name, want) in pairs {
            let got = counter(name);
            if got != want {
                return Err(coord_err(format!(
                    "rank {rank}: obs counter {name} = {got} but CommStats recorded {want}"
                )));
            }
        }
    }

    // RESULT: rank, stats snapshot, liveness counters, first-detection
    // timestamp, then the workload's bytes. Re-borrow the control writer
    // from the transport we boxed away? No — the world consumed it. A
    // fresh control connection keeps ownership simple.
    let mut liveness = board.stats();
    liveness.deaths_detected = stats.deaths_detected_count();
    liveness.rejoins = stats.rejoin_count();
    let first_detection = stats.first_detection_ns().unwrap_or(0);
    let mut ctl = connect(SocketFamily::Uds, &ctl_path)
        .map_err(|e| io_err(rank, usize::MAX, "reconnect control socket", e))?;
    let mut msg = Vec::with_capacity(RESULT_HEADER_LEN + result.len());
    msg.push(CTL_RESULT);
    msg.extend_from_slice(&(rank as u32).to_le_bytes());
    msg.extend_from_slice(&snapshot.to_bytes());
    msg.extend_from_slice(&liveness.to_bytes());
    msg.extend_from_slice(&first_detection.to_le_bytes());
    msg.extend_from_slice(&result);
    write_frame(&mut ctl, &mut scratch, &msg)
        .map_err(|e| io_err(rank, usize::MAX, "send RESULT", e))?;
    Ok(())
}

/// Byte length of a RESULT frame before its payload: kind, rank, stats
/// snapshot, liveness counters, first-detection timestamp.
const RESULT_HEADER_LEN: usize = 1 + 4 + CommStatsSnapshot::WIRE_BYTES + LIVENESS_STATS_LEN + 8;

fn spawn_reader(
    peer: usize,
    mut conn: Conn,
    tx: mpsc::Sender<(usize, Vec<u8>)>,
    board: Arc<LivenessBoard>,
) {
    // Evidence from this connection is versioned against the peer's
    // incarnation at spawn time: if the peer dies and a restarted successor
    // is admitted before this thread notices the EOF, the stale verdict is
    // dropped instead of condemning the successor.
    let incarnation = board.incarnation(peer);
    std::thread::spawn(move || loop {
        match read_frame(&mut conn) {
            Ok(Some(fr)) => {
                // Heartbeats live below the reliability protocol: they feed
                // the detector and are never forwarded upward.
                if fr.first() == Some(&frame::KIND_HEARTBEAT)
                    && fr.len() == frame::HEARTBEAT_FRAME_LEN
                {
                    board.note_beat(peer);
                    continue;
                }
                board.note_traffic(peer);
                if tx.send((peer, fr)).is_err() {
                    break;
                }
            }
            // EOF or a socket error is hard evidence: decisive mid-run,
            // harmless after a clean end-of-run (nothing sweeps it).
            Ok(None) | Err(_) => {
                board.mark_hard_dead_as_of(peer, incarnation);
                break;
            }
        }
    });
}

fn encode_rejoin(rank: usize, addr: &str) -> Vec<u8> {
    let mut msg = Vec::with_capacity(5 + addr.len());
    msg.push(CTL_REJOIN);
    msg.extend_from_slice(&(rank as u32).to_le_bytes());
    msg.extend_from_slice(addr.as_bytes());
    msg
}

fn decode_rejoin(msg: &[u8]) -> Option<(usize, String)> {
    if msg.len() < 5 || msg[0] != CTL_REJOIN {
        return None;
    }
    let rank = u32::from_le_bytes([msg[1], msg[2], msg[3], msg[4]]) as usize;
    let addr = String::from_utf8(msg[5..].to_vec()).ok()?;
    Some((rank, addr))
}

fn now_unix_ns() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0)
}

fn read_handshake(rank: usize, conn: &mut Conn) -> Result<usize, CommError> {
    let mut shake = [0u8; 9];
    conn.read_exact(&mut shake)
        .map_err(|e| io_err(rank, usize::MAX, "read handshake", e))?;
    let magic = u32::from_le_bytes([shake[0], shake[1], shake[2], shake[3]]);
    if magic != HANDSHAKE_MAGIC || shake[4] != WIRE_VERSION {
        return Err(coord_err(format!(
            "bad handshake on rank {rank}'s listener (magic {magic:#x}, version {})",
            shake[4]
        )));
    }
    Ok(u32::from_le_bytes([shake[5], shake[6], shake[7], shake[8]]) as usize)
}

fn decode_start(msg: &[u8]) -> Result<Vec<Option<String>>, CommError> {
    let err = || coord_err("malformed START frame".to_string());
    if msg.first() != Some(&CTL_START) {
        return Err(err());
    }
    let mut at = 1usize;
    let take = |at: &mut usize, n: usize| -> Result<Vec<u8>, CommError> {
        let end = at.checked_add(n).ok_or_else(err)?;
        if end > msg.len() {
            return Err(err());
        }
        let bytes = msg[*at..end].to_vec();
        *at = end;
        Ok(bytes)
    };
    let count_bytes = take(&mut at, 4)?;
    let count = u32::from_le_bytes([
        count_bytes[0],
        count_bytes[1],
        count_bytes[2],
        count_bytes[3],
    ]) as usize;
    let mut addrs = Vec::with_capacity(count);
    for _ in 0..count {
        let len_bytes = take(&mut at, 4)?;
        let len =
            u32::from_le_bytes([len_bytes[0], len_bytes[1], len_bytes[2], len_bytes[3]]) as usize;
        if len == 0 {
            addrs.push(None);
            continue;
        }
        let addr = take(&mut at, len)?;
        addrs.push(Some(String::from_utf8(addr).map_err(|_| err())?));
    }
    Ok(addrs)
}

fn encode_start(addrs: &[Option<String>]) -> Vec<u8> {
    let mut msg = vec![CTL_START];
    msg.extend_from_slice(&(addrs.len() as u32).to_le_bytes());
    for addr in addrs {
        match addr {
            Some(a) => {
                msg.extend_from_slice(&(a.len() as u32).to_le_bytes());
                msg.extend_from_slice(a.as_bytes());
            }
            None => msg.extend_from_slice(&0u32.to_le_bytes()),
        }
    }
    msg
}

// ---------------------------------------------------------------------------
// Coordinator side
// ---------------------------------------------------------------------------

/// What the supervisor does when a seeded kill strikes a rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RestartPolicy {
    /// Victims stay dead; survivors detect and recover.
    Never,
    /// Respawn a killed rank's process (at most `max_restarts` times per
    /// rank); its workload resumes from its latest checkpoint and rejoins
    /// the mesh at the kill gate under a REJOIN handshake.
    FromCheckpoint { max_restarts: u32 },
}

impl RestartPolicy {
    /// The policy a [`FaultPlan`] implies: `kill_restart` plans get one
    /// restart per victim, everything else none.
    pub fn for_plan(plan: &FaultPlan) -> RestartPolicy {
        if plan.kill_restart {
            RestartPolicy::FromCheckpoint { max_restarts: 1 }
        } else {
            RestartPolicy::Never
        }
    }

    fn allows(&self, restarts_so_far: u32) -> bool {
        match self {
            RestartPolicy::Never => false,
            RestartPolicy::FromCheckpoint { max_restarts } => restarts_so_far < *max_restarts,
        }
    }

    fn respawns(&self) -> bool {
        !matches!(self, RestartPolicy::Never)
    }
}

/// How a child process left the world, per `waitpid`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChildExit {
    /// Exit code 0.
    Clean,
    /// A nonzero exit code (a failed child-entry test, a panic).
    Code(i32),
    /// Terminated by a signal (SIGKILL for supervised kills).
    Signal(i32),
}

impl ChildExit {
    fn classify(status: std::process::ExitStatus) -> ChildExit {
        use std::os::unix::process::ExitStatusExt;
        if let Some(sig) = status.signal() {
            return ChildExit::Signal(sig);
        }
        match status.code() {
            Some(0) => ChildExit::Clean,
            Some(c) => ChildExit::Code(c),
            None => ChildExit::Signal(0),
        }
    }

    /// The typed error for a child that died before reporting a result.
    pub fn to_error(self, rank: usize) -> CommError {
        let (code, signal) = match self {
            ChildExit::Clean => (Some(0), None),
            ChildExit::Code(c) => (Some(c), None),
            ChildExit::Signal(s) => (None, Some(s)),
        };
        CommError::ChildExited { rank, code, signal }
    }
}

/// One rank death observed (or inflicted) by the coordinator.
#[derive(Debug, Clone)]
pub struct KillRecord {
    pub rank: usize,
    /// The protocol point the victim was struck at (`u64::MAX` for
    /// unplanned deaths — a child that aborted on its own).
    pub point: u64,
    /// True for seeded kills the supervisor inflicted itself.
    pub planned: bool,
    /// Wall-clock UNIX nanoseconds at the kill (or at the reap, for
    /// unplanned deaths).
    pub killed_at_ns: u64,
    /// Wall-clock UNIX nanoseconds when the victim's replacement process
    /// was spawned; `None` when it stayed dead.
    pub respawned_at_ns: Option<u64>,
    /// The reaped exit status, when the supervisor saw one.
    pub exit: Option<ChildExit>,
}

/// Configuration for one socket-cluster run.
pub struct SocketClusterConfig<'a> {
    /// Total rank count (crashed ranks included).
    pub p: usize,
    /// Fault plan, replayed bit-identically inside every child.
    pub plan: FaultPlan,
    /// Protocol deadlines for the children (and, via
    /// [`RetryPolicy::coordinator_deadline`], for the coordinator itself).
    pub retry: RetryPolicy,
    /// What to do when a seeded kill strikes: must agree with the plan's
    /// `kill_restart` flag, which is what the children's determinism
    /// probes are computed from.
    pub restart: RestartPolicy,
    /// Registry key of the workload every child runs.
    pub workload: &'a str,
    /// Data-mesh address family.
    pub family: SocketFamily,
    /// Name of the `#[test]` in the current binary that calls
    /// [`child_serve`] (the coordinator re-executes the binary filtered to
    /// exactly this test).
    pub child_test: &'a str,
    /// Start an [`lcc_obs::ObsSession`] inside each child and fail the
    /// child if its `comm.*` counters diverge from its `CommStats`.
    pub obs_in_children: bool,
}

/// What a socket-cluster run produced: one result slot per rank (`None`
/// for crashed and permanently-killed ranks), the sum of every child's
/// counter snapshot, the summed liveness counters, the kill log, and the
/// earliest wall-clock failure detection any rank reported.
#[derive(Debug)]
pub struct SocketRun {
    pub results: Vec<Option<Vec<u8>>>,
    pub stats: CommStatsSnapshot,
    pub liveness: LivenessStats,
    pub kills: Vec<KillRecord>,
    pub first_detection_ns: Option<u64>,
}

/// Monotonic run id so concurrent/consecutive runs in one process never
/// collide on a socket directory.
static RUN_SEQ: AtomicU64 = AtomicU64::new(0);

/// Runs `cfg.workload` on `cfg.p` ranks, **each rank a real OS process**,
/// communicating over a socket mesh. The calling process acts as the
/// coordinator; children re-execute the current binary (see
/// [`SocketClusterConfig::child_test`]).
pub fn run_socket_cluster(cfg: &SocketClusterConfig) -> Result<SocketRun, CommError> {
    assert!(cfg.p >= 1, "need at least one rank");
    let live = cfg.plan.live_count(cfg.p);
    assert!(live >= 1, "at least one rank must survive the fault plan");
    assert_eq!(
        cfg.restart.respawns(),
        cfg.plan.kill_restart,
        "RestartPolicy must agree with FaultPlan::kill_restart: the children \
         derive who stays dead from the plan alone"
    );

    let seq = RUN_SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("lcc-sock-{}-{seq}", std::process::id()));
    std::fs::create_dir_all(&dir).map_err(|e| coord_err(format!("create socket dir: {e}")))?;
    let run = coordinate(cfg, live, &dir);
    let _ = std::fs::remove_dir_all(&dir);
    run
}

/// Owns every child process of one run. All spawning and reaping funnels
/// through here so that the `Drop` impl can guarantee the acceptance
/// property "no child outlives the coordinator" on *every* exit path —
/// early `?` returns during spawning included.
struct ChildSupervisor<'a> {
    cfg: &'a SocketClusterConfig<'a>,
    dir: PathBuf,
    exe: PathBuf,
    ctl_path: PathBuf,
    children: BTreeMap<usize, Child>,
    restarts: BTreeMap<usize, u32>,
}

impl<'a> ChildSupervisor<'a> {
    fn new(
        cfg: &'a SocketClusterConfig<'a>,
        dir: &std::path::Path,
        ctl_path: PathBuf,
    ) -> Result<ChildSupervisor<'a>, CommError> {
        let exe = std::env::current_exe().map_err(|e| coord_err(format!("current_exe: {e}")))?;
        Ok(ChildSupervisor {
            cfg,
            dir: dir.to_path_buf(),
            exe,
            ctl_path,
            children: BTreeMap::new(),
            restarts: BTreeMap::new(),
        })
    }

    /// Spawns (or, with `rejoin`, respawns) the process for `rank`.
    fn spawn(&mut self, rank: usize, rejoin: bool) -> Result<(), CommError> {
        let cfg = self.cfg;
        let mut cmd = Command::new(&self.exe);
        cmd.arg(cfg.child_test)
            .arg("--exact")
            .arg("--nocapture")
            .arg("--test-threads=1")
            .env(CHILD_ENV, "1")
            .env("LCC_SOCKET_RANK", rank.to_string())
            .env("LCC_SOCKET_SIZE", cfg.p.to_string())
            .env("LCC_SOCKET_CTL", &self.ctl_path)
            .env("LCC_SOCKET_DIR", &self.dir)
            .env("LCC_SOCKET_FAMILY", cfg.family.as_env())
            .env("LCC_SOCKET_WORKLOAD", cfg.workload)
            .env("LCC_SOCKET_PLAN", cfg.plan.to_env_string())
            .env("LCC_SOCKET_RETRY", cfg.retry.to_env_string())
            .stdout(Stdio::null())
            .stderr(Stdio::inherit());
        if rejoin {
            cmd.env(REJOIN_ENV, "1");
            *self.restarts.entry(rank).or_insert(0) += 1;
        }
        if cfg.obs_in_children {
            cmd.env("LCC_SOCKET_OBS", "1");
        }
        let child = cmd
            .spawn()
            .map_err(|e| coord_err(format!("spawn rank {rank}: {e}")))?;
        self.children.insert(rank, child);
        Ok(())
    }

    fn restart_count(&self, rank: usize) -> u32 {
        self.restarts.get(&rank).copied().unwrap_or(0)
    }

    /// SIGKILLs `rank` and reaps it. `None` if no live child holds the
    /// rank (it already died and was reaped).
    fn kill_rank(&mut self, rank: usize) -> Option<ChildExit> {
        let mut child = self.children.remove(&rank)?;
        let _ = child.kill();
        child.wait().ok().map(ChildExit::classify)
    }

    /// Non-blocking sweep: reaps every child that has exited on its own.
    fn reap(&mut self) -> Vec<(usize, ChildExit)> {
        let mut reaped = Vec::new();
        let ranks: Vec<usize> = self.children.keys().copied().collect();
        for rank in ranks {
            let done = match self.children.get_mut(&rank) {
                Some(child) => child.try_wait().ok().flatten(),
                None => None,
            };
            if let Some(status) = done {
                self.children.remove(&rank);
                reaped.push((rank, ChildExit::classify(status)));
            }
        }
        reaped
    }

    /// Blocks until every remaining child exits (the clean-success path:
    /// children exit on their own shortly after sending RESULT).
    fn wait_all(&mut self) {
        for (_, mut child) in std::mem::take(&mut self.children) {
            let _ = child.wait();
        }
    }
}

impl Drop for ChildSupervisor<'_> {
    fn drop(&mut self) {
        // Any children still here are survivors of an error path: kill and
        // reap them so no process (or zombie) outlives the run.
        for (_, child) in self.children.iter_mut() {
            let _ = child.kill();
        }
        self.wait_all();
    }
}

fn coordinate(
    cfg: &SocketClusterConfig,
    live: usize,
    dir: &std::path::Path,
) -> Result<SocketRun, CommError> {
    let ctl_path = dir.join("ctl.sock");
    let ctl_listener = UnixListener::bind(&ctl_path)
        .map_err(|e| coord_err(format!("bind control socket: {e}")))?;

    let mut sup = ChildSupervisor::new(cfg, dir, ctl_path)?;
    for rank in 0..cfg.p {
        if !cfg.plan.is_crashed(rank) {
            sup.spawn(rank, false)?; // crashed ranks never start
        }
    }

    let outcome = serve_control(cfg, live, &ctl_listener, &mut sup);
    if outcome.is_ok() {
        sup.wait_all();
    }
    // The supervisor's Drop kills and reaps whatever is left on the error
    // path — children never outlive the coordinator.
    outcome
}

/// Mutable control-plane state shared by the coordinator's event handlers.
///
/// The barrier and done conditions are *identity sets over the current live
/// set* rather than counters, so a rank dying mid-protocol shrinks the
/// requirement instead of deadlocking the release.
struct Control {
    live: BTreeSet<usize>,
    writers: BTreeMap<usize, Conn>,
    scratch: Vec<u8>,
    /// rank → protocol-point index it is parked at, waiting for PROCEED.
    parked: BTreeMap<usize, u64>,
    in_barrier: BTreeSet<usize>,
    done: BTreeSet<usize>,
    all_done_sent: bool,
    kills: Vec<KillRecord>,
    /// A planned victim reaped and awaiting respawn at this gate.
    pending_respawn: Option<(usize, u64)>,
    /// Gates already fired, so a restarted rank replaying its kill gate is
    /// not killed a second time.
    killed_points: BTreeSet<(usize, u64)>,
}

impl Control {
    /// Writes a control frame to `rank`; a failed write is hard evidence
    /// the child is gone, so the rank is demoted instead of failing the
    /// whole run — unless it already announced DONE. A finished rank tears
    /// its control socket down on its own schedule (its drain can time out
    /// before ALL_DONE reaches it), so a dead write there is normal
    /// teardown, not death; real post-DONE deaths still surface through
    /// the reap sweep as non-clean exits.
    fn write_to(&mut self, rank: usize, msg: &[u8]) -> bool {
        let ok = match self.writers.get_mut(&rank) {
            Some(conn) => write_frame(conn, &mut self.scratch, msg).is_ok(),
            None => false,
        };
        if !ok {
            if self.done.contains(&rank) {
                self.writers.remove(&rank);
            } else {
                self.declare_unplanned_dead(rank, None);
            }
        }
        ok
    }

    /// Removes `rank` from every wait set and records an unplanned death.
    fn declare_unplanned_dead(&mut self, rank: usize, exit: Option<ChildExit>) {
        if !self.live.remove(&rank) {
            return;
        }
        self.writers.remove(&rank);
        self.parked.remove(&rank);
        self.in_barrier.remove(&rank);
        self.done.remove(&rank);
        if self.pending_respawn.map(|(r, _)| r) == Some(rank) {
            self.pending_respawn = None;
        }
        self.kills.push(KillRecord {
            rank,
            point: u64::MAX,
            planned: false,
            killed_at_ns: now_unix_ns(),
            respawned_at_ns: None,
            exit,
        });
    }

    /// Re-evaluates every release condition to fixpoint. Each condition is
    /// over the *current* live set, so this must re-run after any event
    /// that parks a rank, advances a wait set, or shrinks the live set
    /// (including demotions performed by `write_to` itself).
    fn settle(&mut self) {
        loop {
            let mut acted = false;

            // Gate release: only when EVERY live rank is parked do we
            // release the ones at the minimum gate. A restarted rank
            // replaying earlier gates is therefore released alone, step by
            // step, until it catches up with the survivors; and while a
            // victim is dead-awaiting-respawn it is live-but-not-parked,
            // which holds the survivors at their gates through the rejoin.
            if !self.live.is_empty()
                && self.live.iter().all(|r| self.parked.contains_key(r))
                && !self.parked.is_empty()
            {
                // lcc-lint: allow(unwrap) — guarded by !parked.is_empty() above.
                let min_gate = *self.parked.values().min().expect("non-empty");
                let ready: Vec<usize> = self
                    .parked
                    .iter()
                    .filter(|(_, g)| **g == min_gate)
                    .map(|(r, _)| *r)
                    .collect();
                for rank in ready {
                    self.parked.remove(&rank);
                    self.write_to(rank, &[CTL_PROCEED]);
                }
                acted = true;
            }

            // Barrier release: every live rank has entered.
            if !self.live.is_empty()
                && !self.in_barrier.is_empty()
                && self.live.iter().all(|r| self.in_barrier.contains(r))
            {
                self.in_barrier.clear();
                let ranks: Vec<usize> = self.live.iter().copied().collect();
                for rank in ranks {
                    self.write_to(rank, &[CTL_BARRIER_RELEASE]);
                }
                acted = true;
            }

            // Done: every live rank has sent DONE (latched once).
            if !self.all_done_sent
                && !self.live.is_empty()
                && self.live.iter().all(|r| self.done.contains(r))
            {
                self.all_done_sent = true;
                let ranks: Vec<usize> = self.live.iter().copied().collect();
                for rank in ranks {
                    self.write_to(rank, &[CTL_ALL_DONE]);
                }
                acted = true;
            }

            if !acted {
                return;
            }
        }
    }
}

/// Accumulates per-rank RESULT frames into run-level totals.
struct ResultSink {
    results: Vec<Option<Vec<u8>>>,
    stats: CommStatsSnapshot,
    liveness: LivenessStats,
    detect_min: Option<u64>,
}

fn absorb_result(sink: &mut ResultSink, msg: &[u8], p: usize) -> Result<(), CommError> {
    if msg.len() < RESULT_HEADER_LEN {
        return Err(coord_err("short RESULT frame".to_string()));
    }
    let rank = u32::from_le_bytes([msg[1], msg[2], msg[3], msg[4]]) as usize;
    if rank >= p || sink.results[rank].is_some() {
        return Err(coord_err(format!("unexpected RESULT from rank {rank}")));
    }
    let snap_end = 5 + CommStatsSnapshot::WIRE_BYTES;
    let snap = CommStatsSnapshot::from_bytes(&msg[5..snap_end])
        .map_err(|e| coord_err(format!("undecodable stats snapshot from rank {rank}: {e}")))?;
    let liv_end = snap_end + LIVENESS_STATS_LEN;
    let liv = LivenessStats::from_bytes(&msg[snap_end..liv_end])
        .ok_or_else(|| coord_err(format!("undecodable liveness stats from rank {rank}")))?;
    // lcc-lint: allow(unwrap) — fixed-width slice of a length-checked frame.
    let detect = u64::from_le_bytes(msg[liv_end..liv_end + 8].try_into().expect("8 bytes"));
    sink.stats.add_snapshot(&snap);
    sink.liveness.add(&liv);
    if detect != 0 {
        sink.detect_min = Some(sink.detect_min.map_or(detect, |d| d.min(detect)));
    }
    sink.results[rank] = Some(msg[RESULT_HEADER_LEN..].to_vec());
    Ok(())
}

/// The coordinator's control loop: address exchange, then gate / barrier /
/// done bookkeeping over a *dynamic* live set until every live rank has
/// reported its RESULT. Planned kills fire when the victim parks at its
/// scheduled protocol point; under a respawning [`RestartPolicy`] the
/// victim's process is relaunched (with [`REJOIN_ENV`] set) once every
/// survivor is parked, and re-admitted through a fresh HELLO.
fn serve_control(
    cfg: &SocketClusterConfig,
    live: usize,
    listener: &UnixListener,
    sup: &mut ChildSupervisor,
) -> Result<SocketRun, CommError> {
    let patience = cfg.retry.coordinator_deadline();
    let mut deadline = Instant::now() + patience;
    let (msg_tx, msg_rx) = mpsc::channel::<(usize, Vec<u8>)>();

    // Phase 1: every live rank connects and says HELLO with its address.
    // The listener is non-blocking so the gather can interleave reaping:
    // a child that dies before HELLO would otherwise hang the accept.
    let mut conns: BTreeMap<usize, Conn> = BTreeMap::new();
    let mut addrs: Vec<Option<String>> = vec![None; cfg.p];
    listener
        .set_nonblocking(true)
        .map_err(|e| coord_err(format!("configure control listener: {e}")))?;
    while conns.len() < live {
        if let Some((rank, exit)) = sup.reap().into_iter().next() {
            return Err(exit.to_error(rank));
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let mut conn = Conn::Unix(stream);
                let hello = read_frame(&mut conn)
                    .map_err(|e| coord_err(format!("read HELLO: {e}")))?
                    .ok_or_else(|| coord_err("child closed before HELLO".to_string()))?;
                let (rank, addr) = decode_hello(&hello)?;
                if rank >= cfg.p || cfg.plan.is_crashed(rank) || conns.contains_key(&rank) {
                    return Err(coord_err(format!("unexpected HELLO from rank {rank}")));
                }
                addrs[rank] = Some(addr);
                conns.insert(rank, conn);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) => return Err(coord_err(format!("accept control connection: {e}"))),
        }
        if Instant::now() > deadline {
            return Err(CommError::Timeout {
                op: "coordinator_hello",
                rank: usize::MAX,
                waiting_on: usize::MAX,
            });
        }
    }

    // Phase 2: broadcast the address table; children build the mesh.
    let start = encode_start(&addrs);
    let mut scratch = Vec::new();
    for (rank, conn) in conns.iter_mut() {
        write_frame(conn, &mut scratch, &start)
            .map_err(|e| coord_err(format!("send START to rank {rank}: {e}")))?;
    }

    // Phase 3: per-connection reader threads feed one message queue.
    let mut writers: BTreeMap<usize, Conn> = BTreeMap::new();
    for (rank, conn) in conns {
        let reader = conn
            .try_clone()
            .map_err(|e| coord_err(format!("clone control stream: {e}")))?;
        writers.insert(rank, conn);
        spawn_control_reader(rank, reader, msg_tx.clone());
    }

    let mut ctl = Control {
        live: (0..cfg.p).filter(|r| !cfg.plan.is_crashed(*r)).collect(),
        writers,
        scratch,
        parked: BTreeMap::new(),
        in_barrier: BTreeSet::new(),
        done: BTreeSet::new(),
        all_done_sent: false,
        kills: Vec::new(),
        pending_respawn: None,
        killed_points: BTreeSet::new(),
    };
    let mut sink = ResultSink {
        results: vec![None; cfg.p],
        stats: CommStatsSnapshot::default(),
        liveness: LivenessStats::default(),
        detect_min: None,
    };

    // Completion is *identity*-based, not count-based: every rank still in
    // the live set must have its own RESULT slot filled. Counting reports
    // against `live.len()` is wrong once the live set shrinks mid-loop — a
    // rank that reported and then got demoted (teardown race on its control
    // socket) would satisfy the count on behalf of a survivor whose RESULT
    // connection was never accepted, stranding that child in a blocking
    // send and the coordinator in `wait_all`.
    while ctl.live.iter().any(|r| sink.results[*r].is_none()) {
        if Instant::now() > deadline {
            return Err(CommError::Timeout {
                op: "coordinator_result",
                rank: usize::MAX,
                waiting_on: usize::MAX,
            });
        }

        // Reap children that exited on their own. A clean exit without a
        // RESULT is NOT a death — the RESULT may still be in flight on a
        // late connection (the run deadline catches genuine hangs). A
        // non-clean exit (panic or signal) with no RESULT is an unplanned
        // death: demote the rank and let the survivors finish without it.
        for (rank, exit) in sup.reap() {
            if matches!(exit, ChildExit::Clean) || sink.results[rank].is_some() {
                continue;
            }
            if !ctl.live.contains(&rank) {
                // Already demoted (e.g. by a failed write); backfill how
                // it actually died.
                if let Some(k) = ctl
                    .kills
                    .iter_mut()
                    .rev()
                    .find(|k| k.rank == rank && k.exit.is_none())
                {
                    k.exit = Some(exit);
                }
                continue;
            }
            ctl.declare_unplanned_dead(rank, Some(exit));
            ctl.settle();
            deadline = Instant::now() + patience;
        }

        // Respawn a planned victim once every survivor is parked at a
        // gate: the rejoiner's mesh rebuild rendezvouses with survivors
        // inside their parked `protocol_point` loops, so parking first
        // removes every race from the re-admission handshake.
        if let Some((victim, _gate)) = ctl.pending_respawn {
            let survivors_parked = ctl
                .live
                .iter()
                .filter(|r| **r != victim)
                .all(|r| ctl.parked.contains_key(r));
            if survivors_parked {
                ctl.pending_respawn = None;
                sup.spawn(victim, true)?;
                if let Some(k) = ctl
                    .kills
                    .iter_mut()
                    .rev()
                    .find(|k| k.rank == victim && k.respawned_at_ns.is_none())
                {
                    k.respawned_at_ns = Some(now_unix_ns());
                }
                deadline = Instant::now() + patience;
            }
        }

        // Late connections carry either a RESULT (fresh socket per child)
        // or the HELLO of a respawned rank rejoining the cluster. The
        // first frame decides, inline, with a bounded read.
        match listener.accept() {
            Ok((stream, _)) => {
                let mut conn = Conn::Unix(stream);
                let _ = conn.set_read_timeout(Some(Duration::from_secs(5)));
                match read_frame(&mut conn) {
                    Ok(Some(msg)) if msg.first() == Some(&CTL_RESULT) => {
                        absorb_result(&mut sink, &msg, cfg.p)?;
                        deadline = Instant::now() + patience;
                    }
                    Ok(Some(msg)) if msg.first() == Some(&CTL_HELLO) => {
                        let (rank, addr) = decode_hello(&msg)?;
                        if rank >= cfg.p || !ctl.live.contains(&rank) {
                            return Err(coord_err(format!(
                                "unexpected rejoin HELLO from rank {rank}"
                            )));
                        }
                        addrs[rank] = Some(addr.clone());
                        let _ = conn.set_read_timeout(None);
                        write_frame(&mut conn, &mut ctl.scratch, &encode_start(&addrs)).map_err(
                            |e| coord_err(format!("send START to rejoined rank {rank}: {e}")),
                        )?;
                        let reader = conn
                            .try_clone()
                            .map_err(|e| coord_err(format!("clone control stream: {e}")))?;
                        ctl.writers.insert(rank, conn);
                        spawn_control_reader(rank, reader, msg_tx.clone());
                        // Tell every parked survivor to re-admit the rank.
                        let note = encode_rejoin(rank, &addr);
                        let others: Vec<usize> =
                            ctl.live.iter().copied().filter(|r| *r != rank).collect();
                        for peer in others {
                            ctl.write_to(peer, &note);
                        }
                        ctl.settle();
                        deadline = Instant::now() + patience;
                    }
                    _ => {} // dead-on-arrival connection: drop it
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {}
            Err(e) => return Err(coord_err(format!("accept result connection: {e}"))),
        }

        let (from, msg) = match msg_rx.recv_timeout(Duration::from_millis(20)) {
            Ok(m) => m,
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => {
                return Err(coord_err("all control readers exited".to_string()))
            }
        };
        match msg.first() {
            Some(&CTL_POINT) if msg.len() == 9 => {
                // lcc-lint: allow(unwrap) — msg.len() == 9 checked by the arm guard.
                let gate = u64::from_le_bytes(msg[1..9].try_into().expect("8 bytes"));
                let planned_kill = cfg.plan.kill_point(from) == Some(gate)
                    && !ctl.killed_points.contains(&(from, gate));
                if planned_kill {
                    ctl.killed_points.insert((from, gate));
                    let exit = sup.kill_rank(from);
                    ctl.writers.remove(&from);
                    ctl.parked.remove(&from);
                    ctl.kills.push(KillRecord {
                        rank: from,
                        point: gate,
                        planned: true,
                        killed_at_ns: now_unix_ns(),
                        respawned_at_ns: None,
                        exit,
                    });
                    if cfg.plan.kill_restart && cfg.restart.allows(sup.restart_count(from)) {
                        // Stays in `live`: it will rejoin. Survivors hold
                        // at their gates until it parks again.
                        ctl.pending_respawn = Some((from, gate));
                    } else {
                        ctl.live.remove(&from);
                        ctl.in_barrier.remove(&from);
                        ctl.done.remove(&from);
                    }
                } else {
                    ctl.parked.insert(from, gate);
                }
                ctl.settle();
                deadline = Instant::now() + patience;
            }
            Some(&CTL_BARRIER_ENTER) => {
                ctl.in_barrier.insert(from);
                ctl.settle();
                deadline = Instant::now() + patience;
            }
            Some(&CTL_DONE) => {
                ctl.done.insert(from);
                ctl.settle();
                deadline = Instant::now() + patience;
            }
            Some(&CTL_RESULT) => {
                absorb_result(&mut sink, &msg, cfg.p)?;
                deadline = Instant::now() + patience;
            }
            _ => return Err(coord_err("unknown control message".to_string())),
        }
    }

    if ctl.live.is_empty() {
        return Err(coord_err("every rank died before reporting".to_string()));
    }
    Ok(SocketRun {
        results: sink.results,
        stats: sink.stats,
        liveness: sink.liveness,
        kills: ctl.kills,
        first_detection_ns: sink.detect_min,
    })
}

fn decode_hello(msg: &[u8]) -> Result<(usize, String), CommError> {
    if msg.len() < 5 || msg[0] != CTL_HELLO {
        return Err(coord_err("malformed HELLO frame".to_string()));
    }
    let rank = u32::from_le_bytes([msg[1], msg[2], msg[3], msg[4]]) as usize;
    let addr = String::from_utf8(msg[5..].to_vec())
        .map_err(|_| coord_err("non-UTF-8 mesh address in HELLO".to_string()))?;
    Ok((rank, addr))
}

fn spawn_control_reader(rank: usize, mut reader: Conn, tx: mpsc::Sender<(usize, Vec<u8>)>) {
    std::thread::spawn(move || {
        while let Ok(Some(msg)) = read_frame(&mut reader) {
            if tx.send((rank, msg)).is_err() {
                break;
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn start_frame_round_trips() {
        let addrs = vec![
            Some("/tmp/a.sock".to_string()),
            None,
            Some("127.0.0.1:4000".to_string()),
        ];
        assert_eq!(decode_start(&encode_start(&addrs)).unwrap(), addrs);
    }

    #[test]
    fn truncated_start_is_a_typed_error() {
        let addrs = vec![Some("/tmp/a.sock".to_string())];
        let mut bytes = encode_start(&addrs);
        bytes.truncate(bytes.len() - 3);
        assert!(matches!(
            decode_start(&bytes),
            Err(CommError::Transport { .. })
        ));
        assert!(matches!(
            decode_start(&[0x42]),
            Err(CommError::Transport { .. })
        ));
    }

    #[test]
    fn frame_io_round_trips_over_a_socketpair() {
        let (a, b) = UnixStream::pair().expect("socketpair");
        let mut tx = Conn::Unix(a);
        let mut rx = Conn::Unix(b);
        let mut buf = Vec::new();
        write_frame(&mut tx, &mut buf, &[1, 2, 3]).unwrap();
        write_frame(&mut tx, &mut buf, &[]).unwrap();
        assert_eq!(read_frame(&mut rx).unwrap(), Some(vec![1, 2, 3]));
        assert_eq!(read_frame(&mut rx).unwrap(), Some(vec![]));
        drop(tx);
        assert_eq!(read_frame(&mut rx).unwrap(), None, "clean EOF");
    }

    #[test]
    fn rejoin_frame_round_trips() {
        let msg = encode_rejoin(7, "/tmp/r7.sock");
        assert_eq!(msg[0], CTL_REJOIN);
        assert_eq!(decode_rejoin(&msg), Some((7, "/tmp/r7.sock".to_string())));
        assert_eq!(decode_rejoin(&msg[..3]), None, "truncated frame");
    }

    #[test]
    fn restart_policy_follows_the_fault_plan() {
        let mut plan = crate::fault::FaultPlan::none();
        assert!(matches!(
            RestartPolicy::for_plan(&plan),
            RestartPolicy::Never
        ));
        assert!(!RestartPolicy::Never.respawns());
        plan.kill_points.insert(1, 0);
        plan.kill_restart = true;
        let policy = RestartPolicy::for_plan(&plan);
        assert!(policy.respawns());
        assert!(policy.allows(0), "first restart is within budget");
        assert!(!policy.allows(1), "budget is one restart per rank");
    }

    #[test]
    fn child_exit_classification() {
        use std::process::Command;
        let ok = Command::new("true").status().unwrap();
        assert_eq!(ChildExit::classify(ok), ChildExit::Clean);
        let fail = Command::new("false").status().unwrap();
        assert_eq!(ChildExit::classify(fail), ChildExit::Code(1));
    }

    #[test]
    fn oversized_length_prefix_is_rejected() {
        let (a, b) = UnixStream::pair().expect("socketpair");
        let mut tx = Conn::Unix(a);
        let mut rx = Conn::Unix(b);
        tx.write_all(&(u32::MAX).to_le_bytes()).unwrap();
        let err = read_frame(&mut rx).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
