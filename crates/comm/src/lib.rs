//! # lcc-comm — communication substrate
//!
//! Substitute for the paper's MPI cluster (see DESIGN.md §2), in two layers:
//!
//! * [`model`] — the analytic α-β cost model and the paper's equations:
//!   Eq. 1 (`T_FFT = 2·N³/(P·β_link)`), Eq. 2 (`t = α + β·m`), and Eq. 6
//!   (`T_ours = (k³ + sparse samples)/(P·β_link)`).
//! * [`cluster`] + [`dist_fft`] — a *functional* message-passing runtime:
//!   P ranks, instrumented all-to-all / allgather collectives, and the
//!   traditional slab-decomposed distributed 3D FFT and FFT convolution
//!   built on them. Measured bytes and round counts from these runs sit
//!   next to the analytic estimates in the experiment reports.
//! * [`transport`] — the pluggable byte-moving layer beneath
//!   [`cluster::CommWorld`] (see DESIGN.md §6): the epoch/ack/retry
//!   protocol and all `CommStats` accounting live above a small
//!   [`Transport`] trait, with an in-process backend (threads + crossbeam
//!   channels), a real-process socket backend (Unix-domain sockets; TCP
//!   loopback behind the `tcp` feature), and fault injection as a
//!   backend-agnostic [`FaultTransport`] decorator. The conformance suite
//!   (`tests/transport_conformance.rs`) holds the backends to bit-identical
//!   results and exactly equal counter totals per fault seed.
//! * [`fault`] — deterministic, seed-driven fault injection threaded
//!   through the cluster: dropped/duplicated frames, delayed senders and
//!   crashed ranks, with a retrying ack protocol underneath the collectives
//!   so failures surface as typed [`CommError`]s (or degrade gracefully via
//!   the `*_surviving` collectives) instead of deadlocks. Every fault
//!   decision is a keyed hash of the plan seed, so chaos runs replay
//!   bit-for-bit.

//! * [`actor`] — the pure protocol kernel (`ProtocolActor`): every
//!   decision the epoch/ack/retry/membership protocol makes, as
//!   clock-free transition functions. [`cluster::CommWorld`] calls these
//!   kernels on the real wire; the `lcc-check` model checker drives the
//!   same kernels through every interleaving (see DESIGN.md §6b), so
//!   there is no forked protocol logic to drift.
//! * [`membership`] — epoch-stamped [`ClusterView`]s: each endpoint's
//!   belief about who is alive, advanced by `CommWorld::detect_failures`
//!   sweeps so that all survivors of a fault seed converge on the same
//!   view sequence, enabling the self-healing epoch-tagged collectives
//!   (`alltoall_converged` / `allgather_converged`).

pub mod actor;
pub mod cluster;
pub mod dist_fft;
pub mod fault;
pub mod membership;
pub mod model;
pub mod pencil_fft;
pub mod transport;

pub use actor::{
    ActorState, ConvergedState, Convergence, DataDisposition, EpochDisposition, Phase,
    ProtocolActor, SendPlan, SweepOutcome,
};
pub use cluster::{
    decode_f64s, encode_f64s, run_cluster, run_cluster_with_faults, try_decode_f64s, CodecError,
    CommStats, CommStatsSnapshot, CommWorld, ConvergedExchange, ACK_WIRE_BYTES,
};
pub use dist_fft::{
    convolve_distributed, decode_complex, encode_complex, forward_3d, gather_slabs, inverse_3d,
    scatter_slabs, transpose_exchange, try_decode_complex,
};
pub use fault::{CommError, FaultPlan, RetryConfig, RetryPolicy};
pub use membership::ClusterView;
pub use model::{lowcomm_volume, traditional_conv_volume, AlphaBeta, CommScenario};
pub use pencil_fft::{grid_coords, pencil_forward_3d, pencil_inverse_3d, sub_alltoall};
pub use transport::fault::{FaultEvent, FaultEventLog, FaultTransport};
pub use transport::liveness::{
    adaptive_threshold, ewma_observe, LivenessBoard, LivenessStats, EWMA_ALPHA, FLOOR_PERIODS,
    MIN_SAMPLES, PHI_SIGMAS,
};
pub use transport::{PointOutcome, RecvOutcome, Transport};
