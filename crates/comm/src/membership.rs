//! Epoch-stamped cluster membership.
//!
//! A [`ClusterView`] is one rank's belief about which ranks are alive. It
//! starts optimistic (everyone alive, epoch 0) and only ever shrinks: each
//! [`crate::cluster::CommWorld::detect_failures`] sweep that discovers new
//! deaths bumps the epoch. Because detection is driven by typed
//! [`crate::fault::CommError`]s and confirmed against the deterministic
//! [`crate::fault::FaultPlan`] (the simulator's stand-in for a health
//! probe), every survivor of a given fault seed converges on the *same*
//! sequence of views — same members, same epochs — regardless of thread
//! interleaving. That shared view is what lets the epoch-tagged collectives
//! ([`crate::cluster::CommWorld::alltoall_epoch`]) discard stale traffic
//! from before a failure and re-run an exchange deterministically.
//!
//! Membership lives entirely *above* the [`crate::transport::Transport`]
//! seam: the errors that feed detection come from whichever backend
//! carries the frames — simulated thread channels or real process
//! sockets — but the view sequence is a pure function of the fault seed
//! either way. The conformance suite (`tests/transport_conformance.rs`)
//! pins this by requiring survivors of the same seed to report the same
//! converged epoch on every backend. *How soon* a death is noticed (a
//! fired receive deadline vs an absent socket connection) is the one
//! transport-dependent quantity, which is why detection-side counters are
//! excluded from the suite's exact-equality clause.

use std::collections::BTreeSet;

/// One rank's epoch-stamped belief about cluster membership.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct ClusterView {
    size: usize,
    epoch: u64,
    dead: BTreeSet<usize>,
}

impl ClusterView {
    /// The optimistic initial view: all `size` ranks alive, epoch 0.
    pub fn all_alive(size: usize) -> Self {
        ClusterView {
            size,
            epoch: 0,
            dead: BTreeSet::new(),
        }
    }

    /// Total rank count (alive and dead).
    pub fn size(&self) -> usize {
        self.size
    }

    /// Membership epoch: bumped once per detection sweep that found new
    /// deaths. Two views with equal epochs from the same run agree on the
    /// member set.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Whether `rank` is believed alive.
    pub fn is_alive(&self, rank: usize) -> bool {
        rank < self.size && !self.dead.contains(&rank)
    }

    /// Ranks believed dead, ascending.
    pub fn dead_ranks(&self) -> impl Iterator<Item = usize> + '_ {
        self.dead.iter().copied()
    }

    /// Ranks believed alive, ascending.
    pub fn live_ranks(&self) -> Vec<usize> {
        (0..self.size).filter(|&r| self.is_alive(r)).collect()
    }

    /// Number of ranks believed alive.
    pub fn live_count(&self) -> usize {
        self.size - self.dead.len()
    }

    /// Replaces the dead set, bumping the epoch iff membership changed.
    /// Views only shrink: resurrecting a dead rank is a logic error.
    pub(crate) fn observe_dead(&mut self, dead: BTreeSet<usize>) -> bool {
        debug_assert!(
            self.dead.is_subset(&dead),
            "membership views must be monotone: {:?} -> {:?}",
            self.dead,
            dead
        );
        if dead == self.dead {
            return false;
        }
        self.dead = dead;
        self.epoch += 1;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_optimistic() {
        let v = ClusterView::all_alive(4);
        assert_eq!(v.epoch(), 0);
        assert_eq!(v.live_count(), 4);
        assert!(v.is_alive(0) && v.is_alive(3));
        assert!(!v.is_alive(4), "out-of-range ranks are not members");
        assert_eq!(v.live_ranks(), vec![0, 1, 2, 3]);
        assert_eq!(v.dead_ranks().count(), 0);
    }

    #[test]
    fn epoch_bumps_only_on_change() {
        let mut v = ClusterView::all_alive(4);
        assert!(!v.observe_dead(BTreeSet::new()));
        assert_eq!(v.epoch(), 0);
        assert!(v.observe_dead(BTreeSet::from([2])));
        assert_eq!(v.epoch(), 1);
        assert!(!v.is_alive(2));
        assert_eq!(v.live_ranks(), vec![0, 1, 3]);
        // Same set again: no epoch change.
        assert!(!v.observe_dead(BTreeSet::from([2])));
        assert_eq!(v.epoch(), 1);
        // A further death: epoch 2.
        assert!(v.observe_dead(BTreeSet::from([2, 3])));
        assert_eq!(v.epoch(), 2);
        assert_eq!(v.live_count(), 2);
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        /// Folds raw (possibly duplicate, possibly out-of-range) failure
        /// reports into the cumulative dead sets a detection sweep would
        /// feed the view.
        fn cumulative(size: usize, reports: &[Vec<usize>]) -> Vec<BTreeSet<usize>> {
            let mut cum = BTreeSet::new();
            reports
                .iter()
                .map(|r| {
                    cum.extend(r.iter().copied().filter(|&x| x < size));
                    cum.clone()
                })
                .collect()
        }

        proptest! {
            /// The epoch counts exactly the strict growths of the dead
            /// set — duplicate reports never bump it — and the view's
            /// partition invariants hold after every transition.
            #[test]
            fn epoch_counts_exactly_the_strict_growths(
                size in 1usize..9,
                reports in proptest::collection::vec(
                    proptest::collection::vec(0usize..8, 0..4),
                    0..12,
                ),
            ) {
                let mut v = ClusterView::all_alive(size);
                let mut growths = 0u64;
                let mut prev = 0usize;
                for dead in cumulative(size, &reports) {
                    let grew = dead.len() > prev;
                    prev = dead.len();
                    prop_assert_eq!(v.observe_dead(dead.clone()), grew);
                    if grew {
                        growths += 1;
                    }
                    prop_assert_eq!(v.epoch(), growths);
                    prop_assert_eq!(v.live_count(), size - dead.len());
                    prop_assert!(dead.iter().all(|&r| !v.is_alive(r)));
                    prop_assert!(v.live_ranks().iter().all(|&r| v.is_alive(r)));
                    prop_assert_eq!(v.dead_ranks().collect::<BTreeSet<_>>(), dead);
                }
                // Each growth buries at least one rank, so the epoch is
                // bounded by the rank count no matter how noisy the
                // report stream was.
                prop_assert!(v.epoch() <= size as u64);
            }

            /// Re-delivering every cumulative report an arbitrary number
            /// of extra times — the concurrent-detection interleaving,
            /// where several sweeps observe the same ground truth — lands
            /// on a view identical to the duplicate-free run.
            #[test]
            fn duplicated_report_streams_converge_to_the_same_view(
                size in 1usize..9,
                reports in proptest::collection::vec(
                    proptest::collection::vec(0usize..8, 0..4),
                    0..8,
                ),
                dups in proptest::collection::vec(1usize..4, 8usize),
            ) {
                let mut once = ClusterView::all_alive(size);
                let mut noisy = ClusterView::all_alive(size);
                for (i, dead) in cumulative(size, &reports).into_iter().enumerate() {
                    once.observe_dead(dead.clone());
                    for _ in 0..dups[i % dups.len()] {
                        noisy.observe_dead(dead.clone());
                    }
                }
                prop_assert_eq!(once, noisy);
            }
        }
    }
}
