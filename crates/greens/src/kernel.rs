//! The scalar convolution-kernel abstraction.
//!
//! The pipeline multiplies each frequency bin by a transfer function Γ̂(ξ)
//! evaluated *on the fly* — "the closed form of the Green's function for
//! MASSIF is known in frequency domain, so it can be computed on-the-fly
//! during convolution, further reducing memory requirement" (§2.2).

use lcc_fft::Complex64;

/// Integer frequency index wrapped to the symmetric range
/// `(-n/2, n/2]` — the signed frequency a DFT bin represents.
#[inline]
pub fn wrap_freq(f: usize, n: usize) -> i64 {
    let f = f as i64;
    let n = n as i64;
    if f > n / 2 {
        f - n
    } else {
        f
    }
}

/// A scalar transfer function on the `n³` frequency grid.
pub trait KernelSpectrum: Send + Sync {
    /// Grid size n.
    fn n(&self) -> usize;

    /// Transfer-function value at frequency bin `(f0, f1, f2)`,
    /// each in `0..n`.
    fn eval(&self, f: [usize; 3]) -> Complex64;

    /// Spatial center of the kernel's impulse response.
    ///
    /// Convolving a sub-domain with a kernel centered at `c` translates the
    /// response by `c` (cyclically): the octree "hotspot" region is the
    /// sub-domain shifted by this offset. Kernels whose peak sits at the
    /// origin return `[0, 0, 0]` (the default); the paper's POC Gaussian is
    /// centered at `N/2` to keep its spectrum real.
    fn center(&self) -> [usize; 3] {
        [0, 0, 0]
    }

    /// Evaluates a full pencil of bins along axis 2 into `out`
    /// (length n). Default loops over [`Self::eval`]; implementations with
    /// separable structure can override for speed.
    fn eval_pencil_axis2(&self, f0: usize, f1: usize, out: &mut [Complex64]) {
        assert_eq!(out.len(), self.n());
        for (f2, o) in out.iter_mut().enumerate() {
            *o = self.eval([f0, f1, f2]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wrap_freq_ranges() {
        assert_eq!(wrap_freq(0, 8), 0);
        assert_eq!(wrap_freq(3, 8), 3);
        assert_eq!(wrap_freq(4, 8), 4, "Nyquist stays positive");
        assert_eq!(wrap_freq(5, 8), -3);
        assert_eq!(wrap_freq(7, 8), -1);
    }

    struct Flat(usize);
    impl KernelSpectrum for Flat {
        fn n(&self) -> usize {
            self.0
        }
        fn eval(&self, _f: [usize; 3]) -> Complex64 {
            Complex64::ONE
        }
    }

    #[test]
    fn default_pencil_matches_eval() {
        let k = Flat(4);
        let mut out = vec![Complex64::ZERO; 4];
        k.eval_pencil_axis2(1, 2, &mut out);
        for v in out {
            assert_eq!(v, Complex64::ONE);
        }
    }
}
