//! Screened Poisson (Yukawa / modified Helmholtz) Green's function.
//!
//! The paper motivates its kernel family with "complicated equations
//! relating to heat flow, light and particle scattering" (§3.2). The
//! screened Poisson operator `(−∇² + κ²)` is the canonical such kernel:
//! its free-space Green's function `e^{−κr}/(4πr)` decays *faster* than
//! Poisson's `1/(4πr)` — the screening length `1/κ` plays exactly the role
//! of the Gaussian's σ in the sampling schedule. Implicit-diffusion steps
//! (`u − Δt·∇²u = f`) are this kernel with `κ² = 1/Δt`, which is the "heat
//! flow" instance.

use lcc_fft::Complex64;
use lcc_grid::Grid3;

use crate::kernel::KernelSpectrum;

/// Spectral inverse of the discrete screened Laplacian
/// `Ĝ(ξ) = 1 / (κ² + Σᵢ (2 − 2cos(2πfᵢ/n)))` on a periodic `n³` grid.
///
/// Unlike the pure Poisson kernel there is no zero-mode gauge: `κ > 0`
/// makes the operator invertible everywhere.
#[derive(Clone, Copy, Debug)]
pub struct ScreenedPoissonSpectrum {
    n: usize,
    kappa: f64,
}

impl ScreenedPoissonSpectrum {
    /// Creates the spectrum; `kappa > 0`.
    pub fn new(n: usize, kappa: f64) -> Self {
        assert!(n >= 2, "grid too small");
        assert!(
            kappa > 0.0,
            "kappa must be positive (use PoissonSpectrum for kappa = 0)"
        );
        ScreenedPoissonSpectrum { n, kappa }
    }

    /// The screening parameter κ.
    pub fn kappa(&self) -> f64 {
        self.kappa
    }

    /// The screening length `1/κ` — the natural `spread` input for
    /// [`lcc_octree`-style] sampling schedules.
    pub fn screening_length(&self) -> f64 {
        1.0 / self.kappa
    }

    /// Discrete symbol `κ² + Σᵢ (2 − 2cos(2πfᵢ/n))` at bin `f`.
    pub fn symbol(&self, f: [usize; 3]) -> f64 {
        let n = self.n as f64;
        self.kappa * self.kappa
            + f.iter()
                .map(|&fi| 2.0 - 2.0 * (2.0 * std::f64::consts::PI * fi as f64 / n).cos())
                .sum::<f64>()
    }
}

impl KernelSpectrum for ScreenedPoissonSpectrum {
    fn n(&self) -> usize {
        self.n
    }

    fn eval(&self, f: [usize; 3]) -> Complex64 {
        Complex64::from_real(1.0 / self.symbol(f))
    }
}

/// The continuous Yukawa kernel `e^{−κr}/(4πr)` sampled on an `n³` grid
/// centered at `n/2`, with the cell-averaged regularization at `r = 0`
/// (mirrors [`crate::poisson::free_space_kernel`]).
pub fn yukawa_kernel(n: usize, kappa: f64) -> Grid3<f64> {
    assert!(n >= 2 && n.is_multiple_of(2), "grid size must be even");
    assert!(kappa >= 0.0);
    let c = (n / 2) as f64;
    let four_pi = 4.0 * std::f64::consts::PI;
    let r_eq = (3.0 / four_pi).cbrt() / 2.0;
    Grid3::from_fn((n, n, n), |x, y, z| {
        let r = ((x as f64 - c).powi(2) + (y as f64 - c).powi(2) + (z as f64 - c).powi(2)).sqrt();
        let r_eff = if r == 0.0 { r_eq } else { r };
        (-kappa * r_eff).exp() / (four_pi * r_eff)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::poisson::{decay_profile, PoissonSpectrum};
    use lcc_fft::{fft_3d, ifft_3d_normalized, FftDirection, FftPlanner};

    #[test]
    fn no_zero_mode() {
        let s = ScreenedPoissonSpectrum::new(16, 0.5);
        assert!(s.eval([0, 0, 0]).re > 0.0);
        assert!((s.eval([0, 0, 0]).re - 1.0 / 0.25).abs() < 1e-12);
    }

    #[test]
    fn solves_screened_poisson() {
        // (κ² − ∇²_h) u = f must hold after spectral solve.
        let n = 8;
        let kappa = 0.7;
        let planner = FftPlanner::new();
        let s = ScreenedPoissonSpectrum::new(n, kappa);
        let mut f = vec![Complex64::ZERO; n * n * n];
        f[(2 * n + 3) * n + 4] = Complex64::ONE;
        let mut u = f.clone();
        fft_3d(&planner, &mut u, (n, n, n), FftDirection::Forward);
        for f0 in 0..n {
            for f1 in 0..n {
                for f2 in 0..n {
                    u[(f0 * n + f1) * n + f2] *= s.eval([f0, f1, f2]);
                }
            }
        }
        ifft_3d_normalized(&planner, &mut u, (n, n, n));
        let idx = |x: usize, y: usize, z: usize| ((x % n) * n + (y % n)) * n + (z % n);
        for x in 0..n {
            for y in 0..n {
                for z in 0..n {
                    let uc = |a: usize, b: usize, c: usize| u[idx(a, b, c)].re;
                    let lap = 6.0 * uc(x, y, z)
                        - uc(x + 1, y, z)
                        - uc(x + n - 1, y, z)
                        - uc(x, y + 1, z)
                        - uc(x, y + n - 1, z)
                        - uc(x, y, z + 1)
                        - uc(x, y, z + n - 1);
                    let got = kappa * kappa * uc(x, y, z) + lap;
                    assert!(
                        (got - f[idx(x, y, z)].re).abs() < 1e-9,
                        "residual at ({x},{y},{z})"
                    );
                }
            }
        }
    }

    #[test]
    fn decays_faster_than_poisson() {
        let n = 32;
        let yukawa = yukawa_kernel(n, 0.8);
        let poisson = crate::poisson::free_space_kernel(n);
        let py = decay_profile(&yukawa);
        let pp = decay_profile(&poisson);
        // Normalized tails: Yukawa must fall off faster.
        let ry = py[12] / py[2];
        let rp = pp[12] / pp[2];
        assert!(ry < rp * 0.2, "yukawa tail {ry} vs poisson {rp}");
    }

    #[test]
    fn kappa_zero_limit_matches_poisson_spectrum() {
        // Small κ: screened spectrum approaches the Poisson inverse away
        // from the zero mode.
        let n = 16;
        let s = ScreenedPoissonSpectrum::new(n, 1e-6);
        let p = PoissonSpectrum::new(n);
        for f in [[1usize, 0, 0], [3, 5, 7]] {
            let a = s.eval(f).re;
            let b = p.eval(f).re;
            assert!((a - b).abs() / b < 1e-9);
        }
    }

    #[test]
    fn screening_length_inverse_of_kappa() {
        let s = ScreenedPoissonSpectrum::new(8, 0.25);
        assert_eq!(s.screening_length(), 4.0);
        assert_eq!(s.kappa(), 0.25);
    }

    #[test]
    #[should_panic(expected = "kappa must be positive")]
    fn zero_kappa_rejected() {
        ScreenedPoissonSpectrum::new(8, 0.0);
    }
}
