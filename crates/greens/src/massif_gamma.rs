//! The MASSIF Green's operator Γ̂ (paper Eq. 3).
//!
//! For an isotropic reference medium with Lamé pair (λ₀, μ₀):
//!
//! ```text
//! Γ̂_ijkl(ξ) = 1/(4 μ₀ |ξ|²) (δ_ki ξ_l ξ_j + δ_li ξ_k ξ_j + δ_kj ξ_l ξ_i + δ_lj ξ_k ξ_i)
//!            − (λ₀+μ₀)/(μ₀(λ₀+2μ₀)) · ξ_i ξ_j ξ_k ξ_l / |ξ|⁴
//! ```
//!
//! Γ̂ is homogeneous of degree 0 in ξ, so integer wrapped frequencies can be
//! used directly. Γ̂(0) is defined as 0 (the Moulinec–Suquet convention: the
//! mean strain is prescribed, not solved for). Contracting against a
//! symmetric σ̂ reduces to two small dot products per point:
//!
//! `Δε̂_ij = (ξ_i s_j + ξ_j s_i)/(2 μ₀ |ξ|²) − c · ξ_i ξ_j (ξ·s)/|ξ|⁴`,
//! with `s_i = Σ_l ξ_l σ̂_il` and `c = (λ₀+μ₀)/(μ₀(λ₀+2μ₀))`.

use lcc_fft::Complex64;

use crate::kernel::wrap_freq;
use crate::sym::Sym3C;

/// The Γ̂ operator for an `n³` grid and an isotropic reference medium.
#[derive(Clone, Copy, Debug)]
pub struct MassifGamma {
    n: usize,
    lambda0: f64,
    mu0: f64,
}

impl MassifGamma {
    /// Creates the operator. `mu0 > 0`, `lambda0 + 2 mu0 > 0` required for
    /// a positive-definite reference medium.
    pub fn new(n: usize, lambda0: f64, mu0: f64) -> Self {
        assert!(mu0 > 0.0, "mu0 must be positive");
        assert!(
            lambda0 + 2.0 * mu0 > 0.0,
            "lambda0 + 2 mu0 must be positive"
        );
        MassifGamma { n, lambda0, mu0 }
    }

    /// Grid size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Reference Lamé coefficients `(λ₀, μ₀)`.
    pub fn reference(&self) -> (f64, f64) {
        (self.lambda0, self.mu0)
    }

    /// Wrapped continuous frequency vector for bin `f`.
    #[inline]
    fn xi(&self, f: [usize; 3]) -> [f64; 3] {
        [
            wrap_freq(f[0], self.n) as f64,
            wrap_freq(f[1], self.n) as f64,
            wrap_freq(f[2], self.n) as f64,
        ]
    }

    /// Explicit component Γ̂_ijkl at bin `f` (reference implementation;
    /// the pipeline uses [`Self::apply`]).
    pub fn component(&self, f: [usize; 3], i: usize, j: usize, k: usize, l: usize) -> f64 {
        let xi = self.xi(f);
        let q2 = xi[0] * xi[0] + xi[1] * xi[1] + xi[2] * xi[2];
        if q2 == 0.0 {
            return 0.0;
        }
        let d = |a: usize, b: usize| if a == b { 1.0 } else { 0.0 };
        let t1 = (d(k, i) * xi[l] * xi[j]
            + d(l, i) * xi[k] * xi[j]
            + d(k, j) * xi[l] * xi[i]
            + d(l, j) * xi[k] * xi[i])
            / (4.0 * self.mu0 * q2);
        let c = (self.lambda0 + self.mu0) / (self.mu0 * (self.lambda0 + 2.0 * self.mu0));
        let t2 = c * xi[i] * xi[j] * xi[k] * xi[l] / (q2 * q2);
        t1 - t2
    }

    /// Applies Γ̂(ξ) : σ̂ at bin `f`.
    pub fn apply(&self, f: [usize; 3], sigma: &Sym3C) -> Sym3C {
        let xi = self.xi(f);
        let q2 = xi[0] * xi[0] + xi[1] * xi[1] + xi[2] * xi[2];
        if q2 == 0.0 {
            return Sym3C::ZERO;
        }
        // s_i = Σ_l ξ_l σ_il
        let mut s = [Complex64::ZERO; 3];
        for (i, si) in s.iter_mut().enumerate() {
            for (l, &x) in xi.iter().enumerate() {
                *si += sigma.get(i, l) * x;
            }
        }
        // ξ·s
        let mut xs = Complex64::ZERO;
        for i in 0..3 {
            xs += s[i] * xi[i];
        }
        let c = (self.lambda0 + self.mu0) / (self.mu0 * (self.lambda0 + 2.0 * self.mu0));
        let inv2mu = 1.0 / (2.0 * self.mu0 * q2);
        let c4 = c / (q2 * q2);
        let mut out = Sym3C::ZERO;
        for i in 0..3 {
            for j in i..3 {
                let v = (s[j] * xi[i] + s[i] * xi[j]) * inv2mu - xs * (c4 * xi[i] * xi[j]);
                out.set(i, j, v);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcc_fft::c64;
    use lcc_grid::IsotropicStiffness;

    const N: usize = 16;

    fn gamma() -> MassifGamma {
        MassifGamma::new(N, 1.2, 0.9)
    }

    #[test]
    fn zero_frequency_is_zero() {
        let g = gamma();
        let sigma = Sym3C::from_real(&lcc_grid::Sym3::IDENTITY);
        assert_eq!(g.apply([0, 0, 0], &sigma), Sym3C::ZERO);
        assert_eq!(g.component([0, 0, 0], 0, 0, 0, 0), 0.0);
    }

    #[test]
    fn minor_and_major_symmetries() {
        let g = gamma();
        let f = [3, 5, 1];
        for i in 0..3 {
            for j in 0..3 {
                for k in 0..3 {
                    for l in 0..3 {
                        let base = g.component(f, i, j, k, l);
                        assert!((base - g.component(f, j, i, k, l)).abs() < 1e-12);
                        assert!((base - g.component(f, i, j, l, k)).abs() < 1e-12);
                        assert!((base - g.component(f, k, l, i, j)).abs() < 1e-12);
                    }
                }
            }
        }
    }

    #[test]
    fn apply_matches_component_contraction() {
        let g = gamma();
        let f = [2, 7, 4];
        let mut sigma = Sym3C::ZERO;
        sigma.set(0, 0, c64(1.0, 0.5));
        sigma.set(1, 1, c64(-2.0, 1.0));
        sigma.set(2, 2, c64(0.3, -0.4));
        sigma.set(1, 2, c64(0.8, 0.1));
        sigma.set(0, 2, c64(-0.6, 0.9));
        sigma.set(0, 1, c64(0.2, -0.2));
        let fast = g.apply(f, &sigma);
        for i in 0..3 {
            for j in 0..3 {
                let mut acc = Complex64::ZERO;
                for k in 0..3 {
                    for l in 0..3 {
                        acc += sigma.get(k, l) * g.component(f, i, j, k, l);
                    }
                }
                assert!(
                    (fast.get(i, j) - acc).norm() < 1e-10,
                    "mismatch at ({i},{j}): {:?} vs {acc:?}",
                    fast.get(i, j)
                );
            }
        }
    }

    #[test]
    fn gamma_is_projection_on_compatible_fields() {
        // Fundamental property: for any displacement amplitude u and
        // frequency ξ, the compatible strain ε̂_ij = (ξ_i u_j + ξ_j u_i)/2
        // satisfies Γ̂ : (C₀ : ε̂) = ε̂. This pins down every constant in
        // Eq. 3 at once.
        let (l0, m0) = (1.2, 0.9);
        let g = MassifGamma::new(N, l0, m0);
        let c0 = IsotropicStiffness::new(l0, m0);
        let u = [c64(0.7, -0.3), c64(-1.1, 0.2), c64(0.4, 0.9)];
        for f in [[1usize, 0, 0], [0, 3, 0], [2, 5, 7], [9, 9, 9], [15, 1, 8]] {
            let xi = [
                wrap_freq(f[0], N) as f64,
                wrap_freq(f[1], N) as f64,
                wrap_freq(f[2], N) as f64,
            ];
            let mut eps = Sym3C::ZERO;
            for i in 0..3 {
                for j in i..3 {
                    eps.set(i, j, (u[j] * xi[i] + u[i] * xi[j]).scale(0.5));
                }
            }
            // σ̂ = C₀ : ε̂ (isotropic: λ tr I + 2μ ε), componentwise complex.
            let tr = eps.trace();
            let mut sig = Sym3C::ZERO;
            for i in 0..3 {
                for j in i..3 {
                    let mut v = eps.get(i, j).scale(2.0 * c0.mu);
                    if i == j {
                        v += tr.scale(c0.lambda);
                    }
                    sig.set(i, j, v);
                }
            }
            let back = g.apply(f, &sig);
            for i in 0..3 {
                for j in 0..3 {
                    assert!(
                        (back.get(i, j) - eps.get(i, j)).norm() < 1e-10,
                        "projection failed at f={f:?}, ({i},{j})"
                    );
                }
            }
        }
    }

    #[test]
    fn homogeneous_degree_zero() {
        // Γ̂ depends only on the direction of ξ: scaling the frequency
        // (within the same grid) leaves components unchanged.
        let g = MassifGamma::new(64, 2.0, 1.0);
        let a = g.component([1, 2, 3], 0, 1, 2, 0);
        let b = g.component([2, 4, 6], 0, 1, 2, 0);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "mu0 must be positive")]
    fn invalid_reference_rejected() {
        MassifGamma::new(8, 1.0, 0.0);
    }
}
