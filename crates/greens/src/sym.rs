//! Complex symmetric 3×3 tensors for frequency-domain tensor fields.
//!
//! The MASSIF inner loop works on the Fourier transforms of symmetric
//! stress/strain fields; each frequency point carries a symmetric 3×3
//! *complex* tensor. Component order matches `lcc_grid::Sym3`:
//! `(xx, yy, zz, yz, xz, xy)`.

use lcc_fft::Complex64;
use lcc_grid::Sym3;

/// Symmetric 3×3 complex tensor.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct Sym3C {
    /// The six independent components `(xx, yy, zz, yz, xz, xy)`.
    pub c: [Complex64; 6],
}

impl Sym3C {
    /// The zero tensor.
    pub const ZERO: Sym3C = Sym3C {
        c: [Complex64::ZERO; 6],
    };

    /// Widens a real symmetric tensor.
    pub fn from_real(t: &Sym3) -> Self {
        let mut c = [Complex64::ZERO; 6];
        for (o, &v) in c.iter_mut().zip(&t.c) {
            *o = Complex64::from_real(v);
        }
        Sym3C { c }
    }

    /// The real part as a real symmetric tensor.
    pub fn real(&self) -> Sym3 {
        let mut out = Sym3::ZERO;
        for (o, v) in out.c.iter_mut().zip(&self.c) {
            *o = v.re;
        }
        out
    }

    /// Component `(i, j)` of the full matrix.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> Complex64 {
        match (i, j) {
            (0, 0) => self.c[0],
            (1, 1) => self.c[1],
            (2, 2) => self.c[2],
            (1, 2) | (2, 1) => self.c[3],
            (0, 2) | (2, 0) => self.c[4],
            (0, 1) | (1, 0) => self.c[5],
            _ => panic!("index out of range"),
        }
    }

    /// Sets component `(i, j)` (and its symmetric partner).
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: Complex64) {
        match (i, j) {
            (0, 0) => self.c[0] = v,
            (1, 1) => self.c[1] = v,
            (2, 2) => self.c[2] = v,
            (1, 2) | (2, 1) => self.c[3] = v,
            (0, 2) | (2, 0) => self.c[4] = v,
            (0, 1) | (1, 0) => self.c[5] = v,
            _ => panic!("index out of range"),
        }
    }

    /// Trace.
    #[inline]
    pub fn trace(&self) -> Complex64 {
        self.c[0] + self.c[1] + self.c[2]
    }

    /// Adds another tensor component-wise.
    pub fn add(&self, o: &Sym3C) -> Sym3C {
        let mut out = *self;
        for (a, b) in out.c.iter_mut().zip(&o.c) {
            *a += *b;
        }
        out
    }

    /// Subtracts another tensor component-wise.
    pub fn sub(&self, o: &Sym3C) -> Sym3C {
        let mut out = *self;
        for (a, b) in out.c.iter_mut().zip(&o.c) {
            *a -= *b;
        }
        out
    }

    /// Scales by a complex factor.
    pub fn scale(&self, s: Complex64) -> Sym3C {
        let mut out = *self;
        for a in out.c.iter_mut() {
            *a *= s;
        }
        out
    }

    /// Frobenius norm of the full matrix (shear counted twice).
    pub fn frobenius(&self) -> f64 {
        let d: f64 = self.c[..3].iter().map(|v| v.norm_sqr()).sum();
        let s: f64 = self.c[3..].iter().map(|v| v.norm_sqr()).sum();
        (d + 2.0 * s).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcc_fft::c64;

    #[test]
    fn roundtrip_real() {
        let t = Sym3::new(1.0, 2.0, 3.0, 4.0, 5.0, 6.0);
        let c = Sym3C::from_real(&t);
        assert_eq!(c.real(), t);
        assert_eq!(c.get(1, 2), Complex64::from_real(4.0));
    }

    #[test]
    fn get_set_symmetry() {
        let mut t = Sym3C::ZERO;
        t.set(2, 0, c64(1.0, -1.0));
        assert_eq!(t.get(0, 2), c64(1.0, -1.0));
    }

    #[test]
    fn arithmetic() {
        let a = Sym3C::from_real(&Sym3::IDENTITY);
        let b = a.scale(c64(2.0, 0.0));
        assert_eq!(b.sub(&a).trace(), c64(3.0, 0.0));
        assert_eq!(a.add(&a).c, b.c);
    }

    #[test]
    fn frobenius_matches_real() {
        let t = Sym3::new(1.0, 2.0, 3.0, 4.0, 5.0, 6.0);
        let c = Sym3C::from_real(&t);
        assert!((c.frobenius() - t.frobenius()).abs() < 1e-12);
    }
}
