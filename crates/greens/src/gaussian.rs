//! The sharp Gaussian proof-of-concept kernel.
//!
//! "For the POC implementation, we simplify this by using a decaying
//! function with the same properties but without making it specific to a
//! particular material. A sharp Gaussian function fits the requirement. The
//! center of the Gaussian should be at (N/2+1, N/2+1, N/2+1) when using an
//! N×N×N grid. This makes sure that the Fourier transform of the Gaussian
//! is real-valued." (§4; the 1-based Fortran index N/2+1 is the 0-based
//! N/2 here.)
//!
//! The 3D Gaussian is separable, so the spectrum is the outer product of a
//! single 1D spectrum — O(N) storage, evaluated on the fly per bin, exactly
//! the "compute the kernel during convolution" structure the paper exploits.

use lcc_fft::{Complex64, FftDirection, FftPlanner};
use lcc_grid::Grid3;

use crate::kernel::KernelSpectrum;

/// A centered 3D Gaussian kernel `exp(-|x - N/2|² / 2σ²)` with its exact
/// (discrete) real-valued spectrum.
pub struct GaussianKernel {
    n: usize,
    sigma: f64,
    /// Exact 1D DFT of the centered 1D Gaussian; real by symmetry.
    spec1d: Vec<f64>,
}

impl GaussianKernel {
    /// Builds the kernel for an `n`-point grid (n even) with width `sigma`.
    pub fn new(n: usize, sigma: f64) -> Self {
        assert!(
            n >= 2 && n.is_multiple_of(2),
            "grid size must be even, got {n}"
        );
        assert!(sigma > 0.0, "sigma must be positive");
        // 1D centered Gaussian, then exact DFT. The sequence is even around
        // index 0 (x[i] = x[(n-i) mod n]) because it is symmetric about n/2,
        // so its DFT is real.
        let planner = FftPlanner::new();
        let mut buf: Vec<Complex64> = (0..n)
            .map(|i| {
                let d = i as f64 - (n / 2) as f64;
                Complex64::from_real((-d * d / (2.0 * sigma * sigma)).exp())
            })
            .collect();
        planner.plan(n, FftDirection::Forward).process(&mut buf);
        let spec1d = buf.iter().map(|v| v.re).collect();
        GaussianKernel { n, sigma, spec1d }
    }

    /// The Gaussian width.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// 1D spatial profile value at index `i`.
    pub fn profile(&self, i: usize) -> f64 {
        let d = i as f64 - (self.n / 2) as f64;
        (-d * d / (2.0 * self.sigma * self.sigma)).exp()
    }

    /// Materializes the spatial kernel grid (for oracle convolutions).
    pub fn spatial(&self) -> Grid3<f64> {
        let n = self.n;
        Grid3::from_fn((n, n, n), |x, y, z| {
            self.profile(x) * self.profile(y) * self.profile(z)
        })
    }

    /// Largest imaginary part that would remain if the spectrum were
    /// computed without the symmetry argument — always ~0; exposed for tests.
    pub fn spectrum_imag_residual(&self) -> f64 {
        let planner = FftPlanner::new();
        let mut buf: Vec<Complex64> = (0..self.n)
            .map(|i| Complex64::from_real(self.profile(i)))
            .collect();
        planner
            .plan(self.n, FftDirection::Forward)
            .process(&mut buf);
        buf.iter().map(|v| v.im.abs()).fold(0.0, f64::max)
    }
}

impl KernelSpectrum for GaussianKernel {
    fn n(&self) -> usize {
        self.n
    }

    fn center(&self) -> [usize; 3] {
        [self.n / 2; 3]
    }

    fn eval(&self, f: [usize; 3]) -> Complex64 {
        Complex64::from_real(self.spec1d[f[0]] * self.spec1d[f[1]] * self.spec1d[f[2]])
    }

    fn eval_pencil_axis2(&self, f0: usize, f1: usize, out: &mut [Complex64]) {
        assert_eq!(out.len(), self.n);
        let xy = self.spec1d[f0] * self.spec1d[f1];
        for (o, &s) in out.iter_mut().zip(&self.spec1d) {
            *o = Complex64::from_real(xy * s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcc_fft::{cyclic_convolve_3d, fft_3d};

    #[test]
    fn spectrum_is_real() {
        let k = GaussianKernel::new(32, 2.0);
        assert!(
            k.spectrum_imag_residual() < 1e-10,
            "paper requires a real-valued FFT"
        );
    }

    #[test]
    fn spectrum_matches_full_3d_fft() {
        let n = 8;
        let k = GaussianKernel::new(n, 1.5);
        let spatial = k.spatial();
        let mut buf: Vec<Complex64> = spatial
            .as_slice()
            .iter()
            .map(|&v| Complex64::from_real(v))
            .collect();
        let planner = FftPlanner::new();
        fft_3d(&planner, &mut buf, (n, n, n), FftDirection::Forward);
        for f0 in 0..n {
            for f1 in 0..n {
                for f2 in 0..n {
                    let got = k.eval([f0, f1, f2]);
                    let want = buf[(f0 * n + f1) * n + f2];
                    assert!(
                        (got - want).norm() < 1e-9,
                        "bin ({f0},{f1},{f2}): {got:?} vs {want:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn pencil_matches_pointwise() {
        let n = 16;
        let k = GaussianKernel::new(n, 2.0);
        let mut out = vec![Complex64::ZERO; n];
        k.eval_pencil_axis2(3, 7, &mut out);
        for (f2, &v) in out.iter().enumerate() {
            assert_eq!(v, k.eval([3, 7, f2]));
        }
    }

    #[test]
    fn convolving_delta_reproduces_kernel() {
        // FFT-based cyclic convolution with the kernel spectrum must equal
        // the spatial kernel when the input is a delta at the origin.
        let n = 8;
        let k = GaussianKernel::new(n, 1.0);
        let spatial = k.spatial();
        let planner = FftPlanner::new();
        let mut delta = vec![Complex64::ZERO; n * n * n];
        delta[0] = Complex64::ONE;
        let kernel_c: Vec<Complex64> = spatial
            .as_slice()
            .iter()
            .map(|&v| Complex64::from_real(v))
            .collect();
        let out = cyclic_convolve_3d(&planner, &delta, &kernel_c, (n, n, n));
        for (a, b) in out.iter().zip(spatial.as_slice()) {
            assert!((a.re - b).abs() < 1e-10 && a.im.abs() < 1e-10);
        }
    }

    #[test]
    fn sharper_gaussian_decays_faster() {
        let sharp = GaussianKernel::new(64, 1.0);
        let wide = GaussianKernel::new(64, 8.0);
        // At 8 points from center the sharp kernel is negligible, the wide
        // one is not.
        assert!(sharp.profile(64 / 2 + 8) < 1e-10);
        assert!(wide.profile(64 / 2 + 8) > 0.5);
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_grid_rejected() {
        GaussianKernel::new(9, 1.0);
    }
}
