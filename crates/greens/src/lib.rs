//! # lcc-greens — Green's-function convolution kernels
//!
//! The kernels whose properties the paper exploits: "rapidly-decaying" with a
//! "real-valued FFT", known in closed frequency-domain form so they can be
//! "computed on-the-fly during convolution" (§2.2, §4).
//!
//! * [`gaussian::GaussianKernel`] — the sharp centered Gaussian of the
//!   proof-of-concept implementation, with an exact separable real spectrum.
//! * [`massif_gamma::MassifGamma`] — the rank-4 elastic Green's operator of
//!   Eq. 3, applied per frequency bin to symmetric complex stress tensors.
//! * [`poisson::PoissonSpectrum`] / [`poisson::free_space_kernel`] — the
//!   Poisson kernel of Eq. 5 and its discrete spectral inverse.
//! * [`kernel::KernelSpectrum`] — the scalar transfer-function abstraction
//!   the convolution pipeline multiplies against.

pub mod gaussian;
pub mod helmholtz;
pub mod kernel;
pub mod massif_gamma;
pub mod poisson;
pub mod sym;

pub use gaussian::GaussianKernel;
pub use helmholtz::{yukawa_kernel, ScreenedPoissonSpectrum};
pub use kernel::{wrap_freq, KernelSpectrum};

// `wrap_freq` is re-exported above for downstream frequency bookkeeping.
pub use massif_gamma::MassifGamma;
pub use poisson::{decay_profile, free_space_kernel, PoissonSpectrum};
pub use sym::Sym3C;
